// Persistent route oscillation from unconstrained policies — Varadhan,
// Govindan & Estrin's result, cited by the paper (§3, §4.2): "under certain
// unconstrained routing policies, BGP may not converge and will sustain
// persistent route oscillations. Only the severely restrictive
// shortest-path route selection algorithm is provably safe."
//
// This example builds the classic three-AS "bad gadget": ASes A, B, C in a
// full mesh around an origin D announcing one prefix. Each ring AS's import
// policy prefers the route heard THROUGH its clockwise neighbour over its
// own direct route to D (LOCAL_PREF 200 vs default 100). No assignment of
// best routes is stable: whenever X uses its neighbour's path, that
// neighbour's own switch invalidates it a round later. The same topology
// with shortest-path preferences (no policy) converges instantly.
#include <cstdio>

#include "bgp/policy.h"
#include "sim/link.h"
#include "sim/router.h"
#include "sim/scheduler.h"

using namespace iri;

namespace {

constexpr bgp::Asn kA = 100, kB = 200, kC = 300, kD = 400;
const Prefix kPrefix = *Prefix::Parse("192.42.113.0/24");

struct GadgetResult {
  std::uint64_t updates_first_half = 0;
  std::uint64_t updates_second_half = 0;
  bool still_oscillating = false;
};

// Import policy for a ring AS: prefer the path that goes through
// `preferred_neighbor` (its first hop) over everything else.
bgp::Policy PreferVia(bgp::Asn preferred_neighbor) {
  bgp::Policy policy = bgp::Policy::AcceptAll();
  bgp::PolicyRule rule;
  rule.name = "prefer-via-" + std::to_string(preferred_neighbor);
  rule.match.neighbor_as = preferred_neighbor;
  rule.action.set_local_pref = 200;
  policy.Add(rule);
  return policy;
}

GadgetResult RunGadget(bool bad_policies) {
  sim::Scheduler sched;

  auto make_router = [&sched](const char* name, bgp::Asn asn,
                              std::uint8_t id) {
    sim::RouterConfig cfg;
    cfg.name = name;
    cfg.asn = asn;
    cfg.router_id = IPv4Address(10, 0, 0, id);
    cfg.interface_addr = IPv4Address(10, 1, 0, id);
    cfg.packer.interval = Duration::Seconds(5);
    cfg.packer.discipline = bgp::TimerDiscipline::kUnjittered;
    return std::make_unique<sim::Router>(sched, cfg, id);
  };
  auto a = make_router("A", kA, 1);
  auto b = make_router("B", kB, 2);
  auto c = make_router("C", kC, 3);
  auto d = make_router("D", kD, 4);

  std::vector<std::unique_ptr<sim::Link>> links;
  // `import_for(x, from)` — the policy router x applies to routes from
  // `from`. The bad gadget ring: A prefers via B, B prefers via C, C
  // prefers via A.
  auto ring_policy = [bad_policies](bgp::Asn self,
                                    bgp::Asn from) -> bgp::Policy {
    if (!bad_policies) return bgp::Policy::AcceptAll();
    const bgp::Asn prefers = self == kA ? kB : self == kB ? kC : kA;
    return from == prefers ? PreferVia(prefers) : bgp::Policy::AcceptAll();
  };
  auto connect = [&links, &sched, &ring_policy](sim::Router& x,
                                                sim::Router& y) {
    links.push_back(std::make_unique<sim::Link>(sched, Duration::Millis(1)));
    x.AttachLink(*links.back(), true, y.config().asn,
                 ring_policy(x.config().asn, y.config().asn));
    y.AttachLink(*links.back(), false, x.config().asn,
                 ring_policy(y.config().asn, x.config().asn));
  };
  connect(*a, *b);
  connect(*b, *c);
  connect(*c, *a);
  connect(*d, *a);
  connect(*d, *b);
  connect(*d, *c);

  sched.At(TimePoint::Origin(), [&links] {
    for (auto& l : links) l->Restore();
  });
  sched.At(TimePoint::Origin() + Duration::Seconds(1), [&d] {
    bgp::Route r;
    r.prefix = kPrefix;
    d->Originate(r);
  });

  auto total_updates = [&] {
    return a->stats().updates_rx + b->stats().updates_rx +
           c->stats().updates_rx + d->stats().updates_rx;
  };
  sched.RunUntil(TimePoint::Origin() + Duration::Minutes(30));
  GadgetResult result;
  result.updates_first_half = total_updates();
  sched.RunUntil(TimePoint::Origin() + Duration::Hours(1));
  result.updates_second_half = total_updates() - result.updates_first_half;
  // Converged systems go quiet; the bad gadget keeps churning.
  result.still_oscillating = result.updates_second_half > 50;
  return result;
}

}  // namespace

int main() {
  std::printf("persistent route oscillation: the three-AS 'bad gadget'\n\n");
  const GadgetResult good = RunGadget(/*bad_policies=*/false);
  const GadgetResult bad = RunGadget(/*bad_policies=*/true);

  std::printf("%-44s %14s %14s\n", "", "shortest-path", "bad-gadget");
  std::printf("%-44s %14llu %14llu\n", "UPDATE messages, minutes 0-30",
              static_cast<unsigned long long>(good.updates_first_half),
              static_cast<unsigned long long>(bad.updates_first_half));
  std::printf("%-44s %14llu %14llu\n", "UPDATE messages, minutes 30-60",
              static_cast<unsigned long long>(good.updates_second_half),
              static_cast<unsigned long long>(bad.updates_second_half));
  std::printf("%-44s %14s %14s\n", "still oscillating after 30 minutes",
              good.still_oscillating ? "YES" : "no",
              bad.still_oscillating ? "YES" : "no");
  std::printf(
      "\npaper: \"a recent study has shown that under certain unconstrained "
      "routing policies, BGP may not converge and will sustain persistent "
      "route oscillations\" [Varadhan et al.]. The shortest-path run "
      "converges and goes quiet; the gadget never does.\n");
  return 0;
}
