// Route flap dampening study (paper §3, ref [24]): how the RFC 2439
// penalty machine responds to a flapping customer route, and the
// false-suppression cost — "'legitimate' announcements about a new network
// may be delayed due to earlier dampened instability."
//
// Part 1 drives the Dampener directly and prints the penalty timeline.
// Part 2 runs two border routers and measures the reachability gap a
// downstream peer experiences after the flapping stops.
#include <cstdio>

#include "bgp/dampening.h"
#include "sim/link.h"
#include "sim/router.h"
#include "sim/scheduler.h"

using namespace iri;

namespace {

void PenaltyTimeline() {
  std::printf("=== part 1: penalty timeline for a flapping route ===\n");
  bgp::Dampener dampener;
  const bgp::PrefixPeer route{*Prefix::Parse("192.42.113.0/24"), 1};

  std::printf("%8s %10s %12s %s\n", "t(min)", "event", "penalty", "state");
  auto report = [&](double t_min, const char* event) {
    const TimePoint now = TimePoint::Origin() + Duration::Minutes(t_min);
    std::printf("%8.1f %10s %12.0f %s\n", t_min, event,
                dampener.Penalty(route, now),
                dampener.IsSuppressed(route, now) ? "SUPPRESSED" : "usable");
  };

  // Four flap cycles, two minutes apart.
  for (int i = 0; i < 4; ++i) {
    const double t = i * 2.0;
    dampener.OnWithdraw(route, TimePoint::Origin() + Duration::Minutes(t));
    report(t, "withdraw");
    dampener.OnAnnounce(route, TimePoint::Origin() + Duration::Minutes(t + 1),
                        false);
    report(t + 1, "announce");
  }
  // Query the release time now, before the decay probes advance the state.
  const TimePoint after = TimePoint::Origin() + Duration::Minutes(7);
  const TimePoint reuse = dampener.ReuseTime(route, after);

  // Decay-only aftermath.
  for (double t = 10; t <= 70; t += 10) report(t, "(decay)");
  std::printf("\nroute became stable at t=7.0 min; dampening releases it at "
              "t=%.1f min -> %.1f minutes of artificial unreachability\n\n",
              reuse.SinceOrigin().ToSeconds() / 60.0,
              (reuse - after).ToSeconds() / 60.0);
}

void EndToEndCost() {
  std::printf("=== part 2: end-to-end cost at a downstream router ===\n");
  sim::Scheduler sched;

  sim::RouterConfig edge_cfg;  // the dampening border router
  edge_cfg.name = "border";
  edge_cfg.asn = 701;
  edge_cfg.router_id = IPv4Address(10, 0, 0, 1);
  edge_cfg.interface_addr = IPv4Address(10, 1, 0, 1);
  edge_cfg.enable_dampening = true;
  edge_cfg.packer.interval = Duration::Seconds(5);
  sim::Router border(sched, edge_cfg, 1);

  sim::RouterConfig peer_cfg;
  peer_cfg.name = "downstream";
  peer_cfg.asn = 1239;
  peer_cfg.router_id = IPv4Address(10, 0, 0, 2);
  peer_cfg.interface_addr = IPv4Address(10, 1, 0, 2);
  peer_cfg.packer.interval = Duration::Seconds(5);
  sim::Router downstream(sched, peer_cfg, 2);

  sim::Link link(sched, Duration::Millis(2));
  border.AttachLink(link, true, peer_cfg.asn);
  downstream.AttachLink(link, false, edge_cfg.asn);
  sched.At(TimePoint::Origin(), [&link] { link.Restore(); });

  const Prefix customer = *Prefix::Parse("204.16.7.0/24");
  bgp::Route route;
  route.prefix = customer;

  // Flap the customer for five cycles, alternating the downstream AS path
  // (attribute changes accrue penalty too), then leave it stably up.
  for (int i = 0; i < 5; ++i) {
    sched.At(TimePoint::Origin() + Duration::Minutes(2.0 * i), [&border, route] {
      border.Originate(route);
    });
    sched.At(TimePoint::Origin() + Duration::Minutes(2.0 * i + 1),
             [&border, customer] { border.WithdrawLocal(customer); });
  }
  const TimePoint final_up = TimePoint::Origin() + Duration::Minutes(10);
  sched.At(final_up, [&border, route] { border.Originate(route); });

  // Sample downstream reachability every 30 simulated seconds.
  TimePoint reachable_at = TimePoint::Max();
  for (double t = 10; t <= 120; t += 0.5) {
    sched.At(TimePoint::Origin() + Duration::Minutes(t),
             [&downstream, &reachable_at, customer, &sched] {
               if (reachable_at == TimePoint::Max() &&
                   downstream.rib().Best(customer) != nullptr) {
                 reachable_at = sched.Now();
               }
             });
  }
  sched.RunUntil(TimePoint::Origin() + Duration::Hours(2.5));

  std::printf("customer line finally stabilized at t=10 min\n");
  if (reachable_at == TimePoint::Max()) {
    std::printf("downstream NEVER regained the route within 2.5 h\n");
  } else {
    std::printf("downstream regained the route at t=%.1f min -> %.1f min "
                "of post-stability unreachability caused by dampening\n",
                reachable_at.SinceOrigin().ToSeconds() / 60.0,
                (reachable_at - final_up).ToSeconds() / 60.0);
  }
  std::printf("damped updates at the border: %llu\n",
              static_cast<unsigned long long>(border.stats().damped_updates));
}

}  // namespace

int main() {
  PenaltyTimeline();
  EndToEndCost();
  return 0;
}
