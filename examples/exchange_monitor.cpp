// The Routing Arbiter workflow end to end: instrument a route server, log
// every BGP message to an MRT file, then replay the file offline through a
// fresh monitor and verify the two analyses agree — the paper's §2
// methodology (live collection + offline decode) in one program.
//
//   $ example_exchange_monitor [hours=6] [/tmp/exchange.mrt]
#include <cstdio>
#include <cstdlib>

#include "core/monitor.h"
#include "core/report.h"
#include "core/stats.h"
#include "mrt/log.h"
#include "workload/scenario.h"

int main(int argc, char** argv) {
  using namespace iri;
  const double hours = argc > 1 ? std::atof(argv[1]) : 6.0;
  const std::string path = argc > 2 ? argv[2] : "/tmp/exchange.mrt";

  // --- live collection ---
  workload::ScenarioConfig cfg;
  cfg.topology.scale = 1.0 / 64;
  cfg.topology.num_providers = 12;
  cfg.duration = Duration::Hours(hours);

  workload::ExchangeScenario scenario(cfg);
  mrt::Writer writer(path);
  if (!writer.ok()) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  scenario.monitor().SetMrtWriter(&writer);

  core::CategoryCounts live;
  core::TimeBinner hourly(Duration::Hours(1));
  scenario.monitor().AddSink([&](const core::ClassifiedEvent& ev) {
    live.Add(ev);
    hourly.Add(ev.event.time);
  });

  std::printf("collecting %.1f simulated hours at the exchange...\n", hours);
  scenario.Run();
  writer.Close();
  std::printf("wrote %llu MRT records to %s\n",
              static_cast<unsigned long long>(writer.records_written()),
              path.c_str());

  std::printf("\nper-hour update volume (live):\n");
  const auto& bins = hourly.bins();
  std::uint64_t peak = 1;
  for (auto b : bins) peak = std::max(peak, b);
  for (std::size_t h = 0; h < bins.size(); ++h) {
    std::printf("h%02zu %7llu %s\n", h,
                static_cast<unsigned long long>(bins[h]),
                core::AsciiBar(static_cast<double>(bins[h]),
                               static_cast<double>(peak), 40)
                    .c_str());
  }

  std::printf("\nlive taxonomy:\n%s\n",
              core::FormatCategoryReport(live).c_str());

  // --- offline replay ---
  std::printf("replaying the MRT log offline...\n");
  mrt::Reader reader(path);
  if (!reader.ok()) {
    std::fprintf(stderr, "cannot read %s back\n", path.c_str());
    return 1;
  }
  core::ExchangeMonitor offline;
  core::CategoryCounts replayed;
  offline.AddSink([&replayed](const core::ClassifiedEvent& ev) {
    replayed.Add(ev);
  });
  const std::uint64_t messages = offline.Replay(reader);
  std::printf("replayed %llu UPDATE messages (%llu CRC failures)\n",
              static_cast<unsigned long long>(messages),
              static_cast<unsigned long long>(reader.crc_failures()));

  bool match = live.announcements == replayed.announcements &&
               live.withdrawals == replayed.withdrawals;
  for (std::size_t i = 0; i < core::kNumCategories; ++i) {
    match = match && live.by_category[i] == replayed.by_category[i];
  }
  std::printf("offline analysis %s the live analysis (%llu vs %llu events)\n",
              match ? "MATCHES" : "DIFFERS FROM",
              static_cast<unsigned long long>(live.Total()),
              static_cast<unsigned long long>(replayed.Total()));
  return match ? 0 : 1;
}
