// The Routing Arbiter workflow end to end, now at every exchange point at
// once: run the multi-exchange campaign on the parallel partitioned runner,
// log every BGP message to one merged MRT file (per-exchange segments in
// fixed exchange order), then replay each segment offline through a fresh
// monitor and verify the two analyses agree — the paper's §2 methodology
// (live collection + offline decode) in one program.
//
//   $ example_exchange_monitor [hours=6] [/tmp/exchange.mrt] [exchanges=2]
//       [--attribution[=report.json]]
//
// --attribution prints the causal-attribution report (which injected fault
// produced each pathology class, at what hop depth, with what blast radius)
// and, with =PATH, also writes the machine-readable JSON.
//
// Worker threads come from IRI_PARALLEL_EXCHANGES (default: hardware
// concurrency); the output is bit-identical at any thread count.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/monitor.h"
#include "core/report.h"
#include "core/stats.h"
#include "mrt/log.h"
#include "obs/metrics.h"
#include "workload/multi_exchange_runner.h"

int main(int argc, char** argv) {
  using namespace iri;
  bool attribution = false;
  std::string attribution_path;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--attribution") == 0) {
      attribution = true;
    } else if (std::strncmp(argv[i], "--attribution=", 14) == 0) {
      attribution = true;
      attribution_path = argv[i] + 14;
    } else {
      positional.push_back(argv[i]);
    }
  }
  const double hours = positional.size() > 0 ? std::atof(positional[0]) : 6.0;
  const std::string path =
      positional.size() > 1 ? positional[1] : "/tmp/exchange.mrt";
  const int exchanges = positional.size() > 2 ? std::atoi(positional[2]) : 2;

  // --- live collection, one independent partition per exchange ---
  workload::MultiExchangeConfig cfg;
  cfg.scenario.topology.scale = 1.0 / 64;
  cfg.scenario.topology.num_providers = 12;
  cfg.scenario.duration = Duration::Hours(hours);
  cfg.scenario.num_exchanges = exchanges < 1 ? 1 : exchanges;

  std::printf("collecting %.1f simulated hours at %d exchange(s)...\n", hours,
              cfg.scenario.num_exchanges);
  workload::MultiExchangeRunner runner(std::move(cfg));
  // Non-const: the health summary below reads instruments through the
  // registry's get-or-create accessors.
  workload::MultiExchangeResult result = runner.Run();

  // One merged file, per-exchange segments concatenated in exchange order.
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    if (!result.merged_mrt.empty() &&
        std::fwrite(result.merged_mrt.data(), 1, result.merged_mrt.size(),
                    f) != result.merged_mrt.size()) {
      std::fprintf(stderr, "short write to %s\n", path.c_str());
      std::fclose(f);
      return 1;
    }
    std::fclose(f);
  }
  std::printf("wrote %zu MRT bytes (%llu messages, CRC32 0x%08X) to %s\n",
              result.merged_mrt.size(),
              static_cast<unsigned long long>(result.total_messages),
              result.MrtCrc32(), path.c_str());

  std::printf("\nper-exchange live volume:\n");
  for (const auto& ex : result.exchanges) {
    std::printf("exchange %d  %7llu events  %s\n", ex.exchange,
                static_cast<unsigned long long>(ex.events),
                core::AsciiBar(static_cast<double>(ex.events),
                               static_cast<double>(
                                   std::max<std::uint64_t>(1,
                                                           result.total_events)),
                               40)
                    .c_str());
  }

  std::printf("\nlive taxonomy (all exchanges merged):\n%s\n",
              core::FormatCategoryReport(result.combined).c_str());

  std::printf("merged deterministic metrics snapshot:\n%s\n",
              result.metrics.SnapshotText().c_str());

  // --- streaming telemetry: the operator-facing series + health view ---
  // Per-exchange JSONL segments concatenated in exchange order, same
  // determinism contract as the MRT bytes. Try:
  //   jq -r 'select(.series=="monitor.wwdup") | [.t_ns,.window] | @tsv'
  const std::string series_path = path + ".series.jsonl";
  {
    std::FILE* f = std::fopen(series_path.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", series_path.c_str());
      return 1;
    }
    if (!result.merged_series.empty() &&
        std::fwrite(result.merged_series.data(), 1,
                    result.merged_series.size(),
                    f) != result.merged_series.size()) {
      std::fprintf(stderr, "short write to %s\n", series_path.c_str());
      std::fclose(f);
      return 1;
    }
    std::fclose(f);
  }
  std::printf("wrote %llu series records (%zu bytes) to %s\n",
              static_cast<unsigned long long>(result.total_series_records),
              result.merged_series.size(), series_path.c_str());
  std::printf(
      "instability health: %llu storm(s), %llu flap burst(s) (peak %lld "
      "events), periodicity score 30s=%lldppm 60s=%lldppm, %llu alert(s)\n",
      static_cast<unsigned long long>(
          result.metrics.GetCounter("health.storm.starts").value()),
      static_cast<unsigned long long>(
          result.metrics.GetCounter("health.flap.bursts").value()),
      static_cast<long long>(
          result.metrics.GetGauge("health.flap.peak_events").value()),
      static_cast<long long>(
          result.metrics.GetGauge("health.periodicity.a_ppm").value()),
      static_cast<long long>(
          result.metrics.GetGauge("health.periodicity.b_ppm").value()),
      static_cast<unsigned long long>(
          result.metrics.GetCounter("health.periodicity.alerts").value()));

  if (attribution) {
    std::vector<obs::ExchangeAttribution> attrs;
    attrs.reserve(result.exchanges.size());
    for (const auto& ex : result.exchanges) attrs.push_back(ex.attribution);
    std::printf("\n%s", core::FormatAttributionReport(attrs).c_str());
    if (!attribution_path.empty()) {
      const std::string body = core::AttributionJson(attrs);
      std::FILE* f = std::fopen(attribution_path.c_str(), "wb");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", attribution_path.c_str());
        return 1;
      }
      std::fwrite(body.data(), 1, body.size(), f);
      std::fclose(f);
      std::printf("wrote %s\n", attribution_path.c_str());
    }
  }

  // --- offline replay, segment by segment ---
  // Exchanges reuse collector-local peer ids, so each exchange's segment
  // replays through its own fresh monitor (one classifier per collector,
  // exactly like the Routing Arbiter's per-box logs).
  std::printf("replaying the MRT log offline...\n");
  bool match = true;
  std::uint64_t replayed_messages = 0;
  core::CategoryCounts replayed;
  for (const auto& ex : result.exchanges) {
    mrt::Reader reader(ex.mrt);
    core::ExchangeMonitor offline;
    obs::Registry offline_metrics;
    offline.AttachMetrics(&offline_metrics);
    core::CategoryCounts counts;
    offline.AddSink(
        [&counts](const core::ClassifiedEvent& ev) { counts.Add(ev); });
    replayed_messages += offline.Replay(reader);
    if (reader.crc_failures() != 0) {
      std::printf("exchange %d: %llu CRC failures\n", ex.exchange,
                  static_cast<unsigned long long>(reader.crc_failures()));
      match = false;
    }
    bool seg_match = counts.announcements == ex.counts.announcements &&
                     counts.withdrawals == ex.counts.withdrawals;
    for (std::size_t i = 0; i < core::kNumCategories; ++i) {
      seg_match = seg_match && counts.by_category[i] == ex.counts.by_category[i];
    }
    // Differential check on the instruments too: everything under
    // "monitor." is fed identically by the live tap and offline Replay.
    const bool metrics_match =
        offline_metrics.SnapshotText(false, "monitor.") ==
        ex.metrics.SnapshotText(false, "monitor.");
    std::printf("exchange %d: offline %s live (%llu events; monitor metrics "
                "%s)\n",
                ex.exchange, seg_match ? "matches" : "DIFFERS FROM",
                static_cast<unsigned long long>(counts.Total()),
                metrics_match ? "identical" : "DIFFER");
    match = match && seg_match && metrics_match;
    replayed.Merge(counts);
  }
  std::printf(
      "replayed %llu UPDATE messages; offline analysis %s the live "
      "analysis (%llu vs %llu events)\n",
      static_cast<unsigned long long>(replayed_messages),
      match ? "MATCHES" : "DIFFERS FROM",
      static_cast<unsigned long long>(result.combined.Total()),
      static_cast<unsigned long long>(replayed.Total()));
  return match ? 0 : 1;
}
