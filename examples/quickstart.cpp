// Quickstart: build a small public exchange point, run one simulated day,
// and print the taxonomy report for the BGP updates the route server saw.
//
//   $ example_quickstart [hours=24] [seed=42]
#include <cstdio>
#include <cstdlib>

#include "core/report.h"
#include "core/stats.h"
#include "workload/scenario.h"

int main(int argc, char** argv) {
  using namespace iri;

  const double hours = argc > 1 ? std::atof(argv[1]) : 24.0;
  const std::uint64_t seed =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 42;

  workload::ScenarioConfig cfg;
  cfg.topology.scale = 1.0 / 64;  // ~650 prefixes; see DESIGN.md on scale
  cfg.topology.num_providers = 12;
  cfg.duration = Duration::Hours(hours);
  cfg.seed = seed;

  workload::ExchangeScenario scenario(cfg);

  core::CategoryCounts counts;
  core::TimeBinner binner(Duration::Minutes(10));
  scenario.monitor().AddSink([&](const core::ClassifiedEvent& ev) {
    counts.Add(ev);
    if (core::IsInstability(ev.category)) binner.Add(ev.event.time);
  });

  std::printf("simulating %.1f hours at 1/%d scale, %d providers...\n", hours,
              static_cast<int>(1.0 / cfg.topology.scale),
              cfg.topology.num_providers);
  scenario.Run();

  std::printf("\n=== update taxonomy (route-server view) ===\n%s\n",
              core::FormatCategoryReport(counts).c_str());

  std::printf("=== instability per 10-minute bin ===\n");
  const auto& bins = binner.bins();
  std::uint64_t max_bin = 1;
  for (auto b : bins) max_bin = std::max(max_bin, b);
  for (std::size_t i = 0; i < bins.size(); i += 6) {  // hourly rows
    std::uint64_t hour_total = 0;
    for (std::size_t j = i; j < std::min(i + 6, bins.size()); ++j) {
      hour_total += bins[j];
    }
    std::printf("h%03zu %6llu %s\n", i / 6,
                static_cast<unsigned long long>(hour_total),
                core::AsciiBar(static_cast<double>(hour_total),
                               static_cast<double>(max_bin) * 6, 40)
                    .c_str());
  }

  std::printf("\nroute server table: %zu prefixes, %zu paths\n",
              scenario.route_server().rib().NumPrefixes(),
              scenario.route_server().rib().NumRoutes());
  return 0;
}
