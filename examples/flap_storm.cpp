// Route flap storm (paper §3): a route-caching router under sustained
// update load starves its KEEPALIVEs, peers declare it dead, session
// re-establishment triggers full-table dumps that add more load — a
// self-sustaining storm. The vendor fix — BGP priority queuing, where
// keepalives bypass the update backlog — contains it.
//
// This example builds the scenario twice, without and with the fix, and
// prints the session-flap and crash counts side by side.
#include <cstdio>

#include "sim/link.h"
#include "sim/router.h"
#include "sim/scheduler.h"

using namespace iri;

namespace {

struct StormResult {
  std::uint64_t session_downs = 0;
  std::uint64_t crashes = 0;
  std::uint64_t updates_rx = 0;
  bool converged = false;
};

StormResult RunStorm(bool priority_queuing) {
  sim::Scheduler sched;

  // The victim: a route-caching router with a weak CPU (the paper's
  // "relatively light Motorola 68000 series processor").
  sim::RouterConfig victim_cfg;
  victim_cfg.name = "victim";
  victim_cfg.asn = 7000;
  victim_cfg.router_id = IPv4Address(10, 0, 0, 1);
  victim_cfg.interface_addr = IPv4Address(10, 1, 0, 1);
  victim_cfg.cost_per_prefix = Duration::Millis(10);  // slow per-route work
  victim_cfg.crash_backlog = Duration::Seconds(90);
  victim_cfg.reboot_time = Duration::Seconds(60);
  victim_cfg.bgp_priority_queuing = priority_queuing;
  victim_cfg.hold_time_s = 9;  // keepalive every 3 s; hold fires fast
  victim_cfg.packer.interval = Duration::Seconds(5);
  sim::Router victim(sched, victim_cfg, 1);

  // Three feeder routers, each originating a table slice and flapping it.
  std::vector<std::unique_ptr<sim::Router>> feeders;
  std::vector<std::unique_ptr<sim::Link>> links;
  for (int f = 0; f < 3; ++f) {
    sim::RouterConfig cfg;
    cfg.name = "feeder-" + std::to_string(f);
    cfg.asn = static_cast<bgp::Asn>(100 + f);
    cfg.router_id = IPv4Address(10, 0, 1, static_cast<std::uint8_t>(f));
    cfg.interface_addr = IPv4Address(10, 1, 1, static_cast<std::uint8_t>(f));
    cfg.hold_time_s = 9;
    cfg.packer.interval = Duration::Seconds(5);
    feeders.push_back(std::make_unique<sim::Router>(sched, cfg, 10 + f));
    links.push_back(std::make_unique<sim::Link>(sched, Duration::Millis(2)));
    feeders[f]->AttachLink(*links[f], true, victim_cfg.asn);
    victim.AttachLink(*links[f], false, cfg.asn);
  }

  sched.At(TimePoint::Origin(), [&links] {
    for (auto& l : links) l->Restore();
  });

  // Each feeder originates 400 prefixes...
  sched.At(TimePoint::Origin() + Duration::Seconds(1), [&feeders] {
    for (std::size_t f = 0; f < feeders.size(); ++f) {
      for (int i = 0; i < 400; ++i) {
        bgp::Route r;
        r.prefix = Prefix(
            IPv4Address((10u << 24) | (static_cast<std::uint32_t>(f) << 20) |
                        (static_cast<std::uint32_t>(i) << 8)),
            24);
        feeders[f]->Originate(r);
      }
    }
  });

  // ...then feeder 0 flaps 300 of its prefixes every 10 seconds for eight
  // minutes. Each burst alone is absorbable; what breaks the victim is the
  // incident at t=2min, when a backbone fault makes every feeder re-send
  // its full slice at once: the victim's update backlog exceeds its hold
  // time, keepalives starve, and the storm feeds itself through full-table
  // re-dumps on every session recovery.
  for (int burst = 0; burst < 48; ++burst) {
    sched.At(TimePoint::Origin() + Duration::Minutes(2) +
                 Duration::Seconds(10 * burst),
             [&feeders, burst] {
               for (int i = 0; i < 300; ++i) {
                 const Prefix p(
                     IPv4Address((10u << 24) |
                                 (static_cast<std::uint32_t>(i) << 8)),
                     24);
                 if (burst % 2 == 0) {
                   feeders[0]->WithdrawLocal(p);
                 } else {
                   bgp::Route r;
                   r.prefix = p;
                   feeders[0]->Originate(r);
                 }
               }
             });
  }
  sched.At(TimePoint::Origin() + Duration::Minutes(2), [&feeders] {
    for (std::size_t fi = 0; fi < feeders.size(); ++fi) {
      for (int i = 0; i < 400; ++i) {
        bgp::Route r;
        r.prefix = Prefix(
            IPv4Address((10u << 24) | (static_cast<std::uint32_t>(fi) << 20) |
                        (static_cast<std::uint32_t>(i) << 8) | 128u),
            25);  // more-specific split: doubles the table in one shot
        feeders[fi]->Originate(r);
      }
    }
  });

  sched.RunUntil(TimePoint::Origin() + Duration::Minutes(25));

  StormResult result;
  result.session_downs = victim.stats().session_downs;
  for (auto& f : feeders) result.session_downs += f->stats().session_downs;
  result.crashes = victim.stats().crashes;
  result.updates_rx = victim.stats().updates_rx;
  result.converged = !victim.crashed();
  for (bgp::PeerId p = 0; p < 3; ++p) {
    result.converged = result.converged &&
                       victim.PeerSessionState(p) ==
                           bgp::SessionState::kEstablished;
  }
  result.converged =
      result.converged && victim.rib().NumPrefixes() == 2400;
  return result;
}

}  // namespace

int main() {
  std::printf("route flap storm: a weak route-caching router under a flap "
              "barrage\n\n");
  const StormResult storm = RunStorm(/*priority_queuing=*/false);
  const StormResult fixed = RunStorm(/*priority_queuing=*/true);

  std::printf("%-34s %12s %18s\n", "", "no fix", "priority-queuing");
  std::printf("%-34s %12llu %18llu\n", "session drops (all routers)",
              static_cast<unsigned long long>(storm.session_downs),
              static_cast<unsigned long long>(fixed.session_downs));
  std::printf("%-34s %12llu %18llu\n", "victim crashes",
              static_cast<unsigned long long>(storm.crashes),
              static_cast<unsigned long long>(fixed.crashes));
  std::printf("%-34s %12llu %18llu\n", "updates processed by victim",
              static_cast<unsigned long long>(storm.updates_rx),
              static_cast<unsigned long long>(fixed.updates_rx));
  std::printf("%-34s %12s %18s\n", "converged 15 min after the barrage",
              storm.converged ? "yes" : "NO",
              fixed.converged ? "yes" : "NO");
  std::printf("\npaper: \"a router which fails under heavy routing "
              "instability can instigate a 'route flap storm'\"; the fix "
              "gives BGP traffic priority so \"Keep-Alive messages persist "
              "even under heavy instability\".\n");
  return 0;
}
