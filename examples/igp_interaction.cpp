// The IGP/BGP interaction end to end (paper §4.2): a link-state IGP with a
// fixed-phase 30-second SPF timer redistributes into a border router; an
// internal link flapping on its own (faster, unrelated) schedule surfaces
// at the exchange as withdraw/announce trains quantized to the SPF period —
// and an internal metric oscillation surfaces as tuple-identical MED churn
// (policy fluctuation / AADup). The collector's inter-arrival histogram
// shows the 30 s / 1 m concentration of Figure 8 arising mechanistically.
#include <cstdio>

#include "core/monitor.h"
#include "core/report.h"
#include "core/stats.h"
#include "igp/redistribution.h"
#include "sim/link.h"
#include "sim/router.h"
#include "sim/scheduler.h"

using namespace iri;

int main() {
  sim::Scheduler sched;

  // --- the AS: a small backbone behind a border router ---
  igp::IgpProcess backbone(sched, igp::IgpConfig{Duration::Seconds(30)});
  const auto border_node = backbone.AddNode("border");
  const auto core = backbone.AddNode("core");
  const auto pop = backbone.AddNode("pop");
  backbone.AddLink(border_node, core, 1);
  // The POP hangs off a single flaky circuit: when it drops, the customer
  // prefix partitions away entirely (withdrawals, not just metric churn).
  const auto flaky = backbone.AddLink(core, pop, 1);
  backbone.SetBorderNode(border_node);
  const Prefix customer = *Prefix::Parse("204.10.9.0/24");
  backbone.AttachPrefix(pop, customer);

  // --- the border router and the exchange collector ---
  sim::RouterConfig border_cfg;
  border_cfg.name = "border";
  border_cfg.asn = 701;
  border_cfg.router_id = IPv4Address(10, 0, 0, 1);
  border_cfg.interface_addr = IPv4Address(10, 1, 0, 1);
  border_cfg.packer.interval = Duration::Seconds(30);
  border_cfg.packer.discipline = bgp::TimerDiscipline::kUnjittered;
  sim::Router border(sched, border_cfg, 1);

  sim::RouterConfig rs_cfg;
  rs_cfg.name = "route-server";
  rs_cfg.asn = 7;
  rs_cfg.router_id = IPv4Address(198, 32, 0, 1);
  rs_cfg.interface_addr = IPv4Address(198, 32, 0, 2);
  rs_cfg.transparent = true;
  rs_cfg.no_reexport = true;
  sim::Router rs(sched, rs_cfg, 2);

  sim::Link wire(sched, Duration::Millis(2));
  border.AttachLink(wire, true, 7);
  rs.AttachLink(wire, false, 701);

  core::ExchangeMonitor monitor;
  monitor.Attach(rs);
  core::CategoryCounts counts;
  core::InterArrivalHistogram interarrival;
  std::uint64_t policy_churn = 0;
  monitor.AddSink([&](const core::ClassifiedEvent& ev) {
    counts.Add(ev);
    interarrival.Add(ev);
    if (ev.policy_fluctuation) ++policy_churn;
  });

  igp::BgpRedistributor redist(backbone, border, {});
  sched.At(TimePoint::Origin(), [&wire] { wire.Restore(); });
  sched.At(TimePoint::Origin() + Duration::Seconds(1), [&backbone] {
    backbone.Start();
  });

  // --- phase 1: the flaky internal link beats every ~47 s for 30 min ---
  // (deliberately incommensurate with the 30 s SPF period; the visible
  // quantization must come from the timers, not the driver).
  std::printf("phase 1: internal link flapping every ~47 s for 30 min\n");
  for (int k = 0; k * 47 < 1800; ++k) {
    sched.At(TimePoint::Origin() + Duration::Minutes(2) +
                 Duration::Seconds(47 * k),
             [&backbone, flaky, k] {
               backbone.SetLinkUp(flaky, k % 2 == 1);
             });
  }
  sched.RunUntil(TimePoint::Origin() + Duration::Minutes(40));
  const auto phase1 = counts;

  // --- phase 2: internal metric oscillation (no reachability change) ---
  std::printf("phase 2: internal cost oscillation for 30 min\n");
  sched.At(TimePoint::Origin() + Duration::Minutes(44),
           [&backbone, flaky] { backbone.SetLinkUp(flaky, true); });
  for (int k = 0; k * 61 < 1800; ++k) {
    sched.At(TimePoint::Origin() + Duration::Minutes(45) +
                 Duration::Seconds(61 * k),
             [&backbone, flaky, k] {
               backbone.SetLinkCost(flaky, k % 2 ? 1 : 4);
             });
  }
  sched.RunUntil(TimePoint::Origin() + Duration::Minutes(80));
  interarrival.Finalize();

  std::printf("\n=== collector taxonomy ===\n%s\n",
              core::FormatCategoryReport(counts).c_str());
  std::printf("phase 1 (reachability flaps): %llu withdrawals, %llu WADup, "
              "%llu WADiff\n",
              static_cast<unsigned long long>(phase1.withdrawals),
              static_cast<unsigned long long>(
                  phase1.Of(core::Category::kWADup)),
              static_cast<unsigned long long>(
                  phase1.Of(core::Category::kWADiff)));
  std::printf("phase 2 (metric oscillation): %llu tuple-identical policy "
              "fluctuations (AADup at the collector)\n",
              static_cast<unsigned long long>(policy_churn));

  const auto summary = interarrival.Summarize();
  const auto& labels = core::InterArrivalHistogram::BinLabels();
  std::printf("\ninter-arrival distribution at the collector (AADup):\n");
  for (std::size_t bin = 0; bin < labels.size(); ++bin) {
    std::printf("%4s %.2f %s\n", labels[bin], summary[2][bin].median,
                core::AsciiBar(summary[2][bin].median, 0.8, 40).c_str());
  }
  std::printf("\nthe driver flapped at 47 s and 61 s periods, yet the "
              "collector sees 30 s/1 m gaps: the SPF timer and the flush "
              "timer quantize everything to their shared 30-second grid — "
              "the paper's conjectured IGP/BGP mechanism, reproduced.\n");
  return 0;
}
