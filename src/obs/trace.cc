#include "obs/trace.h"

#include <cstdio>

namespace iri::obs {

namespace {

void AppendEscaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void AppendU64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

void AppendI64(std::string& out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  out += buf;
}

}  // namespace

void Tracer::Merge(const Tracer& other) {
  buffer_ += other.buffer_;
  events_ += other.events_;
}

void Tracer::Clear() {
  buffer_.clear();
  events_ = 0;
}

TraceEvent::TraceEvent(Tracer* tracer, TimePoint now, std::string_view type)
    : tracer_(tracer) {
  if (tracer_ == nullptr) return;
  std::string& b = tracer_->buffer_;
  b += "{\"t_ns\":";
  AppendI64(b, now.nanos());
  b += ",\"ev\":\"";
  AppendEscaped(b, type);
  b += '"';
}

TraceEvent::~TraceEvent() {
  if (tracer_ == nullptr) return;
  tracer_->buffer_ += "}\n";
  ++tracer_->events_;
}

TraceEvent& TraceEvent::Str(std::string_view key, std::string_view value) {
  if (tracer_ == nullptr) return *this;
  std::string& b = tracer_->buffer_;
  b += ",\"";
  AppendEscaped(b, key);
  b += "\":\"";
  AppendEscaped(b, value);
  b += '"';
  return *this;
}

TraceEvent& TraceEvent::U64(std::string_view key, std::uint64_t value) {
  if (tracer_ == nullptr) return *this;
  std::string& b = tracer_->buffer_;
  b += ",\"";
  AppendEscaped(b, key);
  b += "\":";
  AppendU64(b, value);
  return *this;
}

TraceEvent& TraceEvent::I64(std::string_view key, std::int64_t value) {
  if (tracer_ == nullptr) return *this;
  std::string& b = tracer_->buffer_;
  b += ",\"";
  AppendEscaped(b, key);
  b += "\":";
  AppendI64(b, value);
  return *this;
}

}  // namespace iri::obs
