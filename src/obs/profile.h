// Scoped-timer profiling hooks for the hot paths (RIB insert/lookup,
// classifier Ingest, wire codec, Scheduler::RunUntil).
//
// The primary measurements are deterministic: every timed scope counts
// calls and items (events, routes, bytes — whatever the site's unit is),
// which depend only on (seed, config) and therefore belong in golden
// digests. Wall-clock time is the opt-in exception: when a registry has
// SetWallClockProfiling(true), sites additionally accumulate a wall_ns
// counter registered as Stability::kWallClock, which snapshots exclude by
// default. The only wall-clock read goes through iri::WallClockNanos()
// (netbase/time.cc), the single file the lint's wall-clock rule exempts.
//
// Usage: resolve a ProfileSite once at attach time (name lookups are a
// std::map walk, too slow for per-event work), keep it by value, and open a
// ScopedTimer per operation:
//
//   site_ = obs::MakeProfileSite(registry, "rib.announce");
//   ...
//   obs::ScopedTimer timer(&site_, nlri.size());
//
// A default-constructed (unresolved) site makes ScopedTimer a no-op, so
// components instrumented but not attached to a registry pay two pointer
// tests per scope and nothing else.
#pragma once

#include <cstdint>
#include <string>

#include "netbase/time.h"
#include "obs/metrics.h"

namespace iri::obs {

// Cached instrument pointers for one timed site. Plain value type: copy it
// into the owning component at attach time. Registry instruments never move
// once created, so the pointers stay valid for the registry's lifetime.
struct ProfileSite {
  Counter* calls = nullptr;
  Counter* items = nullptr;
  Counter* wall_ns = nullptr;  // non-null only in wall-clock mode
};

// Registers (or re-finds) "profile.<name>.calls" / ".items" and, when the
// registry has wall-clock profiling enabled, ".wall_ns" (kWallClock).
ProfileSite MakeProfileSite(Registry& registry, const std::string& name);

// Counts one call (plus `items` units of work) against a site; measures
// wall time only when the site was resolved in wall-clock mode. Use
// AddItems() when the unit count is only known inside the scope. Fully
// inline: unattached sites cost two pointer tests, attached ones two
// increments — these sit inside Rib::Announce and Scheduler::Step, where
// an out-of-line call pair is measurable (~4% on ScenarioSimulatedHour).
class ScopedTimer {
 public:
  explicit ScopedTimer(const ProfileSite* site, std::uint64_t items = 0)
      : site_(site), items_(items) {
    if (site_ != nullptr && site_->wall_ns != nullptr) {
      start_ns_ = WallClockNanos();
    }
  }
  ~ScopedTimer() {
    if (site_ == nullptr || site_->calls == nullptr) return;
    site_->calls->Add(1);
    site_->items->Add(items_);
    if (site_->wall_ns != nullptr) {
      site_->wall_ns->Add(
          static_cast<std::uint64_t>(WallClockNanos() - start_ns_));
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  void AddItems(std::uint64_t n) { items_ += n; }

 private:
  const ProfileSite* site_;
  std::uint64_t items_;
  std::int64_t start_ns_ = 0;
};

}  // namespace iri::obs
