#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <string_view>

namespace iri::obs {

namespace {

void AppendU64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

void AppendI64(std::string& out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  out += buf;
}

}  // namespace

Histogram::Histogram(std::span<const std::int64_t> upper_edges)
    : edges_(upper_edges.begin(), upper_edges.end()),
      buckets_(upper_edges.size() + 1, 0) {
  IRI_ASSERT(std::is_sorted(edges_.begin(), edges_.end()),
             "histogram upper edges must be ascending");
}

void Histogram::Observe(std::int64_t v) {
  const auto it = std::lower_bound(edges_.begin(), edges_.end(), v);
  buckets_[static_cast<std::size_t>(it - edges_.begin())] += 1;
  ++count_;
  sum_ += v;
}

void Histogram::Merge(const Histogram& other) {
  IRI_ASSERT(edges_ == other.edges_,
             "histogram merge requires identical bucket edges");
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

Registry::Instrument& Registry::Register(const std::string& name,
                                         Instrument::Kind kind,
                                         Stability stability) {
  auto it = instruments_.find(name);
  if (it != instruments_.end()) {
    IRI_ASSERT(it->second->kind == kind,
               "metrics name re-registered as a different instrument kind");
    return *it->second;
  }
  auto inst = std::make_unique<Instrument>();
  inst->kind = kind;
  inst->stability = stability;
  return *instruments_.emplace(name, std::move(inst)).first->second;
}

Counter& Registry::GetCounter(const std::string& name, Stability stability) {
  return Register(name, Instrument::Kind::kCounter, stability).counter;
}

Gauge& Registry::GetGauge(const std::string& name, Stability stability,
                          GaugeMerge merge) {
  Instrument& inst = Register(name, Instrument::Kind::kGauge, stability);
  // Last registration wins on a kSum->kMax upgrade so Merge() can create
  // the destination with the source's policy; conflicting explicit
  // policies in one partition are a caller bug caught by the snapshot
  // diverging, not worth an assert on the hot get-or-create path.
  if (merge == GaugeMerge::kMax) inst.gauge_merge = GaugeMerge::kMax;
  return inst.gauge;
}

Histogram& Registry::GetHistogram(const std::string& name,
                                  std::span<const std::int64_t> upper_edges,
                                  Stability stability) {
  Instrument& inst = Register(name, Instrument::Kind::kHistogram, stability);
  if (inst.histogram == nullptr) {
    inst.histogram = std::make_unique<Histogram>(upper_edges);
  } else {
    IRI_ASSERT(std::equal(upper_edges.begin(), upper_edges.end(),
                          inst.histogram->edges().begin(),
                          inst.histogram->edges().end()),
               "histogram re-registered with different bucket edges");
  }
  return *inst.histogram;
}

void Registry::Merge(const Registry& other) {
  for (const auto& [name, inst] : other.instruments_) {
    switch (inst->kind) {
      case Instrument::Kind::kCounter:
        GetCounter(name, inst->stability).Add(inst->counter.value());
        break;
      case Instrument::Kind::kGauge: {
        Gauge& g = GetGauge(name, inst->stability, inst->gauge_merge);
        if (inst->gauge_merge == GaugeMerge::kMax) {
          g.RaiseTo(inst->gauge.value());
        } else {
          g.Add(inst->gauge.value());
        }
        break;
      }
      case Instrument::Kind::kHistogram:
        GetHistogram(name, inst->histogram->edges(), inst->stability)
            .Merge(*inst->histogram);
        break;
    }
  }
}

std::string Registry::SnapshotText(bool include_wall_clock,
                                   const std::string& prefix) const {
  std::string out;
  // A profile site that never fired is pure registration noise: suppress the
  // whole `profile.<site>.{calls,items,wall_ns}` triple when calls == 0.
  // instruments_ is name-ordered, so the companions of a suppressed
  // `.calls` are the immediately following entries sharing its stem.
  std::string suppressed_stem;
  constexpr std::string_view kCalls = ".calls";
  for (const auto& [name, inst] : instruments_) {
    if (!suppressed_stem.empty()) {
      if (name.compare(0, suppressed_stem.size(), suppressed_stem) == 0) {
        const std::string_view leaf(name.c_str() + suppressed_stem.size());
        if (leaf == "items" || leaf == "wall_ns") continue;
      }
      suppressed_stem.clear();
    }
    if (inst->kind == Instrument::Kind::kCounter &&
        inst->counter.value() == 0 && name.size() > kCalls.size() &&
        name.compare(0, 8, "profile.") == 0 &&
        name.compare(name.size() - kCalls.size(), kCalls.size(), kCalls) ==
            0) {
      suppressed_stem.assign(name, 0, name.size() - kCalls.size() + 1);
      continue;
    }
    if (!include_wall_clock && inst->stability == Stability::kWallClock) {
      continue;
    }
    if (!prefix.empty() && name.compare(0, prefix.size(), prefix) != 0) {
      continue;
    }
    switch (inst->kind) {
      case Instrument::Kind::kCounter:
        out += "counter ";
        out += name;
        out += ' ';
        AppendU64(out, inst->counter.value());
        break;
      case Instrument::Kind::kGauge:
        out += "gauge ";
        out += name;
        out += ' ';
        AppendI64(out, inst->gauge.value());
        break;
      case Instrument::Kind::kHistogram: {
        const Histogram& h = *inst->histogram;
        out += "hist ";
        out += name;
        out += " count=";
        AppendU64(out, h.count());
        out += " sum=";
        AppendI64(out, h.sum());
        for (std::size_t i = 0; i < h.edges().size(); ++i) {
          out += " le";
          AppendI64(out, h.edges()[i]);
          out += '=';
          AppendU64(out, h.buckets()[i]);
        }
        out += " inf=";
        AppendU64(out, h.buckets().back());
        break;
      }
    }
    out += '\n';
  }
  return out;
}

std::string Registry::SnapshotJson(bool include_wall_clock) const {
  std::string counters, gauges, histograms;
  for (const auto& [name, inst] : instruments_) {
    if (!include_wall_clock && inst->stability == Stability::kWallClock) {
      continue;
    }
    switch (inst->kind) {
      case Instrument::Kind::kCounter:
        if (!counters.empty()) counters += ',';
        counters += '"';
        counters += name;
        counters += "\":";
        AppendU64(counters, inst->counter.value());
        break;
      case Instrument::Kind::kGauge:
        if (!gauges.empty()) gauges += ',';
        gauges += '"';
        gauges += name;
        gauges += "\":";
        AppendI64(gauges, inst->gauge.value());
        break;
      case Instrument::Kind::kHistogram: {
        const Histogram& h = *inst->histogram;
        if (!histograms.empty()) histograms += ',';
        histograms += '"';
        histograms += name;
        histograms += "\":{\"count\":";
        AppendU64(histograms, h.count());
        histograms += ",\"sum\":";
        AppendI64(histograms, h.sum());
        histograms += ",\"edges\":[";
        for (std::size_t i = 0; i < h.edges().size(); ++i) {
          if (i != 0) histograms += ',';
          AppendI64(histograms, h.edges()[i]);
        }
        histograms += "],\"buckets\":[";
        for (std::size_t i = 0; i < h.buckets().size(); ++i) {
          if (i != 0) histograms += ',';
          AppendU64(histograms, h.buckets()[i]);
        }
        histograms += "]}";
        break;
      }
    }
  }
  std::string out = "{\"counters\":{";
  out += counters;
  out += "},\"gauges\":{";
  out += gauges;
  out += "},\"histograms\":{";
  out += histograms;
  out += "}}";
  return out;
}

}  // namespace iri::obs
