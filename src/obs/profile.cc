#include "obs/profile.h"

namespace iri::obs {

ProfileSite MakeProfileSite(Registry& registry, const std::string& name) {
  ProfileSite site;
  site.calls = &registry.GetCounter("profile." + name + ".calls");
  site.items = &registry.GetCounter("profile." + name + ".items");
  if (registry.wall_clock_profiling()) {
    site.wall_ns = &registry.GetCounter("profile." + name + ".wall_ns",
                                        Stability::kWallClock);
  }
  return site;
}

}  // namespace iri::obs
