#include "obs/provenance.h"

#include <algorithm>

namespace iri::obs {

const char* ToString(CauseKind kind) {
  switch (kind) {
    case CauseKind::kNone: return "none";
    case CauseKind::kBootstrap: return "bootstrap";
    case CauseKind::kMultihoming: return "multihoming";
    case CauseKind::kCustomerFlap: return "customer_flap";
    case CauseKind::kFailover: return "failover";
    case CauseKind::kPathChange: return "path_change";
    case CauseKind::kCsuEpisode: return "csu_episode";
    case CauseKind::kOscillation: return "oscillation";
    case CauseKind::kPolicyFluctuation: return "policy_fluctuation";
    case CauseKind::kInternalReset: return "internal_reset";
    case CauseKind::kPathoSpray: return "patho_spray";
    case CauseKind::kMaintenance: return "maintenance";
    case CauseKind::kUpgrade: return "upgrade";
    case CauseKind::kSessionReset: return "session_reset";
    case CauseKind::kSessionRedump: return "session_redump";
    case CauseKind::kCount: break;
  }
  return "?";
}

#if defined(IRI_PROVENANCE_ENABLED) && IRI_PROVENANCE_ENABLED

CauseTag ProvenanceContext::Allocate(CauseKind kind, TimePoint now) {
  infos_.push_back(CauseInfo{kind, now});
  CauseTag tag;
  tag.id = static_cast<std::uint32_t>(infos_.size());
  tag.kind = static_cast<std::uint8_t>(kind);
  IRI_TRACE(tracer_, now, "cause_injected",
            .U64("id", tag.id).Str("kind", ToString(kind)));
  return tag;
}

void ShardProvenance::Record(std::size_t cls, const CauseTag& tag,
                             TimePoint now, bool first_touch) {
  const auto kind = static_cast<std::size_t>(tag.kind);
  const std::size_t bucket =
      std::min<std::size_t>(tag.depth, kDepthBuckets - 1);
  matrix_[CellIndex(cls, kind, bucket)] += 1;
  if (tag.IsNull()) {
    ++unattributed_;
    return;
  }
  ++attributed_;
  if (tag.depth > depth_peak_) depth_peak_ = tag.depth;
  if (stats_.size() < tag.id) stats_.resize(tag.id);
  CauseStats& s = stats_[tag.id - 1];
  s.kind = tag.Kind();
  ++s.updates;
  if (first_touch) ++s.prefixes;
  if (tag.depth > s.max_depth) s.max_depth = tag.depth;
  if (now < s.first_seen) s.first_seen = now;
  if (now > s.last_seen) s.last_seen = now;
}

void ShardProvenance::Merge(const ShardProvenance& other) {
  for (std::size_t i = 0; i < kCells; ++i) matrix_[i] += other.matrix_[i];
  attributed_ += other.attributed_;
  unattributed_ += other.unattributed_;
  depth_peak_ = std::max(depth_peak_, other.depth_peak_);
  if (stats_.size() < other.stats_.size()) stats_.resize(other.stats_.size());
  for (std::size_t i = 0; i < other.stats_.size(); ++i) {
    const CauseStats& o = other.stats_[i];
    if (o.updates == 0) continue;
    CauseStats& s = stats_[i];
    s.kind = o.kind;
    s.updates += o.updates;
    s.prefixes += o.prefixes;
    s.max_depth = std::max(s.max_depth, o.max_depth);
    s.first_seen = std::min(s.first_seen, o.first_seen);
    s.last_seen = std::max(s.last_seen, o.last_seen);
  }
}

std::uint64_t ShardProvenance::attributed() const { return attributed_; }
std::uint64_t ShardProvenance::unattributed() const { return unattributed_; }
std::uint8_t ShardProvenance::depth_peak() const { return depth_peak_; }

std::uint64_t ShardProvenance::MatrixAt(std::size_t cls, std::size_t kind,
                                        std::size_t depth_bucket) const {
  return matrix_[CellIndex(cls, kind, depth_bucket)];
}

std::uint64_t ShardProvenance::ClassTotal(std::size_t cls) const {
  std::uint64_t sum = 0;
  for (std::size_t k = 0; k < kNumCauseKinds; ++k) {
    for (std::size_t d = 0; d < kDepthBuckets; ++d) {
      sum += matrix_[CellIndex(cls, k, d)];
    }
  }
  return sum;
}

std::uint64_t ShardProvenance::ClassAttributed(std::size_t cls) const {
  std::uint64_t sum = ClassTotal(cls);
  for (std::size_t d = 0; d < kDepthBuckets; ++d) {
    sum -= matrix_[CellIndex(
        cls, static_cast<std::size_t>(CauseKind::kNone), d)];
  }
  return sum;
}

std::uint64_t ShardProvenance::DepthBucketTotal(
    std::size_t depth_bucket) const {
  std::uint64_t sum = 0;
  for (std::size_t c = 0; c < kMaxClasses; ++c) {
    for (std::size_t k = 0; k < kNumCauseKinds; ++k) {
      sum += matrix_[CellIndex(c, k, depth_bucket)];
    }
  }
  return sum;
}

const std::vector<ShardProvenance::CauseStats>& ShardProvenance::cause_stats()
    const {
  return stats_;
}

#endif  // IRI_PROVENANCE_ENABLED (compiled-out bodies are inline in the
        // header so hot-path call sites fold away entirely)

}  // namespace iri::obs
