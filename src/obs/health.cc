#include "obs/health.h"

#include <algorithm>
#include <cmath>

namespace iri::obs {

namespace {

constexpr double kPi = 3.14159265358979323846;

// Parts-per-million as an integer gauge value: keeps doubles out of the
// snapshot text while preserving enough resolution for thresholding.
std::int64_t ToPpm(double share) {
  return static_cast<std::int64_t>(std::llround(share * 1e6));
}

}  // namespace

HealthMonitor::HealthMonitor(HealthConfig config, Duration tick,
                             Tracer* tracer, Registry* registry)
    : config_(config), tick_(tick), trace_(tracer) {
  IRI_ASSERT(registry != nullptr, "health monitor requires a registry");
  IRI_ASSERT(tick.nanos() > 0, "health monitor requires a positive tick");
  // A band is watchable only below the Nyquist rate of the tick.
  if (config_.period_a.nanos() >= 2 * tick_.nanos()) {
    freq_a_ = tick_ / config_.period_a;
  }
  if (config_.period_b.nanos() >= 2 * tick_.nanos()) {
    freq_b_ = tick_ / config_.period_b;
  }
  block_.reserve(static_cast<std::size_t>(
      std::max(1, config_.goertzel_block_ticks)));
  patho_ring_.assign(
      static_cast<std::size_t>(std::max(1, config_.storm_window_ticks)), 0);

  ticks_ = &registry->GetCounter("health.ticks");
  storm_starts_ = &registry->GetCounter("health.storm.starts");
  storm_ticks_ = &registry->GetCounter("health.storm.ticks");
  periodicity_alerts_ = &registry->GetCounter("health.periodicity.alerts");
  flap_bursts_ = &registry->GetCounter("health.flap.bursts");
  // Peak/score gauges merge by maximum across exchanges: "worst partition"
  // is the operator-facing reading, a sum of peaks is not.
  storm_active_gauge_ = &registry->GetGauge(
      "health.storm.active", Stability::kDeterministic, GaugeMerge::kMax);
  storm_peak_gauge_ = &registry->GetGauge(
      "health.storm.peak_window", Stability::kDeterministic, GaugeMerge::kMax);
  periodicity_a_gauge_ = &registry->GetGauge(
      "health.periodicity.a_ppm", Stability::kDeterministic, GaugeMerge::kMax);
  periodicity_b_gauge_ = &registry->GetGauge(
      "health.periodicity.b_ppm", Stability::kDeterministic, GaugeMerge::kMax);
  burst_peak_gauge_ = &registry->GetGauge(
      "health.flap.peak_events", Stability::kDeterministic, GaugeMerge::kMax);
}

double HealthMonitor::GoertzelPower(const std::vector<double>& x,
                                    double freq) {
  // Standard Goertzel recurrence, valid at any real frequency (not just bin
  // centers; off-bin leakage only blurs the score, never fabricates a peak).
  const double omega = 2.0 * kPi * freq;
  const double coeff = 2.0 * std::cos(omega);
  double s_prev = 0.0, s_prev2 = 0.0;
  for (const double v : x) {
    const double s = v + coeff * s_prev - s_prev2;
    s_prev2 = s_prev;
    s_prev = s;
  }
  return s_prev * s_prev + s_prev2 * s_prev2 - coeff * s_prev * s_prev2;
}

void HealthMonitor::EvaluateBlock(TimePoint now) {
  const std::size_t n = block_.size();
  if (n < 8) {
    block_.clear();
    return;
  }
  // Demean: the DC component would otherwise dwarf every timer line.
  double mean = 0.0;
  for (const double v : block_) mean += v;
  mean /= static_cast<double>(n);
  double total = 0.0;
  for (double& v : block_) {
    v -= mean;
    total += v * v;
  }
  if (total > 0.0) {
    // Share of the block's variance explained by one frequency bin: for a
    // real signal, |X(f)|^2 * 2/N relative to sum(x^2).
    const double scale = 2.0 / static_cast<double>(n);
    auto score_band = [&](double freq, [[maybe_unused]] Duration period,
                          Gauge* gauge, std::int64_t* best) {
      if (freq <= 0.0) return;
      const double share = GoertzelPower(block_, freq) * scale / total;
      const std::int64_t ppm = ToPpm(share);
      gauge->RaiseTo(ppm);
      if (ppm > *best) *best = ppm;
      if (share >= config_.periodicity_threshold) {
        periodicity_alerts_->Add(1);
        IRI_TRACE(trace_, now, "health_periodicity",
                  .I64("period_ms", period.nanos() / 1'000'000)
                      .I64("score_ppm", ppm));
      }
    };
    score_band(freq_a_, config_.period_a, periodicity_a_gauge_, &best_ppm_a_);
    score_band(freq_b_, config_.period_b, periodicity_b_gauge_, &best_ppm_b_);
  }
  block_.clear();
}

void HealthMonitor::ObserveTick(TimePoint now, std::uint64_t updates,
                                std::uint64_t wwdup, std::uint64_t aadup) {
  ticks_->Add(1);

  // --- periodicity: per-tick update counts, scored once per block ---
  block_.push_back(static_cast<double>(updates));
  if (block_.size() >=
      static_cast<std::size_t>(std::max(1, config_.goertzel_block_ticks))) {
    EvaluateBlock(now);
  }

  // --- storm detector over the pathology bins ---
  // The detector watches the sliding-window sum, not the raw tick: a spray
  // burst lands in one flush tick, and the window keeps it over the bar for
  // the consecutive ticks the hysteresis demands.
  const std::uint64_t patho = wwdup + aadup;
  patho_sum_ -= patho_ring_[ring_next_];
  patho_sum_ += patho;
  patho_ring_[ring_next_] = patho;
  ring_next_ = (ring_next_ + 1) % patho_ring_.size();
  const double p = static_cast<double>(patho_sum_);
  const double enter_bar =
      std::max(static_cast<double>(config_.storm_min_count),
               config_.storm_factor * baseline_);
  const double exit_bar =
      std::max(static_cast<double>(config_.storm_min_count) / 2.0,
               config_.storm_exit_factor * baseline_);
  if (storm_active_) {
    storm_ticks_->Add(1);
    storm_peak_ = std::max(storm_peak_, patho_sum_);
    storm_peak_gauge_->RaiseTo(static_cast<std::int64_t>(storm_peak_));
    if (p < exit_bar) {
      storm_active_ = false;
      storm_active_gauge_->Set(0);
      IRI_TRACE(trace_, now, "storm_end",
                .U64("peak_window", storm_peak_)
                    .I64("duration_ns", (now - storm_start_).nanos()));
    }
  } else {
    if (baseline_seeded_ && p >= enter_bar) {
      ++over_ticks_;
      if (over_ticks_ >= config_.storm_enter_ticks) {
        storm_active_ = true;
        ++storms_started_;
        storm_start_ = now;
        storm_peak_ = patho_sum_;
        over_ticks_ = 0;
        storm_starts_->Add(1);
        storm_active_gauge_->Set(1);
        storm_peak_gauge_->RaiseTo(static_cast<std::int64_t>(storm_peak_));
        IRI_TRACE(trace_, now, "storm_start",
                  .U64("window", patho_sum_)
                      .I64("baseline_x100",
                           static_cast<std::int64_t>(
                               std::llround(baseline_ * 100.0))));
      }
    } else {
      over_ticks_ = 0;
    }
    // The baseline learns only outside storms (and outside the run-up to
    // one), so a storm cannot raise its own bar.
    if (!storm_active_ && over_ticks_ == 0) {
      baseline_ = baseline_seeded_
                      ? config_.baseline_alpha * p +
                            (1.0 - config_.baseline_alpha) * baseline_
                      : p;
      baseline_seeded_ = true;
    }
  }
}

void HealthMonitor::CloseSession([[maybe_unused]] TimePoint now,
                                 std::uint32_t peer) {
  const auto it = sessions_.find(peer);
  if (it == sessions_.end()) return;
  const Session& s = it->second;
  if (s.events >= config_.session_min_events) {
    flap_bursts_->Add(1);
    burst_peak_gauge_->RaiseTo(static_cast<std::int64_t>(s.events));
    IRI_TRACE(trace_, now, "flap_burst",
              .U64("peer", peer)
                  .U64("events", s.events)
                  .I64("start_ns", s.start.nanos())
                  .I64("duration_ns", (s.last - s.start).nanos()));
  }
  sessions_.erase(it);
}

void HealthMonitor::ObservePeerEvent(TimePoint now, std::uint32_t peer) {
  auto [it, inserted] = sessions_.try_emplace(peer);
  Session& s = it->second;
  if (inserted) {
    s.start = now;
    s.last = now;
    s.events = 1;
    return;
  }
  if (now - s.last > config_.session_gap) {
    // Gap too long: the previous burst is over; this event opens a new one.
    CloseSession(now, peer);
    Session& fresh = sessions_[peer];
    fresh.start = now;
    fresh.last = now;
    fresh.events = 1;
    return;
  }
  s.last = now;
  ++s.events;
}

void HealthMonitor::Finalize(TimePoint now) {
  EvaluateBlock(now);
  // Close bursts in peer order — deterministic regardless of arrival
  // history, since sessions_ is an ordered map.
  while (!sessions_.empty()) {
    CloseSession(now, sessions_.begin()->first);
  }
  if (storm_active_) {
    storm_active_ = false;
    storm_active_gauge_->Set(0);
    IRI_TRACE(trace_, now, "storm_end",
              .U64("peak_window", storm_peak_)
                  .I64("duration_ns", (now - storm_start_).nanos()));
  }
}

}  // namespace iri::obs
