// Online instability-health detection, fed from the series layer's flush
// ticks (obs/timeseries.h).
//
// Three streaming detectors, each a cheap online analogue of an offline
// analysis the paper runs post hoc:
//
//   * a Goertzel-filter periodicity score at the 30 s / 60 s flush-timer
//     frequencies — the online counterpart of §6's spectral analysis (the
//     self-synchronization fingerprint of unjittered flush timers);
//   * a WWDup/AADup storm detector — rate-over-EWMA-baseline with
//     hysteresis, the signal an operator would have wanted during Table 1's
//     pathological-ISP day instead of discovering millions of withdrawals
//     in the logs afterwards;
//   * a per-peer flap-burst sessionizer — runs of updates from one peering
//     with inter-event gaps under a threshold, the paper's "fine-grained
//     instability" grouped the way RIPE-style collectors sessionize flaps.
//
// Every detector emits IRI_TRACE alert events (compiled out with the trace
// layer) and health.* instruments in the partition's registry, so alerts
// merge across exchanges in fixed order exactly like every other metric —
// byte-identical at any worker-thread count. Detectors never touch RNG,
// routers or the scheduler: observing health cannot perturb the run.
//
// Lives in obs (not core): it consumes only tick-sampled counts and peer
// ids, so the obs -> {obs, netbase} layer boundary stays closed
// (tools/lint/iri_lint.py pins the map; see its obs self-test cases).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "netbase/time.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace iri::obs {

struct HealthConfig {
  // --- Goertzel periodicity score ---
  // Timer periods to watch: the paper's 30 s flush interval and its 60 s
  // harmonic-adjacent beat (Figure 8's dominant inter-arrival bins).
  Duration period_a = Duration::Seconds(30);
  Duration period_b = Duration::Seconds(60);
  // Ticks per analysis block; the score is recomputed once per block.
  int goertzel_block_ticks = 60;
  // Alert when a single frequency bin explains at least this share of the
  // demeaned block's variance (parts-per-million in the gauges).
  double periodicity_threshold = 0.18;

  // --- WWDup/AADup storm detector ---
  // Enter a storm when the windowed pathology count exceeds
  // max(storm_min_count, storm_factor * baseline) for storm_enter_ticks
  // consecutive ticks; leave when it falls below
  // max(storm_min_count / 2, storm_exit_factor * baseline). The EWMA
  // baseline freezes while a storm is active so the storm cannot raise its
  // own bar.
  double storm_factor = 6.0;
  double storm_exit_factor = 2.0;
  std::uint64_t storm_min_count = 60;
  int storm_enter_ticks = 2;
  double baseline_alpha = 0.05;
  // Pathology counts are summed over a sliding window of this many ticks
  // before they meet the bars. Stateless-flush spray bursts arrive packed
  // into a single 10 s tick with silence on either side; the window keeps a
  // large isolated burst visible long enough to satisfy the consecutive-tick
  // hysteresis without weakening it for genuinely flat traffic. 1 =
  // instantaneous (per-tick) comparison.
  int storm_window_ticks = 6;

  // --- per-peer flap-burst sessionizer ---
  // Events from one peer belong to the same burst while gaps stay under
  // session_gap; bursts shorter than session_min_events stay unreported.
  Duration session_gap = Duration::Seconds(90);
  std::uint64_t session_min_events = 50;
};

// Streaming detector bank. One per partition, constructed with that
// partition's tracer and registry; ObserveTick is driven by the scenario's
// series flush event, ObservePeerEvent by the monitor's classified-event
// path.
class HealthMonitor {
 public:
  HealthMonitor(HealthConfig config, Duration tick, Tracer* tracer,
                Registry* registry);

  // One closed series window: total classified events plus the two
  // pathology bins, sampled just before the series flush drains them.
  void ObserveTick(TimePoint now, std::uint64_t updates, std::uint64_t wwdup,
                   std::uint64_t aadup);

  // One classified event from `peer`, in arrival order.
  void ObservePeerEvent(TimePoint now, std::uint32_t peer);

  // End of scenario: closes open flap bursts (in peer order) and any open
  // storm so their alerts are not lost.
  void Finalize(TimePoint now);

  bool storm_active() const { return storm_active_; }
  std::uint64_t storms_started() const { return storms_started_; }
  // Strongest block score seen so far, in parts per million.
  std::int64_t periodicity_ppm_a() const { return best_ppm_a_; }
  std::int64_t periodicity_ppm_b() const { return best_ppm_b_; }

 private:
  void EvaluateBlock(TimePoint now);
  void CloseSession(TimePoint now, std::uint32_t peer);

  // |X(f)|^2 of `x` at normalized frequency f (cycles/sample) via the
  // Goertzel recurrence; tolerant of non-bin-centered frequencies.
  static double GoertzelPower(const std::vector<double>& x, double freq);

  HealthConfig config_;
  Duration tick_;
  Tracer* trace_;

  // Periodicity state.
  double freq_a_ = 0;  // cycles per tick; 0 disables the band
  double freq_b_ = 0;
  std::vector<double> block_;
  std::int64_t best_ppm_a_ = 0;
  std::int64_t best_ppm_b_ = 0;

  // Storm state. The ring holds the last storm_window_ticks pathology
  // counts; patho_sum_ is their running sum (the detector's input signal).
  std::vector<std::uint64_t> patho_ring_;
  std::size_t ring_next_ = 0;
  std::uint64_t patho_sum_ = 0;
  double baseline_ = 0;
  bool baseline_seeded_ = false;
  bool storm_active_ = false;
  int over_ticks_ = 0;
  std::uint64_t storm_peak_ = 0;
  TimePoint storm_start_;
  std::uint64_t storms_started_ = 0;

  // Sessionizer state (std::map: Finalize iterates in peer order).
  struct Session {
    TimePoint start;
    TimePoint last;
    std::uint64_t events = 0;
  };
  std::map<std::uint32_t, Session> sessions_;

  // health.* instruments (registered at construction; never null).
  Counter* ticks_ = nullptr;
  Counter* storm_starts_ = nullptr;
  Counter* storm_ticks_ = nullptr;
  Counter* periodicity_alerts_ = nullptr;
  Counter* flap_bursts_ = nullptr;
  Gauge* storm_active_gauge_ = nullptr;
  Gauge* storm_peak_gauge_ = nullptr;
  Gauge* periodicity_a_gauge_ = nullptr;
  Gauge* periodicity_b_gauge_ = nullptr;
  Gauge* burst_peak_gauge_ = nullptr;
};

}  // namespace iri::obs
