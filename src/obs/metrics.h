// Deterministic self-measurement: a metrics registry of named counters,
// gauges and fixed-bucket histograms.
//
// The paper's whole contribution is measurement — tap the route servers,
// count and classify everything, mine the streams for structure (§2–§4).
// This registry is the same discipline turned inward on the simulator
// itself: every hot path (RIB, classifier ingest, wire codec, scheduler)
// and every fault path (crashes, link drops, session resets) feeds named
// instruments, snapshottable to stable-ordered text and JSON.
//
// Determinism contract (the property every consumer leans on):
//   * instruments hold plain integers fed only by simulation events, so a
//     partition's registry depends on (seed, config) alone, never on thread
//     placement or wall time;
//   * snapshots iterate a name-ordered std::map — output bytes are stable
//     across libstdc++ versions and across runs;
//   * Merge() folds another registry in by name (counters and gauges add,
//     histograms add bucket-wise), mirroring core::CategoryCounts::Merge —
//     the partitioned multi-exchange runner merges per-exchange registries
//     in fixed exchange order, so merged output is bit-identical at any
//     worker-thread count (locked by tests/golden_run_test.cc).
//
// The one sanctioned nondeterministic exception: instruments registered
// with Stability::kWallClock (the profiling layer's optional wall-time
// counters). They are excluded from snapshots unless explicitly requested
// and never belong in a golden digest.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/invariants.h"

namespace iri::obs {

class Counter {
 public:
  void Add(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void Set(std::int64_t v) { value_ = v; }
  void Add(std::int64_t v) { value_ += v; }
  // For peak-style gauges: keeps the maximum ever offered.
  void RaiseTo(std::int64_t v) {
    if (v > value_) value_ = v;
  }
  std::int64_t value() const { return value_; }

 private:
  std::int64_t value_ = 0;
};

// Fixed-bucket histogram: `upper_edges` are ascending inclusive upper
// bounds; one overflow bucket catches everything beyond the last edge.
// Buckets are fixed at registration so merged histograms always align.
class Histogram {
 public:
  explicit Histogram(std::span<const std::int64_t> upper_edges);

  void Observe(std::int64_t v);

  std::uint64_t count() const { return count_; }
  std::int64_t sum() const { return sum_; }
  std::span<const std::int64_t> edges() const { return edges_; }
  // buckets()[i] counts observations <= edges()[i]; the final element is
  // the overflow bucket.
  std::span<const std::uint64_t> buckets() const { return buckets_; }

  // Bucket-wise sum; edge vectors must be identical.
  void Merge(const Histogram& other);

 private:
  std::vector<std::int64_t> edges_;
  std::vector<std::uint64_t> buckets_;  // edges_.size() + 1 (overflow last)
  std::uint64_t count_ = 0;
  std::int64_t sum_ = 0;
};

// Whether an instrument participates in deterministic snapshots (and hence
// golden digests). kWallClock marks the profiling layer's wall-time
// counters, which vary run to run by construction.
enum class Stability : std::uint8_t { kDeterministic, kWallClock };

// How Merge() folds a gauge across partitions. kSum suits level-style
// gauges (current sizes, token counts); kMax suits peak- and score-style
// gauges fed via RaiseTo, where a sum of per-partition maxima reads as a
// number no single partition ever saw.
enum class GaugeMerge : std::uint8_t { kSum, kMax };

// Name-keyed instrument registry. Registration returns a stable reference
// (instruments never move once created), so hot paths cache the pointer at
// attach time and pay one predictable increment per event afterwards.
// Re-registering a name returns the existing instrument; registering the
// same name as a different kind is a caller bug (IRI_ASSERT).
//
// A Registry is single-partition state: one per ExchangeScenario, private
// to whichever worker owns that partition. Cross-partition aggregation goes
// through Merge() on the calling thread after the join, in fixed exchange
// order — never through sharing.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;
  Registry(Registry&&) = default;
  Registry& operator=(Registry&&) = default;

  Counter& GetCounter(const std::string& name,
                      Stability stability = Stability::kDeterministic);
  Gauge& GetGauge(const std::string& name,
                  Stability stability = Stability::kDeterministic,
                  GaugeMerge merge = GaugeMerge::kSum);
  Histogram& GetHistogram(const std::string& name,
                          std::span<const std::int64_t> upper_edges,
                          Stability stability = Stability::kDeterministic);

  // Opt-in for the profiling layer's wall-clock mode (obs/profile.h). Set
  // before components attach; per-registry so concurrent partitions never
  // share the flag.
  void SetWallClockProfiling(bool on) { wall_clock_profiling_ = on; }
  bool wall_clock_profiling() const { return wall_clock_profiling_; }

  // Folds `other` into this registry by instrument name, creating missing
  // instruments. Counters add; histograms add bucket-wise (edges must
  // match); gauges follow their registered GaugeMerge policy — kSum gauges
  // add, kMax gauges keep the maximum across partitions (DESIGN.md §9).
  void Merge(const Registry& other);

  // Stable text snapshot, one line per instrument in name order:
  //   counter <name> <value>
  //   gauge <name> <value>
  //   hist <name> count=<n> sum=<s> le<edge>=<n>... inf=<n>
  // Only names starting with `prefix` are emitted (empty = all). kWallClock
  // instruments are skipped unless `include_wall_clock`.
  std::string SnapshotText(bool include_wall_clock = false,
                           const std::string& prefix = std::string()) const;

  // Stable JSON snapshot: {"counters":{...},"gauges":{...},
  // "histograms":{"name":{"count":n,"sum":s,"edges":[...],"buckets":[...]}}}
  // with keys in name order.
  std::string SnapshotJson(bool include_wall_clock = false) const;

  std::size_t size() const { return instruments_.size(); }

 private:
  struct Instrument {
    enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram } kind;
    Stability stability = Stability::kDeterministic;
    GaugeMerge gauge_merge = GaugeMerge::kSum;
    Counter counter;
    Gauge gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Instrument& Register(const std::string& name, Instrument::Kind kind,
                       Stability stability);

  // Ordered map: snapshot iteration order == name order, by construction.
  std::map<std::string, std::unique_ptr<Instrument>> instruments_;
  bool wall_clock_profiling_ = false;
};

}  // namespace iri::obs
