// Streaming time-series telemetry: windowed instruments drained by a
// scheduler-driven periodic flush into ordered JSONL series records.
//
// Where the metrics registry (obs/metrics.h) answers "how many, in total, at
// the end", the series layer answers "how many per window, while the run is
// still going" — the live signal the Routing Arbiter operators would have
// needed during the events of §5–§6 instead of a post-mortem snapshot.
//
// Determinism contract, identical to SnapshotText's:
//   * instruments are fed only by simulation events and flushed only by a
//     sim-time scheduler tick, so the record stream is a pure function of
//     (seed, config);
//   * every flush drains instruments in name order (std::map), one record
//     per instrument, stamped with simulated time;
//   * the flusher is single-partition state (one per ExchangeScenario); the
//     multi-exchange runner concatenates per-partition record buffers in
//     fixed exchange order, so merged bytes are identical at any worker
//     thread count (locked by tests/golden_run_test.cc via the digest's
//     timeseries section).
//
// EWMA values are doubles formatted with a fixed "%.6f"; the arithmetic is
// a fixed sequence of IEEE-754 operations per partition, so the formatted
// bytes cannot vary with thread placement.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/invariants.h"
#include "netbase/time.h"

namespace iri::obs {

// A windowed counter: per-window count (the "rolling rate" once divided by
// the flush interval), a cumulative total, and an EWMA of the per-window
// counts updated at every flush. Hot paths cache the pointer at attach time,
// like registry counters.
class WindowedCounter {
 public:
  void Add(std::uint64_t n = 1) {
    window_ += n;
    total_ += n;
  }

  // The count accumulated since the last flush (readable before the flush
  // drains it — the health monitor samples windows this way).
  std::uint64_t window() const { return window_; }
  std::uint64_t total() const { return total_; }
  double ewma() const { return ewma_; }

  // Closes the window: folds it into the EWMA and resets it to zero. The
  // first window seeds the EWMA directly.
  void CloseWindow(double alpha) {
    const double w = static_cast<double>(window_);
    ewma_ = seeded_ ? alpha * w + (1.0 - alpha) * ewma_ : w;
    seeded_ = true;
    window_ = 0;
  }

 private:
  std::uint64_t window_ = 0;
  std::uint64_t total_ = 0;
  double ewma_ = 0.0;
  bool seeded_ = false;
};

// A sliding-window histogram: fixed buckets (ascending inclusive upper
// edges plus an overflow bucket, like obs::Histogram) over the last
// `window_ticks` flush windows. Each flush retires the oldest window from a
// ring of per-window bucket arrays.
class WindowedHistogram {
 public:
  WindowedHistogram(std::span<const std::int64_t> upper_edges,
                    int window_ticks);

  void Observe(std::int64_t v);

  // Aggregates over the retained windows plus the one currently open.
  std::uint64_t count() const { return count_; }
  std::int64_t sum() const { return sum_; }
  std::span<const std::int64_t> edges() const { return edges_; }
  std::span<const std::uint64_t> buckets() const { return totals_; }

  // Closes the current window into the ring, evicting the oldest.
  void CloseWindow();

 private:
  std::vector<std::int64_t> edges_;
  // ring_[slot] is one window's bucket array (edges_.size() + 1 wide).
  std::vector<std::vector<std::uint64_t>> ring_;
  std::vector<std::uint64_t> current_;
  std::vector<std::uint64_t> totals_;  // sum of ring_ + current_
  std::vector<std::int64_t> window_sums_;
  std::vector<std::uint64_t> window_counts_;
  std::size_t slot_ = 0;
  std::uint64_t count_ = 0;
  std::int64_t sum_ = 0;
  std::uint64_t current_count_ = 0;
  std::int64_t current_sum_ = 0;
};

// Name-keyed set of windowed instruments plus the JSONL record buffer a
// periodic sim-time event drains them into. One record per instrument per
// flush:
//
//   {"t_ns":<ns>,"series":"<name>","window":<n>,"total":<n>,"ewma":<x.xxxxxx>}
//   {"t_ns":<ns>,"series":"<name>","count":<n>,"sum":<n>,"buckets":[...]}
//
// Ownership discipline matches Registry/Tracer: single-partition, never
// shared across workers, per-partition buffers concatenated in fixed
// exchange order after the join.
class SeriesFlusher {
 public:
  SeriesFlusher() = default;
  SeriesFlusher(const SeriesFlusher&) = delete;
  SeriesFlusher& operator=(const SeriesFlusher&) = delete;
  SeriesFlusher(SeriesFlusher&&) = default;
  SeriesFlusher& operator=(SeriesFlusher&&) = default;

  // EWMA smoothing for every counter series; set before the first flush.
  void SetEwmaAlpha(double alpha) { ewma_alpha_ = alpha; }

  // Registration returns stable references (instruments never move);
  // re-registering a name returns the existing instrument.
  WindowedCounter& GetCounter(const std::string& name);
  WindowedHistogram& GetHistogram(const std::string& name,
                                  std::span<const std::int64_t> upper_edges,
                                  int window_ticks);

  // Appends one record per instrument, in name order, stamped `now`, then
  // closes every window. Driven by the scenario's periodic flush event.
  void Flush(TimePoint now);

  // The buffered JSONL text (complete lines, "\n"-terminated).
  const std::string& buffer() const { return buffer_; }
  std::uint64_t records() const { return records_; }
  std::uint64_t flushes() const { return flushes_; }

  void Clear();

 private:
  struct Instrument {
    std::unique_ptr<WindowedCounter> counter;    // exactly one of these
    std::unique_ptr<WindowedHistogram> histogram;
  };

  // Ordered map: flush iteration order == name order, by construction.
  std::map<std::string, Instrument> instruments_;
  std::string buffer_;
  std::uint64_t records_ = 0;
  std::uint64_t flushes_ = 0;
  double ewma_alpha_ = 0.3;
};

}  // namespace iri::obs
