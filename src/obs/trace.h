// Structured trace layer: sim-time-stamped JSONL events for the simulator's
// fault and control paths (session FSM transitions, link fail/restore,
// router crash/recover, re-dump start/end, scheduler backlog).
//
// Where the metrics registry (obs/metrics.h) answers "how many", the trace
// answers "what happened, when, in what order" — the same event streams the
// paper mines from its route-server taps (§2), emitted by the simulator
// about itself. One JSON object per line:
//
//   {"t_ns":<sim nanos>,"ev":"<type>","<key>":<value>,...}
//
// Timestamps are simulated time only, so a trace is a pure function of
// (seed, config): diffing two runs' traces is a meaningful regression test,
// not noise. Traces buffer in memory per partition (one Tracer per
// ExchangeScenario, private to its worker) and concatenate in fixed exchange
// order via Merge(), like the metrics registries.
//
// Emission sites go through the IRI_TRACE macro, which compiles to nothing
// when the IRI_TRACE CMake option is OFF — the acceptance bar is <= 2%
// micro_perf cost in that configuration, so arguments must not be evaluated
// when compiled out.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "netbase/time.h"

namespace iri::obs {

class TraceEvent;

// An in-memory JSONL buffer. Single-partition state, same ownership
// discipline as obs::Registry: never shared across workers, merged on the
// calling thread after the join.
class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;
  Tracer(Tracer&&) = default;
  Tracer& operator=(Tracer&&) = default;

  // The buffered JSONL text (complete lines, each "\n"-terminated).
  const std::string& buffer() const { return buffer_; }
  std::uint64_t events() const { return events_; }

  // Appends `other`'s buffer verbatim. Callers merge partitions in fixed
  // exchange order so the combined trace is thread-count independent.
  void Merge(const Tracer& other);

  void Clear();

 private:
  friend class TraceEvent;
  std::string buffer_;
  std::uint64_t events_ = 0;
};

// RAII builder for one trace line. Construct with the tracer, sim time and
// event type, chain field setters, and the line is sealed ("}\n") when the
// temporary dies at the end of the full expression. A null tracer makes
// every operation a no-op, so call sites do not need their own guards.
class TraceEvent {
 public:
  TraceEvent(Tracer* tracer, TimePoint now, std::string_view type);
  ~TraceEvent();
  TraceEvent(const TraceEvent&) = delete;
  TraceEvent& operator=(const TraceEvent&) = delete;

  TraceEvent& Str(std::string_view key, std::string_view value);
  TraceEvent& U64(std::string_view key, std::uint64_t value);
  TraceEvent& I64(std::string_view key, std::int64_t value);

 private:
  Tracer* tracer_;
};

}  // namespace iri::obs

// IRI_TRACE(tracer, now, type)                      — bare event
// IRI_TRACE(tracer, now, type, .Str("k", v).U64(...)) — event with fields
//
// `tracer` is an obs::Tracer* (null disables the site at runtime); the whole
// statement, arguments included, compiles out when the IRI_TRACE CMake
// option is OFF (no IRI_TRACE_ENABLED definition).
#if defined(IRI_TRACE_ENABLED) && IRI_TRACE_ENABLED
#define IRI_TRACE(tracer, now, type, ...) \
  ::iri::obs::TraceEvent((tracer), (now), (type)) __VA_ARGS__
#else
#define IRI_TRACE(tracer, now, type, ...) ((void)0)
#endif
