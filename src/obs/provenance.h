// Causal provenance tracing: every injected fault/policy event is stamped
// with a compact cause id, the tag rides next to the update as it moves
// through the router's decision path, outbound queue and links (a sideband —
// the wire bytes and MRT stream are provably unchanged), and the classifier
// aggregates tags into an attribution matrix: pathology class × root cause
// kind × hop depth, plus per-cause blast radius. This closes the paper's
// open question ("we can only speculate about the causes") in-sim: the
// simulator knows ground truth, so WWDup dominance can be attributed to the
// stateless-BGP internal resets and sprays that produced it.
//
// Determinism contract (DESIGN.md §14): cause ids are a dense per-partition
// sequence in allocation order — a pure function of (seed, config) because
// every allocation happens on the partition's single scheduler thread. All
// aggregation state is indexed by id or by fixed enum order; merges follow
// the fixed-order contract (per-exchange, then per-shard:
// ShardProvenance::Merge is an iri_det aggregation sink like
// Shard*::totals), so digests are byte-identical across the
// (threads × shards × shard_threads) matrix.
//
// Compiles out cleanly: -DIRI_PROVENANCE=OFF collapses CauseTag/CauseVec to
// empty stand-ins (zero bytes via [[no_unique_address]], no-op calls), so
// tagged structs and call sites need no #if guards of their own.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "netbase/time.h"
#include "obs/trace.h"

namespace iri::obs {

// Root cause taxonomy: one value per injected fault/policy mechanism the
// scenario drives, plus the emergent session events a router must label
// itself when no injected cause is in scope (hold-timer expiries, re-dumps
// after organic handshakes). Order is part of the digest format — append
// only.
enum class CauseKind : std::uint8_t {
  kNone = 0,          // unattributed (e.g. offline MRT replay)
  kBootstrap,         // initial table population at scenario start
  kMultihoming,       // backup-provider activation (growth schedule)
  kCustomerFlap,      // leased-line flap + repair
  kFailover,          // multihomed customer failover flap
  kPathChange,        // convergence transient onto the alternate path
  kCsuEpisode,        // CSU clock-drift oscillation episode
  kOscillation,       // internal route-selection oscillation episode
  kPolicyFluctuation, // MED/community churn
  kInternalReset,     // IGP/iBGP reset at a stateless provider
  kPathoSpray,        // the pathological small-ISP withdrawal spray
  kMaintenance,       // maintenance-window session reset
  kUpgrade,           // the infrastructure-upgrade incident
  kSessionReset,      // emergent: session down with no injected cause
  kSessionRedump,     // emergent: full-table dump on session establishment
  kCount,
};
inline constexpr std::size_t kNumCauseKinds =
    static_cast<std::size_t>(CauseKind::kCount);

const char* ToString(CauseKind kind);

#if defined(IRI_PROVENANCE_ENABLED) && IRI_PROVENANCE_ENABLED
inline constexpr bool kProvenanceEnabled = true;
#else
inline constexpr bool kProvenanceEnabled = false;
#endif

#if defined(IRI_PROVENANCE_ENABLED) && IRI_PROVENANCE_ENABLED

// The sideband tag: which injected cause an update descends from, and how
// many router hops it has been re-propagated beyond the router where the
// cause was injected. id 0 is the null cause.
struct CauseTag {
  std::uint32_t id = 0;
  std::uint8_t kind = 0;  // CauseKind
  std::uint8_t depth = 0;

  bool IsNull() const { return id == 0; }
  CauseKind Kind() const { return static_cast<CauseKind>(kind); }
  std::uint8_t Depth() const { return depth; }
  // The tag one re-propagation hop further from the cause.
  CauseTag Bumped() const {
    CauseTag t = *this;
    if (t.depth < 0xFF) ++t.depth;
    return t;
  }

  friend bool operator==(const CauseTag&, const CauseTag&) = default;
};

// Per-message cause sideband, aligned with the wire event order of the
// UPDATE it accompanies: withdrawn prefixes first, then NLRI.
using CauseVec = std::vector<CauseTag>;

#else  // provenance compiled out: empty stand-ins, call sites unchanged.

struct CauseTag {
  bool IsNull() const { return true; }
  CauseKind Kind() const { return CauseKind::kNone; }
  std::uint8_t Depth() const { return 0; }
  CauseTag Bumped() const { return {}; }

  friend bool operator==(const CauseTag&, const CauseTag&) { return true; }
};

class CauseVec {
 public:
  void clear() {}
  void reserve(std::size_t) {}
  void push_back(const CauseTag&) {}
  bool empty() const { return true; }
  std::size_t size() const { return 0; }
  CauseTag operator[](std::size_t) const { return {}; }
};

#endif  // IRI_PROVENANCE_ENABLED

// What the injecting partition knows about each cause; indexed by id - 1 in
// ProvenanceContext::infos(). Allocation order == id order, so iterating
// the vector is iterating causes deterministically.
struct CauseInfo {
  CauseKind kind = CauseKind::kNone;
  TimePoint injected;
};

// Per-partition cause allocator and ambient-cause scope. Owned by the
// scenario (one per exchange partition); routers and links hold a pointer.
// Single-threaded by construction — each partition runs on one worker.
class ProvenanceContext {
 public:
  void SetTracer(Tracer* tracer) { tracer_ = tracer; }

  // Allocates the next cause id for this partition and returns its tag
  // (depth 0). No-op (null tag) when provenance is compiled out.
  CauseTag Allocate(CauseKind kind, TimePoint now);

  // The ambient cause installed by the innermost live CauseScope, or the
  // null tag outside any scope.
  CauseTag Current() const { return current_; }

  std::size_t Count() const { return infos_.size(); }
  const std::vector<CauseInfo>& infos() const { return infos_; }

 private:
  friend class CauseScope;
  std::vector<CauseInfo> infos_;
  CauseTag current_;
  Tracer* tracer_ = nullptr;
};

// RAII ambient-cause scope: fault handlers wrap their injection calls so
// every Originate/Withdraw/link transition inside picks up the cause.
// Scopes nest; destruction restores the outer cause. Null context is a
// no-op (unit tests, replay).
class CauseScope {
 public:
  CauseScope(ProvenanceContext* ctx, CauseTag tag) : ctx_(ctx) {
#if defined(IRI_PROVENANCE_ENABLED) && IRI_PROVENANCE_ENABLED
    if (ctx_ != nullptr) {
      saved_ = ctx_->current_;
      ctx_->current_ = tag;
    }
#else
    (void)tag;
#endif
  }
  // Convenience: allocate a fresh cause and scope it in one step.
  CauseScope(ProvenanceContext* ctx, CauseKind kind, TimePoint now)
      : CauseScope(ctx, ctx != nullptr ? ctx->Allocate(kind, now)
                                       : CauseTag{}) {}
  ~CauseScope() {
#if defined(IRI_PROVENANCE_ENABLED) && IRI_PROVENANCE_ENABLED
    if (ctx_ != nullptr) ctx_->current_ = saved_;
#endif
  }
  CauseScope(const CauseScope&) = delete;
  CauseScope& operator=(const CauseScope&) = delete;

 private:
  ProvenanceContext* ctx_;
  CauseTag saved_;
};

// Per-shard attribution aggregate, fed by the classifier at verdict time.
// The class axis is caller-defined (the classifier's taxonomy bins); obs
// stays below core in the layer order, so the category arrives as an index.
// Merge follows the fixed-order contract: shards 0..N-1 within an exchange,
// exchanges 0..K-1 across partitions (an iri_det aggregation sink).
class ShardProvenance {
 public:
  static constexpr std::size_t kMaxClasses = 8;
  // Hop-depth histogram buckets 0..6 plus a 7+ overflow bucket.
  static constexpr std::size_t kDepthBuckets = 8;

  struct CauseStats {
    CauseKind kind = CauseKind::kNone;
    std::uint64_t updates = 0;   // classified events descending from it
    std::uint64_t prefixes = 0;  // distinct (prefix, peer) routes touched
    std::uint8_t max_depth = 0;
    TimePoint first_seen = TimePoint::Max();
    TimePoint last_seen;  // origin when never seen
  };

  // Records one classified event. `first_touch` is true the first time this
  // cause reaches the event's (prefix, peer) route state.
  void Record(std::size_t cls, const CauseTag& tag, TimePoint now,
              bool first_touch);

  // Fixed-order aggregation: callers sum shards 0..N-1, then exchanges in
  // exchange order.
  void Merge(const ShardProvenance& other);

  std::uint64_t attributed() const;
  std::uint64_t unattributed() const;
  std::uint8_t depth_peak() const;
  std::uint64_t MatrixAt(std::size_t cls, std::size_t kind,
                         std::size_t depth_bucket) const;
  // Sums over the fixed enum order.
  std::uint64_t ClassTotal(std::size_t cls) const;
  std::uint64_t ClassAttributed(std::size_t cls) const;
  std::uint64_t DepthBucketTotal(std::size_t depth_bucket) const;
  const std::vector<CauseStats>& cause_stats() const;
  bool Empty() const { return attributed() == 0 && unattributed() == 0; }

 private:
#if defined(IRI_PROVENANCE_ENABLED) && IRI_PROVENANCE_ENABLED
  static constexpr std::size_t kCells =
      kMaxClasses * kNumCauseKinds * kDepthBuckets;
  static constexpr std::size_t CellIndex(std::size_t cls, std::size_t kind,
                                         std::size_t depth_bucket) {
    return (cls * kNumCauseKinds + kind) * kDepthBuckets + depth_bucket;
  }
  std::array<std::uint64_t, kCells> matrix_{};
  std::vector<CauseStats> stats_;  // index == cause id - 1
  std::uint64_t attributed_ = 0;
  std::uint64_t unattributed_ = 0;
  std::uint8_t depth_peak_ = 0;
#endif
};

// One exchange partition's complete attribution output: the merged per-shard
// observations joined with the partition's cause table. Per-exchange because
// cause ids are partition-local (the full CauseId identity is
// (exchange, kind, sequence)); report code renders them side by side.
struct ExchangeAttribution {
  ShardProvenance observed;
  std::vector<CauseInfo> causes;
};

#if !(defined(IRI_PROVENANCE_ENABLED) && IRI_PROVENANCE_ENABLED)
// Compiled-out bodies live here, inline, so the per-event call sites in the
// classifier and the codec hot paths fold to nothing instead of paying an
// out-of-line call into an empty function.
inline CauseTag ProvenanceContext::Allocate(CauseKind, TimePoint) {
  return {};
}
inline void ShardProvenance::Record(std::size_t, const CauseTag&, TimePoint,
                                    bool) {}
inline void ShardProvenance::Merge(const ShardProvenance&) {}
inline std::uint64_t ShardProvenance::attributed() const { return 0; }
inline std::uint64_t ShardProvenance::unattributed() const { return 0; }
inline std::uint8_t ShardProvenance::depth_peak() const { return 0; }
inline std::uint64_t ShardProvenance::MatrixAt(std::size_t, std::size_t,
                                               std::size_t) const {
  return 0;
}
inline std::uint64_t ShardProvenance::ClassTotal(std::size_t) const {
  return 0;
}
inline std::uint64_t ShardProvenance::ClassAttributed(std::size_t) const {
  return 0;
}
inline std::uint64_t ShardProvenance::DepthBucketTotal(std::size_t) const {
  return 0;
}
inline const std::vector<ShardProvenance::CauseStats>&
ShardProvenance::cause_stats() const {
  static const std::vector<CauseStats> kEmpty;
  return kEmpty;
}
#endif  // !IRI_PROVENANCE_ENABLED

}  // namespace iri::obs
