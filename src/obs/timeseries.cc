#include "obs/timeseries.h"

#include <algorithm>
#include <cstdio>

namespace iri::obs {

namespace {

void AppendU64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

void AppendI64(std::string& out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  out += buf;
}

void AppendF64(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  out += buf;
}

}  // namespace

WindowedHistogram::WindowedHistogram(std::span<const std::int64_t> upper_edges,
                                     int window_ticks)
    : edges_(upper_edges.begin(), upper_edges.end()),
      ring_(static_cast<std::size_t>(std::max(1, window_ticks))),
      current_(upper_edges.size() + 1, 0),
      totals_(upper_edges.size() + 1, 0),
      window_sums_(ring_.size(), 0),
      window_counts_(ring_.size(), 0) {
  IRI_ASSERT(std::is_sorted(edges_.begin(), edges_.end()),
             "windowed histogram upper edges must be ascending");
  for (auto& w : ring_) w.assign(edges_.size() + 1, 0);
}

void WindowedHistogram::Observe(std::int64_t v) {
  const auto it = std::lower_bound(edges_.begin(), edges_.end(), v);
  const auto b = static_cast<std::size_t>(it - edges_.begin());
  current_[b] += 1;
  totals_[b] += 1;
  ++count_;
  sum_ += v;
  ++current_count_;
  current_sum_ += v;
}

void WindowedHistogram::CloseWindow() {
  // Evict the slot's expiring window from the aggregates, then rotate the
  // just-closed window into its place.
  std::vector<std::uint64_t>& old = ring_[slot_];
  for (std::size_t i = 0; i < totals_.size(); ++i) {
    totals_[i] -= old[i];
  }
  count_ -= window_counts_[slot_];
  sum_ -= window_sums_[slot_];
  old = current_;
  window_counts_[slot_] = current_count_;
  window_sums_[slot_] = current_sum_;
  current_.assign(current_.size(), 0);
  current_count_ = 0;
  current_sum_ = 0;
  slot_ = (slot_ + 1) % ring_.size();
}

WindowedCounter& SeriesFlusher::GetCounter(const std::string& name) {
  Instrument& inst = instruments_[name];
  IRI_ASSERT(inst.histogram == nullptr,
             "series name re-registered as a different instrument kind");
  if (inst.counter == nullptr) {
    inst.counter = std::make_unique<WindowedCounter>();
  }
  return *inst.counter;
}

WindowedHistogram& SeriesFlusher::GetHistogram(
    const std::string& name, std::span<const std::int64_t> upper_edges,
    int window_ticks) {
  Instrument& inst = instruments_[name];
  IRI_ASSERT(inst.counter == nullptr,
             "series name re-registered as a different instrument kind");
  if (inst.histogram == nullptr) {
    inst.histogram =
        std::make_unique<WindowedHistogram>(upper_edges, window_ticks);
  }
  return *inst.histogram;
}

void SeriesFlusher::Flush(TimePoint now) {
  for (auto& [name, inst] : instruments_) {
    buffer_ += "{\"t_ns\":";
    AppendI64(buffer_, now.nanos());
    buffer_ += ",\"series\":\"";
    buffer_ += name;  // series names are code constants; no escaping needed
    buffer_ += '"';
    if (inst.counter != nullptr) {
      WindowedCounter& c = *inst.counter;
      const std::uint64_t window = c.window();
      c.CloseWindow(ewma_alpha_);
      buffer_ += ",\"window\":";
      AppendU64(buffer_, window);
      buffer_ += ",\"total\":";
      AppendU64(buffer_, c.total());
      buffer_ += ",\"ewma\":";
      AppendF64(buffer_, c.ewma());
    } else {
      WindowedHistogram& h = *inst.histogram;
      buffer_ += ",\"count\":";
      AppendU64(buffer_, h.count());
      buffer_ += ",\"sum\":";
      AppendI64(buffer_, h.sum());
      buffer_ += ",\"buckets\":[";
      for (std::size_t i = 0; i < h.buckets().size(); ++i) {
        if (i != 0) buffer_ += ',';
        AppendU64(buffer_, h.buckets()[i]);
      }
      buffer_ += ']';
      h.CloseWindow();
    }
    buffer_ += "}\n";
    ++records_;
  }
  ++flushes_;
}

void SeriesFlusher::Clear() {
  buffer_.clear();
  records_ = 0;
}

}  // namespace iri::obs
