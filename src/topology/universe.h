// Synthetic Internet universe generator.
//
// Recreates (at configurable scale) the 1996 routing world the paper
// measured: a default-free table of ~42,000 prefixes originated by ~1,300
// ASes, with 6-8 large ISPs holding most of the table, a poorly-aggregated
// pre-CIDR "swamp", provider CIDR blocks aggregating most customer space,
// and a growing multi-homed customer population (>25% of prefixes, linear
// growth — Figure 10).
//
// Provider behavioural archetypes carry the paper's implementation findings:
// a configurable fraction run "stateless BGP" border routers and unjittered
// 30-second flush timers; per-provider churn multipliers are drawn
// independently of provider size, so instability does NOT correlate with
// routing-table share (Figure 6's central negative result).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bgp/types.h"
#include "netbase/ipv4.h"
#include "netbase/time.h"

namespace iri::topology {

struct TopologyConfig {
  // Fraction of the paper's universe (42,000 prefixes / 1,300 ASes) to
  // generate. 1.0 is paper scale; benches default far lower and report it.
  double scale = 1.0 / 32;

  // Providers peering at the exchange (Mae-East hosted ~60; the route
  // servers peered with >90% of them; we default lower for tractability).
  int num_providers = 16;

  // Paper full-scale reference numbers, scaled by `scale`.
  int full_scale_prefixes = 42000;

  // Fraction of customer prefixes hidden inside provider aggregates
  // (never announced individually; visible only through the stateless
  // withdrawal pathology).
  double aggregated_fraction = 0.55;

  // Multi-homing: fraction of *visible* prefixes multihomed at scenario
  // start and end (linear ramp between; "more than 25 percent of prefixes
  // are currently multi-homed" with "a relatively steep linear rate of
  // growth").
  double multihomed_fraction_start = 0.18;
  double multihomed_fraction_end = 0.28;

  // Behavioural archetypes.
  double stateless_fraction = 0.5;   // providers running stateless BGP
  double unjittered_fraction = 0.85; // providers with fixed-phase 30s timer

  // Zipf exponent for provider table shares (6-8 ISPs dominate).
  double provider_zipf_exponent = 1.1;

  // Fraction of visible prefixes that are chronically flappy.
  double flappy_fraction = 0.12;

  // AS-number allocation: most 1996 customers used provider-assigned space
  // with no AS of their own (the paper's table had only ~1,300 ASes for
  // 42,000 prefixes). Multihomed sites need global visibility but often
  // still announced through both providers without a registered ASN.
  double multihomed_own_asn_prob = 0.12;
  double singlehomed_own_asn_prob = 0.01;

  std::uint64_t seed = 1996;
};

// One customer prefix in the universe.
struct CustomerPrefix {
  Prefix prefix;
  bgp::Asn customer_asn = 0;  // 0: provider-internal (no AS of its own)
  int primary_provider = 0;   // index into Universe::providers
  int backup_provider = -1;   // >= 0 when (eventually) multihomed
  bool aggregated = false;    // hidden inside the provider's CIDR block
  bool has_alternate_path = false;  // reachable via an indirect transit path
                                    // (substrate for AADiff oscillations)
  // A "sick" route: chronically bad line/CSU, flaps all day (the paper's
  // Provider-E pattern: 8 prefixes, ~1350 updates in a day). Instability is
  // heavily concentrated on these (Figure 7's long tails).
  bool flappy = false;
  // When the backup provider starts announcing it (multihoming ramp);
  // TimePoint::Max() when never multihomed.
  TimePoint multihomed_since = TimePoint::Max();
};

struct ProviderSpec {
  std::string name;
  bgp::Asn asn = 0;
  IPv4Address router_id;
  IPv4Address interface_addr;
  double table_weight = 0;  // share of the default-free table

  bool stateless_bgp = false;
  bool unjittered_timer = true;

  // Per-provider churn multipliers, drawn independently of size — this is
  // what decorrelates Figure 6.
  double customer_flap_multiplier = 1.0;
  double internal_reset_multiplier = 1.0;

  std::vector<Prefix> aggregate_blocks;   // stable supernets it announces
  std::vector<int> customers;             // indices into Universe::customers
  // ASN used for indirect-transit alternate paths through this provider.
  bgp::Asn transit_asn = 0;
};

struct Universe {
  TopologyConfig config;
  std::vector<ProviderSpec> providers;
  std::vector<CustomerPrefix> customers;

  int TotalPrefixes() const { return static_cast<int>(customers.size()); }
  int VisiblePrefixes() const;     // not aggregated (globally announced)
  int MultihomedAt(TimePoint t) const;
};

// Generates a universe. `scenario_length` bounds the multihoming ramp.
Universe GenerateUniverse(const TopologyConfig& config,
                          Duration scenario_length);

}  // namespace iri::topology
