#include "topology/universe.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "netbase/rng.h"

namespace iri::topology {
namespace {

// Provider address space: /16 blocks carved out of 204.0.0.0/6-ish space
// (post-CIDR allocations); the pre-CIDR swamp lives in 192.0.0.0/8 and
// 193.0.0.0/8 as scattered /24s, mirroring the historical allocation mess.
Prefix ProviderBlock(int provider, int block) {
  // 204.0.0.0 + provider stride; each provider owns up to 64 /16 blocks
  // (enough for the largest ISP at paper scale: ~10k customer /24s).
  const std::uint32_t base = (204u << 24);
  const std::uint32_t addr =
      base + (static_cast<std::uint32_t>(provider) << 22) +
      (static_cast<std::uint32_t>(block & 63) << 16);
  return Prefix(IPv4Address(addr), 16);
}

Prefix SwampPrefix(Rng& rng) {
  const std::uint32_t base = (192u << 24) + (rng.Below(2) ? (1u << 24) : 0);
  const std::uint32_t addr =
      base + static_cast<std::uint32_t>(rng.Below(1u << 16)) * 256u;
  return Prefix(IPv4Address(addr), 24);
}

}  // namespace

int Universe::VisiblePrefixes() const {
  int n = 0;
  for (const auto& c : customers) {
    if (!c.aggregated) ++n;
  }
  return n;
}

int Universe::MultihomedAt(TimePoint t) const {
  int n = 0;
  for (const auto& c : customers) {
    if (c.multihomed_since <= t) ++n;
  }
  return n;
}

Universe GenerateUniverse(const TopologyConfig& config,
                          Duration scenario_length) {
  Universe u;
  u.config = config;
  Rng rng(config.seed);

  const int num_prefixes = std::max(
      config.num_providers,
      static_cast<int>(config.full_scale_prefixes * config.scale));

  // --- providers ---
  double weight_sum = 0;
  for (int i = 0; i < config.num_providers; ++i) {
    ProviderSpec p;
    p.name = "ISP-" + std::string(1, static_cast<char>('A' + i % 26)) +
             (i >= 26 ? std::to_string(i / 26) : "");
    p.asn = static_cast<bgp::Asn>(100 + i);
    p.transit_asn = static_cast<bgp::Asn>(600 + i);
    p.router_id = IPv4Address(198, 32, 0, static_cast<std::uint8_t>(10 + i));
    p.interface_addr =
        IPv4Address(198, 32, 1, static_cast<std::uint8_t>(10 + i));
    p.table_weight =
        1.0 / std::pow(static_cast<double>(i + 1), config.provider_zipf_exponent);
    weight_sum += p.table_weight;
    p.stateless_bgp = rng.Uniform() < config.stateless_fraction;
    p.unjittered_timer = rng.Uniform() < config.unjittered_fraction;
    // Churn character is drawn independently of size: log-normal-ish spread.
    p.customer_flap_multiplier = std::exp(rng.Normal(0.0, 0.7));
    p.internal_reset_multiplier = std::exp(rng.Normal(0.0, 0.9));
    u.providers.push_back(std::move(p));
  }
  for (auto& p : u.providers) p.table_weight /= weight_sum;

  // --- prefix allocation ---
  // Assign each prefix to a provider by table weight; decide aggregation,
  // swamp membership, alternate paths, and the multihoming schedule.
  std::vector<int> blocks_used(u.providers.size(), 0);
  std::vector<int> carved_in_block(u.providers.size(), 0);
  std::unordered_set<Prefix> swamp_used;
  bgp::Asn next_customer_asn = 1000;

  // Cumulative weights for provider sampling.
  std::vector<double> cumulative;
  double acc = 0;
  for (const auto& p : u.providers) {
    acc += p.table_weight;
    cumulative.push_back(acc);
  }

  const double mh_start = config.multihomed_fraction_start;
  const double mh_end = config.multihomed_fraction_end;

  for (int i = 0; i < num_prefixes; ++i) {
    CustomerPrefix c;
    const double r = rng.Uniform();
    c.primary_provider = static_cast<int>(
        std::lower_bound(cumulative.begin(), cumulative.end(), r) -
        cumulative.begin());
    if (c.primary_provider >= static_cast<int>(u.providers.size())) {
      c.primary_provider = static_cast<int>(u.providers.size()) - 1;
    }
    ProviderSpec& prov = u.providers[static_cast<std::size_t>(c.primary_provider)];

    c.aggregated = rng.Uniform() < config.aggregated_fraction;

    // Multihoming: only visible (non-aggregated) prefixes can be multihomed
    // (they need global visibility — the paper's aggregation-erosion story).
    if (!c.aggregated && rng.Uniform() < mh_end) {
      // Pick a distinct backup provider, weighted uniformly.
      c.backup_provider = static_cast<int>(rng.Below(u.providers.size()));
      if (c.backup_provider == c.primary_provider) {
        c.backup_provider =
            (c.backup_provider + 1) % static_cast<int>(u.providers.size());
      }
      // A share mh_start/mh_end is multihomed from the start; the rest come
      // online uniformly through the scenario (linear growth, Figure 10).
      if (rng.Uniform() < mh_start / mh_end) {
        c.multihomed_since = TimePoint::Origin();
      } else {
        c.multihomed_since =
            TimePoint::Origin() + scenario_length * rng.Uniform();
      }
      if (rng.Uniform() < config.multihomed_own_asn_prob) {
        c.customer_asn = next_customer_asn++;
      }
    } else if (!c.aggregated &&
               rng.Uniform() < config.singlehomed_own_asn_prob) {
      // Single-homed with its own AS (older allocations).
      c.customer_asn = next_customer_asn++;
    }

    // Some visible prefixes have an indirect transit path inside the
    // provider (AADiff oscillation substrate).
    c.has_alternate_path = !c.aggregated && rng.Uniform() < 0.55;
    c.flappy = !c.aggregated && rng.Uniform() < config.flappy_fraction;

    // Address: swamp /24 for ~30% of visible prefixes (pre-CIDR space),
    // provider-block carve-outs otherwise.
    const bool swamp = !c.aggregated && rng.Uniform() < 0.3;
    if (swamp) {
      // Reject duplicates: two customers must not share an address block.
      do {
        c.prefix = SwampPrefix(rng);
      } while (!swamp_used.insert(c.prefix).second);
    } else {
      auto& used = blocks_used[static_cast<std::size_t>(c.primary_provider)];
      auto& carved = carved_in_block[static_cast<std::size_t>(c.primary_provider)];
      if (carved == 0) {
        // Open a new /16 aggregate block for this provider.
        prov.aggregate_blocks.push_back(
            ProviderBlock(c.primary_provider, used));
        ++used;
      }
      const Prefix block = prov.aggregate_blocks.back();
      c.prefix = Prefix(
          IPv4Address(block.bits() +
                      (static_cast<std::uint32_t>(carved) << 8)),
          24);
      carved = (carved + 1) % 256;
    }

    prov.customers.push_back(i);
    u.customers.push_back(std::move(c));
  }

  return u;
}

}  // namespace iri::topology
