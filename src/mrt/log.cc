#include "mrt/log.h"

#include "netbase/bytes.h"
#include "netbase/crc32.h"

namespace iri::mrt {

namespace {

// Appends `v` big-endian to `out`.
template <typename T>
void PutBe(T v, std::vector<std::uint8_t>& out) {
  for (int shift = (sizeof(T) - 1) * 8; shift >= 0; shift -= 8) {
    out.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

}  // namespace

void EncodeRecordRaw(TimePoint timestamp, std::uint32_t peer_id,
                     std::uint16_t peer_asn, std::uint16_t local_asn,
                     std::span<const std::uint8_t> payload,
                     std::vector<std::uint8_t>& out) {
  const std::size_t start = out.size();
  // No reserve here: `out` may be a capture buffer holding the whole stream,
  // and an exact-size reserve defeats geometric growth — every record would
  // reallocate and copy the entire stream (quadratic in stream length).
  PutBe(static_cast<std::uint64_t>(timestamp.nanos()), out);
  PutBe(kTypeBgp4mp, out);
  PutBe(kSubtypeMessage, out);
  PutBe(peer_asn, out);
  PutBe(local_asn, out);
  PutBe(peer_id, out);
  PutBe(static_cast<std::uint32_t>(payload.size()), out);
  out.insert(out.end(), payload.begin(), payload.end());
  const std::uint32_t crc =
      Crc32({out.data() + start, out.size() - start});
  PutBe(crc, out);
}

void EncodeRecord(const Record& record, std::vector<std::uint8_t>& out) {
  EncodeRecordRaw(record.timestamp, record.peer_id, record.peer_asn,
                  record.local_asn, record.payload, out);
}

Writer::Writer(const std::string& path) {
  file_ = std::fopen(path.c_str(), "wb");
  ok_ = file_ != nullptr;
}

Writer::~Writer() { Close(); }

void Writer::Append(const Record& record) {
  LogPayload(record.timestamp, record.peer_id, record.peer_asn,
             record.local_asn, record.payload);
}

void Writer::LogMessage(TimePoint now, std::uint32_t peer_id,
                        std::uint16_t peer_asn, std::uint16_t local_asn,
                        const bgp::Message& msg) {
  LogPayload(now, peer_id, peer_asn, local_asn, bgp::Encode(msg));
}

void Writer::LogPayload(TimePoint now, std::uint32_t peer_id,
                        std::uint16_t peer_asn, std::uint16_t local_asn,
                        std::span<const std::uint8_t> payload) {
  if (!ok_) return;
  if (file_ != nullptr) {
    scratch_.clear();
    EncodeRecordRaw(now, peer_id, peer_asn, local_asn, payload, scratch_);
    ok_ = std::fwrite(scratch_.data(), 1, scratch_.size(), file_) ==
          scratch_.size();
  } else {
    EncodeRecordRaw(now, peer_id, peer_asn, local_asn, payload, buffer_);
  }
  ++records_;
}

void Writer::Flush() {
  if (file_ != nullptr) std::fflush(file_);
}

void Writer::Close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

Reader::Reader(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    ok_ = false;
    return;
  }
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  owned_.resize(size > 0 ? static_cast<std::size_t>(size) : 0);
  if (!owned_.empty() &&
      std::fread(owned_.data(), 1, owned_.size(), f) != owned_.size()) {
    ok_ = false;
  }
  std::fclose(f);
  data_ = owned_;
}

std::optional<Record> Reader::Next() {
  // Fixed header: 8+2+2+2+2+4+4 = 24 bytes, then payload, then 4-byte CRC.
  constexpr std::size_t kHeader = 24;
  while (ok_ && data_.size() - pos_ >= kHeader + 4) {
    ByteReader r(data_.subspan(pos_));
    Record rec;
    rec.timestamp = TimePoint::FromNanos(static_cast<std::int64_t>(r.U64()));
    const std::uint16_t type = r.U16();
    const std::uint16_t subtype = r.U16();
    rec.peer_asn = r.U16();
    rec.local_asn = r.U16();
    rec.peer_id = r.U32();
    const std::uint32_t payload_len = r.U32();
    if (payload_len > bgp::kMaxMessageSize ||
        data_.size() - pos_ < kHeader + payload_len + 4) {
      // A corrupt length field: cannot re-synchronize, end the log here.
      ok_ = false;
      return std::nullopt;
    }
    auto payload = r.Bytes(payload_len);
    rec.payload.assign(payload.begin(), payload.end());
    const std::uint32_t stored_crc = r.U32();
    const std::uint32_t actual_crc =
        Crc32(data_.subspan(pos_, kHeader + payload_len));
    pos_ += kHeader + payload_len + 4;
    if (type != kTypeBgp4mp || subtype != kSubtypeMessage ||
        stored_crc != actual_crc) {
      ++crc_failures_;
      continue;  // skip the damaged record, stay in sync via the length
    }
    ++records_;
    return rec;
  }
  return std::nullopt;
}

}  // namespace iri::mrt
