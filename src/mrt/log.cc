#include "mrt/log.h"

#include "netbase/bytes.h"
#include "netbase/crc32.h"

namespace iri::mrt {

void EncodeRecord(const Record& record, std::vector<std::uint8_t>& out) {
  ByteWriter w;
  w.U64(static_cast<std::uint64_t>(record.timestamp.nanos()));
  w.U16(kTypeBgp4mp);
  w.U16(kSubtypeMessage);
  w.U16(record.peer_asn);
  w.U16(record.local_asn);
  w.U32(record.peer_id);
  w.U32(static_cast<std::uint32_t>(record.payload.size()));
  w.Bytes(record.payload);
  const std::uint32_t crc = Crc32(w.data());
  w.U32(crc);
  const auto& bytes = w.data();
  out.insert(out.end(), bytes.begin(), bytes.end());
}

Writer::Writer(const std::string& path) {
  file_ = std::fopen(path.c_str(), "wb");
  ok_ = file_ != nullptr;
}

Writer::~Writer() { Close(); }

void Writer::Append(const Record& record) {
  if (!ok_) return;
  if (file_ != nullptr) {
    std::vector<std::uint8_t> bytes;
    EncodeRecord(record, bytes);
    ok_ = std::fwrite(bytes.data(), 1, bytes.size(), file_) == bytes.size();
  } else {
    EncodeRecord(record, buffer_);
  }
  ++records_;
}

void Writer::LogMessage(TimePoint now, std::uint32_t peer_id,
                        std::uint16_t peer_asn, std::uint16_t local_asn,
                        const bgp::Message& msg) {
  Record rec;
  rec.timestamp = now;
  rec.peer_id = peer_id;
  rec.peer_asn = peer_asn;
  rec.local_asn = local_asn;
  rec.payload = bgp::Encode(msg);
  Append(rec);
}

void Writer::Flush() {
  if (file_ != nullptr) std::fflush(file_);
}

void Writer::Close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

Reader::Reader(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    ok_ = false;
    return;
  }
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  owned_.resize(size > 0 ? static_cast<std::size_t>(size) : 0);
  if (!owned_.empty() &&
      std::fread(owned_.data(), 1, owned_.size(), f) != owned_.size()) {
    ok_ = false;
  }
  std::fclose(f);
  data_ = owned_;
}

std::optional<Record> Reader::Next() {
  // Fixed header: 8+2+2+2+2+4+4 = 24 bytes, then payload, then 4-byte CRC.
  constexpr std::size_t kHeader = 24;
  while (ok_ && data_.size() - pos_ >= kHeader + 4) {
    ByteReader r(data_.subspan(pos_));
    Record rec;
    rec.timestamp = TimePoint::FromNanos(static_cast<std::int64_t>(r.U64()));
    const std::uint16_t type = r.U16();
    const std::uint16_t subtype = r.U16();
    rec.peer_asn = r.U16();
    rec.local_asn = r.U16();
    rec.peer_id = r.U32();
    const std::uint32_t payload_len = r.U32();
    if (payload_len > bgp::kMaxMessageSize ||
        data_.size() - pos_ < kHeader + payload_len + 4) {
      // A corrupt length field: cannot re-synchronize, end the log here.
      ok_ = false;
      return std::nullopt;
    }
    auto payload = r.Bytes(payload_len);
    rec.payload.assign(payload.begin(), payload.end());
    const std::uint32_t stored_crc = r.U32();
    const std::uint32_t actual_crc =
        Crc32(data_.subspan(pos_, kHeader + payload_len));
    pos_ += kHeader + payload_len + 4;
    if (type != kTypeBgp4mp || subtype != kSubtypeMessage ||
        stored_crc != actual_crc) {
      ++crc_failures_;
      continue;  // skip the damaged record, stay in sync via the length
    }
    ++records_;
    return rec;
  }
  return std::nullopt;
}

}  // namespace iri::mrt
