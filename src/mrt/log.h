// MRT-style binary logging of BGP messages, after the Multithreaded Routing
// Toolkit format the Routing Arbiter project used (paper ref [17]).
//
// The collection methodology in §2 is: route server peers with providers,
// every BGP message on those sessions is appended to a log, and analysis
// tools decode the logs offline. This module is that serialization boundary.
// Records resemble MRT BGP4MP/MESSAGE: a fixed header identifying the
// peering, the raw wire-format BGP message, and a CRC-32 trailer (the
// paper's infrastructure famously lost a day of data; we at least detect
// truncation/corruption instead of silently analyzing garbage).
//
// Record layout (all integers big-endian):
//   u64 timestamp_ns      simulated time
//   u16 type (=16)        BGP4MP
//   u16 subtype (=1)      MESSAGE
//   u16 peer_asn
//   u16 local_asn
//   u32 peer_id           collector's local id for the peering
//   u32 payload_length
//   u8  payload[...]      encoded BGP message (marker..body)
//   u32 crc32             over everything above
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "bgp/message.h"
#include "bgp/route.h"
#include "netbase/time.h"

namespace iri::mrt {

inline constexpr std::uint16_t kTypeBgp4mp = 16;
inline constexpr std::uint16_t kSubtypeMessage = 1;

struct Record {
  TimePoint timestamp;
  std::uint16_t peer_asn = 0;
  std::uint16_t local_asn = 0;
  std::uint32_t peer_id = 0;
  std::vector<std::uint8_t> payload;  // encoded BGP message

  // Decodes the payload as a BGP message.
  std::optional<bgp::Message> DecodeMessage() const {
    return bgp::Decode(payload);
  }
};

// Serializes one record (with CRC) into `out`.
void EncodeRecord(const Record& record, std::vector<std::uint8_t>& out);

// Same wire bytes, but straight from the header fields and a payload view —
// no intermediate Record, no scratch buffer: the record is appended to
// `out` in place and the CRC computed over the appended region. This is the
// zero-copy path the monitor drives with the received wire bytes.
void EncodeRecordRaw(TimePoint timestamp, std::uint32_t peer_id,
                     std::uint16_t peer_asn, std::uint16_t local_asn,
                     std::span<const std::uint8_t> payload,
                     std::vector<std::uint8_t>& out);

// Appends records to an in-memory buffer or a file.
class Writer {
 public:
  // In-memory writer.
  Writer() = default;
  // File-backed writer; truncates. Check ok() after construction.
  explicit Writer(const std::string& path);
  ~Writer();

  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;

  bool ok() const { return ok_; }
  std::uint64_t records_written() const { return records_; }

  void Append(const Record& record);

  // Convenience: logs a BGP message seen on a peering.
  void LogMessage(TimePoint now, std::uint32_t peer_id, std::uint16_t peer_asn,
                  std::uint16_t local_asn, const bgp::Message& msg);

  // Zero-copy variant: logs already-encoded wire bytes as the payload
  // (byte-identical to LogMessage of the decoded message, by the
  // Encode/Decode roundtrip contract).
  void LogPayload(TimePoint now, std::uint32_t peer_id, std::uint16_t peer_asn,
                  std::uint16_t local_asn,
                  std::span<const std::uint8_t> payload);

  // In-memory contents (empty for file-backed writers once flushed).
  const std::vector<std::uint8_t>& buffer() const { return buffer_; }

  void Flush();
  void Close();

 private:
  std::vector<std::uint8_t> buffer_;
  std::vector<std::uint8_t> scratch_;  // file path: per-record encode buffer
  std::FILE* file_ = nullptr;
  bool ok_ = true;
  std::uint64_t records_ = 0;
};

// Sequentially decodes records from a byte buffer or a file.
class Reader {
 public:
  // Reads from a caller-owned span.
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}
  // Loads an entire file into memory. Check ok().
  explicit Reader(const std::string& path);

  bool ok() const { return ok_; }
  std::uint64_t records_read() const { return records_; }
  std::uint64_t crc_failures() const { return crc_failures_; }

  // Next record, or nullopt at end-of-log. Records failing CRC are counted
  // and skipped (the read re-synchronizes on the following record because
  // lengths are still trusted; a corrupt length ends the log).
  std::optional<Record> Next();

 private:
  std::vector<std::uint8_t> owned_;
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
  std::uint64_t records_ = 0;
  std::uint64_t crc_failures_ = 0;
};

}  // namespace iri::mrt
