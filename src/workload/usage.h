// The network-usage curve that modulates legitimate instability.
//
// One of the paper's central findings (§5.1, Figure 5) is that instability
// "exhibit[s] the same significant weekly, daily and holiday cycles as
// network usage and congestion": quiet 00:00–06:00, densest noon–midnight,
// weekly dips on weekends, a linear growth trend over the seven months, and
// a sparser 17:00–24:00 band in June–August ("summer vacation at most of
// the educational hosts"). This model is that curve; event processes sample
// it multiplicatively via Poisson thinning.
//
// Scenario day 0 is a SATURDAY (so Figure 4's Saturday→Friday week lands on
// day boundaries).
#pragma once

#include <array>
#include <vector>

#include "netbase/time.h"

namespace iri::workload {

struct UsageConfig {
  // Relative load per local hour (index 0 = midnight). Shape follows the
  // paper's Figure 3 description: trough before 06:00, rise through the
  // morning, densest noon-to-midnight.
  std::array<double, 24> hour_weight = {
      0.32, 0.26, 0.22, 0.20, 0.22, 0.28,   // 00-05: overnight trough
      0.38, 0.52, 0.72, 0.88, 1.00, 1.02,   // 06-11: business ramp
      1.05, 1.08, 1.10, 1.10, 1.06, 1.02,   // 12-17: afternoon plateau
      1.00, 0.98, 0.92, 0.80, 0.62, 0.45};  // 18-23: evening tail

  // Day-of-week factors, index 0 = Saturday.
  std::array<double, 7> weekday_factor = {0.55, 0.45, 1.0, 1.0,
                                          1.0,  1.0,  1.0};

  // Linear growth: level multiplied by (1 + trend_per_day * day). The
  // paper: "routing instability increased linearly during the seven month
  // period" (their detrend step assumes exactly this).
  double trend_per_day = 0.004;

  // Summer-evening damping (educational hosts on vacation).
  int summer_start_day = 75;   // ~mid June for an April-like day 0
  int summer_end_day = 140;    // ~late August
  double summer_evening_factor = 0.72;

  // Holidays behave like Sundays.
  std::vector<int> holiday_days;
  double holiday_factor = 0.45;
};

class UsageModel {
 public:
  explicit UsageModel(UsageConfig config) : config_(std::move(config)) {}

  // Multiplicative rate level at simulated time `t` (1.0-ish at a weekday
  // business-hour baseline, before trend).
  double Level(TimePoint t) const;

  // Upper bound on Level over [0, horizon] — the thinning envelope.
  double MaxLevel(Duration horizon) const;

  static int DayOfWeek(TimePoint t) {  // 0 = Saturday
    return static_cast<int>((t.nanos() / Duration::Days(1).nanos()) % 7);
  }
  static double HourOfDay(TimePoint t) {
    const std::int64_t ns_in_day = t.nanos() % Duration::Days(1).nanos();
    return static_cast<double>(ns_in_day) / Duration::Hours(1).nanos();
  }

  const UsageConfig& config() const { return config_; }

 private:
  UsageConfig config_;
};

}  // namespace iri::workload
