// Deterministic parallel execution of multi-exchange measurement campaigns.
//
// The paper's dataset comes from five independent exchange points (Mae-East,
// Sprint NAP, AADS, PacBell NAP, Mae-West) whose collectors never talk to
// each other — they only meet again in post-hoc analysis. That independence
// is an execution boundary: a num_exchanges=K scenario shards into K
// single-exchange partitions, each with its own sim::Scheduler, its own
// decorrelated RNG stream (ExchangeSubSeed), and private MRT/stats sinks.
// Partitions run on a small worker pool (sim::ParallelFor, sized by
// IRI_PARALLEL_EXCHANGES; 1 reproduces today's serial path) and their
// outputs are merged in fixed exchange order, so the result is bit-for-bit
// independent of thread count and interleaving. tests/golden_run_test.cc
// locks that claim against committed digests at 1, 2 and 4 threads.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/stats.h"
#include "obs/metrics.h"
#include "obs/provenance.h"
#include "workload/scenario.h"

namespace iri::workload {

struct MultiExchangeConfig {
  // scenario.num_exchanges is the partition count (>= 1).
  ScenarioConfig scenario;
  // Worker threads; <= 0 means sim::DefaultParallelism() (the
  // IRI_PARALLEL_EXCHANGES environment variable or hardware concurrency).
  int threads = 0;
  // Capture each partition's MRT byte stream in memory (the merged stream
  // is what the golden digests checksum). Disable for pure-stats runs.
  bool capture_mrt = true;
  // Copy each partition's structured trace buffer (obs/trace.h) into its
  // ExchangeRun and the merged result. Off by default: traces are bulky and
  // only diagnostics want them.
  bool capture_trace = false;
  // Copy each partition's series JSONL buffer (obs/timeseries.h) into its
  // ExchangeRun and the merged result. On by default: the series records are
  // bounded (one line per instrument per flush) and the digest pins them.
  // A scenario.series_flush_interval of zero still disables the whole path.
  bool capture_series = true;
};

// Everything one exchange partition produced.
struct ExchangeRun {
  int exchange = 0;
  std::uint64_t sub_seed = 0;
  core::CategoryCounts counts;
  std::array<std::uint64_t, core::kNumCategories> classifier_totals{};
  std::uint64_t messages = 0;        // UPDATE messages tapped at the monitor
  std::uint64_t events = 0;          // per-prefix events classified
  std::uint64_t tasks_executed = 0;  // this partition's scheduler events
  std::vector<std::uint8_t> mrt;     // this exchange's MRT byte stream
  // This partition's metrics registry, copied (via Merge into an empty
  // registry) on the worker that owns the exchange. Only deterministic
  // instruments feed the merged snapshot, so the bytes are thread-count
  // independent.
  obs::Registry metrics;
  std::string trace;  // JSONL trace buffer (empty unless capture_trace)
  // This exchange's series JSONL records (empty unless capture_series):
  // name-ordered within each flush, flushes in sim-time order.
  std::string series;
  std::uint64_t series_records = 0;
  // The exchange's causal attribution: the classifier's merged provenance
  // matrix plus the cause table minted by this partition's scenario. Cause
  // ids are partition-local (dense, allocation-ordered), so attribution is
  // reported per exchange rather than renumbered into a global space.
  // Empty when IRI_PROVENANCE=OFF.
  obs::ExchangeAttribution attribution;
};

// Per-exchange results plus the fixed-order merge.
struct MultiExchangeResult {
  std::vector<ExchangeRun> exchanges;  // index == exchange id
  core::CategoryCounts combined;
  std::array<std::uint64_t, core::kNumCategories> combined_classifier_totals{};
  // Per-exchange MRT streams concatenated in exchange order. Replay segment
  // by segment (exchanges reuse collector-local peer ids, so one classifier
  // must not be fed two collectors' streams).
  std::vector<std::uint8_t> merged_mrt;
  // Per-exchange registries merged on the calling thread in exchange order
  // (the CategoryCounts::Merge pattern): counters and histograms sum, gauges
  // add — so a merged peak gauge is the sum of per-exchange peaks, not a
  // global peak. Snapshot bytes are identical at any worker count.
  obs::Registry metrics;
  // Per-exchange JSONL traces concatenated in exchange order (empty unless
  // capture_trace). Exchanges reuse collector-local names, so consumers
  // should replay segment by segment like merged_mrt.
  std::string merged_trace;
  // Per-exchange series JSONL concatenated in exchange order (empty unless
  // capture_series). Within a segment the records are already sorted by
  // (t_ns, series name); consumers joining across exchanges should group by
  // segment, like merged_mrt.
  std::string merged_series;
  std::uint64_t total_series_records = 0;
  std::uint64_t total_messages = 0;
  std::uint64_t total_events = 0;

  std::uint32_t MrtCrc32() const;

  // Canonical digest text (MRT CRC-32 + classifier bin counts) used by the
  // golden-run regression suite; any byte of drift fails the comparison.
  std::string Digest(const std::string& scenario_name) const;
};

class MultiExchangeRunner {
 public:
  // Called after each partition's scenario is constructed and before it
  // runs, from whichever worker owns that exchange — it must only touch
  // state private to `exchange` (e.g. a per-exchange sink slot).
  using PartitionSetup = std::function<void(int exchange, ExchangeScenario&)>;

  explicit MultiExchangeRunner(MultiExchangeConfig config)
      : config_(std::move(config)) {}

  void SetPartitionSetup(PartitionSetup setup) { setup_ = std::move(setup); }

  // Generates the shared universe once, runs every partition to the horizon,
  // and merges in exchange order. Safe to call once per runner.
  MultiExchangeResult Run();

  const MultiExchangeConfig& config() const { return config_; }

 private:
  MultiExchangeConfig config_;
  PartitionSetup setup_;
};

}  // namespace iri::workload
