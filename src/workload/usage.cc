#include "workload/usage.h"

#include <algorithm>
#include <cmath>

namespace iri::workload {

double UsageModel::Level(TimePoint t) const {
  const int day = static_cast<int>(t.nanos() / Duration::Days(1).nanos());
  const double hour = HourOfDay(t);

  // Interpolate between adjacent hour weights for a smooth curve.
  const int h0 = static_cast<int>(hour) % 24;
  const int h1 = (h0 + 1) % 24;
  const double frac = hour - std::floor(hour);
  double level = config_.hour_weight[static_cast<std::size_t>(h0)] * (1 - frac) +
                 config_.hour_weight[static_cast<std::size_t>(h1)] * frac;

  double day_factor = config_.weekday_factor[static_cast<std::size_t>(DayOfWeek(t))];
  if (std::find(config_.holiday_days.begin(), config_.holiday_days.end(),
                day) != config_.holiday_days.end()) {
    day_factor = std::min(day_factor, config_.holiday_factor);
  }
  level *= day_factor;

  if (day >= config_.summer_start_day && day <= config_.summer_end_day &&
      hour >= 17.0) {
    level *= config_.summer_evening_factor;
  }

  level *= 1.0 + config_.trend_per_day * day;
  return level;
}

double UsageModel::MaxLevel(Duration horizon) const {
  const double max_hour =
      *std::max_element(config_.hour_weight.begin(), config_.hour_weight.end());
  const double max_day = *std::max_element(config_.weekday_factor.begin(),
                                           config_.weekday_factor.end());
  const double days = horizon.ToHours() / 24.0;
  return max_hour * max_day * (1.0 + config_.trend_per_day * days);
}

}  // namespace iri::workload
