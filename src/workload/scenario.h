// The nine-month measurement campaign in a box.
//
// ExchangeScenario assembles one or more public exchange points — Routing
// Arbiter-style route servers, one border router per (provider, exchange),
// links — seeds them with a generated universe, attaches a measurement
// monitor per exchange, and drives every instability mechanism the paper
// identifies:
//
//   * customer leased-line flaps (Poisson, modulated by the usage curve)
//   * CSU clock-drift oscillation episodes (≈30 s withdraw/announce beats)
//   * internal route-selection oscillations (AADiff trains on alternates)
//   * policy fluctuations (MED/community churn; tuple-identical AADup)
//   * IGP/iBGP internal-reset episodes at stateless providers (WWDup+AADup)
//   * daily ~10:00 maintenance windows (session resets → re-dump bursts)
//   * Saturday instability spikes
//   * a "major ISP infrastructure upgrade" incident (Figure 3's dark band,
//     Figure 10's spike)
//   * a pathological small-ISP incident (Table 1's ISP-I: millions of
//     withdrawals through a stateless border router)
//   * the multihoming growth schedule (Figure 10)
//
// All rates are per-day at usage level 1.0 and are sampled by Poisson
// thinning against the usage envelope, so the realized event stream carries
// the daily/weekly/seasonal structure the paper's spectral analysis finds.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/arena.h"
#include "core/monitor.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/provenance.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "sim/link.h"
#include "sim/router.h"
#include "sim/scheduler.h"
#include "topology/universe.h"
#include "workload/usage.h"

namespace iri::workload {

// Community tags used by provider export policies.
inline constexpr bgp::Community kAggregatedTag = (65000u << 16) | 1u;
inline constexpr bgp::Community kOwnRouteTag = (65000u << 16) | 2u;

struct ScenarioConfig {
  topology::TopologyConfig topology;
  Duration duration = Duration::Days(7);
  std::uint64_t seed = 42;
  UsageConfig usage;

  // Exchange points. The paper instrumented five (Mae-East, AADS, Sprint,
  // PacBell, Mae-West); each provider runs one border router per exchange,
  // and each exchange has its own route server + monitor. AS-internal
  // events (customer flaps, internal resets, sprays) hit every border
  // router of the provider simultaneously; session-level events
  // (maintenance resets) are per exchange.
  int num_exchanges = 1;

  // --- legitimate instability (per-day rates at usage level 1.0) ---
  double customer_flap_rate = 0.15;   // per customer prefix
  Duration mean_repair_time = Duration::Seconds(75);
  double failover_rate = 0.04;        // extra flaps for multihomed customers
  Duration mean_failover_repair = Duration::Minutes(8);

  // Background path changes: a route converges onto its alternate path with
  // a short settle burst of 1-5 AADiffs spaced at the flush interval (BGP
  // convergence transients). This is the bulk of Figure 7's small-count
  // Prefix+AS pairs AND of Figure 8's 30 s AADiff gaps.
  double path_change_rate = 0.35;  // per alternate-path customer

  // --- oscillation episodes ---
  // Episode *targets* are drawn provider-first (uniformly across ASes, not
  // across prefixes), which decorrelates update share from routing-table
  // share — Figure 6's central negative result. The flappy subset gets
  // most episodes and much longer ones (Figure 7's heavy tails; the
  // paper's Provider-E pattern of a few prefixes updating all day).
  double csu_episode_rate = 0.18;           // per visible customer
  double oscillation_episode_rate = 0.05;   // per alternate-path customer
  double episode_flappy_bias = 0.6;
  Duration mean_episode_length = Duration::Minutes(4);
  Duration max_episode_length = Duration::Hours(4);
  double flappy_episode_multiplier = 8.0;  // length multiplier for flappy
  // Chance that a CSU line recovery comes back via the indirect transit
  // path (turns a WADup into a WADiff at the collector).
  double csu_path_toggle_prob = 0.6;

  // --- policy fluctuation ---
  double policy_fluctuation_rate = 0.1;  // per visible customer

  // --- pathological mechanisms ---
  double internal_reset_episode_rate = 4.0;  // per stateless provider
  double internal_reset_beats_mean = 5.0;    // resets per episode
  // Fraction of the provider's own routes behind the flapping internal
  // adjacency (each beat re-dirties a fresh sample).
  double internal_reset_dirty_fraction = 0.3;
  // Each reset also sprays withdrawals for this fraction of *foreign*
  // (exchange-learned) prefixes — the paper's ISP-Y, withdrawing routes
  // "announced only by ISP-X" that it never announced itself.
  double internal_reset_foreign_fraction = 0.05;

  // --- maintenance windows ---
  double maintenance_hour = 10.0;
  double maintenance_window_h = 0.5;
  double maintenance_boost = 5.0;            // flap-rate boost in window
  double maintenance_reset_prob = 0.2;       // per provider per day

  // --- Saturday spikes ---
  double saturday_spike_prob = 0.5;
  double saturday_spike_boost = 6.0;
  Duration saturday_spike_length = Duration::Hours(1.5);

  // --- the upgrade incident (Figure 3 / Figure 10) ---
  bool upgrade_enabled = false;
  int upgrade_start_day = 55;
  int upgrade_end_day = 62;
  double upgrade_flap_multiplier = 10.0;
  int upgrade_provider = 0;  // index; 0 is the largest ISP

  // --- the pathological small-ISP incident (Table 1's ISP-I) ---
  bool patho_enabled = false;
  int patho_provider = -1;  // -1: pick the smallest provider
  double patho_spray_rate = 80.0;  // upstream flaps per day during incident
  double patho_table_fraction = 1.0;  // fraction of universe in its table

  // --- router & exchange knobs (ablation switches) ---
  Duration flush_interval = Duration::Seconds(30);
  bool force_all_jittered = false;   // ablation: jitter every flush timer
  bool force_all_stateful = false;   // ablation: the vendor software fix
  bool providers_dampen = false;     // RFC 2439 at provider borders
  bgp::DampeningParams dampening;
  bool rs_reexport = false;  // full route-server fan-out (costly; monitor
                             // statistics are identical either way)
  Duration link_latency = Duration::Millis(2);

  // Intra-exchange prefix-space sharding (DESIGN.md §13). Each monitor's
  // classifier state is partitioned into `shards` by a stable prefix hash
  // and pending batches fan out over up to `shard_threads` workers. Golden
  // digests are byte-identical at any (shards, shard_threads) combination —
  // pinned by the golden matrix — so both knobs are pure throughput knobs.
  int shards = 1;
  int shard_threads = 1;

  // Opt-in wall-clock profiling (obs/profile.h): adds nondeterministic
  // profile.*.wall_ns counters, excluded from snapshots by default. Never
  // enable for runs whose snapshots feed golden digests.
  bool profile_wall_clock = false;

  // --- streaming telemetry (obs/timeseries.h, obs/health.h) ---
  // Period of the sim-time flush event that drains the series instruments
  // into JSONL records and feeds the health detectors. Zero (or negative)
  // disables the whole telemetry path: no flush events, no per-event series
  // cost beyond a null check (the micro_perf regression gate's
  // configuration). Must divide the timer periods HealthConfig watches for
  // the periodicity score to see them (10 s against 30 s/60 s by default).
  Duration series_flush_interval = Duration::Seconds(10);
  // EWMA smoothing for the counter series' per-window averages.
  double series_ewma_alpha = 0.3;
  // Detector thresholds (Goertzel periodicity, WWDup/AADup storm,
  // flap-burst sessionizer).
  obs::HealthConfig health;
};

class ExchangeScenario {
 public:
  explicit ExchangeScenario(ScenarioConfig config);
  ExchangeScenario(ScenarioConfig config, topology::Universe universe);

  // Runs bootstrap (links up, sessions established, initial table dumped)
  // plus the whole configured duration.
  void Run() { RunUntil(TimePoint::Origin() + config_.duration); }
  void RunUntil(TimePoint t);

  // Registers `fn(day)` to run just before each midnight rollover.
  void ScheduleDaily(std::function<void(int day)> fn);

  sim::Scheduler& scheduler() { return sched_; }
  core::ExchangeMonitor& monitor(int exchange = 0) {
    return *monitors_[static_cast<std::size_t>(exchange)];
  }
  sim::Router& route_server(int exchange = 0) {
    return *route_servers_[static_cast<std::size_t>(exchange)];
  }
  sim::Router& provider_router(int i, int exchange = 0) {
    return *borders_[static_cast<std::size_t>(i)]
                    [static_cast<std::size_t>(exchange)];
  }
  int num_exchanges() const { return config_.num_exchanges; }
  const topology::Universe& universe() const { return universe_; }
  const UsageModel& usage() const { return usage_; }
  const ScenarioConfig& config() const { return config_; }

  // This scenario's observability state: every component (scheduler,
  // routers, links, monitors) feeds these. Single-partition, like the
  // scenario itself — the multi-exchange runner merges them across
  // partitions in fixed exchange order.
  obs::Registry& metrics() { return metrics_; }
  const obs::Registry& metrics() const { return metrics_; }
  obs::Tracer& trace() { return trace_; }
  const obs::Tracer& trace() const { return trace_; }
  // The streaming telemetry pipeline: windowed series records drained by a
  // periodic sim-time flush, and the online health detectors fed from the
  // same ticks. health() is null when series_flush_interval disables the
  // telemetry path.
  obs::SeriesFlusher& series() { return series_; }
  const obs::SeriesFlusher& series() const { return series_; }
  const obs::HealthMonitor* health() const { return health_.get(); }
  // The partition's cause allocator: fault handlers scope causes here, and
  // every router and link holds a pointer. Exposed so the runner can join
  // the cause table with the classifier's attribution matrix.
  obs::ProvenanceContext& provenance() { return prov_; }
  const obs::ProvenanceContext& provenance() const { return prov_; }

  // Fraction of the *visible* default-free table this provider is
  // responsible for today (Figure 6's x-axis).
  double TableShare(int provider) const;

  // The scale factor versus the paper's full universe, for report headers.
  double Scale() const { return universe_.config.scale; }

  // Day-scoped scratch arena (reset at each midnight rollover); exposed so
  // tests can check the reuse discipline.
  const core::Arena& day_arena() const { return day_arena_; }

 private:
  struct CustomerState {
    bool line_up = true;
    bool in_episode = false;
    int policy_serial = 0;   // cycles MED values for policy fluctuation
    bool on_alternate = false;
    bool backup_active = false;
    // CSU episode beat profile, as fractions of the flush interval. Fast
    // episodes (carrier loss and recovery inside one window) produce 30 s
    // W,A trains through stateless senders; slow episodes (one window down,
    // one up) produce 60 s trains through everyone.
    double episode_down_frac = 1.0;
    double episode_up_frac = 1.0;
    // The cause allocated at episode start; every beat re-scopes it so the
    // whole episode's updates attribute to one root. Zero bytes when
    // provenance is compiled out.
    [[no_unique_address]] obs::CauseTag episode_cause;
  };

  void Build();
  void Bootstrap();
  void ScheduleProcesses();
  void ScheduleMidnight(int day);
  // The periodic telemetry flush: samples the closed windows into the
  // health detectors, drains the series instruments into JSONL records and
  // reschedules itself while the next tick stays inside the configured
  // duration (finalizing the detectors on the last tick). Never draws from
  // rng_ and never touches routers or links: disabling telemetry must not
  // move a single simulation byte.
  void SeriesTick();

  // Event-process machinery: schedules the next arrival of a thinned
  // Poisson process with base rate `events_per_day` (at usage level 1).
  void SchedulePoisson(double events_per_day, double max_level,
                       std::function<void()> fire);

  // Current multiplicative boost from maintenance windows / Saturday
  // spikes / the upgrade incident, applied on top of the usage level.
  double FlapBoost(TimePoint t, int provider) const;

  // --- event handlers ---
  void CustomerFlap(int customer, bool failover);
  // A convergence transient: flips to the alternate path and settles back
  // over a few flush intervals (burst of 1-5 AADiffs). The whole burst
  // scopes `cause` (allocated by the Poisson arrival that starts it).
  void PathChangeBurst(int customer, int flips_left, obs::CauseTag cause);
  void StartCsuEpisode(int customer);
  void CsuBeat(int customer, TimePoint episode_end, bool down);
  void StartOscillationEpisode(int customer);
  void OscillationBeat(int customer, TimePoint episode_end);
  void PolicyFluctuate(int customer);
  void StartInternalResetEpisode(int provider);
  void InternalResetBeat(int provider, int beats_left, obs::CauseTag cause);
  void MaintenanceWindow(int day);
  void SaturdaySpike(int day);
  void PathoSpray();
  void ActivateBackup(int customer);
  // The upgrade incident: the affected ISP's customers buy emergency
  // transit (temporary dual announcements — Figure 10's spike) and the ISP
  // bounces its exchange session repeatedly.
  void StartUpgradeIncident();
  void EndUpgradeIncident();

  // Route construction helpers.
  bgp::Route CustomerRoute(int customer, bool via_primary,
                           bool alternate_path) const;

  ScenarioConfig config_;
  topology::Universe universe_;
  UsageModel usage_;
  // Declared before the scheduler and routers: they cache pointers into the
  // registry/tracer, so these must be destroyed last. The series flusher and
  // health monitor sit in the same tier (monitors cache series instrument
  // pointers; health caches registry gauges).
  obs::Registry metrics_;
  obs::Tracer trace_;
  // Cause allocator for this partition; same lifetime tier as the registry
  // (routers and links cache a pointer to it).
  obs::ProvenanceContext prov_;
  obs::SeriesFlusher series_;
  std::unique_ptr<obs::HealthMonitor> health_;
  // Cached series instruments the flush tick samples for the health feed.
  obs::WindowedCounter* series_updates_ = nullptr;
  obs::WindowedCounter* series_wwdup_ = nullptr;
  obs::WindowedCounter* series_aadup_ = nullptr;
  sim::Scheduler sched_;
  Rng rng_;

  std::vector<std::unique_ptr<sim::Router>> route_servers_;
  // borders_[provider][exchange]; links_ has the same shape.
  std::vector<std::vector<std::unique_ptr<sim::Router>>> borders_;
  std::vector<std::vector<std::unique_ptr<sim::Link>>> links_;
  std::vector<std::unique_ptr<core::ExchangeMonitor>> monitors_;

  // AS-level helpers: apply to every border router of `provider`.
  void OriginateAt(int provider, const bgp::Route& route);
  void WithdrawAt(int provider, const Prefix& prefix);

  std::vector<CustomerState> customer_state_;
  // Visible universe with primary-provider ownership (spray targets; a
  // provider's reset never sprays its own customers — those are handled by
  // InternalReset itself).
  std::vector<std::pair<Prefix, int>> foreign_prefixes_;
  // Per-provider fixed subsets of foreign prefixes disturbed by internal
  // resets (empty for stateful providers).
  std::vector<std::vector<Prefix>> foreign_leak_sets_;
  std::vector<int> upgrade_temporaries_;  // customers dual-announced ad hoc
  // The upgrade incident's cause: allocated at incident start, re-scoped by
  // every bounce and by the cleanup at incident end.
  [[no_unique_address]] obs::CauseTag upgrade_cause_;
  std::vector<int> patho_table_;   // customer indices the patho ISP carries
  int patho_provider_ = -1;
  double saturday_boost_ = 1.0;    // active spike multiplier
  TimePoint saturday_boost_end_;
  std::vector<std::function<void(int)>> daily_hooks_;
  // Day-scoped scratch arena for transient event buffers (withdrawal-spray
  // samples). A daily hook registered in the constructor Reset()s it at
  // every midnight rollover, so a long campaign's scratch footprint is
  // bounded by its busiest single day. Reset only ever runs from the
  // midnight task, never inside an event handler that holds a buffer.
  core::Arena day_arena_{16 * 1024};
  // Type of the spray sample buffers carved from day_arena_.
  using SprayBuffer = std::vector<Prefix, core::ArenaAllocator<Prefix>>;

  // Weighted customer sampling (per-provider flap multipliers).
  std::vector<double> customer_weight_cumulative_;
  double customer_weight_total_ = 0;
  int SampleCustomer();
};

// --- multi-exchange partitioning -------------------------------------------
//
// The partitioned runner (workload/multi_exchange_runner.h) shards a
// num_exchanges=K scenario into K independent single-exchange scenarios.
// Each partition draws from its own decorrelated RNG stream so no draw in
// one exchange can perturb another — the property that makes the parallel
// schedule interleaving-independent (see DESIGN.md §8).

// Sub-seed for exchange `e`: the (e+1)-th output of a SplitMix64 stream over
// the scenario seed. Depends only on (seed, e), never on thread placement.
std::uint64_t ExchangeSubSeed(std::uint64_t scenario_seed, int exchange);

// The single-exchange partition of `config` for exchange `e`: identical
// topology and knobs, num_exchanges=1, seed=ExchangeSubSeed(seed, e).
ScenarioConfig PartitionConfig(const ScenarioConfig& config, int exchange);

}  // namespace iri::workload
