#include "workload/scenario.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "netbase/rng.h"

namespace iri::workload {
namespace {

constexpr Duration kDay = Duration::Days(1);

int DayIndex(TimePoint t) {
  return static_cast<int>(t.nanos() / kDay.nanos());
}

}  // namespace

ExchangeScenario::ExchangeScenario(ScenarioConfig config)
    : ExchangeScenario(
          config, topology::GenerateUniverse(config.topology, config.duration)) {}

ExchangeScenario::ExchangeScenario(ScenarioConfig config,
                                   topology::Universe universe)
    : config_(std::move(config)),
      universe_(std::move(universe)),
      usage_(config_.usage),
      rng_(config_.seed) {
  Build();
  Bootstrap();
  ScheduleProcesses();
  // Day-scoped scratch discipline: everything carved from day_arena_ is
  // transient within a single scheduler task, so resetting between days
  // (after the day's hooks, before the next day's events) is safe and keeps
  // the arena's footprint bounded by the busiest day.
  ScheduleDaily([this](int) { day_arena_.Reset(); });
}

void ExchangeScenario::Build() {
  metrics_.SetWallClockProfiling(config_.profile_wall_clock);
  sched_.AttachMetrics(&metrics_);
  prov_.SetTracer(&trace_);

  // --- route servers, one per exchange point ---
  const int k = std::max(1, config_.num_exchanges);
  config_.num_exchanges = k;
  for (int e = 0; e < k; ++e) {
    sim::RouterConfig rs_cfg;
    rs_cfg.name = "route-server-" + std::to_string(e);
    rs_cfg.asn = 7;  // the Routing Arbiter's AS
    rs_cfg.router_id = IPv4Address(198, 32, static_cast<std::uint8_t>(e), 1);
    rs_cfg.interface_addr =
        IPv4Address(198, 32, static_cast<std::uint8_t>(e), 2);
    rs_cfg.transparent = true;
    rs_cfg.no_reexport = !config_.rs_reexport;
    rs_cfg.hold_time_s = 180;
    rs_cfg.packer.interval = Duration::Seconds(10);
    rs_cfg.packer.discipline = bgp::TimerDiscipline::kJittered;
    route_servers_.push_back(
        std::make_unique<sim::Router>(sched_, rs_cfg, rng_.Next()));
    route_servers_.back()->AttachObservability(&metrics_, &trace_);
    route_servers_.back()->SetProvenance(&prov_);
    monitors_.push_back(std::make_unique<core::ExchangeMonitor>());
    monitors_.back()->Attach(*route_servers_.back());
    // Sharding before metrics: the per-shard depth instruments are sized by
    // the configured shard count. Batched draining is only engaged when the
    // config asks for parallelism; a (1,1) scenario keeps the historical
    // drain-per-message behaviour.
    if (config_.shards > 1 || config_.shard_threads > 1) {
      monitors_.back()->ConfigureSharding(config_.shards,
                                          config_.shard_threads);
    }
    monitors_.back()->AttachMetrics(&metrics_);
  }

  // --- streaming telemetry: series instruments + health detectors ---
  // Every monitor feeds the same named instruments (one partition, one
  // series), and the flush tick samples the shared windows for the health
  // feed — so the caches below and the monitors' caches alias by name.
  if (config_.series_flush_interval.nanos() > 0) {
    series_.SetEwmaAlpha(config_.series_ewma_alpha);
    health_ = std::make_unique<obs::HealthMonitor>(
        config_.health, config_.series_flush_interval, &trace_, &metrics_);
    series_updates_ = &series_.GetCounter("monitor.updates");
    series_wwdup_ = &series_.GetCounter("monitor.wwdup");
    series_aadup_ = &series_.GetCounter("monitor.aadup");
    for (auto& monitor : monitors_) {
      monitor->AttachTimeSeries(&series_, health_.get());
    }
  }

  // --- pathological provider selection: smallest table weight ---
  patho_provider_ = config_.patho_provider;
  if (config_.patho_enabled && patho_provider_ < 0) {
    patho_provider_ = static_cast<int>(universe_.providers.size()) - 1;
  }
  if (config_.patho_enabled) {
    // The incident requires the stateless implementation (the spray is a
    // no-op through a stateful border router).
    universe_.providers[static_cast<std::size_t>(patho_provider_)]
        .stateless_bgp = true;
  }

  // --- provider border routers + links (one per exchange) ---
  for (std::size_t i = 0; i < universe_.providers.size(); ++i) {
    const auto& spec = universe_.providers[i];
    borders_.emplace_back();
    links_.emplace_back();
    for (int e = 0; e < k; ++e) {
      sim::RouterConfig cfg;
      cfg.name = spec.name + (k > 1 ? "@x" + std::to_string(e) : "");
      cfg.asn = spec.asn;
      cfg.router_id = IPv4Address(spec.router_id.bits() +
                                  (static_cast<std::uint32_t>(e) << 24));
      cfg.interface_addr = IPv4Address(
          spec.interface_addr.bits() + (static_cast<std::uint32_t>(e) << 24));
      cfg.stateless_bgp = spec.stateless_bgp && !config_.force_all_stateful;
      cfg.hold_time_s = 90;
      cfg.packer.interval = config_.flush_interval;
      cfg.packer.discipline =
          (spec.unjittered_timer && !config_.force_all_jittered)
              ? bgp::TimerDiscipline::kUnjittered
              : bgp::TimerDiscipline::kJittered;
      cfg.enable_dampening = config_.providers_dampen;
      cfg.dampening = config_.dampening;
      auto router = std::make_unique<sim::Router>(sched_, cfg, rng_.Next());

      // Export policy toward the exchange: own routes only, and never the
      // aggregated customer components. Stateless withdrawal sprays bypass
      // this policy — that asymmetry is the WWDup pathology.
      bgp::Policy exp = bgp::Policy::DenyAll();
      {
        bgp::PolicyRule deny_aggregated;
        deny_aggregated.name = "deny-aggregated-components";
        deny_aggregated.match.has_community = kAggregatedTag;
        deny_aggregated.action.deny = true;
        exp.Add(std::move(deny_aggregated));
        bgp::PolicyRule allow_own;
        allow_own.name = "allow-own-routes";
        allow_own.match.has_community = kOwnRouteTag;
        exp.Add(std::move(allow_own));
      }

      auto link = std::make_unique<sim::Link>(sched_, config_.link_latency);
      router->AttachObservability(&metrics_, &trace_);
      router->SetProvenance(&prov_);
      link->AttachObservability(&metrics_, &trace_, cfg.name);
      link->SetProvenance(&prov_);
      router->AttachLink(*link, /*side_a=*/true, 7, bgp::Policy::AcceptAll(),
                         std::move(exp));
      route_servers_[static_cast<std::size_t>(e)]->AttachLink(
          *link, /*side_a=*/false, spec.asn);

      borders_.back().push_back(std::move(router));
      links_.back().push_back(std::move(link));
    }
  }

  customer_state_.assign(universe_.customers.size(), CustomerState{});

  // Weighted customer sampling table (per-provider flap multipliers).
  customer_weight_cumulative_.reserve(universe_.customers.size());
  double acc = 0;
  for (const auto& c : universe_.customers) {
    acc += universe_.providers[static_cast<std::size_t>(c.primary_provider)]
               .customer_flap_multiplier;
    customer_weight_cumulative_.push_back(acc);
  }
  customer_weight_total_ = acc;

  for (const auto& c : universe_.customers) {
    if (!c.aggregated) {
      foreign_prefixes_.emplace_back(c.prefix, c.primary_provider);
    }
  }
  // Each stateless provider's internal resets disturb a *fixed* subset of
  // the exchange-learned table (the portion of its internal RIB behind the
  // flaky adjacency). A stable leak set keeps the WWDup spray targets
  // persistent across resets, as observed — the same prefixes withdrawn
  // over and over.
  foreign_leak_sets_.resize(universe_.providers.size());
  for (std::size_t p = 0; p < universe_.providers.size(); ++p) {
    if (!universe_.providers[p].stateless_bgp) continue;
    for (const auto& [prefix, owner] : foreign_prefixes_) {
      if (owner == static_cast<int>(p)) continue;
      if (rng_.Uniform() < config_.internal_reset_foreign_fraction) {
        foreign_leak_sets_[p].push_back(prefix);
      }
    }
  }

  // The pathological ISP's learned table: a sample of the visible universe.
  if (config_.patho_enabled) {
    for (std::size_t i = 0; i < universe_.customers.size(); ++i) {
      if (universe_.customers[i].aggregated) continue;
      if (rng_.Uniform() < config_.patho_table_fraction) {
        patho_table_.push_back(static_cast<int>(i));
      }
    }
  }
}

void ExchangeScenario::OriginateAt(int provider, const bgp::Route& route) {
  for (auto& border : borders_[static_cast<std::size_t>(provider)]) {
    border->Originate(route);
  }
}

void ExchangeScenario::WithdrawAt(int provider, const Prefix& prefix) {
  for (auto& border : borders_[static_cast<std::size_t>(provider)]) {
    border->WithdrawLocal(prefix);
  }
}

int ExchangeScenario::SampleCustomer() {
  const double r = rng_.Uniform() * customer_weight_total_;
  const auto it =
      std::lower_bound(customer_weight_cumulative_.begin(),
                       customer_weight_cumulative_.end(), r);
  return static_cast<int>(it - customer_weight_cumulative_.begin());
}

bgp::Route ExchangeScenario::CustomerRoute(int customer, bool via_primary,
                                           bool alternate_path) const {
  const auto& c = universe_.customers[static_cast<std::size_t>(customer)];
  const auto& prov =
      universe_.providers[static_cast<std::size_t>(
          via_primary ? c.primary_provider : c.backup_provider)];
  bgp::Route r;
  r.prefix = c.prefix;
  r.attributes.origin = bgp::Origin::kIgp;
  std::vector<bgp::Asn> path;
  if (alternate_path) path.push_back(prov.transit_asn);
  if (c.customer_asn != 0) path.push_back(c.customer_asn);
  r.attributes.as_path = bgp::AsPath::Sequence(std::move(path));
  r.attributes.communities.push_back(kOwnRouteTag);
  if (c.aggregated) r.attributes.communities.push_back(kAggregatedTag);
  std::sort(r.attributes.communities.begin(), r.attributes.communities.end());
  const auto& st = customer_state_[static_cast<std::size_t>(customer)];
  if (st.policy_serial > 0) r.attributes.med = static_cast<std::uint32_t>(
      st.policy_serial % 8);
  return r;
}

void ExchangeScenario::Bootstrap() {
  // Bring every exchange link up at t=0; BGP sessions establish within the
  // first few RTTs.
  sched_.At(TimePoint::Origin(), [this] {
    obs::CauseScope scope(&prov_, obs::CauseKind::kBootstrap, sched_.Now());
    for (auto& per_provider : links_) {
      for (auto& link : per_provider) link->Restore();
    }
  });

  // Originate the world at t=2s: provider aggregates, visible customers,
  // aggregated components, and already-multihomed backups.
  sched_.At(TimePoint::Origin() + Duration::Seconds(2), [this] {
    obs::CauseScope scope(&prov_, obs::CauseKind::kBootstrap, sched_.Now());
    for (std::size_t i = 0; i < universe_.providers.size(); ++i) {
      const auto& spec = universe_.providers[i];
      for (const Prefix& block : spec.aggregate_blocks) {
        bgp::Route r;
        r.prefix = block;
        r.attributes.origin = bgp::Origin::kIgp;
        r.attributes.atomic_aggregate = true;
        r.attributes.aggregator = bgp::Aggregator{spec.asn, spec.router_id};
        r.attributes.communities.push_back(kOwnRouteTag);
        OriginateAt(static_cast<int>(i), r);
      }
    }
    for (std::size_t ci = 0; ci < universe_.customers.size(); ++ci) {
      const auto& c = universe_.customers[ci];
      OriginateAt(c.primary_provider,
                  CustomerRoute(static_cast<int>(ci), /*via_primary=*/true,
                                false));
      if (c.backup_provider >= 0 &&
          c.multihomed_since <= sched_.Now()) {
        ActivateBackup(static_cast<int>(ci));
      }
    }
  });

  // Multihoming growth schedule (Figure 10's linear ramp).
  for (std::size_t ci = 0; ci < universe_.customers.size(); ++ci) {
    const auto& c = universe_.customers[ci];
    if (c.backup_provider >= 0 && c.multihomed_since > TimePoint::Origin() &&
        c.multihomed_since < TimePoint::Max()) {
      sched_.At(c.multihomed_since, [this, ci] {
        obs::CauseScope scope(&prov_, obs::CauseKind::kMultihoming,
                              sched_.Now());
        ActivateBackup(static_cast<int>(ci));
      });
    }
  }
}

void ExchangeScenario::ActivateBackup(int customer) {
  auto& st = customer_state_[static_cast<std::size_t>(customer)];
  if (st.backup_active) return;
  const auto& c = universe_.customers[static_cast<std::size_t>(customer)];
  if (c.backup_provider < 0) return;
  st.backup_active = true;
  OriginateAt(c.backup_provider,
              CustomerRoute(customer, /*via_primary=*/false, false));
}

// ----------------------------------------------------------- scheduling

void ExchangeScenario::SchedulePoisson(double events_per_day,
                                       double max_level,
                                       std::function<void()> fire) {
  if (events_per_day <= 0 || max_level <= 0) return;
  const double mean_gap_s = 86400.0 / (events_per_day * max_level);
  const Duration wait = Duration::Seconds(rng_.Exponential(mean_gap_s));
  sched_.After(wait, [this, events_per_day, max_level,
                      fire = std::move(fire)]() mutable {
    fire();
    SchedulePoisson(events_per_day, max_level, std::move(fire));
  });
}

double ExchangeScenario::FlapBoost(TimePoint t, int provider) const {
  double boost = 1.0;
  const double hour = UsageModel::HourOfDay(t);
  if (hour >= config_.maintenance_hour &&
      hour < config_.maintenance_hour + config_.maintenance_window_h) {
    boost *= config_.maintenance_boost;
  }
  if (t < saturday_boost_end_) boost *= saturday_boost_;
  if (config_.upgrade_enabled && provider == config_.upgrade_provider) {
    const int day = DayIndex(t);
    if (day >= config_.upgrade_start_day && day <= config_.upgrade_end_day) {
      boost *= config_.upgrade_flap_multiplier;
    }
  }
  return boost;
}

void ExchangeScenario::ScheduleProcesses() {
  const double env_usage = usage_.MaxLevel(config_.duration);
  const double max_boost =
      std::max({config_.maintenance_boost, config_.saturday_spike_boost,
                config_.upgrade_enabled ? config_.upgrade_flap_multiplier : 1.0});
  const double env_flap = env_usage * max_boost;

  const int n_customers = universe_.TotalPrefixes();
  const std::size_t n_providers = universe_.providers.size();
  int n_visible = 0, n_alternate = 0, n_multihomed = 0;
  std::vector<int> multihomed;
  // Per-provider target lists: episode/path-change events pick a provider
  // first (uniformly), THEN one of its customers — so an AS's share of the
  // update stream is independent of its share of the routing table
  // (Figure 6).
  std::vector<std::vector<int>> visible_by(n_providers);
  std::vector<std::vector<int>> flappy_by(n_providers);
  std::vector<std::vector<int>> alternates_by(n_providers);
  for (std::size_t i = 0; i < universe_.customers.size(); ++i) {
    const auto& c = universe_.customers[i];
    const auto p = static_cast<std::size_t>(c.primary_provider);
    if (!c.aggregated) {
      ++n_visible;
      visible_by[p].push_back(static_cast<int>(i));
      if (c.flappy) flappy_by[p].push_back(static_cast<int>(i));
    }
    if (c.has_alternate_path) {
      ++n_alternate;
      alternates_by[p].push_back(static_cast<int>(i));
    }
    if (c.backup_provider >= 0) {
      ++n_multihomed;
      multihomed.push_back(static_cast<int>(i));
    }
  }
  // Provider-first sampling with a flappy bias inside the provider.
  auto pick_provider_first =
      [this, n_providers](const std::vector<std::vector<int>>& primary,
                          const std::vector<std::vector<int>>& preferred,
                          double preferred_bias) -> int {
    // A few probes so empty providers don't starve the process.
    for (int probe = 0; probe < 8; ++probe) {
      const auto p = static_cast<std::size_t>(rng_.Below(n_providers));
      if (!preferred.empty() && !preferred[p].empty() &&
          rng_.Uniform() < preferred_bias) {
        return preferred[p][rng_.Below(preferred[p].size())];
      }
      if (!primary[p].empty()) {
        return primary[p][rng_.Below(primary[p].size())];
      }
    }
    return -1;
  };

  // Customer line flaps (weighted by provider churn character).
  SchedulePoisson(
      config_.customer_flap_rate * n_customers, env_flap, [this, env_flap] {
        const int ci = SampleCustomer();
        const auto& c = universe_.customers[static_cast<std::size_t>(ci)];
        const double level = usage_.Level(sched_.Now()) *
                             FlapBoost(sched_.Now(), c.primary_provider);
        if (rng_.Uniform() * env_flap > level) return;
        CustomerFlap(ci, /*failover=*/false);
      });

  // Longer multihomed failovers.
  SchedulePoisson(
      config_.failover_rate * std::max(1, n_multihomed), env_flap,
      [this, multihomed, env_flap] {
        if (multihomed.empty()) return;
        const int ci = multihomed[rng_.Below(multihomed.size())];
        const auto& c = universe_.customers[static_cast<std::size_t>(ci)];
        const double level = usage_.Level(sched_.Now()) *
                             FlapBoost(sched_.Now(), c.primary_provider);
        if (rng_.Uniform() * env_flap > level) return;
        CustomerFlap(ci, /*failover=*/true);
      });

  // Acceptance test shared by the per-customer processes: thin by the usage
  // level times the sampled customer's provider boost (maintenance windows,
  // Saturday spikes, the upgrade incident).
  auto accept_boosted = [this, env_flap](int customer) {
    const int prov =
        universe_.customers[static_cast<std::size_t>(customer)]
            .primary_provider;
    const double level =
        usage_.Level(sched_.Now()) * FlapBoost(sched_.Now(), prov);
    return rng_.Uniform() * env_flap <= level;
  };

  // CSU oscillation episodes on visible customer lines.
  SchedulePoisson(
      config_.csu_episode_rate * std::max(1, n_visible), env_flap,
      [this, visible_by, flappy_by, pick_provider_first, accept_boosted] {
        const int ci = pick_provider_first(visible_by, flappy_by,
                                           config_.episode_flappy_bias);
        if (ci >= 0 && accept_boosted(ci)) StartCsuEpisode(ci);
      });

  // Route-selection oscillation episodes (IGP/BGP interaction).
  SchedulePoisson(
      config_.oscillation_episode_rate * std::max(1, n_alternate), env_flap,
      [this, alternates_by, flappy_by, pick_provider_first, accept_boosted] {
        const int ci = pick_provider_first(alternates_by, flappy_by,
                                           config_.episode_flappy_bias);
        if (ci >= 0 && accept_boosted(ci)) StartOscillationEpisode(ci);
      });

  // Background path-change settle bursts (convergence transients).
  SchedulePoisson(
      config_.path_change_rate * std::max(1, n_alternate), env_flap,
      [this, alternates_by, pick_provider_first, accept_boosted] {
        const int ci = pick_provider_first(alternates_by, {}, 0.0);
        if (ci >= 0 && accept_boosted(ci)) {
          PathChangeBurst(ci, 1 + static_cast<int>(rng_.Below(4)),
                          obs::CauseTag{});
        }
      });

  // Policy fluctuation (MED churn on visible routes).
  SchedulePoisson(
      config_.policy_fluctuation_rate * std::max(1, n_visible), env_usage,
      [this, visible_by, pick_provider_first, env_usage] {
        if (rng_.Uniform() * env_usage > usage_.Level(sched_.Now())) return;
        const int ci = pick_provider_first(visible_by, {}, 0.0);
        if (ci >= 0) PolicyFluctuate(ci);
      });

  // IGP/iBGP internal-reset episodes at stateless providers.
  for (std::size_t i = 0; i < universe_.providers.size(); ++i) {
    const auto& spec = universe_.providers[i];
    if (!spec.stateless_bgp || config_.force_all_stateful) continue;
    SchedulePoisson(
        config_.internal_reset_episode_rate * spec.internal_reset_multiplier,
        env_usage, [this, i, env_usage] {
          if (rng_.Uniform() * env_usage > usage_.Level(sched_.Now())) return;
          StartInternalResetEpisode(static_cast<int>(i));
        });
  }

  // The pathological small-ISP incident: private upstream flaps.
  if (config_.patho_enabled && patho_provider_ >= 0 &&
      !patho_table_.empty()) {
    SchedulePoisson(config_.patho_spray_rate, env_usage, [this, env_usage] {
      if (rng_.Uniform() * env_usage > usage_.Level(sched_.Now())) return;
      PathoSpray();
    });
  }

  // The upgrade incident window.
  if (config_.upgrade_enabled &&
      kDay * config_.upgrade_start_day < config_.duration) {
    sched_.At(TimePoint::Origin() + kDay * config_.upgrade_start_day +
                  Duration::Hours(9),
              [this] { StartUpgradeIncident(); });
    sched_.At(TimePoint::Origin() + kDay * (config_.upgrade_end_day + 1),
              [this] { EndUpgradeIncident(); });
  }

  // The telemetry flush tick chain. Each tick reschedules the next from
  // inside its own handler, so the end-of-run finalize (same timestamp as
  // the last flush) runs after it rather than racing it on scheduler seq.
  if (config_.series_flush_interval.nanos() > 0) {
    sched_.At(TimePoint::Origin() + config_.series_flush_interval,
              [this] { SeriesTick(); });
  }

  ScheduleMidnight(0);
  // Day 0's maintenance/Saturday decisions.
  MaintenanceWindow(0);
  SaturdaySpike(0);
}

void ExchangeScenario::SeriesTick() {
  const TimePoint now = sched_.Now();
  // Observation boundary: everything ingested up to this tick must be
  // classified before the windows are sampled, or batching would move
  // events across window edges.
  for (auto& monitor : monitors_) monitor->Drain();
  // Feed the detectors the windows being closed by this flush (window()
  // still holds the last interval's counts until Flush resets it).
  health_->ObserveTick(
      now, static_cast<std::uint64_t>(series_updates_->window()),
      static_cast<std::uint64_t>(series_wwdup_->window()),
      static_cast<std::uint64_t>(series_aadup_->window()));
  series_.Flush(now);
  const TimePoint next = now + config_.series_flush_interval;
  if (next <= TimePoint::Origin() + config_.duration) {
    sched_.At(next, [this] { SeriesTick(); });
  } else {
    health_->Finalize(now);
  }
}

void ExchangeScenario::StartUpgradeIncident() {
  const int upg = config_.upgrade_provider;
  // One cause covers the whole multi-day incident: the emergency-transit
  // announcements, every session bounce, and the end-of-window withdrawals
  // all trace back to this allocation.
  upgrade_cause_ = prov_.Allocate(obs::CauseKind::kUpgrade, sched_.Now());
  obs::CauseScope scope(&prov_, upgrade_cause_);
  // Customers of the upgrading ISP buy emergency transit: each visible
  // customer is temporarily announced by a second provider as well. The
  // route server sees the prefix with two paths — Figure 10's spike.
  for (std::size_t ci = 0; ci < universe_.customers.size(); ++ci) {
    auto& c = universe_.customers[ci];
    if (c.primary_provider != upg || c.aggregated) continue;
    auto& st = customer_state_[ci];
    if (st.backup_active) continue;  // already multihomed
    if (c.backup_provider < 0) {
      c.backup_provider =
          (upg + 1 + static_cast<int>(rng_.Below(
                         universe_.providers.size() - 1))) %
          static_cast<int>(universe_.providers.size());
      if (c.backup_provider == upg) {
        c.backup_provider = (upg + 1) %
                            static_cast<int>(universe_.providers.size());
      }
    }
    ActivateBackup(static_cast<int>(ci));
    upgrade_temporaries_.push_back(static_cast<int>(ci));
  }
  // The upgrading ISP also bounces its exchange session several times over
  // the incident (Figure 3's dark vertical band gets its AADup bulk here).
  for (int k = 0; k < (config_.upgrade_end_day - config_.upgrade_start_day);
       ++k) {
    sched_.After(kDay * (k + 0.3), [this, upg] {
      obs::CauseScope bounce(&prov_, upgrade_cause_);
      for (auto& link : links_[static_cast<std::size_t>(upg)]) link->Fail();
      sched_.After(Duration::Minutes(2 + 6 * rng_.Uniform()), [this, upg] {
        obs::CauseScope inner(&prov_, upgrade_cause_);
        for (auto& link : links_[static_cast<std::size_t>(upg)]) {
          link->Restore();
        }
      });
    });
  }
}

void ExchangeScenario::EndUpgradeIncident() {
  obs::CauseScope scope(&prov_, upgrade_cause_);
  for (int ci : upgrade_temporaries_) {
    const auto& c = universe_.customers[static_cast<std::size_t>(ci)];
    auto& st = customer_state_[static_cast<std::size_t>(ci)];
    // Emergency transit is cancelled unless the customer's planned
    // multihoming date has since arrived.
    if (c.multihomed_since <= sched_.Now()) continue;
    st.backup_active = false;
    WithdrawAt(c.backup_provider, c.prefix);
  }
  upgrade_temporaries_.clear();
}

void ExchangeScenario::ScheduleMidnight(int day) {
  const TimePoint end_of_day =
      TimePoint::Origin() + kDay * (day + 1) - Duration::Millis(1);
  if (end_of_day > TimePoint::Origin() + config_.duration) return;
  sched_.At(end_of_day, [this, day] {
    // Observation boundary: daily hooks (Table-1 rollups, arena reset) must
    // see the day's events fully classified.
    for (auto& monitor : monitors_) monitor->Drain();
    for (auto& hook : daily_hooks_) hook(day);
    MaintenanceWindow(day + 1);
    SaturdaySpike(day + 1);
    ScheduleMidnight(day + 1);
  });
}

void ExchangeScenario::ScheduleDaily(std::function<void(int day)> fn) {
  daily_hooks_.push_back(std::move(fn));
}

void ExchangeScenario::RunUntil(TimePoint t) {
  sched_.RunUntil(t);
  // Observation boundary: callers read monitors/digests right after a run.
  for (auto& monitor : monitors_) monitor->Drain();
  if constexpr (obs::kProvenanceEnabled) {
    // Registered only when compiled in, so an IRI_PROVENANCE=OFF build's
    // snapshot is byte-identical to a never-enabled one.
    obs::ShardProvenance combined;
    for (auto& monitor : monitors_) {
      monitor->classifier().MergeProvenanceInto(combined);
    }
    metrics_.GetGauge("provenance.causes")
        .Set(static_cast<std::int64_t>(prov_.Count()));
    metrics_.GetGauge("provenance.events_attributed")
        .Set(static_cast<std::int64_t>(combined.attributed()));
    metrics_.GetGauge("provenance.events_unattributed")
        .Set(static_cast<std::int64_t>(combined.unattributed()));
    metrics_
        .GetGauge("provenance.depth_peak", obs::Stability::kDeterministic,
                  obs::GaugeMerge::kMax)
        .Set(static_cast<std::int64_t>(combined.depth_peak()));
  }
}

double ExchangeScenario::TableShare(int provider) const {
  const auto& rib = route_servers_.front()->rib();
  const std::size_t total = rib.NumRoutes();
  if (total == 0) return 0;
  return static_cast<double>(
             rib.PeerRouteCount(static_cast<bgp::PeerId>(provider))) /
         static_cast<double>(total);
}

// ------------------------------------------------------------- handlers

void ExchangeScenario::CustomerFlap(int customer, bool failover) {
  auto& st = customer_state_[static_cast<std::size_t>(customer)];
  if (!st.line_up || st.in_episode) return;
  const auto& c = universe_.customers[static_cast<std::size_t>(customer)];
  st.line_up = false;
  // One cause per flap: the withdrawal and the (possibly path-toggled)
  // repair announcement share it, so WADup/WADiff pairs attribute together.
  const obs::CauseTag cause = prov_.Allocate(
      failover ? obs::CauseKind::kFailover : obs::CauseKind::kCustomerFlap,
      sched_.Now());
  {
    obs::CauseScope scope(&prov_, cause);
    WithdrawAt(c.primary_provider, c.prefix);
  }
  const Duration mean =
      failover ? config_.mean_failover_repair : config_.mean_repair_time;
  Duration repair = Duration::Seconds(
      std::max(5.0, rng_.Exponential(mean.ToSeconds())));
  sched_.After(repair, [this, customer, cause] {
    auto& state = customer_state_[static_cast<std::size_t>(customer)];
    if (state.in_episode || state.line_up) return;
    state.line_up = true;
    const auto& cust = universe_.customers[static_cast<std::size_t>(customer)];
    // Repairs frequently converge onto a different internal path first
    // (WADiff rather than WADup at the collector).
    if (cust.has_alternate_path &&
        rng_.Uniform() < config_.csu_path_toggle_prob) {
      state.on_alternate = !state.on_alternate;
    }
    obs::CauseScope scope(&prov_, cause);
    OriginateAt(cust.primary_provider,
                CustomerRoute(customer, /*via_primary=*/true,
                              state.on_alternate));
  });
}

void ExchangeScenario::PathChangeBurst(int customer, int flips_left,
                                       obs::CauseTag cause) {
  auto& st = customer_state_[static_cast<std::size_t>(customer)];
  if (!st.line_up || st.in_episode) return;
  const auto& c = universe_.customers[static_cast<std::size_t>(customer)];
  // Allocate lazily so a burst suppressed by the guards above never mints a
  // cause; every re-flip of the settle transient reuses the first one.
  if (cause.IsNull()) {
    cause = prov_.Allocate(obs::CauseKind::kPathChange, sched_.Now());
  }
  st.on_alternate = !st.on_alternate;
  {
    obs::CauseScope scope(&prov_, cause);
    OriginateAt(c.primary_provider,
                CustomerRoute(customer, /*via_primary=*/true,
                              st.on_alternate));
  }
  if (flips_left > 1) {
    // The settle transient re-flips on the next flush tick or two.
    const double multiple = rng_.Bernoulli(0.7) ? 1.0 : 2.0;
    sched_.After(config_.flush_interval * multiple,
                 [this, customer, flips_left, cause] {
                   PathChangeBurst(customer, flips_left - 1, cause);
                 });
  }
}

void ExchangeScenario::StartCsuEpisode(int customer) {
  auto& st = customer_state_[static_cast<std::size_t>(customer)];
  if (st.in_episode || !st.line_up) return;
  st.in_episode = true;
  st.episode_cause =
      prov_.Allocate(obs::CauseKind::kCsuEpisode, sched_.Now());
  if (rng_.Bernoulli(0.5)) {
    // Fast beat: both carrier loss and recovery inside one flush window.
    st.episode_down_frac = 0.6 + 0.2 * rng_.Uniform();
    st.episode_up_frac = 0.2 + 0.2 * rng_.Uniform();
  } else {
    // Slow beat: roughly one window down, one window up.
    st.episode_down_frac = 0.9 + 0.2 * rng_.Uniform();
    st.episode_up_frac = 0.9 + 0.2 * rng_.Uniform();
  }
  const auto& cust = universe_.customers[static_cast<std::size_t>(customer)];
  const double mean_s = config_.mean_episode_length.ToSeconds() *
                        (cust.flappy ? config_.flappy_episode_multiplier : 1.0);
  const double len_s = std::min(config_.max_episode_length.ToSeconds(),
                                std::max(45.0, rng_.Exponential(mean_s)));
  CsuBeat(customer, sched_.Now() + Duration::Seconds(len_s), /*down=*/true);
}

void ExchangeScenario::CsuBeat(int customer, TimePoint episode_end,
                               bool down) {
  auto& st = customer_state_[static_cast<std::size_t>(customer)];
  const auto& c = universe_.customers[static_cast<std::size_t>(customer)];
  // Every beat of the episode — carrier losses, recoveries, and the final
  // restore — shares the cause minted at episode start.
  obs::CauseScope scope(&prov_, st.episode_cause);
  if (sched_.Now() >= episode_end) {
    // Episode over: restore the line.
    if (!st.line_up) {
      OriginateAt(c.primary_provider,
                  CustomerRoute(customer, /*via_primary=*/true,
                                st.on_alternate));
      st.line_up = true;
    }
    st.in_episode = false;
    return;
  }
  if (down) {
    if (st.line_up) {
      WithdrawAt(c.primary_provider, c.prefix);
      st.line_up = false;
    }
    // Carrier loss duration follows the episode's beat profile (slight
    // per-beat wobble models the clock drift).
    const Duration off = config_.flush_interval * st.episode_down_frac *
                         (0.95 + 0.1 * rng_.Uniform());
    sched_.After(off, [this, customer, episode_end] {
      CsuBeat(customer, episode_end, /*down=*/false);
    });
  } else {
    if (!st.line_up) {
      // Recovery sometimes converges onto the indirect transit path: the
      // re-announcement differs from the withdrawn route (WADiff, not
      // WADup, at the collector).
      if (c.has_alternate_path &&
          rng_.Uniform() < config_.csu_path_toggle_prob) {
        st.on_alternate = !st.on_alternate;
      }
      OriginateAt(c.primary_provider,
                  CustomerRoute(customer, /*via_primary=*/true,
                                st.on_alternate));
      st.line_up = true;
    }
    // Carrier holds per the beat profile before the next drop; the full
    // beat period is ~1-2 flush intervals, putting successive visible
    // re-announcements 30-60 s apart (Figure 8's dominant bins).
    const Duration on = config_.flush_interval * st.episode_up_frac *
                        (0.95 + 0.1 * rng_.Uniform());
    sched_.After(on, [this, customer, episode_end] {
      CsuBeat(customer, episode_end, /*down=*/true);
    });
  }
}

void ExchangeScenario::StartOscillationEpisode(int customer) {
  auto& st = customer_state_[static_cast<std::size_t>(customer)];
  if (st.in_episode || !st.line_up) return;
  st.in_episode = true;
  st.episode_cause =
      prov_.Allocate(obs::CauseKind::kOscillation, sched_.Now());
  const auto& cust = universe_.customers[static_cast<std::size_t>(customer)];
  const double mean_s = config_.mean_episode_length.ToSeconds() *
                        (cust.flappy ? config_.flappy_episode_multiplier : 1.0);
  const double len_s = std::min(config_.max_episode_length.ToSeconds(),
                                std::max(60.0, rng_.Exponential(mean_s)));
  OscillationBeat(customer, sched_.Now() + Duration::Seconds(len_s));
}

void ExchangeScenario::OscillationBeat(int customer, TimePoint episode_end) {
  auto& st = customer_state_[static_cast<std::size_t>(customer)];
  const auto& c = universe_.customers[static_cast<std::size_t>(customer)];
  obs::CauseScope scope(&prov_, st.episode_cause);
  if (sched_.Now() >= episode_end || !st.line_up) {
    // Settle back on the direct path.
    if (st.on_alternate && st.line_up) {
      st.on_alternate = false;
      OriginateAt(c.primary_provider, CustomerRoute(customer, true, false));
    }
    st.in_episode = false;
    return;
  }
  st.on_alternate = !st.on_alternate;
  OriginateAt(c.primary_provider,
              CustomerRoute(customer, true, st.on_alternate));
  // IGP timers run on multiples of ~30 s, unjittered: alternate paths come
  // back every one or two flush intervals (30 s and 60 s gaps in Fig. 8).
  const double multiple = rng_.Bernoulli(0.7) ? 1.0 : 2.0;
  sched_.After(config_.flush_interval * multiple,
               [this, customer, episode_end] {
                 OscillationBeat(customer, episode_end);
               });
}

void ExchangeScenario::PolicyFluctuate(int customer) {
  auto& st = customer_state_[static_cast<std::size_t>(customer)];
  if (!st.line_up || st.in_episode) return;
  const auto& c = universe_.customers[static_cast<std::size_t>(customer)];
  ++st.policy_serial;
  obs::CauseScope scope(&prov_, obs::CauseKind::kPolicyFluctuation,
                        sched_.Now());
  OriginateAt(c.primary_provider,
              CustomerRoute(customer, true, st.on_alternate));
}

void ExchangeScenario::StartInternalResetEpisode(int provider) {
  const int beats =
      1 + static_cast<int>(rng_.Exponential(config_.internal_reset_beats_mean));
  InternalResetBeat(
      provider, beats,
      prov_.Allocate(obs::CauseKind::kInternalReset, sched_.Now()));
}

void ExchangeScenario::InternalResetBeat(int provider, int beats_left,
                                         obs::CauseTag cause) {
  if (beats_left <= 0) return;
  obs::CauseScope scope(&prov_, cause);
  for (auto& border : borders_[static_cast<std::size_t>(provider)]) {
    border->InternalReset(config_.internal_reset_dirty_fraction);
  }
  // The reset also tears through routes learned *from* the exchange: the
  // stateless router withdraws them toward everyone, including providers
  // that are their only origin (pure WWDup at the collector). The leak set
  // is fixed per provider; each beat disturbs most of it.
  const auto& leak = foreign_leak_sets_[static_cast<std::size_t>(provider)];
  if (!leak.empty()) {
    SprayBuffer sample{core::ArenaAllocator<Prefix>(&day_arena_)};
    sample.reserve(leak.size());
    const double fraction = 0.6 + 0.4 * rng_.Uniform();
    for (const Prefix& prefix : leak) {
      if (rng_.Uniform() < fraction) sample.push_back(prefix);
    }
    for (auto& border : borders_[static_cast<std::size_t>(provider)]) {
      border->SprayWithdrawals(sample);
    }
  }
  sched_.After(config_.flush_interval, [this, provider, beats_left, cause] {
    InternalResetBeat(provider, beats_left - 1, cause);
  });
}

void ExchangeScenario::MaintenanceWindow(int day) {
  // Providers occasionally bounce their exchange sessions inside the
  // morning maintenance window (Figure 3's 10:00 ridge).
  const TimePoint base = TimePoint::Origin() + kDay * day +
                         Duration::Hours(config_.maintenance_hour);
  if (base > TimePoint::Origin() + config_.duration) return;
  for (std::size_t i = 0; i < borders_.size(); ++i) {
    for (std::size_t e = 0; e < links_[i].size(); ++e) {
      if (rng_.Uniform() >= config_.maintenance_reset_prob) continue;
      const Duration offset =
          Duration::Hours(config_.maintenance_window_h) * rng_.Uniform();
      sched_.At(base + offset, [this, i, e] {
        // Minted at fire time (not scheduling time) so the injection
        // timestamp matches the fault, and captured so the restore half of
        // the bounce shares it.
        const obs::CauseTag cause =
            prov_.Allocate(obs::CauseKind::kMaintenance, sched_.Now());
        {
          obs::CauseScope scope(&prov_, cause);
          links_[i][e]->Fail();
        }
        const Duration outage = Duration::Seconds(60 + 120 * rng_.Uniform());
        sched_.After(outage, [this, i, e, cause] {
          obs::CauseScope scope(&prov_, cause);
          links_[i][e]->Restore();
        });
      });
    }
  }
}

void ExchangeScenario::SaturdaySpike(int day) {
  if (UsageModel::DayOfWeek(TimePoint::Origin() + kDay * day +
                            Duration::Hours(1)) != 0) {
    return;  // day 0 of the week is Saturday by construction
  }
  if (rng_.Uniform() >= config_.saturday_spike_prob) return;
  const TimePoint start = TimePoint::Origin() + kDay * day +
                          Duration::Hours(8 + 12 * rng_.Uniform());
  sched_.At(start, [this] {
    saturday_boost_ = config_.saturday_spike_boost;
    saturday_boost_end_ = sched_.Now() + config_.saturday_spike_length;
  });
}

void ExchangeScenario::PathoSpray() {
  // A fraction of the learned table is lost and re-learned; withdrawals for
  // all of it spray out through the stateless border router(s).
  const double fraction = 0.3 + 0.7 * rng_.Uniform();
  SprayBuffer prefixes{core::ArenaAllocator<Prefix>(&day_arena_)};
  prefixes.reserve(static_cast<std::size_t>(
      static_cast<double>(patho_table_.size()) * fraction) + 1);
  for (int ci : patho_table_) {
    if (rng_.Uniform() < fraction) {
      prefixes.push_back(
          universe_.customers[static_cast<std::size_t>(ci)].prefix);
    }
  }
  obs::CauseScope scope(&prov_, obs::CauseKind::kPathoSpray, sched_.Now());
  for (auto& border : borders_[static_cast<std::size_t>(patho_provider_)]) {
    border->SprayWithdrawals(prefixes);
  }
}

std::uint64_t ExchangeSubSeed(std::uint64_t scenario_seed, int exchange) {
  SplitMix64 stream(scenario_seed);
  std::uint64_t sub_seed = stream.Next();
  for (int i = 0; i < exchange; ++i) sub_seed = stream.Next();
  return sub_seed;
}

ScenarioConfig PartitionConfig(const ScenarioConfig& config, int exchange) {
  ScenarioConfig part = config;
  part.num_exchanges = 1;
  part.seed = ExchangeSubSeed(config.seed, exchange);
  return part;
}

}  // namespace iri::workload
