#include "workload/multi_exchange_runner.h"

#include <algorithm>
#include <cstdio>

#include "core/classifier.h"
#include "core/invariants.h"
#include "core/monitor.h"
#include "mrt/log.h"
#include "netbase/crc32.h"
#include "sim/parallel.h"
#include "topology/universe.h"

namespace iri::workload {

std::uint32_t MultiExchangeResult::MrtCrc32() const {
  return Crc32(merged_mrt);
}

std::string MultiExchangeResult::Digest(
    const std::string& scenario_name) const {
  std::string out;
  char line[96];
  auto add = [&out, &line](const char* key, unsigned long long value) {
    std::snprintf(line, sizeof(line), "%s=%llu\n", key, value);
    out += line;
  };
  out += "# iri golden-run digest v1\n";
  out += "scenario=" + scenario_name + "\n";
  add("exchanges", exchanges.size());
  std::snprintf(line, sizeof(line), "mrt_crc32=0x%08X\n", MrtCrc32());
  out += line;
  add("mrt_bytes", merged_mrt.size());
  add("messages", total_messages);
  add("events", total_events);
  for (std::size_t c = 0; c < core::kNumCategories; ++c) {
    std::snprintf(line, sizeof(line), "bin.%s=%llu\n",
                  core::ToString(static_cast<core::Category>(c)),
                  static_cast<unsigned long long>(
                      combined_classifier_totals[c]));
    out += line;
  }
  add("announcements", combined.announcements);
  add("withdrawals", combined.withdrawals);
  // Deterministic metrics snapshot (wall-clock instruments are excluded by
  // SnapshotText's default): any drift in the merged registry fails the
  // golden comparison just like a classifier bin would.
  out += "metrics.begin\n";
  out += metrics.SnapshotText();
  out += "metrics.end\n";
  // Series telemetry summary: the full JSONL is too large to commit, so the
  // digest pins its record count, byte count and CRC — one flipped byte in
  // any flush record (ordering, formatting, values) fails the comparison.
  // A run with telemetry disabled (series_flush_interval zero, or capture
  // off) omits the section entirely, so its digest is byte-identical to a
  // build that never had the subsystem.
  if (total_series_records != 0 || !merged_series.empty()) {
    out += "timeseries.begin\n";
    add("records", total_series_records);
    add("bytes", merged_series.size());
    std::snprintf(line, sizeof(line), "crc32=0x%08X\n",
                  Crc32({reinterpret_cast<const std::uint8_t*>(
                             merged_series.data()),
                         merged_series.size()}));
    out += line;
    out += "timeseries.end\n";
  }
#if defined(IRI_PROVENANCE_ENABLED) && IRI_PROVENANCE_ENABLED
  // Causal attribution rollup, merged in exchange order (the fixed-order
  // contract: ShardProvenance::Merge is an iri_det aggregation sink). The
  // matrix lines iterate (category, kind) in enum order and skip zero cells,
  // so the text is a pure function of the counts.
  {
    obs::ShardProvenance rollup;
    std::size_t causes = 0;
    for (const ExchangeRun& run : exchanges) {
      rollup.Merge(run.attribution.observed);
      causes += run.attribution.causes.size();
    }
    out += "provenance.begin\n";
    add("causes", causes);
    add("attributed", rollup.attributed());
    add("unattributed", rollup.unattributed());
    add("depth_peak", rollup.depth_peak());
    for (std::size_t c = 0; c < core::kNumCategories; ++c) {
      for (std::size_t kind = 0; kind < obs::kNumCauseKinds; ++kind) {
        std::uint64_t cell = 0;
        for (std::size_t d = 0; d < obs::ShardProvenance::kDepthBuckets;
             ++d) {
          cell += rollup.MatrixAt(c, kind, d);
        }
        if (cell == 0) continue;
        std::snprintf(line, sizeof(line), "attr.%s.%s=%llu\n",
                      core::ToString(static_cast<core::Category>(c)),
                      obs::ToString(static_cast<obs::CauseKind>(kind)),
                      static_cast<unsigned long long>(cell));
        out += line;
      }
    }
    out += "provenance.end\n";
  }
#endif
  return out;
}

MultiExchangeResult MultiExchangeRunner::Run() {
  const int k = std::max(1, config_.scenario.num_exchanges);

  // One universe for every partition: the five collectors watched the same
  // Internet. Generated once, copied into each partition.
  const topology::Universe universe = topology::GenerateUniverse(
      config_.scenario.topology, config_.scenario.duration);

  std::vector<ExchangeRun> runs(static_cast<std::size_t>(k));
  sim::ParallelFor(k, config_.threads, [&](int e) {
    const ScenarioConfig part = PartitionConfig(config_.scenario, e);
    ExchangeScenario scenario(part, universe);
    ExchangeRun& run = runs[static_cast<std::size_t>(e)];
    run.exchange = e;
    run.sub_seed = part.seed;

    mrt::Writer writer;  // in-memory
    if (config_.capture_mrt) scenario.monitor().SetMrtWriter(&writer);
    scenario.monitor().AddSink(
        [&run](const core::ClassifiedEvent& ev) { run.counts.Add(ev); });
    if (setup_) setup_(e, scenario);

    scenario.Run();

    run.classifier_totals = scenario.monitor().classifier().totals();
    run.messages = scenario.monitor().messages_seen();
    run.events = scenario.monitor().events_seen();
    run.tasks_executed = scenario.scheduler().executed();
    run.mrt = writer.buffer();
    // Copy the partition's registry out before the scenario (and the cached
    // instrument pointers inside it) is destroyed. Runs on the worker that
    // owns this exchange, touching only this partition's slot.
    run.metrics.Merge(scenario.metrics());
    if (config_.capture_trace) run.trace = scenario.trace().buffer();
    if (config_.capture_series) {
      run.series = scenario.series().buffer();
      run.series_records = scenario.series().records();
    }
    if constexpr (obs::kProvenanceEnabled) {
      scenario.monitor().classifier().MergeProvenanceInto(
          run.attribution.observed);
      run.attribution.causes = scenario.provenance().infos();
    }
  });

  // The merge happens on the calling thread, in exchange order, after every
  // worker has joined — output bytes cannot depend on interleaving.
  MultiExchangeResult result;
  result.exchanges = std::move(runs);
  std::size_t mrt_bytes = 0;
  for (const ExchangeRun& run : result.exchanges) {
    mrt_bytes += run.mrt.size();
  }
  result.merged_mrt.reserve(mrt_bytes);
  for (const ExchangeRun& run : result.exchanges) {
    IRI_ASSERT(run.events == run.counts.Total(),
               "per-exchange sink and monitor must agree on event count");
    result.combined.Merge(run.counts);
    for (std::size_t c = 0; c < core::kNumCategories; ++c) {
      result.combined_classifier_totals[c] += run.classifier_totals[c];
    }
    result.merged_mrt.insert(result.merged_mrt.end(), run.mrt.begin(),
                             run.mrt.end());
    result.metrics.Merge(run.metrics);
    result.merged_trace += run.trace;
    result.merged_series += run.series;
    result.total_series_records += run.series_records;
    result.total_messages += run.messages;
    result.total_events += run.events;
  }
  return result;
}

}  // namespace iri::workload
