// A link-state interior gateway protocol (OSPF-like) running inside one AS,
// plus the IGP→BGP redistribution adapter — the substrate behind the
// paper's most-suspected mechanism:
//
//   "Another plausible explanation for the source of the periodic routing
//   instability may be the improper configuration of the interaction
//   between interior gateway protocols (IGP) and BGP. ... Since the
//   conversion between protocols is lossy, path information is not
//   preserved across protocols and routers will not be able to detect an
//   inter-protocol routing update oscillation. This type of interaction is
//   highly suspect as most IGP protocols utilize internal timers based on
//   some multiple of 30 seconds."
//
// The model: an intra-AS topology of nodes and weighted links; prefixes
// attach to nodes; the border node runs shortest-path-first on a fixed
// 30-second unjittered timer (the real source of the quantization — link
// events only become routing changes at SPF ticks) and redistributes
// reachability into BGP. The conversion IS lossy: only (reachable, metric)
// survives; the metric maps to MED, so an internal cost oscillation
// surfaces at the exchange as tuple-identical policy fluctuation (AADup),
// and internal partition flaps surface as W/A trains quantized to the SPF
// period.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "netbase/ipv4.h"
#include "netbase/time.h"
#include "sim/scheduler.h"

namespace iri::igp {

using NodeId = std::uint32_t;

struct IgpConfig {
  // SPF runs at fixed wall-phase multiples of this interval (the vendor's
  // unjittered 30 s timer family).
  Duration spf_interval = Duration::Seconds(30);
  // Infinity for unreachable destinations.
  static constexpr std::uint32_t kUnreachable =
      std::numeric_limits<std::uint32_t>::max();
};

// One route the IGP exports toward BGP after an SPF run.
struct IgpRoute {
  Prefix prefix;
  bool reachable = false;
  std::uint32_t metric = IgpConfig::kUnreachable;  // SPF cost from border

  friend bool operator==(const IgpRoute&, const IgpRoute&) = default;
};

class IgpProcess {
 public:
  // Redistribution callback: invoked at SPF completion for every prefix
  // whose (reachable, metric) changed since the previous SPF.
  using RedistributionFn = std::function<void(const IgpRoute&)>;

  IgpProcess(sim::Scheduler& sched, IgpConfig config)
      : sched_(sched), config_(config) {}

  // --- topology construction (before Start) ---
  NodeId AddNode(std::string name);
  // Undirected weighted adjacency. Returns a link id.
  std::size_t AddLink(NodeId a, NodeId b, std::uint32_t cost);
  void AttachPrefix(NodeId node, const Prefix& prefix);
  // The node whose SPF view is redistributed (the AS border router).
  void SetBorderNode(NodeId node) { border_ = node; }

  void SetRedistribution(RedistributionFn fn) { redistribute_ = std::move(fn); }

  // --- runtime ---
  // Schedules the periodic SPF. The first run announces every reachable
  // prefix.
  void Start();

  // Marks a link up/down (or changes its cost). Takes effect at the NEXT
  // SPF tick — the quantization the paper's 30 s periodicity rides on.
  void SetLinkUp(std::size_t link, bool up);
  void SetLinkCost(std::size_t link, std::uint32_t cost);

  // Runs SPF immediately (also used by the periodic timer). Returns the
  // number of redistributed (changed) routes.
  std::size_t RunSpf();

  // Current view (post last SPF) for a prefix; kUnreachable if down.
  std::uint32_t MetricOf(const Prefix& prefix) const;

  std::uint64_t spf_runs() const { return spf_runs_; }
  std::size_t num_nodes() const { return nodes_.size(); }

 private:
  struct Link {
    NodeId a, b;
    std::uint32_t cost;
    bool up = true;
  };
  struct Attachment {
    NodeId node;
    Prefix prefix;
  };

  void ScheduleTick();
  // Dijkstra from the border node over up links.
  std::vector<std::uint32_t> ShortestPaths() const;

  sim::Scheduler& sched_;
  IgpConfig config_;
  std::vector<std::string> nodes_;
  std::vector<Link> links_;
  std::vector<Attachment> attachments_;
  NodeId border_ = 0;
  RedistributionFn redistribute_;
  bool started_ = false;

  // Last redistributed state per attachment index.
  std::vector<IgpRoute> exported_;
  std::uint64_t spf_runs_ = 0;
};

}  // namespace iri::igp
