#include "igp/redistribution.h"

#include <algorithm>

namespace iri::igp {

BgpRedistributor::BgpRedistributor(IgpProcess& igp, sim::Router& router,
                                   Options options)
    : router_(router), options_(std::move(options)) {
  std::sort(options_.communities.begin(), options_.communities.end());
  igp.SetRedistribution([this](const IgpRoute& route) { OnRoute(route); });
}

void BgpRedistributor::OnRoute(const IgpRoute& route) {
  if (!route.reachable) {
    ++withdrawals_;
    router_.WithdrawLocal(route.prefix);
    return;
  }
  bgp::Route bgp_route;
  bgp_route.prefix = route.prefix;
  bgp_route.attributes.origin = bgp::Origin::kIncomplete;  // redistributed
  bgp_route.attributes.as_path = bgp::AsPath::Sequence(options_.downstream_path);
  bgp_route.attributes.communities = options_.communities;
  if (options_.metric_to_med) bgp_route.attributes.med = route.metric;
  ++announcements_;
  router_.Originate(bgp_route);
}

}  // namespace iri::igp
