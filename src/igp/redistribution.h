// IGP → BGP redistribution: the lossy protocol conversion.
//
// The adapter turns IgpRoute changes into Originate/WithdrawLocal calls on
// a border Router. Only (prefix, reachable, metric) crosses the boundary;
// path information does not exist in the IGP and so "routers will not be
// able to detect an inter-protocol routing update oscillation". The IGP
// metric is copied into MED (the classic redistribute-with-metric
// configuration), so internal cost oscillations reach the exchange as
// tuple-identical attribute churn — policy fluctuation / AADup.
#pragma once

#include <vector>

#include "igp/igp.h"
#include "sim/router.h"

namespace iri::igp {

class BgpRedistributor {
 public:
  struct Options {
    // Communities stamped on redistributed routes (the scenario's own-route
    // and aggregated tags, typically).
    std::vector<bgp::Community> communities;
    // Copy the IGP metric into MED (lossy but standard).
    bool metric_to_med = true;
    // Downstream AS path carried by the redistributed route (e.g. a
    // customer AS), empty for provider-internal prefixes.
    std::vector<bgp::Asn> downstream_path;
  };

  // Installs itself as `igp`'s redistribution callback, targeting `router`.
  // Both must outlive the redistributor (or the IGP must stop first).
  BgpRedistributor(IgpProcess& igp, sim::Router& router, Options options);

  std::uint64_t announcements() const { return announcements_; }
  std::uint64_t withdrawals() const { return withdrawals_; }

 private:
  void OnRoute(const IgpRoute& route);

  sim::Router& router_;
  Options options_;
  std::uint64_t announcements_ = 0;
  std::uint64_t withdrawals_ = 0;
};

}  // namespace iri::igp
