#include "igp/igp.h"

#include <queue>

namespace iri::igp {

NodeId IgpProcess::AddNode(std::string name) {
  nodes_.push_back(std::move(name));
  return static_cast<NodeId>(nodes_.size() - 1);
}

std::size_t IgpProcess::AddLink(NodeId a, NodeId b, std::uint32_t cost) {
  links_.push_back({a, b, cost, true});
  return links_.size() - 1;
}

void IgpProcess::AttachPrefix(NodeId node, const Prefix& prefix) {
  attachments_.push_back({node, prefix});
  exported_.push_back({prefix, false, IgpConfig::kUnreachable});
}

void IgpProcess::SetLinkUp(std::size_t link, bool up) {
  links_[link].up = up;
}

void IgpProcess::SetLinkCost(std::size_t link, std::uint32_t cost) {
  links_[link].cost = cost;
}

void IgpProcess::Start() {
  started_ = true;
  RunSpf();  // initial announcement
  ScheduleTick();
}

void IgpProcess::ScheduleTick() {
  // Fixed phase: the next multiple of the SPF interval (unjittered).
  const std::int64_t interval = config_.spf_interval.nanos();
  const std::int64_t k = sched_.Now().nanos() / interval + 1;
  sched_.At(TimePoint::FromNanos(k * interval), [this] {
    if (!started_) return;
    RunSpf();
    ScheduleTick();
  });
}

std::vector<std::uint32_t> IgpProcess::ShortestPaths() const {
  // Dijkstra over the up links from the border node.
  std::vector<std::uint32_t> dist(nodes_.size(), IgpConfig::kUnreachable);
  // Adjacency on the fly (topologies are small: one AS's backbone).
  using Entry = std::pair<std::uint32_t, NodeId>;  // (distance, node)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  dist[border_] = 0;
  heap.push({0, border_});
  while (!heap.empty()) {
    const auto [d, node] = heap.top();
    heap.pop();
    if (d > dist[node]) continue;
    for (const Link& link : links_) {
      if (!link.up) continue;
      NodeId next;
      if (link.a == node) {
        next = link.b;
      } else if (link.b == node) {
        next = link.a;
      } else {
        continue;
      }
      const std::uint32_t nd = d + link.cost;
      if (nd < dist[next]) {
        dist[next] = nd;
        heap.push({nd, next});
      }
    }
  }
  return dist;
}

std::size_t IgpProcess::RunSpf() {
  ++spf_runs_;
  const std::vector<std::uint32_t> dist = ShortestPaths();
  std::size_t changed = 0;
  for (std::size_t i = 0; i < attachments_.size(); ++i) {
    const auto& att = attachments_[i];
    IgpRoute next;
    next.prefix = att.prefix;
    next.metric = dist[att.node];
    next.reachable = next.metric != IgpConfig::kUnreachable;
    if (next == exported_[i]) continue;
    exported_[i] = next;
    ++changed;
    if (redistribute_) redistribute_(next);
  }
  return changed;
}

std::uint32_t IgpProcess::MetricOf(const Prefix& prefix) const {
  for (const auto& route : exported_) {
    if (route.prefix == prefix) return route.metric;
  }
  return IgpConfig::kUnreachable;
}

}  // namespace iri::igp
