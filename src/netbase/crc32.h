// CRC-32 (IEEE 802.3 polynomial, reflected) used to protect MRT log records.
#pragma once

#include <cstdint>
#include <span>

namespace iri {

// One-shot CRC over `data`. Equivalent to Crc32Update(0xFFFFFFFF^..., ...)
// with the standard pre/post conditioning.
std::uint32_t Crc32(std::span<const std::uint8_t> data);

// Streaming form: fold more data into a running crc started at 0.
std::uint32_t Crc32Update(std::uint32_t crc, std::span<const std::uint8_t> data);

}  // namespace iri
