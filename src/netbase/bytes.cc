#include "netbase/bytes.h"

// Header-only in practice; this TU exists so the library has a home for the
// classes and so future out-of-line helpers do not force a CMake change.
