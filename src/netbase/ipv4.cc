#include "netbase/ipv4.h"

#include <charconv>

namespace iri {
namespace {

// Parses one decimal octet from the front of `text`, advancing it.
// Returns nullopt on empty input, non-digits, leading '+'/'-', or value > 255.
std::optional<std::uint8_t> ParseOctet(std::string_view& text) {
  unsigned value = 0;
  const char* begin = text.data();
  const char* end = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr == begin || value > 255) return std::nullopt;
  text.remove_prefix(static_cast<std::size_t>(ptr - begin));
  return static_cast<std::uint8_t>(value);
}

}  // namespace

std::optional<IPv4Address> IPv4Address::Parse(std::string_view text) {
  std::uint32_t bits = 0;
  for (int i = 0; i < 4; ++i) {
    if (i > 0) {
      if (text.empty() || text.front() != '.') return std::nullopt;
      text.remove_prefix(1);
    }
    auto octet = ParseOctet(text);
    if (!octet) return std::nullopt;
    bits = (bits << 8) | *octet;
  }
  if (!text.empty()) return std::nullopt;
  return IPv4Address(bits);
}

std::string IPv4Address::ToString() const {
  std::string out;
  out.reserve(15);
  for (int shift = 24; shift >= 0; shift -= 8) {
    if (shift != 24) out.push_back('.');
    out += std::to_string((bits_ >> shift) & 0xff);
  }
  return out;
}

std::optional<Prefix> Prefix::Parse(std::string_view text) {
  const auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  auto addr = IPv4Address::Parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  std::string_view len_text = text.substr(slash + 1);
  auto len = ParseOctet(len_text);
  if (!len || !len_text.empty() || *len > 32) return std::nullopt;
  return Prefix(*addr, *len);
}

std::string Prefix::ToString() const {
  return address().ToString() + "/" + std::to_string(length_);
}

}  // namespace iri
