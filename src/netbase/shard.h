// Stable prefix-space sharding.
//
// ShardMap assigns every Prefix to one of N shards by a fixed avalanche
// hash of its canonical (bits, length) form. The assignment depends only on
// the prefix value and the shard count — never on insertion order, thread
// placement, platform, or standard library — so any state keyed by
// (Prefix, ...) can be partitioned into N disjoint sub-tables whose
// per-key evolution is identical to the unsharded table's:
//
//   * every event for a given prefix lands in the same shard, in arrival
//     order, so the per-key state machine sees exactly the stream it would
//     have seen unsharded;
//   * aggregate statistics are sums over disjoint key sets, merged in fixed
//     shard order (0..N-1) — byte-identical at any (threads x shards)
//     combination. tests/golden_run_test.cc pins that matrix.
//
// The hash is the SplitMix64 finalizer already used by std::hash<Prefix>,
// but folded with a distinct salt so shard assignment is decorrelated from
// hash-table bucket placement (a pathological table layout cannot alias
// into a pathological shard imbalance, and vice versa).
#pragma once

#include <cstdint>

#include "netbase/ipv4.h"

namespace iri {

class ShardMap {
 public:
  // num_shards < 1 is treated as 1 (the unsharded identity map).
  explicit constexpr ShardMap(int num_shards)
      : num_shards_(num_shards < 1 ? 1 : num_shards) {}

  constexpr int num_shards() const { return num_shards_; }

  // Stable shard index in [0, num_shards) for `prefix`.
  constexpr int ShardOf(const Prefix& prefix) const {
    if (num_shards_ == 1) return 0;
    return static_cast<int>(Mix(prefix) %
                            static_cast<std::uint64_t>(num_shards_));
  }

  // The raw 64-bit mix, exposed so callers with power-of-two shard counts
  // (or tests probing distribution quality) can mask instead of divide.
  static constexpr std::uint64_t Mix(const Prefix& prefix) {
    std::uint64_t x = (std::uint64_t{prefix.bits()} << 8) | prefix.length();
    x ^= kShardSalt;
    x ^= x >> 30; x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27; x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
  }

 private:
  // Any fixed odd constant works; this one is unrelated to the multipliers
  // above and to std::hash<Prefix> (which applies no pre-salt).
  static constexpr std::uint64_t kShardSalt = 0xa0761d6478bd642fULL;

  int num_shards_ = 1;
};

}  // namespace iri
