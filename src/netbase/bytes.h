// Network-order byte buffer reader/writer.
//
// All BGP wire encoding (RFC 1163 / RFC 4271 framing) and the MRT log format
// go through these two classes so endianness handling lives in one place.
// The reader is non-owning and fails soft: any out-of-bounds read sets a
// sticky error flag and returns zeros, so codecs can decode an entire message
// and check `ok()` once at the end (the pattern BGP codecs in this repo use).
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

namespace iri {

// Appends big-endian (network order) integers and raw bytes to a growable
// buffer.
class ByteWriter {
 public:
  // Pre-size the buffer when the caller can bound the message size —
  // without it a typical BGP UPDATE grows through 3-4 reallocations.
  void Reserve(std::size_t n) { buf_.reserve(n); }

  void U8(std::uint8_t v) { buf_.push_back(v); }
  void U16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
  }
  void U32(std::uint32_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 24));
    buf_.push_back(static_cast<std::uint8_t>(v >> 16));
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
  }
  void U64(std::uint64_t v) {
    U32(static_cast<std::uint32_t>(v >> 32));
    U32(static_cast<std::uint32_t>(v));
  }
  void Bytes(std::span<const std::uint8_t> bytes) {
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  }

  // Overwrites a previously written big-endian u16 at `offset`; used to
  // back-patch length fields after a variable-size body is known.
  void PatchU16(std::size_t offset, std::uint16_t v) {
    buf_[offset] = static_cast<std::uint8_t>(v >> 8);
    buf_[offset + 1] = static_cast<std::uint8_t>(v);
  }

  std::size_t size() const { return buf_.size(); }
  const std::vector<std::uint8_t>& data() const { return buf_; }
  std::vector<std::uint8_t> Take() && { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

// Reads big-endian integers from a non-owned span. Out-of-bounds reads set a
// sticky error and yield zero; callers check ok() after decoding.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t U8() {
    if (!Require(1)) return 0;
    return data_[pos_++];
  }
  std::uint16_t U16() {
    if (!Require(2)) return 0;
    std::uint16_t v = static_cast<std::uint16_t>(
        (std::uint16_t{data_[pos_]} << 8) | data_[pos_ + 1]);
    pos_ += 2;
    return v;
  }
  std::uint32_t U32() {
    if (!Require(4)) return 0;
    std::uint32_t v = (std::uint32_t{data_[pos_]} << 24) |
                      (std::uint32_t{data_[pos_ + 1]} << 16) |
                      (std::uint32_t{data_[pos_ + 2]} << 8) |
                      std::uint32_t{data_[pos_ + 3]};
    pos_ += 4;
    return v;
  }
  std::uint64_t U64() {
    std::uint64_t hi = U32();
    return (hi << 32) | U32();
  }

  // Returns a view of the next `n` bytes, or an empty span on underflow.
  std::span<const std::uint8_t> Bytes(std::size_t n) {
    if (!Require(n)) return {};
    auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  void Skip(std::size_t n) {
    if (Require(n)) pos_ += n;
  }

  std::size_t remaining() const { return data_.size() - pos_; }
  std::size_t position() const { return pos_; }
  bool ok() const { return ok_; }

  // Explicitly poison the reader; codecs use this to reject semantically
  // invalid input (bad marker, bad type) through the same error path.
  void MarkBad() { ok_ = false; }

 private:
  bool Require(std::size_t n) {
    if (!ok_ || data_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace iri
