// Deterministic random number generation.
//
// Every stochastic component in the simulator (link failure processes, CSU
// drift, event jitter, topology generation) draws from its own Xoshiro256**
// stream seeded through SplitMix64. Identical seeds reproduce identical BGP
// logs bit-for-bit, which the integration tests rely on. std::mt19937 is
// deliberately avoided: its seeding and distribution implementations are not
// specified tightly enough to be reproducible across standard libraries.
#pragma once

#include <cmath>
#include <cstdint>
#include <numbers>

namespace iri {

// SplitMix64: used only to expand a single seed into the four Xoshiro words.
class SplitMix64 {
 public:
  constexpr explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// Xoshiro256**: fast, high-quality, tiny state. One instance per component.
class Rng {
 public:
  constexpr explicit Rng(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.Next();
  }

  // Derives an independent stream; used to hand child components their own
  // generators so adding a new consumer never perturbs existing draws.
  constexpr Rng Fork(std::uint64_t salt) {
    return Rng(Next() ^ (salt * 0x9E3779B97F4A7C15ULL));
  }

  constexpr std::uint64_t Next() {
    const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). Uses Lemire's multiply-shift reduction;
  // the slight modulo bias (< 2^-64 * bound) is irrelevant at our scales.
  constexpr std::uint64_t Below(std::uint64_t bound) {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

  // Uniform integer in [lo, hi] inclusive.
  constexpr std::int64_t Range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    Below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  // Uniform double in [0, 1) with 53 bits of precision.
  constexpr double Uniform() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  bool Bernoulli(double p) { return Uniform() < p; }

  // Exponential with the given mean (mean = 1/rate). Used for Poisson
  // event processes (failures, exogenous instability events).
  double Exponential(double mean) {
    double u = Uniform();
    // Guard log(0); Uniform() < 1 always but may be 0.
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * std::log(u);
  }

  // Standard normal via Box-Muller (no state caching: simplicity over the
  // one extra transcendental; this is not on any hot path).
  double Normal(double mean = 0.0, double stddev = 1.0) {
    double u1 = Uniform();
    if (u1 <= 0.0) u1 = 0x1.0p-53;
    const double u2 = Uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    return mean + stddev * r * std::cos(2.0 * std::numbers::pi * u2);
  }

  // Pareto (power-law) sample with minimum xm and shape alpha; models the
  // heavy-tailed distribution of ISP sizes in the topology generator.
  double Pareto(double xm, double alpha) {
    double u = Uniform();
    if (u <= 0.0) u = 0x1.0p-53;
    return xm / std::pow(u, 1.0 / alpha);
  }

 private:
  static constexpr std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4] = {};
};

}  // namespace iri
