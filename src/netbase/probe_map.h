// A flat open-addressing hash map for probed-only workloads.
//
// The hot exact-match indexes in this codebase — the RIB's prefix index,
// the classifier's (Prefix, peer) state table, the outbound packer's
// per-window dedup — share one access pattern: try_emplace / find / clear,
// never iterate, never erase single keys. std::unordered_map serves them
// with a heap node per entry, a prime-modulo bucket step and a pointer
// chase per probe; at full-paper scale those indexes are the top lines of
// the profile.
//
// ProbeMap replaces them with a single flat array of (key, value) slots,
// power-of-two sized, linear probing, capacity-doubling at 7/8 load. No
// iteration API is provided on purpose: a probed-only table cannot leak its
// (hash-order) layout into any output, which is what keeps it inert under
// the determinism lint's unordered-iteration pass (DESIGN.md §11) — the
// same argument the unordered_map predecessors relied on, now enforced by
// the type's shape instead of by comment.
//
// Requirements: Key is copyable and equality-comparable; Value is
// default-constructible. Erase is not supported (the workloads above never
// erase single keys); Clear() keeps capacity.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace iri {

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class ProbeMap {
 public:
  ProbeMap() = default;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void Reserve(std::size_t n) {
    std::size_t cap = kMinCapacity;
    while (cap < n + n / 4) cap <<= 1;
    if (cap > slots_.size()) Rehash(cap);
  }

  // Returns (pointer to value, inserted?). The value is freshly
  // default-constructed on insertion (including reuse of a Clear()ed
  // slot). Pointers are invalidated by the next insertion.
  std::pair<Value*, bool> TryEmplace(const Key& key) {
    if (slots_.empty() || (size_ + 1) * 8 > slots_.size() * 7) {
      Rehash(slots_.size() < kMinCapacity ? kMinCapacity : slots_.size() * 2);
    }
    std::size_t i = Hash{}(key) & mask_;
    for (;; i = (i + 1) & mask_) {
      Slot& s = slots_[i];
      if (s.epoch != epoch_) {
        s.epoch = epoch_;
        s.key = key;
        s.value = Value{};
        ++size_;
        return {&s.value, true};
      }
      if (s.key == key) return {&s.value, false};
    }
  }

  // Pointer to the value for `key`, or nullptr.
  Value* Find(const Key& key) {
    if (size_ == 0) return nullptr;
    std::size_t i = Hash{}(key) & mask_;
    for (;; i = (i + 1) & mask_) {
      Slot& s = slots_[i];
      if (s.epoch != epoch_) return nullptr;
      if (s.key == key) return &s.value;
    }
  }
  const Value* Find(const Key& key) const {
    return const_cast<ProbeMap*>(this)->Find(key);
  }

  bool Contains(const Key& key) const { return Find(key) != nullptr; }

  // Drops every entry, keeping capacity. O(1): live slots are the ones
  // stamped with the current epoch, so bumping the epoch empties the table.
  // The outbound packer clears its dedup index every flush window even when
  // only a handful of ops are pending — an O(capacity) sweep there turns
  // every ratcheted-up table into a per-flush tax that dominates long runs.
  void Clear() {
    if (size_ == 0) return;
    size_ = 0;
    if (++epoch_ == 0) {
      // Epoch wrapped (once per 2^32 clears): stale slots from 4 billion
      // windows ago could alias the fresh epoch, so really sweep.
      for (Slot& s : slots_) s.epoch = 0;
      epoch_ = 1;
    }
  }

 private:
  struct Slot {
    Key key{};
    Value value{};
    std::uint32_t epoch = 0;  // slot live iff epoch == map's current epoch
  };

  static constexpr std::size_t kMinCapacity = 16;

  void Rehash(std::size_t new_cap) {
    std::vector<Slot> old = std::move(slots_);
    slots_.clear();
    slots_.resize(new_cap);
    mask_ = new_cap - 1;
    for (Slot& s : old) {
      if (s.epoch != epoch_) continue;
      std::size_t i = Hash{}(s.key) & mask_;
      while (slots_[i].epoch == epoch_) i = (i + 1) & mask_;
      slots_[i] = std::move(s);
    }
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
  std::uint32_t epoch_ = 1;  // 0 is reserved as "never used"
};

}  // namespace iri
