#include "netbase/time.h"

#include <cstdio>
#include <ctime>

namespace iri {

std::int64_t WallClockNanos() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
}

std::string FormatScenarioTime(TimePoint t) {
  const std::int64_t total_ms = t.nanos() / 1'000'000;
  const std::int64_t ms = total_ms % 1000;
  const std::int64_t total_s = total_ms / 1000;
  const std::int64_t s = total_s % 60;
  const std::int64_t m = (total_s / 60) % 60;
  const std::int64_t h = (total_s / 3600) % 24;
  const std::int64_t day = total_s / 86400;
  char buf[48];
  std::snprintf(buf, sizeof(buf), "d%lld %02lld:%02lld:%02lld.%03lld",
                static_cast<long long>(day), static_cast<long long>(h),
                static_cast<long long>(m), static_cast<long long>(s),
                static_cast<long long>(ms));
  return buf;
}

}  // namespace iri
