// Binary (unibit) radix trie keyed by IPv4 prefix.
//
// This is the routing-table workhorse: Loc-RIBs, Adj-RIBs and the topology
// allocator all store routes in one of these. It supports exact-match
// insert/lookup/erase, longest-prefix match on addresses, covered-subtree
// traversal (needed by CIDR aggregation: "is any component of this supernet
// still reachable?"), and ordered visitation.
//
// A unibit trie (one level per bit, max depth 32) is chosen over a
// path-compressed Patricia tree deliberately: at the paper's table sizes
// (~42k prefixes) the depth bound already gives O(32) operations, and the
// absence of edge-label bookkeeping keeps erase/prune logic simple enough to
// verify exhaustively in tests.
#pragma once

#include <cassert>
#include <cstddef>
#include <memory>
#include <optional>
#include <utility>

#include "netbase/ipv4.h"

namespace iri {

template <typename T>
class RadixTrie {
 public:
  RadixTrie() : root_(std::make_unique<Node>()) {}

  RadixTrie(RadixTrie&&) noexcept = default;
  RadixTrie& operator=(RadixTrie&&) noexcept = default;

  // Inserts or overwrites the value at `prefix`. Returns true if the prefix
  // was newly inserted, false if an existing value was replaced.
  bool Insert(const Prefix& prefix, T value) {
    Node* node = Descend(prefix, /*create=*/true);
    const bool fresh = !node->value.has_value();
    node->value = std::move(value);
    size_ += fresh ? 1 : 0;
    return fresh;
  }

  // Exact-match lookup. Returns nullptr when absent.
  const T* Find(const Prefix& prefix) const {
    const Node* node = root_.get();
    for (std::uint8_t i = 0; i < prefix.length() && node; ++i) {
      node = node->child[prefix.Bit(i)].get();
    }
    return (node && node->value) ? &*node->value : nullptr;
  }
  T* Find(const Prefix& prefix) {
    return const_cast<T*>(std::as_const(*this).Find(prefix));
  }

  // Removes the entry at `prefix` if present; prunes now-empty branches so
  // memory tracks the live table. Returns true if something was removed.
  bool Erase(const Prefix& prefix) {
    return EraseRec(root_.get(), prefix, 0);
  }

  // Longest-prefix match for a full address. Returns the most specific
  // (prefix, value) covering `addr`, or nullopt if nothing matches.
  std::optional<std::pair<Prefix, const T*>> LongestMatch(
      IPv4Address addr) const {
    const Node* node = root_.get();
    const Prefix probe(addr, 32);
    std::optional<std::pair<Prefix, const T*>> best;
    for (std::uint8_t depth = 0;; ++depth) {
      if (node->value) {
        best = {Prefix(addr, depth), &*node->value};
      }
      if (depth == 32) break;
      node = node->child[probe.Bit(depth)].get();
      if (!node) break;
    }
    return best;
  }

  // Visits every stored (prefix, value) pair covered by `root` (including
  // `root` itself), in address order. `fn` is called as fn(Prefix, const T&).
  template <typename Fn>
  void VisitCovered(const Prefix& root, Fn&& fn) const {
    const Node* node = root_.get();
    for (std::uint8_t i = 0; i < root.length() && node; ++i) {
      node = node->child[root.Bit(i)].get();
    }
    if (node) VisitRec(node, root, fn);
  }

  // Visits the whole table in address order.
  template <typename Fn>
  void Visit(Fn&& fn) const {
    VisitRec(root_.get(), Prefix(), fn);
  }

  // True if any stored prefix (other than an exact match at `p` itself) is
  // covered by `p`. Aggregation uses this to decide whether a supernet still
  // has live components.
  bool HasCoveredDescendant(const Prefix& p) const {
    const Node* node = root_.get();
    for (std::uint8_t i = 0; i < p.length() && node; ++i) {
      node = node->child[p.Bit(i)].get();
    }
    if (!node) return false;
    return SubtreeHasValueBelow(node);
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void Clear() {
    root_ = std::make_unique<Node>();
    size_ = 0;
  }

 private:
  struct Node {
    std::optional<T> value;
    std::unique_ptr<Node> child[2];
  };

  Node* Descend(const Prefix& prefix, bool create) {
    assert(create);
    (void)create;
    Node* node = root_.get();
    for (std::uint8_t i = 0; i < prefix.length(); ++i) {
      auto& next = node->child[prefix.Bit(i)];
      if (!next) next = std::make_unique<Node>();
      node = next.get();
    }
    return node;
  }

  // Recursive erase that reports back "this child is now empty, prune me".
  bool EraseRec(Node* node, const Prefix& prefix, std::uint8_t depth) {
    if (depth == prefix.length()) {
      if (!node->value) return false;
      node->value.reset();
      --size_;
      return true;
    }
    const bool bit = prefix.Bit(depth);
    Node* child = node->child[bit].get();
    if (!child) return false;
    const bool erased = EraseRec(child, prefix, depth + 1);
    if (erased && !child->value && !child->child[0] && !child->child[1]) {
      node->child[bit].reset();
    }
    return erased;
  }

  template <typename Fn>
  void VisitRec(const Node* node, const Prefix& here, Fn& fn) const {
    if (node->value) fn(here, *node->value);
    if (here.length() == 32) return;
    if (node->child[0]) VisitRec(node->child[0].get(), here.LowerHalf(), fn);
    if (node->child[1]) VisitRec(node->child[1].get(), here.UpperHalf(), fn);
  }

  static bool SubtreeHasValueBelow(const Node* node) {
    for (int b = 0; b < 2; ++b) {
      const Node* c = node->child[b].get();
      if (c && (c->value || SubtreeHasValueBelow(c))) return true;
    }
    return false;
  }

  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
};

}  // namespace iri
