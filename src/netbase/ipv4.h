// IPv4 address and CIDR prefix value types.
//
// These are the fundamental identifiers threaded through the whole library:
// BGP NLRI entries, routing-table keys, topology allocation, and the
// classifier's (Prefix, NextHop, ASPATH) tuples all use iri::Prefix.
//
// Both types are trivially copyable value types with total ordering so they
// can key std::map/std::set and be hashed into unordered containers.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace iri {

// A single IPv4 address, stored host-order for arithmetic convenience.
class IPv4Address {
 public:
  constexpr IPv4Address() = default;
  constexpr explicit IPv4Address(std::uint32_t host_order_bits)
      : bits_(host_order_bits) {}
  constexpr IPv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                        std::uint8_t d)
      : bits_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
              (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  // Parses dotted-quad notation ("192.42.113.7"). Rejects out-of-range
  // octets, missing octets, and trailing garbage.
  static std::optional<IPv4Address> Parse(std::string_view text);

  constexpr std::uint32_t bits() const { return bits_; }
  std::string ToString() const;

  friend constexpr auto operator<=>(IPv4Address, IPv4Address) = default;

 private:
  std::uint32_t bits_ = 0;
};

// A CIDR prefix: an address and a mask length in [0, 32]. The host bits
// below the mask are always kept zero (canonical form), which makes equality
// meaningful and lets the radix trie treat the bit pattern as the key.
class Prefix {
 public:
  constexpr Prefix() = default;

  // Canonicalizes: masks the address down to `length` bits.
  constexpr Prefix(IPv4Address addr, std::uint8_t length)
      : bits_(length == 0 ? 0 : (addr.bits() & (~std::uint32_t{0} << (32 - length)))),
        length_(length) {}

  // Parses "a.b.c.d/len". Rejects len > 32 and non-canonical host bits are
  // masked away (mirroring router behaviour, which accepts and canonicalizes).
  static std::optional<Prefix> Parse(std::string_view text);

  constexpr IPv4Address address() const { return IPv4Address(bits_); }
  constexpr std::uint32_t bits() const { return bits_; }
  constexpr std::uint8_t length() const { return length_; }

  // True if `addr` falls inside this prefix.
  constexpr bool Contains(IPv4Address addr) const {
    if (length_ == 0) return true;
    const std::uint32_t mask = ~std::uint32_t{0} << (32 - length_);
    return (addr.bits() & mask) == bits_;
  }

  // True if `other` is equal to or more specific than this prefix.
  constexpr bool Covers(const Prefix& other) const {
    return other.length_ >= length_ && Contains(other.address());
  }

  // The two halves of this prefix (one bit longer). Undefined for /32.
  constexpr Prefix LowerHalf() const {
    return Prefix(IPv4Address(bits_), static_cast<std::uint8_t>(length_ + 1));
  }
  constexpr Prefix UpperHalf() const {
    const std::uint32_t half = std::uint32_t{1} << (31 - length_);
    return Prefix(IPv4Address(bits_ | half),
                  static_cast<std::uint8_t>(length_ + 1));
  }

  // The immediate supernet (one bit shorter). Undefined for /0.
  constexpr Prefix Parent() const {
    return Prefix(IPv4Address(bits_), static_cast<std::uint8_t>(length_ - 1));
  }

  // Extracts bit `i` (0 = most significant) of the address.
  constexpr bool Bit(std::uint8_t i) const {
    return (bits_ >> (31 - i)) & 1u;
  }

  std::string ToString() const;

  friend constexpr auto operator<=>(const Prefix&, const Prefix&) = default;

 private:
  std::uint32_t bits_ = 0;
  std::uint8_t length_ = 0;
};

}  // namespace iri

template <>
struct std::hash<iri::IPv4Address> {
  std::size_t operator()(iri::IPv4Address a) const noexcept {
    // Finalizer from SplitMix64: cheap and well-mixed for table keys.
    std::uint64_t x = a.bits();
    x ^= x >> 30; x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27; x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<std::size_t>(x);
  }
};

template <>
struct std::hash<iri::Prefix> {
  std::size_t operator()(const iri::Prefix& p) const noexcept {
    std::uint64_t x = (std::uint64_t{p.bits()} << 8) | p.length();
    x ^= x >> 30; x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27; x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<std::size_t>(x);
  }
};
