#include "netbase/crc32.h"

#include <array>

namespace iri {
namespace {

constexpr std::array<std::uint32_t, 256> MakeTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr auto kTable = MakeTable();

}  // namespace

std::uint32_t Crc32Update(std::uint32_t crc, std::span<const std::uint8_t> data) {
  crc = ~crc;
  for (std::uint8_t b : data) {
    crc = kTable[(crc ^ b) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

std::uint32_t Crc32(std::span<const std::uint8_t> data) {
  return Crc32Update(0, data);
}

}  // namespace iri
