#include "netbase/crc32.h"

#include <array>
#include <cstring>

namespace iri {
namespace {

// Slice-by-8: eight derived tables let the inner loop fold 8 bytes per
// iteration (one 64-bit load, eight independent table lookups) instead of
// running the byte-serial carry chain. Table k holds the CRC of a byte
// followed by k zero bytes, so the eight lookups combine with plain XOR.
// Identical output to the byte-at-a-time form for every input — the MRT
// golden digests and the roundtrip fuzz suite pin this.
constexpr std::array<std::array<std::uint32_t, 256>, 8> MakeTables() {
  std::array<std::array<std::uint32_t, 256>, 8> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    t[0][i] = c;
  }
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = t[0][i];
    for (std::size_t k = 1; k < 8; ++k) {
      c = t[0][c & 0xff] ^ (c >> 8);
      t[k][i] = c;
    }
  }
  return t;
}

constexpr auto kTables = MakeTables();

}  // namespace

std::uint32_t Crc32Update(std::uint32_t crc,
                          std::span<const std::uint8_t> data) {
  crc = ~crc;
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
  while (n >= 8) {
    // memcpy keeps the 8-byte load alignment-safe; the byte-swap on
    // big-endian hosts makes byte j of the stream always land in table 7-j.
    std::uint64_t chunk;
    std::memcpy(&chunk, p, 8);
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
    chunk = __builtin_bswap64(chunk);
#endif
    chunk ^= crc;
    crc = kTables[7][chunk & 0xff] ^ kTables[6][(chunk >> 8) & 0xff] ^
          kTables[5][(chunk >> 16) & 0xff] ^ kTables[4][(chunk >> 24) & 0xff] ^
          kTables[3][(chunk >> 32) & 0xff] ^ kTables[2][(chunk >> 40) & 0xff] ^
          kTables[1][(chunk >> 48) & 0xff] ^ kTables[0][chunk >> 56];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = kTables[0][(crc ^ *p++) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

std::uint32_t Crc32(std::span<const std::uint8_t> data) {
  return Crc32Update(0, data);
}

}  // namespace iri
