// Simulated-time value types shared by the protocol and simulator layers.
//
// All of iri runs on simulated time: an int64 count of nanoseconds since the
// start of a scenario. Strong types (rather than bare int64) keep seconds
// and nanoseconds from being mixed, and the division into Duration/TimePoint
// mirrors std::chrono without dragging in its template machinery at every
// call site.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace iri {

class Duration {
 public:
  constexpr Duration() = default;

  static constexpr Duration Nanos(std::int64_t n) { return Duration(n); }
  static constexpr Duration Micros(std::int64_t n) { return Duration(n * 1'000); }
  static constexpr Duration Millis(std::int64_t n) { return Duration(n * 1'000'000); }
  static constexpr Duration Seconds(double s) {
    return Duration(static_cast<std::int64_t>(s * 1e9));
  }
  static constexpr Duration Minutes(double m) { return Seconds(m * 60); }
  static constexpr Duration Hours(double h) { return Seconds(h * 3600); }
  static constexpr Duration Days(double d) { return Hours(d * 24); }

  constexpr std::int64_t nanos() const { return ns_; }
  constexpr double ToSeconds() const { return static_cast<double>(ns_) / 1e9; }
  constexpr double ToHours() const { return ToSeconds() / 3600.0; }

  friend constexpr Duration operator+(Duration a, Duration b) {
    return Duration(a.ns_ + b.ns_);
  }
  friend constexpr Duration operator-(Duration a, Duration b) {
    return Duration(a.ns_ - b.ns_);
  }
  friend constexpr Duration operator*(Duration a, double k) {
    return Duration(static_cast<std::int64_t>(static_cast<double>(a.ns_) * k));
  }
  friend constexpr Duration operator*(double k, Duration a) { return a * k; }
  friend constexpr double operator/(Duration a, Duration b) {
    return static_cast<double>(a.ns_) / static_cast<double>(b.ns_);
  }
  constexpr Duration& operator+=(Duration b) { ns_ += b.ns_; return *this; }
  friend constexpr auto operator<=>(Duration, Duration) = default;

 private:
  constexpr explicit Duration(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

class TimePoint {
 public:
  constexpr TimePoint() = default;

  static constexpr TimePoint FromNanos(std::int64_t n) { return TimePoint(n); }
  static constexpr TimePoint Origin() { return TimePoint(0); }
  // A sentinel later than any scenario timestamp.
  static constexpr TimePoint Max() { return TimePoint(INT64_MAX); }

  constexpr std::int64_t nanos() const { return ns_; }
  constexpr Duration SinceOrigin() const {
    return Duration::Nanos(ns_);
  }

  friend constexpr TimePoint operator+(TimePoint t, Duration d) {
    return TimePoint(t.ns_ + d.nanos());
  }
  friend constexpr TimePoint operator-(TimePoint t, Duration d) {
    return TimePoint(t.ns_ - d.nanos());
  }
  friend constexpr Duration operator-(TimePoint a, TimePoint b) {
    return Duration::Nanos(a.ns_ - b.ns_);
  }
  constexpr TimePoint& operator+=(Duration d) { ns_ += d.nanos(); return *this; }
  friend constexpr auto operator<=>(TimePoint, TimePoint) = default;
  friend constexpr bool operator==(TimePoint, TimePoint) = default;

 private:
  constexpr explicit TimePoint(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

// Formats as "d3 14:05:09.250" (scenario day, 24h clock) — the layout used
// by the density and week figures.
std::string FormatScenarioTime(TimePoint t);

// Monotonic wall-clock nanoseconds, for the profiling layer's opt-in
// wall-time mode (obs/profile.h) only. This is the single sanctioned
// wall-clock read in the tree — the lint's wall-clock rule exempts exactly
// netbase/time.{h,cc} — and it must never feed simulated time.
std::int64_t WallClockNanos();

}  // namespace iri
