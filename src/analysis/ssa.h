// Singular spectrum analysis (Vautard–Ghil), after the SSA toolkit the paper
// cites [4] — used in Figure 5b to extract the top five oscillatory
// components (weekly and daily cycles) with their frequencies.
//
// Method: embed the series in an M-dimensional lag space, form the M×M
// Toeplitz lag-covariance matrix, eigendecompose it (Jacobi rotations — M is
// small), and reconstruct each component back in the time domain. Each
// eigenvector's dominant frequency is read off its periodogram.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/series.h"

namespace iri::analysis {

// Eigen decomposition of a symmetric matrix by cyclic Jacobi rotations.
// `matrix` is row-major n*n. Results are sorted by descending eigenvalue;
// eigenvectors are the *columns* of the returned basis, stored row-major.
struct EigenResult {
  std::vector<double> values;
  std::vector<double> vectors;  // row-major n*n; column k = eigenvector k
  std::size_t n = 0;

  double Vector(std::size_t row, std::size_t k) const {
    return vectors[row * n + k];
  }
};
// `a` is the row-major symmetric n*n matrix, taken by value and consumed
// (the rotation sweeps diagonalize it in place).
EigenResult JacobiEigenSymmetric(std::vector<double> a, std::size_t n);

struct SsaComponent {
  double eigenvalue = 0;
  double variance_fraction = 0;  // eigenvalue / trace
  double dominant_frequency = 0; // cycles per sample, from the EOF
  Series reconstructed;          // component mapped back to the time domain
};

class Ssa {
 public:
  // Decomposes `x` with embedding window `window` (M). Components are
  // ordered by descending variance.
  Ssa(const Series& x, std::size_t window);

  const std::vector<SsaComponent>& components() const { return components_; }

  // Sum of the first `k` reconstructed components.
  Series Reconstruct(std::size_t k) const;

 private:
  std::size_t window_ = 0;
  std::size_t length_ = 0;
  std::vector<SsaComponent> components_;
};

// Monte Carlo significance threshold for SSA eigenvalues, after the paper's
// methodology: "These frequencies lie in a 99% confidence interval
// generated using white noise on the data." Generates `trials` white-noise
// surrogates with the given variance and length, runs the same lag-
// covariance eigendecomposition, and returns the pooled `percentile`
// eigenvalue. A real component whose eigenvalue exceeds this threshold
// carries more structure than noise can explain.
double WhiteNoiseEigenvalueThreshold(double variance,
                                     std::size_t series_length,
                                     std::size_t window, int trials,
                                     double percentile, std::uint64_t seed);

}  // namespace iri::analysis
