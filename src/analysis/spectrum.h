// Spectral estimation: FFT correlogram and maximum-entropy (Burg) methods.
//
// Figure 5a overlays two independent estimators of the power spectrum of
// the detrended log update-rate series — "These two approaches differ in
// their estimation methods, and provide a mechanism for validation of
// results" — and both must peak at 1/(7 days) and 1/(24 hours).
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

#include "analysis/series.h"

namespace iri::analysis {

// In-place radix-2 complex FFT (inverse when `inverse`). `data.size()` must
// be a power of two.
void Fft(std::vector<std::complex<double>>& data, bool inverse = false);

// Smallest power of two >= n.
std::size_t NextPow2(std::size_t n);

// One (frequency, power) sample of an estimated spectrum. Frequency is in
// cycles per sample; multiply by the sampling rate for physical units.
struct SpectrumPoint {
  double frequency = 0;
  double power = 0;
};

// Correlogram (Blackman–Tukey) estimate: FFT of the lag-windowed
// autocovariance sequence. `max_lag` trades resolution against variance;
// a Bartlett taper suppresses leakage. Returns points for frequencies in
// (0, 0.5] cycles/sample.
std::vector<SpectrumPoint> CorrelogramSpectrum(const Series& x,
                                               std::size_t max_lag);

// Burg maximum-entropy AR(p) fit.
struct BurgModel {
  std::vector<double> coefficients;  // a_1..a_p in x_t = sum a_i x_{t-i} + e
  double noise_variance = 0;

  // Evaluates the AR spectral density at `frequency` cycles/sample.
  double PowerAt(double frequency) const;
};

BurgModel BurgFit(const Series& x, std::size_t order);

// Convenience: evaluates the Burg spectrum at `num_points` frequencies
// spanning (0, 0.5].
std::vector<SpectrumPoint> MemSpectrum(const Series& x, std::size_t order,
                                       std::size_t num_points);

// Local maxima of a spectrum, strongest first, at most `max_peaks`.
std::vector<SpectrumPoint> FindPeaks(const std::vector<SpectrumPoint>& spec,
                                     std::size_t max_peaks);

}  // namespace iri::analysis
