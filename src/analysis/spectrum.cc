#include "analysis/spectrum.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace iri::analysis {

std::size_t NextPow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void Fft(std::vector<std::complex<double>>& data, bool inverse) {
  const std::size_t n = data.size();
  if (n <= 1) return;
  // n must be a power of two.
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  // Danielson–Lanczos butterflies.
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle =
        2.0 * std::numbers::pi / static_cast<double>(len) * (inverse ? 1 : -1);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = data[i + k];
        const std::complex<double> v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    for (auto& c : data) c /= static_cast<double>(n);
  }
}

std::vector<SpectrumPoint> CorrelogramSpectrum(const Series& x,
                                               std::size_t max_lag) {
  if (x.size() < 4) return {};
  max_lag = std::min(max_lag, x.size() - 1);
  Series acov = Autocovariance(x, max_lag);

  // Bartlett (triangular) lag window against leakage.
  for (std::size_t k = 0; k <= max_lag; ++k) {
    acov[k] *= 1.0 - static_cast<double>(k) / static_cast<double>(max_lag + 1);
  }

  // Symmetric extension, zero-padded to a power of two for the FFT.
  const std::size_t n = NextPow2(2 * max_lag + 2);
  std::vector<std::complex<double>> buf(n, 0.0);
  buf[0] = acov[0];
  for (std::size_t k = 1; k <= max_lag; ++k) {
    buf[k] = acov[k];
    buf[n - k] = acov[k];
  }
  Fft(buf);

  std::vector<SpectrumPoint> out;
  out.reserve(n / 2);
  for (std::size_t i = 1; i <= n / 2; ++i) {
    out.push_back({static_cast<double>(i) / static_cast<double>(n),
                   std::max(0.0, buf[i].real())});
  }
  return out;
}

double BurgModel::PowerAt(double frequency) const {
  std::complex<double> denom(1.0, 0.0);
  for (std::size_t k = 0; k < coefficients.size(); ++k) {
    const double angle =
        -2.0 * std::numbers::pi * frequency * static_cast<double>(k + 1);
    denom -= coefficients[k] *
             std::complex<double>(std::cos(angle), std::sin(angle));
  }
  const double mag2 = std::norm(denom);
  return mag2 <= 0 ? 0 : noise_variance / mag2;
}

BurgModel BurgFit(const Series& x, std::size_t order) {
  const std::size_t n = x.size();
  BurgModel model;
  if (n < 2 || order == 0) return model;
  order = std::min(order, n - 1);

  // Burg recursion: forward/backward prediction errors.
  Series f(x), b(x);
  Series a;  // current AR coefficients
  double e = 0;
  for (double v : x) e += v * v;
  e /= static_cast<double>(n);

  for (std::size_t m = 1; m <= order; ++m) {
    // Reflection coefficient k_m maximizing entropy.
    double num = 0, den = 0;
    for (std::size_t t = m; t < n; ++t) {
      num += f[t] * b[t - 1];
      den += f[t] * f[t] + b[t - 1] * b[t - 1];
    }
    const double k = den == 0 ? 0 : 2.0 * num / den;

    // Levinson update of the coefficient vector.
    Series a_new(m);
    for (std::size_t i = 0; i + 1 < m; ++i) {
      a_new[i] = a[i] - k * a[m - 2 - i];
    }
    a_new[m - 1] = k;
    a = std::move(a_new);

    // Update prediction errors (order matters: use old values).
    for (std::size_t t = n - 1; t >= m; --t) {
      const double f_old = f[t];
      const double b_old = b[t - 1];
      f[t] = f_old - k * b_old;
      b[t] = b_old - k * f_old;
    }
    e *= (1.0 - k * k);
    if (e <= 0) break;  // perfect fit: stop before numerical trouble
  }
  model.coefficients = std::move(a);
  model.noise_variance = e;
  return model;
}

std::vector<SpectrumPoint> MemSpectrum(const Series& x, std::size_t order,
                                       std::size_t num_points) {
  const BurgModel model = BurgFit(x, order);
  std::vector<SpectrumPoint> out;
  out.reserve(num_points);
  for (std::size_t i = 1; i <= num_points; ++i) {
    const double f =
        0.5 * static_cast<double>(i) / static_cast<double>(num_points);
    out.push_back({f, model.PowerAt(f)});
  }
  return out;
}

std::vector<SpectrumPoint> FindPeaks(const std::vector<SpectrumPoint>& spec,
                                     std::size_t max_peaks) {
  std::vector<SpectrumPoint> peaks;
  for (std::size_t i = 1; i + 1 < spec.size(); ++i) {
    if (spec[i].power > spec[i - 1].power &&
        spec[i].power >= spec[i + 1].power) {
      peaks.push_back(spec[i]);
    }
  }
  std::sort(peaks.begin(), peaks.end(),
            [](const SpectrumPoint& a, const SpectrumPoint& b) {
              return a.power > b.power;
            });
  if (peaks.size() > max_peaks) peaks.resize(max_peaks);
  return peaks;
}

}  // namespace iri::analysis
