#include "analysis/ssa.h"

#include <algorithm>
#include <cmath>
#include <complex>
#include <numeric>

#include "analysis/spectrum.h"
#include "netbase/rng.h"

namespace iri::analysis {

EigenResult JacobiEigenSymmetric(std::vector<double> a, std::size_t n) {
  EigenResult result;
  result.n = n;
  std::vector<double> v(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) v[i * n + i] = 1.0;

  auto off_diagonal_norm = [&a, n] {
    double sum = 0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) sum += a[i * n + j] * a[i * n + j];
    }
    return sum;
  };

  constexpr int kMaxSweeps = 64;
  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    if (off_diagonal_norm() < 1e-20) break;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a[p * n + q];
        if (std::abs(apq) < 1e-18) continue;
        const double app = a[p * n + p];
        const double aqq = a[q * n + q];
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a[k * n + p];
          const double akq = a[k * n + q];
          a[k * n + p] = c * akp - s * akq;
          a[k * n + q] = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a[p * n + k];
          const double aqk = a[q * n + k];
          a[p * n + k] = c * apk - s * aqk;
          a[q * n + k] = s * apk + c * aqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v[k * n + p];
          const double vkq = v[k * n + q];
          v[k * n + p] = c * vkp - s * vkq;
          v[k * n + q] = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort by descending eigenvalue, permuting columns.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&a, n](std::size_t x, std::size_t y) {
    return a[x * n + x] > a[y * n + y];
  });
  result.values.resize(n);
  result.vectors.assign(n * n, 0.0);
  for (std::size_t k = 0; k < n; ++k) {
    result.values[k] = a[order[k] * n + order[k]];
    for (std::size_t row = 0; row < n; ++row) {
      result.vectors[row * n + k] = v[row * n + order[k]];
    }
  }
  return result;
}

namespace {

// Dominant frequency of an eigenvector via zero-padded periodogram.
double DominantFrequency(const std::vector<double>& eof) {
  const std::size_t n = NextPow2(eof.size() * 8);
  std::vector<std::complex<double>> buf(n, 0.0);
  for (std::size_t i = 0; i < eof.size(); ++i) buf[i] = eof[i];
  Fft(buf);
  double best_power = -1;
  std::size_t best = 0;
  for (std::size_t i = 1; i <= n / 2; ++i) {
    const double p = std::norm(buf[i]);
    if (p > best_power) {
      best_power = p;
      best = i;
    }
  }
  return static_cast<double>(best) / static_cast<double>(n);
}

}  // namespace

Ssa::Ssa(const Series& x, std::size_t window)
    : window_(window), length_(x.size()) {
  if (x.size() < 2 * window || window < 2) return;
  const std::size_t m = window;

  // Toeplitz lag-covariance matrix (Vautard–Ghil estimator).
  const Series acov = Autocovariance(x, m - 1);
  std::vector<double> cov(m * m);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      cov[i * m + j] = acov[i > j ? i - j : j - i];
    }
  }

  EigenResult eig = JacobiEigenSymmetric(std::move(cov), m);
  double trace = 0;
  for (double val : eig.values) trace += std::max(0.0, val);

  const std::size_t n_pc = length_ - m + 1;
  components_.reserve(m);
  for (std::size_t k = 0; k < m; ++k) {
    SsaComponent comp;
    comp.eigenvalue = eig.values[k];
    comp.variance_fraction = trace > 0 ? std::max(0.0, eig.values[k]) / trace : 0;

    std::vector<double> eof(m);
    for (std::size_t j = 0; j < m; ++j) eof[j] = eig.Vector(j, k);
    comp.dominant_frequency = DominantFrequency(eof);

    // Principal component a_k(t) = sum_j x(t+j) e_k(j).
    Series pc(n_pc, 0.0);
    for (std::size_t t = 0; t < n_pc; ++t) {
      double sum = 0;
      for (std::size_t j = 0; j < m; ++j) sum += x[t + j] * eof[j];
      pc[t] = sum;
    }

    // Diagonal-averaged reconstruction back to the full series length.
    comp.reconstructed.assign(length_, 0.0);
    for (std::size_t t = 0; t < length_; ++t) {
      double sum = 0;
      std::size_t count = 0;
      const std::size_t j_lo = t + 1 >= n_pc ? t + 1 - n_pc : 0;
      const std::size_t j_hi = std::min(m - 1, t);
      for (std::size_t j = j_lo; j <= j_hi; ++j) {
        sum += pc[t - j] * eof[j];
        ++count;
      }
      comp.reconstructed[t] = count > 0 ? sum / static_cast<double>(count) : 0;
    }
    components_.push_back(std::move(comp));
  }
}

double WhiteNoiseEigenvalueThreshold(double variance,
                                     std::size_t series_length,
                                     std::size_t window, int trials,
                                     double percentile, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> pooled;
  pooled.reserve(static_cast<std::size_t>(trials) * window);
  const double sd = std::sqrt(std::max(0.0, variance));
  for (int t = 0; t < trials; ++t) {
    Series noise(series_length);
    for (double& v : noise) v = rng.Normal(0.0, sd);
    const Series acov = Autocovariance(noise, window - 1);
    std::vector<double> cov(window * window);
    for (std::size_t i = 0; i < window; ++i) {
      for (std::size_t j = 0; j < window; ++j) {
        cov[i * window + j] = acov[i > j ? i - j : j - i];
      }
    }
    EigenResult eig = JacobiEigenSymmetric(std::move(cov), window);
    for (double v : eig.values) pooled.push_back(v);
  }
  std::sort(pooled.begin(), pooled.end());
  const double pos =
      percentile * static_cast<double>(pooled.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, pooled.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return pooled[lo] * (1 - frac) + pooled[hi] * frac;
}

Series Ssa::Reconstruct(std::size_t k) const {
  Series out(length_, 0.0);
  for (std::size_t i = 0; i < k && i < components_.size(); ++i) {
    for (std::size_t t = 0; t < length_; ++t) {
      out[t] += components_[i].reconstructed[t];
    }
  }
  return out;
}

}  // namespace iri::analysis
