// Basic time-series operations used by the spectral analyses of Figure 5.
//
// The paper's preprocessing (after Bloomfield's treatment of the Beveridge
// wheat-price series): model the update rate as x_t = T_t * I_t, work on
// log x_t = log T_t + log I_t, estimate the trend by least squares and
// subtract it, leaving log I_t oscillating about zero. "This avoids adding
// frequency biases that can be introduced due to linear filtering."
#pragma once

#include <cstdint>
#include <vector>

namespace iri::analysis {

using Series = std::vector<double>;

double Mean(const Series& x);
double Variance(const Series& x);  // population variance

// Least-squares straight-line fit y = a + b*t over t = 0..n-1.
struct LinearFit {
  double intercept = 0;
  double slope = 0;
};
LinearFit FitLine(const Series& x);

// Subtracts the least-squares line in place; returns the removed fit.
LinearFit Detrend(Series& x);

// log(max(x_i, floor)) element-wise; `floor` guards empty bins (a count of
// zero must not produce -inf — the paper works on aggregated counts that
// are occasionally zero at night).
Series LogTransform(const Series& x, double floor = 0.5);

// The full paper-style preprocessing: log, then linear detrend.
Series DetrendedLog(const Series& x);

// Biased autocovariance estimates c_k for k = 0..max_lag (normalizing by n,
// which keeps the sequence positive semi-definite — required by both the
// correlogram and the SSA covariance matrix).
Series Autocovariance(const Series& x, std::size_t max_lag);

// Autocorrelation r_k = c_k / c_0.
Series Autocorrelation(const Series& x, std::size_t max_lag);

}  // namespace iri::analysis
