#include "analysis/series.h"

#include <cmath>

namespace iri::analysis {

double Mean(const Series& x) {
  if (x.empty()) return 0;
  double sum = 0;
  for (double v : x) sum += v;
  return sum / static_cast<double>(x.size());
}

double Variance(const Series& x) {
  if (x.empty()) return 0;
  const double mu = Mean(x);
  double sum = 0;
  for (double v : x) sum += (v - mu) * (v - mu);
  return sum / static_cast<double>(x.size());
}

LinearFit FitLine(const Series& x) {
  const std::size_t n = x.size();
  if (n < 2) return {n == 1 ? x[0] : 0.0, 0.0};
  // Closed-form least squares with t = 0..n-1.
  const double nf = static_cast<double>(n);
  const double t_mean = (nf - 1) / 2.0;
  const double x_mean = Mean(x);
  double cov = 0, var_t = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dt = static_cast<double>(i) - t_mean;
    cov += dt * (x[i] - x_mean);
    var_t += dt * dt;
  }
  const double slope = var_t == 0 ? 0 : cov / var_t;
  return {x_mean - slope * t_mean, slope};
}

LinearFit Detrend(Series& x) {
  const LinearFit fit = FitLine(x);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] -= fit.intercept + fit.slope * static_cast<double>(i);
  }
  return fit;
}

Series LogTransform(const Series& x, double floor) {
  Series out;
  out.reserve(x.size());
  for (double v : x) out.push_back(std::log(v > floor ? v : floor));
  return out;
}

Series DetrendedLog(const Series& x) {
  Series out = LogTransform(x);
  Detrend(out);
  return out;
}

Series Autocovariance(const Series& x, std::size_t max_lag) {
  const std::size_t n = x.size();
  const double mu = Mean(x);
  Series c(max_lag + 1, 0.0);
  if (n == 0) return c;
  for (std::size_t k = 0; k <= max_lag && k < n; ++k) {
    double sum = 0;
    for (std::size_t t = 0; t + k < n; ++t) {
      sum += (x[t] - mu) * (x[t + k] - mu);
    }
    c[k] = sum / static_cast<double>(n);  // biased: PSD-preserving
  }
  return c;
}

Series Autocorrelation(const Series& x, std::size_t max_lag) {
  Series c = Autocovariance(x, max_lag);
  const double c0 = c.empty() ? 0 : c[0];
  if (c0 > 0) {
    for (double& v : c) v /= c0;
  }
  return c;
}

}  // namespace iri::analysis
