#include "bgp/dampening.h"

#include <cmath>

namespace iri::bgp {

double DampeningParams::MaxPenalty() const {
  // penalty * 2^(-max_hold/half_life) == reuse_threshold at the ceiling.
  return reuse_threshold * std::exp2(max_hold_time / half_life);
}

void Dampener::Decay([[maybe_unused]] const PrefixPeer& key, RouteState& st,
                     TimePoint now) {
  if (now > st.last_update) {
    const double half_lives = (now - st.last_update) / params_.half_life;
    st.penalty *= std::exp2(-half_lives);
    st.last_update = now;
  }
  if (st.suppressed) {
    const bool held_too_long =
        now - st.suppressed_since >= params_.max_hold_time;
    if (st.penalty < params_.reuse_threshold || held_too_long) {
      st.suppressed = false;
      IRI_TRACE(trace_, now, "damp_release",
                .Str("prefix", key.prefix.ToString())
                    .U64("peer", key.peer)
                    .I64("held_ns", (now - st.suppressed_since).nanos()));
    }
  }
}

DampVerdict Dampener::AddPenalty(const PrefixPeer& key, TimePoint now,
                                 double amount) {
  RouteState& st = state_[key];
  if (st.last_update == TimePoint()) st.last_update = now;
  Decay(key, st, now);
  const bool was_suppressed = st.suppressed;
  st.penalty = std::min(st.penalty + amount, params_.MaxPenalty());
  if (!st.suppressed && st.penalty >= params_.suppress_threshold) {
    st.suppressed = true;
    st.suppressed_since = now;
    IRI_TRACE(trace_, now, "damp_suppress",
              .Str("prefix", key.prefix.ToString())
                  .U64("peer", key.peer)
                  .I64("penalty", static_cast<std::int64_t>(
                                      std::llround(st.penalty))));
    return was_suppressed ? DampVerdict::kStillDamped : DampVerdict::kSuppressed;
  }
  return st.suppressed ? DampVerdict::kStillDamped : DampVerdict::kPass;
}

DampVerdict Dampener::OnWithdraw(const PrefixPeer& key, TimePoint now) {
  return AddPenalty(key, now, params_.withdrawal_penalty);
}

DampVerdict Dampener::OnAnnounce(const PrefixPeer& key, TimePoint now,
                                 bool attribute_change) {
  return AddPenalty(key, now,
                    attribute_change ? params_.attribute_change_penalty
                                     : params_.readvertisement_penalty);
}

bool Dampener::IsSuppressed(const PrefixPeer& key, TimePoint now) {
  auto it = state_.find(key);
  if (it == state_.end()) return false;
  Decay(it->first, it->second, now);
  return it->second.suppressed;
}

double Dampener::Penalty(const PrefixPeer& key, TimePoint now) {
  auto it = state_.find(key);
  if (it == state_.end()) return 0.0;
  Decay(it->first, it->second, now);
  return it->second.penalty;
}

TimePoint Dampener::ReuseTime(const PrefixPeer& key, TimePoint now) {
  auto it = state_.find(key);
  if (it == state_.end()) return now;
  Decay(it->first, it->second, now);
  const RouteState& st = it->second;
  if (!st.suppressed) return now;
  // Solve penalty * 2^(-t/half_life) == reuse_threshold for t.
  const double half_lives = std::log2(st.penalty / params_.reuse_threshold);
  const TimePoint by_decay = now + params_.half_life * half_lives;
  const TimePoint by_max_hold = st.suppressed_since + params_.max_hold_time;
  return std::min(by_decay, by_max_hold);
}

std::size_t Dampener::Sweep(TimePoint now) {
  std::size_t removed = 0;
  for (auto it = state_.begin(); it != state_.end();) {
    Decay(it->first, it->second, now);
    if (!it->second.suppressed &&
        it->second.penalty < params_.reuse_threshold / 2.0) {
      it = state_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

}  // namespace iri::bgp
