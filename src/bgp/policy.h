// Routing policy engine: ordered match/action rules applied to routes at
// import or export, in the style of the Routing Arbiter's policy filters.
//
// The paper notes that "each route may be matched against a potentially
// extensive list of policy filters" — this is that list. Policies also let
// scenario code model the ISPs that filter long prefixes ("a more draconian
// version of enforcing stability").
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "bgp/path_regex.h"
#include "bgp/route.h"

namespace iri::bgp {

// What a rule matches on; unset fields match anything. All set fields must
// match (conjunction).
struct MatchSpec {
  std::optional<Prefix> covered_by;      // route's prefix inside this block
  std::optional<Prefix> exact;           // route's prefix exactly this
  std::uint8_t min_length = 0;           // prefix length range
  std::uint8_t max_length = 32;
  std::optional<Asn> path_contains;      // AS anywhere in AS_PATH
  std::optional<Asn> origin_as;          // last AS of path
  std::optional<Asn> neighbor_as;        // first AS of path
  std::optional<Community> has_community;
  std::optional<PathRegex> path_regex;   // AS-path regular expression

  bool Matches(const Route& route) const;
};

// What a matching rule does to the route.
struct ActionSpec {
  bool deny = false;                          // drop the route
  std::optional<std::uint32_t> set_local_pref;
  std::optional<std::uint32_t> set_med;
  bool clear_med = false;
  std::uint8_t prepend_count = 0;             // prepend `prepend_asn` N times
  Asn prepend_asn = 0;
  std::vector<Community> add_communities;
  bool strip_communities = false;

  void ApplyTo(Route& route) const;
};

struct PolicyRule {
  std::string name;  // diagnostic only
  MatchSpec match;
  ActionSpec action;
};

// First-match-wins rule chain with a configurable default disposition.
class Policy {
 public:
  // Accepts everything unmodified (the empty policy).
  static Policy AcceptAll() { return Policy(true); }
  // Denies anything not explicitly permitted (strict import policy).
  static Policy DenyAll() { return Policy(false); }

  Policy& Add(PolicyRule rule) {
    rules_.push_back(std::move(rule));
    return *this;
  }

  // Applies the chain. Returns nullopt when the route is denied; otherwise
  // the (possibly rewritten) route.
  std::optional<Route> Apply(const Route& route) const;

  // Copy-free variant for the hot update path: rewrites `route` in place
  // and returns false when the route is denied (in which case `route` is
  // unmodified — deny short-circuits before any action runs).
  bool ApplyInPlace(Route& route) const;

  std::size_t size() const { return rules_.size(); }

  // True when the chain can never rewrite or deny a route (AcceptAll with no
  // rules). Callers use this to skip the per-prefix route copy that
  // ApplyInPlace would otherwise need.
  bool IsIdentity() const { return rules_.empty() && default_accept_; }

 private:
  explicit Policy(bool default_accept) : default_accept_(default_accept) {}

  std::vector<PolicyRule> rules_;
  bool default_accept_;
};

}  // namespace iri::bgp
