// AS-path regular expressions — the filter language of 1990s routing
// policy (Cisco `ip as-path access-list`, RAToolSet/RPSL `<...>` filters).
// The paper notes each route "may be matched against a potentially
// extensive list of policy filters"; those lists were mostly these.
//
// Supported syntax over tokens separated by whitespace:
//   701        literal AS number
//   .          any single AS
//   _          alternation-free separator (ignored; Cisco compatibility)
//   (a|b|c)    alternation of single tokens
//   tok*       zero or more of the preceding token
//   tok+       one or more
//   tok?       zero or one
//   ^          anchor at path start (only meaningful first)
//   $          anchor at path end (only meaningful last)
//
// Unanchored patterns match any substring of the path, as in Cisco. The
// path is the flattened AS sequence (SET segments contribute their members
// in order). Matching is by backtracking over the tiny compiled program —
// paths are short (< 20 ASes), patterns shorter.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "bgp/types.h"

namespace iri::bgp {

class PathRegex {
 public:
  // Compiles a pattern; nullopt on syntax errors (unbalanced parens, empty
  // alternation, dangling quantifier, junk tokens).
  static std::optional<PathRegex> Compile(const std::string& pattern);

  bool Matches(const AsPath& path) const;
  bool Matches(const std::vector<Asn>& flattened) const;

  const std::string& pattern() const { return pattern_; }

 private:
  struct Atom {
    // Empty set = wildcard '.'; otherwise the allowed AS numbers.
    std::vector<Asn> allowed;
    enum class Quantifier : std::uint8_t { kOne, kStar, kPlus, kOptional };
    Quantifier quantifier = Quantifier::kOne;

    bool Accepts(Asn asn) const {
      if (allowed.empty()) return true;
      for (Asn a : allowed) {
        if (a == asn) return true;
      }
      return false;
    }
  };

  PathRegex() = default;

  bool MatchHere(std::size_t atom, const std::vector<Asn>& path,
                 std::size_t pos) const;

  std::string pattern_;
  std::vector<Atom> atoms_;
  bool anchored_start_ = false;
  bool anchored_end_ = false;
};

}  // namespace iri::bgp
