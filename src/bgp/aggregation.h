// CIDR route aggregation (RFC 1338 / RFC 1520 supernetting).
//
// Aggregation is the paper's primary instability-containment mechanism: "an
// autonomous system will maintain a path to an aggregate supernet prefix as
// long as a path to one or more of the component prefixes is available",
// hiding edge instability inside the AS. The workload generator uses
// AggregateIntoBlock for well-aggregated providers; multi-homed customer
// prefixes must bypass it (they need global visibility), which is exactly
// why multi-homing growth erodes aggregation in Figure 10.
#pragma once

#include <optional>
#include <vector>

#include "bgp/route.h"
#include "netbase/time.h"
#include "obs/trace.h"

namespace iri::bgp {

// Bottom-up pairwise aggregation: repeatedly replaces two sibling prefixes
// with forwarding-equivalent attributes by their parent. Attributes of the
// merged route keep the shared (next_hop, as_path); differing origins
// degrade to INCOMPLETE; differing MEDs are dropped. Returns the minimal
// equivalent route set, in address order.
std::vector<Route> AggregateSiblings(std::vector<Route> routes);

// Provider-style aggregation: emits one supernet `block` announcement when
// at least one component route inside the block is present. The aggregate
// carries ATOMIC_AGGREGATE and an AGGREGATOR attribute naming the
// aggregating AS; origin ASes of the components that differ from the
// aggregator are collected into a trailing AS_SET segment (loop-detection
// information is preserved across the aggregation, per RFC 1771 §9.2.2.2).
// Returns nullopt when no component is inside the block.
//
// With a non-null `trace`, every emitted aggregate also logs one
// aggregate_emit trace event (obs/trace.h) stamped `now`, recording the
// supernet, how many components it covers and how many foreign origin ASes
// went into the AS_SET — the containment telemetry counterpart of the
// dampener's suppress/release events.
std::optional<Route> AggregateIntoBlock(const Prefix& block,
                                        const std::vector<Route>& components,
                                        Asn aggregator_asn,
                                        IPv4Address aggregator_id,
                                        IPv4Address next_hop,
                                        obs::Tracer* trace = nullptr,
                                        TimePoint now = TimePoint::Origin());

}  // namespace iri::bgp
