// The BGP decision process (best-path selection).
//
// Implements the tie-breaking ladder as deployed in the measurement era
// (RFC 1163 phase 2, refined per RFC 4271 §9.1.2.2):
//   1. highest LOCAL_PREF (absent => 100)
//   2. shortest AS_PATH (SET segments count 1)
//   3. lowest ORIGIN (IGP < EGP < INCOMPLETE)
//   4. lowest MED, compared only between routes from the same neighbor AS
//      (absent => 0, i.e. best)
//   5. lowest peer BGP identifier (deterministic final tie-break)
#pragma once

#include <cstdint>
#include <span>

#include "bgp/route.h"

namespace iri::bgp {

inline constexpr std::uint32_t kDefaultLocalPref = 100;

// One candidate path for a prefix, as seen in a router's Adj-RIBs-In.
struct Candidate {
  PeerId peer = 0;
  IPv4Address peer_router_id;  // final tie-break
  PathAttributes attributes;
  // Decision-process fast path, filled by the owning Rib from its interned
  // AS-path table (bgp/intern.h): ladder steps 2 and 4 become integer reads
  // instead of segment walks. kInvalidAsPathId means "not interned" — the
  // ladder then recomputes from `attributes`, so hand-built Candidates in
  // tests keep working unchanged.
  AsPathId as_path_id = kInvalidAsPathId;
  std::uint32_t decision_length = 0;
  Asn first_asn = 0;
};

// Returns the index of the best candidate, or -1 when `candidates` is empty.
// Pure function: deterministic given the candidate list order-independently
// (the final router-id tie-break makes the ordering total).
int SelectBest(std::span<const Candidate> candidates);

// Exposed for tests/benchmarks: returns true if `a` is preferred over `b`.
bool Preferred(const Candidate& a, const Candidate& b);

}  // namespace iri::bgp
