#include "bgp/decision.h"

namespace iri::bgp {
namespace {

std::uint32_t LocalPrefOf(const PathAttributes& a) {
  return a.local_pref.value_or(kDefaultLocalPref);
}

std::uint32_t MedOf(const PathAttributes& a) { return a.med.value_or(0); }

// Interned candidates read the precomputed value; others recompute.
std::uint32_t DecisionLengthOf(const Candidate& c) {
  return c.as_path_id != kInvalidAsPathId
             ? c.decision_length
             : static_cast<std::uint32_t>(c.attributes.as_path.DecisionLength());
}

Asn FirstAsnOf(const Candidate& c) {
  return c.as_path_id != kInvalidAsPathId ? c.first_asn
                                          : c.attributes.as_path.FirstAsn();
}

}  // namespace

bool Preferred(const Candidate& a, const Candidate& b) {
  // 1. LOCAL_PREF, higher wins.
  const std::uint32_t lp_a = LocalPrefOf(a.attributes);
  const std::uint32_t lp_b = LocalPrefOf(b.attributes);
  if (lp_a != lp_b) return lp_a > lp_b;

  // 2. AS_PATH length, shorter wins.
  const std::uint32_t len_a = DecisionLengthOf(a);
  const std::uint32_t len_b = DecisionLengthOf(b);
  if (len_a != len_b) return len_a < len_b;

  // 3. ORIGIN, lower wins.
  if (a.attributes.origin != b.attributes.origin) {
    return a.attributes.origin < b.attributes.origin;
  }

  // 4. MED, lower wins, but only comparable for the same neighbor AS.
  if (FirstAsnOf(a) == FirstAsnOf(b)) {
    const std::uint32_t med_a = MedOf(a.attributes);
    const std::uint32_t med_b = MedOf(b.attributes);
    if (med_a != med_b) return med_a < med_b;
  }

  // 5. Lowest peer router id — guarantees a total order so the decision is
  // deterministic regardless of candidate arrival order.
  if (a.peer_router_id != b.peer_router_id) {
    return a.peer_router_id < b.peer_router_id;
  }
  return a.peer < b.peer;
}

int SelectBest(std::span<const Candidate> candidates) {
  if (candidates.empty()) return -1;
  std::size_t best = 0;
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    if (Preferred(candidates[i], candidates[best])) best = i;
  }
  return static_cast<int>(best);
}

}  // namespace iri::bgp
