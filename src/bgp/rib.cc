#include "bgp/rib.h"

#include <cassert>

namespace iri::bgp {

void Rib::AddPeer(PeerId peer, IPv4Address router_id) {
  peers_[peer] = router_id;
}

RibChange Rib::Announce(PeerId peer, const Route& route) {
  assert(peers_.contains(peer));
  Entry* entry = table_.Find(route.prefix);
  if (entry == nullptr) {
    table_.Insert(route.prefix, Entry{});
    entry = table_.Find(route.prefix);
  }
  const std::optional<Candidate> old_best = BestOf(*entry);

  Candidate incoming{peer, peers_[peer], route.attributes};
  bool replaced = false;
  for (auto& cand : entry->candidates) {
    if (cand.peer == peer) {  // implicit withdrawal of the previous path
      cand = std::move(incoming);
      replaced = true;
      break;
    }
  }
  if (!replaced) {
    entry->candidates.push_back(std::move(incoming));
    peer_prefixes_[peer].insert(route.prefix);
    ++num_routes_;
  }
  return Redecide(route.prefix, *entry, old_best);
}

RibChange Rib::Withdraw(PeerId peer, const Prefix& prefix) {
  Entry* entry = table_.Find(prefix);
  if (entry == nullptr) return {};
  const std::optional<Candidate> old_best = BestOf(*entry);

  bool removed = false;
  for (std::size_t i = 0; i < entry->candidates.size(); ++i) {
    if (entry->candidates[i].peer == peer) {
      entry->candidates.erase(entry->candidates.begin() +
                              static_cast<std::ptrdiff_t>(i));
      removed = true;
      break;
    }
  }
  if (!removed) return {};  // pathological withdrawal: nothing to do
  peer_prefixes_[peer].erase(prefix);
  --num_routes_;

  if (entry->candidates.empty()) {
    table_.Erase(prefix);
    RibChange change;
    change.best_changed = old_best.has_value();
    return change;
  }
  return Redecide(prefix, *entry, old_best);
}

std::vector<std::pair<Prefix, RibChange>> Rib::ClearPeer(PeerId peer) {
  std::vector<std::pair<Prefix, RibChange>> changes;
  auto it = peer_prefixes_.find(peer);
  if (it == peer_prefixes_.end()) return changes;
  // Copy: Withdraw mutates peer_prefixes_[peer].
  const std::vector<Prefix> prefixes(it->second.begin(), it->second.end());
  changes.reserve(prefixes.size());
  for (const Prefix& p : prefixes) {
    RibChange c = Withdraw(peer, p);
    if (c.best_changed) changes.emplace_back(p, std::move(c));
  }
  return changes;
}

const Candidate* Rib::Best(const Prefix& prefix) const {
  const Entry* entry = table_.Find(prefix);
  if (entry == nullptr || entry->best < 0) return nullptr;
  return &entry->candidates[static_cast<std::size_t>(entry->best)];
}

std::vector<Candidate> Rib::CandidatesFor(const Prefix& prefix) const {
  const Entry* entry = table_.Find(prefix);
  if (entry == nullptr) return {};
  return entry->candidates;
}

std::size_t Rib::PeerRouteCount(PeerId peer) const {
  auto it = peer_prefixes_.find(peer);
  return it == peer_prefixes_.end() ? 0 : it->second.size();
}

RibChange Rib::Redecide(const Prefix& /*prefix*/, Entry& entry,
                        const std::optional<Candidate>& old_best) {
  entry.best = SelectBest(entry.candidates);
  RibChange change;
  change.new_best = BestOf(entry);
  if (old_best.has_value() != change.new_best.has_value()) {
    change.best_changed = true;
  } else if (old_best.has_value()) {
    change.best_changed = old_best->peer != change.new_best->peer ||
                          !(old_best->attributes == change.new_best->attributes);
  }
  return change;
}

}  // namespace iri::bgp
