#include "bgp/rib.h"

#include "core/invariants.h"

namespace iri::bgp {

void Rib::AddPeer(PeerId peer, IPv4Address router_id) {
  peers_[peer] = router_id;
}

RibChange Rib::Announce(PeerId peer, Route route) {
  return Announce(peer, route.prefix, route.attributes);
}

RibChange Rib::Announce(PeerId peer, const Prefix& prefix,
                        const PathAttributes& attrs) {
  obs::ScopedTimer timer(&announce_site_, 1);
  IRI_ASSERT(peers_.contains(peer),
             "Announce from a peer never registered with AddPeer");
  Entry* entry;
  if (Entry** slot = index_.Find(prefix); slot != nullptr) {
    entry = *slot;
  } else {
    table_.Insert(prefix, Entry{});
    entry = table_.Find(prefix);
    *index_.TryEmplace(prefix).first = entry;
  }
  if (entry->candidates.empty()) ++num_prefixes_;  // fresh entry or tombstone
  const bool had_best = entry->best >= 0;
  const PeerId old_best_peer =
      had_best ? entry->candidates[static_cast<std::size_t>(entry->best)].peer
               : kLocalPeer;

  // Only the announcing peer's candidate can mutate, so change detection
  // needs exactly one comparison, made before the overwrite — no deep copy
  // of the previous best. Re-announcements dominate the update stream, so
  // the replace path avoids the intern table entirely when the previous
  // candidate already carries the answer: a byte-equal attribute set keeps
  // everything, an unchanged AS path keeps the cached id and decision
  // metadata. Only a genuinely new path pays for hashing.
  bool replaced = false;
  bool replaced_same_attrs = false;
  for (auto& cand : entry->candidates) {
    if (cand.peer == peer) {  // implicit withdrawal of the previous path
      if (cand.attributes == attrs) {
        replaced_same_attrs = true;  // byte-equal: nothing to update
      } else if (cand.attributes.as_path == attrs.as_path) {
        // Path unchanged: the cached id/decision metadata stay valid.
        cand.attributes = attrs;
      } else {
        const AsPathId path_id = paths_.Intern(attrs.as_path);
        cand.attributes = attrs;
        cand.as_path_id = path_id;
        cand.decision_length = paths_.DecisionLength(path_id);
        cand.first_asn = paths_.FirstAsn(path_id);
      }
      replaced = true;
      break;
    }
  }
  if (!replaced) {
    const AsPathId path_id = paths_.Intern(attrs.as_path);
    if (!entry->pool.empty()) {
      // Revive a parked candidate: its attribute buffers keep their
      // capacity, so the copy-assign below usually allocates nothing.
      entry->candidates.push_back(std::move(entry->pool.back()));
      entry->pool.pop_back();
    } else {
      entry->candidates.emplace_back();
    }
    Candidate& incoming = entry->candidates.back();
    incoming.peer = peer;
    incoming.peer_router_id = peers_[peer];
    incoming.attributes = attrs;
    incoming.as_path_id = path_id;
    incoming.decision_length = paths_.DecisionLength(path_id);
    incoming.first_asn = paths_.FirstAsn(path_id);
    peer_prefixes_[peer].insert(prefix);
    ++num_routes_;
  }

  entry->best = SelectBest(entry->candidates);
  IRI_DCHECK(entry->best >= 0 && static_cast<std::size_t>(entry->best) <
                                     entry->candidates.size(),
             "decision process must pick a best route from the candidates");
  const Candidate& new_best =
      entry->candidates[static_cast<std::size_t>(entry->best)];
  RibChange change;
  change.new_best = &new_best;
  if (!had_best || old_best_peer != new_best.peer) {
    change.best_changed = true;
  } else {
    // Same peer stayed best. If it is the announcing peer its attributes may
    // have changed (compared above); any other candidate is untouched.
    change.best_changed = new_best.peer == peer && !replaced_same_attrs;
  }
  return change;
}

RibChange Rib::Withdraw(PeerId peer, const Prefix& prefix) {
  obs::ScopedTimer timer(&withdraw_site_, 1);
  Entry* const* slot = index_.Find(prefix);
  if (slot == nullptr) return {};
  Entry* entry = *slot;
  const bool had_best = entry->best >= 0;
  const PeerId old_best_peer =
      had_best ? entry->candidates[static_cast<std::size_t>(entry->best)].peer
               : kLocalPeer;

  bool removed = false;
  for (std::size_t i = 0; i < entry->candidates.size(); ++i) {
    if (entry->candidates[i].peer == peer) {
      // Park the candidate for reuse instead of freeing its buffers: the
      // erase below only shuffles moved-from shells.
      entry->pool.push_back(std::move(entry->candidates[i]));
      entry->candidates.erase(entry->candidates.begin() +
                              static_cast<std::ptrdiff_t>(i));
      removed = true;
      break;
    }
  }
  if (!removed) return {};  // pathological withdrawal: nothing to do
  IRI_ASSERT(num_routes_ > 0,
             "Adj-RIB-In count underflow: removed a route while num_routes_ "
             "was already zero");
  peer_prefixes_[peer].erase(prefix);
  --num_routes_;

  if (entry->candidates.empty()) {
    // Tombstone: the entry (and its pooled storage) stays in the trie so
    // the next announcement of this prefix reuses it wholesale.
    entry->best = -1;
    --num_prefixes_;
    RibChange change;
    change.best_changed = had_best;
    return change;
  }
  entry->best = SelectBest(entry->candidates);
  RibChange change;
  change.new_best = &entry->candidates[static_cast<std::size_t>(entry->best)];
  // Removing a non-best candidate never changes the best: the decision
  // ladder is a total order, so the previous maximum still wins.
  change.best_changed = had_best && old_best_peer == peer;
  return change;
}

std::vector<Prefix> Rib::ClearPeer(PeerId peer) {
  std::vector<Prefix> changed;
  auto it = peer_prefixes_.find(peer);
  if (it == peer_prefixes_.end()) return changed;
  // Copy: Withdraw mutates peer_prefixes_[peer].
  const std::vector<Prefix> prefixes(it->second.begin(), it->second.end());
  changed.reserve(prefixes.size());
  for (const Prefix& p : prefixes) {
    if (Withdraw(peer, p).best_changed) changed.push_back(p);
  }
  IRI_DCHECK(PeerRouteCount(peer) == 0,
             "ClearPeer must drop every route learned from the peer");
  IRI_DCHECK(AuditInvariants(), "RIB bookkeeping inconsistent after ClearPeer");
  return changed;
}

const Candidate* Rib::Best(const Prefix& prefix) const {
  obs::ScopedTimer timer(&lookup_site_, 1);
  Entry* const* slot = index_.Find(prefix);
  if (slot == nullptr || (*slot)->best < 0) return nullptr;
  const Entry* entry = *slot;
  return &entry->candidates[static_cast<std::size_t>(entry->best)];
}

std::vector<Candidate> Rib::CandidatesFor(const Prefix& prefix) const {
  Entry* const* slot = index_.Find(prefix);
  if (slot == nullptr) return {};
  return (*slot)->candidates;
}

std::size_t Rib::PeerRouteCount(PeerId peer) const {
  auto it = peer_prefixes_.find(peer);
  return it == peer_prefixes_.end() ? 0 : it->second.size();
}

bool Rib::AuditInvariants() const {
  std::size_t candidate_total = 0;
  std::size_t live_prefixes = 0;
  std::size_t malformed_entries = 0;   // best index out of range, or a
                                       // tombstone still claiming a best
  std::size_t duplicate_peer_routes = 0;
  std::size_t unindexed_routes = 0;    // candidate missing from peer_prefixes_
  std::size_t stale_index_entries = 0; // index_ disagrees with the trie
  table_.Visit([&](const Prefix& prefix, const Entry& e) {
    Entry* const* idx = index_.Find(prefix);
    if (idx == nullptr || *idx != &e) ++stale_index_entries;
    candidate_total += e.candidates.size();
    if (e.candidates.empty()) {
      if (e.best != -1) ++malformed_entries;
      return;  // tombstone: parked storage only, invisible to readers
    }
    ++live_prefixes;
    if (e.best < 0 ||
        static_cast<std::size_t>(e.best) >= e.candidates.size()) {
      ++malformed_entries;
    }
    for (std::size_t i = 0; i < e.candidates.size(); ++i) {
      for (std::size_t j = i + 1; j < e.candidates.size(); ++j) {
        if (e.candidates[i].peer == e.candidates[j].peer) {
          ++duplicate_peer_routes;
        }
      }
      auto it = peer_prefixes_.find(e.candidates[i].peer);
      if (it == peer_prefixes_.end() || !it->second.contains(prefix)) {
        ++unindexed_routes;
      }
    }
  });
  std::size_t indexed_total = 0;
  for (const auto& [peer, prefixes] : peer_prefixes_) {
    indexed_total += prefixes.size();
  }

  IRI_ASSERT(malformed_entries == 0,
             "RIB entry best index out of range or tombstone with a best");
  IRI_ASSERT(live_prefixes == num_prefixes_,
             "num_prefixes_ disagrees with the table's live entry count");
  IRI_ASSERT(stale_index_entries == 0 && index_.size() == table_.size(),
             "exact-match index out of sync with the trie");
  IRI_ASSERT(duplicate_peer_routes == 0,
             "Adj-RIB-In holds two routes from one peer for one prefix");
  IRI_ASSERT(unindexed_routes == 0,
             "route present in the table but missing from the per-peer index");
  IRI_ASSERT(candidate_total == num_routes_,
             "num_routes_ disagrees with the table's candidate count");
  IRI_ASSERT(indexed_total == num_routes_,
             "num_routes_ disagrees with the per-peer index total");
  return malformed_entries == 0 && duplicate_peer_routes == 0 &&
         unindexed_routes == 0 && candidate_total == num_routes_ &&
         indexed_total == num_routes_ && live_prefixes == num_prefixes_ &&
         stale_index_entries == 0 && index_.size() == table_.size();
}

}  // namespace iri::bgp
