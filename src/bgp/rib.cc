#include "bgp/rib.h"

#include "core/invariants.h"

namespace iri::bgp {

void Rib::AddPeer(PeerId peer, IPv4Address router_id) {
  peers_[peer] = router_id;
}

RibChange Rib::Announce(PeerId peer, const Route& route) {
  obs::ScopedTimer timer(&announce_site_, 1);
  IRI_ASSERT(peers_.contains(peer),
             "Announce from a peer never registered with AddPeer");
  Entry* entry = table_.Find(route.prefix);
  if (entry == nullptr) {
    table_.Insert(route.prefix, Entry{});
    entry = table_.Find(route.prefix);
  }
  const std::optional<Candidate> old_best = BestOf(*entry);

  Candidate incoming{peer, peers_[peer], route.attributes};
  bool replaced = false;
  for (auto& cand : entry->candidates) {
    if (cand.peer == peer) {  // implicit withdrawal of the previous path
      cand = std::move(incoming);
      replaced = true;
      break;
    }
  }
  if (!replaced) {
    entry->candidates.push_back(std::move(incoming));
    peer_prefixes_[peer].insert(route.prefix);
    ++num_routes_;
  }
  return Redecide(route.prefix, *entry, old_best);
}

RibChange Rib::Withdraw(PeerId peer, const Prefix& prefix) {
  obs::ScopedTimer timer(&withdraw_site_, 1);
  Entry* entry = table_.Find(prefix);
  if (entry == nullptr) return {};
  const std::optional<Candidate> old_best = BestOf(*entry);

  bool removed = false;
  for (std::size_t i = 0; i < entry->candidates.size(); ++i) {
    if (entry->candidates[i].peer == peer) {
      entry->candidates.erase(entry->candidates.begin() +
                              static_cast<std::ptrdiff_t>(i));
      removed = true;
      break;
    }
  }
  if (!removed) return {};  // pathological withdrawal: nothing to do
  IRI_ASSERT(num_routes_ > 0,
             "Adj-RIB-In count underflow: removed a route while num_routes_ "
             "was already zero");
  peer_prefixes_[peer].erase(prefix);
  --num_routes_;

  if (entry->candidates.empty()) {
    table_.Erase(prefix);
    RibChange change;
    change.best_changed = old_best.has_value();
    return change;
  }
  return Redecide(prefix, *entry, old_best);
}

std::vector<std::pair<Prefix, RibChange>> Rib::ClearPeer(PeerId peer) {
  std::vector<std::pair<Prefix, RibChange>> changes;
  auto it = peer_prefixes_.find(peer);
  if (it == peer_prefixes_.end()) return changes;
  // Copy: Withdraw mutates peer_prefixes_[peer].
  const std::vector<Prefix> prefixes(it->second.begin(), it->second.end());
  changes.reserve(prefixes.size());
  for (const Prefix& p : prefixes) {
    RibChange c = Withdraw(peer, p);
    if (c.best_changed) changes.emplace_back(p, std::move(c));
  }
  IRI_DCHECK(PeerRouteCount(peer) == 0,
             "ClearPeer must drop every route learned from the peer");
  IRI_DCHECK(AuditInvariants(), "RIB bookkeeping inconsistent after ClearPeer");
  return changes;
}

const Candidate* Rib::Best(const Prefix& prefix) const {
  obs::ScopedTimer timer(&lookup_site_, 1);
  const Entry* entry = table_.Find(prefix);
  if (entry == nullptr || entry->best < 0) return nullptr;
  return &entry->candidates[static_cast<std::size_t>(entry->best)];
}

std::vector<Candidate> Rib::CandidatesFor(const Prefix& prefix) const {
  const Entry* entry = table_.Find(prefix);
  if (entry == nullptr) return {};
  return entry->candidates;
}

std::size_t Rib::PeerRouteCount(PeerId peer) const {
  auto it = peer_prefixes_.find(peer);
  return it == peer_prefixes_.end() ? 0 : it->second.size();
}

bool Rib::AuditInvariants() const {
  std::size_t candidate_total = 0;
  std::size_t malformed_entries = 0;   // empty, or best index out of range
  std::size_t duplicate_peer_routes = 0;
  std::size_t unindexed_routes = 0;    // candidate missing from peer_prefixes_
  table_.Visit([&](const Prefix& prefix, const Entry& e) {
    candidate_total += e.candidates.size();
    if (e.candidates.empty() || e.best < 0 ||
        static_cast<std::size_t>(e.best) >= e.candidates.size()) {
      ++malformed_entries;
    }
    for (std::size_t i = 0; i < e.candidates.size(); ++i) {
      for (std::size_t j = i + 1; j < e.candidates.size(); ++j) {
        if (e.candidates[i].peer == e.candidates[j].peer) {
          ++duplicate_peer_routes;
        }
      }
      auto it = peer_prefixes_.find(e.candidates[i].peer);
      if (it == peer_prefixes_.end() || !it->second.contains(prefix)) {
        ++unindexed_routes;
      }
    }
  });
  std::size_t indexed_total = 0;
  for (const auto& [peer, prefixes] : peer_prefixes_) {
    indexed_total += prefixes.size();
  }

  IRI_ASSERT(malformed_entries == 0,
             "RIB entry with no candidates or best index out of range");
  IRI_ASSERT(duplicate_peer_routes == 0,
             "Adj-RIB-In holds two routes from one peer for one prefix");
  IRI_ASSERT(unindexed_routes == 0,
             "route present in the table but missing from the per-peer index");
  IRI_ASSERT(candidate_total == num_routes_,
             "num_routes_ disagrees with the table's candidate count");
  IRI_ASSERT(indexed_total == num_routes_,
             "num_routes_ disagrees with the per-peer index total");
  return malformed_entries == 0 && duplicate_peer_routes == 0 &&
         unindexed_routes == 0 && candidate_total == num_routes_ &&
         indexed_total == num_routes_;
}

RibChange Rib::Redecide(const Prefix& /*prefix*/, Entry& entry,
                        const std::optional<Candidate>& old_best) {
  entry.best = SelectBest(entry.candidates);
  IRI_DCHECK(entry.candidates.empty() ||
                 (entry.best >= 0 && static_cast<std::size_t>(entry.best) <
                                         entry.candidates.size()),
             "decision process must pick a best route from the candidates");
  RibChange change;
  change.new_best = BestOf(entry);
  if (old_best.has_value() != change.new_best.has_value()) {
    change.best_changed = true;
  } else if (old_best.has_value()) {
    change.best_changed = old_best->peer != change.new_best->peer ||
                          !(old_best->attributes == change.new_best->attributes);
  }
  return change;
}

}  // namespace iri::bgp
