#include "bgp/update_packer.h"

#include <algorithm>

namespace iri::bgp {

std::vector<UpdateMessage> PackUpdates(std::span<const RouteOp> ops,
                                       std::vector<obs::CauseVec>* causes) {
  std::vector<UpdateMessage> out;
  std::vector<obs::CauseVec> out_causes;  // parallel to out when requested

  // Withdrawals first, packed densely (matches observed router behaviour:
  // the paper's multi-million-withdrawal days arrived as packed UPDATEs).
  // The cause sideband mirrors each message's withdrawn list op for op.
  UpdateMessage withdrawals;
  obs::CauseVec withdrawal_causes;
  for (const RouteOp& op : ops) {
    if (!op.IsWithdraw()) continue;
    withdrawals.withdrawn.push_back(op.prefix);
    if (causes != nullptr) withdrawal_causes.push_back(op.cause);
    if (EstimateUpdateSize(withdrawals) > kMaxMessageSize - 64) {
      out.push_back(std::move(withdrawals));
      withdrawals = {};
      if (causes != nullptr) {
        out_causes.push_back(std::move(withdrawal_causes));
        withdrawal_causes = {};
      }
    }
  }
  if (!withdrawals.withdrawn.empty()) {
    out.push_back(std::move(withdrawals));
    if (causes != nullptr) out_causes.push_back(std::move(withdrawal_causes));
  }

  // Announcements grouped by identical attribute sets. Order within a group
  // follows arrival order; groups are emitted in order of first appearance.
  // Grouping reorders ops relative to the input, so the sideband is built
  // here, one slot per NLRI prefix, in the same order.
  std::vector<UpdateMessage> groups;
  std::vector<obs::CauseVec> group_causes;
  for (const RouteOp& op : ops) {
    if (op.IsWithdraw()) continue;
    std::size_t group_index = groups.size();
    for (std::size_t i = 0; i < groups.size(); ++i) {
      if (groups[i].attributes == *op.attributes &&
          EstimateUpdateSize(groups[i]) < kMaxMessageSize - 64) {
        group_index = i;
        break;
      }
    }
    if (group_index == groups.size()) {
      groups.push_back({});
      groups.back().attributes = *op.attributes;
      if (causes != nullptr) group_causes.emplace_back();
    }
    groups[group_index].nlri.push_back(op.prefix);
    if (causes != nullptr) group_causes[group_index].push_back(op.cause);
  }
  for (std::size_t i = 0; i < groups.size(); ++i) {
    out.push_back(std::move(groups[i]));
    if (causes != nullptr) out_causes.push_back(std::move(group_causes[i]));
  }
  if (causes != nullptr) *causes = std::move(out_causes);
  return out;
}

void OutboundQueue::Enqueue(TimePoint now, RouteOp op) {
  if (pending_.empty()) deadline_ = ComputeDeadline(now);
  auto [slot, inserted] = index_.TryEmplace(op.prefix);
  if (inserted) {
    *slot = static_cast<std::uint32_t>(pending_.size());
    pending_.push_back(std::move(op));
  } else {
    // Latest wins, keeping the original order slot; an announcement that
    // supersedes a queued withdrawal remembers it (see RouteOp).
    RouteOp& prior = pending_[*slot];
    if (!op.IsWithdraw() &&
        (prior.IsWithdraw() || prior.withdraw_preceded)) {
      op.withdraw_preceded = true;
    }
    prior = std::move(op);
  }
}

TimePoint OutboundQueue::ComputeDeadline(TimePoint now) {
  const std::int64_t interval = config_.interval.nanos();
  if (config_.discipline == TimerDiscipline::kUnjittered) {
    // Fixed phase: the next multiple of the interval strictly after `now`.
    // Every unjittered router flushes on the same global phase — the weak
    // coupling Floyd & Jacobson show leads to abrupt synchronization.
    const std::int64_t k = now.nanos() / interval + 1;
    return TimePoint::FromNanos(k * interval);
  }
  const double spread = 1.0 + config_.jitter * (2.0 * rng_.Uniform() - 1.0);
  return now + config_.interval * spread;
}

std::vector<RouteOp> OutboundQueue::Flush(TimePoint now) {
  if (pending_.empty() || now < deadline_) return {};
  deadline_ = TimePoint::Max();
  index_.Clear();
  std::vector<RouteOp> ops;
  ops.swap(pending_);  // already in first-enqueue order
  return ops;
}

}  // namespace iri::bgp
