#include "bgp/session.h"

#include <algorithm>

#include "core/invariants.h"

namespace iri::bgp {

namespace {
// kLegal[from][to]: transitions one public event handler may perform.
// Self-loops are always legal (no-op events). The forbidden cells are the
// ones a state-machine bug would most plausibly produce: entering
// Established without completing the OPEN/KEEPALIVE handshake, or leaving
// Idle by anything but an administrative Start.
constexpr bool kLegal[kNumSessionStates][kNumSessionStates] = {
    //               to: Idle   Connect OpenSent OpenConfirm Established
    /* from Idle        */ {true, true, false, false, false},
    /* from Connect     */ {true, true, true, true, false},
    /* from OpenSent    */ {true, true, true, true, false},
    /* from OpenConfirm */ {true, true, false, true, true},
    /* from Established */ {true, true, false, false, true},
};
}  // namespace

bool IsLegalTransition(SessionState from, SessionState to) {
  return kLegal[static_cast<std::size_t>(from)][static_cast<std::size_t>(to)];
}

SessionFsm::TransitionAudit::~TransitionAudit() {
  IRI_ASSERT(IsLegalTransition(from_, fsm_.state_),
             "session FSM performed an illegal state transition");
  if (from_ != fsm_.state_) {
    IRI_TRACE(fsm_.tracer_, now_, "fsm",
              .Str("session", fsm_.label_)
              .Str("from", ToString(from_))
              .Str("to", ToString(fsm_.state_)));
  }
}

const char* ToString(SessionState s) {
  switch (s) {
    case SessionState::kIdle: return "Idle";
    case SessionState::kConnect: return "Connect";
    case SessionState::kOpenSent: return "OpenSent";
    case SessionState::kOpenConfirm: return "OpenConfirm";
    case SessionState::kEstablished: return "Established";
  }
  return "?";
}

void SessionFsm::Start(TimePoint now, Actions& /*out*/) {
  TransitionAudit audit(*this, now);
  if (state_ != SessionState::kIdle) return;
  EnterConnect(now);
}

void SessionFsm::Stop(TimePoint now, Actions& out) {
  TransitionAudit audit(*this, now);
  if (state_ == SessionState::kEstablished || state_ == SessionState::kOpenSent ||
      state_ == SessionState::kOpenConfirm) {
    TearDown(now, NotifyCode::kCease, out);
  }
  state_ = SessionState::kIdle;
  hold_deadline_ = keepalive_deadline_ = connect_retry_deadline_ =
      TimePoint::Max();
}

void SessionFsm::EnterConnect(TimePoint now) {
  state_ = SessionState::kConnect;
  connect_retry_deadline_ = now + config_.connect_retry;
  hold_deadline_ = keepalive_deadline_ = TimePoint::Max();
}

void SessionFsm::OnTransportUp(TimePoint now, Actions& out) {
  TransitionAudit audit(*this, now);
  if (state_ != SessionState::kConnect) return;
  state_ = SessionState::kOpenSent;
  connect_retry_deadline_ = TimePoint::Max();
  // A large initial hold deadline guards the OPEN exchange (RFC: 4 min).
  hold_deadline_ = now + Duration::Minutes(4);
  out.push_back({ActionType::kSendOpen, {}});
}

void SessionFsm::OnTransportDown(TimePoint now, Actions& out) {
  TransitionAudit audit(*this, now);
  if (state_ == SessionState::kEstablished) {
    out.push_back({ActionType::kSessionDown,
                   {NotifyCode::kCease, /*subcode=*/0}});
  }
  if (state_ != SessionState::kIdle) EnterConnect(now);
}

void SessionFsm::TearDown(TimePoint now, NotifyCode code, Actions& out) {
  out.push_back({ActionType::kSendNotification, {code, 0}});
  if (state_ == SessionState::kEstablished) {
    out.push_back({ActionType::kSessionDown, {code, 0}});
  }
  EnterConnect(now);
}

void SessionFsm::HandlePeerOpen(TimePoint now, const OpenMessage& open,
                                Actions& out) {
  if (open.version != 4 || open.hold_time_s == 1 ||
      open.hold_time_s == 2) {  // RFC forbids hold times of 1 and 2
    TearDown(now, NotifyCode::kOpenMessageError, out);
    return;
  }
  negotiated_hold_s_ = std::min(config_.hold_time_s, open.hold_time_s);
  state_ = SessionState::kOpenConfirm;
  hold_deadline_ = now + Duration::Seconds(negotiated_hold_s_);
  out.push_back({ActionType::kSendKeepAlive, {}});
  keepalive_deadline_ = now + KeepaliveInterval();
}

void SessionFsm::OnMessage(TimePoint now, const Message& msg, Actions& out) {
  TransitionAudit audit(*this, now);
  switch (state_) {
    case SessionState::kIdle:
      // Messages before the session exists are a simulator bug, not a peer
      // error.
      return;

    case SessionState::kConnect: {
      // Passive open: the peer's OPEN raced ahead of our connect retry
      // (common after an asymmetric teardown). Send our own OPEN and
      // proceed with negotiation.
      if (const auto* open = std::get_if<OpenMessage>(&msg)) {
        state_ = SessionState::kOpenSent;
        connect_retry_deadline_ = TimePoint::Max();
        out.push_back({ActionType::kSendOpen, {}});
        HandlePeerOpen(now, *open, out);
      }
      return;
    }

    case SessionState::kOpenSent: {
      const auto* open = std::get_if<OpenMessage>(&msg);
      if (open == nullptr) {
        TearDown(now, NotifyCode::kFsmError, out);
        return;
      }
      HandlePeerOpen(now, *open, out);
      return;
    }

    case SessionState::kOpenConfirm: {
      if (std::holds_alternative<KeepAliveMessage>(msg)) {
        state_ = SessionState::kEstablished;
        hold_deadline_ = now + Duration::Seconds(negotiated_hold_s_);
        out.push_back({ActionType::kSessionUp, {}});
        return;
      }
      if (std::holds_alternative<NotificationMessage>(msg)) {
        EnterConnect(now);
        return;
      }
      TearDown(now, NotifyCode::kFsmError, out);
      return;
    }

    case SessionState::kEstablished: {
      if (std::holds_alternative<NotificationMessage>(msg)) {
        out.push_back({ActionType::kSessionDown,
                       std::get<NotificationMessage>(msg)});
        EnterConnect(now);
        return;
      }
      if (std::holds_alternative<OpenMessage>(msg)) {
        TearDown(now, NotifyCode::kFsmError, out);
        return;
      }
      // KEEPALIVE or UPDATE both refresh the hold timer.
      hold_deadline_ = now + Duration::Seconds(negotiated_hold_s_);
      return;
    }
  }
}

void SessionFsm::OnTimer(TimePoint now, Actions& out) {
  TransitionAudit audit(*this, now);
  if (state_ == SessionState::kConnect && now >= connect_retry_deadline_) {
    // Transport still not up; keep waiting another interval. The simulator
    // decides when OnTransportUp happens; this just re-arms the deadline.
    connect_retry_deadline_ = now + config_.connect_retry;
  }
  if ((state_ == SessionState::kOpenSent ||
       state_ == SessionState::kOpenConfirm ||
       state_ == SessionState::kEstablished) &&
      now >= hold_deadline_) {
    TearDown(now, NotifyCode::kHoldTimerExpired, out);
    return;
  }
  if ((state_ == SessionState::kOpenConfirm ||
       state_ == SessionState::kEstablished) &&
      now >= keepalive_deadline_) {
    out.push_back({ActionType::kSendKeepAlive, {}});
    keepalive_deadline_ = now + KeepaliveInterval();
  }
}

TimePoint SessionFsm::NextDeadline() const {
  TimePoint next = TimePoint::Max();
  next = std::min(next, hold_deadline_);
  next = std::min(next, keepalive_deadline_);
  next = std::min(next, connect_retry_deadline_);
  return next;
}

}  // namespace iri::bgp
