#include "bgp/attributes.h"

#include <algorithm>

namespace iri::bgp {
namespace {

// Attribute flag bits (high nibble of the flags octet).
constexpr std::uint8_t kFlagOptional = 0x80;
constexpr std::uint8_t kFlagTransitive = 0x40;
constexpr std::uint8_t kFlagExtendedLength = 0x10;

// Emits one attribute TLV: flags, type, length (1 or 2 bytes), body.
void EmitAttr(ByteWriter& out, std::uint8_t flags, AttrType type,
              const ByteWriter& body) {
  const std::size_t len = body.size();
  if (len > 255) flags |= kFlagExtendedLength;
  out.U8(flags);
  out.U8(static_cast<std::uint8_t>(type));
  if (flags & kFlagExtendedLength) {
    out.U16(static_cast<std::uint16_t>(len));
  } else {
    out.U8(static_cast<std::uint8_t>(len));
  }
  out.Bytes(body.data());
}

void EncodeAsPath(const AsPath& path, ByteWriter& body) {
  for (const auto& seg : path.segments()) {
    body.U8(static_cast<std::uint8_t>(seg.type));
    body.U8(static_cast<std::uint8_t>(seg.asns.size()));
    for (Asn asn : seg.asns) body.U16(static_cast<std::uint16_t>(asn));
  }
}

AsPath DecodeAsPath(ByteReader& in, std::size_t len) {
  AsPath path;
  const std::size_t end = in.position() + len;
  while (in.ok() && in.position() < end) {
    AsPathSegment seg;
    const std::uint8_t type = in.U8();
    if (type != static_cast<std::uint8_t>(AsPathSegment::Type::kSet) &&
        type != static_cast<std::uint8_t>(AsPathSegment::Type::kSequence)) {
      in.MarkBad();
      return path;
    }
    seg.type = static_cast<AsPathSegment::Type>(type);
    const std::uint8_t count = in.U8();
    seg.asns.reserve(count);
    for (std::uint8_t i = 0; i < count; ++i) seg.asns.push_back(in.U16());
    path.segments().push_back(std::move(seg));
  }
  if (in.position() != end) in.MarkBad();
  return path;
}

}  // namespace

void EncodeAttributes(const PathAttributes& attrs, ByteWriter& out) {
  {  // ORIGIN: well-known mandatory.
    ByteWriter body;
    body.U8(static_cast<std::uint8_t>(attrs.origin));
    EmitAttr(out, kFlagTransitive, AttrType::kOrigin, body);
  }
  {  // AS_PATH: well-known mandatory (may be zero segments for local routes).
    ByteWriter body;
    EncodeAsPath(attrs.as_path, body);
    EmitAttr(out, kFlagTransitive, AttrType::kAsPath, body);
  }
  {  // NEXT_HOP: well-known mandatory.
    ByteWriter body;
    body.U32(attrs.next_hop.bits());
    EmitAttr(out, kFlagTransitive, AttrType::kNextHop, body);
  }
  if (attrs.med) {  // optional non-transitive
    ByteWriter body;
    body.U32(*attrs.med);
    EmitAttr(out, kFlagOptional, AttrType::kMultiExitDisc, body);
  }
  if (attrs.local_pref) {  // well-known discretionary
    ByteWriter body;
    body.U32(*attrs.local_pref);
    EmitAttr(out, kFlagTransitive, AttrType::kLocalPref, body);
  }
  if (attrs.atomic_aggregate) {  // well-known discretionary, empty body
    ByteWriter body;
    EmitAttr(out, kFlagTransitive, AttrType::kAtomicAggregate, body);
  }
  if (attrs.aggregator) {  // optional transitive
    ByteWriter body;
    body.U16(static_cast<std::uint16_t>(attrs.aggregator->asn));
    body.U32(attrs.aggregator->router_id.bits());
    EmitAttr(out, kFlagOptional | kFlagTransitive, AttrType::kAggregator, body);
  }
  if (!attrs.communities.empty()) {  // optional transitive (RFC 1997)
    ByteWriter body;
    std::vector<Community> sorted = attrs.communities;
    std::sort(sorted.begin(), sorted.end());
    for (Community c : sorted) body.U32(c);
    EmitAttr(out, kFlagOptional | kFlagTransitive, AttrType::kCommunity, body);
  }
}

PathAttributes DecodeAttributes(ByteReader& in, std::size_t total_len) {
  PathAttributes attrs;
  DecodeAttributesInto(in, total_len, attrs);
  return attrs;
}

void DecodeAttributesInto(ByteReader& in, std::size_t total_len,
                          PathAttributes& attrs) {
  const std::size_t end = in.position() + total_len;
  while (in.ok() && in.position() < end) {
    const std::uint8_t flags = in.U8();
    const std::uint8_t type = in.U8();
    const std::size_t len =
        (flags & kFlagExtendedLength) ? in.U16() : in.U8();
    if (!in.ok()) break;
    const std::size_t body_end = in.position() + len;
    switch (static_cast<AttrType>(type)) {
      case AttrType::kOrigin: {
        const std::uint8_t o = in.U8();
        if (o > 2) { in.MarkBad(); return; }
        attrs.origin = static_cast<Origin>(o);
        break;
      }
      case AttrType::kAsPath:
        attrs.as_path = DecodeAsPath(in, len);
        break;
      case AttrType::kNextHop:
        attrs.next_hop = IPv4Address(in.U32());
        break;
      case AttrType::kMultiExitDisc:
        attrs.med = in.U32();
        break;
      case AttrType::kLocalPref:
        attrs.local_pref = in.U32();
        break;
      case AttrType::kAtomicAggregate:
        attrs.atomic_aggregate = true;
        break;
      case AttrType::kAggregator: {
        Aggregator agg;
        agg.asn = in.U16();
        agg.router_id = IPv4Address(in.U32());
        attrs.aggregator = agg;
        break;
      }
      case AttrType::kCommunity: {
        if (len % 4 != 0) { in.MarkBad(); return; }
        for (std::size_t i = 0; i < len / 4; ++i) {
          attrs.communities.push_back(in.U32());
        }
        break;
      }
      default:
        // Unknown optional attributes are skipped (transitive semantics are
        // out of scope: the monitor only classifies, it does not re-announce
        // unknown attributes).
        in.Skip(len);
        break;
    }
    if (in.position() != body_end) {
      in.MarkBad();
      return;
    }
  }
  if (in.position() != end) in.MarkBad();
  return;
}

std::string PathAttributes::ToString() const {
  std::string out = "nh=" + next_hop.ToString() + " path=[" +
                    as_path.ToString() + "] origin=" + bgp::ToString(origin);
  if (local_pref) out += " lp=" + std::to_string(*local_pref);
  if (med) out += " med=" + std::to_string(*med);
  if (atomic_aggregate) out += " atomic";
  if (!communities.empty()) {
    out += " comm=";
    for (std::size_t i = 0; i < communities.size(); ++i) {
      if (i) out.push_back(',');
      out += std::to_string(communities[i] >> 16) + ":" +
             std::to_string(communities[i] & 0xFFFF);
    }
  }
  return out;
}

}  // namespace iri::bgp
