// Outbound update batching — the "interval timer on BGP's update processing"
// at the heart of the paper's §4.2.
//
// Real routers do not transmit each route change immediately; they queue
// changes and flush them on a timer, packing many prefixes into few UPDATE
// messages. The paper identifies a vendor's *unjittered 30-second* flush
// timer as the probable source of the 30/60 s periodicity in Figure 8 and a
// contributor (with stateless BGP) to AADup/WWDup pathologies.
//
// Two timer disciplines are modeled:
//  - kUnjittered: flushes at fixed wall-phase multiples of the interval
//    (every router on the same phase — the self-synchronization substrate).
//  - kJittered: flushes interval*(1 ± jitter) after the first enqueued
//    change, per the route-dampening draft's recommendation.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "bgp/message.h"
#include "bgp/route.h"
#include "netbase/probe_map.h"
#include "netbase/rng.h"
#include "netbase/time.h"
#include "obs/provenance.h"

namespace iri::bgp {

// One net route change bound for a peer: announce (attrs set) or withdraw.
struct RouteOp {
  Prefix prefix;
  std::optional<PathAttributes> attributes;  // nullopt == withdrawal
  // True when a withdrawal for this prefix was queued earlier in the same
  // flush window and later superseded by this announcement. A stateful
  // sender coalesces the pair away; the pathological stateless
  // implementation transmits "withdrawals for every explicitly and
  // implicitly withdrawn prefix" followed by the current route — the W,A
  // trains that put half of Figure 8's mass in the 30 s bin.
  bool withdraw_preceded = false;
  // Provenance sideband: the injected cause this op descends from. Rides the
  // queue slot under latest-wins coalescing (the surviving op's cause wins,
  // like its attributes) and is excluded from equality — two ops that would
  // put the same bytes on the wire compare equal whatever their ancestry.
  // Zero bytes when provenance is compiled out.
  [[no_unique_address]] obs::CauseTag cause{};

  bool IsWithdraw() const { return !attributes.has_value(); }

  friend bool operator==(const RouteOp& a, const RouteOp& b) {
    return a.prefix == b.prefix && a.attributes == b.attributes &&
           a.withdraw_preceded == b.withdraw_preceded;
  }
};

// Packs a batch of route ops into wire-legal UPDATE messages: withdrawals
// are combined, announcements are grouped by identical attribute sets, and
// messages are split below kMaxMessageSize. When `causes` is non-null it
// receives one CauseVec per output message, each aligned with that
// message's wire event order (withdrawn prefixes, then NLRI) — the grouping
// reorders ops, so the sideband must be built here to stay aligned.
std::vector<UpdateMessage> PackUpdates(std::span<const RouteOp> ops,
                                       std::vector<obs::CauseVec>* causes);
inline std::vector<UpdateMessage> PackUpdates(std::span<const RouteOp> ops) {
  return PackUpdates(ops, nullptr);
}

enum class TimerDiscipline : std::uint8_t { kUnjittered, kJittered };

struct PackerConfig {
  Duration interval = Duration::Seconds(30);
  TimerDiscipline discipline = TimerDiscipline::kUnjittered;
  double jitter = 0.25;  // kJittered: flush after interval*(1±jitter)
};

// Per-peer outbound queue. Latest-wins per prefix: an announce queued after
// a withdraw for the same prefix supersedes it within one flush window
// (this coalescing is what can turn real flaps into apparent silence, the
// "artificial route dampening" effect the paper describes).
class OutboundQueue {
 public:
  OutboundQueue(PackerConfig config, std::uint64_t rng_seed)
      : config_(config), rng_(rng_seed) {}

  // Queues a change; arms the flush deadline if the queue was empty.
  void Enqueue(TimePoint now, RouteOp op);

  // Time of the pending flush, or TimePoint::Max() when queue is empty.
  TimePoint NextFlush() const { return deadline_; }

  bool empty() const { return pending_.empty(); }
  std::size_t pending_ops() const { return pending_.size(); }

  // Drains the queue if the deadline has passed; returns net ops in first-
  // enqueued order. Returns empty when called before the deadline.
  std::vector<RouteOp> Flush(TimePoint now);

 private:
  TimePoint ComputeDeadline(TimePoint now);

  PackerConfig config_;
  Rng rng_;
  // Net ops in first-enqueue order: latest-wins updates overwrite their
  // original slot, so the vector is already flush-ordered — no sequence
  // numbers, no sort, no per-op tree node. index_ dedups by prefix; the
  // flat ProbeMap is probed only by construction (no iteration API), so its
  // slot order cannot reach any output.
  std::vector<RouteOp> pending_;
  ProbeMap<Prefix, std::uint32_t> index_;
  TimePoint deadline_ = TimePoint::Max();
};

}  // namespace iri::bgp
