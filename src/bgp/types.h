// Fundamental BGP-4 value types: AS numbers, AS paths, communities, origins.
//
// These model the protocol as deployed in 1996/97 (RFC 1163 / RFC 1771 era):
// 16-bit AS numbers on the wire, AS_PATH with SEQUENCE and SET segments
// (SET appears when routes are aggregated), and RFC 1997 communities.
#pragma once

#include <algorithm>
#include <compare>
#include <cstdint>
#include <string>
#include <vector>

namespace iri::bgp {

// AS numbers were 16-bit in the measurement period; we keep a 32-bit carrier
// for arithmetic convenience but the codec enforces the 16-bit range.
using Asn = std::uint32_t;
inline constexpr Asn kMaxAsn = 0xFFFF;

// RFC 1997 community value (high 16 bits: AS, low 16 bits: local tag).
using Community = std::uint32_t;

// Handle into an AsPathTable (bgp/intern.h). Hash-consed: two ids from the
// same table are equal iff the paths are byte-equal, so the decision process
// and classifier compare ids instead of walking segments. Ids are
// table-local and assigned in insertion order — deterministic per partition,
// but never meaningful across tables or in any output.
using AsPathId = std::uint32_t;
inline constexpr AsPathId kInvalidAsPathId = 0xFFFFFFFF;

enum class Origin : std::uint8_t {
  kIgp = 0,         // NLRI is interior to the originating AS
  kEgp = 1,         // learned via EGP
  kIncomplete = 2,  // learned by some other means (typically redistribution)
};

// One segment of an AS_PATH. kSequence is an ordered traversal; kSet is an
// unordered bag produced by route aggregation.
struct AsPathSegment {
  enum class Type : std::uint8_t { kSet = 1, kSequence = 2 };

  Type type = Type::kSequence;
  std::vector<Asn> asns;

  friend bool operator==(const AsPathSegment&, const AsPathSegment&) = default;
  friend auto operator<=>(const AsPathSegment&, const AsPathSegment&) = default;
};

// A full AS_PATH attribute: a list of segments. Provides the operations the
// decision process and loop detection need.
class AsPath {
 public:
  AsPath() = default;

  // Convenience: builds a single-SEQUENCE path (the overwhelmingly common
  // shape in practice and in our simulations).
  static AsPath Sequence(std::vector<Asn> asns) {
    AsPath p;
    if (!asns.empty()) {
      p.segments_.push_back(
          {AsPathSegment::Type::kSequence, std::move(asns)});
    }
    return p;
  }

  // Prepends `asn` to the path, as a border router does when advertising to
  // an external peer. Extends the leading SEQUENCE segment or creates one.
  void Prepend(Asn asn) {
    if (segments_.empty() ||
        segments_.front().type != AsPathSegment::Type::kSequence) {
      segments_.insert(segments_.begin(),
                       {AsPathSegment::Type::kSequence, {asn}});
    } else {
      auto& seq = segments_.front().asns;
      seq.insert(seq.begin(), asn);
    }
  }

  // RFC 1163 loop detection: true if `asn` appears anywhere in the path.
  bool Contains(Asn asn) const {
    for (const auto& seg : segments_) {
      if (std::find(seg.asns.begin(), seg.asns.end(), asn) != seg.asns.end()) {
        return true;
      }
    }
    return false;
  }

  // Path length as used by the decision process: each SEQUENCE AS counts 1,
  // each SET segment counts 1 regardless of size (RFC 4271 9.1.2.2 rule,
  // which matches deployed behaviour in the measurement period).
  std::size_t DecisionLength() const {
    std::size_t n = 0;
    for (const auto& seg : segments_) {
      n += (seg.type == AsPathSegment::Type::kSequence) ? seg.asns.size() : 1;
    }
    return n;
  }

  // The neighboring AS (first AS of the first SEQUENCE), or 0 if none.
  Asn FirstAsn() const {
    for (const auto& seg : segments_) {
      if (seg.type == AsPathSegment::Type::kSequence && !seg.asns.empty()) {
        return seg.asns.front();
      }
    }
    return 0;
  }

  // The origin AS (last AS of the last SEQUENCE), or 0 if the path ends in a
  // SET (aggregated route with no single origin).
  Asn OriginAsn() const {
    if (segments_.empty()) return 0;
    const auto& last = segments_.back();
    if (last.type != AsPathSegment::Type::kSequence || last.asns.empty()) {
      return 0;
    }
    return last.asns.back();
  }

  bool empty() const { return segments_.empty(); }
  const std::vector<AsPathSegment>& segments() const { return segments_; }
  std::vector<AsPathSegment>& segments() { return segments_; }

  // "174 3561 701" or "174 {701,1239}" for SET segments.
  std::string ToString() const;

  friend bool operator==(const AsPath&, const AsPath&) = default;
  friend auto operator<=>(const AsPath&, const AsPath&) = default;

 private:
  std::vector<AsPathSegment> segments_;
};

std::string ToString(Origin origin);

}  // namespace iri::bgp
