// Route types shared by the RIB, the decision process, and the classifier.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

#include "bgp/attributes.h"
#include "netbase/ipv4.h"

namespace iri::bgp {

// Identifies a peering session at one collection point. The paper's
// per-peer statistics (Table 1, Figure 6) are keyed by this.
using PeerId = std::uint32_t;
inline constexpr PeerId kLocalPeer = 0xFFFFFFFF;  // locally-originated routes

// One announced route: a destination prefix and its attributes.
struct Route {
  Prefix prefix;
  PathAttributes attributes;

  friend bool operator==(const Route&, const Route&) = default;

  std::string ToString() const {
    return prefix.ToString() + " " + attributes.ToString();
  }
};

// The paper's forwarding tuple: (Prefix, NextHop, ASPATH). Two successive
// announcements with equal ForwardingKeys are duplicates (AADup) unless some
// other attribute changed (policy fluctuation). Hashable for the
// classifier's per-route state tables.
struct ForwardingKey {
  Prefix prefix;
  IPv4Address next_hop;
  AsPath as_path;

  static ForwardingKey Of(const Route& r) {
    return {r.prefix, r.attributes.next_hop, r.attributes.as_path};
  }

  friend bool operator==(const ForwardingKey&, const ForwardingKey&) = default;
};

// (Prefix, peer) pair: the unit of Figures 7 and 8 ("Prefix+AS").
struct PrefixPeer {
  Prefix prefix;
  PeerId peer = 0;

  friend bool operator==(const PrefixPeer&, const PrefixPeer&) = default;
  friend auto operator<=>(const PrefixPeer&, const PrefixPeer&) = default;
};

}  // namespace iri::bgp

template <>
struct std::hash<iri::bgp::PrefixPeer> {
  std::size_t operator()(const iri::bgp::PrefixPeer& pp) const noexcept {
    std::uint64_t x = std::hash<iri::Prefix>{}(pp.prefix);
    x ^= pp.peer + 0x9E3779B97F4A7C15ULL + (x << 6) + (x >> 2);
    return static_cast<std::size_t>(x);
  }
};

template <>
struct std::hash<iri::bgp::ForwardingKey> {
  std::size_t operator()(const iri::bgp::ForwardingKey& k) const noexcept {
    std::uint64_t x = std::hash<iri::Prefix>{}(k.prefix);
    x = x * 1099511628211ULL ^ k.next_hop.bits();
    for (const auto& seg : k.as_path.segments()) {
      x = x * 1099511628211ULL ^ static_cast<std::uint64_t>(seg.type);
      for (auto asn : seg.asns) x = x * 1099511628211ULL ^ asn;
    }
    return static_cast<std::size_t>(x);
  }
};
