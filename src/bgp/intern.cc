#include "bgp/intern.h"

namespace iri::bgp {
namespace {

constexpr std::uint64_t kFnvPrime = 1099511628211ULL;
constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;

std::uint64_t Mix(std::uint64_t h, std::uint64_t v) {
  return (h ^ v) * kFnvPrime;
}

}  // namespace

std::size_t HashAsPath(const AsPath& path) {
  std::uint64_t h = kFnvOffset;
  for (const auto& seg : path.segments()) {
    h = Mix(h, static_cast<std::uint64_t>(seg.type));
    h = Mix(h, seg.asns.size());
    for (Asn asn : seg.asns) h = Mix(h, asn);
  }
  return static_cast<std::size_t>(h);
}

std::size_t HashAttributes(const PathAttributes& attrs) {
  std::uint64_t h = static_cast<std::uint64_t>(HashAsPath(attrs.as_path));
  h = Mix(h, static_cast<std::uint64_t>(attrs.origin));
  h = Mix(h, attrs.next_hop.bits());
  h = Mix(h, attrs.med ? (1ULL << 32) | *attrs.med : 0);
  h = Mix(h, attrs.local_pref ? (1ULL << 32) | *attrs.local_pref : 0);
  h = Mix(h, attrs.atomic_aggregate ? 1 : 0);
  if (attrs.aggregator) {
    h = Mix(h, attrs.aggregator->asn);
    h = Mix(h, attrs.aggregator->router_id.bits());
  }
  for (Community c : attrs.communities) h = Mix(h, c);
  return static_cast<std::size_t>(h);
}

AsPathId AsPathTable::Intern(const AsPath& path) {
  auto it = lookup_.find(&path);
  if (it != lookup_.end()) return it->second;
  IRI_ASSERT(entries_.size() < kInvalidAsPathId, "AsPathTable id space exhausted");
  const AsPath* canonical = arena_.New<AsPath>(path);
  const AsPathId id = static_cast<AsPathId>(entries_.size());
  entries_.push_back(Entry{canonical,
                           static_cast<std::uint32_t>(canonical->DecisionLength()),
                           canonical->FirstAsn()});
  lookup_.emplace(canonical, id);
  return id;
}

AttrSetId PathAttributesTable::Intern(const PathAttributes& attrs) {
  auto it = lookup_.find(&attrs);
  if (it != lookup_.end()) return it->second;
  IRI_ASSERT(entries_.size() < kInvalidAttrSetId,
             "PathAttributesTable id space exhausted");
  const PathAttributes* canonical = arena_.New<PathAttributes>(attrs);
  const AttrSetId id = static_cast<AttrSetId>(entries_.size());
  entries_.push_back(
      Entry{canonical, canonical->next_hop, paths_.Intern(canonical->as_path)});
  lookup_.emplace(canonical, id);
  return id;
}

}  // namespace iri::bgp
