// Hash-consed AS-path and attribute-set tables (interning).
//
// At full paper scale (scale_denominator = 1: 42 k prefixes, millions of
// updates per simulated day) the simulator sees the same few thousand
// distinct AS paths and attribute sets over and over. Interning each
// distinct value once turns the hot comparisons — AS-path length and
// neighbor AS in the decision process, forwarding-tuple and exact-duplicate
// checks in the classifier — into integer compares against precomputed
// metadata, and turns per-update deep copies into id copies.
//
// Determinism argument (see DESIGN.md §12): ids are assigned in insertion
// order, so for a fixed update stream the (value → id) mapping is a pure
// function of the stream. The unordered lookup maps are only ever probed
// (find/emplace); nothing iterates them, so their bucket order can never
// reach a digest or any other output. Canonical values live in an Arena
// owned by the table: block addresses are stable for the table's lifetime,
// which is what lets entries hold plain pointers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "bgp/attributes.h"
#include "bgp/types.h"
#include "core/arena.h"
#include "core/invariants.h"
#include "netbase/ipv4.h"

namespace iri::bgp {

// Handle into a PathAttributesTable. Same contract as AsPathId: equal ids
// ⟺ byte-equal attribute sets, table-local, insertion-ordered.
using AttrSetId = std::uint32_t;
inline constexpr AttrSetId kInvalidAttrSetId = 0xFFFFFFFF;

// Structural hashes (FNV-1a over the value's canonical fields). Process-local
// only — never emitted, so the constants can change freely.
std::size_t HashAsPath(const AsPath& path);
std::size_t HashAttributes(const PathAttributes& attrs);

// Interned AS paths with the decision-process metadata precomputed per
// distinct path: DecisionLength (ladder step 2) and FirstAsn (the MED
// comparability gate). One table per Rib, i.e. per partition — no sharing,
// no locks.
class AsPathTable {
 public:
  // Pre-size the probe table: a border router at paper scale sees a few
  // hundred to a few thousand distinct paths, and rehashing mid-run is pure
  // overhead (bucket order is inert either way).
  AsPathTable() { lookup_.reserve(1024); }
  AsPathTable(const AsPathTable&) = delete;
  AsPathTable& operator=(const AsPathTable&) = delete;

  // Returns the id for `path`, inserting a canonical copy on first sight.
  AsPathId Intern(const AsPath& path);

  const AsPath& Get(AsPathId id) const {
    IRI_ASSERT(id < entries_.size(), "AsPathId out of range");
    return *entries_[id].path;
  }
  std::uint32_t DecisionLength(AsPathId id) const {
    IRI_ASSERT(id < entries_.size(), "AsPathId out of range");
    return entries_[id].decision_length;
  }
  Asn FirstAsn(AsPathId id) const {
    IRI_ASSERT(id < entries_.size(), "AsPathId out of range");
    return entries_[id].first_asn;
  }

  std::size_t size() const { return entries_.size(); }
  std::size_t arena_bytes() const { return arena_.bytes_allocated(); }

 private:
  struct Entry {
    const AsPath* path;  // canonical copy, arena-owned
    std::uint32_t decision_length;
    Asn first_asn;
  };
  struct PtrHash {
    std::size_t operator()(const AsPath* p) const { return HashAsPath(*p); }
  };
  struct PtrEq {
    bool operator()(const AsPath* a, const AsPath* b) const { return *a == *b; }
  };

  std::vector<Entry> entries_;  // id-indexed, insertion order
  // Probed only (find/emplace) — never iterated, so bucket order is inert.
  std::unordered_map<const AsPath*, AsPathId, PtrHash, PtrEq> lookup_;
  core::Arena arena_{16 * 1024};
};

// Interned full attribute sets, for the classifier's per-route state. Each
// entry precomputes the forwarding tuple's non-prefix half (NEXT_HOP plus
// the interned AS path), so the paper's forwarding-instability vs.
// policy-fluctuation split becomes two integer compares.
class PathAttributesTable {
 public:
  PathAttributesTable() { lookup_.reserve(1024); }
  PathAttributesTable(const PathAttributesTable&) = delete;
  PathAttributesTable& operator=(const PathAttributesTable&) = delete;

  AttrSetId Intern(const PathAttributes& attrs);

  const PathAttributes& Get(AttrSetId id) const {
    IRI_ASSERT(id < entries_.size(), "AttrSetId out of range");
    return *entries_[id].attrs;
  }
  AsPathId PathId(AttrSetId id) const {
    IRI_ASSERT(id < entries_.size(), "AttrSetId out of range");
    return entries_[id].path_id;
  }

  // attrs(a).ForwardingEquivalent(attrs(b)), as integer compares.
  bool ForwardingEquivalent(AttrSetId a, AttrSetId b) const {
    IRI_ASSERT(a < entries_.size() && b < entries_.size(),
               "AttrSetId out of range");
    return entries_[a].next_hop == entries_[b].next_hop &&
           entries_[a].path_id == entries_[b].path_id;
  }

  std::size_t size() const { return entries_.size(); }
  std::size_t NumDistinctPaths() const { return paths_.size(); }
  std::size_t arena_bytes() const {
    return arena_.bytes_allocated() + paths_.arena_bytes();
  }

 private:
  struct Entry {
    const PathAttributes* attrs;  // canonical copy, arena-owned
    IPv4Address next_hop;
    AsPathId path_id;
  };
  struct PtrHash {
    std::size_t operator()(const PathAttributes* p) const {
      return HashAttributes(*p);
    }
  };
  struct PtrEq {
    bool operator()(const PathAttributes* a, const PathAttributes* b) const {
      return *a == *b;
    }
  };

  std::vector<Entry> entries_;  // id-indexed, insertion order
  // Probed only (find/emplace) — never iterated, so bucket order is inert.
  std::unordered_map<const PathAttributes*, AttrSetId, PtrHash, PtrEq> lookup_;
  AsPathTable paths_;
  core::Arena arena_{16 * 1024};
};

}  // namespace iri::bgp
