// BGP path attributes and their wire codec (RFC 1163 / RFC 4271 format).
//
// The paper's taxonomy hinges on the distinction between the forwarding
// tuple (Prefix, NEXT_HOP, AS_PATH) and "the other attributes" (MED,
// LOCAL_PREF, communities, ...): changes to the former are forwarding
// instability, changes confined to the latter are policy fluctuation.
// PathAttributes therefore exposes ForwardingEquivalent() alongside full
// equality.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "bgp/types.h"
#include "netbase/bytes.h"
#include "netbase/ipv4.h"

namespace iri::bgp {

// Attribute type codes actually used in the measurement period.
enum class AttrType : std::uint8_t {
  kOrigin = 1,
  kAsPath = 2,
  kNextHop = 3,
  kMultiExitDisc = 4,
  kLocalPref = 5,
  kAtomicAggregate = 6,
  kAggregator = 7,
  kCommunity = 8,
};

// AGGREGATOR attribute payload: who formed the aggregate.
struct Aggregator {
  Asn asn = 0;
  IPv4Address router_id;

  friend bool operator==(const Aggregator&, const Aggregator&) = default;
  friend auto operator<=>(const Aggregator&, const Aggregator&) = default;
};

// The decoded attribute set carried by a BGP UPDATE. Mandatory well-known
// attributes (ORIGIN, AS_PATH, NEXT_HOP) are plain members; optional ones
// are std::optional / vector.
struct PathAttributes {
  Origin origin = Origin::kIgp;
  AsPath as_path;
  IPv4Address next_hop;
  std::optional<std::uint32_t> med;
  std::optional<std::uint32_t> local_pref;
  bool atomic_aggregate = false;
  std::optional<Aggregator> aggregator;
  std::vector<Community> communities;  // kept sorted by the codec

  // True when the (NEXT_HOP, AS_PATH) pair matches: together with the prefix
  // this is the paper's forwarding tuple. Two announcements that are
  // ForwardingEquivalent but differ elsewhere are policy fluctuation;
  // two identical announcements are the AADup pathology.
  bool ForwardingEquivalent(const PathAttributes& other) const {
    return next_hop == other.next_hop && as_path == other.as_path;
  }

  friend bool operator==(const PathAttributes&, const PathAttributes&) = default;

  // Restores the default-constructed state while keeping the communities
  // buffer's capacity — decode-scratch support for the router's receive
  // path, which reuses one PathAttributes across every inbound UPDATE.
  void ResetForDecode() {
    origin = Origin::kIgp;
    as_path = AsPath{};
    next_hop = IPv4Address{};
    med.reset();
    local_pref.reset();
    atomic_aggregate = false;
    aggregator.reset();
    communities.clear();
  }

  std::string ToString() const;
};

// Serializes the attribute set in canonical wire form (ascending type code,
// communities sorted). Returns the raw "Path Attributes" field of an UPDATE.
void EncodeAttributes(const PathAttributes& attrs, ByteWriter& out);

// Decodes a Path Attributes field. On malformed input poisons `in` and
// returns a partially-filled struct (callers must check in.ok()).
PathAttributes DecodeAttributes(ByteReader& in, std::size_t total_len);

// In-place variant: decodes into `attrs`, which the caller must have reset
// (ResetForDecode or fresh). Reuses the communities buffer.
void DecodeAttributesInto(ByteReader& in, std::size_t total_len,
                          PathAttributes& attrs);

}  // namespace iri::bgp
