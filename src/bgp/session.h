// BGP session finite-state machine (RFC 1163 §6 / RFC 4271 §8).
//
// Pure and time-parametric: callers inject the current simulated time with
// every event and collect output actions; the FSM never does I/O and owns no
// timers — it only tracks deadlines, which the simulator polls via
// NextDeadline(). This is what makes flap-storm dynamics reproducible: a
// router whose CPU is saturated simply fails to call OnTimer in time to
// refresh keepalives, and its peers' hold timers do the rest.
//
// States kConnect/kActive are collapsed into a single kConnect (the split in
// the RFC concerns TCP retry details the simulator models at the link layer).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bgp/message.h"
#include "netbase/time.h"
#include "obs/trace.h"

namespace iri::bgp {

enum class SessionState : std::uint8_t {
  kIdle,
  kConnect,
  kOpenSent,
  kOpenConfirm,
  kEstablished,
};
inline constexpr std::size_t kNumSessionStates = 5;

// True when a single public FSM event may move a session from `from` to
// `to`. This is the legal-transition matrix the runtime audit (and the FSM
// property tests) check every handler against; e.g. nothing may jump from
// Idle or Connect straight to Established without an OPEN/KEEPALIVE
// exchange passing through OpenSent/OpenConfirm.
bool IsLegalTransition(SessionState from, SessionState to);

struct SessionConfig {
  Asn local_asn = 0;
  IPv4Address router_id;
  std::uint16_t hold_time_s = 90;  // proposed; negotiated down to peer's
  Duration connect_retry = Duration::Seconds(30);
};

class SessionFsm {
 public:
  // Actions the FSM asks its owner to perform.
  enum class ActionType : std::uint8_t {
    kSendOpen,
    kSendKeepAlive,
    kSendNotification,
    kSessionUp,    // entered Established
    kSessionDown,  // left Established (reason in `notification`)
  };
  struct Action {
    ActionType type;
    NotificationMessage notification;  // valid for kSendNotification/kSessionDown
  };
  using Actions = std::vector<Action>;

  explicit SessionFsm(SessionConfig config) : config_(config) {}

  SessionState state() const { return state_; }
  std::uint16_t negotiated_hold_time_s() const { return negotiated_hold_s_; }

  // Attaches the trace sink for state transitions. `label` names this
  // session in the stream (the simulator uses "<router>/<peer>"); every
  // observed from != to transition emits an "fsm" event. Null detaches.
  void SetTracer(obs::Tracer* tracer, std::string label) {
    tracer_ = tracer;
    label_ = std::move(label);
  }

  // Administrative start: Idle -> Connect (transport setup begins).
  void Start(TimePoint now, Actions& out);

  // Administrative stop: sends Cease if up, returns to Idle.
  void Stop(TimePoint now, Actions& out);

  // Transport (TCP) connected / lost.
  void OnTransportUp(TimePoint now, Actions& out);
  void OnTransportDown(TimePoint now, Actions& out);

  // A decoded message arrived from the peer. UPDATE payloads are the
  // owner's business; the FSM only validates sequencing and refreshes the
  // hold timer.
  void OnMessage(TimePoint now, const Message& msg, Actions& out);

  // Fires any expired timers. The owner must call this at (or after) every
  // NextDeadline(). Late calls model CPU starvation faithfully: a hold
  // deadline that passed while the router was busy still tears the session
  // down, just later.
  void OnTimer(TimePoint now, Actions& out);

  // Earliest pending deadline, or TimePoint::Max() when none.
  TimePoint NextDeadline() const;

 private:
  // RAII audit for public event handlers: captures the state on entry,
  // IRI_ASSERTs the (entry, exit) pair against IsLegalTransition when the
  // handler returns, and emits an "fsm" trace event on every observed
  // state change.
  class TransitionAudit {
   public:
    TransitionAudit(const SessionFsm& fsm, TimePoint now)
        : fsm_(fsm), from_(fsm.state_), now_(now) {}
    ~TransitionAudit();
    TransitionAudit(const TransitionAudit&) = delete;
    TransitionAudit& operator=(const TransitionAudit&) = delete;

   private:
    const SessionFsm& fsm_;
    SessionState from_;
    TimePoint now_;
  };

  void EnterConnect(TimePoint now);
  void TearDown(TimePoint now, NotifyCode code, Actions& out);
  // Common OPEN validation/negotiation for OpenSent (and the passive-open
  // path out of Connect).
  void HandlePeerOpen(TimePoint now, const OpenMessage& open, Actions& out);
  Duration KeepaliveInterval() const {
    return Duration::Seconds(negotiated_hold_s_ / 3.0);
  }

  SessionConfig config_;
  SessionState state_ = SessionState::kIdle;
  std::uint16_t negotiated_hold_s_ = 0;
  obs::Tracer* tracer_ = nullptr;
  std::string label_;

  TimePoint hold_deadline_ = TimePoint::Max();
  TimePoint keepalive_deadline_ = TimePoint::Max();
  TimePoint connect_retry_deadline_ = TimePoint::Max();
};

const char* ToString(SessionState s);

}  // namespace iri::bgp
