#include "bgp/policy.h"

#include <algorithm>

namespace iri::bgp {

bool MatchSpec::Matches(const Route& route) const {
  const Prefix& p = route.prefix;
  if (exact && !(p == *exact)) return false;
  if (covered_by && !covered_by->Covers(p)) return false;
  if (p.length() < min_length || p.length() > max_length) return false;
  if (path_contains && !route.attributes.as_path.Contains(*path_contains)) {
    return false;
  }
  if (origin_as && route.attributes.as_path.OriginAsn() != *origin_as) {
    return false;
  }
  if (neighbor_as && route.attributes.as_path.FirstAsn() != *neighbor_as) {
    return false;
  }
  if (has_community) {
    const auto& cs = route.attributes.communities;
    if (std::find(cs.begin(), cs.end(), *has_community) == cs.end()) {
      return false;
    }
  }
  if (path_regex && !path_regex->Matches(route.attributes.as_path)) {
    return false;
  }
  return true;
}

void ActionSpec::ApplyTo(Route& route) const {
  if (set_local_pref) route.attributes.local_pref = *set_local_pref;
  if (set_med) route.attributes.med = *set_med;
  if (clear_med) route.attributes.med.reset();
  for (std::uint8_t i = 0; i < prepend_count; ++i) {
    route.attributes.as_path.Prepend(prepend_asn);
  }
  if (strip_communities) route.attributes.communities.clear();
  for (Community c : add_communities) {
    auto& cs = route.attributes.communities;
    if (std::find(cs.begin(), cs.end(), c) == cs.end()) cs.push_back(c);
  }
  std::sort(route.attributes.communities.begin(),
            route.attributes.communities.end());
}

std::optional<Route> Policy::Apply(const Route& route) const {
  Route out = route;
  if (!ApplyInPlace(out)) return std::nullopt;
  return out;
}

bool Policy::ApplyInPlace(Route& route) const {
  for (const PolicyRule& rule : rules_) {
    if (!rule.match.Matches(route)) continue;
    if (rule.action.deny) return false;
    rule.action.ApplyTo(route);
    return true;
  }
  return default_accept_;
}

}  // namespace iri::bgp
