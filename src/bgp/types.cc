#include "bgp/types.h"

namespace iri::bgp {

std::string AsPath::ToString() const {
  std::string out;
  for (const auto& seg : segments_) {
    if (!out.empty()) out.push_back(' ');
    const bool set = seg.type == AsPathSegment::Type::kSet;
    if (set) out.push_back('{');
    for (std::size_t i = 0; i < seg.asns.size(); ++i) {
      if (i > 0) out.push_back(set ? ',' : ' ');
      out += std::to_string(seg.asns[i]);
    }
    if (set) out.push_back('}');
  }
  return out;
}

std::string ToString(Origin origin) {
  switch (origin) {
    case Origin::kIgp: return "IGP";
    case Origin::kEgp: return "EGP";
    case Origin::kIncomplete: return "INCOMPLETE";
  }
  return "?";
}

}  // namespace iri::bgp
