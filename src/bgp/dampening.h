// BGP route flap dampening, after Villamizar/Chandra/Govindan
// (draft-ietf-idr-route-dampen, later RFC 2439) — the mitigation the paper
// discusses in §3 and warns can "introduce artificial connectivity problems".
//
// Each (peer, prefix) accumulates a figure-of-merit penalty on every flap;
// the penalty decays exponentially. When it crosses the suppress threshold
// the route is held down (updates ignored for route selection) until decay
// brings it under the reuse threshold or the maximum hold time elapses.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "bgp/route.h"
#include "netbase/time.h"
#include "obs/trace.h"

namespace iri::bgp {

struct DampeningParams {
  double withdrawal_penalty = 1000.0;
  double readvertisement_penalty = 0.0;    // announce after withdraw
  double attribute_change_penalty = 500.0; // implicit withdraw (path change)
  double suppress_threshold = 2000.0;
  double reuse_threshold = 750.0;
  Duration half_life = Duration::Minutes(15);
  Duration max_hold_time = Duration::Minutes(60);

  // Ceiling on accumulated penalty, per the draft: the penalty that would
  // decay to the reuse threshold in exactly max_hold_time.
  double MaxPenalty() const;
};

// What the dampener decided about one update.
enum class DampVerdict : std::uint8_t {
  kPass,        // route not suppressed; process normally
  kSuppressed,  // route just crossed into suppression
  kStillDamped, // route remains suppressed; update must be ignored
};

class Dampener {
 public:
  explicit Dampener(DampeningParams params = {}) : params_(params) {}

  // Records a flap event and returns the verdict for this update.
  // `attribute_change` distinguishes an implicit withdraw (AADiff) from an
  // explicit withdrawal.
  DampVerdict OnWithdraw(const PrefixPeer& key, TimePoint now);
  DampVerdict OnAnnounce(const PrefixPeer& key, TimePoint now,
                         bool attribute_change);

  // True if the route is currently held down (after decay at `now`).
  bool IsSuppressed(const PrefixPeer& key, TimePoint now);

  // Current decayed penalty; 0 when the route has no history.
  double Penalty(const PrefixPeer& key, TimePoint now);

  // When a suppressed route will next be usable, assuming no further flaps.
  // Returns `now` when the route is not suppressed.
  TimePoint ReuseTime(const PrefixPeer& key, TimePoint now);

  // Drops state whose penalty has decayed below half the reuse threshold
  // (the draft's garbage-collection rule). Returns entries removed.
  std::size_t Sweep(TimePoint now);

  std::size_t TrackedRoutes() const { return state_.size(); }
  const DampeningParams& params() const { return params_; }

  // Emits damp_suppress / damp_release trace events (obs/trace.h) for every
  // suppression transition. Null (the default) disables the sites; the
  // tracer is not owned and must outlive the dampener.
  void SetTracer(obs::Tracer* tracer) { trace_ = tracer; }

 private:
  struct RouteState {
    double penalty = 0.0;
    TimePoint last_update;
    bool suppressed = false;
    TimePoint suppressed_since;
  };

  // Applies exponential decay in place and re-evaluates suppression exit
  // (emitting damp_release on the way out; the key is only for the trace).
  void Decay(const PrefixPeer& key, RouteState& st, TimePoint now);
  DampVerdict AddPenalty(const PrefixPeer& key, TimePoint now, double amount);

  DampeningParams params_;
  std::unordered_map<PrefixPeer, RouteState> state_;
  obs::Tracer* trace_ = nullptr;
};

}  // namespace iri::bgp
