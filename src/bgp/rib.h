// Routing Information Base: per-peer Adj-RIBs-In merged into a Loc-RIB by
// the decision process.
//
// The Rib is a pure routing-table machine with no notion of time or I/O;
// the simulator's Router owns one and feeds it decoded UPDATEs. Every
// mutation reports whether the *best* route for the prefix changed, which is
// exactly the signal the export machinery (and the paper's notion of
// forwarding instability) cares about.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bgp/decision.h"
#include "bgp/intern.h"
#include "bgp/route.h"
#include "netbase/probe_map.h"
#include "netbase/radix_trie.h"
#include "netbase/shard.h"
#include "obs/profile.h"

namespace iri::bgp {

// Outcome of applying one route event to the RIB.
struct RibChange {
  // True if the Loc-RIB entry for the prefix changed (new best, different
  // best attributes, or loss of all routes).
  bool best_changed = false;
  // The new best route, or nullptr if the prefix is now unreachable. Points
  // into the RIB's own storage: valid only until the next mutation of this
  // Rib (the allocation-free replacement for the std::optional<Candidate>
  // deep copy this used to be — Announce/Withdraw are the hottest calls in
  // the full-paper-scale run).
  const Candidate* new_best = nullptr;
};

class Rib {
 public:
  // Pre-size the probed-only exact-match index: a border router at paper
  // scale tracks tens of thousands of prefixes, and the early rehash
  // cascade shows up in the full-paper profile.
  Rib() { index_.Reserve(1 << 12); }

  // Registers a peer before routes from it can be accepted. `router_id` is
  // used for the final decision tie-break.
  void AddPeer(PeerId peer, IPv4Address router_id);

  bool HasPeer(PeerId peer) const { return peers_.contains(peer); }

  // Resolves the rib.announce / rib.withdraw / rib.lookup profile sites
  // against a (partition-private) registry. Null detaches.
  void AttachProfile(obs::Registry* registry) {
    if (registry == nullptr) {
      announce_site_ = withdraw_site_ = lookup_site_ = obs::ProfileSite{};
      return;
    }
    announce_site_ = obs::MakeProfileSite(*registry, "rib.announce");
    withdraw_site_ = obs::MakeProfileSite(*registry, "rib.withdraw");
    lookup_site_ = obs::MakeProfileSite(*registry, "rib.lookup");
  }

  // Applies an announcement from `peer`. Replaces any previous route from
  // the same peer for the same prefix (implicit withdrawal).
  RibChange Announce(PeerId peer, Route route);

  // Copy-avoiding variant for the hot update path: callers that hold a
  // long-lived attribute set (e.g. one decoded UPDATE fanned out over many
  // NLRI prefixes) pass it by reference and the RIB copy-assigns into
  // recycled candidate storage — a flapping route that re-announces the
  // same path shape settles into zero allocations per cycle.
  RibChange Announce(PeerId peer, const Prefix& prefix,
                     const PathAttributes& attrs);

  // Applies an explicit withdrawal. A withdrawal for a route the peer never
  // announced is a no-op (this is how WWDup pathologies look to a receiver).
  RibChange Withdraw(PeerId peer, const Prefix& prefix);

  // Drops every route learned from `peer` (session loss). Returns the
  // prefixes whose best route changed; callers re-read Best() for the new
  // state (every existing caller only needed the prefix list).
  std::vector<Prefix> ClearPeer(PeerId peer);

  // Current best route for `prefix`, or nullptr if unreachable.
  const Candidate* Best(const Prefix& prefix) const;

  // All candidates currently held for `prefix` (used by the multihoming
  // census and by tests).
  std::vector<Candidate> CandidatesFor(const Prefix& prefix) const;

  // Number of distinct prefixes with at least one path. (Withdrawn-to-empty
  // entries linger in the trie as tombstones so a flap cycle reuses their
  // storage; they are excluded here and skipped by every visitor.)
  std::size_t NumPrefixes() const { return num_prefixes_; }

  // Number of routes (prefix, peer) pairs in all Adj-RIBs-In.
  std::size_t NumRoutes() const { return num_routes_; }

  // Number of prefixes learned from `peer`.
  std::size_t PeerRouteCount(PeerId peer) const;

  // The hash-consed AS-path table backing the decision fast path. Exposed
  // for tests and for the full-paper bench's memory report.
  const AsPathTable& paths() const { return paths_; }

  // Full O(routes) structural audit of the Adj-RIB-In bookkeeping:
  // num_routes_ equals both the per-peer index total and the table's
  // candidate count, num_prefixes_ equals the live entry count, every live
  // entry has a valid best index (tombstones have none), and no entry holds
  // two routes from the same peer. Returns true when
  // consistent (and IRI_ASSERTs each clause, so under the default abort
  // policy a false return is unreachable). Called by tests and by debug
  // builds after every ClearPeer.
  bool AuditInvariants() const;

  // Visits (prefix, best candidate) over the whole Loc-RIB in address order.
  template <typename Fn>
  void VisitBest(Fn&& fn) const {
    table_.Visit([&fn](const Prefix& p, const Entry& e) {
      if (e.best >= 0) fn(p, e.candidates[static_cast<std::size_t>(e.best)]);
    });
  }

  // Visits (prefix, number of distinct paths) — Figure 10's multihoming
  // census runs on this.
  template <typename Fn>
  void VisitPathCounts(Fn&& fn) const {
    table_.Visit([&fn](const Prefix& p, const Entry& e) {
      if (!e.candidates.empty()) fn(p, e.candidates.size());
    });
  }

  // VisitBest restricted to the prefixes `map` assigns to `shard`, still in
  // address order. Running this for shards 0..N-1 visits exactly the
  // prefixes VisitBest does, each once — the shard-coverage property the
  // shard-merge test suite pins.
  template <typename Fn>
  void VisitBestSharded(const ShardMap& map, int shard, Fn&& fn) const {
    table_.Visit([&map, shard, &fn](const Prefix& p, const Entry& e) {
      if (e.best >= 0 && map.ShardOf(p) == shard) {
        fn(p, e.candidates[static_cast<std::size_t>(e.best)]);
      }
    });
  }

 private:
  struct Entry {
    std::vector<Candidate> candidates;
    int best = -1;  // index into candidates, -1 when empty
    // Withdrawn candidates parked for reuse: their attribute buffers keep
    // their capacity, so the withdraw→announce flap cycle — the workload's
    // dominant pattern — recycles storage instead of churning the heap.
    // Bounded by the number of peers that ever announced the prefix.
    std::vector<Candidate> pool;
  };

  RadixTrie<Entry> table_;
  // Exact-match accelerator over the trie: one flat probe instead of a
  // length()-deep pointer chase, on every Announce/Withdraw/Best. Entry
  // pointers are stable because entries are never erased (tombstones), and
  // ProbeMap has no iteration API, so its slot order cannot reach any
  // output. Address-order visitation stays on the trie.
  ProbeMap<Prefix, Entry*> index_;
  std::unordered_map<PeerId, IPv4Address> peers_;
  std::unordered_map<PeerId, std::unordered_set<Prefix>> peer_prefixes_;
  AsPathTable paths_;
  std::size_t num_routes_ = 0;
  std::size_t num_prefixes_ = 0;  // live (non-tombstone) entries
  obs::ProfileSite announce_site_;
  obs::ProfileSite withdraw_site_;
  obs::ProfileSite lookup_site_;
};

}  // namespace iri::bgp
