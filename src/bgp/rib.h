// Routing Information Base: per-peer Adj-RIBs-In merged into a Loc-RIB by
// the decision process.
//
// The Rib is a pure routing-table machine with no notion of time or I/O;
// the simulator's Router owns one and feeds it decoded UPDATEs. Every
// mutation reports whether the *best* route for the prefix changed, which is
// exactly the signal the export machinery (and the paper's notion of
// forwarding instability) cares about.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bgp/decision.h"
#include "bgp/route.h"
#include "netbase/radix_trie.h"
#include "obs/profile.h"

namespace iri::bgp {

// Outcome of applying one route event to the RIB.
struct RibChange {
  // True if the Loc-RIB entry for the prefix changed (new best, different
  // best attributes, or loss of all routes).
  bool best_changed = false;
  // The new best route, or nullopt if the prefix is now unreachable.
  std::optional<Candidate> new_best;
};

class Rib {
 public:
  // Registers a peer before routes from it can be accepted. `router_id` is
  // used for the final decision tie-break.
  void AddPeer(PeerId peer, IPv4Address router_id);

  bool HasPeer(PeerId peer) const { return peers_.contains(peer); }

  // Resolves the rib.announce / rib.withdraw / rib.lookup profile sites
  // against a (partition-private) registry. Null detaches.
  void AttachProfile(obs::Registry* registry) {
    if (registry == nullptr) {
      announce_site_ = withdraw_site_ = lookup_site_ = obs::ProfileSite{};
      return;
    }
    announce_site_ = obs::MakeProfileSite(*registry, "rib.announce");
    withdraw_site_ = obs::MakeProfileSite(*registry, "rib.withdraw");
    lookup_site_ = obs::MakeProfileSite(*registry, "rib.lookup");
  }

  // Applies an announcement from `peer`. Replaces any previous route from
  // the same peer for the same prefix (implicit withdrawal).
  RibChange Announce(PeerId peer, const Route& route);

  // Applies an explicit withdrawal. A withdrawal for a route the peer never
  // announced is a no-op (this is how WWDup pathologies look to a receiver).
  RibChange Withdraw(PeerId peer, const Prefix& prefix);

  // Drops every route learned from `peer` (session loss). Returns the
  // prefixes whose best route changed, with their new state.
  std::vector<std::pair<Prefix, RibChange>> ClearPeer(PeerId peer);

  // Current best route for `prefix`, or nullptr if unreachable.
  const Candidate* Best(const Prefix& prefix) const;

  // All candidates currently held for `prefix` (used by the multihoming
  // census and by tests).
  std::vector<Candidate> CandidatesFor(const Prefix& prefix) const;

  // Number of distinct prefixes with at least one path.
  std::size_t NumPrefixes() const { return table_.size(); }

  // Number of routes (prefix, peer) pairs in all Adj-RIBs-In.
  std::size_t NumRoutes() const { return num_routes_; }

  // Number of prefixes learned from `peer`.
  std::size_t PeerRouteCount(PeerId peer) const;

  // Full O(routes) structural audit of the Adj-RIB-In bookkeeping:
  // num_routes_ equals both the per-peer index total and the table's
  // candidate count, every entry is non-empty with a valid best index, and
  // no entry holds two routes from the same peer. Returns true when
  // consistent (and IRI_ASSERTs each clause, so under the default abort
  // policy a false return is unreachable). Called by tests and by debug
  // builds after every ClearPeer.
  bool AuditInvariants() const;

  // Visits (prefix, best candidate) over the whole Loc-RIB in address order.
  template <typename Fn>
  void VisitBest(Fn&& fn) const {
    table_.Visit([&fn](const Prefix& p, const Entry& e) {
      if (e.best >= 0) fn(p, e.candidates[static_cast<std::size_t>(e.best)]);
    });
  }

  // Visits (prefix, number of distinct paths) — Figure 10's multihoming
  // census runs on this.
  template <typename Fn>
  void VisitPathCounts(Fn&& fn) const {
    table_.Visit([&fn](const Prefix& p, const Entry& e) {
      fn(p, e.candidates.size());
    });
  }

 private:
  struct Entry {
    std::vector<Candidate> candidates;
    int best = -1;  // index into candidates, -1 when empty
  };

  // Re-runs the decision process on an entry; returns the change summary
  // comparing against `old_best`.
  RibChange Redecide(const Prefix& prefix, Entry& entry,
                     const std::optional<Candidate>& old_best);

  std::optional<Candidate> BestOf(const Entry& e) const {
    if (e.best < 0) return std::nullopt;
    return e.candidates[static_cast<std::size_t>(e.best)];
  }

  RadixTrie<Entry> table_;
  std::unordered_map<PeerId, IPv4Address> peers_;
  std::unordered_map<PeerId, std::unordered_set<Prefix>> peer_prefixes_;
  std::size_t num_routes_ = 0;
  obs::ProfileSite announce_site_;
  obs::ProfileSite withdraw_site_;
  obs::ProfileSite lookup_site_;
};

}  // namespace iri::bgp
