#include "bgp/aggregation.h"

#include <algorithm>
#include <map>
#include <set>

namespace iri::bgp {
namespace {

// Merges attributes of two forwarding-equivalent sibling routes.
PathAttributes MergeAttributes(const PathAttributes& a,
                               const PathAttributes& b) {
  PathAttributes out = a;
  if (a.origin != b.origin) out.origin = Origin::kIncomplete;
  if (a.med != b.med) out.med.reset();
  if (a.local_pref != b.local_pref) out.local_pref.reset();
  // Communities: intersection (only tags true of all components survive).
  std::vector<Community> common;
  std::set_intersection(a.communities.begin(), a.communities.end(),
                        b.communities.begin(), b.communities.end(),
                        std::back_inserter(common));
  out.communities = std::move(common);
  return out;
}

}  // namespace

std::vector<Route> AggregateSiblings(std::vector<Route> routes) {
  // Ordered map gives address order and puts siblings adjacent.
  std::map<Prefix, PathAttributes> table;
  for (auto& r : routes) table[r.prefix] = std::move(r.attributes);

  // Iterate to fixpoint; each pass merges at least one sibling pair or
  // terminates. Work from longest prefixes up so merges cascade.
  bool merged = true;
  while (merged) {
    merged = false;
    for (auto it = table.begin(); it != table.end(); ++it) {
      const Prefix& p = it->first;
      if (p.length() == 0) continue;
      const Prefix parent = p.Parent();
      const Prefix lower = parent.LowerHalf();
      const Prefix upper = parent.UpperHalf();
      if (!(p == lower)) continue;  // visit each pair once, from its low half
      auto upper_it = table.find(upper);
      if (upper_it == table.end()) continue;
      if (!it->second.ForwardingEquivalent(upper_it->second)) continue;
      if (table.contains(parent)) continue;  // parent already announced
      PathAttributes merged_attrs =
          MergeAttributes(it->second, upper_it->second);
      table.erase(upper_it);
      table.erase(it);
      table.emplace(parent, std::move(merged_attrs));
      merged = true;
      break;  // iterators invalidated; restart the scan
    }
  }

  std::vector<Route> out;
  out.reserve(table.size());
  for (auto& [prefix, attrs] : table) out.push_back({prefix, std::move(attrs)});
  return out;
}

std::optional<Route> AggregateIntoBlock(const Prefix& block,
                                        const std::vector<Route>& components,
                                        Asn aggregator_asn,
                                        IPv4Address aggregator_id,
                                        IPv4Address next_hop,
                                        [[maybe_unused]] obs::Tracer* trace,
                                        [[maybe_unused]] TimePoint now) {
  std::set<Asn> foreign_origins;
  std::uint64_t covered = 0;
  Origin origin = Origin::kIgp;
  for (const Route& r : components) {
    if (!block.Covers(r.prefix)) continue;
    ++covered;
    if (r.attributes.origin > origin) origin = r.attributes.origin;
    const Asn o = r.attributes.as_path.OriginAsn();
    if (o != 0 && o != aggregator_asn) foreign_origins.insert(o);
  }
  if (covered == 0) return std::nullopt;
  IRI_TRACE(trace, now, "aggregate_emit",
            .Str("block", block.ToString())
                .U64("aggregator", aggregator_asn)
                .U64("components", covered)
                .U64("foreign_origins", foreign_origins.size()));

  Route aggregate;
  aggregate.prefix = block;
  aggregate.attributes.origin = origin;
  aggregate.attributes.next_hop = next_hop;
  aggregate.attributes.atomic_aggregate = true;
  aggregate.attributes.aggregator = Aggregator{aggregator_asn, aggregator_id};
  AsPath path = AsPath::Sequence({aggregator_asn});
  if (!foreign_origins.empty()) {
    AsPathSegment set_seg;
    set_seg.type = AsPathSegment::Type::kSet;
    set_seg.asns.assign(foreign_origins.begin(), foreign_origins.end());
    path.segments().push_back(std::move(set_seg));
  }
  aggregate.attributes.as_path = std::move(path);
  return aggregate;
}

}  // namespace iri::bgp
