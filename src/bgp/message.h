// BGP-4 message types and wire codec (RFC 1163 / RFC 4271 framing).
//
// A message is the unit the route servers logged: the paper's counts of
// "updates" are prefix events extracted from UPDATE messages (a single
// UPDATE can carry many withdrawn prefixes and many NLRI entries — Table 1's
// millions of withdrawals arrived packed this way).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "bgp/attributes.h"
#include "netbase/bytes.h"
#include "netbase/ipv4.h"

namespace iri::bgp {

inline constexpr std::size_t kHeaderSize = 19;     // marker + length + type
inline constexpr std::size_t kMaxMessageSize = 4096;

enum class MessageType : std::uint8_t {
  kOpen = 1,
  kUpdate = 2,
  kNotification = 3,
  kKeepAlive = 4,
};

struct OpenMessage {
  std::uint8_t version = 4;
  Asn asn = 0;
  std::uint16_t hold_time_s = 180;
  IPv4Address bgp_identifier;

  friend bool operator==(const OpenMessage&, const OpenMessage&) = default;
};

// An UPDATE: withdrawn prefixes plus (attributes, NLRI) announcements.
// Either part may be empty; both empty is the "End-of-RIB"-like no-op that
// real implementations occasionally emit and the classifier must tolerate.
struct UpdateMessage {
  std::vector<Prefix> withdrawn;
  PathAttributes attributes;  // meaningful only when nlri is non-empty
  std::vector<Prefix> nlri;

  bool HasAnnouncements() const { return !nlri.empty(); }

  friend bool operator==(const UpdateMessage&, const UpdateMessage&) = default;
};

// NOTIFICATION error codes (RFC 4271 §4.5) — the subset the simulator emits.
enum class NotifyCode : std::uint8_t {
  kMessageHeaderError = 1,
  kOpenMessageError = 2,
  kUpdateMessageError = 3,
  kHoldTimerExpired = 4,
  kFsmError = 5,
  kCease = 6,
};

struct NotificationMessage {
  NotifyCode code = NotifyCode::kCease;
  std::uint8_t subcode = 0;

  friend bool operator==(const NotificationMessage&,
                         const NotificationMessage&) = default;
};

struct KeepAliveMessage {
  friend bool operator==(const KeepAliveMessage&,
                         const KeepAliveMessage&) = default;
};

using Message =
    std::variant<OpenMessage, UpdateMessage, NotificationMessage,
                 KeepAliveMessage>;

MessageType TypeOf(const Message& msg);
std::string ToString(const Message& msg);

// Serializes a message including the 19-byte header. Never produces more
// than kMaxMessageSize bytes; callers (the update packer) are responsible
// for splitting over-large UPDATEs beforehand.
std::vector<std::uint8_t> Encode(const Message& msg);

// Decodes one message from `wire`. Returns nullopt on any framing or
// semantic error (bad marker, bad length, truncated body, unknown type).
std::optional<Message> Decode(std::span<const std::uint8_t> wire);

// Decode-scratch fast path for the dominant wire type: decodes an UPDATE
// into `out`, reusing its withdrawn/nlri/communities buffers instead of
// allocating fresh ones per message. Returns false for non-UPDATE messages
// and for anything Decode() would reject; `out` may then hold partial
// contents and must not be read. Validation mirrors Decode() exactly.
bool DecodeUpdateInto(std::span<const std::uint8_t> wire, UpdateMessage& out);

// Prefix <-> NLRI wire helpers, shared with the MRT log codec.
void EncodeNlriPrefix(const Prefix& p, ByteWriter& out);
std::optional<Prefix> DecodeNlriPrefix(ByteReader& in);

// Conservative bound on the encoded size of an UPDATE with the given
// contents; the update packer uses it to split messages at 4096 bytes.
std::size_t EstimateUpdateSize(const UpdateMessage& update);

}  // namespace iri::bgp
