#include "bgp/message.h"

#include <algorithm>

namespace iri::bgp {
namespace {

// All-ones marker required by RFC 1163 (pre-authentication era).
void WriteMarker(ByteWriter& out) {
  for (int i = 0; i < 16; ++i) out.U8(0xFF);
}

bool ReadAndCheckMarker(ByteReader& in) {
  auto marker = in.Bytes(16);
  if (marker.size() != 16) return false;
  return std::all_of(marker.begin(), marker.end(),
                     [](std::uint8_t b) { return b == 0xFF; });
}

void EncodeUpdateBody(const UpdateMessage& u, ByteWriter& out) {
  // Withdrawn routes, preceded by their byte length (back-patched).
  const std::size_t withdrawn_len_at = out.size();
  out.U16(0);
  const std::size_t withdrawn_start = out.size();
  for (const Prefix& p : u.withdrawn) EncodeNlriPrefix(p, out);
  out.PatchU16(withdrawn_len_at,
               static_cast<std::uint16_t>(out.size() - withdrawn_start));

  // Path attributes, preceded by their byte length (back-patched). Per RFC,
  // attributes are omitted entirely when there is no NLRI.
  const std::size_t attrs_len_at = out.size();
  out.U16(0);
  if (!u.nlri.empty()) {
    const std::size_t attrs_start = out.size();
    EncodeAttributes(u.attributes, out);
    out.PatchU16(attrs_len_at,
                 static_cast<std::uint16_t>(out.size() - attrs_start));
  }

  for (const Prefix& p : u.nlri) EncodeNlriPrefix(p, out);
}

// Writes the decoded body into `u`, whose buffers (withdrawn/nlri/
// communities) keep their capacity — the router's receive path reuses one
// UpdateMessage across every inbound UPDATE.
void DecodeUpdateBodyInto(ByteReader& in, std::size_t body_len,
                          UpdateMessage& u) {
  u.withdrawn.clear();
  u.nlri.clear();
  u.attributes.ResetForDecode();
  const std::size_t end = in.position() + body_len;

  const std::uint16_t withdrawn_len = in.U16();
  const std::size_t withdrawn_end = in.position() + withdrawn_len;
  while (in.ok() && in.position() < withdrawn_end) {
    if (auto p = DecodeNlriPrefix(in)) {
      u.withdrawn.push_back(*p);
    }
  }
  if (in.position() != withdrawn_end) in.MarkBad();

  const std::uint16_t attrs_len = in.U16();
  if (attrs_len > 0) {
    DecodeAttributesInto(in, attrs_len, u.attributes);
  }

  while (in.ok() && in.position() < end) {
    if (auto p = DecodeNlriPrefix(in)) {
      u.nlri.push_back(*p);
    }
  }
  if (in.position() != end) in.MarkBad();
}

UpdateMessage DecodeUpdateBody(ByteReader& in, std::size_t body_len) {
  UpdateMessage u;
  DecodeUpdateBodyInto(in, body_len, u);
  return u;
}

}  // namespace

MessageType TypeOf(const Message& msg) {
  switch (msg.index()) {
    case 0: return MessageType::kOpen;
    case 1: return MessageType::kUpdate;
    case 2: return MessageType::kNotification;
    default: return MessageType::kKeepAlive;
  }
}

void EncodeNlriPrefix(const Prefix& p, ByteWriter& out) {
  out.U8(p.length());
  const std::uint32_t bits = p.bits();
  const int bytes = (p.length() + 7) / 8;
  for (int i = 0; i < bytes; ++i) {
    out.U8(static_cast<std::uint8_t>(bits >> (24 - 8 * i)));
  }
}

std::optional<Prefix> DecodeNlriPrefix(ByteReader& in) {
  const std::uint8_t len = in.U8();
  if (len > 32) {
    in.MarkBad();
    return std::nullopt;
  }
  const int bytes = (len + 7) / 8;
  std::uint32_t bits = 0;
  for (int i = 0; i < bytes; ++i) {
    bits |= std::uint32_t{in.U8()} << (24 - 8 * i);
  }
  if (!in.ok()) return std::nullopt;
  return Prefix(IPv4Address(bits), len);
}

std::vector<std::uint8_t> Encode(const Message& msg) {
  ByteWriter out;
  // One allocation per message instead of a growth cascade: updates get the
  // packer's size bound, the fixed-shape messages a small constant.
  if (const auto* u = std::get_if<UpdateMessage>(&msg)) {
    out.Reserve(EstimateUpdateSize(*u));
  } else {
    out.Reserve(kHeaderSize + 16);
  }
  WriteMarker(out);
  const std::size_t length_at = out.size();
  out.U16(0);
  out.U8(static_cast<std::uint8_t>(TypeOf(msg)));

  std::visit(
      [&out](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, OpenMessage>) {
          out.U8(m.version);
          out.U16(static_cast<std::uint16_t>(m.asn));
          out.U16(m.hold_time_s);
          out.U32(m.bgp_identifier.bits());
          out.U8(0);  // no optional parameters
        } else if constexpr (std::is_same_v<T, UpdateMessage>) {
          EncodeUpdateBody(m, out);
        } else if constexpr (std::is_same_v<T, NotificationMessage>) {
          out.U8(static_cast<std::uint8_t>(m.code));
          out.U8(m.subcode);
        } else {
          static_assert(std::is_same_v<T, KeepAliveMessage>);
        }
      },
      msg);

  out.PatchU16(length_at, static_cast<std::uint16_t>(out.size()));
  return std::move(out).Take();
}

bool DecodeUpdateInto(std::span<const std::uint8_t> wire, UpdateMessage& out) {
  ByteReader in(wire);
  if (!ReadAndCheckMarker(in)) return false;
  const std::uint16_t length = in.U16();
  const std::uint8_t type = in.U8();
  if (!in.ok() || length < kHeaderSize || length > kMaxMessageSize ||
      length != wire.size()) {
    return false;
  }
  if (static_cast<MessageType>(type) != MessageType::kUpdate) return false;
  DecodeUpdateBodyInto(in, length - kHeaderSize, out);
  return in.ok() && in.remaining() == 0;
}

std::optional<Message> Decode(std::span<const std::uint8_t> wire) {
  ByteReader in(wire);
  if (!ReadAndCheckMarker(in)) return std::nullopt;
  const std::uint16_t length = in.U16();
  const std::uint8_t type = in.U8();
  if (!in.ok() || length < kHeaderSize || length > kMaxMessageSize ||
      length != wire.size()) {
    return std::nullopt;
  }
  const std::size_t body_len = length - kHeaderSize;

  std::optional<Message> msg;
  switch (static_cast<MessageType>(type)) {
    case MessageType::kOpen: {
      OpenMessage m;
      m.version = in.U8();
      m.asn = in.U16();
      m.hold_time_s = in.U16();
      m.bgp_identifier = IPv4Address(in.U32());
      const std::uint8_t opt_len = in.U8();
      in.Skip(opt_len);
      msg = m;
      break;
    }
    case MessageType::kUpdate:
      msg = DecodeUpdateBody(in, body_len);
      break;
    case MessageType::kNotification: {
      NotificationMessage m;
      const std::uint8_t code = in.U8();
      if (code < 1 || code > 6) return std::nullopt;
      m.code = static_cast<NotifyCode>(code);
      m.subcode = in.U8();
      in.Skip(in.remaining());  // diagnostic data, ignored
      msg = m;
      break;
    }
    case MessageType::kKeepAlive:
      if (body_len != 0) return std::nullopt;
      msg = KeepAliveMessage{};
      break;
    default:
      return std::nullopt;
  }
  if (!in.ok() || in.remaining() != 0) return std::nullopt;
  return msg;
}

std::size_t EstimateUpdateSize(const UpdateMessage& update) {
  // Header + two length fields + 5 bytes/prefix (worst case) + generous
  // attribute bound (fixed attrs + path + communities).
  std::size_t attrs = 0;
  if (!update.nlri.empty()) {
    attrs = 32;
    for (const auto& seg : update.attributes.as_path.segments()) {
      attrs += 2 + 2 * seg.asns.size();
    }
    attrs += 4 * update.attributes.communities.size();
  }
  return kHeaderSize + 4 + 5 * (update.withdrawn.size() + update.nlri.size()) +
         attrs;
}

std::string ToString(const Message& msg) {
  return std::visit(
      [](const auto& m) -> std::string {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, OpenMessage>) {
          return "OPEN as=" + std::to_string(m.asn) +
                 " hold=" + std::to_string(m.hold_time_s) +
                 " id=" + m.bgp_identifier.ToString();
        } else if constexpr (std::is_same_v<T, UpdateMessage>) {
          std::string out = "UPDATE";
          if (!m.withdrawn.empty()) {
            out += " withdrawn=[";
            for (std::size_t i = 0; i < m.withdrawn.size(); ++i) {
              if (i) out.push_back(' ');
              out += m.withdrawn[i].ToString();
            }
            out += "]";
          }
          if (!m.nlri.empty()) {
            out += " nlri=[";
            for (std::size_t i = 0; i < m.nlri.size(); ++i) {
              if (i) out.push_back(' ');
              out += m.nlri[i].ToString();
            }
            out += "] " + m.attributes.ToString();
          }
          return out;
        } else if constexpr (std::is_same_v<T, NotificationMessage>) {
          return "NOTIFICATION code=" +
                 std::to_string(static_cast<int>(m.code)) +
                 " sub=" + std::to_string(m.subcode);
        } else {
          return "KEEPALIVE";
        }
      },
      msg);
}

}  // namespace iri::bgp
