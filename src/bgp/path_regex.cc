#include "bgp/path_regex.h"

#include <cctype>
#include <charconv>

namespace iri::bgp {
namespace {

// Splits the pattern into whitespace-separated tokens, keeping quantifier
// suffixes attached.
std::vector<std::string> Tokenize(const std::string& pattern) {
  std::vector<std::string> tokens;
  std::string current;
  for (char ch : pattern) {
    // '_' is Cisco's boundary metacharacter; between AS numbers it behaves
    // as a separator, so treat it like whitespace.
    if (std::isspace(static_cast<unsigned char>(ch)) || ch == '_') {
      if (!current.empty()) {
        tokens.push_back(std::move(current));
        current.clear();
      }
    } else {
      current.push_back(ch);
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

std::optional<Asn> ParseAsn(std::string_view text) {
  std::uint32_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size() ||
      value > kMaxAsn) {
    return std::nullopt;
  }
  return value;
}

}  // namespace

std::optional<PathRegex> PathRegex::Compile(const std::string& pattern) {
  PathRegex regex;
  regex.pattern_ = pattern;
  auto tokens = Tokenize(pattern);

  for (std::size_t i = 0; i < tokens.size(); ++i) {
    std::string tok = tokens[i];
    if (tok == "_") continue;  // Cisco separator: no-op here
    // Anchors may stand alone or be glued to the first/last token, as in
    // Cisco syntax ("^701 .* 9$").
    if (!tok.empty() && tok.front() == '^') {
      if (i != 0) return std::nullopt;
      regex.anchored_start_ = true;
      tok.erase(tok.begin());
      if (tok.empty()) continue;
    }
    if (!tok.empty() && tok.back() == '$') {
      if (i != tokens.size() - 1) return std::nullopt;
      regex.anchored_end_ = true;
      tok.pop_back();
      if (tok.empty()) continue;
    }

    Atom atom;
    // Quantifier suffix.
    if (!tok.empty()) {
      const char last = tok.back();
      if (last == '*') {
        atom.quantifier = Atom::Quantifier::kStar;
        tok.pop_back();
      } else if (last == '+') {
        atom.quantifier = Atom::Quantifier::kPlus;
        tok.pop_back();
      } else if (last == '?') {
        atom.quantifier = Atom::Quantifier::kOptional;
        tok.pop_back();
      }
    }
    if (tok.empty()) return std::nullopt;  // dangling quantifier

    if (tok == ".") {
      // wildcard: empty allowed set
    } else if (tok.front() == '(') {
      if (tok.back() != ')' || tok.size() < 3) return std::nullopt;
      std::string inner = tok.substr(1, tok.size() - 2);
      std::size_t start = 0;
      while (start <= inner.size()) {
        const std::size_t bar = inner.find('|', start);
        const std::string part =
            inner.substr(start, bar == std::string::npos ? std::string::npos
                                                         : bar - start);
        auto asn = ParseAsn(part);
        if (!asn) return std::nullopt;
        atom.allowed.push_back(*asn);
        if (bar == std::string::npos) break;
        start = bar + 1;
      }
      if (atom.allowed.empty()) return std::nullopt;
    } else {
      auto asn = ParseAsn(tok);
      if (!asn) return std::nullopt;
      atom.allowed.push_back(*asn);
    }
    regex.atoms_.push_back(std::move(atom));
  }
  return regex;
}

bool PathRegex::MatchHere(std::size_t atom, const std::vector<Asn>& path,
                          std::size_t pos) const {
  if (atom == atoms_.size()) {
    return !anchored_end_ || pos == path.size();
  }
  const Atom& a = atoms_[atom];
  switch (a.quantifier) {
    case Atom::Quantifier::kOne:
      return pos < path.size() && a.Accepts(path[pos]) &&
             MatchHere(atom + 1, path, pos + 1);
    case Atom::Quantifier::kOptional:
      if (pos < path.size() && a.Accepts(path[pos]) &&
          MatchHere(atom + 1, path, pos + 1)) {
        return true;
      }
      return MatchHere(atom + 1, path, pos);
    case Atom::Quantifier::kPlus:
      if (pos >= path.size() || !a.Accepts(path[pos])) return false;
      ++pos;
      [[fallthrough]];
    case Atom::Quantifier::kStar: {
      // Greedy with backtracking: try the longest run first.
      std::size_t end = pos;
      while (end < path.size() && a.Accepts(path[end])) ++end;
      for (std::size_t stop = end + 1; stop-- > pos;) {
        if (MatchHere(atom + 1, path, stop)) return true;
      }
      return false;
    }
  }
  return false;
}

bool PathRegex::Matches(const std::vector<Asn>& flattened) const {
  if (anchored_start_) return MatchHere(0, flattened, 0);
  for (std::size_t start = 0; start <= flattened.size(); ++start) {
    if (MatchHere(0, flattened, start)) return true;
  }
  return false;
}

bool PathRegex::Matches(const AsPath& path) const {
  std::vector<Asn> flattened;
  for (const auto& segment : path.segments()) {
    flattened.insert(flattened.end(), segment.asns.begin(),
                     segment.asns.end());
  }
  return Matches(flattened);
}

}  // namespace iri::bgp
