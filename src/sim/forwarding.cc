#include "sim/forwarding.h"

#include <vector>

namespace iri::sim {

void ForwardingEngine::ChargeCpu(Duration cost, TimePoint now) {
  if (cpu_busy_until_ < now) cpu_busy_until_ = now;
  cpu_busy_until_ += cost;
}

void ForwardingEngine::OnRouteChange(const Prefix& prefix,
                                     IPv4Address next_hop, TimePoint now) {
  fib_.Insert(prefix, next_hop);
  ChargeCpu(params_.update_cost, now);
  if (params_.architecture == ForwardingArchitecture::kRouteCache) {
    InvalidateCovered(prefix);
  }
}

void ForwardingEngine::OnRouteWithdrawn(const Prefix& prefix, TimePoint now) {
  fib_.Erase(prefix);
  ChargeCpu(params_.update_cost, now);
  if (params_.architecture == ForwardingArchitecture::kRouteCache) {
    InvalidateCovered(prefix);
  }
}

void ForwardingEngine::InvalidateCovered(const Prefix& prefix) {
  // Purge every cached /24 covered by (or covering) the changed prefix: a
  // less-specific change can alter the best match for all of them, and a
  // more-specific change shadows part of a cached block.
  std::vector<Prefix> victims;
  for (const auto& [key, entry] : cache_) {
    if (prefix.Covers(key) || key.Covers(prefix)) victims.push_back(key);
  }
  for (const Prefix& key : victims) {
    auto it = cache_.find(key);
    lru_.erase(it->second.lru_position);
    cache_.erase(it);
    ++stats_.invalidations;
  }
}

void ForwardingEngine::InsertCacheEntry(const Prefix& key,
                                        IPv4Address next_hop) {
  if (cache_.size() >= params_.cache_capacity && !lru_.empty()) {
    // Evict the least recently used entry.
    cache_.erase(lru_.back());
    lru_.pop_back();
  }
  lru_.push_front(key);
  cache_[key] = {next_hop, lru_.begin()};
}

bool ForwardingEngine::Forward(IPv4Address destination, TimePoint now) {
  ++stats_.lookups;

  if (params_.architecture == ForwardingArchitecture::kFullTable) {
    // The forwarding hardware holds the whole table: constant cost, no CPU
    // involvement, no instability coupling.
    const auto match = fib_.LongestMatch(destination);
    if (!match) {
      ++stats_.no_route;
      return false;
    }
    ++stats_.fast_path;
    return true;
  }

  const Prefix key = CacheKey(destination);
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    // Fast path: refresh recency, switch on the line card.
    lru_.splice(lru_.begin(), lru_, it->second.lru_position);
    ++stats_.fast_path;
    return true;
  }

  // Miss: the packet punts to the CPU. If the CPU queue is too deep the
  // input queue overflows and the packet is lost.
  ++stats_.misses;
  if (CpuBacklog(now) > params_.cpu_queue_limit) {
    ++stats_.drops;
    return false;
  }
  ChargeCpu(params_.slow_path_cost, now);
  const auto match = fib_.LongestMatch(destination);
  if (!match) {
    ++stats_.no_route;
    return false;
  }
  InsertCacheEntry(key, *match->second);
  return true;
}

}  // namespace iri::sim
