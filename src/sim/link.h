// Point-to-point link model connecting two router endpoints.
//
// Links carry encoded BGP messages (real wire bytes — every hop exercises
// the codec) with a fixed propagation latency. A link can be failed and
// restored by scenario code, by the leased-line failure process, or by the
// CSU clock-drift oscillator (§4.2's "misconfigured CSUs ... cause the line
// to oscillate"): router interface cards are "sensitive to millisecond loss
// of line carrier", so even a brief carrier drop takes the BGP transport
// down with it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netbase/rng.h"
#include "netbase/time.h"
#include "obs/metrics.h"
#include "obs/provenance.h"
#include "obs/trace.h"
#include "sim/scheduler.h"

namespace iri::sim {

// Implemented by Router. Links call these to deliver transport events.
class LinkEndpoint {
 public:
  virtual ~LinkEndpoint() = default;
  virtual void OnTransportUp(std::uint32_t local_peer_id) = 0;
  virtual void OnTransportDown(std::uint32_t local_peer_id) = 0;
  // `causes` is the provenance sideband for the message's events (withdrawn
  // then NLRI order); empty when the sender attached none.
  virtual void OnWireData(std::uint32_t local_peer_id,
                          std::vector<std::uint8_t> bytes,
                          obs::CauseVec causes) = 0;
  // Convenience for callers without a sideband (tests, manual injection).
  void OnWireData(std::uint32_t local_peer_id,
                  std::vector<std::uint8_t> bytes) {
    OnWireData(local_peer_id, std::move(bytes), obs::CauseVec{});
  }
};

class Link {
 public:
  Link(Scheduler& sched, Duration latency) : sched_(sched), latency_(latency) {}

  // Wires up side A/B. `peer_id` is the identifier the endpoint uses for
  // this adjacency (each router numbers its own peers).
  void AttachA(LinkEndpoint* ep, std::uint32_t peer_id) { a_ = {ep, peer_id}; }
  void AttachB(LinkEndpoint* ep, std::uint32_t peer_id) { b_ = {ep, peer_id}; }

  // Attaches metrics (link.* counters, shared across all links on the
  // registry) and fail/restore trace events tagged with `name`. Either
  // pointer may be null.
  void AttachObservability(obs::Registry* registry, obs::Tracer* tracer,
                           std::string name);

  // Attaches the partition's provenance context: Fail/Restore capture the
  // ambient cause active at the transition, so session events the FSM
  // derives from this transport (downs, re-establishment dumps) can inherit
  // it. Null detaches.
  void SetProvenance(obs::ProvenanceContext* prov) { prov_ = prov; }

  // The cause captured at the most recent Fail/Restore (null when the
  // transition happened outside any cause scope, e.g. bootstrap).
  obs::CauseTag transition_cause() const { return transition_cause_; }

  bool up() const { return up_; }
  std::uint64_t messages_carried() const { return messages_carried_; }
  std::uint64_t bytes_carried() const { return bytes_carried_; }

  // Brings the link (and transport) up; notifies both endpoints.
  void Restore();

  // Takes the link down; in-flight data is lost, endpoints are notified.
  void Fail();

  // Sends bytes from endpoint `from` to the other side, delivered after the
  // propagation latency if the link is still up at delivery time (a fail
  // between send and delivery drops the data, as TCP segments in flight are
  // lost when carrier drops). `causes` rides in the delivery (a sideband
  // next to the wire bytes, never on them — MRT logs are unchanged).
  void Send(const LinkEndpoint* from, std::vector<std::uint8_t> bytes,
            obs::CauseVec causes = {});

 private:
  struct Side {
    LinkEndpoint* endpoint = nullptr;
    std::uint32_t peer_id = 0;
  };

  Scheduler& sched_;
  Duration latency_;
  Side a_, b_;
  bool up_ = false;
  std::uint64_t epoch_ = 0;  // bumped on every Fail; stale deliveries dropped
  std::uint64_t messages_carried_ = 0;
  std::uint64_t bytes_carried_ = 0;
  std::string name_;
  obs::Tracer* tracer_ = nullptr;
  obs::ProvenanceContext* prov_ = nullptr;
  [[no_unique_address]] obs::CauseTag transition_cause_;
  obs::Counter* fails_ = nullptr;
  obs::Counter* restores_ = nullptr;
  obs::Counter* messages_metric_ = nullptr;
  obs::Counter* bytes_metric_ = nullptr;
};

// Poisson leased-line failure process: exponentially distributed time to
// failure and time to repair. Drives Fail/Restore on the link forever.
// The rate can be modulated by scenario code (diurnal congestion raises the
// effective failure rate — the paper's usage/instability correlation).
class LineFailureProcess {
 public:
  struct Params {
    Duration mean_time_to_failure = Duration::Hours(24 * 14);
    Duration mean_time_to_repair = Duration::Minutes(8);
  };

  LineFailureProcess(Scheduler& sched, Link& link, Params params,
                     std::uint64_t seed)
      : sched_(sched), link_(link), params_(params), rng_(seed) {}

  // Starts the process (first failure scheduled from now).
  void Start();

  // Rate multiplier >= 0; 1.0 = nominal. Sampled when each next failure is
  // scheduled, so scenario code can steer it over time.
  void SetRateMultiplier(double m) { rate_multiplier_ = m; }
  double rate_multiplier() const { return rate_multiplier_; }

  std::uint64_t failures() const { return failures_; }

 private:
  void ScheduleFailure();
  void ScheduleRepair();

  Scheduler& sched_;
  Link& link_;
  Params params_;
  Rng rng_;
  double rate_multiplier_ = 1.0;
  std::uint64_t failures_ = 0;
};

// CSU clock-drift oscillator: while an episode is active the line flaps with
// a beat period derived from the clock drift; episodes recur. Periods are
// near-constant (clocks drift slowly), producing the periodic W/A update
// trains the paper suspects behind some of the 30 s structure.
class CsuOscillator {
 public:
  struct Params {
    Duration beat_period = Duration::Seconds(30);  // line drops every beat
    Duration carrier_loss = Duration::Millis(800); // how long carrier drops
    Duration episode_length = Duration::Minutes(3);
    Duration mean_episode_gap = Duration::Hours(6);
    double period_wobble = 0.02;  // ±2% beat-to-beat variation
  };

  CsuOscillator(Scheduler& sched, Link& link, Params params,
                std::uint64_t seed)
      : sched_(sched), link_(link), params_(params), rng_(seed) {}

  void Start();

  std::uint64_t episodes() const { return episodes_; }
  std::uint64_t beats() const { return beats_; }

 private:
  void ScheduleEpisode();
  void Beat(TimePoint episode_end);

  Scheduler& sched_;
  Link& link_;
  Params params_;
  Rng rng_;
  std::uint64_t episodes_ = 0;
  std::uint64_t beats_ = 0;
};

}  // namespace iri::sim
