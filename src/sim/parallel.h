// The one sanctioned threading primitive in iri: a bounded fork-join helper
// for embarrassingly-parallel index spaces.
//
// Everything in this codebase is a deterministic discrete-event simulation;
// free-form threading would destroy the bit-for-bit reproducibility the
// whole repo is built around. The only parallelism that preserves it is
// *partition* parallelism: independent sub-simulations (one scheduler, one
// RNG stream, private sinks each) whose results are merged in a fixed order
// afterwards. ParallelFor is exactly that shape and nothing more: it runs
// fn(0..n-1) with no ordering guarantees, so fn must never touch state
// shared across indices. tools/lint/iri_lint.py bans std::thread/std::async
// and friends everywhere outside src/sim/parallel.cc to keep it that way.
#pragma once

#include <functional>

namespace iri::sim {

// Worker count used when callers pass threads <= 0: the IRI_PARALLEL_EXCHANGES
// environment variable when set to a positive integer, otherwise the
// hardware concurrency (minimum 1). IRI_PARALLEL_EXCHANGES=1 forces the
// serial path through the calling thread.
int DefaultParallelism();

// Invokes fn(i) for every i in [0, n) across up to `threads` workers
// (threads <= 0 means DefaultParallelism()). With one worker everything runs
// inline on the calling thread — byte-identical to a plain loop. fn must
// only touch state owned by its index; the first exception thrown by any
// invocation is rethrown on the calling thread after all workers join.
void ParallelFor(int n, int threads, const std::function<void(int)>& fn);

}  // namespace iri::sim
