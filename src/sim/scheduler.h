// Discrete-event scheduler: the single clock every component shares.
//
// A binary-heap priority queue of (time, sequence, closure). The sequence
// number makes simultaneous events FIFO, which together with the seeded RNGs
// makes whole scenarios bit-for-bit reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "netbase/time.h"

namespace iri::sim {

class Scheduler {
 public:
  using Task = std::function<void()>;

  TimePoint Now() const { return now_; }

  // Schedules `task` at absolute time `t`. Scheduling in the past is a
  // caller bug; the task runs immediately at Now() instead (never rewinds).
  void At(TimePoint t, Task task) {
    if (t < now_) t = now_;
    queue_.push(Item{t, next_seq_++, std::move(task)});
  }

  void After(Duration d, Task task) { At(now_ + d, std::move(task)); }

  // Runs the earliest event. Returns false when the queue is empty.
  bool Step() {
    if (queue_.empty()) return false;
    // Moving out of the priority queue requires a const_cast dance; copy the
    // metadata first, then steal the closure.
    Item& top = const_cast<Item&>(queue_.top());
    now_ = top.at;
    Task task = std::move(top.task);
    queue_.pop();
    task();
    ++executed_;
    return true;
  }

  // Runs events with time <= `end`, then advances the clock to `end`.
  void RunUntil(TimePoint end) {
    while (!queue_.empty() && queue_.top().at <= end) Step();
    if (now_ < end) now_ = end;
  }

  // Drains the queue entirely (only safe for scenarios that quiesce).
  void RunAll() {
    while (Step()) {}
  }

  std::size_t pending() const { return queue_.size(); }
  std::uint64_t executed() const { return executed_; }

 private:
  struct Item {
    TimePoint at;
    std::uint64_t seq;
    Task task;

    // Min-heap: earlier time first, then FIFO by sequence.
    bool operator<(const Item& other) const {
      if (at != other.at) return at > other.at;
      return seq > other.seq;
    }
  };

  std::priority_queue<Item> queue_;
  TimePoint now_ = TimePoint::Origin();
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace iri::sim
