// Discrete-event scheduler: the single clock every component shares.
//
// A binary heap of trivially-copyable (time, sequence, slot) items over an
// owned vector, with the closures parked in a side table the slot indexes —
// heap sifts never move a std::function. The sequence number makes
// simultaneous events FIFO, and the slot free list is recycled LIFO, so
// together with the seeded RNGs whole scenarios are bit-for-bit
// reproducible.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "core/invariants.h"
#include "netbase/time.h"
#include "obs/profile.h"

namespace iri::sim {

class Scheduler {
 public:
  using Task = std::function<void()>;

  TimePoint Now() const { return now_; }

  // Attaches this scheduler's instruments to a (partition-private) registry:
  // sched.tasks counts executed events, sched.peak_pending tracks the
  // high-water backlog, and the sched.run_until profile site times the
  // drain loop. Null detaches.
  void AttachMetrics(obs::Registry* registry) {
    if (registry == nullptr) {
      tasks_ = nullptr;
      peak_pending_ = nullptr;
      run_until_site_ = obs::ProfileSite{};
      return;
    }
    tasks_ = &registry->GetCounter("sched.tasks");
    peak_pending_ = &registry->GetGauge("sched.peak_pending",
                                        obs::Stability::kDeterministic,
                                        obs::GaugeMerge::kMax);
    run_until_site_ = obs::MakeProfileSite(*registry, "sched.run_until");
  }

  // Schedules `task` at absolute time `t`. Scheduling in the past is a
  // caller bug; the task runs immediately at Now() instead (never rewinds).
  void At(TimePoint t, Task task) {
    if (t < now_) t = now_;
    // Slot indirection: the heap holds trivially-copyable (time, seq, slot)
    // items while the closures sit still in slots_. Heap sifts then move
    // 24-byte PODs instead of std::function objects — at full paper scale
    // the sift traffic (tens of millions of moves per simulated day) was a
    // measurable slice of the profile.
    std::uint32_t slot;
    if (free_slots_.empty()) {
      slot = static_cast<std::uint32_t>(slots_.size());
      slots_.push_back(std::move(task));
    } else {
      slot = free_slots_.back();
      free_slots_.pop_back();
      slots_[slot] = std::move(task);
    }
    heap_.push_back(Item{t, next_seq_++, slot});
    std::push_heap(heap_.begin(), heap_.end(), RunsLater);
    if (peak_pending_ != nullptr) {
      peak_pending_->RaiseTo(static_cast<std::int64_t>(heap_.size()));
    }
  }

  void After(Duration d, Task task) { At(now_ + d, std::move(task)); }

  // Runs the earliest event. Returns false when the queue is empty.
  bool Step() {
    if (heap_.empty()) return false;
    std::pop_heap(heap_.begin(), heap_.end(), RunsLater);
    const Item item = heap_.back();
    heap_.pop_back();
    IRI_ASSERT(item.at >= now_, "scheduler clock must never rewind");
    now_ = item.at;
    // Move the closure out before running it: the task may schedule into
    // the slot being recycled.
    Task task = std::move(slots_[item.slot]);
    slots_[item.slot] = nullptr;
    free_slots_.push_back(item.slot);
    task();
    ++executed_;
    if (tasks_ != nullptr) tasks_->Add(1);
    return true;
  }

  // Runs events with time <= `end`, then advances the clock to `end`.
  // A horizon already in the past runs nothing and leaves the clock alone.
  void RunUntil(TimePoint end) {
    obs::ScopedTimer timer(&run_until_site_);
    while (!heap_.empty() && heap_.front().at <= end) {
      Step();
      timer.AddItems(1);
      IRI_ASSERT(now_ <= end,
                 "RunUntil must not execute events beyond its horizon");
    }
    if (now_ < end) now_ = end;
  }

  // Drains the queue entirely (only safe for scenarios that quiesce).
  void RunAll() {
    while (Step()) {}
  }

  std::size_t pending() const { return heap_.size(); }
  std::uint64_t executed() const { return executed_; }

 private:
  struct Item {
    TimePoint at;
    std::uint64_t seq;
    std::uint32_t slot;  // index into slots_
  };

  // Heap comparator: `a` runs after `b` — std::push_heap builds a max-heap,
  // so "runs latest" at the bottom puts the earliest (time, seq) at front.
  static bool RunsLater(const Item& a, const Item& b) {
    if (a.at != b.at) return a.at > b.at;
    return a.seq > b.seq;
  }

  std::vector<Item> heap_;
  std::vector<Task> slots_;            // closure storage, heap-stable
  std::vector<std::uint32_t> free_slots_;  // LIFO recycling: deterministic
  TimePoint now_ = TimePoint::Origin();
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  obs::Counter* tasks_ = nullptr;
  obs::Gauge* peak_pending_ = nullptr;
  obs::ProfileSite run_until_site_;
};

}  // namespace iri::sim
