// A simulated BGP border router (or exchange-point route server).
//
// Composes the protocol-pure pieces from src/bgp — session FSM, RIB,
// decision process, policy engine, outbound update packer, optional flap
// dampener — under a CPU model, and speaks real wire-format BGP over Links.
//
// Two implementation personalities reproduce the paper's §4.2 findings:
//
//  * stateful (default): maintains an Adj-RIB-Out per peer and suppresses
//    updates that would not change what the peer already heard — the
//    "updated, stateful software" vendors shipped after the paper's results
//    were presented.
//  * stateless_bgp: keeps no Adj-RIB-Out. Announcements always go out on
//    flush, and every prefix that becomes unreachable (or is named in any
//    inbound withdrawal) triggers a withdrawal broadcast to ALL peers —
//    bypassing export policy, because the implementation tracks only its own
//    table, not what each peer was told. A provider that aggregates its
//    customers therefore still sprays component-prefix withdrawals at every
//    flap: the paper's WWDup engine ("withdrawals ... by autonomous systems
//    that never previously announced reachability for the withdrawn
//    prefixes").
//
// The CPU model charges per-update processing cost to a busy-until horizon;
// outbound messages (including KEEPALIVEs, unless bgp_priority_queuing is
// on) are delayed behind the backlog. Sustained update load therefore
// starves keepalives, peers' hold timers fire, sessions drop, full-table
// re-dumps add more load: the route flap storm, §3.
#pragma once

#include <functional>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "bgp/dampening.h"
#include "bgp/message.h"
#include "bgp/policy.h"
#include "bgp/rib.h"
#include "bgp/session.h"
#include "bgp/update_packer.h"
#include "netbase/probe_map.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/provenance.h"
#include "obs/trace.h"
#include "sim/link.h"
#include "sim/scheduler.h"

namespace iri::sim {

struct RouterConfig {
  std::string name;
  bgp::Asn asn = 0;
  IPv4Address router_id;
  IPv4Address interface_addr;  // NEXT_HOP written on exported routes

  bool stateless_bgp = false;  // the pathological vendor implementation
  bool transparent = false;    // route-server mode: no prepend, no next-hop
                               // rewrite (Routing Arbiter semantics)
  // Monitor-only collector: accept and classify inbound routes but never
  // re-export them. Measurement-equivalent to a full route server (provider
  // export policies stop RS-learned routes from ever returning to the RS)
  // while cutting simulation cost by the peer fan-out factor.
  bool no_reexport = false;

  bgp::PackerConfig packer;    // flush-timer discipline (30 s unjittered ...)
  std::uint16_t hold_time_s = 90;

  bool enable_dampening = false;
  bgp::DampeningParams dampening;

  // CPU model.
  Duration cost_per_prefix = Duration::Micros(150);   // per prefix processed
  Duration cost_per_message = Duration::Micros(60);   // fixed decode overhead
  bool bgp_priority_queuing = false;  // vendor fix: keepalives bypass backlog
  // Backlog beyond which the router crashes outright (0 disables). The paper
  // measured ~300 updates/s crashing "a widely deployed, high-end" router.
  Duration crash_backlog = Duration();
  Duration reboot_time = Duration::Seconds(90);
};

class Router : public LinkEndpoint {
 public:
  struct Stats {
    std::uint64_t messages_rx = 0;
    std::uint64_t messages_tx = 0;
    std::uint64_t updates_rx = 0;
    std::uint64_t updates_tx = 0;
    std::uint64_t prefixes_announced_rx = 0;
    std::uint64_t prefixes_withdrawn_rx = 0;
    std::uint64_t prefixes_announced_tx = 0;
    std::uint64_t prefixes_withdrawn_tx = 0;
    std::uint64_t loops_rejected = 0;
    std::uint64_t decode_failures = 0;
    std::uint64_t session_ups = 0;
    std::uint64_t session_downs = 0;
    std::uint64_t crashes = 0;
    std::uint64_t damped_updates = 0;
  };

  // Tap invoked for every UPDATE received on an established session, before
  // policy — this is the Routing Arbiter measurement point. `wire` views the
  // message's received wire bytes (valid only for the duration of the call),
  // so the monitor's MRT logger can write them without re-encoding. `causes`
  // is the message's provenance sideband (withdrawn-then-NLRI order; empty
  // for untagged senders or when provenance is compiled out).
  using UpdateTap = std::function<void(TimePoint now, bgp::PeerId peer,
                                       bgp::Asn peer_asn,
                                       const bgp::UpdateMessage& update,
                                       std::span<const std::uint8_t> wire,
                                       const obs::CauseVec& causes)>;

  Router(Scheduler& sched, RouterConfig config, std::uint64_t seed);

  // Registers this router on one side of `link`. Returns the local peer id.
  // Policies default to accept-all.
  bgp::PeerId AttachLink(Link& link, bool side_a, bgp::Asn remote_asn,
                         bgp::Policy import_policy = bgp::Policy::AcceptAll(),
                         bgp::Policy export_policy = bgp::Policy::AcceptAll());

  // Originates a locally-sourced route (customer network / IGP injection).
  // The attribute template's as_path may carry downstream customer ASes;
  // this router's own AS is prepended at export time.
  void Originate(const bgp::Route& route);

  // Withdraws a locally-sourced route.
  void WithdrawLocal(const Prefix& prefix);

  // Models an IGP/iBGP adjacency reset inside this router's AS: the local
  // routes behind the reset adjacency (a random `dirty_fraction` of them)
  // are momentarily withdrawn and immediately re-learned. On a stateful
  // router this is invisible to peers (the Adj-RIB-Out coalesces it away);
  // on a stateless router it re-sends the exported ones (AADup) and sprays
  // withdrawals for the aggregated ones that were never announced (WWDup).
  // This is the paper's §4.2 "misconfigured interaction of IGP/BGP
  // protocols" mechanism.
  void InternalReset(double dirty_fraction = 1.0);

  // Models the transient loss (and immediate relearning) of externally
  // learned routes inside this AS — e.g. a flapping private transit
  // adjacency behind a stateless border router. The paper's ISP-I
  // transmitted 2.4M withdrawals for 14,112 prefixes it had announced 259
  // of; this is that mechanism. Stateful routers coalesce it to silence.
  void SprayWithdrawals(std::span<const Prefix> prefixes);

  bool HasLocalRoute(const Prefix& prefix) const;

  void SetUpdateTap(UpdateTap tap) { tap_ = std::move(tap); }

  // Attaches this router to a (partition-private) registry and trace sink:
  // router.* counters mirror the hottest Stats fields, codec.encode /
  // codec.decode profile sites time the wire codec, the RIB profile sites
  // are resolved, and every peer session FSM gets the tracer (as do peers
  // attached later). Either pointer may be null.
  void AttachObservability(obs::Registry* registry, obs::Tracer* tracer);

  const bgp::Rib& rib() const { return rib_; }
  const Stats& stats() const { return stats_; }
  const RouterConfig& config() const { return config_; }
  bgp::SessionState PeerSessionState(bgp::PeerId peer) const;
  bgp::Asn PeerAsn(bgp::PeerId peer) const;
  std::size_t num_peers() const { return peers_.size(); }
  bool crashed() const { return crashed_; }

  // Current CPU backlog (how far busy-until is ahead of now).
  Duration Backlog() const;

  // Attaches the partition's provenance context: injection entry points
  // (Originate, WithdrawLocal, InternalReset, SprayWithdrawals) stamp ops
  // with the ambient cause, and emergent session events (hold-timer downs,
  // organic re-dumps) allocate their own causes. Null detaches.
  void SetProvenance(obs::ProvenanceContext* prov) { prov_ = prov; }

  // LinkEndpoint interface (driven by Link).
  using LinkEndpoint::OnWireData;  // keep the 2-arg convenience visible
  void OnTransportUp(std::uint32_t peer) override;
  void OnTransportDown(std::uint32_t peer) override;
  void OnWireData(std::uint32_t peer, std::vector<std::uint8_t> bytes,
                  obs::CauseVec causes) override;

 private:
  struct Peer {
    Link* link = nullptr;
    bgp::Asn remote_asn = 0;
    bgp::SessionFsm fsm;
    bgp::OutboundQueue queue;
    bgp::Policy import_policy;
    bgp::Policy export_policy;
    std::unordered_map<Prefix, bgp::PathAttributes> adj_rib_out;
    bool established = false;
    bool flush_scheduled = false;
    // Earliest pending FSM-timer poll, TimePoint::Max() when none. The FSM's
    // OnTimer is a pure deadline poll, so instead of cancelling stale timers
    // with a generation counter (one dead scheduler task per received
    // message — millions at paper scale), the fired task re-checks
    // NextDeadline() and re-arms itself when the deadline has moved on.
    TimePoint timer_armed = TimePoint::Max();

    Peer(bgp::SessionConfig fsm_cfg, bgp::PackerConfig packer_cfg,
         std::uint64_t seed, bgp::Policy imp, bgp::Policy exp)
        : fsm(fsm_cfg),
          queue(packer_cfg, seed),
          import_policy(std::move(imp)),
          export_policy(std::move(exp)) {}
  };

  // --- session plumbing ---
  void HandleFsmActions(bgp::PeerId id, const bgp::SessionFsm::Actions& acts);
  void ScheduleFsmTimer(bgp::PeerId id);
  void FsmTimerFired(bgp::PeerId id);
  void OnSessionUp(bgp::PeerId id);
  void OnSessionDown(bgp::PeerId id);
  void SendMessage(bgp::PeerId id, const bgp::Message& msg,
                   bool priority = false, obs::CauseVec causes = {});

  // --- provenance ---
  // The ambient cause at an injection entry point (null without a context).
  obs::CauseTag AmbientCause() const {
    return prov_ != nullptr ? prov_->Current() : obs::CauseTag{};
  }
  // Cause for a session-level event on `id`: the ambient cause if one is in
  // scope, else the cause captured at the peer link's last Fail/Restore,
  // else a freshly allocated emergent cause of `emergent_kind`.
  obs::CauseTag SessionCause(bgp::PeerId id, obs::CauseKind emergent_kind);

  // --- update processing ---
  void ProcessUpdate(bgp::PeerId from, const bgp::UpdateMessage& update,
                     const obs::CauseVec& causes);
  // Charges the dampener for an announcement; true means "suppress it".
  bool DampenAnnounce(bgp::PeerId from, const Prefix& nlri,
                      const bgp::PathAttributes& attrs);
  // Re-exports the new state of `prefix` to every eligible peer, stamping
  // emitted ops with `cause` (already depth-bumped for re-propagation).
  void PropagateChange(const Prefix& prefix, obs::CauseTag cause);
  // Stateless pathology: spray a withdrawal at every established peer,
  // bypassing export policy and Adj-RIB-Out.
  void BroadcastWithdraw(const Prefix& prefix, obs::CauseTag cause);
  // Computes the route to announce to `peer` for `prefix`, or nullopt when
  // it must not be announced (split horizon, loop, policy deny).
  std::optional<bgp::PathAttributes> ExportRoute(const Peer& peer,
                                                 const Prefix& prefix) const;
  // Same, given the already-looked-up best candidate — the batched RIB-walk
  // paths (FullDump's Loc-RIB sweep, PropagateChange's per-peer fan-out)
  // resolve Best() once instead of once per peer.
  std::optional<bgp::PathAttributes> ExportCandidate(
      const Peer& peer, const Prefix& prefix, const bgp::Candidate& best) const;
  void EnqueueOp(bgp::PeerId id, bgp::RouteOp op);
  void FlushPeer(bgp::PeerId id);
  void FullDump(bgp::PeerId id, obs::CauseTag cause);

  // --- CPU model ---
  // Charges `cost` and returns the time at which the work completes.
  TimePoint ChargeCpu(Duration cost);
  void Crash();
  void Reboot();

  // --- observability ---
  std::string PeerLabel(bgp::PeerId id) const;

  Scheduler& sched_;
  RouterConfig config_;
  Rng rng_;
  bgp::Rib rib_;
  bgp::Dampener dampener_;
  std::vector<Peer> peers_;
  // Locally-originated routes, flat: a dense vector in deterministic
  // (insertion / swap-erase) order plus a probed index mapping prefix to
  // slot. InternalReset's sweep order reaches the wire, so the container's
  // iteration order must not depend on the platform's hash — the vector's
  // order is a pure function of the Originate/WithdrawLocal call sequence.
  std::vector<bgp::Route> local_routes_;
  ProbeMap<Prefix, std::uint32_t> local_index_;  // kNoLocalRoute = erased
  static constexpr std::uint32_t kNoLocalRoute = 0xFFFFFFFFu;
  bgp::PathAttributes originate_scratch_;  // reused by Originate (hot path)
  // Receive-path decode scratch: every inbound UPDATE decodes into this one
  // message, so its prefix/community buffers are allocated once per router
  // instead of once per message. Safe because delivery is scheduler-driven
  // (OnWireData never re-enters while an update is being processed).
  bgp::UpdateMessage decode_scratch_;
  TimePoint busy_until_;
  bool crashed_ = false;
  Stats stats_;
  UpdateTap tap_;

  // Cached instrument pointers (null when no registry is attached).
  struct RouterMetrics {
    obs::Counter* messages_rx = nullptr;
    obs::Counter* messages_tx = nullptr;
    obs::Counter* updates_rx = nullptr;
    obs::Counter* updates_tx = nullptr;
    obs::Counter* decode_failures = nullptr;
    obs::Counter* session_ups = nullptr;
    obs::Counter* session_downs = nullptr;
    obs::Counter* crashes = nullptr;
    obs::Counter* damped_updates = nullptr;
    obs::Counter* backlog_high_events = nullptr;
  } metrics_;
  obs::ProfileSite encode_site_;
  obs::ProfileSite decode_site_;
  obs::Tracer* tracer_ = nullptr;
  obs::ProvenanceContext* prov_ = nullptr;
  bool backlog_high_ = false;  // above the keepalive-starvation threshold
};

}  // namespace iri::sim
