// Route-cache forwarding engine model (paper §3).
//
// "A significant number of the core Internet routers today are based on a
// route caching architecture. ... As long as the interface card finds a
// cache entry for an incoming packet's destination addresses, the packet is
// switched on a 'fast-path' independently of the router CPU. Under
// sustained levels of routing instability, the cache undergoes frequent
// updates and the probability of a packet encountering a cache miss
// increases. A large number of cache misses results in increased load on
// the CPU, increased switching latency and the 'dropping', or loss of
// packets."
//
// Two forwarding engines are modeled:
//  * kRouteCache — an LRU destination cache in front of a CPU-resident FIB.
//    Hits switch at line rate; misses queue on the CPU; route changes
//    invalidate covered cache entries; a saturated CPU queue drops packets.
//  * kFullTable — "a new generation of routers that do not require caching
//    and are able to maintain the full routing table in memory on the
//    forwarding hardware": constant-cost lookups, no instability coupling.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "netbase/ipv4.h"
#include "netbase/radix_trie.h"
#include "netbase/time.h"

namespace iri::sim {

enum class ForwardingArchitecture : std::uint8_t {
  kRouteCache,
  kFullTable,
};

class ForwardingEngine {
 public:
  struct Params {
    ForwardingArchitecture architecture = ForwardingArchitecture::kRouteCache;
    std::size_t cache_capacity = 4096;          // interface-card cache slots
    Duration fast_path_cost = Duration::Micros(1);   // cache hit (line card)
    Duration slow_path_cost = Duration::Micros(60);  // miss: CPU FIB lookup
    Duration full_table_cost = Duration::Micros(3);  // kFullTable lookup
    // CPU input queue bound: a miss arriving when the CPU is more than this
    // far behind is dropped (input queue overflow).
    Duration cpu_queue_limit = Duration::Millis(20);
    // Route-update processing also runs on the CPU.
    Duration update_cost = Duration::Micros(120);
  };

  struct Stats {
    std::uint64_t lookups = 0;
    std::uint64_t fast_path = 0;     // cache hits (or all, for kFullTable)
    std::uint64_t misses = 0;        // punted to the CPU
    std::uint64_t drops = 0;         // CPU queue overflow
    std::uint64_t no_route = 0;      // FIB lookup failed entirely
    std::uint64_t invalidations = 0; // cache entries purged by updates

    double MissRate() const {
      return lookups ? static_cast<double>(misses) /
                           static_cast<double>(lookups)
                     : 0;
    }
    double DropRate() const {
      return lookups ? static_cast<double>(drops) /
                           static_cast<double>(lookups)
                     : 0;
    }
  };

  explicit ForwardingEngine(Params params) : params_(params) {}

  // --- FIB maintenance (driven by the routing process) ---
  // Installs/changes the route for `prefix`; invalidates covered cache
  // entries and charges CPU update cost.
  void OnRouteChange(const Prefix& prefix, IPv4Address next_hop,
                     TimePoint now);
  // Removes the route; also invalidates.
  void OnRouteWithdrawn(const Prefix& prefix, TimePoint now);

  // --- data path ---
  // Forwards one packet to `destination` at `now`. Returns true if the
  // packet was switched, false if it was dropped (queue overflow or no
  // route).
  bool Forward(IPv4Address destination, TimePoint now);

  const Stats& stats() const { return stats_; }
  std::size_t cache_size() const { return cache_.size(); }
  std::size_t fib_size() const { return fib_.size(); }
  Duration CpuBacklog(TimePoint now) const {
    return cpu_busy_until_ > now ? cpu_busy_until_ - now : Duration();
  }

 private:
  // Cache granularity is /24 (the dominant customer allocation unit of the
  // measurement era), keyed by the destination's /24 block.
  static Prefix CacheKey(IPv4Address destination) {
    return Prefix(destination, 24);
  }

  void InsertCacheEntry(const Prefix& key, IPv4Address next_hop);
  void InvalidateCovered(const Prefix& prefix);
  void ChargeCpu(Duration cost, TimePoint now);

  Params params_;
  RadixTrie<IPv4Address> fib_;

  // LRU cache: map key -> (next hop, position in the recency list).
  struct CacheEntry {
    IPv4Address next_hop;
    std::list<Prefix>::iterator lru_position;
  };
  std::unordered_map<Prefix, CacheEntry> cache_;
  std::list<Prefix> lru_;  // front = most recent

  TimePoint cpu_busy_until_;
  Stats stats_;
};

}  // namespace iri::sim
