#include "sim/link.h"

namespace iri::sim {

void Link::AttachObservability(obs::Registry* registry, obs::Tracer* tracer,
                               std::string name) {
  name_ = std::move(name);
  tracer_ = tracer;
  if (registry == nullptr) {
    fails_ = restores_ = messages_metric_ = bytes_metric_ = nullptr;
    return;
  }
  fails_ = &registry->GetCounter("link.fails");
  restores_ = &registry->GetCounter("link.restores");
  messages_metric_ = &registry->GetCounter("link.messages");
  bytes_metric_ = &registry->GetCounter("link.bytes");
}

void Link::Restore() {
  if (up_) return;
  up_ = true;
  if (prov_ != nullptr) transition_cause_ = prov_->Current();
  if (restores_) restores_->Add(1);
  IRI_TRACE(tracer_, sched_.Now(), "link_restore", .Str("link", name_));
  if (a_.endpoint) a_.endpoint->OnTransportUp(a_.peer_id);
  if (b_.endpoint) b_.endpoint->OnTransportUp(b_.peer_id);
}

void Link::Fail() {
  if (!up_) return;
  up_ = false;
  ++epoch_;  // orphan anything still in flight
  if (prov_ != nullptr) transition_cause_ = prov_->Current();
  if (fails_) fails_->Add(1);
  IRI_TRACE(tracer_, sched_.Now(), "link_fail",
            .Str("link", name_).U64("epoch", epoch_));
  if (a_.endpoint) a_.endpoint->OnTransportDown(a_.peer_id);
  if (b_.endpoint) b_.endpoint->OnTransportDown(b_.peer_id);
}

void Link::Send(const LinkEndpoint* from, std::vector<std::uint8_t> bytes,
                obs::CauseVec causes) {
  if (!up_) return;
  const Side& dst = (from == a_.endpoint) ? b_ : a_;
  if (dst.endpoint == nullptr) return;
  ++messages_carried_;
  bytes_carried_ += bytes.size();
  if (messages_metric_) {
    messages_metric_->Add(1);
    bytes_metric_->Add(bytes.size());
  }
  const std::uint64_t epoch = epoch_;
  sched_.After(latency_, [this, dst, epoch, data = std::move(bytes),
                          tags = std::move(causes)]() mutable {
    if (epoch != epoch_ || !up_) return;  // carrier dropped in flight
    dst.endpoint->OnWireData(dst.peer_id, std::move(data), std::move(tags));
  });
}

void LineFailureProcess::Start() { ScheduleFailure(); }

void LineFailureProcess::ScheduleFailure() {
  const double m = rate_multiplier_ <= 0 ? 1e-6 : rate_multiplier_;
  const Duration wait =
      Duration::Seconds(rng_.Exponential(params_.mean_time_to_failure.ToSeconds() / m));
  sched_.After(wait, [this] {
    if (link_.up()) {
      link_.Fail();
      ++failures_;
    }
    ScheduleRepair();
  });
}

void LineFailureProcess::ScheduleRepair() {
  const Duration wait =
      Duration::Seconds(rng_.Exponential(params_.mean_time_to_repair.ToSeconds()));
  sched_.After(wait, [this] {
    link_.Restore();
    ScheduleFailure();
  });
}

void CsuOscillator::Start() { ScheduleEpisode(); }

void CsuOscillator::ScheduleEpisode() {
  const Duration wait =
      Duration::Seconds(rng_.Exponential(params_.mean_episode_gap.ToSeconds()));
  sched_.After(wait, [this] {
    ++episodes_;
    Beat(sched_.Now() + params_.episode_length);
  });
}

void CsuOscillator::Beat(TimePoint episode_end) {
  if (sched_.Now() >= episode_end) {
    link_.Restore();  // episode over; make sure the line is back up
    ScheduleEpisode();
    return;
  }
  ++beats_;
  link_.Fail();
  sched_.After(params_.carrier_loss, [this] { link_.Restore(); });
  // Next beat: near-constant period with a small wobble (clock drift moves
  // slowly, so successive beats stay phase-coherent).
  const double wobble =
      1.0 + params_.period_wobble * (2.0 * rng_.Uniform() - 1.0);
  sched_.After(params_.beat_period * wobble,
               [this, episode_end] { Beat(episode_end); });
}

}  // namespace iri::sim
