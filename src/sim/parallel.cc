// iri-lint: the threads rule exempts this file — it is the single home of
// raw threading primitives (see parallel.h for the determinism argument).
#include "sim/parallel.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace iri::sim {

int DefaultParallelism() {
  if (const char* env = std::getenv("IRI_PARALLEL_EXCHANGES")) {
    const int parsed = std::atoi(env);
    if (parsed > 0) return parsed;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void ParallelFor(int n, int threads, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  if (threads <= 0) threads = DefaultParallelism();
  threads = std::min(threads, n);

  if (threads == 1) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<int> next{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;

  auto worker = [&] {
    for (;;) {
      const int i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads - 1));
  for (int t = 0; t < threads - 1; ++t) pool.emplace_back(worker);
  worker();  // the calling thread is worker #0
  for (auto& th : pool) th.join();

  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace iri::sim
