#include "sim/router.h"

#include <cassert>

namespace iri::sim {

Router::Router(Scheduler& sched, RouterConfig config, std::uint64_t seed)
    : sched_(sched),
      config_(std::move(config)),
      rng_(seed),
      dampener_(config_.dampening),
      busy_until_(TimePoint::Origin()) {
  rib_.AddPeer(bgp::kLocalPeer, IPv4Address(0));
}

bgp::PeerId Router::AttachLink(Link& link, bool side_a, bgp::Asn remote_asn,
                               bgp::Policy import_policy,
                               bgp::Policy export_policy) {
  const bgp::PeerId id = static_cast<bgp::PeerId>(peers_.size());
  bgp::SessionConfig fsm_cfg;
  fsm_cfg.local_asn = config_.asn;
  fsm_cfg.router_id = config_.router_id;
  fsm_cfg.hold_time_s = config_.hold_time_s;
  peers_.emplace_back(fsm_cfg, config_.packer, rng_.Next(),
                      std::move(import_policy), std::move(export_policy));
  peers_[id].link = &link;
  peers_[id].remote_asn = remote_asn;
  if (side_a) {
    link.AttachA(this, id);
  } else {
    link.AttachB(this, id);
  }
  // Router ids must be registered before routes can arrive. Remote router id
  // is modeled as the remote interface; we only need a deterministic
  // tie-break value, so derive it from the remote ASN and peer id.
  rib_.AddPeer(id, IPv4Address((remote_asn << 8) | (id & 0xFF)));
  peers_[id].fsm.SetTracer(tracer_, PeerLabel(id));
  return id;
}

std::string Router::PeerLabel(bgp::PeerId id) const {
  return config_.name + "/peer" + std::to_string(id);
}

void Router::AttachObservability(obs::Registry* registry,
                                 obs::Tracer* tracer) {
  tracer_ = tracer;
  // Suppress/release transitions trace from inside the dampener itself.
  dampener_.SetTracer(tracer);
  if (registry == nullptr) {
    metrics_ = RouterMetrics{};
    encode_site_ = decode_site_ = obs::ProfileSite{};
    rib_.AttachProfile(nullptr);
  } else {
    metrics_.messages_rx = &registry->GetCounter("router.messages_rx");
    metrics_.messages_tx = &registry->GetCounter("router.messages_tx");
    metrics_.updates_rx = &registry->GetCounter("router.updates_rx");
    metrics_.updates_tx = &registry->GetCounter("router.updates_tx");
    metrics_.decode_failures = &registry->GetCounter("router.decode_failures");
    metrics_.session_ups = &registry->GetCounter("router.session_ups");
    metrics_.session_downs = &registry->GetCounter("router.session_downs");
    metrics_.crashes = &registry->GetCounter("router.crashes");
    metrics_.damped_updates = &registry->GetCounter("router.damped_updates");
    metrics_.backlog_high_events =
        &registry->GetCounter("router.backlog_high_events");
    encode_site_ = obs::MakeProfileSite(*registry, "codec.encode");
    decode_site_ = obs::MakeProfileSite(*registry, "codec.decode");
    rib_.AttachProfile(registry);
  }
  for (bgp::PeerId id = 0; id < peers_.size(); ++id) {
    peers_[id].fsm.SetTracer(tracer_, PeerLabel(id));
  }
}

void Router::Originate(const bgp::Route& route) {
  if (crashed_) return;
  // Injection entry point: ops emitted for this change carry the ambient
  // cause (depth 0 — this is the router where the fault was injected).
  const obs::CauseTag cause = AmbientCause();
  // Border dampening (RFC 2439 deployed at the provider edge): flapping
  // customer routes accumulate penalty and, once suppressed, are installed
  // locally but NOT advertised until the reuse timer releases them.
  bool suppressed = false;
  if (config_.enable_dampening) {
    const std::uint32_t* prev = local_index_.Find(route.prefix);
    const bool exists = prev != nullptr && *prev != kNoLocalRoute;
    const bool attr_change =
        exists && !local_routes_[*prev].attributes.ForwardingEquivalent(
                      route.attributes);
    const auto verdict = dampener_.OnAnnounce(
        {route.prefix, bgp::kLocalPeer}, sched_.Now(), attr_change);
    suppressed = verdict != bgp::DampVerdict::kPass;
  }
  auto [slot, fresh] = local_index_.TryEmplace(route.prefix);
  if (fresh || *slot == kNoLocalRoute) {
    *slot = static_cast<std::uint32_t>(local_routes_.size());
    local_routes_.push_back(route);
  } else {
    local_routes_[*slot] = route;
  }
  // Local routes win the decision against any learned path. The scratch
  // member keeps its buffer capacity across the scenario's hundreds of
  // thousands of Originate calls.
  originate_scratch_ = route.attributes;
  originate_scratch_.local_pref = 1000;
  const bgp::RibChange change =
      rib_.Announce(bgp::kLocalPeer, route.prefix, originate_scratch_);
  if (suppressed) {
    ++stats_.damped_updates;
    if (metrics_.damped_updates) metrics_.damped_updates->Add(1);
    // Re-advertise when the dampener releases the route — the "legitimate
    // announcements delayed" cost the paper warns about.
    const TimePoint reuse =
        dampener_.ReuseTime({route.prefix, bgp::kLocalPeer}, sched_.Now());
    const Prefix prefix = route.prefix;
    sched_.At(reuse + Duration::Seconds(1), [this, prefix, cause] {
      if (crashed_ || !HasLocalRoute(prefix)) return;
      if (dampener_.IsSuppressed({prefix, bgp::kLocalPeer}, sched_.Now())) {
        return;  // re-flapped in the meantime; a later release is scheduled
      }
      // The delayed release still descends from the suppressed flap's cause.
      PropagateChange(prefix, cause);
    });
    return;
  }
  if (change.best_changed) PropagateChange(route.prefix, cause);
}

void Router::WithdrawLocal(const Prefix& prefix) {
  if (crashed_) return;
  const obs::CauseTag cause = AmbientCause();
  if (config_.enable_dampening) {
    dampener_.OnWithdraw({prefix, bgp::kLocalPeer}, sched_.Now());
  }
  if (std::uint32_t* slot = local_index_.Find(prefix);
      slot != nullptr && *slot != kNoLocalRoute) {
    // Swap-erase the dense vector; the index has no single-key erase, so the
    // vacated entry is tombstoned in place.
    const std::uint32_t i = *slot;
    const std::uint32_t last =
        static_cast<std::uint32_t>(local_routes_.size()) - 1;
    if (i != last) {
      local_routes_[i] = std::move(local_routes_[last]);
      *local_index_.Find(local_routes_[i].prefix) = i;
    }
    local_routes_.pop_back();
    *slot = kNoLocalRoute;
  }
  const bgp::RibChange change = rib_.Withdraw(bgp::kLocalPeer, prefix);
  if (config_.stateless_bgp && rib_.Best(prefix) == nullptr) {
    BroadcastWithdraw(prefix, cause);
  }
  if (change.best_changed) PropagateChange(prefix, cause);
}

bool Router::HasLocalRoute(const Prefix& prefix) const {
  const std::uint32_t* slot = local_index_.Find(prefix);
  return slot != nullptr && *slot != kNoLocalRoute;
}

void Router::SprayWithdrawals(std::span<const Prefix> prefixes) {
  if (crashed_ || !config_.stateless_bgp) return;
  const obs::CauseTag cause = AmbientCause();
  for (const Prefix& p : prefixes) BroadcastWithdraw(p, cause);
}

void Router::InternalReset(double dirty_fraction) {
  if (crashed_) return;
  if (!config_.stateless_bgp) {
    // A stateful implementation coalesces the withdraw/re-learn pair inside
    // one flush window: nothing reaches any peer.
    return;
  }
  // The local routes behind the reset adjacency are marked dirty by the
  // IGP/iBGP reconvergence. The stateless flush re-sends current state for
  // exported prefixes (AADup at receivers) and emits withdrawals for
  // prefixes export policy never announced (WWDup). The sweep order (which
  // reaches the wire) is the dense vector's insertion/swap-erase order — a
  // pure function of the call history, not of any hash layout.
  const obs::CauseTag cause = AmbientCause();
  const std::size_t n = local_routes_.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (dirty_fraction < 1.0 && rng_.Uniform() >= dirty_fraction) continue;
    PropagateChange(local_routes_[i].prefix, cause);
  }
}

bgp::SessionState Router::PeerSessionState(bgp::PeerId peer) const {
  return peers_[peer].fsm.state();
}

bgp::Asn Router::PeerAsn(bgp::PeerId peer) const {
  return peers_[peer].remote_asn;
}

Duration Router::Backlog() const {
  const TimePoint now = sched_.Now();
  return busy_until_ > now ? busy_until_ - now : Duration();
}

// ---------------------------------------------------------------- sessions

void Router::OnTransportUp(std::uint32_t peer) {
  if (crashed_) return;
  Peer& p = peers_[peer];
  bgp::SessionFsm::Actions actions;
  p.fsm.Start(sched_.Now(), actions);
  p.fsm.OnTransportUp(sched_.Now(), actions);
  HandleFsmActions(peer, actions);
  ScheduleFsmTimer(peer);
}

void Router::OnTransportDown(std::uint32_t peer) {
  Peer& p = peers_[peer];
  bgp::SessionFsm::Actions actions;
  p.fsm.OnTransportDown(sched_.Now(), actions);
  HandleFsmActions(peer, actions);
  ScheduleFsmTimer(peer);
}

void Router::OnWireData(std::uint32_t peer, std::vector<std::uint8_t> bytes,
                        obs::CauseVec causes) {
  if (crashed_) return;
  Peer& p = peers_[peer];
  ++stats_.messages_rx;
  if (metrics_.messages_rx) metrics_.messages_rx->Add(1);

  // UPDATEs — the dominant wire type — decode into the router's scratch
  // message, reusing its buffers; everything else takes the allocating
  // Decode. The type byte sits at the fixed header offset, so routing on it
  // before decoding is exact, and DecodeUpdateInto applies the same
  // validation Decode would.
  const bool wire_is_update =
      bytes.size() >= bgp::kHeaderSize &&
      bytes[bgp::kHeaderSize - 1] ==
          static_cast<std::uint8_t>(bgp::MessageType::kUpdate);
  const bgp::UpdateMessage* update = nullptr;
  std::optional<bgp::Message> msg;
  {
    obs::ScopedTimer timer(&decode_site_, bytes.size());
    if (wire_is_update) {
      if (bgp::DecodeUpdateInto(bytes, decode_scratch_)) {
        update = &decode_scratch_;
      }
    } else {
      msg = bgp::Decode(bytes);
    }
  }
  if (update == nullptr && !msg) {
    ++stats_.decode_failures;
    if (metrics_.decode_failures) metrics_.decode_failures->Add(1);
    return;
  }

  // Charge the CPU for receive processing.
  Duration cost = config_.cost_per_message;
  if (update != nullptr) {
    cost += config_.cost_per_prefix *
            static_cast<double>(update->withdrawn.size() +
                                update->nlri.size());
  }
  ChargeCpu(cost);
  if (crashed_) return;  // the crash may have been triggered by this load

  const bool was_established =
      p.fsm.state() == bgp::SessionState::kEstablished;
  bgp::SessionFsm::Actions actions;
  if (update != nullptr) {
    // The FSM dispatches on the message's *type* only (an UPDATE's payload
    // never reaches it — established sessions just refresh the hold timer,
    // other states tear down or ignore), so a payload-free stand-in drives
    // it identically without copying the scratch into a variant.
    const bgp::Message update_stand_in{bgp::UpdateMessage{}};
    p.fsm.OnMessage(sched_.Now(), update_stand_in, actions);
  } else {
    p.fsm.OnMessage(sched_.Now(), *msg, actions);
  }
  HandleFsmActions(peer, actions);
  ScheduleFsmTimer(peer);

  if (was_established && p.established && update != nullptr) {
    ++stats_.updates_rx;
    if (metrics_.updates_rx) metrics_.updates_rx->Add(1);
    if (tap_) tap_(sched_.Now(), peer, p.remote_asn, *update, bytes, causes);
    ProcessUpdate(peer, *update, causes);
  }
}

void Router::HandleFsmActions(bgp::PeerId id,
                              const bgp::SessionFsm::Actions& acts) {
  Peer& p = peers_[id];
  for (const auto& act : acts) {
    switch (act.type) {
      case bgp::SessionFsm::ActionType::kSendOpen: {
        bgp::OpenMessage open;
        open.asn = config_.asn;
        open.hold_time_s = config_.hold_time_s;
        open.bgp_identifier = config_.router_id;
        SendMessage(id, open, /*priority=*/true);
        break;
      }
      case bgp::SessionFsm::ActionType::kSendKeepAlive:
        SendMessage(id, bgp::KeepAliveMessage{},
                    /*priority=*/config_.bgp_priority_queuing);
        break;
      case bgp::SessionFsm::ActionType::kSendNotification:
        SendMessage(id, act.notification, /*priority=*/true);
        break;
      case bgp::SessionFsm::ActionType::kSessionUp:
        p.established = true;
        ++stats_.session_ups;
        if (metrics_.session_ups) metrics_.session_ups->Add(1);
        OnSessionUp(id);
        break;
      case bgp::SessionFsm::ActionType::kSessionDown:
        p.established = false;
        ++stats_.session_downs;
        if (metrics_.session_downs) metrics_.session_downs->Add(1);
        OnSessionDown(id);
        break;
    }
  }
}

void Router::ScheduleFsmTimer(bgp::PeerId id) {
  Peer& p = peers_[id];
  const TimePoint deadline = p.fsm.NextDeadline();
  if (deadline == TimePoint::Max()) return;
  // Lazy re-arm. SessionFsm::OnTimer is a pure deadline poll (every branch
  // guards on now >= deadline), so a poll already pending at or before the
  // new deadline will observe the moved deadline when it fires and re-arm
  // itself. The alternative — cancel-and-reschedule on every received
  // message — leaves one dead heap entry per message in the scheduler
  // (millions at paper scale; the hold timer moves on every keepalive).
  if (p.timer_armed <= deadline) return;
  p.timer_armed = deadline;
  sched_.At(deadline, [this, id] { FsmTimerFired(id); });
}

void Router::FsmTimerFired(bgp::PeerId id) {
  Peer& p = peers_[id];
  const TimePoint now = sched_.Now();
  // A poll that is not the tracked earliest one (superseded by an earlier
  // arm, or cancelled by Crash) is dead weight: drop it.
  if (p.timer_armed > now) return;
  p.timer_armed = TimePoint::Max();
  if (crashed_) return;
  const TimePoint deadline = p.fsm.NextDeadline();
  if (deadline == TimePoint::Max()) return;
  if (deadline > now) {
    // The deadline moved since this poll was armed (hold timer refreshed by
    // traffic): re-arm without consulting the FSM.
    ScheduleFsmTimer(id);
    return;
  }
  bgp::SessionFsm::Actions actions;
  p.fsm.OnTimer(now, actions);
  HandleFsmActions(id, actions);
  // Connect retry: if the transport (link) is still there, re-initiate
  // the handshake — the FSM only tracks deadlines, the "TCP connect" is
  // ours to perform.
  if (p.fsm.state() == bgp::SessionState::kConnect && p.link != nullptr &&
      p.link->up()) {
    OnTransportUp(id);
  } else {
    ScheduleFsmTimer(id);
  }
}

obs::CauseTag Router::SessionCause(bgp::PeerId id,
                                   obs::CauseKind emergent_kind) {
  obs::CauseTag cause = AmbientCause();
  if (cause.IsNull() && peers_[id].link != nullptr) {
    // The FSM derived this event from a link transition (possibly after the
    // OPEN handshake latency): inherit the cause captured at the transition.
    cause = peers_[id].link->transition_cause();
  }
  if (cause.IsNull() && prov_ != nullptr) {
    // No injected cause in scope — an emergent protocol event (hold-timer
    // expiry under load, organic re-establishment) becomes its own root.
    cause = prov_->Allocate(emergent_kind, sched_.Now());
  }
  return cause;
}

void Router::OnSessionUp(bgp::PeerId id) {
  FullDump(id, SessionCause(id, obs::CauseKind::kSessionRedump));
}

void Router::OnSessionDown(bgp::PeerId id) {
  Peer& p = peers_[id];
  p.adj_rib_out.clear();
  const obs::CauseTag cause =
      SessionCause(id, obs::CauseKind::kSessionReset);
  // Everything learned from this peer is gone: a genuine topology change.
  for (const Prefix& prefix : rib_.ClearPeer(id)) {
    if (config_.stateless_bgp && rib_.Best(prefix) == nullptr) {
      BroadcastWithdraw(prefix, cause);
    }
    PropagateChange(prefix, cause);
  }
}

void Router::SendMessage(bgp::PeerId id, const bgp::Message& msg,
                         bool priority, obs::CauseVec causes) {
  Peer& p = peers_[id];
  if (p.link == nullptr || !p.link->up()) return;
  ++stats_.messages_tx;
  if (metrics_.messages_tx) metrics_.messages_tx->Add(1);
  if (const auto* u = std::get_if<bgp::UpdateMessage>(&msg)) {
    ++stats_.updates_tx;
    if (metrics_.updates_tx) metrics_.updates_tx->Add(1);
    stats_.prefixes_announced_tx += u->nlri.size();
    stats_.prefixes_withdrawn_tx += u->withdrawn.size();
  }
  std::vector<std::uint8_t> bytes;
  {
    obs::ScopedTimer timer(&encode_site_);
    bytes = bgp::Encode(msg);
    timer.AddItems(bytes.size());
  }
  const TimePoint now = sched_.Now();
  // Non-priority traffic queues behind the CPU backlog; this is the delay
  // that starves KEEPALIVEs on busy route-caching routers.
  const TimePoint when = priority ? now : std::max(now, busy_until_);
  if (when <= now) {
    p.link->Send(this, std::move(bytes), std::move(causes));
  } else {
    Link* link = p.link;
    sched_.At(when, [this, link, data = std::move(bytes),
                     tags = std::move(causes)]() mutable {
      link->Send(this, std::move(data), std::move(tags));
    });
  }
}

// ------------------------------------------------------------ update path

bool Router::DampenAnnounce(bgp::PeerId from, const Prefix& nlri,
                            const bgp::PathAttributes& attrs) {
  const auto* existing = rib_.Best(nlri);
  const bool attr_change =
      existing != nullptr && existing->peer == from &&
      !existing->attributes.ForwardingEquivalent(attrs);
  const auto verdict =
      dampener_.OnAnnounce({nlri, from}, sched_.Now(), attr_change);
  if (verdict == bgp::DampVerdict::kPass) return false;
  ++stats_.damped_updates;
  if (metrics_.damped_updates) metrics_.damped_updates->Add(1);
  return true;
}

void Router::ProcessUpdate(bgp::PeerId from, const bgp::UpdateMessage& update,
                           const obs::CauseVec& causes) {
  Peer& p = peers_[from];
  // Prefixes whose best route changed, paired with the (depth-bumped) cause
  // of the wire event that changed them. The tag is zero bytes when
  // provenance is compiled out, so this is the old vector<Prefix>.
  struct ChangedEntry {
    Prefix prefix;
    [[no_unique_address]] obs::CauseTag cause{};
  };
  std::vector<ChangedEntry> changed;

  // The sideband is aligned with wire event order: withdrawn, then NLRI.
  // Re-propagating a received event moves it one hop further from its root.
  std::size_t ev = 0;
  const auto next_cause = [&causes, &ev]() -> obs::CauseTag {
    const obs::CauseTag tag =
        ev < causes.size() ? causes[ev] : obs::CauseTag{};
    ++ev;
    return tag.Bumped();
  };

  for (const Prefix& w : update.withdrawn) {
    const obs::CauseTag cause = next_cause();
    ++stats_.prefixes_withdrawn_rx;
    if (config_.enable_dampening) {
      dampener_.OnWithdraw({w, from}, sched_.Now());
    }
    const bgp::RibChange change = rib_.Withdraw(from, w);
    if (config_.stateless_bgp && rib_.Best(w) == nullptr) {
      // Any withdrawal — even for a route we never carried — is sprayed at
      // every peer: the implementation keeps no record of what it told whom.
      BroadcastWithdraw(w, cause);
    }
    if (change.best_changed) changed.push_back({w, cause});
  }

  // An identity import policy (the common case) lets every NLRI prefix of
  // the message share the decoded attribute set directly: no per-prefix
  // Route copy, and the RIB copy-assigns into recycled candidate storage.
  const bool identity_import = p.import_policy.IsIdentity();
  for (const Prefix& nlri : update.nlri) {
    const obs::CauseTag cause = next_cause();
    ++stats_.prefixes_announced_rx;
    if (update.attributes.as_path.Contains(config_.asn)) {
      ++stats_.loops_rejected;
      continue;
    }
    if (!identity_import) {
      bgp::Route route{nlri, update.attributes};
      if (!p.import_policy.ApplyInPlace(route)) {
        // Denied by policy: make sure no earlier route from this peer
        // lingers.
        const bgp::RibChange change = rib_.Withdraw(from, nlri);
        if (change.best_changed) changed.push_back({nlri, cause});
        continue;
      }
      if (config_.enable_dampening &&
          DampenAnnounce(from, nlri, route.attributes)) {
        if (rib_.Withdraw(from, nlri).best_changed) {
          changed.push_back({nlri, cause});
        }
        continue;
      }
      const bgp::RibChange change = rib_.Announce(from, std::move(route));
      if (change.best_changed) changed.push_back({nlri, cause});
      continue;
    }
    if (config_.enable_dampening &&
        DampenAnnounce(from, nlri, update.attributes)) {
      if (rib_.Withdraw(from, nlri).best_changed) {
        changed.push_back({nlri, cause});
      }
      continue;
    }
    const bgp::RibChange change =
        rib_.Announce(from, nlri, update.attributes);
    if (change.best_changed) changed.push_back({nlri, cause});
  }

  for (const ChangedEntry& entry : changed) {
    PropagateChange(entry.prefix, entry.cause);
  }
}

void Router::PropagateChange(const Prefix& prefix, obs::CauseTag cause) {
  if (config_.no_reexport) return;
  // One Best() lookup for the whole peer fan-out.
  const bgp::Candidate* best = rib_.Best(prefix);
  for (bgp::PeerId id = 0; id < peers_.size(); ++id) {
    Peer& p = peers_[id];
    if (!p.established) continue;
    std::optional<bgp::PathAttributes> exported;
    if (best != nullptr) exported = ExportCandidate(p, prefix, *best);
    if (exported) {
      EnqueueOp(id, bgp::RouteOp{prefix, std::move(exported), false, cause});
    } else {
      EnqueueOp(id, bgp::RouteOp{prefix, std::nullopt, false, cause});
    }
  }
}

void Router::BroadcastWithdraw(const Prefix& prefix, obs::CauseTag cause) {
  for (bgp::PeerId id = 0; id < peers_.size(); ++id) {
    if (!peers_[id].established) continue;
    EnqueueOp(id, bgp::RouteOp{prefix, std::nullopt, false, cause});
  }
}

std::optional<bgp::PathAttributes> Router::ExportRoute(
    const Peer& peer, const Prefix& prefix) const {
  const bgp::Candidate* best = rib_.Best(prefix);
  if (best == nullptr) return std::nullopt;
  return ExportCandidate(peer, prefix, *best);
}

std::optional<bgp::PathAttributes> Router::ExportCandidate(
    const Peer& peer, const Prefix& prefix, const bgp::Candidate& best) const {
  // Split horizon: never hand a route back to the peer it came from.
  if (best.peer != bgp::kLocalPeer && &peer == &peers_[best.peer]) {
    return std::nullopt;
  }
  // Sender-side loop avoidance: the receiver would reject it anyway.
  if (best.attributes.as_path.Contains(peer.remote_asn)) return std::nullopt;

  bgp::Route route{prefix, best.attributes};
  if (!peer.export_policy.ApplyInPlace(route)) return std::nullopt;
  if (!config_.transparent) {
    route.attributes.as_path.Prepend(config_.asn);
    route.attributes.next_hop = config_.interface_addr;
  }
  // LOCAL_PREF is iBGP-only; all peerings here are external.
  route.attributes.local_pref.reset();
  return std::move(route.attributes);
}

void Router::EnqueueOp(bgp::PeerId id, bgp::RouteOp op) {
  Peer& p = peers_[id];
  p.queue.Enqueue(sched_.Now(), std::move(op));
  if (!p.flush_scheduled) {
    p.flush_scheduled = true;
    sched_.At(p.queue.NextFlush(), [this, id] { FlushPeer(id); });
  }
}

void Router::FlushPeer(bgp::PeerId id) {
  Peer& p = peers_[id];
  p.flush_scheduled = false;
  if (crashed_) return;
  std::vector<bgp::RouteOp> ops = p.queue.Flush(sched_.Now());
  if (!p.established || ops.empty()) return;

  std::vector<bgp::RouteOp> final_ops;
  final_ops.reserve(ops.size());
  for (auto& op : ops) {
    if (config_.stateless_bgp) {
      // No Adj-RIB-Out: everything goes out, duplicates included. A
      // within-window withdraw..announce pair is transmitted as W then A
      // (the implementation sends withdrawals for every withdrawn prefix,
      // then the current state). The expanded W inherits the surviving op's
      // cause — the whole train descends from the same fault.
      if (op.withdraw_preceded) {
        final_ops.push_back(
            bgp::RouteOp{op.prefix, std::nullopt, false, op.cause});
      }
      final_ops.push_back(std::move(op));
      continue;
    }
    auto it = p.adj_rib_out.find(op.prefix);
    if (op.IsWithdraw()) {
      if (it == p.adj_rib_out.end()) continue;  // never told them: suppress
      p.adj_rib_out.erase(it);
      final_ops.push_back(std::move(op));
    } else {
      if (it != p.adj_rib_out.end() && it->second == *op.attributes) {
        continue;  // peer already has exactly this route: suppress duplicate
      }
      p.adj_rib_out[op.prefix] = *op.attributes;
      final_ops.push_back(std::move(op));
    }
  }
  if (final_ops.empty()) return;

  // The packer reorders ops (attribute grouping), so it builds the per-
  // message cause sideband itself; skip the work entirely when compiled out.
  std::vector<obs::CauseVec> msg_causes;
  std::vector<bgp::UpdateMessage> msgs = bgp::PackUpdates(
      final_ops, obs::kProvenanceEnabled ? &msg_causes : nullptr);
  for (std::size_t m = 0; m < msgs.size(); ++m) {
    const bgp::UpdateMessage& msg = msgs[m];
    // Marshaling cost per outbound prefix.
    ChargeCpu(config_.cost_per_prefix *
              (0.25 * static_cast<double>(msg.withdrawn.size() + msg.nlri.size())));
    if (crashed_) return;
    SendMessage(id, msg, /*priority=*/false,
                m < msg_causes.size() ? std::move(msg_causes[m])
                                      : obs::CauseVec{});
  }
}

void Router::FullDump(bgp::PeerId id, obs::CauseTag cause) {
  if (config_.no_reexport) return;
  // A fresh session receives the entire Loc-RIB ("large state dump
  // transmissions" when a flapping session re-establishes). Batched walk:
  // the trie visit hands us each best candidate directly, replacing the
  // collect-then-lookup pass that searched the trie twice per prefix.
  IRI_TRACE(tracer_, sched_.Now(), "redump_start",
            .Str("session", PeerLabel(id)).U64("prefixes", rib_.NumPrefixes()));
  Peer& p = peers_[id];
  std::uint64_t exported_count = 0;
  rib_.VisitBest([&](const Prefix& prefix, const bgp::Candidate& best) {
    auto exported = ExportCandidate(p, prefix, best);
    if (exported) {
      ++exported_count;
      EnqueueOp(id, bgp::RouteOp{prefix, std::move(exported), false, cause});
    }
  });
  IRI_TRACE(tracer_, sched_.Now(), "redump_end",
            .Str("session", PeerLabel(id)).U64("exported", exported_count));
}

// -------------------------------------------------------------- CPU model

TimePoint Router::ChargeCpu(Duration cost) {
  const TimePoint now = sched_.Now();
  if (busy_until_ < now) busy_until_ = now;
  busy_until_ += cost;
  // Backlog beyond one keepalive interval means outbound KEEPALIVEs are
  // consistently late — the precondition of the hold-timer cascade (§3).
  // Edge-triggered so a sustained storm traces as one high/drained pair.
  const Duration backlog = busy_until_ - now;
  const Duration starvation = Duration::Seconds(config_.hold_time_s / 3.0);
  if (!backlog_high_ && backlog > starvation) {
    backlog_high_ = true;
    if (metrics_.backlog_high_events) metrics_.backlog_high_events->Add(1);
    IRI_TRACE(tracer_, now, "backlog_high",
              .Str("router", config_.name).I64("backlog_ns", backlog.nanos()));
  } else if (backlog_high_ && backlog <= starvation) {
    backlog_high_ = false;
    IRI_TRACE(tracer_, now, "backlog_drained",
              .Str("router", config_.name).I64("backlog_ns", backlog.nanos()));
  }
  if (config_.crash_backlog > Duration() &&
      busy_until_ - now > config_.crash_backlog) {
    Crash();
  }
  return busy_until_;
}

void Router::Crash() {
  if (crashed_) return;
  crashed_ = true;
  ++stats_.crashes;
  if (metrics_.crashes) metrics_.crashes->Add(1);
  IRI_TRACE(tracer_, sched_.Now(), "router_crash",
            .Str("router", config_.name)
            .I64("backlog_ns", (busy_until_ - sched_.Now()).nanos()));
  // The router is gone: no NOTIFICATIONs, no teardown courtesy. Peers will
  // discover via their hold timers. All protocol state is lost.
  for (auto& p : peers_) {
    bgp::SessionFsm::Actions ignored;
    p.fsm.Stop(sched_.Now(), ignored);  // discard actions: a dead box is mute
    p.established = false;
    p.adj_rib_out.clear();
    p.timer_armed = TimePoint::Max();  // cancel outstanding timer polls
  }
  // Drop every learned route; local (customer) routes survive on NVRAM.
  std::vector<bgp::PeerId> ids;
  for (bgp::PeerId id = 0; id < peers_.size(); ++id) ids.push_back(id);
  for (bgp::PeerId id : ids) rib_.ClearPeer(id);
  sched_.After(config_.reboot_time, [this] { Reboot(); });
}

void Router::Reboot() {
  crashed_ = false;
  busy_until_ = sched_.Now();
  backlog_high_ = false;
  IRI_TRACE(tracer_, sched_.Now(), "router_recover",
            .Str("router", config_.name));
  for (bgp::PeerId id = 0; id < peers_.size(); ++id) {
    Peer& p = peers_[id];
    if (p.link != nullptr && p.link->up()) {
      // Re-initiate the BGP handshake on every surviving transport.
      OnTransportUp(id);
    }
  }
}

}  // namespace iri::sim
