#include "core/snapshot.h"

#include <cstdio>

namespace iri::core {

TableComposition AnalyzeTable(const bgp::Rib& rib) {
  TableComposition comp;
  std::set<std::string> paths;
  std::set<bgp::Asn> ases;
  rib.VisitPathCounts([&rib, &comp, &paths, &ases](const Prefix& prefix,
                                                   std::size_t num_paths) {
    ++comp.prefixes;
    comp.routes += num_paths;
    if (num_paths > 1) ++comp.multihomed;
    if (prefix.length() < 17) ++comp.aggregates;
    for (const auto& candidate : rib.CandidatesFor(prefix)) {
      paths.insert(candidate.attributes.as_path.ToString());
      for (const auto& segment : candidate.attributes.as_path.segments()) {
        for (bgp::Asn asn : segment.asns) ases.insert(asn);
      }
    }
  });
  comp.unique_as_paths = paths.size();
  comp.autonomous_systems = ases.size();
  return comp;
}

std::string TableComposition::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%zu prefixes (%zu aggregates), %zu paths, %zu unique "
                "ASPATHs, %zu ASes, %zu multihomed",
                prefixes, aggregates, routes, unique_as_paths,
                autonomous_systems, multihomed);
  return buf;
}

TableSnapshot TableSnapshot::Capture(const bgp::Rib& rib) {
  TableSnapshot snap;
  rib.VisitBest([&snap](const Prefix& prefix, const bgp::Candidate& best) {
    snap.entries_[prefix] = best.attributes.as_path.ToString();
  });
  return snap;
}

TableDelta TableSnapshot::DiffAgainst(const TableSnapshot& later) const {
  TableDelta delta;
  auto old_it = entries_.begin();
  auto new_it = later.entries_.begin();
  while (old_it != entries_.end() || new_it != later.entries_.end()) {
    if (new_it == later.entries_.end() ||
        (old_it != entries_.end() && old_it->first < new_it->first)) {
      ++delta.removed;
      ++old_it;
    } else if (old_it == entries_.end() || new_it->first < old_it->first) {
      ++delta.added;
      ++new_it;
    } else {
      if (old_it->second != new_it->second) ++delta.path_changed;
      ++old_it;
      ++new_it;
    }
  }
  return delta;
}

}  // namespace iri::core
