#include "core/report.h"

#include <algorithm>
#include <cstdio>

namespace iri::core {

std::string FormatTable(const std::vector<std::string>& header,
                        const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> widths(header.size());
  for (std::size_t c = 0; c < header.size(); ++c) widths[c] = header[c].size();
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&widths](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += row[c];
      line.append(widths[c] - row[c].size() + 2, ' ');
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + "\n";
  };
  std::string out = emit_row(header);
  std::string rule;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule.append(widths[c], '-');
    rule.append(2, ' ');
  }
  while (!rule.empty() && rule.back() == ' ') rule.pop_back();
  out += rule + "\n";
  for (const auto& row : rows) out += emit_row(row);
  return out;
}

std::string FormatCategoryReport(const CategoryCounts& counts) {
  std::vector<std::vector<std::string>> rows;
  const std::uint64_t total = counts.Total();
  for (std::size_t i = 0; i < kNumCategories; ++i) {
    const auto c = static_cast<Category>(i);
    const std::uint64_t n = counts.Of(c);
    char pct[32];
    std::snprintf(pct, sizeof(pct), "%.2f%%",
                  total == 0 ? 0.0 : 100.0 * static_cast<double>(n) /
                                         static_cast<double>(total));
    rows.push_back({ToString(c), std::to_string(n), pct});
  }
  std::string out =
      FormatTable({"category", "events", "share"}, rows);
  out += "\n";
  out += "announcements:        " + std::to_string(counts.announcements) + "\n";
  out += "withdrawals:          " + std::to_string(counts.withdrawals) + "\n";
  out += "instability (WADiff+AADiff+WADup): " +
         std::to_string(counts.Instability()) + "\n";
  out += "pathology   (AADup+WWDup):         " +
         std::to_string(counts.Pathology()) + "\n";
  out += "policy fluctuations:  " + std::to_string(counts.policy_fluctuations) +
         "\n";
  return out;
}

std::string AsciiBar(double value, double max_value, int width) {
  if (max_value <= 0) max_value = 1;
  int n = static_cast<int>(value / max_value * width + 0.5);
  n = std::clamp(n, 0, width);
  return std::string(static_cast<std::size_t>(n), '#');
}

}  // namespace iri::core
