#include "core/report.h"

#include <algorithm>
#include <cstdio>

#include "core/classifier.h"

namespace iri::core {

std::string FormatTable(const std::vector<std::string>& header,
                        const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> widths(header.size());
  for (std::size_t c = 0; c < header.size(); ++c) widths[c] = header[c].size();
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&widths](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += row[c];
      line.append(widths[c] - row[c].size() + 2, ' ');
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + "\n";
  };
  std::string out = emit_row(header);
  std::string rule;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule.append(widths[c], '-');
    rule.append(2, ' ');
  }
  while (!rule.empty() && rule.back() == ' ') rule.pop_back();
  out += rule + "\n";
  for (const auto& row : rows) out += emit_row(row);
  return out;
}

std::string FormatCategoryReport(const CategoryCounts& counts) {
  std::vector<std::vector<std::string>> rows;
  const std::uint64_t total = counts.Total();
  for (std::size_t i = 0; i < kNumCategories; ++i) {
    const auto c = static_cast<Category>(i);
    const std::uint64_t n = counts.Of(c);
    char pct[32];
    std::snprintf(pct, sizeof(pct), "%.2f%%",
                  total == 0 ? 0.0 : 100.0 * static_cast<double>(n) /
                                         static_cast<double>(total));
    rows.push_back({ToString(c), std::to_string(n), pct});
  }
  std::string out =
      FormatTable({"category", "events", "share"}, rows);
  out += "\n";
  out += "announcements:        " + std::to_string(counts.announcements) + "\n";
  out += "withdrawals:          " + std::to_string(counts.withdrawals) + "\n";
  out += "instability (WADiff+AADiff+WADup): " +
         std::to_string(counts.Instability()) + "\n";
  out += "pathology   (AADup+WWDup):         " +
         std::to_string(counts.Pathology()) + "\n";
  out += "policy fluctuations:  " + std::to_string(counts.policy_fluctuations) +
         "\n";
  return out;
}

std::string AsciiBar(double value, double max_value, int width) {
  if (max_value <= 0) max_value = 1;
  int n = static_cast<int>(value / max_value * width + 0.5);
  n = std::clamp(n, 0, width);
  return std::string(static_cast<std::size_t>(n), '#');
}

// ---------------------------------------------------------- attribution

namespace {

// One flattened row of the top-causes list: ids are exchange-local, so the
// (exchange, id) pair is the cause's full identity.
struct CauseRow {
  std::size_t exchange = 0;
  std::uint32_t id = 0;
  obs::CauseKind kind = obs::CauseKind::kNone;
  TimePoint injected;
  obs::ShardProvenance::CauseStats stats;
};

// Flattens per-exchange cause tables into rows ordered by blast radius
// (updates desc), tie-broken on (exchange, id) so the order is total.
std::vector<CauseRow> TopCauses(
    std::span<const obs::ExchangeAttribution> exchanges, std::size_t limit) {
  std::vector<CauseRow> rows;
  for (std::size_t e = 0; e < exchanges.size(); ++e) {
    const auto& stats = exchanges[e].observed.cause_stats();
    for (std::size_t i = 0; i < stats.size(); ++i) {
      if (stats[i].updates == 0) continue;
      CauseRow row;
      row.exchange = e;
      row.id = static_cast<std::uint32_t>(i + 1);
      row.stats = stats[i];
      row.kind = stats[i].kind;
      if (i < exchanges[e].causes.size()) {
        row.kind = exchanges[e].causes[i].kind;
        row.injected = exchanges[e].causes[i].injected;
      }
      rows.push_back(row);
    }
  }
  std::sort(rows.begin(), rows.end(), [](const CauseRow& a, const CauseRow& b) {
    if (a.stats.updates != b.stats.updates) {
      return a.stats.updates > b.stats.updates;
    }
    if (a.exchange != b.exchange) return a.exchange < b.exchange;
    return a.id < b.id;
  });
  if (rows.size() > limit) rows.resize(limit);
  return rows;
}

obs::ShardProvenance CombineObserved(
    std::span<const obs::ExchangeAttribution> exchanges) {
  obs::ShardProvenance combined;
  for (const auto& ex : exchanges) combined.Merge(ex.observed);
  return combined;
}

std::string Seconds(TimePoint t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f",
                static_cast<double>(t.nanos()) / 1e9);
  return buf;
}

}  // namespace

std::string FormatAttributionReport(
    std::span<const obs::ExchangeAttribution> exchanges) {
  const obs::ShardProvenance combined = CombineObserved(exchanges);
  std::size_t total_causes = 0;
  for (const auto& ex : exchanges) total_causes += ex.causes.size();
  const std::uint64_t attributed = combined.attributed();
  const std::uint64_t total = attributed + combined.unattributed();

  std::string out = "== causal attribution ==\n";
  char line[160];
  std::snprintf(line, sizeof(line),
                "exchanges: %zu  causes injected: %zu\n"
                "events attributed: %llu / %llu (%.2f%%)  depth peak: %u\n\n",
                exchanges.size(), total_causes,
                static_cast<unsigned long long>(attributed),
                static_cast<unsigned long long>(total),
                total == 0 ? 0.0
                           : 100.0 * static_cast<double>(attributed) /
                                 static_cast<double>(total),
                static_cast<unsigned>(combined.depth_peak()));
  out += line;

  // Class x cause-kind matrix (events summed over depth). Only kinds that
  // appear anywhere get a column; classes render in taxonomy order.
  std::vector<std::size_t> kinds;
  for (std::size_t k = 1; k < obs::kNumCauseKinds; ++k) {
    std::uint64_t col = 0;
    for (std::size_t c = 0; c < kNumCategories; ++c) {
      for (std::size_t d = 0; d < obs::ShardProvenance::kDepthBuckets; ++d) {
        col += combined.MatrixAt(c, k, d);
      }
    }
    if (col != 0) kinds.push_back(k);
  }
  std::vector<std::string> header{"category"};
  for (std::size_t k : kinds) {
    header.push_back(obs::ToString(static_cast<obs::CauseKind>(k)));
  }
  header.push_back("unattrib");
  std::vector<std::vector<std::string>> rows;
  for (std::size_t c = 0; c < kNumCategories; ++c) {
    if (combined.ClassTotal(c) == 0) continue;
    std::vector<std::string> row{ToString(static_cast<Category>(c))};
    for (std::size_t k : kinds) {
      std::uint64_t cell = 0;
      for (std::size_t d = 0; d < obs::ShardProvenance::kDepthBuckets; ++d) {
        cell += combined.MatrixAt(c, k, d);
      }
      row.push_back(std::to_string(cell));
    }
    row.push_back(
        std::to_string(combined.ClassTotal(c) - combined.ClassAttributed(c)));
    rows.push_back(std::move(row));
  }
  out += FormatTable(header, rows);

  // Hop-depth histogram: how far pathological updates travel from their
  // injection point before being observed.
  out += "\nhop depth (re-propagations from the injected fault):\n";
  std::uint64_t depth_max = 0;
  for (std::size_t d = 0; d < obs::ShardProvenance::kDepthBuckets; ++d) {
    depth_max = std::max(depth_max, combined.DepthBucketTotal(d));
  }
  for (std::size_t d = 0; d < obs::ShardProvenance::kDepthBuckets; ++d) {
    const std::uint64_t n = combined.DepthBucketTotal(d);
    if (n == 0) continue;
    std::snprintf(line, sizeof(line), "  %s%zu  %10llu  %s\n",
                  d + 1 == obs::ShardProvenance::kDepthBuckets ? ">=" : "",
                  d, static_cast<unsigned long long>(n),
                  AsciiBar(static_cast<double>(n),
                           static_cast<double>(depth_max), 40)
                      .c_str());
    out += line;
  }

  // Top causes by blast radius.
  const std::vector<CauseRow> top = TopCauses(exchanges, 10);
  if (!top.empty()) {
    out += "\ntop causes by update volume:\n";
    std::vector<std::vector<std::string>> cause_rows;
    for (const CauseRow& r : top) {
      const double span_s =
          r.stats.last_seen >= r.stats.first_seen
              ? static_cast<double>(
                    (r.stats.last_seen - r.stats.first_seen).nanos()) /
                    1e9
              : 0.0;
      char span[32];
      std::snprintf(span, sizeof(span), "%.1fs", span_s);
      cause_rows.push_back({"ex" + std::to_string(r.exchange) + "#" +
                                std::to_string(r.id),
                            obs::ToString(r.kind), Seconds(r.injected) + "s",
                            std::to_string(r.stats.updates),
                            std::to_string(r.stats.prefixes),
                            std::to_string(r.stats.max_depth), span});
    }
    out += FormatTable({"cause", "kind", "injected", "updates", "routes",
                        "depth", "active"},
                       cause_rows);
  }
  return out;
}

std::string AttributionJson(
    std::span<const obs::ExchangeAttribution> exchanges) {
  const obs::ShardProvenance combined = CombineObserved(exchanges);
  std::size_t total_causes = 0;
  for (const auto& ex : exchanges) total_causes += ex.causes.size();
  const std::uint64_t attributed = combined.attributed();
  const std::uint64_t total = attributed + combined.unattributed();

  std::string out = "{\n";
  char line[192];
  std::snprintf(line, sizeof(line),
                "  \"exchanges\": %zu,\n  \"causes\": %zu,\n"
                "  \"attributed\": %llu,\n  \"unattributed\": %llu,\n"
                "  \"coverage\": %.6f,\n  \"depth_peak\": %u,\n",
                exchanges.size(), total_causes,
                static_cast<unsigned long long>(attributed),
                static_cast<unsigned long long>(combined.unattributed()),
                total == 0 ? 1.0
                           : static_cast<double>(attributed) /
                                 static_cast<double>(total),
                static_cast<unsigned>(combined.depth_peak()));
  out += line;

  out += "  \"matrix\": [\n";
  bool first_cell = true;
  for (std::size_t c = 0; c < kNumCategories; ++c) {
    for (std::size_t k = 0; k < obs::kNumCauseKinds; ++k) {
      std::uint64_t cell = 0;
      for (std::size_t d = 0; d < obs::ShardProvenance::kDepthBuckets; ++d) {
        cell += combined.MatrixAt(c, k, d);
      }
      if (cell == 0) continue;
      std::snprintf(line, sizeof(line),
                    "%s    {\"category\": \"%s\", \"cause\": \"%s\", "
                    "\"events\": %llu}",
                    first_cell ? "" : ",\n", ToString(static_cast<Category>(c)),
                    obs::ToString(static_cast<obs::CauseKind>(k)),
                    static_cast<unsigned long long>(cell));
      out += line;
      first_cell = false;
    }
  }
  out += "\n  ],\n  \"depth_histogram\": [";
  for (std::size_t d = 0; d < obs::ShardProvenance::kDepthBuckets; ++d) {
    std::snprintf(line, sizeof(line), "%s%llu", d == 0 ? "" : ", ",
                  static_cast<unsigned long long>(combined.DepthBucketTotal(d)));
    out += line;
  }
  out += "],\n  \"top_causes\": [\n";
  const std::vector<CauseRow> top = TopCauses(exchanges, 25);
  for (std::size_t i = 0; i < top.size(); ++i) {
    const CauseRow& r = top[i];
    std::snprintf(
        line, sizeof(line),
        "%s    {\"exchange\": %zu, \"id\": %u, \"kind\": \"%s\", "
        "\"injected_s\": %.3f, \"updates\": %llu, \"routes\": %llu, "
        "\"max_depth\": %u}",
        i == 0 ? "" : ",\n", r.exchange, r.id, obs::ToString(r.kind),
        static_cast<double>(r.injected.nanos()) / 1e9,
        static_cast<unsigned long long>(r.stats.updates),
        static_cast<unsigned long long>(r.stats.prefixes),
        static_cast<unsigned>(r.stats.max_depth));
    out += line;
  }
  out += "\n  ]\n}\n";
  return out;
}

}  // namespace iri::core
