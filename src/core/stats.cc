#include "core/stats.h"

#include <algorithm>
#include <cmath>

namespace iri::core {

std::uint64_t PeerDayTally::DayTotal(int day, Category c) const {
  std::uint64_t total = 0;
  for (const auto& [key, cell] : cells_) {
    if (key.second == day) total += cell.counts.Of(c);
  }
  return total;
}

// --------------------------------------------------------------- Figure 7

namespace {

int TrackedIndex(Category c) {
  for (std::size_t i = 0; i < PrefixPeerDaily::kTracked.size(); ++i) {
    if (PrefixPeerDaily::kTracked[i] == c) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace

void PrefixPeerDaily::Add(const ClassifiedEvent& ev) {
  const int idx = TrackedIndex(ev.category);
  if (idx < 0) return;
  const int day = DayOf(ev.event.time);
  if (day != current_day_) Roll(day);
  ++live_[static_cast<std::size_t>(idx)][ev.event.Key()];
}

void PrefixPeerDaily::Finalize() { Roll(current_day_ + 1); }

void PrefixPeerDaily::Roll(int new_day) {
  if (current_day_ >= 0) {
    DayDistribution dist;
    dist.day = current_day_;
    for (std::size_t i = 0; i < live_.size(); ++i) {
      dist.counts[i].reserve(live_[i].size());
      // Hash-order iteration is safe here: only the counts are collected,
      // and the sort below makes the result order-insensitive.
      // iri-det: allow(unordered-in-output)
      for (const auto& [key, count] : live_[i]) {
        dist.counts[i].push_back(count);
      }
      std::sort(dist.counts[i].begin(), dist.counts[i].end());
      live_[i].clear();
    }
    finished_.push_back(std::move(dist));
  }
  current_day_ = new_day;
}

std::vector<double> CumulativeEventProportion(
    const std::vector<std::uint32_t>& counts,
    const std::vector<std::uint32_t>& thresholds) {
  std::vector<std::uint32_t> sorted = counts;
  std::sort(sorted.begin(), sorted.end());
  std::uint64_t total = 0;
  for (auto c : sorted) total += c;
  std::vector<double> out;
  out.reserve(thresholds.size());
  std::size_t i = 0;
  std::uint64_t cum = 0;
  for (std::uint32_t th : thresholds) {
    while (i < sorted.size() && sorted[i] <= th) cum += sorted[i++];
    out.push_back(total == 0 ? 0.0
                             : static_cast<double>(cum) /
                                   static_cast<double>(total));
  }
  return out;
}

// --------------------------------------------------------------- Figure 8

const std::array<Duration, 12>& InterArrivalHistogram::BinEdges() {
  static const std::array<Duration, 12> kEdges = {
      Duration::Seconds(1),  Duration::Seconds(5),  Duration::Seconds(30),
      Duration::Minutes(1),  Duration::Minutes(5),  Duration::Minutes(10),
      Duration::Minutes(30), Duration::Hours(1),    Duration::Hours(2),
      Duration::Hours(4),    Duration::Hours(8),    Duration::Hours(24)};
  return kEdges;
}

const std::array<const char*, 12>& InterArrivalHistogram::BinLabels() {
  static const std::array<const char*, 12> kLabels = {
      "1s", "5s", "30s", "1m", "5m", "10m", "30m", "1h", "2h", "4h", "8h",
      "24h"};
  return kLabels;
}

int InterArrivalHistogram::BinFor(Duration gap) {
  const auto& edges = BinEdges();
  for (std::size_t i = 0; i < edges.size(); ++i) {
    if (gap <= edges[i]) return static_cast<int>(i);
  }
  return static_cast<int>(edges.size()) - 1;  // clamp to the 24h bin
}

void InterArrivalHistogram::Add(const ClassifiedEvent& ev) {
  const int idx = TrackedIndex(ev.category);
  if (idx < 0) return;
  const int day = DayOf(ev.event.time);
  if (day != current_day_) Roll(day);
  auto& last = last_seen_[static_cast<std::size_t>(idx)];
  const auto key = ev.event.Key();
  auto it = last.find(key);
  if (it != last.end()) {
    const Duration gap = ev.event.time - it->second;
    ++live_.bins[static_cast<std::size_t>(idx)]
               [static_cast<std::size_t>(BinFor(gap))];
    it->second = ev.event.time;
  } else {
    last.emplace(key, ev.event.time);
  }
}

void InterArrivalHistogram::Finalize() { Roll(current_day_ + 1); }

void InterArrivalHistogram::Roll(int new_day) {
  if (current_day_ >= 0) {
    live_.day = current_day_;
    finished_.push_back(live_);
    live_ = DayHistogram{};
  }
  // Inter-arrival gaps are allowed to span days; last_seen_ persists.
  current_day_ = new_day;
}

std::array<std::array<InterArrivalHistogram::BinSummary, 12>, 4>
InterArrivalHistogram::Summarize() const {
  std::array<std::array<BinSummary, 12>, 4> out{};
  for (std::size_t cat = 0; cat < 4; ++cat) {
    for (std::size_t bin = 0; bin < 12; ++bin) {
      std::vector<double> proportions;
      for (const auto& day : finished_) {
        std::uint64_t day_total = 0;
        for (std::size_t b = 0; b < 12; ++b) day_total += day.bins[cat][b];
        if (day_total == 0) continue;
        proportions.push_back(static_cast<double>(day.bins[cat][bin]) /
                              static_cast<double>(day_total));
      }
      if (proportions.empty()) continue;
      std::sort(proportions.begin(), proportions.end());
      auto quantile = [&proportions](double q) {
        const double pos = q * static_cast<double>(proportions.size() - 1);
        const std::size_t lo = static_cast<std::size_t>(pos);
        const std::size_t hi = std::min(lo + 1, proportions.size() - 1);
        const double frac = pos - static_cast<double>(lo);
        return proportions[lo] * (1 - frac) + proportions[hi] * frac;
      };
      out[cat][bin] = {quantile(0.25), quantile(0.5), quantile(0.75)};
    }
  }
  return out;
}

// --------------------------------------------------------------- Figure 9

void RoutesAffectedDaily::Add(const ClassifiedEvent& ev) {
  const int day = DayOf(ev.event.time);
  if (day != current_day_) Roll(day);
  const auto key = ev.event.Key();
  if (!ev.event.is_withdraw) {
    universe_.insert(key);
  } else if (!universe_.contains(key)) {
    // A withdrawal for a pair that never announced reachability: not a
    // route; do not let WWDup spray targets dilute the proportions.
    return;
  }
  any_.insert(key);
  if (ev.category == Category::kWADiff) wadiff_.insert(key);
  if (ev.category == Category::kAADiff) aadiff_.insert(key);
  if (IsInstability(ev.category)) instab_.insert(key);
}

void RoutesAffectedDaily::Finalize() { Roll(current_day_ + 1); }

void RoutesAffectedDaily::Roll(int new_day) {
  if (current_day_ >= 0) {
    DayRow row;
    row.day = current_day_;
    row.routes_with_wadiff = wadiff_.size();
    row.routes_with_aadiff = aadiff_.size();
    row.routes_with_instability = instab_.size();
    row.routes_with_any = any_.size();
    row.universe = universe_.size();
    finished_.push_back(row);
  }
  wadiff_.clear();
  aadiff_.clear();
  instab_.clear();
  any_.clear();
  current_day_ = new_day;
}

}  // namespace iri::core
