// The measurement apparatus: taps a route server's peerings, classifies
// every prefix update, optionally logs raw messages in MRT form, and fans
// classified events out to any number of statistics collectors.
//
// This is the software analogue of the paper's §2 methodology: "we logged
// BGP routing messages exchanged with the Routing Arbiter project's route
// servers ... [and] use several tools to decode and analyze the BGP packet
// logs".
//
// Ingestion is a three-stage pipeline (DESIGN.md §13):
//
//   stage 1 (codec, at tap time): MRT logging (zero-copy from the received
//     wire bytes), message counters, the events-per-message histogram and
//     the health monitor's per-event peer feed — everything that does not
//     depend on the event's category. Exploded events are appended to a
//     pending batch.
//   stage 2 (classify, at drain time): the pending batch fans out over the
//     prefix-sharded classifier (ShardedClassifier), each shard processing
//     its own events in arrival order.
//   stage 3 (analysis, at drain time): a serial walk over the batch in
//     arrival order re-joins verdicts with events and feeds the category
//     counters, series instruments and sinks — byte-identical output at any
//     (threads x shards) combination.
//
// Unconfigured monitors (unit tests, offline replay) drain at the end of
// every Ingest call, which makes the pipeline observationally identical to
// the historical one-stage path. Scenario-driven monitors drain on a batch
// cap and at every observation boundary (series tick, midnight, run end).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "core/classifier.h"
#include "core/event.h"
#include "mrt/log.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/timeseries.h"
#include "sim/router.h"

namespace iri::core {

class ExchangeMonitor {
 public:
  using Sink = std::function<void(const ClassifiedEvent&)>;

  // Installs this monitor as `route_server`'s update tap. The monitor must
  // outlive the router (or the tap must be cleared first).
  void Attach(sim::Router& route_server);

  // Registers a collector callback; called for every classified event in
  // arrival order.
  void AddSink(Sink sink) { sinks_.push_back(std::move(sink)); }

  // Mirrors every tapped UPDATE message into an MRT log. Not owned.
  void SetMrtWriter(mrt::Writer* writer) { mrt_ = writer; }

  // Partitions the classifier by prefix space into `shards` shards and
  // switches ingestion to batched draining: events accumulate until
  // `batch_cap` are pending (or Drain() is called) and are then classified
  // with up to `shard_threads` workers. Digests are byte-identical at any
  // (shards, shard_threads, batch_cap) combination; only throughput moves.
  // Must be called before any event is ingested.
  void ConfigureSharding(int shards, int shard_threads,
                         std::size_t batch_cap = kDefaultBatchCap);

  // Classifies everything pending and feeds the analysis stage. Safe to
  // call at any time; the scenario drains at every observation boundary.
  void Drain();

  // Attaches the monitor.* instruments (message/event counters, one counter
  // per taxonomy bin, the monitor.ingest/monitor.drain profile sites).
  // Every counter the live tap feeds is also fed by offline Replay(), so a
  // live run and its MRT replay produce identical "monitor."-prefixed
  // snapshots — the replay-differential test's contract. MRT record
  // accounting deliberately lives under "mrt.records" (outside the prefix):
  // replay has no writer. Call after ConfigureSharding: the per-shard
  // depth instruments are sized by the configured shard count.
  void AttachMetrics(obs::Registry* registry);

  // Attaches the streaming telemetry feeds: windowed series instruments
  // (monitor.updates / monitor.wwdup / monitor.aadup counters and the
  // monitor.events_per_msg sliding-window histogram) drained by the
  // scenario's periodic flush, plus the per-event peer feed of the health
  // monitor's flap-burst sessionizer. Either pointer may be null; null/null
  // detaches. Costs a few cached-pointer increments per event when attached,
  // two pointer tests when not.
  void AttachTimeSeries(obs::SeriesFlusher* series,
                        obs::HealthMonitor* health);

  // Feeds one update message through the pipeline — used both by the live
  // tap and by offline MRT replay. `wire` optionally carries the message's
  // received wire bytes; when present the MRT writer logs them directly
  // (zero-copy) instead of re-encoding `update`. Encode(Decode(x)) == x is
  // pinned by the wire-roundtrip fuzz suite, so the logged bytes are
  // identical either way.
  // `causes` is the message's provenance sideband (withdrawn-then-NLRI
  // order; empty for replay and untagged senders) — it flows into the
  // exploded events and from there into the classifier's attribution
  // matrix, never into the MRT bytes.
  void Ingest(TimePoint now, bgp::PeerId peer, bgp::Asn peer_asn,
              const bgp::UpdateMessage& update,
              std::span<const std::uint8_t> wire = {},
              const obs::CauseVec& causes = {});

  // Replays an MRT log through the monitor (offline analysis path).
  // Returns the number of UPDATE messages ingested. Drains on return.
  std::uint64_t Replay(mrt::Reader& reader);

  const ShardedClassifier& classifier() const { return classifier_; }
  std::uint64_t events_seen() const { return events_seen_; }
  std::uint64_t messages_seen() const { return messages_seen_; }
  std::size_t pending_events() const { return pending_count_; }

  static constexpr std::size_t kDefaultBatchCap = 4096;

 private:
  ShardedClassifier classifier_;
  std::vector<Sink> sinks_;
  mrt::Writer* mrt_ = nullptr;
  bgp::Asn local_asn_ = 0;
  std::uint64_t events_seen_ = 0;
  std::uint64_t messages_seen_ = 0;
  // Pending batch (stage 1 -> stage 2 hand-off). Slots recycle their
  // attribute buffers via ExplodeUpdateReuse's append mode; only the first
  // pending_count_ elements are live.
  std::vector<UpdateEvent> pending_;
  std::size_t pending_count_ = 0;
  std::vector<ShardVerdict> verdicts_;  // stage-2 output, batch-indexed
  int shard_threads_ = 1;
  std::size_t batch_cap_ = 0;  // 0 = drain at the end of every Ingest
  ClassifiedEvent classified_scratch_;  // stage-3 sink view (recycled)
  obs::Counter* messages_metric_ = nullptr;
  obs::Counter* events_metric_ = nullptr;
  obs::Counter* mrt_records_metric_ = nullptr;
  std::array<obs::Counter*, kNumCategories> category_metrics_{};
  obs::ProfileSite ingest_site_;
  // Times the stage-2 fan-out/join (the "merge wait" the scaling bench
  // reports); its deterministic count/items mirror drains and drained
  // events, shard-count independent.
  obs::ProfileSite drain_site_;
  // Per-shard depth instruments (events per shard, peak batch slice).
  // Registered kWallClock: their values are deterministic, but they exist
  // per shard — snapshots must stay byte-identical across shard counts, so
  // they are excluded from digest-feeding snapshots by stability class.
  std::vector<obs::Counter*> shard_events_metrics_;
  std::vector<obs::Gauge*> shard_depth_metrics_;
  obs::WindowedCounter* updates_series_ = nullptr;
  obs::WindowedCounter* wwdup_series_ = nullptr;
  obs::WindowedCounter* aadup_series_ = nullptr;
  obs::WindowedHistogram* events_per_msg_series_ = nullptr;
  obs::HealthMonitor* health_ = nullptr;
};

}  // namespace iri::core
