// The measurement apparatus: taps a route server's peerings, classifies
// every prefix update, optionally logs raw messages in MRT form, and fans
// classified events out to any number of statistics collectors.
//
// This is the software analogue of the paper's §2 methodology: "we logged
// BGP routing messages exchanged with the Routing Arbiter project's route
// servers ... [and] use several tools to decode and analyze the BGP packet
// logs".
#pragma once

#include <array>
#include <functional>
#include <vector>

#include "core/classifier.h"
#include "core/event.h"
#include "mrt/log.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/timeseries.h"
#include "sim/router.h"

namespace iri::core {

class ExchangeMonitor {
 public:
  using Sink = std::function<void(const ClassifiedEvent&)>;

  // Installs this monitor as `route_server`'s update tap. The monitor must
  // outlive the router (or the tap must be cleared first).
  void Attach(sim::Router& route_server);

  // Registers a collector callback; called for every classified event in
  // arrival order.
  void AddSink(Sink sink) { sinks_.push_back(std::move(sink)); }

  // Mirrors every tapped UPDATE message into an MRT log. Not owned.
  void SetMrtWriter(mrt::Writer* writer) { mrt_ = writer; }

  // Attaches the monitor.* instruments (message/event counters, one counter
  // per taxonomy bin, the monitor.ingest profile site). Every counter the
  // live tap feeds is also fed by offline Replay(), so a live run and its
  // MRT replay produce identical "monitor."-prefixed snapshots — the
  // replay-differential test's contract. MRT record accounting deliberately
  // lives under "mrt.records" (outside the prefix): replay has no writer.
  void AttachMetrics(obs::Registry* registry);

  // Attaches the streaming telemetry feeds: windowed series instruments
  // (monitor.updates / monitor.wwdup / monitor.aadup counters and the
  // monitor.events_per_msg sliding-window histogram) drained by the
  // scenario's periodic flush, plus the per-event peer feed of the health
  // monitor's flap-burst sessionizer. Either pointer may be null; null/null
  // detaches. Costs a few cached-pointer increments per event when attached,
  // two pointer tests when not.
  void AttachTimeSeries(obs::SeriesFlusher* series,
                        obs::HealthMonitor* health);

  // Feeds one update message through classification and the sinks — used
  // both by the live tap and by offline MRT replay.
  void Ingest(TimePoint now, bgp::PeerId peer, bgp::Asn peer_asn,
              const bgp::UpdateMessage& update);

  // Replays an MRT log through the monitor (offline analysis path).
  // Returns the number of UPDATE messages ingested.
  std::uint64_t Replay(mrt::Reader& reader);

  const Classifier& classifier() const { return classifier_; }
  std::uint64_t events_seen() const { return events_seen_; }
  std::uint64_t messages_seen() const { return messages_seen_; }

 private:
  Classifier classifier_;
  std::vector<Sink> sinks_;
  mrt::Writer* mrt_ = nullptr;
  bgp::Asn local_asn_ = 0;
  std::uint64_t events_seen_ = 0;
  std::uint64_t messages_seen_ = 0;
  std::vector<UpdateEvent> scratch_;  // recycled by ExplodeUpdateReuse
  ClassifiedEvent classified_scratch_;  // recycled by ClassifyInto
  obs::Counter* messages_metric_ = nullptr;
  obs::Counter* events_metric_ = nullptr;
  obs::Counter* mrt_records_metric_ = nullptr;
  std::array<obs::Counter*, kNumCategories> category_metrics_{};
  obs::ProfileSite ingest_site_;
  obs::WindowedCounter* updates_series_ = nullptr;
  obs::WindowedCounter* wwdup_series_ = nullptr;
  obs::WindowedCounter* aadup_series_ = nullptr;
  obs::WindowedHistogram* events_per_msg_series_ = nullptr;
  obs::HealthMonitor* health_ = nullptr;
};

}  // namespace iri::core
