// Routing-table snapshot analysis — the low-frequency complement to the
// update-stream classifier (the approach of Govindan & Reddy, the paper's
// ref [7], which it leans on for topology-growth claims).
//
// §4.1 anchors: "The Internet 'default-free' routing tables currently
// contain approximately 42,000 prefixes with 1500 unique ASPATHs
// interconnecting 1300 different autonomous systems."
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>

#include "bgp/rib.h"

namespace iri::core {

struct TableComposition {
  std::size_t prefixes = 0;        // distinct destinations
  std::size_t routes = 0;          // (prefix, peer) paths
  std::size_t unique_as_paths = 0; // distinct ASPATH strings over all paths
  std::size_t autonomous_systems = 0;  // distinct ASes seen in any path
  std::size_t multihomed = 0;      // prefixes with >1 path
  std::size_t aggregates = 0;      // prefixes shorter than /17 (supernets)

  std::string ToString() const;
};

// Walks every candidate path in `rib` and summarizes its composition.
TableComposition AnalyzeTable(const bgp::Rib& rib);

// Compares two snapshots: counts of added/removed prefixes and prefixes
// whose best-path ASPATH changed — the table-delta rate [7] measured
// between daily snapshots.
struct TableDelta {
  std::size_t added = 0;
  std::size_t removed = 0;
  std::size_t path_changed = 0;
};

// Captures the best-path view of a RIB for later diffing.
class TableSnapshot {
 public:
  static TableSnapshot Capture(const bgp::Rib& rib);

  TableDelta DiffAgainst(const TableSnapshot& later) const;

  std::size_t size() const { return entries_.size(); }

 private:
  // prefix -> flattened best ASPATH (string form keeps it hashable/simple).
  std::map<Prefix, std::string> entries_;
};

}  // namespace iri::core
