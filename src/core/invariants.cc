#include "core/invariants.h"

#include <cstdio>
#include <cstdlib>

namespace iri::inv {

void ResetForTest() {
  InvariantStats().checked.store(0, std::memory_order_relaxed);
  InvariantStats().failed.store(0, std::memory_order_relaxed);
  GlobalPolicy().store(Policy::kAbort, std::memory_order_relaxed);
}

void InvariantFailed(const char* expr, const char* file, int line,
                     const char* message) {
  InvariantStats().failed.fetch_add(1, std::memory_order_relaxed);
  std::fprintf(stderr, "[iri invariant] %s:%d: (%s) violated: %s\n", file,
               line, expr, message);
  if (GlobalPolicy().load(std::memory_order_relaxed) == Policy::kAbort) {
    std::fflush(stderr);
    std::abort();
  }
}

}  // namespace iri::inv
