// Streaming aggregations over classified update events — one collector per
// figure/table in the paper's evaluation. All collectors assume events
// arrive in nondecreasing time order (they come from a discrete-event
// simulation or a sequential log) and roll state over at scenario-day
// boundaries.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/classifier.h"
#include "core/invariants.h"

namespace iri::core {

inline constexpr Duration kDay = Duration::Days(1);

inline int DayOf(TimePoint t) {
  return static_cast<int>(t.nanos() / kDay.nanos());
}

// ---------------------------------------------------------------------------
// Per-category counters (Table 1, Figure 2 rows).

struct CategoryCounts {
  std::array<std::uint64_t, kNumCategories> by_category{};
  std::uint64_t announcements = 0;
  std::uint64_t withdrawals = 0;
  std::uint64_t policy_fluctuations = 0;

  void Add(const ClassifiedEvent& ev) {
    ++by_category[static_cast<std::size_t>(ev.category)];
    if (ev.event.is_withdraw) {
      ++withdrawals;
    } else {
      ++announcements;
    }
    if (ev.policy_fluctuation) ++policy_fluctuations;
  }

  // Folds another collector's totals in (partitioned multi-exchange runs
  // merge per-exchange counters in fixed exchange order).
  void Merge(const CategoryCounts& other) {
    for (std::size_t i = 0; i < kNumCategories; ++i) {
      by_category[i] += other.by_category[i];
    }
    announcements += other.announcements;
    withdrawals += other.withdrawals;
    policy_fluctuations += other.policy_fluctuations;
  }

  std::uint64_t Of(Category c) const {
    return by_category[static_cast<std::size_t>(c)];
  }
  // The paper's "instability": WADiff + AADiff + WADup.
  std::uint64_t Instability() const {
    return Of(Category::kWADiff) + Of(Category::kAADiff) +
           Of(Category::kWADup);
  }
  // The paper's "pathological instability": AADup + WWDup.
  std::uint64_t Pathology() const {
    return Of(Category::kAADup) + Of(Category::kWWDup);
  }
  std::uint64_t Total() const { return announcements + withdrawals; }
};

// Figure 2 / Figure 9 substrate: counts per scenario day.
class DailyCategoryTally {
 public:
  void Add(const ClassifiedEvent& ev) {
    const auto day = static_cast<std::size_t>(DayOf(ev.event.time));
    if (day >= days_.size()) days_.resize(day + 1);
    days_[day].Add(ev);
  }

  const std::vector<CategoryCounts>& days() const { return days_; }

  void Merge(const DailyCategoryTally& other) {
    if (other.days_.size() > days_.size()) days_.resize(other.days_.size());
    for (std::size_t d = 0; d < other.days_.size(); ++d) {
      days_[d].Merge(other.days_[d]);
    }
  }

 private:
  std::vector<CategoryCounts> days_;
};

// ---------------------------------------------------------------------------
// Figures 3 & 4: fixed-width time-bin counts of instability events.

class TimeBinner {
 public:
  explicit TimeBinner(Duration bin_width) : width_(bin_width) {}

  void Add(TimePoint t, std::uint64_t n = 1) {
    const std::size_t bin =
        static_cast<std::size_t>(t.nanos() / width_.nanos());
    if (bin >= bins_.size()) bins_.resize(bin + 1, 0);
    bins_[bin] += n;
  }

  Duration bin_width() const { return width_; }
  const std::vector<std::uint64_t>& bins() const { return bins_; }

  // Pads the bin vector out to cover `end` (trailing quiet bins matter for
  // spectra and density plots).
  void ExtendTo(TimePoint end) {
    const std::size_t n =
        static_cast<std::size_t>(end.nanos() / width_.nanos());
    if (n >= bins_.size()) bins_.resize(n + 1, 0);
  }

  // Element-wise sum with another binner over the same width.
  void Merge(const TimeBinner& other) {
    IRI_ASSERT(width_ == other.width_,
               "TimeBinner::Merge requires identical bin widths");
    if (other.bins_.size() > bins_.size()) bins_.resize(other.bins_.size(), 0);
    for (std::size_t i = 0; i < other.bins_.size(); ++i) {
      bins_[i] += other.bins_[i];
    }
  }

 private:
  Duration width_;
  std::vector<std::uint64_t> bins_;
};

// ---------------------------------------------------------------------------
// Figure 6: per-(peer, day) update counts by category, with an injected
// routing-table share per peer-day (the x-axis of the scatter).

class PeerDayTally {
 public:
  struct Cell {
    CategoryCounts counts;
    double table_share = 0.0;  // fraction of default-free table via peer
    bgp::Asn peer_asn = 0;
  };

  void Add(const ClassifiedEvent& ev) {
    Cell& cell = cells_[{ev.event.peer, DayOf(ev.event.time)}];
    cell.counts.Add(ev);
    cell.peer_asn = ev.event.peer_asn;
  }

  void SetTableShare(bgp::PeerId peer, int day, double share,
                     bgp::Asn peer_asn) {
    Cell& cell = cells_[{peer, day}];
    cell.table_share = share;
    cell.peer_asn = peer_asn;
  }

  // Keyed by (peer, day); ordered map for deterministic output.
  const std::map<std::pair<bgp::PeerId, int>, Cell>& cells() const {
    return cells_;
  }

  // Day-total for a category (denominator of the scatter's y-axis).
  std::uint64_t DayTotal(int day, Category c) const;

 private:
  std::map<std::pair<bgp::PeerId, int>, Cell> cells_;
};

// ---------------------------------------------------------------------------
// Figure 7: daily distributions of per-Prefix+AS event counts, per category.

class PrefixPeerDaily {
 public:
  // The four categories Figure 7 plots.
  static constexpr std::array<Category, 4> kTracked = {
      Category::kAADiff, Category::kWADiff, Category::kAADup,
      Category::kWADup};

  struct DayDistribution {
    int day = 0;
    // For each tracked category: the multiset of per-Prefix+AS counts.
    std::array<std::vector<std::uint32_t>, 4> counts;
  };

  void Add(const ClassifiedEvent& ev);
  // Flushes the in-progress day (call once after the last event).
  void Finalize();

  const std::vector<DayDistribution>& days() const { return finished_; }

 private:
  void Roll(int new_day);

  int current_day_ = -1;
  std::array<std::unordered_map<bgp::PrefixPeer, std::uint32_t>, 4> live_;
  std::vector<DayDistribution> finished_;
};

// Computes the cumulative-proportion curve of Figure 7 for one day/category:
// result[i] = fraction of events contributed by Prefix+AS pairs with count
// <= thresholds[i].
std::vector<double> CumulativeEventProportion(
    const std::vector<std::uint32_t>& counts,
    const std::vector<std::uint32_t>& thresholds);

// ---------------------------------------------------------------------------
// Figure 8: histogram of inter-arrival times between successive events of
// the same category on the same Prefix+AS, binned on a log-time scale,
// summarized per day.

class InterArrivalHistogram {
 public:
  // Upper edges of the paper's histogram bins.
  static const std::array<Duration, 12>& BinEdges();
  static const std::array<const char*, 12>& BinLabels();

  struct DayHistogram {
    int day = 0;
    // [category 0..3 as in PrefixPeerDaily::kTracked][bin]
    std::array<std::array<std::uint64_t, 12>, 4> bins{};
  };

  void Add(const ClassifiedEvent& ev);
  void Finalize();

  const std::vector<DayHistogram>& days() const { return finished_; }

  // Box-plot summary across days: per category/bin, the {first quartile,
  // median, third quartile} of the daily *proportions* in that bin.
  struct BinSummary {
    double q1 = 0, median = 0, q3 = 0;
  };
  std::array<std::array<BinSummary, 12>, 4> Summarize() const;

 private:
  void Roll(int new_day);
  static int BinFor(Duration gap);

  int current_day_ = -1;
  DayHistogram live_{};
  // Last event time per (category, Prefix+AS).
  std::array<std::unordered_map<bgp::PrefixPeer, TimePoint>, 4> last_seen_;
  std::vector<DayHistogram> finished_;
};

// ---------------------------------------------------------------------------
// Figure 9: per day, how many distinct Prefix+AS routes saw at least one
// event of each class, as a fraction of the route universe.
//
// "Routes" means tuples that have carried reachability at least once:
// announced (Prefix, peer) pairs. Withdrawals aimed at pairs that never
// announced anything (pure WWDup spray targets) are not routes — they never
// entered any routing table — and are excluded from both numerator and
// denominator (see EXPERIMENTS.md).

class RoutesAffectedDaily {
 public:
  struct DayRow {
    int day = 0;
    std::uint64_t routes_with_wadiff = 0;
    std::uint64_t routes_with_aadiff = 0;
    std::uint64_t routes_with_instability = 0;  // any of the three
    std::uint64_t routes_with_any = 0;          // any category at all
    std::uint64_t universe = 0;  // distinct announced Prefix+AS so far
  };

  void Add(const ClassifiedEvent& ev);
  void Finalize();

  const std::vector<DayRow>& days() const { return finished_; }

 private:
  void Roll(int new_day);

  int current_day_ = -1;
  std::unordered_set<bgp::PrefixPeer> universe_;
  std::unordered_set<bgp::PrefixPeer> wadiff_, aadiff_, instab_, any_;
  std::vector<DayRow> finished_;
};

}  // namespace iri::core
