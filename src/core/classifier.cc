#include "core/classifier.h"

#include <numeric>

#include "core/invariants.h"

namespace iri::core {

// The taxonomy's two super-classes must partition: no category is both
// instability and pathology (checked for every bin at compile time).
template <std::size_t... I>
constexpr bool PartitionsAreDisjoint(std::index_sequence<I...>) {
  return ((!(IsInstability(static_cast<Category>(I)) &&
             IsPathology(static_cast<Category>(I)))) && ...);
}
static_assert(PartitionsAreDisjoint(std::make_index_sequence<kNumCategories>{}),
              "IsInstability and IsPathology must be disjoint");

const char* ToString(Category c) {
  switch (c) {
    case Category::kWADiff: return "WADiff";
    case Category::kAADiff: return "AADiff";
    case Category::kWADup: return "WADup";
    case Category::kAADup: return "AADup";
    case Category::kWWDup: return "WWDup";
    case Category::kWithdraw: return "Withdraw";
    case Category::kInitial: return "Initial";
  }
  return "?";
}

ClassifiedEvent Classifier::Classify(UpdateEvent ev) {
  ClassifiedEvent out;
  ClassifyInto(ev, out);
  return out;
}

void Classifier::ClassifyInto(const UpdateEvent& ev, ClassifiedEvent& out) {
  auto [it, fresh] = state_.try_emplace(ev.Key());
  RouteState& st = it->second;
  if (fresh) st.last_attr_id = default_attr_id_;

  out.policy_fluctuation = false;
  if (ev.is_withdraw) {
    if (fresh || st.status == RouteStatus::kWithdrawn) {
      // Withdrawal of a route that is not announced (or never was):
      // the paper's dominant pathology.
      out.category = Category::kWWDup;
    } else {
      out.category = Category::kWithdraw;
      st.status = RouteStatus::kWithdrawn;
      // last_attr_id intentionally retained for WADup detection.
    }
  } else {
    // Hash-cons once, then every comparison against the remembered route is
    // on ids: equal id = byte-equal attribute set, equal forwarding half =
    // the paper's forwarding tuple matches. Exact repeats of the remembered
    // route (the AADup/WADup bulk of the measured stream) short-circuit on a
    // deep compare against the interned copy — no hashing, no table probe —
    // and so does the A↔B oscillation case via the one-step-back memo.
    // Both memo hits return the id Intern would have found, so the id
    // stream (and with it every digest) is unchanged.
    bgp::AttrSetId attr_id;
    if (attrs_.Get(st.last_attr_id) == ev.attributes) {
      attr_id = st.last_attr_id;
    } else if (st.prev_attr_id != bgp::kInvalidAttrSetId &&
               attrs_.Get(st.prev_attr_id) == ev.attributes) {
      attr_id = st.prev_attr_id;
    } else {
      attr_id = attrs_.Intern(ev.attributes);
    }
    if (fresh) {
      out.category = Category::kInitial;
    } else if (st.status == RouteStatus::kAnnounced) {
      if (attrs_.ForwardingEquivalent(st.last_attr_id, attr_id)) {
        out.category = Category::kAADup;
        out.policy_fluctuation = st.last_attr_id != attr_id;
      } else {
        out.category = Category::kAADiff;
      }
    } else {  // previously withdrawn, now re-announced
      if (attrs_.ForwardingEquivalent(st.last_attr_id, attr_id)) {
        out.category = Category::kWADup;
      } else {
        out.category = Category::kWADiff;
      }
    }
    st.status = RouteStatus::kAnnounced;
    if (attr_id != st.last_attr_id) {
      st.prev_attr_id = st.last_attr_id;
      st.last_attr_id = attr_id;
    }
  }
  out.event = ev;  // copy-assign: out's buffers keep their capacity

  IRI_ASSERT(static_cast<std::size_t>(out.category) < kNumCategories,
             "classifier produced an out-of-range category");
  ++totals_[static_cast<std::size_t>(out.category)];
  ++events_;
  // Conservation: the seven bins partition the event stream exactly. A
  // drift here would silently reshape Figure 2.
  IRI_DCHECK(std::accumulate(totals_.begin(), totals_.end(),
                             std::uint64_t{0}) == events_,
             "category counts must conserve total events");
}

}  // namespace iri::core
