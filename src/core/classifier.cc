#include "core/classifier.h"

#include <algorithm>
#include <numeric>

#include "core/invariants.h"
#include "sim/parallel.h"

namespace iri::core {

// The taxonomy's two super-classes must partition: no category is both
// instability and pathology (checked for every bin at compile time).
template <std::size_t... I>
constexpr bool PartitionsAreDisjoint(std::index_sequence<I...>) {
  return ((!(IsInstability(static_cast<Category>(I)) &&
             IsPathology(static_cast<Category>(I)))) && ...);
}
static_assert(PartitionsAreDisjoint(std::make_index_sequence<kNumCategories>{}),
              "IsInstability and IsPathology must be disjoint");

const char* ToString(Category c) {
  switch (c) {
    case Category::kWADiff: return "WADiff";
    case Category::kAADiff: return "AADiff";
    case Category::kWADup: return "WADup";
    case Category::kAADup: return "AADup";
    case Category::kWWDup: return "WWDup";
    case Category::kWithdraw: return "Withdraw";
    case Category::kInitial: return "Initial";
  }
  return "?";
}

ClassifiedEvent Classifier::Classify(UpdateEvent ev) {
  ClassifiedEvent out;
  ClassifyInto(ev, out);
  return out;
}

void Classifier::ClassifyInto(const UpdateEvent& ev, ClassifiedEvent& out) {
  const ShardVerdict v = ClassifyVerdict(ev);
  out.category = v.category;
  out.policy_fluctuation = v.policy_fluctuation;
  out.event = ev;  // copy-assign: out's buffers keep their capacity
}

ShardVerdict Classifier::ClassifyVerdict(const UpdateEvent& ev) {
  ShardVerdict out;
  auto [st_ptr, fresh] = state_.TryEmplace(ev.Key());
  RouteState& st = *st_ptr;
  if (fresh) st.last_attr_id = default_attr_id_;

  if (ev.is_withdraw) {
    if (fresh || st.status == RouteStatus::kWithdrawn) {
      // Withdrawal of a route that is not announced (or never was):
      // the paper's dominant pathology.
      out.category = Category::kWWDup;
    } else {
      out.category = Category::kWithdraw;
      st.status = RouteStatus::kWithdrawn;
      // last_attr_id intentionally retained for WADup detection.
    }
  } else {
    // Hash-cons once, then every comparison against the remembered route is
    // on ids: equal id = byte-equal attribute set, equal forwarding half =
    // the paper's forwarding tuple matches. Exact repeats of the remembered
    // route (the AADup/WADup bulk of the measured stream) short-circuit on a
    // deep compare against the interned copy — no hashing, no table probe —
    // and so does the A↔B oscillation case via the one-step-back memo.
    // Both memo hits return the id Intern would have found, so the id
    // stream (and with it every digest) is unchanged.
    bgp::AttrSetId attr_id;
    if (attrs_.Get(st.last_attr_id) == ev.attributes) {
      attr_id = st.last_attr_id;
    } else if (st.prev_attr_id != bgp::kInvalidAttrSetId &&
               attrs_.Get(st.prev_attr_id) == ev.attributes) {
      attr_id = st.prev_attr_id;
    } else {
      attr_id = attrs_.Intern(ev.attributes);
    }
    if (fresh) {
      out.category = Category::kInitial;
    } else if (st.status == RouteStatus::kAnnounced) {
      if (attrs_.ForwardingEquivalent(st.last_attr_id, attr_id)) {
        out.category = Category::kAADup;
        out.policy_fluctuation = st.last_attr_id != attr_id;
      } else {
        out.category = Category::kAADiff;
      }
    } else {  // previously withdrawn, now re-announced
      if (attrs_.ForwardingEquivalent(st.last_attr_id, attr_id)) {
        out.category = Category::kWADup;
      } else {
        out.category = Category::kWADiff;
      }
    }
    st.status = RouteStatus::kAnnounced;
    if (attr_id != st.last_attr_id) {
      st.prev_attr_id = st.last_attr_id;
      st.last_attr_id = attr_id;
    }
  }

  IRI_ASSERT(static_cast<std::size_t>(out.category) < kNumCategories,
             "classifier produced an out-of-range category");
  ++totals_[static_cast<std::size_t>(out.category)];
  ++events_;
#if defined(IRI_PROVENANCE_ENABLED) && IRI_PROVENANCE_ENABLED
  // Attribution: record the verdict against the event's root cause. A cause
  // "touches" this route the first time one of its descendants reaches it
  // (blast radius counts routes, not events).
  const bool first_touch = ev.cause.id != st.last_cause_id;
  prov_.Record(static_cast<std::size_t>(out.category), ev.cause, ev.time,
               first_touch);
  st.last_cause_id = ev.cause.id;
#endif
  // Conservation: the seven bins partition the event stream exactly. A
  // drift here would silently reshape Figure 2.
  IRI_DCHECK(std::accumulate(totals_.begin(), totals_.end(),
                             std::uint64_t{0}) == events_,
             "category counts must conserve total events");
  return out;
}

// ------------------------------------------------------- ShardedClassifier

ShardedClassifier::ShardedClassifier(int num_shards) : map_(1) {
  Configure(num_shards);
}

void ShardedClassifier::Configure(int num_shards) {
  IRI_ASSERT(total_events() == 0,
             "ShardedClassifier reconfigured after events were classified");
  if (num_shards < 1) num_shards = 1;
  IRI_ASSERT(num_shards <= 255, "shard count must fit the per-event tag");
  map_ = ShardMap(num_shards);
  shards_.clear();
  shards_.reserve(static_cast<std::size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    shards_.push_back(std::make_unique<Classifier>());
  }
  last_batch_counts_.assign(static_cast<std::size_t>(num_shards), 0);
}

void ShardedClassifier::ClassifyInto(const UpdateEvent& ev,
                                     ClassifiedEvent& out) {
  shards_[static_cast<std::size_t>(map_.ShardOf(ev.prefix))]->ClassifyInto(
      ev, out);
}

void ShardedClassifier::ClassifyBatch(std::span<const UpdateEvent> events,
                                      std::span<ShardVerdict> verdicts,
                                      int threads) {
  IRI_ASSERT(events.size() == verdicts.size(),
             "verdict buffer must match the batch");
  const std::size_t n = events.size();
  std::fill(last_batch_counts_.begin(), last_batch_counts_.end(), 0);
  if (map_.num_shards() == 1) {
    Classifier& c = *shards_[0];
    for (std::size_t i = 0; i < n; ++i) {
      verdicts[i] = c.ClassifyVerdict(events[i]);
    }
    last_batch_counts_[0] = n;
    return;
  }
  // One pass tags every event with its owning shard, so the per-shard
  // sweeps below compare a byte instead of re-hashing the prefix.
  if (shard_of_.size() < n) shard_of_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const int s = map_.ShardOf(events[i].prefix);
    shard_of_[i] = static_cast<std::uint8_t>(s);
    ++last_batch_counts_[static_cast<std::size_t>(s)];
  }
  // Each worker owns one shard: it reads the shared batch, mutates only its
  // own Classifier, and writes only the verdict slots of its own events.
  sim::ParallelFor(map_.num_shards(), threads, [&](int s) {
    Classifier& c = *shards_[static_cast<std::size_t>(s)];
    const auto tag = static_cast<std::uint8_t>(s);
    for (std::size_t i = 0; i < n; ++i) {
      if (shard_of_[i] == tag) verdicts[i] = c.ClassifyVerdict(events[i]);
    }
  });
}

const std::array<std::uint64_t, kNumCategories>& ShardedClassifier::totals()
    const {
  totals_cache_.fill(0);
  for (const auto& shard : shards_) {
    const auto& t = shard->totals();
    for (std::size_t c = 0; c < kNumCategories; ++c) totals_cache_[c] += t[c];
  }
  return totals_cache_;
}

std::uint64_t ShardedClassifier::total_events() const {
  std::uint64_t sum = 0;
  for (const auto& shard : shards_) sum += shard->total_events();
  return sum;
}

std::size_t ShardedClassifier::TrackedRoutes() const {
  std::size_t sum = 0;
  for (const auto& shard : shards_) sum += shard->TrackedRoutes();
  return sum;
}

void ShardedClassifier::MergeProvenanceInto(obs::ShardProvenance& out) const {
  for (const auto& shard : shards_) out.Merge(shard->provenance());
}

void ShardedClassifier::Reset() {
  for (const auto& shard : shards_) shard->Reset();
}

}  // namespace iri::core
