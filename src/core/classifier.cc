#include "core/classifier.h"

#include <numeric>

#include "core/invariants.h"

namespace iri::core {

// The taxonomy's two super-classes must partition: no category is both
// instability and pathology (checked for every bin at compile time).
template <std::size_t... I>
constexpr bool PartitionsAreDisjoint(std::index_sequence<I...>) {
  return ((!(IsInstability(static_cast<Category>(I)) &&
             IsPathology(static_cast<Category>(I)))) && ...);
}
static_assert(PartitionsAreDisjoint(std::make_index_sequence<kNumCategories>{}),
              "IsInstability and IsPathology must be disjoint");

const char* ToString(Category c) {
  switch (c) {
    case Category::kWADiff: return "WADiff";
    case Category::kAADiff: return "AADiff";
    case Category::kWADup: return "WADup";
    case Category::kAADup: return "AADup";
    case Category::kWWDup: return "WWDup";
    case Category::kWithdraw: return "Withdraw";
    case Category::kInitial: return "Initial";
  }
  return "?";
}

ClassifiedEvent Classifier::Classify(const UpdateEvent& ev) {
  ClassifiedEvent out;
  out.event = ev;

  auto [it, fresh] = state_.try_emplace(ev.Key());
  RouteState& st = it->second;

  if (ev.is_withdraw) {
    if (fresh || st.status == RouteStatus::kWithdrawn) {
      // Withdrawal of a route that is not announced (or never was):
      // the paper's dominant pathology.
      out.category = Category::kWWDup;
    } else {
      out.category = Category::kWithdraw;
      st.status = RouteStatus::kWithdrawn;
      // last_attributes intentionally retained for WADup detection.
    }
  } else {
    if (fresh) {
      out.category = Category::kInitial;
    } else if (st.status == RouteStatus::kAnnounced) {
      if (st.last_attributes.ForwardingEquivalent(ev.attributes)) {
        out.category = Category::kAADup;
        out.policy_fluctuation = !(st.last_attributes == ev.attributes);
      } else {
        out.category = Category::kAADiff;
      }
    } else {  // previously withdrawn, now re-announced
      if (st.last_attributes.ForwardingEquivalent(ev.attributes)) {
        out.category = Category::kWADup;
      } else {
        out.category = Category::kWADiff;
      }
    }
    st.status = RouteStatus::kAnnounced;
    st.last_attributes = ev.attributes;
  }

  IRI_ASSERT(static_cast<std::size_t>(out.category) < kNumCategories,
             "classifier produced an out-of-range category");
  ++totals_[static_cast<std::size_t>(out.category)];
  ++events_;
  // Conservation: the seven bins partition the event stream exactly. A
  // drift here would silently reshape Figure 2.
  IRI_DCHECK(std::accumulate(totals_.begin(), totals_.end(),
                             std::uint64_t{0}) == events_,
             "category counts must conserve total events");
  return out;
}

}  // namespace iri::core
