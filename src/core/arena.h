// Bump/arena allocation for scenario-lifetime and day-scoped objects.
//
// The full-paper-scale path (bench/full_paper.cc: 42k prefixes, millions of
// prefix updates per simulated day) is allocation-bound before it is
// CPU-bound: every update used to buy several malloc/free round trips for
// path-attribute copies.  The arena converts those into pointer bumps over
// a small list of large blocks, with two lifetime disciplines:
//
//   * scenario-lifetime: hash-consed objects (the interned AS-path and
//     attribute tables in bgp/intern.h) live until the owning table dies —
//     append-only, never freed individually, the textbook arena workload;
//   * day-scoped scratch: ExchangeScenario keeps a scratch arena for
//     per-day transient buffers and calls Reset() at each midnight
//     rollover, so a nine-month run's scratch footprint stays bounded by
//     its busiest single day.
//
// Determinism: the arena never consults the wall clock and has no
// iteration order of its own — Reset()/destruction walk the cleanup list
// in strict reverse registration order (LIFO, like stack unwinding).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/invariants.h"

namespace iri::core {

class Arena {
 public:
  static constexpr std::size_t kDefaultBlockBytes = 64 * 1024;

  explicit Arena(std::size_t block_bytes = kDefaultBlockBytes)
      : block_bytes_(block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  ~Arena() { RunCleanups(); }

  // Raw storage, aligned to `align` (which must be a power of two and no
  // larger than alignof(std::max_align_t)). Oversized requests get a
  // dedicated block so a single huge object cannot strand a whole block.
  void* Allocate(std::size_t bytes, std::size_t align) {
    IRI_ASSERT((align & (align - 1)) == 0, "arena alignment must be a power of two");
    IRI_ASSERT(align <= alignof(std::max_align_t),
               "arena cannot serve over-aligned types");
    if (bytes == 0) bytes = 1;
    std::uintptr_t p = (cursor_ + (align - 1)) & ~(align - 1);
    if (p + bytes > limit_) {
      AddBlock(bytes, align);
      p = (cursor_ + (align - 1)) & ~(align - 1);
    }
    cursor_ = p + bytes;
    bytes_allocated_ += bytes;
    return reinterpret_cast<void*>(p);
  }

  // Constructs a T in the arena. Trivially destructible types cost one
  // bump; everything else registers its destructor on a cleanup list that
  // Reset() and the arena destructor run in reverse registration order.
  template <typename T, typename... Args>
  T* New(Args&&... args) {
    void* mem = Allocate(sizeof(T), alignof(T));
    T* obj = ::new (mem) T(std::forward<Args>(args)...);
    if constexpr (!std::is_trivially_destructible_v<T>) {
      cleanups_.push_back(Cleanup{
          obj, [](void* p) { static_cast<T*>(p)->~T(); }});
    }
    return obj;
  }

  // Destroys every arena object (reverse order), then recycles the largest
  // block so a steady-state day reallocates nothing. All pointers handed
  // out before Reset() are invalidated.
  void Reset() {
    RunCleanups();
    if (!blocks_.empty()) {
      // Keep the biggest block hot; return the rest to the heap.
      std::size_t biggest = 0;
      for (std::size_t i = 1; i < blocks_.size(); ++i) {
        if (blocks_[i].size > blocks_[biggest].size) biggest = i;
      }
      Block keep = std::move(blocks_[biggest]);
      blocks_.clear();
      cursor_ = reinterpret_cast<std::uintptr_t>(keep.data.get());
      limit_ = cursor_ + keep.size;
      blocks_.push_back(std::move(keep));
    }
    bytes_allocated_ = 0;
  }

  std::size_t bytes_allocated() const { return bytes_allocated_; }
  std::size_t bytes_reserved() const {
    std::size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    return total;
  }
  std::size_t num_blocks() const { return blocks_.size(); }
  std::size_t num_cleanups() const { return cleanups_.size(); }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };
  struct Cleanup {
    void* object;
    void (*destroy)(void*);
  };

  void AddBlock(std::size_t min_bytes, std::size_t align) {
    // Geometric growth, capped: big enough to amortize, small enough that
    // Reset()'s retained block is not a liability.
    std::size_t size = block_bytes_;
    if (!blocks_.empty()) size = blocks_.back().size * 2;
    if (size > kMaxBlockBytes) size = kMaxBlockBytes;
    if (size < min_bytes + align) size = min_bytes + align;
    Block block{std::make_unique<std::byte[]>(size), size};
    cursor_ = reinterpret_cast<std::uintptr_t>(block.data.get());
    limit_ = cursor_ + size;
    blocks_.push_back(std::move(block));
  }

  void RunCleanups() {
    for (auto it = cleanups_.rbegin(); it != cleanups_.rend(); ++it) {
      it->destroy(it->object);
    }
    cleanups_.clear();
  }

  static constexpr std::size_t kMaxBlockBytes = 4 * 1024 * 1024;

  std::size_t block_bytes_;
  std::vector<Block> blocks_;
  std::vector<Cleanup> cleanups_;
  std::uintptr_t cursor_ = 0;
  std::uintptr_t limit_ = 0;
  std::size_t bytes_allocated_ = 0;
};

// std-allocator adapter over an Arena, for containers with day-scoped or
// scenario-scoped lifetime (e.g. ExchangeScenario's withdrawal-spray sample
// buffers). deallocate() is a no-op — storage is reclaimed wholesale by
// Arena::Reset() — so container churn inside one day costs bumps only.
// The container must not outlive the arena or survive its Reset().
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(Arena* arena) : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(arena_->Allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T*, std::size_t) {}

  Arena* arena() const { return arena_; }

  template <typename U>
  bool operator==(const ArenaAllocator<U>& other) const {
    return arena_ == other.arena();
  }

 private:
  Arena* arena_;
};

}  // namespace iri::core
