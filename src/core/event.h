// The unit of analysis: a single per-prefix routing update event as seen at
// a collection point (one route-server peering).
//
// A BGP UPDATE message carries many prefixes; the paper's statistics count
// *prefix updates* ("routers ... exchange between three and six million
// routing prefix updates each day"). ExplodeUpdate flattens messages into
// that unit.
#pragma once

#include <vector>

#include "bgp/message.h"
#include "bgp/route.h"
#include "netbase/time.h"

namespace iri::core {

struct UpdateEvent {
  TimePoint time;
  bgp::PeerId peer = 0;   // collector-local peering id
  bgp::Asn peer_asn = 0;  // AS of the announcing border router
  bool is_withdraw = false;
  Prefix prefix;
  bgp::PathAttributes attributes;  // meaningful only when !is_withdraw

  bgp::PrefixPeer Key() const { return {prefix, peer}; }
};

// Flattens an UPDATE message into per-prefix events, withdrawals first
// (matching their position in the wire format).
inline void ExplodeUpdate(TimePoint now, bgp::PeerId peer, bgp::Asn peer_asn,
                          const bgp::UpdateMessage& update,
                          std::vector<UpdateEvent>& out) {
  for (const Prefix& w : update.withdrawn) {
    UpdateEvent ev;
    ev.time = now;
    ev.peer = peer;
    ev.peer_asn = peer_asn;
    ev.is_withdraw = true;
    ev.prefix = w;
    out.push_back(std::move(ev));
  }
  for (const Prefix& p : update.nlri) {
    UpdateEvent ev;
    ev.time = now;
    ev.peer = peer;
    ev.peer_asn = peer_asn;
    ev.is_withdraw = false;
    ev.prefix = p;
    ev.attributes = update.attributes;
    out.push_back(std::move(ev));
  }
}

}  // namespace iri::core
