// The unit of analysis: a single per-prefix routing update event as seen at
// a collection point (one route-server peering).
//
// A BGP UPDATE message carries many prefixes; the paper's statistics count
// *prefix updates* ("routers ... exchange between three and six million
// routing prefix updates each day"). ExplodeUpdate flattens messages into
// that unit.
#pragma once

#include <vector>

#include "bgp/message.h"
#include "bgp/route.h"
#include "netbase/time.h"
#include "obs/provenance.h"

namespace iri::core {

struct UpdateEvent {
  TimePoint time;
  bgp::PeerId peer = 0;   // collector-local peering id
  bgp::Asn peer_asn = 0;  // AS of the announcing border router
  bool is_withdraw = false;
  Prefix prefix;
  bgp::PathAttributes attributes;  // meaningful only when !is_withdraw
  // Provenance sideband: the injected root cause this event descends from
  // (null for MRT replay and untagged senders; zero bytes when compiled out).
  [[no_unique_address]] obs::CauseTag cause{};

  bgp::PrefixPeer Key() const { return {prefix, peer}; }
};

// Like ExplodeUpdate below, but recycles `out`'s elements — and their
// attribute buffer capacity — instead of destroying and re-creating them.
// `out` only ever grows; elements [start, start + n) of the returned n are
// valid. This is the monitor's per-message hot path: at full paper scale it
// runs hundreds of thousands of times per simulated day, and buffer reuse
// makes the steady state allocation-free. `start` lets the sharded
// classification pipeline explode straight into its pending batch buffer
// (appending after the events already queued) with the same recycling.
inline std::size_t ExplodeUpdateReuse(TimePoint now, bgp::PeerId peer,
                                      bgp::Asn peer_asn,
                                      const bgp::UpdateMessage& update,
                                      std::vector<UpdateEvent>& out,
                                      std::size_t start = 0,
                                      const obs::CauseVec& causes = {}) {
  static const bgp::PathAttributes kEmptyAttrs;
  const std::size_t total = update.withdrawn.size() + update.nlri.size();
  if (out.size() < start + total) out.resize(start + total);
  std::size_t n = start;
  // The cause sideband indexes wire event order: withdrawn, then NLRI —
  // exactly the order this loop pair emits.
  std::size_t ci = 0;
  for (const Prefix& w : update.withdrawn) {
    UpdateEvent& ev = out[n++];
    ev.time = now;
    ev.peer = peer;
    ev.peer_asn = peer_asn;
    ev.is_withdraw = true;
    ev.prefix = w;
    // Copy-assign from the shared empty set (not a fresh temporary) so the
    // slot's buffer capacity survives for the next announce to land in.
    ev.attributes = kEmptyAttrs;
    ev.cause = ci < causes.size() ? causes[ci] : obs::CauseTag{};
    ++ci;
  }
  for (const Prefix& p : update.nlri) {
    UpdateEvent& ev = out[n++];
    ev.time = now;
    ev.peer = peer;
    ev.peer_asn = peer_asn;
    ev.is_withdraw = false;
    ev.prefix = p;
    ev.attributes = update.attributes;
    ev.cause = ci < causes.size() ? causes[ci] : obs::CauseTag{};
    ++ci;
  }
  return n - start;
}

// Flattens an UPDATE message into per-prefix events, withdrawals first
// (matching their position in the wire format).
inline void ExplodeUpdate(TimePoint now, bgp::PeerId peer, bgp::Asn peer_asn,
                          const bgp::UpdateMessage& update,
                          std::vector<UpdateEvent>& out) {
  for (const Prefix& w : update.withdrawn) {
    UpdateEvent ev;
    ev.time = now;
    ev.peer = peer;
    ev.peer_asn = peer_asn;
    ev.is_withdraw = true;
    ev.prefix = w;
    out.push_back(std::move(ev));
  }
  for (const Prefix& p : update.nlri) {
    UpdateEvent ev;
    ev.time = now;
    ev.peer = peer;
    ev.peer_asn = peer_asn;
    ev.is_withdraw = false;
    ev.prefix = p;
    ev.attributes = update.attributes;
    out.push_back(std::move(ev));
  }
}

}  // namespace iri::core
