// Runtime invariant auditing: IRI_ASSERT / IRI_DCHECK.
//
// The paper's results are only as good as the state machines backing them —
// a silent off-by-one in per-(Prefix, peer) classifier state would change
// Figure 2 outright. These macros let the classifier, RIB, session FSM and
// scheduler audit their own invariants in every build, with a policy knob so
// tests can observe failures without dying:
//
//   IRI_ASSERT(cond, "message")   checked in every build (unless compiled
//                                 out with IRI_DISABLE_INVARIANTS); on
//                                 failure consults the global policy:
//                                 abort (default) or log-and-continue.
//   IRI_DCHECK(cond, "message")   as IRI_ASSERT, but compiled to nothing in
//                                 NDEBUG builds; for O(n) audits too slow
//                                 for release hot paths.
//
// Every evaluation and every failure is counted (relaxed atomics; the
// counters are observable via InvariantStats() and exercised by the unit
// tests). When compiled out, the macros expand to `(void)0` — zero cost, and
// the condition expression is not evaluated.
//
// This header is deliberately self-contained (standard library only) so any
// layer — netbase excepted, which stays dependency-free — can include it
// without upward link dependencies: it is built as its own tiny library
// (`iri_invariants`) at the bottom of the link order.
#pragma once

#include <atomic>
#include <cstdint>

namespace iri::inv {

// What to do when an invariant fails.
enum class Policy : std::uint8_t {
  kAbort,  // print expr/file/line to stderr, then std::abort() (default)
  kLog,    // print to stderr, bump the counter, continue
};

struct Counters {
  std::atomic<std::uint64_t> checked{0};  // evaluations (pass or fail)
  std::atomic<std::uint64_t> failed{0};   // failures observed
};

// Process-wide counters. Inline so every TU shares one instance without a
// link-time dependency for the fast path.
inline Counters& InvariantStats() {
  static Counters counters;
  return counters;
}

inline std::atomic<Policy>& GlobalPolicy() {
  static std::atomic<Policy> policy{Policy::kAbort};
  return policy;
}

inline void SetPolicy(Policy p) {
  GlobalPolicy().store(p, std::memory_order_relaxed);
}

// Resets counters and restores the abort policy; tests use this to isolate
// their observations.
void ResetForTest();

// Cold path: records the failure and applies the policy. Returns only under
// Policy::kLog. Defined in invariants.cc.
void InvariantFailed(const char* expr, const char* file, int line,
                     const char* message);

}  // namespace iri::inv

#if defined(IRI_DISABLE_INVARIANTS)

#define IRI_ASSERT(cond, message) ((void)0)
#define IRI_DCHECK(cond, message) ((void)0)

#else

#define IRI_ASSERT(cond, message)                                          \
  do {                                                                     \
    ::iri::inv::InvariantStats().checked.fetch_add(                        \
        1, std::memory_order_relaxed);                                     \
    if (!(cond)) {                                                         \
      ::iri::inv::InvariantFailed(#cond, __FILE__, __LINE__, (message));   \
    }                                                                      \
  } while (false)

#if defined(NDEBUG)
#define IRI_DCHECK(cond, message) ((void)0)
#else
#define IRI_DCHECK(cond, message) IRI_ASSERT(cond, message)
#endif

#endif  // IRI_DISABLE_INVARIANTS
