#include "core/monitor.h"

namespace iri::core {

void ExchangeMonitor::Attach(sim::Router& route_server) {
  local_asn_ = route_server.config().asn;
  route_server.SetUpdateTap(
      [this](TimePoint now, bgp::PeerId peer, bgp::Asn peer_asn,
             const bgp::UpdateMessage& update) {
        Ingest(now, peer, peer_asn, update);
      });
}

void ExchangeMonitor::AttachMetrics(obs::Registry* registry) {
  if (registry == nullptr) {
    messages_metric_ = events_metric_ = mrt_records_metric_ = nullptr;
    category_metrics_.fill(nullptr);
    ingest_site_ = obs::ProfileSite{};
    return;
  }
  messages_metric_ = &registry->GetCounter("monitor.messages");
  events_metric_ = &registry->GetCounter("monitor.events");
  mrt_records_metric_ = &registry->GetCounter("mrt.records");
  for (std::size_t i = 0; i < kNumCategories; ++i) {
    category_metrics_[i] = &registry->GetCounter(
        std::string("monitor.bin.") + ToString(static_cast<Category>(i)));
  }
  ingest_site_ = obs::MakeProfileSite(*registry, "monitor.ingest");
}

void ExchangeMonitor::AttachTimeSeries(obs::SeriesFlusher* series,
                                       obs::HealthMonitor* health) {
  health_ = health;
  if (series == nullptr) {
    updates_series_ = wwdup_series_ = aadup_series_ = nullptr;
    events_per_msg_series_ = nullptr;
    return;
  }
  updates_series_ = &series->GetCounter("monitor.updates");
  wwdup_series_ = &series->GetCounter("monitor.wwdup");
  aadup_series_ = &series->GetCounter("monitor.aadup");
  // Events exploded per UPDATE message, over the last 6 windows: a live view
  // of packing density (withdrawal sprays arrive hundreds to the message).
  static constexpr std::int64_t kPerMsgEdges[] = {1, 2, 4, 8, 16, 32, 128};
  events_per_msg_series_ =
      &series->GetHistogram("monitor.events_per_msg", kPerMsgEdges,
                            /*window_ticks=*/6);
}

void ExchangeMonitor::Ingest(TimePoint now, bgp::PeerId peer,
                             bgp::Asn peer_asn,
                             const bgp::UpdateMessage& update) {
  obs::ScopedTimer timer(&ingest_site_);
  ++messages_seen_;
  if (messages_metric_ != nullptr) messages_metric_->Add(1);
  if (mrt_ != nullptr) {
    mrt_->LogMessage(now, peer, static_cast<std::uint16_t>(peer_asn),
                     static_cast<std::uint16_t>(local_asn_), update);
    if (mrt_records_metric_ != nullptr) mrt_records_metric_->Add(1);
  }
  const std::size_t n =
      ExplodeUpdateReuse(now, peer, peer_asn, update, scratch_);
  timer.AddItems(n);
  if (events_per_msg_series_ != nullptr) {
    events_per_msg_series_->Observe(static_cast<std::int64_t>(n));
  }
  for (std::size_t i = 0; i < n; ++i) {
    // Both scratch buffers recycle their attribute storage: the explode →
    // classify pipeline is allocation-free in the steady state.
    classifier_.ClassifyInto(scratch_[i], classified_scratch_);
    const ClassifiedEvent& classified = classified_scratch_;
    ++events_seen_;
    if (events_metric_ != nullptr) {
      events_metric_->Add(1);
      category_metrics_[static_cast<std::size_t>(classified.category)]->Add(1);
    }
    if (updates_series_ != nullptr) {
      updates_series_->Add(1);
      if (classified.category == Category::kWWDup) wwdup_series_->Add(1);
      if (classified.category == Category::kAADup) aadup_series_->Add(1);
    }
    if (health_ != nullptr) {
      health_->ObservePeerEvent(now, classified.event.peer);
    }
    for (const Sink& sink : sinks_) sink(classified);
  }
}

std::uint64_t ExchangeMonitor::Replay(mrt::Reader& reader) {
  std::uint64_t updates = 0;
  while (auto rec = reader.Next()) {
    auto msg = rec->DecodeMessage();
    if (!msg) continue;
    if (const auto* update = std::get_if<bgp::UpdateMessage>(&*msg)) {
      Ingest(rec->timestamp, rec->peer_id, rec->peer_asn, *update);
      ++updates;
    }
  }
  return updates;
}

}  // namespace iri::core
