#include "core/monitor.h"

#include <string>
#include <utility>

#include "core/invariants.h"

namespace iri::core {

void ExchangeMonitor::Attach(sim::Router& route_server) {
  local_asn_ = route_server.config().asn;
  route_server.SetUpdateTap(
      [this](TimePoint now, bgp::PeerId peer, bgp::Asn peer_asn,
             const bgp::UpdateMessage& update,
             std::span<const std::uint8_t> wire,
             const obs::CauseVec& causes) {
        Ingest(now, peer, peer_asn, update, wire, causes);
      });
}

void ExchangeMonitor::ConfigureSharding(int shards, int shard_threads,
                                        std::size_t batch_cap) {
  IRI_ASSERT(pending_count_ == 0 && events_seen_ == 0,
             "sharding must be configured before ingestion starts");
  classifier_.Configure(shards);
  shard_threads_ = shard_threads < 1 ? 1 : shard_threads;
  batch_cap_ = batch_cap;
}

void ExchangeMonitor::AttachMetrics(obs::Registry* registry) {
  if (registry == nullptr) {
    messages_metric_ = events_metric_ = mrt_records_metric_ = nullptr;
    category_metrics_.fill(nullptr);
    ingest_site_ = obs::ProfileSite{};
    drain_site_ = obs::ProfileSite{};
    shard_events_metrics_.clear();
    shard_depth_metrics_.clear();
    return;
  }
  messages_metric_ = &registry->GetCounter("monitor.messages");
  events_metric_ = &registry->GetCounter("monitor.events");
  mrt_records_metric_ = &registry->GetCounter("mrt.records");
  for (std::size_t i = 0; i < kNumCategories; ++i) {
    category_metrics_[i] = &registry->GetCounter(
        std::string("monitor.bin.") + ToString(static_cast<Category>(i)));
  }
  ingest_site_ = obs::MakeProfileSite(*registry, "monitor.ingest");
  // Hand-rolled kWallClock site (MakeProfileSite would register calls/items
  // as deterministic): drain cadence depends on the batching configuration
  // — offline replay drains per message, live scenarios on cap and tick —
  // so even the counts must stay out of deterministic snapshots or the
  // replay-differential contract (identical monitor.* snapshots) breaks.
  drain_site_.calls = &registry->GetCounter("profile.monitor.drain.calls",
                                            obs::Stability::kWallClock);
  drain_site_.items = &registry->GetCounter("profile.monitor.drain.items",
                                            obs::Stability::kWallClock);
  drain_site_.wall_ns =
      registry->wall_clock_profiling()
          ? &registry->GetCounter("profile.monitor.drain.wall_ns",
                                  obs::Stability::kWallClock)
          : nullptr;
  // Per-shard depth instruments are kWallClock by design: shard-count-
  // dependent names must never reach a digest-feeding snapshot (golden
  // digests are pinned byte-identical across the (threads x shards)
  // matrix). The scaling bench reads them with include_wall_clock=true.
  shard_events_metrics_.clear();
  shard_depth_metrics_.clear();
  for (int s = 0; s < classifier_.num_shards(); ++s) {
    const std::string tag = std::to_string(s);
    shard_events_metrics_.push_back(&registry->GetCounter(
        "monitor.shard." + tag + ".events", obs::Stability::kWallClock));
    shard_depth_metrics_.push_back(&registry->GetGauge(
        "monitor.shard." + tag + ".depth_peak", obs::Stability::kWallClock,
        obs::GaugeMerge::kMax));
  }
}

void ExchangeMonitor::AttachTimeSeries(obs::SeriesFlusher* series,
                                       obs::HealthMonitor* health) {
  health_ = health;
  if (series == nullptr) {
    updates_series_ = wwdup_series_ = aadup_series_ = nullptr;
    events_per_msg_series_ = nullptr;
    return;
  }
  updates_series_ = &series->GetCounter("monitor.updates");
  wwdup_series_ = &series->GetCounter("monitor.wwdup");
  aadup_series_ = &series->GetCounter("monitor.aadup");
  // Events exploded per UPDATE message, over the last 6 windows: a live view
  // of packing density (withdrawal sprays arrive hundreds to the message).
  static constexpr std::int64_t kPerMsgEdges[] = {1, 2, 4, 8, 16, 32, 128};
  events_per_msg_series_ =
      &series->GetHistogram("monitor.events_per_msg", kPerMsgEdges,
                            /*window_ticks=*/6);
}

void ExchangeMonitor::Ingest(TimePoint now, bgp::PeerId peer,
                             bgp::Asn peer_asn,
                             const bgp::UpdateMessage& update,
                             std::span<const std::uint8_t> wire,
                             const obs::CauseVec& causes) {
  obs::ScopedTimer timer(&ingest_site_);
  ++messages_seen_;
  if (messages_metric_ != nullptr) messages_metric_->Add(1);
  if (mrt_ != nullptr) {
    if (!wire.empty()) {
      // Zero-copy: log the exact received bytes. Encode(Decode(x)) == x is
      // pinned by the roundtrip fuzz suite, so this writes what the
      // re-encoding path would have.
      mrt_->LogPayload(now, peer, static_cast<std::uint16_t>(peer_asn),
                       static_cast<std::uint16_t>(local_asn_), wire);
    } else {
      mrt_->LogMessage(now, peer, static_cast<std::uint16_t>(peer_asn),
                       static_cast<std::uint16_t>(local_asn_), update);
    }
    if (mrt_records_metric_ != nullptr) mrt_records_metric_->Add(1);
  }
  // Stage 1: explode into the pending batch (appending after what is
  // already queued; slots recycle their attribute buffers) and feed every
  // category-independent consumer at tap time.
  const std::size_t n = ExplodeUpdateReuse(now, peer, peer_asn, update,
                                           pending_, pending_count_, causes);
  timer.AddItems(n);
  if (events_per_msg_series_ != nullptr) {
    events_per_msg_series_->Observe(static_cast<std::int64_t>(n));
  }
  if (health_ != nullptr) {
    for (std::size_t i = 0; i < n; ++i) {
      health_->ObservePeerEvent(now, peer);
    }
  }
  pending_count_ += n;
  if (batch_cap_ == 0 || pending_count_ >= batch_cap_) Drain();
}

void ExchangeMonitor::Drain() {
  if (pending_count_ == 0) return;
  const std::size_t n = pending_count_;
  if (verdicts_.size() < n) verdicts_.resize(n);
  {
    // Stage 2: sharded classification. The timer is the bench's merge-wait
    // signal (wall time the serial analysis stage spends blocked on the
    // fork-join); count/items stay deterministic and shard-independent.
    obs::ScopedTimer timer(&drain_site_, n);
    classifier_.ClassifyBatch({pending_.data(), n}, {verdicts_.data(), n},
                              shard_threads_);
  }
  if (!shard_events_metrics_.empty()) {
    const auto& counts = classifier_.last_batch_shard_counts();
    for (std::size_t s = 0; s < counts.size(); ++s) {
      shard_events_metrics_[s]->Add(counts[s]);
      shard_depth_metrics_[s]->RaiseTo(static_cast<std::int64_t>(counts[s]));
    }
  }
  // Stage 3: serial analysis walk in arrival order — the only stage that
  // observes categories, so every output byte is produced in a fixed order
  // regardless of how stage 2 was scheduled.
  for (std::size_t i = 0; i < n; ++i) {
    const ShardVerdict v = verdicts_[i];
    ++events_seen_;
    if (events_metric_ != nullptr) {
      events_metric_->Add(1);
      category_metrics_[static_cast<std::size_t>(v.category)]->Add(1);
    }
    if (updates_series_ != nullptr) {
      updates_series_->Add(1);
      if (v.category == Category::kWWDup) wwdup_series_->Add(1);
      if (v.category == Category::kAADup) aadup_series_->Add(1);
    }
    if (!sinks_.empty()) {
      classified_scratch_.category = v.category;
      classified_scratch_.policy_fluctuation = v.policy_fluctuation;
      // Swap, don't copy: the batch slot donates its event (and buffers) to
      // the sink view and inherits the scratch's previous buffers, so both
      // sides keep their capacity.
      std::swap(classified_scratch_.event, pending_[i]);
      for (const Sink& sink : sinks_) sink(classified_scratch_);
    }
  }
  pending_count_ = 0;
}

std::uint64_t ExchangeMonitor::Replay(mrt::Reader& reader) {
  std::uint64_t updates = 0;
  while (auto rec = reader.Next()) {
    auto msg = rec->DecodeMessage();
    if (!msg) continue;
    if (const auto* update = std::get_if<bgp::UpdateMessage>(&*msg)) {
      Ingest(rec->timestamp, rec->peer_id, rec->peer_asn, *update,
             rec->payload);
      ++updates;
    }
  }
  Drain();
  return updates;
}

}  // namespace iri::core
