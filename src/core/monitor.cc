#include "core/monitor.h"

namespace iri::core {

void ExchangeMonitor::Attach(sim::Router& route_server) {
  local_asn_ = route_server.config().asn;
  route_server.SetUpdateTap(
      [this](TimePoint now, bgp::PeerId peer, bgp::Asn peer_asn,
             const bgp::UpdateMessage& update) {
        Ingest(now, peer, peer_asn, update);
      });
}

void ExchangeMonitor::Ingest(TimePoint now, bgp::PeerId peer,
                             bgp::Asn peer_asn,
                             const bgp::UpdateMessage& update) {
  ++messages_seen_;
  if (mrt_ != nullptr) {
    mrt_->LogMessage(now, peer, static_cast<std::uint16_t>(peer_asn),
                     static_cast<std::uint16_t>(local_asn_), update);
  }
  scratch_.clear();
  ExplodeUpdate(now, peer, peer_asn, update, scratch_);
  for (const UpdateEvent& ev : scratch_) {
    const ClassifiedEvent classified = classifier_.Classify(ev);
    ++events_seen_;
    for (const Sink& sink : sinks_) sink(classified);
  }
}

std::uint64_t ExchangeMonitor::Replay(mrt::Reader& reader) {
  std::uint64_t updates = 0;
  while (auto rec = reader.Next()) {
    auto msg = rec->DecodeMessage();
    if (!msg) continue;
    if (const auto* update = std::get_if<bgp::UpdateMessage>(&*msg)) {
      Ingest(rec->timestamp, rec->peer_id, rec->peer_asn, *update);
      ++updates;
    }
  }
  return updates;
}

}  // namespace iri::core
