// The paper's routing-update taxonomy (§4), implemented as a streaming
// classifier over per-(Prefix, peer) state.
//
// Categories, keyed on the forwarding tuple (Prefix, NextHop, ASPATH):
//
//   WADiff  explicit withdrawal later replaced by a *different* route
//           (forwarding instability)
//   AADiff  implicit withdrawal: announcement replaced by a *different*
//           route (forwarding instability)
//   WADup   explicit withdrawal then re-announcement of the *same* route
//           (forwarding instability or pathology)
//   AADup   announcement replaced by an *identical* forwarding tuple
//           (pathology; if non-forwarding attributes changed it is policy
//           fluctuation — reported via the policy_fluctuation flag)
//   WWDup   a withdrawal for a prefix that is already unreachable from that
//           peer (pathology — the dominant class in the measured data)
//   Withdraw  first withdrawal of an announced route: the W of a future
//           WA pair; legitimate topology information, not yet categorizable
//   Initial first sighting of a (Prefix, peer) announcement (table dumps,
//           genuinely new networks) — the paper's "uncategorized"
//
// Instability (the paper's term) = WADiff + AADiff + WADup.
// Pathology = AADup + WWDup.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "bgp/intern.h"
#include "core/event.h"
#include "netbase/probe_map.h"
#include "netbase/shard.h"
#include "obs/provenance.h"

namespace iri::core {

enum class Category : std::uint8_t {
  kWADiff = 0,
  kAADiff = 1,
  kWADup = 2,
  kAADup = 3,
  kWWDup = 4,
  kWithdraw = 5,
  kInitial = 6,
};
inline constexpr std::size_t kNumCategories = 7;

const char* ToString(Category c);

// True for the classes the paper calls "instability" (forwarding
// instability + possible pathology WADup).
constexpr bool IsInstability(Category c) {
  return c == Category::kWADiff || c == Category::kAADiff ||
         c == Category::kWADup;
}

// True for redundant/pathological classes.
constexpr bool IsPathology(Category c) {
  return c == Category::kAADup || c == Category::kWWDup;
}

struct ClassifiedEvent {
  UpdateEvent event;
  Category category = Category::kInitial;
  // For AADup: the forwarding tuple was identical but some other attribute
  // (MED, communities, ...) changed — the paper's "policy fluctuation".
  bool policy_fluctuation = false;
};

// The event-free half of a classification: what ClassifyInto decides before
// it copies the event. The sharded batch pipeline classifies a whole batch
// into an array of these (2 bytes each), then re-joins verdicts with their
// events in arrival order.
struct ShardVerdict {
  Category category = Category::kInitial;
  bool policy_fluctuation = false;
};

class Classifier {
 public:
  Classifier() : default_attr_id_(attrs_.Intern(bgp::PathAttributes{})) {
    // Probed-only flat map (TryEmplace/Find; no iteration API, so its layout
    // cannot reach any output). Pre-sizing skips the early rehash cascade —
    // at paper scale the table grows to (42 k prefixes × peers) entries
    // within the first hour.
    state_.Reserve(1 << 12);
  }

  // Classifies `ev` against the per-route state and updates that state.
  ClassifiedEvent Classify(UpdateEvent ev);

  // Recycling variant for the monitor's hot loop: writes into `out`
  // (copy-assigning the event, so out's attribute buffers keep their
  // capacity across calls) instead of building a fresh ClassifiedEvent.
  void ClassifyInto(const UpdateEvent& ev, ClassifiedEvent& out);

  // Verdict-only variant: identical state/total updates, no event copy.
  // This is what each shard runs over its slice of a pending batch.
  ShardVerdict ClassifyVerdict(const UpdateEvent& ev);

  // Number of (Prefix, peer) routes with live state.
  std::size_t TrackedRoutes() const { return state_.size(); }

  // Running totals by category.
  const std::array<std::uint64_t, kNumCategories>& totals() const {
    return totals_;
  }

  // Events classified since construction/Reset. The conservation invariant —
  // the paper's seven bins partition the event stream — is sum(totals()) ==
  // total_events(), audited by IRI_DCHECK on every Classify.
  std::uint64_t total_events() const { return events_; }

  void Reset() {
    state_.Clear();
    totals_.fill(0);
    events_ = 0;
    prov_ = obs::ShardProvenance{};
    // attrs_ is deliberately retained: it is a pure value cache (ids are
    // only compared against ids from the same table), and the same streams
    // tend to recur across resets.
  }

  // The hash-consed attribute-set table backing the per-route state.
  // Exposed for tests and the full-paper bench's memory report.
  const bgp::PathAttributesTable& attrs() const { return attrs_; }

  // Attribution aggregate: pathology class x root cause kind x hop depth,
  // fed at verdict time from each event's provenance tag. Empty when
  // provenance is compiled out. Category indices fit ShardProvenance's
  // class axis (kNumCategories <= kMaxClasses, checked below).
  const obs::ShardProvenance& provenance() const { return prov_; }

 private:
  enum class RouteStatus : std::uint8_t { kAnnounced, kWithdrawn };

  struct RouteState {
    RouteStatus status = RouteStatus::kWithdrawn;
    // Last announced attributes, interned (survives withdrawal: WADup needs
    // to compare a re-announcement against the route that was withdrawn).
    // Interning shrinks this per-(Prefix, peer) state from a full attribute
    // set to one id — at paper scale that is 42 k prefixes × peers entries —
    // and makes the AADup exact-duplicate test a single integer compare.
    bgp::AttrSetId last_attr_id = bgp::kInvalidAttrSetId;
    // The attribute set announced before last_attr_id. Routes mostly flap
    // between two states (A↔B oscillation is the paper's signature
    // instability), so remembering one step further back lets the classifier
    // resolve the "differs from last" case with a deep compare against the
    // interned copy instead of a hash + probe of the intern table. Pure
    // memoization: the id returned is the one Intern would have found.
    bgp::AttrSetId prev_attr_id = bgp::kInvalidAttrSetId;
#if defined(IRI_PROVENANCE_ENABLED) && IRI_PROVENANCE_ENABLED
    // Last cause id seen on this route — blast-radius dedup: a cause's
    // `prefixes` counts (prefix, peer) routes it newly reached, not events.
    std::uint32_t last_cause_id = 0;
#endif
  };

  ProbeMap<bgp::PrefixPeer, RouteState> state_;
  bgp::PathAttributesTable attrs_;
  // Fresh state remembers the default-constructed attribute set, mirroring
  // the pre-interning behaviour where RouteState held a default
  // PathAttributes (a WWDup-created route later compared its re-announcement
  // against exactly that).
  bgp::AttrSetId default_attr_id_;
  std::array<std::uint64_t, kNumCategories> totals_{};
  std::uint64_t events_ = 0;
  static_assert(kNumCategories <= obs::ShardProvenance::kMaxClasses);
  obs::ShardProvenance prov_;
};

// N Classifiers behind a stable prefix->shard map (netbase/shard.h).
//
// Correctness argument (DESIGN.md §13): every (Prefix, peer) key maps to
// exactly one shard, so that key's per-route state machine sees exactly the
// event stream it would have seen unsharded, in arrival order. Category
// verdicts are pure functions of per-key state and the event value (the
// interned attribute ids are shard-local but only ever compared by value
// through the shard's own table), so each event's verdict is identical at
// any shard count. Aggregates (totals, tracked routes, event counts) are
// sums over disjoint key sets, always accumulated in fixed shard order
// 0..N-1 — byte-identical output at any (threads x shards) combination,
// pinned by the golden matrix in tests/golden_run_test.cc and the
// shard-merge property suite.
//
// ClassifyBatch fans a pending batch over the shards via sim::ParallelFor
// (the repo's only threading primitive). Each worker touches only its own
// shard's Classifier and its own events' verdict slots, so the partitions
// are disjoint by construction (the CI TSan leg runs the golden matrix to
// prove it).
class ShardedClassifier {
 public:
  explicit ShardedClassifier(int num_shards = 1);

  int num_shards() const { return map_.num_shards(); }
  const ShardMap& map() const { return map_; }

  // Reconfigures the shard count. Only legal while no events have been
  // classified (the monitor configures sharding at scenario build time).
  void Configure(int num_shards);

  // Serial single-event path (offline replay, tests): routes `ev` to its
  // owning shard. Identical verdicts to the batch path.
  void ClassifyInto(const UpdateEvent& ev, ClassifiedEvent& out);

  // Classifies events[i] -> verdicts[i] for the whole batch, fanning the
  // shards across `threads` workers (1 = inline serial). Within a shard,
  // events are processed in batch (= arrival) order.
  void ClassifyBatch(std::span<const UpdateEvent> events,
                     std::span<ShardVerdict> verdicts, int threads);

  // Per-shard event counts of the most recent ClassifyBatch call — the
  // bench's per-shard queue-depth signal. Index == shard.
  const std::vector<std::uint64_t>& last_batch_shard_counts() const {
    return last_batch_counts_;
  }

  // Aggregates, summed in fixed shard order.
  const std::array<std::uint64_t, kNumCategories>& totals() const;
  std::uint64_t total_events() const;
  std::size_t TrackedRoutes() const;

  // Sums the per-shard attribution aggregates into `out` in fixed shard
  // order 0..N-1 (ShardProvenance::Merge is an iri_det aggregation sink —
  // same contract as totals()).
  void MergeProvenanceInto(obs::ShardProvenance& out) const;

  // Shard access for tests and the memory report.
  const Classifier& shard(int i) const {
    return *shards_[static_cast<std::size_t>(i)];
  }

  void Reset();

 private:
  ShardMap map_;
  std::vector<std::unique_ptr<Classifier>> shards_;
  std::vector<std::uint8_t> shard_of_;  // per-batch scratch: event -> shard
  std::vector<std::uint64_t> last_batch_counts_;
  mutable std::array<std::uint64_t, kNumCategories> totals_cache_{};
};

}  // namespace iri::core
