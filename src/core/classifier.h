// The paper's routing-update taxonomy (§4), implemented as a streaming
// classifier over per-(Prefix, peer) state.
//
// Categories, keyed on the forwarding tuple (Prefix, NextHop, ASPATH):
//
//   WADiff  explicit withdrawal later replaced by a *different* route
//           (forwarding instability)
//   AADiff  implicit withdrawal: announcement replaced by a *different*
//           route (forwarding instability)
//   WADup   explicit withdrawal then re-announcement of the *same* route
//           (forwarding instability or pathology)
//   AADup   announcement replaced by an *identical* forwarding tuple
//           (pathology; if non-forwarding attributes changed it is policy
//           fluctuation — reported via the policy_fluctuation flag)
//   WWDup   a withdrawal for a prefix that is already unreachable from that
//           peer (pathology — the dominant class in the measured data)
//   Withdraw  first withdrawal of an announced route: the W of a future
//           WA pair; legitimate topology information, not yet categorizable
//   Initial first sighting of a (Prefix, peer) announcement (table dumps,
//           genuinely new networks) — the paper's "uncategorized"
//
// Instability (the paper's term) = WADiff + AADiff + WADup.
// Pathology = AADup + WWDup.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>

#include "core/event.h"

namespace iri::core {

enum class Category : std::uint8_t {
  kWADiff = 0,
  kAADiff = 1,
  kWADup = 2,
  kAADup = 3,
  kWWDup = 4,
  kWithdraw = 5,
  kInitial = 6,
};
inline constexpr std::size_t kNumCategories = 7;

const char* ToString(Category c);

// True for the classes the paper calls "instability" (forwarding
// instability + possible pathology WADup).
constexpr bool IsInstability(Category c) {
  return c == Category::kWADiff || c == Category::kAADiff ||
         c == Category::kWADup;
}

// True for redundant/pathological classes.
constexpr bool IsPathology(Category c) {
  return c == Category::kAADup || c == Category::kWWDup;
}

struct ClassifiedEvent {
  UpdateEvent event;
  Category category = Category::kInitial;
  // For AADup: the forwarding tuple was identical but some other attribute
  // (MED, communities, ...) changed — the paper's "policy fluctuation".
  bool policy_fluctuation = false;
};

class Classifier {
 public:
  // Classifies `ev` against the per-route state and updates that state.
  ClassifiedEvent Classify(const UpdateEvent& ev);

  // Number of (Prefix, peer) routes with live state.
  std::size_t TrackedRoutes() const { return state_.size(); }

  // Running totals by category.
  const std::array<std::uint64_t, kNumCategories>& totals() const {
    return totals_;
  }

  // Events classified since construction/Reset. The conservation invariant —
  // the paper's seven bins partition the event stream — is sum(totals()) ==
  // total_events(), audited by IRI_DCHECK on every Classify.
  std::uint64_t total_events() const { return events_; }

  void Reset() {
    state_.clear();
    totals_.fill(0);
    events_ = 0;
  }

 private:
  enum class RouteStatus : std::uint8_t { kAnnounced, kWithdrawn };

  struct RouteState {
    RouteStatus status = RouteStatus::kWithdrawn;
    // Last announced attributes (survives withdrawal: WADup needs to compare
    // a re-announcement against the route that was withdrawn).
    bgp::PathAttributes last_attributes;
  };

  std::unordered_map<bgp::PrefixPeer, RouteState> state_;
  std::array<std::uint64_t, kNumCategories> totals_{};
  std::uint64_t events_ = 0;
};

}  // namespace iri::core
