// Plain-text report formatting shared by the examples and bench binaries.
#pragma once

#include <string>
#include <vector>

#include "core/stats.h"

namespace iri::core {

// Formats the taxonomy totals as an aligned table with an instability /
// pathology rollup.
std::string FormatCategoryReport(const CategoryCounts& counts);

// Formats a simple fixed-width table. `rows` must all have `header.size()`
// cells.
std::string FormatTable(const std::vector<std::string>& header,
                        const std::vector<std::vector<std::string>>& rows);

// Renders a horizontal ASCII bar scaled so the largest value spans `width`.
std::string AsciiBar(double value, double max_value, int width = 50);

}  // namespace iri::core
