// Plain-text report formatting shared by the examples and bench binaries.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/stats.h"
#include "obs/provenance.h"

namespace iri::core {

// Formats the taxonomy totals as an aligned table with an instability /
// pathology rollup.
std::string FormatCategoryReport(const CategoryCounts& counts);

// Formats the causal attribution report: per-exchange and combined
// pathology-class x root-cause-kind matrix, the hop-depth histogram, and the
// top causes by blast radius. All iteration is in fixed order (exchange,
// class, enum, id), so the text is deterministic. Empty-ish output when
// provenance is compiled out.
std::string FormatAttributionReport(
    std::span<const obs::ExchangeAttribution> exchanges);

// The same data as machine-readable JSON (one object; keys in fixed order).
std::string AttributionJson(
    std::span<const obs::ExchangeAttribution> exchanges);

// Formats a simple fixed-width table. `rows` must all have `header.size()`
// cells.
std::string FormatTable(const std::vector<std::string>& header,
                        const std::vector<std::vector<std::string>>& rows);

// Renders a horizontal ASCII bar scaled so the largest value spans `width`.
std::string AsciiBar(double value, double max_value, int width = 50);

}  // namespace iri::core
