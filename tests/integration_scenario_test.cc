// End-to-end scenario tests: build a small exchange, run simulated time,
// and check that the paper's qualitative structure appears in the monitored
// stream — plus determinism and the ablation switches.
#include <gtest/gtest.h>

#include "core/stats.h"
#include "workload/scenario.h"

namespace iri {
namespace {

workload::ScenarioConfig SmallConfig() {
  workload::ScenarioConfig cfg;
  cfg.topology.scale = 1.0 / 128;  // ~330 prefixes
  cfg.topology.num_providers = 8;
  cfg.topology.seed = 7;
  cfg.seed = 11;
  cfg.duration = Duration::Hours(30);
  return cfg;
}

TEST(ScenarioIntegration, SessionsEstablishAndTablePopulates) {
  workload::ExchangeScenario scenario(SmallConfig());
  scenario.RunUntil(TimePoint::Origin() + Duration::Minutes(5));
  auto& rs = scenario.route_server();
  for (std::size_t i = 0; i < rs.num_peers(); ++i) {
    EXPECT_EQ(rs.PeerSessionState(static_cast<bgp::PeerId>(i)),
              bgp::SessionState::kEstablished)
        << "peer " << i;
  }
  // The route server should hold every visible prefix plus aggregates.
  EXPECT_GE(rs.rib().NumPrefixes(),
            static_cast<std::size_t>(scenario.universe().VisiblePrefixes()));
}

TEST(ScenarioIntegration, MonitorSeesInstabilityAndPathology) {
  workload::ExchangeScenario scenario(SmallConfig());
  core::CategoryCounts counts;
  scenario.monitor().AddSink(
      [&counts](const core::ClassifiedEvent& ev) { counts.Add(ev); });
  scenario.Run();
  EXPECT_GT(counts.Total(), 600u);
  EXPECT_GT(counts.Instability(), 0u);
  EXPECT_GT(counts.Pathology(), 0u);
  // WWDup should be present (half the providers are stateless).
  EXPECT_GT(counts.Of(core::Category::kWWDup), 0u);
}

TEST(ScenarioIntegration, DeterministicAcrossRuns) {
  auto run = [] {
    workload::ExchangeScenario scenario(SmallConfig());
    core::CategoryCounts counts;
    scenario.monitor().AddSink(
        [&counts](const core::ClassifiedEvent& ev) { counts.Add(ev); });
    scenario.Run();
    return counts;
  };
  const core::CategoryCounts a = run();
  const core::CategoryCounts b = run();
  EXPECT_EQ(a.by_category, b.by_category);
  EXPECT_EQ(a.announcements, b.announcements);
  EXPECT_EQ(a.withdrawals, b.withdrawals);
}

TEST(ScenarioIntegration, StatefulFixEliminatesWWDup) {
  auto cfg = SmallConfig();
  cfg.force_all_stateful = true;
  workload::ExchangeScenario scenario(cfg);
  core::CategoryCounts counts;
  scenario.monitor().AddSink(
      [&counts](const core::ClassifiedEvent& ev) { counts.Add(ev); });
  scenario.Run();
  // The vendor software fix: no withdrawal ever goes to a peer that was not
  // previously told about the route.
  EXPECT_EQ(counts.Of(core::Category::kWWDup), 0u);
}

TEST(ScenarioIntegration, StatelessProducesFarMorePathology) {
  auto base = SmallConfig();
  base.duration = Duration::Hours(48);

  auto counts_with = [&](bool force_stateful) {
    auto cfg = base;
    cfg.force_all_stateful = force_stateful;
    workload::ExchangeScenario scenario(cfg);
    core::CategoryCounts counts;
    scenario.monitor().AddSink(
        [&counts](const core::ClassifiedEvent& ev) { counts.Add(ev); });
    scenario.Run();
    return counts;
  };
  const core::CategoryCounts stateless = counts_with(false);
  const core::CategoryCounts stateful = counts_with(true);
  // The vendor fix removes WWDup entirely and cuts pathology volume by a
  // large factor (the paper: "one or more orders of magnitude").
  EXPECT_EQ(stateful.Of(core::Category::kWWDup), 0u);
  EXPECT_GT(stateless.Of(core::Category::kWWDup), 100u);
  EXPECT_GT(stateless.Pathology(), 3 * stateful.Pathology());
  EXPECT_GT(stateless.Total(), stateful.Total());
}

}  // namespace
}  // namespace iri
