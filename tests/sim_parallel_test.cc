// The fork-join helper behind the partitioned multi-exchange runner. These
// tests pin the contract the determinism argument rests on: every index runs
// exactly once, one worker means a plain inline loop, and exceptions
// propagate to the caller instead of vanishing on a pool thread.
#include "sim/parallel.h"

#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>
#include <vector>

namespace iri::sim {
namespace {

TEST(ParallelFor, RunsEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 4, 7}) {
    std::vector<int> hits(97, 0);
    ParallelFor(97, threads, [&hits](int i) {
      // Each index owns its slot; no synchronization needed.
      hits[static_cast<std::size_t>(i)] += 1;
    });
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 97)
        << "threads=" << threads;
    for (int h : hits) EXPECT_EQ(h, 1) << "threads=" << threads;
  }
}

TEST(ParallelFor, SingleWorkerRunsInOrderOnCallingThread) {
  std::vector<int> order;
  ParallelFor(5, 1, [&order](int i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelFor, ZeroAndNegativeCountsAreNoOps) {
  int calls = 0;
  ParallelFor(0, 4, [&calls](int) { ++calls; });
  ParallelFor(-3, 4, [&calls](int) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, MoreThreadsThanWorkStillCoversAllIndices) {
  std::vector<int> hits(3, 0);
  ParallelFor(3, 16, [&hits](int i) { hits[static_cast<std::size_t>(i)] += 1; });
  EXPECT_EQ(hits, (std::vector<int>{1, 1, 1}));
}

TEST(ParallelFor, ExceptionPropagatesToCaller) {
  for (int threads : {1, 4}) {
    EXPECT_THROW(
        ParallelFor(8, threads,
                    [](int i) {
                      if (i == 5) throw std::runtime_error("partition failed");
                    }),
        std::runtime_error)
        << "threads=" << threads;
  }
}

TEST(DefaultParallelism, IsAtLeastOne) {
  EXPECT_GE(DefaultParallelism(), 1);
}

}  // namespace
}  // namespace iri::sim
