#include "core/invariants.h"

#include <gtest/gtest.h>

#include <cstdint>

#include "core/classifier.h"
#include "netbase/rng.h"

namespace iri {
namespace {

using inv::InvariantStats;
using inv::Policy;

class InvariantsTest : public ::testing::Test {
 protected:
  void SetUp() override { inv::ResetForTest(); }
  void TearDown() override { inv::ResetForTest(); }

  static std::uint64_t Checked() {
    return InvariantStats().checked.load(std::memory_order_relaxed);
  }
  static std::uint64_t Failed() {
    return InvariantStats().failed.load(std::memory_order_relaxed);
  }
};

TEST_F(InvariantsTest, PassingAssertsAreCountedAndDoNotFail) {
  IRI_ASSERT(1 + 1 == 2, "arithmetic");
  IRI_ASSERT(true, "trivial");
  EXPECT_EQ(Checked(), 2u);
  EXPECT_EQ(Failed(), 0u);
}

TEST_F(InvariantsTest, LogPolicyCountsFailuresAndContinues) {
  inv::SetPolicy(Policy::kLog);
  bool reached_after_failure = false;
  IRI_ASSERT(false, "deliberate failure under log policy");
  reached_after_failure = true;  // must still run: kLog never aborts
  EXPECT_TRUE(reached_after_failure);
  EXPECT_EQ(Checked(), 1u);
  EXPECT_EQ(Failed(), 1u);
  IRI_ASSERT(false, "second deliberate failure");
  EXPECT_EQ(Failed(), 2u);
}

TEST_F(InvariantsTest, AbortPolicyDiesWithDiagnostic) {
  // The default policy is abort; the diagnostic names the expression.
  EXPECT_DEATH(IRI_ASSERT(2 + 2 == 5, "math is broken"), "2 \\+ 2 == 5");
}

TEST_F(InvariantsTest, ResetForTestRestoresAbortPolicy) {
  inv::SetPolicy(Policy::kLog);
  inv::ResetForTest();
  EXPECT_DEATH(IRI_ASSERT(false, "abort restored"), "violated");
}

TEST_F(InvariantsTest, ConditionIsEvaluatedExactlyOnce) {
  int evaluations = 0;
  IRI_ASSERT([&] { ++evaluations; return true; }(), "single evaluation");
  EXPECT_EQ(evaluations, 1);
}

TEST_F(InvariantsTest, DcheckMatchesBuildMode) {
  inv::SetPolicy(Policy::kLog);
  IRI_DCHECK(false, "debug-only failure");
#ifdef NDEBUG
  // Compiled out: neither checked nor failed, and the condition is not
  // evaluated at all.
  EXPECT_EQ(Checked(), 0u);
  EXPECT_EQ(Failed(), 0u);
#else
  EXPECT_EQ(Checked(), 1u);
  EXPECT_EQ(Failed(), 1u);
#endif
}

#ifdef NDEBUG
TEST_F(InvariantsTest, DcheckConditionNotEvaluatedWhenCompiledOut) {
  int evaluations = 0;
  IRI_DCHECK([&] { ++evaluations; return true; }(), "never runs");
  EXPECT_EQ(evaluations, 0);
}
#endif

// ---------------------------------------------------------------------------
// Classifier conservation over a randomized (seeded) update stream: the
// seven bins must partition the event stream exactly, and the
// instability/pathology super-classes must stay disjoint, whatever order
// announcements and withdrawals arrive in.

core::UpdateEvent RandomEvent(Rng& rng) {
  core::UpdateEvent ev;
  ev.time = TimePoint::Origin() +
            Duration::Seconds(static_cast<double>(rng.Below(86400)));
  // A small universe on purpose: collisions in (Prefix, peer) are what
  // exercise every classifier transition.
  ev.peer = static_cast<bgp::PeerId>(rng.Below(4));
  ev.peer_asn = static_cast<bgp::Asn>(100 + ev.peer);
  ev.prefix = Prefix(IPv4Address(10, 0, static_cast<std::uint8_t>(rng.Below(16)), 0), 24);
  ev.is_withdraw = rng.Bernoulli(0.45);
  if (!ev.is_withdraw) {
    ev.attributes.next_hop = IPv4Address(192, 0, 2, static_cast<std::uint8_t>(rng.Below(3)));
    ev.attributes.as_path = bgp::AsPath::Sequence(
        {static_cast<bgp::Asn>(100 + rng.Below(3)), 65000});
    if (rng.Bernoulli(0.3)) ev.attributes.med = static_cast<std::uint32_t>(rng.Below(2));
  }
  return ev;
}

TEST_F(InvariantsTest, ClassifierConservesCategoryCountsOverRandomStream) {
  constexpr std::uint64_t kEvents = 20000;
  Rng rng(0xC0FFEE);
  core::Classifier classifier;
  std::uint64_t instability = 0, pathology = 0, neither = 0;
  for (std::uint64_t i = 0; i < kEvents; ++i) {
    const core::ClassifiedEvent ev = classifier.Classify(RandomEvent(rng));
    const bool is_instability = core::IsInstability(ev.category);
    const bool is_pathology = core::IsPathology(ev.category);
    ASSERT_FALSE(is_instability && is_pathology)
        << "category " << core::ToString(ev.category)
        << " is both instability and pathology";
    instability += is_instability;
    pathology += is_pathology;
    neither += !is_instability && !is_pathology;
  }
  // Conservation: bins partition the stream.
  std::uint64_t bin_sum = 0;
  for (std::uint64_t n : classifier.totals()) bin_sum += n;
  EXPECT_EQ(bin_sum, kEvents);
  EXPECT_EQ(classifier.total_events(), kEvents);
  // The two super-classes plus Withdraw/Initial also partition it.
  EXPECT_EQ(instability + pathology + neither, kEvents);
  EXPECT_EQ(neither, classifier.totals()[static_cast<std::size_t>(
                         core::Category::kWithdraw)] +
                         classifier.totals()[static_cast<std::size_t>(
                             core::Category::kInitial)]);
  // The stream is adversarial enough to hit every bin.
  for (std::size_t c = 0; c < core::kNumCategories; ++c) {
    EXPECT_GT(classifier.totals()[c], 0u)
        << "bin " << core::ToString(static_cast<core::Category>(c))
        << " never fired — the random stream is not exercising it";
  }
  // No invariant tripped along the way.
  EXPECT_EQ(Failed(), 0u);
}

}  // namespace
}  // namespace iri
