// Shard-merge property suite (DESIGN.md §13): a ShardedClassifier at any
// shard count, driven serially or through the batched fan-out at any thread
// count, is observationally identical to the unsharded classifier — same
// per-event verdict stream, same Table-1 aggregates, same monitor output.
// The golden matrix in golden_run_test.cc pins this end to end at scenario
// scale; this suite pins it at the component level with adversarial random
// streams (differential fuzz) where a divergence is attributable.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "bgp/rib.h"
#include "core/classifier.h"
#include "core/monitor.h"
#include "core/stats.h"
#include "mrt/log.h"
#include "netbase/rng.h"
#include "netbase/shard.h"

namespace iri::core {
namespace {

Prefix P(const std::string& s) { return *Prefix::Parse(s); }

// A deterministic adversarial stream: a small prefix pool (so per-route
// state machines are exercised through many transitions, not just Initial),
// a few peers, and a few attribute shapes so every taxonomy bin is hit.
std::vector<UpdateEvent> RandomStream(std::uint64_t seed, std::size_t n,
                                      std::uint32_t num_prefixes = 64,
                                      std::uint32_t num_peers = 3) {
  Rng rng(seed);
  std::vector<UpdateEvent> events;
  events.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    UpdateEvent ev;
    ev.time = TimePoint::Origin() + Duration::Seconds(static_cast<double>(i));
    ev.peer = static_cast<bgp::PeerId>(rng.Below(num_peers));
    ev.peer_asn = 100 + ev.peer;
    const std::uint32_t p = static_cast<std::uint32_t>(rng.Below(num_prefixes));
    ev.prefix = Prefix(IPv4Address(10, static_cast<std::uint8_t>(p >> 8),
                                   static_cast<std::uint8_t>(p & 0xff), 0),
                       24);
    ev.is_withdraw = rng.Below(5) < 2;  // withdrawal-heavy, like the paper
    if (!ev.is_withdraw) {
      ev.attributes.as_path =
          bgp::AsPath::Sequence({static_cast<bgp::Asn>(701 + rng.Below(3))});
      ev.attributes.next_hop =
          IPv4Address(192, 0, 2, static_cast<std::uint8_t>(1 + rng.Below(2)));
      if (rng.Below(4) == 0) ev.attributes.med = 10 * rng.Below(3);
    }
    events.push_back(std::move(ev));
  }
  return events;
}

TEST(ShardMap, AssignmentIsStableAndInRange) {
  const ShardMap map(7);
  for (const auto& ev : RandomStream(1, 500)) {
    const int s = map.ShardOf(ev.prefix);
    EXPECT_GE(s, 0);
    EXPECT_LT(s, 7);
    EXPECT_EQ(s, map.ShardOf(ev.prefix)) << "assignment must be stable";
  }
  // A single-shard map routes everything to shard 0.
  const ShardMap one(1);
  EXPECT_EQ(one.ShardOf(P("10.1.2.0/24")), 0);
}

TEST(ShardMap, SpreadsPrefixSpace) {
  const ShardMap map(4);
  std::vector<int> hits(4, 0);
  for (const auto& ev : RandomStream(2, 2000, /*num_prefixes=*/1024)) {
    ++hits[static_cast<std::size_t>(map.ShardOf(ev.prefix))];
  }
  for (int h : hits) {
    EXPECT_GT(h, 0) << "a shard received no prefixes at all";
  }
}

// The core property: per-event verdicts from the batched sharded path are
// identical to the unsharded classifier's, for every (shards, threads)
// cell, and the fixed-order aggregate merge reproduces the unsharded
// totals exactly.
TEST(ShardedClassifier, MatchesUnshardedAtEveryShardAndThreadCount) {
  const auto events = RandomStream(3, 4000);

  Classifier reference;
  std::vector<ShardVerdict> expected;
  expected.reserve(events.size());
  for (const auto& ev : events) expected.push_back(reference.ClassifyVerdict(ev));

  for (const int shards : {1, 2, 4, 7}) {
    for (const int threads : {1, 2, 4}) {
      ShardedClassifier sharded(shards);
      std::vector<ShardVerdict> verdicts(events.size());
      // Feed in several batches: batching boundaries must not matter.
      const std::size_t half = events.size() / 2;
      sharded.ClassifyBatch({events.data(), half}, {verdicts.data(), half},
                            threads);
      sharded.ClassifyBatch({events.data() + half, events.size() - half},
                            {verdicts.data() + half, events.size() - half},
                            threads);
      for (std::size_t i = 0; i < events.size(); ++i) {
        ASSERT_EQ(verdicts[i].category, expected[i].category)
            << "event " << i << " at shards=" << shards
            << " threads=" << threads;
        ASSERT_EQ(verdicts[i].policy_fluctuation,
                  expected[i].policy_fluctuation)
            << "event " << i << " at shards=" << shards
            << " threads=" << threads;
      }
      EXPECT_EQ(sharded.totals(), reference.totals());
      EXPECT_EQ(sharded.total_events(), reference.total_events());
      EXPECT_EQ(sharded.TrackedRoutes(), reference.TrackedRoutes());
    }
  }
}

TEST(ShardedClassifier, SerialPathMatchesBatchPath) {
  const auto events = RandomStream(4, 1000);
  ShardedClassifier serial(4);
  ShardedClassifier batched(4);
  std::vector<ShardVerdict> verdicts(events.size());
  batched.ClassifyBatch({events.data(), events.size()},
                        {verdicts.data(), events.size()}, /*threads=*/2);
  ClassifiedEvent out;
  for (std::size_t i = 0; i < events.size(); ++i) {
    serial.ClassifyInto(events[i], out);
    EXPECT_EQ(out.category, verdicts[i].category) << "event " << i;
    EXPECT_EQ(out.policy_fluctuation, verdicts[i].policy_fluctuation);
  }
  EXPECT_EQ(serial.totals(), batched.totals());
}

TEST(ShardedClassifier, LastBatchShardCountsPartitionTheBatch) {
  const auto events = RandomStream(5, 512);
  ShardedClassifier sharded(4);
  std::vector<ShardVerdict> verdicts(events.size());
  sharded.ClassifyBatch({events.data(), events.size()},
                        {verdicts.data(), events.size()}, 1);
  const auto& counts = sharded.last_batch_shard_counts();
  ASSERT_EQ(counts.size(), 4u);
  std::uint64_t sum = 0;
  for (std::size_t s = 0; s < counts.size(); ++s) {
    sum += counts[s];
    // Each count must agree with the shard map's own assignment.
    std::uint64_t own = 0;
    for (const auto& ev : events) {
      if (sharded.map().ShardOf(ev.prefix) == static_cast<int>(s)) ++own;
    }
    EXPECT_EQ(counts[s], own) << "shard " << s;
  }
  EXPECT_EQ(sum, events.size());
}

// Differential fuzz at monitor level: a sharded, batch-capped monitor must
// produce byte-identical output (MRT stream, Table-1 counts, sink order) to
// an unconfigured drain-per-message monitor over the same message stream.
TEST(ExchangeMonitor, ShardedPipelineIsObservationallyIdentical) {
  for (const std::uint64_t seed : {11u, 12u, 13u}) {
    Rng rng(seed);

    ExchangeMonitor plain;
    ExchangeMonitor sharded;
    sharded.ConfigureSharding(/*shards=*/4, /*shard_threads=*/2,
                              /*batch_cap=*/64);

    mrt::Writer plain_mrt, sharded_mrt;
    plain.SetMrtWriter(&plain_mrt);
    sharded.SetMrtWriter(&sharded_mrt);

    CategoryCounts plain_counts, sharded_counts;
    std::vector<std::pair<Prefix, Category>> plain_order, sharded_order;
    plain.AddSink([&](const ClassifiedEvent& ev) {
      plain_counts.Add(ev);
      plain_order.emplace_back(ev.event.prefix, ev.category);
    });
    sharded.AddSink([&](const ClassifiedEvent& ev) {
      sharded_counts.Add(ev);
      sharded_order.emplace_back(ev.event.prefix, ev.category);
    });

    for (int m = 0; m < 300; ++m) {
      bgp::UpdateMessage msg;
      const int nw = static_cast<int>(rng.Below(3));
      for (int i = 0; i < nw; ++i) {
        msg.withdrawn.push_back(Prefix(
            IPv4Address(10, 0, static_cast<std::uint8_t>(rng.Below(32)), 0),
            24));
      }
      const int na = static_cast<int>(rng.Below(3));
      for (int i = 0; i < na; ++i) {
        msg.nlri.push_back(Prefix(
            IPv4Address(10, 0, static_cast<std::uint8_t>(rng.Below(32)), 0),
            24));
      }
      if (!msg.nlri.empty()) {
        msg.attributes.as_path =
            bgp::AsPath::Sequence({static_cast<bgp::Asn>(701 + rng.Below(2))});
        msg.attributes.next_hop = IPv4Address(192, 0, 2, 1);
      }
      const TimePoint t = TimePoint::Origin() + Duration::Seconds(m);
      const bgp::PeerId peer = static_cast<bgp::PeerId>(rng.Below(3));
      plain.Ingest(t, peer, 100 + peer, msg);
      sharded.Ingest(t, peer, 100 + peer, msg);
    }
    sharded.Drain();  // flush the tail of the last partial batch

    EXPECT_EQ(plain.events_seen(), sharded.events_seen()) << "seed " << seed;
    EXPECT_EQ(plain.messages_seen(), sharded.messages_seen());
    EXPECT_EQ(plain.classifier().totals(), sharded.classifier().totals());
    EXPECT_EQ(plain_counts.Total(), sharded_counts.Total());
    EXPECT_EQ(plain_order, sharded_order)
        << "seed " << seed << ": sink order must be arrival order";
    EXPECT_EQ(plain_mrt.buffer(), sharded_mrt.buffer())
        << "seed " << seed << ": MRT streams must be byte-identical";
  }
}

// Shard coverage on the RIB side: the union of VisitBestSharded over all
// shards is exactly VisitBest, with no prefix visited twice.
TEST(Rib, VisitBestShardedPartitionsVisitBest) {
  bgp::Rib rib;
  rib.AddPeer(1, IPv4Address(192, 0, 2, 1));
  for (std::uint32_t i = 0; i < 200; ++i) {
    bgp::PathAttributes attrs;
    attrs.as_path = bgp::AsPath::Sequence({701});
    attrs.next_hop = IPv4Address(192, 0, 2, 1);
    rib.Announce(1,
                 Prefix(IPv4Address(10, static_cast<std::uint8_t>(i >> 8),
                                    static_cast<std::uint8_t>(i & 0xff), 0),
                        24),
                 attrs);
  }
  std::set<Prefix> all;
  rib.VisitBest([&](const Prefix& p, const bgp::Candidate&) { all.insert(p); });
  ASSERT_EQ(all.size(), 200u);

  const ShardMap map(5);
  std::set<Prefix> sharded;
  for (int s = 0; s < 5; ++s) {
    rib.VisitBestSharded(map, s, [&](const Prefix& p, const bgp::Candidate&) {
      EXPECT_EQ(map.ShardOf(p), s);
      EXPECT_TRUE(sharded.insert(p).second)
          << "prefix visited by two shards";
    });
  }
  EXPECT_EQ(sharded, all);
}

TEST(ExchangeMonitor, DrainOnEmptyPendingIsANoOp) {
  ExchangeMonitor monitor;
  monitor.ConfigureSharding(2, 1, 16);
  monitor.Drain();
  EXPECT_EQ(monitor.events_seen(), 0u);
  EXPECT_EQ(monitor.pending_events(), 0u);
}

}  // namespace
}  // namespace iri::core
