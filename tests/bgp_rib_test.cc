#include "bgp/rib.h"

#include <gtest/gtest.h>

namespace iri::bgp {
namespace {

Prefix P(const std::string& s) { return *Prefix::Parse(s); }

Route R(const std::string& prefix, std::vector<Asn> path,
        std::uint32_t next_hop_octet = 1) {
  Route r;
  r.prefix = P(prefix);
  r.attributes.as_path = AsPath::Sequence(std::move(path));
  r.attributes.next_hop = IPv4Address(10, 0, 0, static_cast<std::uint8_t>(next_hop_octet));
  return r;
}

class RibTest : public ::testing::Test {
 protected:
  void SetUp() override {
    rib.AddPeer(1, IPv4Address(1, 1, 1, 1));
    rib.AddPeer(2, IPv4Address(2, 2, 2, 2));
    rib.AddPeer(3, IPv4Address(3, 3, 3, 3));
  }
  Rib rib;
};

TEST_F(RibTest, AnnounceInstallsBest) {
  auto change = rib.Announce(1, R("10.0.0.0/8", {701}));
  EXPECT_TRUE(change.best_changed);
  ASSERT_NE(change.new_best, nullptr);
  EXPECT_EQ(change.new_best->peer, 1u);
  EXPECT_EQ(rib.NumPrefixes(), 1u);
  EXPECT_EQ(rib.NumRoutes(), 1u);
}

TEST_F(RibTest, SecondWorsePathDoesNotChangeBest) {
  rib.Announce(1, R("10.0.0.0/8", {701}));
  auto change = rib.Announce(2, R("10.0.0.0/8", {1239, 3561}));
  EXPECT_FALSE(change.best_changed);
  EXPECT_EQ(rib.Best(P("10.0.0.0/8"))->peer, 1u);
  EXPECT_EQ(rib.NumRoutes(), 2u);
  EXPECT_EQ(rib.NumPrefixes(), 1u);
}

TEST_F(RibTest, BetterPathTakesOver) {
  rib.Announce(1, R("10.0.0.0/8", {701, 1239}));
  auto change = rib.Announce(2, R("10.0.0.0/8", {3561}));
  EXPECT_TRUE(change.best_changed);
  EXPECT_EQ(change.new_best->peer, 2u);
}

TEST_F(RibTest, ImplicitWithdrawalReplacesSameePeerRoute) {
  rib.Announce(1, R("10.0.0.0/8", {701}));
  auto change = rib.Announce(1, R("10.0.0.0/8", {701, 1239}));
  EXPECT_TRUE(change.best_changed);  // same peer, different attributes
  EXPECT_EQ(rib.NumRoutes(), 1u);   // replaced, not added
  EXPECT_EQ(rib.CandidatesFor(P("10.0.0.0/8")).size(), 1u);
}

TEST_F(RibTest, IdenticalReannouncementIsNotAChange) {
  rib.Announce(1, R("10.0.0.0/8", {701}));
  auto change = rib.Announce(1, R("10.0.0.0/8", {701}));
  EXPECT_FALSE(change.best_changed);
}

TEST_F(RibTest, WithdrawBestFailsOverToAlternate) {
  rib.Announce(1, R("10.0.0.0/8", {701}));
  rib.Announce(2, R("10.0.0.0/8", {1239, 3561}));
  auto change = rib.Withdraw(1, P("10.0.0.0/8"));
  EXPECT_TRUE(change.best_changed);
  ASSERT_NE(change.new_best, nullptr);
  EXPECT_EQ(change.new_best->peer, 2u);
}

TEST_F(RibTest, WithdrawNonBestIsSilent) {
  rib.Announce(1, R("10.0.0.0/8", {701}));
  rib.Announce(2, R("10.0.0.0/8", {1239, 3561}));
  auto change = rib.Withdraw(2, P("10.0.0.0/8"));
  EXPECT_FALSE(change.best_changed);
  EXPECT_EQ(rib.Best(P("10.0.0.0/8"))->peer, 1u);
}

TEST_F(RibTest, WithdrawLastRouteEmptiesPrefix) {
  rib.Announce(1, R("10.0.0.0/8", {701}));
  auto change = rib.Withdraw(1, P("10.0.0.0/8"));
  EXPECT_TRUE(change.best_changed);
  EXPECT_EQ(change.new_best, nullptr);
  EXPECT_EQ(rib.NumPrefixes(), 0u);
  EXPECT_EQ(rib.Best(P("10.0.0.0/8")), nullptr);
}

TEST_F(RibTest, PathologicalWithdrawalIsNoOp) {
  // A WWDup at the receiving router: withdrawal for a route never held.
  auto change = rib.Withdraw(1, P("192.42.113.0/24"));
  EXPECT_FALSE(change.best_changed);
  rib.Announce(2, R("192.42.113.0/24", {9}));
  // Withdrawal from a peer that never announced it: also a no-op.
  change = rib.Withdraw(1, P("192.42.113.0/24"));
  EXPECT_FALSE(change.best_changed);
  EXPECT_EQ(rib.Best(P("192.42.113.0/24"))->peer, 2u);
}

TEST_F(RibTest, ClearPeerWithdrawsEverything) {
  rib.Announce(1, R("10.0.0.0/8", {701}));
  rib.Announce(1, R("11.0.0.0/8", {701}));
  rib.Announce(2, R("10.0.0.0/8", {1239, 9}));
  auto changes = rib.ClearPeer(1);
  // 10/8 fails over (change), 11/8 disappears (change).
  EXPECT_EQ(changes.size(), 2u);
  EXPECT_EQ(rib.PeerRouteCount(1), 0u);
  EXPECT_EQ(rib.Best(P("10.0.0.0/8"))->peer, 2u);
  EXPECT_EQ(rib.Best(P("11.0.0.0/8")), nullptr);
}

TEST_F(RibTest, ClearPeerReportsOnlyBestChanges) {
  rib.Announce(1, R("10.0.0.0/8", {701}));
  rib.Announce(2, R("10.0.0.0/8", {1239}));  // peer 2 loses the tie (id)
  ASSERT_EQ(rib.Best(P("10.0.0.0/8"))->peer, 1u);
  auto changes = rib.ClearPeer(2);
  EXPECT_TRUE(changes.empty());
}

TEST_F(RibTest, PeerRouteCountTracksState) {
  rib.Announce(1, R("10.0.0.0/8", {701}));
  rib.Announce(1, R("11.0.0.0/8", {701}));
  EXPECT_EQ(rib.PeerRouteCount(1), 2u);
  rib.Withdraw(1, P("10.0.0.0/8"));
  EXPECT_EQ(rib.PeerRouteCount(1), 1u);
}

TEST_F(RibTest, VisitBestIsAddressOrdered) {
  rib.Announce(1, R("192.0.0.0/8", {701}));
  rib.Announce(1, R("10.0.0.0/8", {701}));
  rib.Announce(2, R("10.0.0.0/8", {9}));
  std::vector<Prefix> order;
  rib.VisitBest([&order](const Prefix& p, const Candidate&) {
    order.push_back(p);
  });
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], P("10.0.0.0/8"));
  EXPECT_EQ(order[1], P("192.0.0.0/8"));
}

TEST_F(RibTest, VisitPathCountsForMultihomingCensus) {
  rib.Announce(1, R("10.0.0.0/8", {701}));
  rib.Announce(2, R("10.0.0.0/8", {1239}));
  rib.Announce(3, R("10.0.0.0/8", {3561}));
  rib.Announce(1, R("11.0.0.0/8", {701}));
  std::size_t multihomed = 0;
  rib.VisitPathCounts([&multihomed](const Prefix&, std::size_t paths) {
    if (paths > 1) ++multihomed;
  });
  EXPECT_EQ(multihomed, 1u);
}

TEST_F(RibTest, AttributeOnlyChangeIsBestChange) {
  rib.Announce(1, R("10.0.0.0/8", {701}));
  Route r = R("10.0.0.0/8", {701});
  r.attributes.med = 30;  // policy-relevant change, same forwarding tuple
  auto change = rib.Announce(1, r);
  EXPECT_TRUE(change.best_changed);
}

}  // namespace
}  // namespace iri::bgp
