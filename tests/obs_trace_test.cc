#include "obs/trace.h"

#include <gtest/gtest.h>

#include <string>

namespace iri::obs {
namespace {

TimePoint T(double seconds) {
  return TimePoint::Origin() + Duration::Seconds(seconds);
}

TEST(TraceEvent, EmitsOneJsonLinePerEvent) {
  Tracer tracer;
  { TraceEvent(&tracer, T(1.5), "link_fail").Str("link", "isp-0"); }
  { TraceEvent(&tracer, T(2), "fsm").Str("from", "Idle").Str("to", "Connect"); }
  EXPECT_EQ(tracer.events(), 2u);
  EXPECT_EQ(tracer.buffer(),
            "{\"t_ns\":1500000000,\"ev\":\"link_fail\",\"link\":\"isp-0\"}\n"
            "{\"t_ns\":2000000000,\"ev\":\"fsm\",\"from\":\"Idle\","
            "\"to\":\"Connect\"}\n");
}

TEST(TraceEvent, NumericFields) {
  Tracer tracer;
  {
    TraceEvent(&tracer, T(0), "backlog_high")
        .U64("epoch", 7)
        .I64("backlog_ns", -5);
  }
  EXPECT_EQ(tracer.buffer(),
            "{\"t_ns\":0,\"ev\":\"backlog_high\",\"epoch\":7,"
            "\"backlog_ns\":-5}\n");
}

TEST(TraceEvent, EscapesStringValues) {
  Tracer tracer;
  { TraceEvent(&tracer, T(0), "ev").Str("k", "a\"b\\c\nd\x01"); }
  EXPECT_EQ(tracer.buffer(),
            "{\"t_ns\":0,\"ev\":\"ev\",\"k\":\"a\\\"b\\\\c\\nd\\u0001\"}\n");
}

TEST(TraceEvent, NullTracerIsANoOp) {
  // Emission sites pass whatever pointer they cached; a detached component
  // holds null and must cost nothing (and crash nothing).
  TraceEvent(nullptr, T(9), "ignored").Str("k", "v").U64("n", 1);
  SUCCEED();
}

TEST(Tracer, MergeConcatenatesVerbatimAndClearResets) {
  Tracer a;
  Tracer b;
  { TraceEvent(&a, T(1), "one"); }
  { TraceEvent(&b, T(2), "two"); }
  a.Merge(b);
  EXPECT_EQ(a.events(), 2u);
  EXPECT_EQ(a.buffer(),
            "{\"t_ns\":1000000000,\"ev\":\"one\"}\n"
            "{\"t_ns\":2000000000,\"ev\":\"two\"}\n");
  a.Clear();
  EXPECT_EQ(a.events(), 0u);
  EXPECT_TRUE(a.buffer().empty());
}

TEST(TraceMacro, RespectsCompileSwitch) {
  Tracer tracer;
  IRI_TRACE(&tracer, T(3), "probe", .U64("n", 1));
#if defined(IRI_TRACE_ENABLED) && IRI_TRACE_ENABLED
  EXPECT_EQ(tracer.events(), 1u);
  EXPECT_EQ(tracer.buffer(), "{\"t_ns\":3000000000,\"ev\":\"probe\",\"n\":1}\n");
#else
  // Compiled out: the site must not evaluate its arguments or emit.
  EXPECT_EQ(tracer.events(), 0u);
  EXPECT_TRUE(tracer.buffer().empty());
#endif
}

}  // namespace
}  // namespace iri::obs
