// Dynamic pathologies at the router level: keepalive starvation, the
// priority-queuing fix, and persistent policy oscillation (the bad gadget).
#include <gtest/gtest.h>

#include "bgp/policy.h"
#include "sim/link.h"
#include "sim/router.h"
#include "sim/scheduler.h"

namespace iri::sim {
namespace {

bgp::Route Route24(std::uint32_t index,
                   std::vector<bgp::Community> communities = {}) {
  bgp::Route r;
  r.prefix = Prefix(IPv4Address((10u << 24) | (index << 8)), 24);
  r.attributes.communities = std::move(communities);
  std::sort(r.attributes.communities.begin(), r.attributes.communities.end());
  return r;
}

RouterConfig Basic(const char* name, bgp::Asn asn, std::uint8_t id) {
  RouterConfig cfg;
  cfg.name = name;
  cfg.asn = asn;
  cfg.router_id = IPv4Address(10, 0, 0, id);
  cfg.interface_addr = IPv4Address(10, 1, 0, id);
  cfg.packer.interval = Duration::Seconds(2);
  cfg.packer.discipline = bgp::TimerDiscipline::kUnjittered;
  return cfg;
}

TEST(RouterDynamics, KeepaliveStarvationDropsSession) {
  Scheduler sched;
  // Victim: slow CPU, short hold time, no priority queuing.
  RouterConfig victim_cfg = Basic("victim", 100, 1);
  victim_cfg.cost_per_prefix = Duration::Millis(40);
  victim_cfg.hold_time_s = 9;
  Router victim(sched, victim_cfg, 1);

  RouterConfig feeder_cfg = Basic("feeder", 200, 2);
  feeder_cfg.hold_time_s = 9;
  Router feeder(sched, feeder_cfg, 2);

  Link link(sched, Duration::Millis(1));
  feeder.AttachLink(link, true, 100);
  victim.AttachLink(link, false, 200);
  sched.At(TimePoint::Origin(), [&link] { link.Restore(); });
  sched.RunUntil(TimePoint::Origin() + Duration::Seconds(5));
  ASSERT_EQ(victim.PeerSessionState(0), bgp::SessionState::kEstablished);

  // 600 prefixes at 40 ms each: 24 s of backlog >> the 9 s hold time. The
  // victim's keepalives queue behind the updates; the feeder's hold timer
  // fires.
  sched.At(TimePoint::Origin() + Duration::Seconds(6), [&feeder] {
    for (std::uint32_t i = 0; i < 600; ++i) feeder.Originate(Route24(i));
  });
  sched.RunUntil(TimePoint::Origin() + Duration::Minutes(2));
  EXPECT_GE(feeder.stats().session_downs, 1u);
}

TEST(RouterDynamics, PriorityQueuingKeepsSessionUpUnderLoad) {
  Scheduler sched;
  RouterConfig victim_cfg = Basic("victim", 100, 1);
  victim_cfg.cost_per_prefix = Duration::Millis(40);
  victim_cfg.hold_time_s = 9;
  victim_cfg.bgp_priority_queuing = true;  // the vendor fix
  Router victim(sched, victim_cfg, 1);

  RouterConfig feeder_cfg = Basic("feeder", 200, 2);
  feeder_cfg.hold_time_s = 9;
  Router feeder(sched, feeder_cfg, 2);

  Link link(sched, Duration::Millis(1));
  feeder.AttachLink(link, true, 100);
  victim.AttachLink(link, false, 200);
  sched.At(TimePoint::Origin(), [&link] { link.Restore(); });
  sched.At(TimePoint::Origin() + Duration::Seconds(6), [&feeder] {
    for (std::uint32_t i = 0; i < 600; ++i) feeder.Originate(Route24(i));
  });
  sched.RunUntil(TimePoint::Origin() + Duration::Minutes(2));
  EXPECT_EQ(feeder.stats().session_downs, 0u);
  EXPECT_EQ(victim.PeerSessionState(0), bgp::SessionState::kEstablished);
}

TEST(RouterDynamics, BadGadgetOscillatesForever) {
  // Varadhan et al.: three ASes each preferring the route heard through
  // their clockwise neighbour never converge.
  Scheduler sched;
  constexpr bgp::Asn kA = 100, kB = 200, kC = 300, kD = 400;
  auto prefer = [](bgp::Asn neighbor) {
    bgp::Policy p = bgp::Policy::AcceptAll();
    bgp::PolicyRule rule;
    rule.match.neighbor_as = neighbor;
    rule.action.set_local_pref = 200;
    p.Add(rule);
    return p;
  };

  Router a(sched, Basic("A", kA, 1), 1);
  Router b(sched, Basic("B", kB, 2), 2);
  Router c(sched, Basic("C", kC, 3), 3);
  Router d(sched, Basic("D", kD, 4), 4);

  std::vector<std::unique_ptr<Link>> links;
  auto connect = [&links, &sched](Router& x, Router& y, bgp::Policy xi,
                                  bgp::Policy yi) {
    links.push_back(std::make_unique<Link>(sched, Duration::Millis(1)));
    x.AttachLink(*links.back(), true, y.config().asn, std::move(xi));
    y.AttachLink(*links.back(), false, x.config().asn, std::move(yi));
  };
  // Ring preferences: A prefers via B, B via C, C via A. The first policy
  // argument is x's import policy for routes from y.
  connect(a, b, prefer(kB), bgp::Policy::AcceptAll());
  connect(b, c, prefer(kC), bgp::Policy::AcceptAll());
  connect(c, a, prefer(kA), bgp::Policy::AcceptAll());
  connect(d, a, bgp::Policy::AcceptAll(), bgp::Policy::AcceptAll());
  connect(d, b, bgp::Policy::AcceptAll(), bgp::Policy::AcceptAll());
  connect(d, c, bgp::Policy::AcceptAll(), bgp::Policy::AcceptAll());

  sched.At(TimePoint::Origin(), [&links] {
    for (auto& l : links) l->Restore();
  });
  sched.At(TimePoint::Origin() + Duration::Seconds(1), [&d] {
    d.Originate(Route24(0));
  });

  sched.RunUntil(TimePoint::Origin() + Duration::Minutes(5));
  const auto mid = a.stats().updates_rx + b.stats().updates_rx +
                   c.stats().updates_rx;
  sched.RunUntil(TimePoint::Origin() + Duration::Minutes(10));
  const auto late = a.stats().updates_rx + b.stats().updates_rx +
                    c.stats().updates_rx;
  // Still churning in the second window: persistent oscillation.
  EXPECT_GT(late - mid, 20u);
}

TEST(RouterDynamics, ShortestPathRingConverges) {
  // The control: same topology, no policies — provably safe, must quiesce.
  Scheduler sched;
  Router a(sched, Basic("A", 100, 1), 1);
  Router b(sched, Basic("B", 200, 2), 2);
  Router c(sched, Basic("C", 300, 3), 3);
  Router d(sched, Basic("D", 400, 4), 4);
  std::vector<std::unique_ptr<Link>> links;
  auto connect = [&links, &sched](Router& x, Router& y) {
    links.push_back(std::make_unique<Link>(sched, Duration::Millis(1)));
    x.AttachLink(*links.back(), true, y.config().asn);
    y.AttachLink(*links.back(), false, x.config().asn);
  };
  connect(a, b);
  connect(b, c);
  connect(c, a);
  connect(d, a);
  connect(d, b);
  connect(d, c);
  sched.At(TimePoint::Origin(), [&links] {
    for (auto& l : links) l->Restore();
  });
  sched.At(TimePoint::Origin() + Duration::Seconds(1), [&d] {
    d.Originate(Route24(0));
  });
  sched.RunUntil(TimePoint::Origin() + Duration::Minutes(5));
  const auto mid = a.stats().updates_rx + b.stats().updates_rx +
                   c.stats().updates_rx;
  sched.RunUntil(TimePoint::Origin() + Duration::Minutes(10));
  const auto late = a.stats().updates_rx + b.stats().updates_rx +
                    c.stats().updates_rx;
  EXPECT_EQ(late, mid);  // quiescent
  // All three transit ASes prefer the direct route via D.
  for (Router* r : {&a, &b, &c}) {
    const auto* best = r->rib().Best(Route24(0).prefix);
    ASSERT_NE(best, nullptr);
    EXPECT_EQ(best->attributes.as_path.ToString(), "400");
  }
}

TEST(RouterDynamics, BacklogDrainsOverTime) {
  Scheduler sched;
  RouterConfig cfg = Basic("r", 100, 1);
  cfg.cost_per_prefix = Duration::Millis(50);
  Router victim(sched, cfg, 1);
  Router feeder(sched, Basic("feeder", 200, 2), 2);
  Link link(sched, Duration::Millis(1));
  feeder.AttachLink(link, true, 100);
  victim.AttachLink(link, false, 200);
  sched.At(TimePoint::Origin(), [&link] { link.Restore(); });
  sched.At(TimePoint::Origin() + Duration::Seconds(5), [&feeder] {
    for (std::uint32_t i = 0; i < 200; ++i) feeder.Originate(Route24(i));
  });
  sched.RunUntil(TimePoint::Origin() + Duration::Seconds(10));
  EXPECT_GT(victim.Backlog(), Duration());
  sched.RunUntil(TimePoint::Origin() + Duration::Minutes(2));
  EXPECT_EQ(victim.Backlog(), Duration());
}

}  // namespace
}  // namespace iri::sim
