#include "bgp/policy.h"

#include <gtest/gtest.h>

namespace iri::bgp {
namespace {

Route MakeRoute(const std::string& prefix, std::vector<Asn> path,
                std::vector<Community> communities = {}) {
  Route r;
  r.prefix = *Prefix::Parse(prefix);
  r.attributes.as_path = AsPath::Sequence(std::move(path));
  r.attributes.communities = std::move(communities);
  std::sort(r.attributes.communities.begin(), r.attributes.communities.end());
  return r;
}

TEST(Policy, AcceptAllPassesUnmodified) {
  const auto policy = Policy::AcceptAll();
  const Route r = MakeRoute("10.0.0.0/8", {701});
  auto out = policy.Apply(r);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, r);
}

TEST(Policy, DenyAllDropsEverything) {
  const auto policy = Policy::DenyAll();
  EXPECT_FALSE(policy.Apply(MakeRoute("10.0.0.0/8", {701})).has_value());
}

TEST(Policy, FirstMatchWins) {
  auto policy = Policy::AcceptAll();
  PolicyRule deny;
  deny.match.covered_by = *Prefix::Parse("10.0.0.0/8");
  deny.action.deny = true;
  policy.Add(deny);
  PolicyRule allow;  // would match too, but comes later
  allow.match.covered_by = *Prefix::Parse("10.0.0.0/8");
  policy.Add(allow);

  EXPECT_FALSE(policy.Apply(MakeRoute("10.1.0.0/16", {701})).has_value());
  EXPECT_TRUE(policy.Apply(MakeRoute("11.0.0.0/8", {701})).has_value());
}

TEST(Policy, ExactPrefixMatch) {
  auto policy = Policy::DenyAll();
  PolicyRule rule;
  rule.match.exact = *Prefix::Parse("192.42.113.0/24");
  policy.Add(rule);
  EXPECT_TRUE(policy.Apply(MakeRoute("192.42.113.0/24", {9})).has_value());
  EXPECT_FALSE(policy.Apply(MakeRoute("192.42.0.0/16", {9})).has_value());
}

TEST(Policy, PrefixLengthFilter) {
  // The paper's "draconian" stability enforcement: filter announcements
  // longer than a given prefix length.
  auto policy = Policy::AcceptAll();
  PolicyRule rule;
  rule.name = "filter-long-prefixes";
  rule.match.min_length = 25;
  rule.action.deny = true;
  policy.Add(rule);
  EXPECT_TRUE(policy.Apply(MakeRoute("10.0.0.0/24", {9})).has_value());
  EXPECT_FALSE(policy.Apply(MakeRoute("10.0.0.0/25", {9})).has_value());
  EXPECT_FALSE(policy.Apply(MakeRoute("10.0.0.1/32", {9})).has_value());
}

TEST(Policy, PathContainsMatch) {
  auto policy = Policy::AcceptAll();
  PolicyRule rule;
  rule.match.path_contains = 666;
  rule.action.deny = true;
  policy.Add(rule);
  EXPECT_FALSE(policy.Apply(MakeRoute("10.0.0.0/8", {701, 666, 9})).has_value());
  EXPECT_TRUE(policy.Apply(MakeRoute("10.0.0.0/8", {701, 9})).has_value());
}

TEST(Policy, OriginAndNeighborAsMatch) {
  auto policy = Policy::DenyAll();
  PolicyRule rule;
  rule.match.neighbor_as = 701;
  rule.match.origin_as = 9;
  policy.Add(rule);
  EXPECT_TRUE(policy.Apply(MakeRoute("10.0.0.0/8", {701, 1239, 9})).has_value());
  EXPECT_FALSE(policy.Apply(MakeRoute("10.0.0.0/8", {1239, 9})).has_value());
  EXPECT_FALSE(policy.Apply(MakeRoute("10.0.0.0/8", {701, 1239})).has_value());
}

TEST(Policy, CommunityMatch) {
  constexpr Community kTag = (65000u << 16) | 7;
  auto policy = Policy::DenyAll();
  PolicyRule rule;
  rule.match.has_community = kTag;
  policy.Add(rule);
  EXPECT_TRUE(policy.Apply(MakeRoute("10.0.0.0/8", {9}, {kTag})).has_value());
  EXPECT_FALSE(policy.Apply(MakeRoute("10.0.0.0/8", {9})).has_value());
}

TEST(Policy, SetLocalPrefAndMed) {
  auto policy = Policy::AcceptAll();
  PolicyRule rule;
  rule.match.covered_by = *Prefix::Parse("10.0.0.0/8");
  rule.action.set_local_pref = 250;
  rule.action.set_med = 5;
  policy.Add(rule);
  auto out = policy.Apply(MakeRoute("10.1.0.0/16", {9}));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->attributes.local_pref, 250u);
  EXPECT_EQ(out->attributes.med, 5u);
}

TEST(Policy, ClearMed) {
  auto policy = Policy::AcceptAll();
  PolicyRule rule;
  rule.action.clear_med = true;
  policy.Add(rule);
  Route r = MakeRoute("10.0.0.0/8", {9});
  r.attributes.med = 77;
  auto out = policy.Apply(r);
  ASSERT_TRUE(out.has_value());
  EXPECT_FALSE(out->attributes.med.has_value());
}

TEST(Policy, PrependAction) {
  auto policy = Policy::AcceptAll();
  PolicyRule rule;
  rule.action.prepend_count = 3;
  rule.action.prepend_asn = 701;
  policy.Add(rule);
  auto out = policy.Apply(MakeRoute("10.0.0.0/8", {9}));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->attributes.as_path.ToString(), "701 701 701 9");
}

TEST(Policy, AddCommunityIsIdempotent) {
  constexpr Community kTag = (65000u << 16) | 3;
  auto policy = Policy::AcceptAll();
  PolicyRule rule;
  rule.action.add_communities = {kTag};
  policy.Add(rule);
  auto out = policy.Apply(MakeRoute("10.0.0.0/8", {9}, {kTag}));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->attributes.communities.size(), 1u);
}

TEST(Policy, StripCommunities) {
  auto policy = Policy::AcceptAll();
  PolicyRule rule;
  rule.action.strip_communities = true;
  policy.Add(rule);
  auto out = policy.Apply(MakeRoute("10.0.0.0/8", {9}, {1, 2, 3}));
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(out->attributes.communities.empty());
}

TEST(Policy, InputRouteIsNotMutated) {
  auto policy = Policy::AcceptAll();
  PolicyRule rule;
  rule.action.set_med = 9;
  policy.Add(rule);
  const Route r = MakeRoute("10.0.0.0/8", {9});
  (void)policy.Apply(r);
  EXPECT_FALSE(r.attributes.med.has_value());
}

}  // namespace
}  // namespace iri::bgp
