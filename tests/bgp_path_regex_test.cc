#include "bgp/path_regex.h"

#include <gtest/gtest.h>

#include "bgp/policy.h"

namespace iri::bgp {
namespace {

bool Match(const std::string& pattern, std::vector<Asn> path) {
  auto regex = PathRegex::Compile(pattern);
  EXPECT_TRUE(regex.has_value()) << pattern;
  return regex->Matches(path);
}

TEST(PathRegex, LiteralSubsequence) {
  EXPECT_TRUE(Match("701 1239", {701, 1239}));
  EXPECT_TRUE(Match("701 1239", {3561, 701, 1239, 9}));  // unanchored
  EXPECT_FALSE(Match("701 1239", {701, 9, 1239}));
  EXPECT_FALSE(Match("701 1239", {1239, 701}));
}

TEST(PathRegex, Anchors) {
  EXPECT_TRUE(Match("^701", {701, 1239}));
  EXPECT_FALSE(Match("^701", {1239, 701}));
  EXPECT_TRUE(Match("9 $", {701, 9}));
  EXPECT_FALSE(Match("9 $", {9, 701}));
  EXPECT_TRUE(Match("^701 9 $", {701, 9}));
  EXPECT_FALSE(Match("^701 9 $", {701, 1239, 9}));
}

TEST(PathRegex, EmptyPatternMatchesEverything) {
  EXPECT_TRUE(Match("", {}));
  EXPECT_TRUE(Match("", {701}));
  EXPECT_TRUE(Match("^$", {}));
  EXPECT_FALSE(Match("^$", {701}));
}

TEST(PathRegex, Wildcard) {
  EXPECT_TRUE(Match("^701 . 9 $", {701, 1239, 9}));
  EXPECT_FALSE(Match("^701 . 9 $", {701, 9}));
  EXPECT_FALSE(Match("^701 . 9 $", {701, 1, 2, 9}));
}

TEST(PathRegex, StarQuantifier) {
  // The classic prepend-tolerant filter.
  EXPECT_TRUE(Match("^701 701* 9 $", {701, 9}));
  EXPECT_TRUE(Match("^701 701* 9 $", {701, 701, 701, 9}));
  EXPECT_FALSE(Match("^701 701* 9 $", {701, 1239, 9}));
  // ".*" matches anything in between.
  EXPECT_TRUE(Match("^701 .* 9 $", {701, 9}));
  EXPECT_TRUE(Match("^701 .* 9 $", {701, 1, 2, 3, 9}));
}

TEST(PathRegex, PlusAndOptional) {
  EXPECT_FALSE(Match("^701 1239+ $", {701}));
  EXPECT_TRUE(Match("^701 1239+ $", {701, 1239}));
  EXPECT_TRUE(Match("^701 1239+ $", {701, 1239, 1239}));
  EXPECT_TRUE(Match("^701 1239? 9 $", {701, 9}));
  EXPECT_TRUE(Match("^701 1239? 9 $", {701, 1239, 9}));
  EXPECT_FALSE(Match("^701 1239? 9 $", {701, 1239, 1239, 9}));
}

TEST(PathRegex, Alternation) {
  EXPECT_TRUE(Match("^(701|1239) 9 $", {701, 9}));
  EXPECT_TRUE(Match("^(701|1239) 9 $", {1239, 9}));
  EXPECT_FALSE(Match("^(701|1239) 9 $", {3561, 9}));
  // Alternation with a quantifier: any mix of the two tiers.
  EXPECT_TRUE(Match("^701 (1239|3561)* 9 $", {701, 1239, 3561, 1239, 9}));
  EXPECT_FALSE(Match("^701 (1239|3561)* 9 $", {701, 1239, 42, 9}));
}

TEST(PathRegex, BacktrackingThroughGreedyStar) {
  // ".* 9" must backtrack so the 9 can still match.
  EXPECT_TRUE(Match("^.* 9 $", {1, 2, 3, 9}));
  EXPECT_TRUE(Match("^.* 9 .* $", {9}));
  EXPECT_TRUE(Match("^701* 701 $", {701, 701}));  // star must give one back
}

TEST(PathRegex, UnderscoreSeparatorIgnored) {
  EXPECT_TRUE(Match("_701_1239_", {701, 1239}));
}

TEST(PathRegex, CompileRejectsMalformed) {
  EXPECT_FALSE(PathRegex::Compile("701 (").has_value());
  EXPECT_FALSE(PathRegex::Compile("()").has_value());
  EXPECT_FALSE(PathRegex::Compile("(701|abc)").has_value());
  EXPECT_FALSE(PathRegex::Compile("*").has_value());
  EXPECT_FALSE(PathRegex::Compile("701 ^ 9").has_value());
  EXPECT_FALSE(PathRegex::Compile("$ 701").has_value());
  EXPECT_FALSE(PathRegex::Compile("99999999").has_value());  // > 16-bit ASN
  EXPECT_FALSE(PathRegex::Compile("70x1").has_value());
}

TEST(PathRegex, MatchesAsPathIncludingSets) {
  AsPath path = AsPath::Sequence({701});
  AsPathSegment set_seg;
  set_seg.type = AsPathSegment::Type::kSet;
  set_seg.asns = {1239, 3561};
  path.segments().push_back(set_seg);
  auto regex = PathRegex::Compile("^701 1239 3561 $");
  ASSERT_TRUE(regex.has_value());
  EXPECT_TRUE(regex->Matches(path));
}

TEST(PathRegex, IntegratesWithPolicyEngine) {
  // The paper's scenario: deny everything that transits a suspect AS pair.
  auto policy = Policy::AcceptAll();
  PolicyRule rule;
  rule.name = "deny-suspect-transit";
  rule.match.path_regex = *PathRegex::Compile("666 (1|2)+ 9");
  rule.action.deny = true;
  policy.Add(rule);

  Route transit;
  transit.prefix = *Prefix::Parse("10.0.0.0/8");
  transit.attributes.as_path = AsPath::Sequence({701, 666, 1, 2, 9});
  EXPECT_FALSE(policy.Apply(transit).has_value());

  Route clean = transit;
  clean.attributes.as_path = AsPath::Sequence({701, 666, 9});
  EXPECT_TRUE(policy.Apply(clean).has_value());
}

}  // namespace
}  // namespace iri::bgp
