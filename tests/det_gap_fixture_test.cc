// Dynamic half of the determinism-gap demonstration (see
// tools/lint/detfixtures/src/workload/digest_gap.cc). FxGapTally::Digest
// renders an unordered_map in hash order — a real portability bug — yet this
// test shows that rerunning it in-process yields byte-identical output every
// time. A golden-run harness (which is exactly such a rerun-and-compare)
// therefore passes forever on one standard library and only breaks when the
// toolchain changes under it. The static analyzer closes that hole: the
// det_gap_flagged ctest requires `iri_det.py --must-flag` to report
// unordered-in-output on this very fixture.

#include "workload/digest_gap.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace iri::workload {
namespace {

std::vector<std::uint32_t> FixtureKeys() {
  // Enough keys to force several rehashes so bucket growth is exercised.
  std::vector<std::uint32_t> keys;
  std::uint32_t x = 0x9e3779b9u;
  for (int i = 0; i < 200; ++i) {
    x = x * 1664525u + 1013904223u;
    keys.push_back(x >> 8);
  }
  return keys;
}

std::string RunHashOrder() {
  FxGapTally tally;
  tally.Count(FixtureKeys());
  tally.Count(FixtureKeys());  // duplicates: counts become 2
  return tally.Digest();
}

std::string RunSorted() {
  FxGapTally tally;
  tally.Count(FixtureKeys());
  tally.Count(FixtureKeys());
  return tally.SortedDigest();
}

// The "golden runs stay green" half: fresh tallies over the same key stream
// digest identically, so byte-comparing against a blessed output cannot
// expose the hash-order dependence.
TEST(DetGapFixture, HashOrderDigestIsRerunStable) {
  const std::string first = RunHashOrder();
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(first, RunHashOrder()) << "rerun " << i;
  }
}

// Both renderings agree on content (same line multiset), differing only in
// order — i.e. the bug is purely an ordering hazard, which is exactly the
// class of defect byte-compare goldens are blind to until the stdlib moves.
TEST(DetGapFixture, SortedDigestHasSameLines) {
  std::string hashed = RunHashOrder();
  std::string sorted = RunSorted();
  auto lines = [](const std::string& s) {
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos < s.size()) {
      std::size_t nl = s.find('\n', pos);
      if (nl == std::string::npos) nl = s.size();
      out.push_back(s.substr(pos, nl - pos));
      pos = nl + 1;
    }
    std::sort(out.begin(), out.end());
    return out;
  };
  EXPECT_EQ(lines(hashed), lines(sorted));
  EXPECT_NE(hashed.find("# fx gap digest v1"), std::string::npos);
}

// The fix is deterministic by construction: key-sorted emission.
TEST(DetGapFixture, SortedDigestIsStable) {
  EXPECT_EQ(RunSorted(), RunSorted());
}

}  // namespace
}  // namespace iri::workload
