// The partitioned multi-exchange runner: decorrelated sub-seeds, fixed-order
// merge, and thread-count independence (the golden-run suite pins the same
// property against committed digests; these tests explain *why* it holds).
#include "workload/multi_exchange_runner.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "mrt/log.h"
#include "workload/scenario.h"

namespace iri::workload {
namespace {

MultiExchangeConfig SmallConfig(int exchanges) {
  MultiExchangeConfig cfg;
  cfg.scenario.topology.scale = 1.0 / 256;
  cfg.scenario.topology.num_providers = 6;
  cfg.scenario.topology.seed = 3;
  cfg.scenario.seed = 4;
  cfg.scenario.num_exchanges = exchanges;
  cfg.scenario.duration = Duration::Hours(3);
  return cfg;
}

TEST(ExchangeSubSeed, DeterministicAndDecorrelated) {
  std::set<std::uint64_t> seen;
  for (int e = 0; e < 64; ++e) {
    const std::uint64_t s = ExchangeSubSeed(42, e);
    EXPECT_EQ(s, ExchangeSubSeed(42, e)) << "sub-seed must be a pure function";
    seen.insert(s);
  }
  EXPECT_EQ(seen.size(), 64u) << "sub-seeds must not collide";
  EXPECT_NE(ExchangeSubSeed(42, 0), ExchangeSubSeed(43, 0))
      << "different scenario seeds must shift every partition";
}

TEST(PartitionConfigFn, SingleExchangeWithDerivedSeed) {
  ScenarioConfig cfg;
  cfg.seed = 1234;
  cfg.num_exchanges = 5;
  cfg.patho_enabled = true;
  const ScenarioConfig part = PartitionConfig(cfg, 3);
  EXPECT_EQ(part.num_exchanges, 1);
  EXPECT_EQ(part.seed, ExchangeSubSeed(1234, 3));
  EXPECT_TRUE(part.patho_enabled) << "all other knobs carry over";
}

TEST(MultiExchangeRunner, ThreadCountDoesNotChangeAnyByte) {
  MultiExchangeResult serial = MultiExchangeRunner(SmallConfig(3)).Run();
  for (int threads : {2, 4}) {
    MultiExchangeConfig cfg = SmallConfig(3);
    cfg.threads = threads;
    MultiExchangeResult parallel = MultiExchangeRunner(std::move(cfg)).Run();
    ASSERT_EQ(parallel.exchanges.size(), serial.exchanges.size());
    EXPECT_EQ(parallel.merged_mrt, serial.merged_mrt)
        << "threads=" << threads;
    EXPECT_EQ(parallel.MrtCrc32(), serial.MrtCrc32());
    EXPECT_EQ(parallel.combined_classifier_totals,
              serial.combined_classifier_totals);
    EXPECT_EQ(parallel.Digest("t"), serial.Digest("t"));
    for (std::size_t e = 0; e < serial.exchanges.size(); ++e) {
      EXPECT_EQ(parallel.exchanges[e].mrt, serial.exchanges[e].mrt)
          << "exchange " << e << " threads=" << threads;
      EXPECT_EQ(parallel.exchanges[e].tasks_executed,
                serial.exchanges[e].tasks_executed);
    }
  }
}

TEST(MultiExchangeRunner, MergePreservesFixedExchangeOrder) {
  const MultiExchangeResult result = MultiExchangeRunner(SmallConfig(3)).Run();
  ASSERT_EQ(result.exchanges.size(), 3u);
  // The merged stream is the per-exchange streams concatenated in index
  // order — verify by re-assembling it by hand.
  std::vector<std::uint8_t> reassembled;
  std::uint64_t events = 0;
  for (std::size_t e = 0; e < 3; ++e) {
    EXPECT_EQ(result.exchanges[e].exchange, static_cast<int>(e));
    EXPECT_EQ(result.exchanges[e].sub_seed, ExchangeSubSeed(4, static_cast<int>(e)));
    EXPECT_GT(result.exchanges[e].events, 0u);
    reassembled.insert(reassembled.end(), result.exchanges[e].mrt.begin(),
                       result.exchanges[e].mrt.end());
    events += result.exchanges[e].events;
  }
  EXPECT_EQ(result.merged_mrt, reassembled);
  EXPECT_EQ(result.total_events, events);
  EXPECT_EQ(result.combined.Total(), events);
}

TEST(MultiExchangeRunner, PartitionsAreDecorrelatedButSameUniverse) {
  const MultiExchangeResult result = MultiExchangeRunner(SmallConfig(2)).Run();
  ASSERT_EQ(result.exchanges.size(), 2u);
  // Different sub-seeds ⇒ different event streams...
  EXPECT_NE(result.exchanges[0].mrt, result.exchanges[1].mrt);
  // ...over the same universe, so volumes stay statistically aligned.
  const double e0 = static_cast<double>(result.exchanges[0].events);
  const double e1 = static_cast<double>(result.exchanges[1].events);
  ASSERT_GT(e0, 100.0);
  EXPECT_NEAR(e1 / e0, 1.0, 0.5);
}

TEST(MultiExchangeRunner, PartitionSetupSeesEveryExchangeOnce) {
  MultiExchangeRunner runner(SmallConfig(3));
  std::vector<int> setup_hits(3, 0);
  std::vector<std::uint64_t> sink_events(3, 0);
  runner.SetPartitionSetup([&](int e, ExchangeScenario& scenario) {
    setup_hits[static_cast<std::size_t>(e)] += 1;
    EXPECT_EQ(scenario.num_exchanges(), 1);
    scenario.monitor().AddSink([&sink_events, e](const core::ClassifiedEvent&) {
      ++sink_events[static_cast<std::size_t>(e)];
    });
  });
  const MultiExchangeResult result = runner.Run();
  for (std::size_t e = 0; e < 3; ++e) {
    EXPECT_EQ(setup_hits[e], 1);
    EXPECT_EQ(sink_events[e], result.exchanges[e].events);
  }
}

TEST(MultiExchangeRunner, MrtSegmentsReplayToTheSameClassification) {
  // The offline path: each exchange's MRT segment replayed through a fresh
  // monitor must reproduce that exchange's live classifier bins exactly.
  const MultiExchangeResult result = MultiExchangeRunner(SmallConfig(2)).Run();
  for (const ExchangeRun& run : result.exchanges) {
    mrt::Reader reader(run.mrt);
    core::ExchangeMonitor offline;
    const std::uint64_t replayed = offline.Replay(reader);
    EXPECT_EQ(replayed, run.messages) << "exchange " << run.exchange;
    EXPECT_EQ(offline.classifier().totals(), run.classifier_totals)
        << "exchange " << run.exchange;
    EXPECT_EQ(reader.crc_failures(), 0u);
  }
}

TEST(MultiExchangeRunner, CaptureMrtOffLeavesStreamEmptyButStatsIntact) {
  MultiExchangeConfig with = SmallConfig(2);
  MultiExchangeConfig without = SmallConfig(2);
  without.capture_mrt = false;
  const MultiExchangeResult a = MultiExchangeRunner(std::move(with)).Run();
  const MultiExchangeResult b = MultiExchangeRunner(std::move(without)).Run();
  EXPECT_TRUE(b.merged_mrt.empty());
  EXPECT_GT(a.merged_mrt.size(), 0u);
  EXPECT_EQ(a.combined_classifier_totals, b.combined_classifier_totals)
      << "MRT capture must not perturb the simulation";
}

}  // namespace
}  // namespace iri::workload
