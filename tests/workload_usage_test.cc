#include "workload/usage.h"

#include <gtest/gtest.h>

namespace iri::workload {
namespace {

TimePoint At(int day, double hour) {
  return TimePoint::Origin() + Duration::Days(day) + Duration::Hours(hour);
}

TEST(UsageModel, DayZeroIsSaturday) {
  EXPECT_EQ(UsageModel::DayOfWeek(At(0, 12)), 0);
  EXPECT_EQ(UsageModel::DayOfWeek(At(1, 12)), 1);  // Sunday
  EXPECT_EQ(UsageModel::DayOfWeek(At(7, 12)), 0);  // Saturday again
}

TEST(UsageModel, HourOfDay) {
  EXPECT_DOUBLE_EQ(UsageModel::HourOfDay(At(3, 14.5)), 14.5);
  EXPECT_DOUBLE_EQ(UsageModel::HourOfDay(At(0, 0)), 0.0);
}

TEST(UsageModel, BusinessHoursBusierThanNight) {
  UsageModel model({});
  // Compare a Tuesday (day 3) afternoon against its pre-dawn trough.
  EXPECT_GT(model.Level(At(3, 14)), 2.5 * model.Level(At(3, 3)));
}

TEST(UsageModel, NoonToMidnightDensestBand) {
  // The paper: "from noon to midnight are the densest hours".
  UsageModel model({});
  const double afternoon = model.Level(At(3, 15));
  const double morning = model.Level(At(3, 7));
  EXPECT_GT(afternoon, morning);
}

TEST(UsageModel, WeekendsQuieterThanWeekdays) {
  UsageModel model({});
  const double saturday = model.Level(At(0, 14));
  const double sunday = model.Level(At(1, 14));
  const double tuesday = model.Level(At(3, 14));
  EXPECT_LT(saturday, 0.7 * tuesday);
  EXPECT_LT(sunday, saturday);  // Sunday is the quietest
}

TEST(UsageModel, LinearTrendGrows) {
  UsageModel model({});
  const double early = model.Level(At(3, 14));
  const double late = model.Level(At(3 + 140, 14));  // same weekday, +20 wks
  EXPECT_NEAR(late / early, 1.0 + 0.004 * 140, 0.02);
}

TEST(UsageModel, SummerEveningsDamped) {
  UsageConfig cfg;
  cfg.summer_start_day = 100;
  cfg.summer_end_day = 120;
  cfg.trend_per_day = 0.0;  // isolate the seasonal effect
  UsageModel model(cfg);
  // Same weekday/hour inside vs outside the summer window.
  const double summer = model.Level(At(110, 20));  // day 110 % 7 == 5: weekday
  const double autumn = model.Level(At(131, 20));  // day 131 % 7 == 5
  EXPECT_NEAR(summer / autumn, cfg.summer_evening_factor, 0.02);
  // Mornings are unaffected.
  EXPECT_NEAR(model.Level(At(110, 9)) / model.Level(At(131, 9)), 1.0, 0.02);
}

TEST(UsageModel, HolidaysBehaveLikeQuietDays) {
  UsageConfig cfg;
  cfg.holiday_days = {94};  // a Thursday
  cfg.trend_per_day = 0.0;
  UsageModel model(cfg);
  const double holiday = model.Level(At(94, 14));
  const double normal_thursday = model.Level(At(87, 14));
  EXPECT_NEAR(holiday / normal_thursday, cfg.holiday_factor, 0.02);
}

TEST(UsageModel, MaxLevelBoundsObservedLevels) {
  UsageModel model({});
  const Duration horizon = Duration::Days(210);
  const double envelope = model.MaxLevel(horizon);
  for (int day = 0; day < 210; day += 3) {
    for (double hour = 0; hour < 24; hour += 0.5) {
      EXPECT_LE(model.Level(At(day, hour)), envelope + 1e-9)
          << "day " << day << " hour " << hour;
    }
  }
}

TEST(UsageModel, LevelIsContinuousAcrossHourBoundaries) {
  UsageModel model({});
  const double before = model.Level(At(3, 13.999));
  const double after = model.Level(At(3, 14.001));
  EXPECT_NEAR(before, after, 0.01);
}

}  // namespace
}  // namespace iri::workload
