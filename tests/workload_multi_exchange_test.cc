// Multi-exchange-point scenarios: the paper's five-collector methodology.
// "It is important to note that these results are representative of other
// exchange points" — the same AS-internal events must surface with the same
// statistical shape at every exchange.
#include <gtest/gtest.h>

#include "core/stats.h"
#include "workload/scenario.h"

namespace iri::workload {
namespace {

ScenarioConfig Config(int exchanges) {
  ScenarioConfig cfg;
  cfg.topology.scale = 1.0 / 128;
  cfg.topology.num_providers = 8;
  cfg.topology.seed = 3;
  cfg.seed = 4;
  cfg.num_exchanges = exchanges;
  cfg.duration = Duration::Hours(30);
  return cfg;
}

TEST(MultiExchange, AllSessionsEstablishAtEveryExchange) {
  ExchangeScenario scenario(Config(3));
  scenario.RunUntil(TimePoint::Origin() + Duration::Minutes(5));
  for (int e = 0; e < 3; ++e) {
    auto& rs = scenario.route_server(e);
    ASSERT_EQ(rs.num_peers(), 8u);
    for (std::size_t p = 0; p < rs.num_peers(); ++p) {
      EXPECT_EQ(rs.PeerSessionState(static_cast<bgp::PeerId>(p)),
                bgp::SessionState::kEstablished)
          << "exchange " << e << " peer " << p;
    }
  }
}

TEST(MultiExchange, EveryExchangeSeesTheSameTable) {
  ExchangeScenario scenario(Config(3));
  scenario.RunUntil(TimePoint::Origin() + Duration::Minutes(10));
  const auto n0 = scenario.route_server(0).rib().NumPrefixes();
  EXPECT_GT(n0, 0u);
  for (int e = 1; e < 3; ++e) {
    EXPECT_EQ(scenario.route_server(e).rib().NumPrefixes(), n0);
  }
}

TEST(MultiExchange, StatisticsAreRepresentativeAcrossExchanges) {
  ExchangeScenario scenario(Config(3));
  std::vector<core::CategoryCounts> counts(3);
  for (int e = 0; e < 3; ++e) {
    scenario.monitor(e).AddSink([&counts, e](const core::ClassifiedEvent& ev) {
      counts[static_cast<std::size_t>(e)].Add(ev);
    });
  }
  scenario.Run();

  // AS-internal events hit every exchange: totals and category mixes must
  // agree closely (not exactly — flush timers and sessions are per router).
  for (int e = 1; e < 3; ++e) {
    const double total0 = static_cast<double>(counts[0].Total());
    const double total_e = static_cast<double>(counts[static_cast<std::size_t>(e)].Total());
    ASSERT_GT(total0, 100.0);
    EXPECT_NEAR(total_e / total0, 1.0, 0.15) << "exchange " << e;

    const double patho0 =
        static_cast<double>(counts[0].Pathology()) / total0;
    const double patho_e =
        static_cast<double>(counts[static_cast<std::size_t>(e)].Pathology()) / total_e;
    EXPECT_NEAR(patho_e, patho0, 0.1);
  }
}

TEST(MultiExchange, SingleExchangeBehaviourUnchanged) {
  // num_exchanges=1 must reproduce the classic single-collector scenario.
  ExchangeScenario scenario(Config(1));
  core::CategoryCounts counts;
  scenario.monitor().AddSink(
      [&counts](const core::ClassifiedEvent& ev) { counts.Add(ev); });
  scenario.Run();
  EXPECT_GT(counts.Total(), 300u);
  EXPECT_EQ(scenario.num_exchanges(), 1);
}

TEST(MultiExchange, MaintenanceResetsArePerExchange) {
  // A session bounce at one exchange must not tear down the same provider's
  // session at another exchange: re-dump AADup bursts will differ a bit
  // between collectors while AS-internal WWDup totals stay aligned.
  auto cfg = Config(2);
  cfg.maintenance_reset_prob = 0.9;  // force plenty of per-exchange resets
  ExchangeScenario scenario(cfg);
  std::vector<core::CategoryCounts> counts(2);
  for (int e = 0; e < 2; ++e) {
    scenario.monitor(e).AddSink([&counts, e](const core::ClassifiedEvent& ev) {
      counts[static_cast<std::size_t>(e)].Add(ev);
    });
  }
  scenario.Run();
  // WWDup comes from AS-internal events: closely aligned across exchanges.
  const auto ww0 = counts[0].Of(core::Category::kWWDup);
  const auto ww1 = counts[1].Of(core::Category::kWWDup);
  ASSERT_GT(ww0, 50u);
  EXPECT_NEAR(static_cast<double>(ww1) / static_cast<double>(ww0), 1.0, 0.1);
  // AADup includes per-exchange session re-dumps: the two collectors must
  // NOT be identical (independent maintenance draws).
  EXPECT_NE(counts[0].Of(core::Category::kAADup),
            counts[1].Of(core::Category::kAADup));
}

}  // namespace
}  // namespace iri::workload
