#include "core/monitor.h"

#include <gtest/gtest.h>

#include "core/stats.h"

namespace iri::core {
namespace {

Prefix P(const std::string& s) { return *Prefix::Parse(s); }

bgp::UpdateMessage Announce(const std::string& prefix,
                            std::vector<bgp::Asn> path) {
  bgp::UpdateMessage u;
  u.attributes.as_path = bgp::AsPath::Sequence(std::move(path));
  u.attributes.next_hop = IPv4Address(10, 0, 0, 1);
  u.nlri = {P(prefix)};
  return u;
}

bgp::UpdateMessage Withdraw(const std::string& prefix) {
  bgp::UpdateMessage u;
  u.withdrawn = {P(prefix)};
  return u;
}

TimePoint T(double s) { return TimePoint::Origin() + Duration::Seconds(s); }

TEST(ExchangeMonitor, IngestClassifiesAndFansOut) {
  ExchangeMonitor monitor;
  std::vector<Category> seen_a, seen_b;
  monitor.AddSink([&seen_a](const ClassifiedEvent& ev) {
    seen_a.push_back(ev.category);
  });
  monitor.AddSink([&seen_b](const ClassifiedEvent& ev) {
    seen_b.push_back(ev.category);
  });

  monitor.Ingest(T(0), 1, 701, Announce("10.0.0.0/8", {701}));
  monitor.Ingest(T(1), 1, 701, Withdraw("10.0.0.0/8"));
  monitor.Ingest(T(2), 1, 701, Withdraw("10.0.0.0/8"));

  const std::vector<Category> expected = {
      Category::kInitial, Category::kWithdraw, Category::kWWDup};
  EXPECT_EQ(seen_a, expected);
  EXPECT_EQ(seen_b, expected);
  EXPECT_EQ(monitor.events_seen(), 3u);
  EXPECT_EQ(monitor.messages_seen(), 3u);
}

TEST(ExchangeMonitor, MixedUpdateExplodesInWireOrder) {
  ExchangeMonitor monitor;
  std::vector<bool> withdraw_flags;
  monitor.AddSink([&withdraw_flags](const ClassifiedEvent& ev) {
    withdraw_flags.push_back(ev.event.is_withdraw);
  });
  bgp::UpdateMessage u = Announce("11.0.0.0/8", {9});
  u.withdrawn = {P("10.0.0.0/8"), P("12.0.0.0/8")};
  monitor.Ingest(T(0), 2, 1239, u);
  EXPECT_EQ(withdraw_flags, (std::vector<bool>{true, true, false}));
}

TEST(ExchangeMonitor, MrtMirrorAndReplayAgree) {
  mrt::Writer writer;

  ExchangeMonitor live;
  live.SetMrtWriter(&writer);
  CategoryCounts live_counts;
  live.AddSink([&live_counts](const ClassifiedEvent& ev) {
    live_counts.Add(ev);
  });

  // A small churny stream across two peers.
  for (int i = 0; i < 50; ++i) {
    const auto peer = static_cast<bgp::PeerId>(i % 2);
    const bgp::Asn asn = 701 + peer;
    if (i % 5 == 4) {
      live.Ingest(T(i), peer, asn, Withdraw("10.0.0.0/8"));
    } else {
      live.Ingest(T(i), peer, asn,
                  Announce("10.0.0.0/8", {asn, static_cast<bgp::Asn>(9 + i % 3)}));
    }
  }

  mrt::Reader reader(writer.buffer());
  ExchangeMonitor offline;
  CategoryCounts replay_counts;
  offline.AddSink([&replay_counts](const ClassifiedEvent& ev) {
    replay_counts.Add(ev);
  });
  const std::uint64_t updates = offline.Replay(reader);

  EXPECT_EQ(updates, 50u);
  EXPECT_EQ(replay_counts.by_category, live_counts.by_category);
  EXPECT_EQ(replay_counts.announcements, live_counts.announcements);
  EXPECT_EQ(replay_counts.withdrawals, live_counts.withdrawals);
}

TEST(ExchangeMonitor, ReplaySkipsNonUpdateRecords) {
  mrt::Writer writer;
  writer.LogMessage(T(0), 0, 701, 7, bgp::KeepAliveMessage{});
  bgp::OpenMessage open;
  open.asn = 701;
  writer.LogMessage(T(1), 0, 701, 7, open);
  writer.LogMessage(T(2), 0, 701, 7, Announce("10.0.0.0/8", {701}));

  mrt::Reader reader(writer.buffer());
  ExchangeMonitor monitor;
  EXPECT_EQ(monitor.Replay(reader), 1u);
  EXPECT_EQ(monitor.events_seen(), 1u);
}

TEST(ExchangeMonitor, ClassifierStateVisibleThroughAccessor) {
  ExchangeMonitor monitor;
  monitor.Ingest(T(0), 1, 701, Announce("10.0.0.0/8", {701}));
  monitor.Ingest(T(1), 2, 702, Announce("10.0.0.0/8", {702}));
  EXPECT_EQ(monitor.classifier().TrackedRoutes(), 2u);
}

}  // namespace
}  // namespace iri::core
