#include "core/snapshot.h"

#include <gtest/gtest.h>

namespace iri::core {
namespace {

Prefix P(const std::string& s) { return *Prefix::Parse(s); }

bgp::Route R(const std::string& prefix, std::vector<bgp::Asn> path) {
  bgp::Route r;
  r.prefix = P(prefix);
  r.attributes.as_path = bgp::AsPath::Sequence(std::move(path));
  r.attributes.next_hop = IPv4Address(10, 0, 0, 1);
  return r;
}

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    rib.AddPeer(1, IPv4Address(1, 1, 1, 1));
    rib.AddPeer(2, IPv4Address(2, 2, 2, 2));
  }
  bgp::Rib rib;
};

TEST_F(SnapshotTest, AnalyzeCountsComposition) {
  rib.Announce(1, R("10.0.0.0/8", {701}));          // aggregate (< /17)
  rib.Announce(1, R("204.10.1.0/24", {701, 9}));
  rib.Announce(2, R("204.10.1.0/24", {1239, 9}));   // multihomed
  rib.Announce(2, R("204.10.2.0/24", {1239}));

  const TableComposition comp = AnalyzeTable(rib);
  EXPECT_EQ(comp.prefixes, 3u);
  EXPECT_EQ(comp.routes, 4u);
  EXPECT_EQ(comp.multihomed, 1u);
  EXPECT_EQ(comp.aggregates, 1u);
  EXPECT_EQ(comp.unique_as_paths, 4u);
  // ASes: 701, 9, 1239.
  EXPECT_EQ(comp.autonomous_systems, 3u);
  EXPECT_NE(comp.ToString().find("3 prefixes"), std::string::npos);
}

TEST_F(SnapshotTest, AnalyzeEmptyTable) {
  const TableComposition comp = AnalyzeTable(rib);
  EXPECT_EQ(comp.prefixes, 0u);
  EXPECT_EQ(comp.autonomous_systems, 0u);
}

TEST_F(SnapshotTest, DiffDetectsAddRemoveChange) {
  rib.Announce(1, R("10.0.0.0/8", {701, 9}));
  rib.Announce(1, R("11.0.0.0/8", {701}));
  const TableSnapshot before = TableSnapshot::Capture(rib);

  rib.Withdraw(1, P("11.0.0.0/8"));                  // removed
  rib.Announce(1, R("12.0.0.0/8", {701}));           // added
  rib.Announce(2, R("10.0.0.0/8", {9}));             // best-path change
  const TableSnapshot after = TableSnapshot::Capture(rib);

  const TableDelta delta = before.DiffAgainst(after);
  EXPECT_EQ(delta.added, 1u);
  EXPECT_EQ(delta.removed, 1u);
  EXPECT_EQ(delta.path_changed, 1u);
}

TEST_F(SnapshotTest, IdenticalSnapshotsDiffToZero) {
  rib.Announce(1, R("10.0.0.0/8", {701}));
  const TableSnapshot a = TableSnapshot::Capture(rib);
  const TableSnapshot b = TableSnapshot::Capture(rib);
  const TableDelta delta = a.DiffAgainst(b);
  EXPECT_EQ(delta.added, 0u);
  EXPECT_EQ(delta.removed, 0u);
  EXPECT_EQ(delta.path_changed, 0u);
}

TEST_F(SnapshotTest, ChurnThatRestoresStateIsInvisibleToSnapshots) {
  // The headline contrast: the update stream can carry millions of events
  // while daily snapshots barely move.
  rib.Announce(1, R("10.0.0.0/8", {701}));
  const TableSnapshot before = TableSnapshot::Capture(rib);
  for (int i = 0; i < 100; ++i) {
    rib.Withdraw(1, P("10.0.0.0/8"));
    rib.Announce(1, R("10.0.0.0/8", {701}));
  }
  const TableSnapshot after = TableSnapshot::Capture(rib);
  const TableDelta delta = before.DiffAgainst(after);
  EXPECT_EQ(delta.added + delta.removed + delta.path_changed, 0u);
}

}  // namespace
}  // namespace iri::core
