#include "sim/scheduler.h"

#include <gtest/gtest.h>

#include <vector>

namespace iri::sim {
namespace {

TimePoint T(double seconds) {
  return TimePoint::Origin() + Duration::Seconds(seconds);
}

TEST(Scheduler, ExecutesInTimeOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.At(T(3), [&order] { order.push_back(3); });
  sched.At(T(1), [&order] { order.push_back(1); });
  sched.At(T(2), [&order] { order.push_back(2); });
  sched.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.Now(), T(3));
}

TEST(Scheduler, SimultaneousEventsAreFifo) {
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sched.At(T(1), [&order, i] { order.push_back(i); });
  }
  sched.RunAll();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Scheduler, AfterIsRelativeToNow) {
  Scheduler sched;
  TimePoint fired;
  sched.At(T(5), [&sched, &fired] {
    sched.After(Duration::Seconds(2), [&sched, &fired] { fired = sched.Now(); });
  });
  sched.RunAll();
  EXPECT_EQ(fired, T(7));
}

TEST(Scheduler, PastSchedulingClampsToNow) {
  Scheduler sched;
  TimePoint fired;
  sched.At(T(10), [&sched, &fired] {
    sched.At(T(1), [&sched, &fired] { fired = sched.Now(); });  // in the past
  });
  sched.RunAll();
  EXPECT_EQ(fired, T(10));  // never rewinds
}

TEST(Scheduler, RunUntilStopsAtBoundary) {
  Scheduler sched;
  int fired = 0;
  sched.At(T(1), [&fired] { ++fired; });
  sched.At(T(5), [&fired] { ++fired; });
  sched.RunUntil(T(3));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sched.Now(), T(3));
  EXPECT_EQ(sched.pending(), 1u);
  sched.RunUntil(T(10));
  EXPECT_EQ(fired, 2);
}

TEST(Scheduler, RunUntilIncludesBoundaryEvents) {
  Scheduler sched;
  int fired = 0;
  sched.At(T(3), [&fired] { ++fired; });
  sched.RunUntil(T(3));
  EXPECT_EQ(fired, 1);
}

TEST(Scheduler, StepReturnsFalseWhenEmpty) {
  Scheduler sched;
  EXPECT_FALSE(sched.Step());
  sched.At(T(1), [] {});
  EXPECT_TRUE(sched.Step());
  EXPECT_FALSE(sched.Step());
}

TEST(Scheduler, TasksCanScheduleTasks) {
  Scheduler sched;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) sched.After(Duration::Seconds(1), recurse);
  };
  sched.At(T(0), recurse);
  sched.RunAll();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sched.Now(), T(99));
  EXPECT_EQ(sched.executed(), 100u);
}

}  // namespace
}  // namespace iri::sim
