#include "sim/scheduler.h"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "netbase/rng.h"

namespace iri::sim {
namespace {

TimePoint T(double seconds) {
  return TimePoint::Origin() + Duration::Seconds(seconds);
}

TEST(Scheduler, ExecutesInTimeOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.At(T(3), [&order] { order.push_back(3); });
  sched.At(T(1), [&order] { order.push_back(1); });
  sched.At(T(2), [&order] { order.push_back(2); });
  sched.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.Now(), T(3));
}

TEST(Scheduler, SimultaneousEventsAreFifo) {
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sched.At(T(1), [&order, i] { order.push_back(i); });
  }
  sched.RunAll();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Scheduler, AfterIsRelativeToNow) {
  Scheduler sched;
  TimePoint fired;
  sched.At(T(5), [&sched, &fired] {
    sched.After(Duration::Seconds(2), [&sched, &fired] { fired = sched.Now(); });
  });
  sched.RunAll();
  EXPECT_EQ(fired, T(7));
}

TEST(Scheduler, PastSchedulingClampsToNow) {
  Scheduler sched;
  TimePoint fired;
  sched.At(T(10), [&sched, &fired] {
    sched.At(T(1), [&sched, &fired] { fired = sched.Now(); });  // in the past
  });
  sched.RunAll();
  EXPECT_EQ(fired, T(10));  // never rewinds
}

TEST(Scheduler, RunUntilStopsAtBoundary) {
  Scheduler sched;
  int fired = 0;
  sched.At(T(1), [&fired] { ++fired; });
  sched.At(T(5), [&fired] { ++fired; });
  sched.RunUntil(T(3));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sched.Now(), T(3));
  EXPECT_EQ(sched.pending(), 1u);
  sched.RunUntil(T(10));
  EXPECT_EQ(fired, 2);
}

TEST(Scheduler, RunUntilIncludesBoundaryEvents) {
  Scheduler sched;
  int fired = 0;
  sched.At(T(3), [&fired] { ++fired; });
  sched.RunUntil(T(3));
  EXPECT_EQ(fired, 1);
}

TEST(Scheduler, StepReturnsFalseWhenEmpty) {
  Scheduler sched;
  EXPECT_FALSE(sched.Step());
  sched.At(T(1), [] {});
  EXPECT_TRUE(sched.Step());
  EXPECT_FALSE(sched.Step());
}

TEST(Scheduler, ClockIsMonotoneOverRandomizedSchedule) {
  // Seeded random times, deliberately heavy on duplicates: the clock must
  // never rewind and equal-time events must run in scheduling (FIFO) order.
  Rng rng(0x5EEDED);
  Scheduler sched;
  std::vector<std::pair<TimePoint, int>> executed;
  for (int i = 0; i < 2000; ++i) {
    const TimePoint t =
        TimePoint::Origin() + Duration::Millis(static_cast<std::int64_t>(rng.Below(50)));
    sched.At(t, [&sched, &executed, i] {
      executed.emplace_back(sched.Now(), i);
      // Reentrant scheduling at a duplicate-prone time keeps the heap busy
      // while it is being drained.
      if (i % 7 == 0) {
        sched.After(Duration::Millis(3), [] {});
      }
    });
  }
  sched.RunAll();
  ASSERT_GE(executed.size(), 2000u);
  for (std::size_t k = 1; k < executed.size(); ++k) {
    ASSERT_LE(executed[k - 1].first, executed[k].first)
        << "clock rewound at event " << k;
    if (executed[k - 1].first == executed[k].first) {
      ASSERT_LT(executed[k - 1].second, executed[k].second)
          << "FIFO tie-break violated at t=" << executed[k].first.nanos();
    }
  }
}

TEST(Scheduler, StepMovesTasksOutWithoutCopying) {
  // The heap rework exists to avoid priority_queue's const_cast/copy dance:
  // once scheduled, draining the queue must move tasks, never copy them.
  struct CopyCounter {
    int* copies;
    CopyCounter(int* c) : copies(c) {}  // NOLINT: implicit is fine in a test
    CopyCounter(const CopyCounter& o) : copies(o.copies) { ++*copies; }
    CopyCounter(CopyCounter&& o) noexcept : copies(o.copies) {}
    void operator()() const {}
  };
  Scheduler sched;
  int copies = 0;
  for (int i = 0; i < 8; ++i) sched.At(T(i), CopyCounter(&copies));
  const int copies_after_scheduling = copies;
  sched.RunAll();
  EXPECT_EQ(copies, copies_after_scheduling);
}

TEST(Scheduler, TaskScheduledAtHorizonFromInsideStepStillRunsThisCall) {
  // The starvation edge: RunUntil(end) must re-read heap_.front() after
  // every Step(), so a task that a running task schedules at *exactly* `end`
  // is still executed by this RunUntil call — not stranded until the next
  // one. A flush timer that re-arms for the horizon boundary would
  // otherwise silently slip a whole horizon.
  Scheduler sched;
  std::vector<int> fired;
  sched.At(T(3), [&] {
    fired.push_back(1);
    sched.At(T(5), [&] {  // exactly the horizon passed to RunUntil below
      fired.push_back(2);
      sched.At(T(5), [&] { fired.push_back(3); });  // chained, still == end
    });
  });
  sched.RunUntil(T(5));
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.Now(), T(5));
  EXPECT_EQ(sched.pending(), 0u);

  // One tick past the horizon stays queued for the next call.
  sched.At(T(5) + Duration::Nanos(1), [&] { fired.push_back(4); });
  sched.RunUntil(T(5));
  EXPECT_EQ(fired.size(), 3u);
  EXPECT_EQ(sched.pending(), 1u);
}

TEST(Scheduler, HorizonChainAcrossManyTasksDrainsCompletely) {
  // Heavier version of the starvation edge: a chain of N tasks, each
  // scheduling the next at the same horizon time, must fully drain in one
  // RunUntil call (the loop condition is re-evaluated every iteration).
  Scheduler sched;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 500) sched.At(T(9), chain);
  };
  sched.At(T(9), chain);
  sched.RunUntil(T(9));
  EXPECT_EQ(depth, 500);
  EXPECT_EQ(sched.pending(), 0u);
}

TEST(Scheduler, TasksCanScheduleTasks) {
  Scheduler sched;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) sched.After(Duration::Seconds(1), recurse);
  };
  sched.At(T(0), recurse);
  sched.RunAll();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sched.Now(), T(99));
  EXPECT_EQ(sched.executed(), 100u);
}

}  // namespace
}  // namespace iri::sim
