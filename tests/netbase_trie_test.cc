#include "netbase/radix_trie.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "netbase/rng.h"

namespace iri {
namespace {

Prefix P(const std::string& s) { return *Prefix::Parse(s); }

TEST(RadixTrie, InsertFindErase) {
  RadixTrie<int> trie;
  EXPECT_TRUE(trie.Insert(P("10.0.0.0/8"), 1));
  EXPECT_TRUE(trie.Insert(P("10.1.0.0/16"), 2));
  EXPECT_FALSE(trie.Insert(P("10.0.0.0/8"), 3));  // overwrite
  EXPECT_EQ(trie.size(), 2u);
  EXPECT_EQ(*trie.Find(P("10.0.0.0/8")), 3);
  EXPECT_EQ(*trie.Find(P("10.1.0.0/16")), 2);
  EXPECT_EQ(trie.Find(P("10.2.0.0/16")), nullptr);
  EXPECT_TRUE(trie.Erase(P("10.0.0.0/8")));
  EXPECT_FALSE(trie.Erase(P("10.0.0.0/8")));
  EXPECT_EQ(trie.size(), 1u);
  EXPECT_EQ(trie.Find(P("10.0.0.0/8")), nullptr);
}

TEST(RadixTrie, ExactMatchDistinguishesLengths) {
  RadixTrie<int> trie;
  trie.Insert(P("10.0.0.0/8"), 8);
  trie.Insert(P("10.0.0.0/16"), 16);
  trie.Insert(P("10.0.0.0/24"), 24);
  EXPECT_EQ(*trie.Find(P("10.0.0.0/8")), 8);
  EXPECT_EQ(*trie.Find(P("10.0.0.0/16")), 16);
  EXPECT_EQ(*trie.Find(P("10.0.0.0/24")), 24);
  EXPECT_EQ(trie.Find(P("10.0.0.0/12")), nullptr);
}

TEST(RadixTrie, DefaultRoute) {
  RadixTrie<int> trie;
  trie.Insert(P("0.0.0.0/0"), 42);
  auto match = trie.LongestMatch(IPv4Address(203, 0, 113, 9));
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->first, P("0.0.0.0/0"));
  EXPECT_EQ(*match->second, 42);
}

TEST(RadixTrie, LongestMatchPrefersMostSpecific) {
  RadixTrie<int> trie;
  trie.Insert(P("10.0.0.0/8"), 8);
  trie.Insert(P("10.1.0.0/16"), 16);
  trie.Insert(P("10.1.2.0/24"), 24);

  EXPECT_EQ(*trie.LongestMatch(IPv4Address(10, 1, 2, 3))->second, 24);
  EXPECT_EQ(*trie.LongestMatch(IPv4Address(10, 1, 9, 9))->second, 16);
  EXPECT_EQ(*trie.LongestMatch(IPv4Address(10, 9, 9, 9))->second, 8);
  EXPECT_FALSE(trie.LongestMatch(IPv4Address(11, 0, 0, 1)).has_value());
}

TEST(RadixTrie, HostRoutes) {
  RadixTrie<int> trie;
  trie.Insert(P("10.0.0.1/32"), 1);
  EXPECT_EQ(*trie.LongestMatch(IPv4Address(10, 0, 0, 1))->second, 1);
  EXPECT_FALSE(trie.LongestMatch(IPv4Address(10, 0, 0, 2)).has_value());
}

TEST(RadixTrie, VisitInAddressOrder) {
  RadixTrie<int> trie;
  trie.Insert(P("192.0.0.0/8"), 3);
  trie.Insert(P("10.0.0.0/8"), 1);
  trie.Insert(P("10.128.0.0/9"), 2);
  std::vector<Prefix> order;
  trie.Visit([&order](const Prefix& p, const int&) { order.push_back(p); });
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], P("10.0.0.0/8"));
  EXPECT_EQ(order[1], P("10.128.0.0/9"));
  EXPECT_EQ(order[2], P("192.0.0.0/8"));
}

TEST(RadixTrie, VisitCoveredSubtree) {
  RadixTrie<int> trie;
  trie.Insert(P("10.0.0.0/8"), 0);
  trie.Insert(P("10.1.0.0/16"), 1);
  trie.Insert(P("10.1.2.0/24"), 2);
  trie.Insert(P("10.2.0.0/16"), 3);
  trie.Insert(P("11.0.0.0/8"), 4);

  std::vector<int> seen;
  trie.VisitCovered(P("10.1.0.0/16"),
                    [&seen](const Prefix&, const int& v) { seen.push_back(v); });
  EXPECT_EQ(seen, (std::vector<int>{1, 2}));
}

TEST(RadixTrie, HasCoveredDescendant) {
  RadixTrie<int> trie;
  trie.Insert(P("10.1.2.0/24"), 1);
  EXPECT_TRUE(trie.HasCoveredDescendant(P("10.0.0.0/8")));
  EXPECT_TRUE(trie.HasCoveredDescendant(P("10.1.0.0/16")));
  // Exact match does not count as a descendant.
  EXPECT_FALSE(trie.HasCoveredDescendant(P("10.1.2.0/24")));
  EXPECT_FALSE(trie.HasCoveredDescendant(P("11.0.0.0/8")));
}

TEST(RadixTrie, ErasePrunesBranches) {
  RadixTrie<int> trie;
  trie.Insert(P("10.1.2.0/24"), 1);
  trie.Erase(P("10.1.2.0/24"));
  // After pruning, nothing under 10/8 remains.
  EXPECT_FALSE(trie.HasCoveredDescendant(P("10.0.0.0/8")));
  EXPECT_TRUE(trie.empty());
}

TEST(RadixTrie, EraseKeepsAncestorsAndDescendants) {
  RadixTrie<int> trie;
  trie.Insert(P("10.0.0.0/8"), 8);
  trie.Insert(P("10.1.0.0/16"), 16);
  trie.Insert(P("10.1.2.0/24"), 24);
  trie.Erase(P("10.1.0.0/16"));
  EXPECT_EQ(*trie.Find(P("10.0.0.0/8")), 8);
  EXPECT_EQ(*trie.Find(P("10.1.2.0/24")), 24);
  EXPECT_EQ(*trie.LongestMatch(IPv4Address(10, 1, 9, 9))->second, 8);
}

TEST(RadixTrie, Clear) {
  RadixTrie<int> trie;
  trie.Insert(P("10.0.0.0/8"), 1);
  trie.Clear();
  EXPECT_TRUE(trie.empty());
  EXPECT_EQ(trie.Find(P("10.0.0.0/8")), nullptr);
}

TEST(RadixTrie, MoveSemantics) {
  RadixTrie<std::string> trie;
  trie.Insert(P("10.0.0.0/8"), "a");
  RadixTrie<std::string> moved = std::move(trie);
  EXPECT_EQ(*moved.Find(P("10.0.0.0/8")), "a");
}

// Property test: the trie agrees with a std::map reference model across a
// randomized workload of inserts, erases, exact lookups and LPM queries.
class TrieModelCheck : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TrieModelCheck, AgreesWithReferenceModel) {
  Rng rng(GetParam());
  RadixTrie<int> trie;
  std::map<Prefix, int> model;

  auto random_prefix = [&rng] {
    const auto len = static_cast<std::uint8_t>(rng.Range(8, 28));
    // Confine to 10.0.0.0/8 to force dense overlap.
    const std::uint32_t addr =
        (10u << 24) | static_cast<std::uint32_t>(rng.Below(1u << 24));
    return Prefix(IPv4Address(addr), len);
  };

  for (int step = 0; step < 4000; ++step) {
    const Prefix p = random_prefix();
    switch (rng.Below(3)) {
      case 0: {
        const int v = static_cast<int>(rng.Below(1000));
        const bool fresh_trie = trie.Insert(p, v);
        const bool fresh_model = model.insert_or_assign(p, v).second;
        EXPECT_EQ(fresh_trie, fresh_model);
        break;
      }
      case 1: {
        EXPECT_EQ(trie.Erase(p), model.erase(p) > 0);
        break;
      }
      default: {
        const int* found = trie.Find(p);
        auto it = model.find(p);
        if (it == model.end()) {
          EXPECT_EQ(found, nullptr);
        } else {
          ASSERT_NE(found, nullptr);
          EXPECT_EQ(*found, it->second);
        }
        break;
      }
    }
    EXPECT_EQ(trie.size(), model.size());
  }

  // Longest-prefix-match cross-check on random addresses.
  for (int q = 0; q < 500; ++q) {
    const IPv4Address addr(
        (10u << 24) | static_cast<std::uint32_t>(rng.Below(1u << 24)));
    auto got = trie.LongestMatch(addr);
    // Reference: scan the model for the longest covering prefix.
    const std::pair<const Prefix, int>* best = nullptr;
    for (const auto& entry : model) {
      if (entry.first.Contains(addr) &&
          (best == nullptr || entry.first.length() > best->first.length())) {
        best = &entry;
      }
    }
    if (best == nullptr) {
      EXPECT_FALSE(got.has_value());
    } else {
      ASSERT_TRUE(got.has_value());
      EXPECT_EQ(got->first, best->first);
      EXPECT_EQ(*got->second, best->second);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrieModelCheck,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace iri
