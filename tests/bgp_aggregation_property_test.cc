// Property tests for CIDR aggregation: random route sets, with the
// containment invariants that make supernetting safe asserted over every
// draw — chiefly that an aggregate covers every contributing prefix, so
// hiding edge instability never hides reachability.
#include "bgp/aggregation.h"

#include <gtest/gtest.h>

#include <vector>

#include "netbase/rng.h"

namespace iri::bgp {
namespace {

constexpr int kTrials = 60;

Prefix RandomPrefix(Rng& rng, std::uint8_t min_len, std::uint8_t max_len) {
  const auto len = static_cast<std::uint8_t>(
      rng.Range(min_len, max_len));
  return Prefix(IPv4Address(static_cast<std::uint32_t>(rng.Next())), len);
}

Route RandomRoute(Rng& rng, const Prefix& prefix) {
  Route r;
  r.prefix = prefix;
  // A small attribute palette: repeats make sibling merges likely while
  // still exercising the must-not-merge paths.
  r.attributes.as_path =
      AsPath::Sequence({static_cast<Asn>(100 + rng.Below(3)),
                        static_cast<Asn>(200 + rng.Below(2))});
  r.attributes.next_hop = IPv4Address(10, 0, 0, static_cast<std::uint8_t>(
                                                    1 + rng.Below(2)));
  r.attributes.origin = rng.Below(2) == 0 ? Origin::kIgp : Origin::kEgp;
  if (rng.Below(3) == 0) r.attributes.med = static_cast<std::uint32_t>(rng.Below(50));
  return r;
}

std::uint64_t AddressSpan(const Prefix& p) {
  return std::uint64_t{1} << (32 - p.length());
}

TEST(AggregateSiblingsProperty, EveryInputIsCoveredAndSpanIsPreserved) {
  for (int trial = 0; trial < kTrials; ++trial) {
    Rng rng(1'000 + static_cast<std::uint64_t>(trial));
    // Cluster prefixes under a handful of /20 parents so siblings exist.
    std::vector<Route> in;
    const int n = 2 + static_cast<int>(rng.Below(24));
    std::vector<Prefix> parents;
    for (int i = 0; i < 3; ++i) parents.push_back(RandomPrefix(rng, 20, 20));
    for (int i = 0; i < n; ++i) {
      Prefix p = parents[rng.Below(parents.size())];
      while (p.length() < 24 + rng.Below(3)) {
        p = rng.Below(2) == 0 ? p.LowerHalf() : p.UpperHalf();
      }
      in.push_back(RandomRoute(rng, p));
    }

    const std::vector<Route> out = AggregateSiblings(in);
    ASSERT_LE(out.size(), in.size()) << "trial " << trial;

    // The aggregate set covers every contributing prefix.
    for (const Route& r : in) {
      bool covered = false;
      for (const Route& o : out) covered |= o.prefix.Covers(r.prefix);
      EXPECT_TRUE(covered) << "trial " << trial << ": lost "
                           << r.prefix.ToString();
    }
    // And no route appears from thin air: every output is an input or a
    // merge of inputs, so inputs must cover the outputs' address span.
    for (const Route& o : out) {
      std::uint64_t covered_span = 0;
      for (const Route& r : in) {
        if (o.prefix.Covers(r.prefix)) covered_span += AddressSpan(r.prefix);
      }
      // Duplicates in `in` can overcount; the invariant is >=.
      EXPECT_GE(covered_span, AddressSpan(o.prefix))
          << "trial " << trial << ": " << o.prefix.ToString()
          << " announces space no input held";
    }
    // Output is in address order (deterministic downstream iteration).
    for (std::size_t i = 1; i < out.size(); ++i) {
      EXPECT_LE(out[i - 1].prefix, out[i].prefix) << "trial " << trial;
    }
  }
}

TEST(AggregateSiblingsProperty, IsIdempotent) {
  for (int trial = 0; trial < kTrials; ++trial) {
    Rng rng(9'000 + static_cast<std::uint64_t>(trial));
    std::vector<Route> in;
    Prefix parent = RandomPrefix(rng, 16, 16);
    for (int i = 0; i < 8; ++i) {
      Prefix p = parent;
      while (p.length() < 22) {
        p = rng.Below(2) == 0 ? p.LowerHalf() : p.UpperHalf();
      }
      in.push_back(RandomRoute(rng, p));
    }
    const std::vector<Route> once = AggregateSiblings(in);
    const std::vector<Route> twice = AggregateSiblings(once);
    EXPECT_EQ(once, twice) << "trial " << trial;
  }
}

TEST(AggregateIntoBlockProperty, AggregateCoversEveryComponentInBlock) {
  for (int trial = 0; trial < kTrials; ++trial) {
    Rng rng(17'000 + static_cast<std::uint64_t>(trial));
    const Prefix block = RandomPrefix(rng, 12, 16);
    const Asn aggregator = 7;
    const IPv4Address aggregator_id(192, 0, 2, 1);
    const IPv4Address next_hop(10, 9, 9, 9);

    std::vector<Route> components;
    int inside = 0;
    const int n = static_cast<int>(rng.Below(12));
    for (int i = 0; i < n; ++i) {
      Prefix p;
      if (rng.Below(2) == 0) {
        p = block;  // descend inside the block
        while (p.length() < 24) {
          p = rng.Below(2) == 0 ? p.LowerHalf() : p.UpperHalf();
        }
        ++inside;
      } else {
        do {
          p = RandomPrefix(rng, 24, 24);
        } while (block.Covers(p));
      }
      components.push_back(RandomRoute(rng, p));
    }

    const std::optional<Route> agg = AggregateIntoBlock(
        block, components, aggregator, aggregator_id, next_hop);

    if (inside == 0) {
      EXPECT_FALSE(agg.has_value()) << "trial " << trial;
      continue;
    }
    ASSERT_TRUE(agg.has_value()) << "trial " << trial;
    // The supernet covers every contributing prefix — the paper's
    // containment guarantee ("a path to an aggregate supernet prefix as
    // long as a path to one or more of the component prefixes").
    EXPECT_EQ(agg->prefix, block) << "trial " << trial;
    for (const Route& c : components) {
      if (block.Covers(c.prefix)) {
        EXPECT_TRUE(agg->prefix.Covers(c.prefix)) << "trial " << trial;
      }
    }
    // Loop-detection information survives: every in-block component's origin
    // AS is either the aggregator or present in the aggregate's path
    // (collected into the trailing AS_SET, per RFC 1771 §9.2.2.2).
    EXPECT_TRUE(agg->attributes.atomic_aggregate) << "trial " << trial;
    for (const Route& c : components) {
      if (!block.Covers(c.prefix)) continue;
      const Asn origin = c.attributes.as_path.OriginAsn();
      EXPECT_TRUE(origin == aggregator ||
                  agg->attributes.as_path.Contains(origin))
          << "trial " << trial << ": dropped origin AS " << origin;
    }
  }
}

}  // namespace
}  // namespace iri::bgp
