#include "obs/health.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace iri::obs {
namespace {

constexpr Duration kTick = Duration::Seconds(10);

TimePoint T(double seconds) {
  return TimePoint::Origin() + Duration::Seconds(seconds);
}

// Scores a strong 30 s (3-tick) oscillation in the update counts: the
// online analogue of the paper's self-synchronization fingerprint.
TEST(HealthMonitor, GoertzelFlagsAWatchedPeriodicity) {
  HealthConfig cfg;
  cfg.goertzel_block_ticks = 30;
  Registry registry;
  Tracer tracer;
  HealthMonitor hm(cfg, kTick, &tracer, &registry);
  // Period-3 cycle (30 s at a 10 s tick): almost all variance in band A.
  const std::uint64_t cycle[3] = {150, 75, 75};
  for (int n = 0; n < 30; ++n) {
    hm.ObserveTick(T(10.0 * (n + 1)), cycle[n % 3], 0, 0);
  }
  EXPECT_GT(hm.periodicity_ppm_a(), 900'000);
  EXPECT_LT(hm.periodicity_ppm_b(), 100'000);
  EXPECT_GE(registry.GetCounter("health.periodicity.alerts").value(), 1u);
  EXPECT_EQ(registry.GetGauge("health.periodicity.a_ppm").value(),
            hm.periodicity_ppm_a());
}

TEST(HealthMonitor, GoertzelStaysQuietOnAFlatSignal) {
  HealthConfig cfg;
  cfg.goertzel_block_ticks = 30;
  Registry registry;
  Tracer tracer;
  HealthMonitor hm(cfg, kTick, &tracer, &registry);
  for (int n = 0; n < 30; ++n) {
    hm.ObserveTick(T(10.0 * (n + 1)), 100, 0, 0);
  }
  // Zero variance: no band can claim a share of it.
  EXPECT_EQ(hm.periodicity_ppm_a(), 0);
  EXPECT_EQ(hm.periodicity_ppm_b(), 0);
  EXPECT_EQ(registry.GetCounter("health.periodicity.alerts").value(), 0u);
}

TEST(HealthMonitor, BandsAboveNyquistAreDisabled) {
  HealthConfig cfg;
  cfg.period_a = Duration::Seconds(15);  // < 2 ticks: unobservable
  cfg.period_b = Duration::Seconds(60);
  cfg.goertzel_block_ticks = 12;
  Registry registry;
  Tracer tracer;
  HealthMonitor hm(cfg, kTick, &tracer, &registry);
  // Alternating signal (the strongest possible sub-Nyquist content).
  for (int n = 0; n < 12; ++n) {
    hm.ObserveTick(T(10.0 * (n + 1)), n % 2 == 0 ? 200 : 0, 0, 0);
  }
  EXPECT_EQ(hm.periodicity_ppm_a(), 0);
}

TEST(HealthMonitor, StormEntersWithHysteresisAndEmitsExactTraces) {
  HealthConfig cfg;
  cfg.storm_min_count = 10;
  cfg.storm_enter_ticks = 2;
  cfg.storm_window_ticks = 1;  // instantaneous: exact per-tick arithmetic
  cfg.storm_factor = 6.0;
  cfg.storm_exit_factor = 2.0;
  cfg.baseline_alpha = 0.5;
  Registry registry;
  Tracer tracer;
  HealthMonitor hm(cfg, kTick, &tracer, &registry);

  hm.ObserveTick(T(10), 2, 1, 1);  // seeds baseline at 2
  hm.ObserveTick(T(20), 2, 1, 1);  // baseline stays 2
  EXPECT_FALSE(hm.storm_active());
  hm.ObserveTick(T(30), 50, 25, 25);  // over the bar, 1st consecutive tick
  EXPECT_FALSE(hm.storm_active());    // hysteresis: not yet
  hm.ObserveTick(T(40), 60, 30, 30);  // 2nd consecutive tick: storm starts
  EXPECT_TRUE(hm.storm_active());
  EXPECT_EQ(hm.storms_started(), 1u);
  hm.ObserveTick(T(50), 80, 40, 40);  // still raging; new peak
  EXPECT_TRUE(hm.storm_active());
  hm.ObserveTick(T(60), 1, 1, 0);  // collapses below the exit bar
  EXPECT_FALSE(hm.storm_active());

  EXPECT_EQ(registry.GetCounter("health.storm.starts").value(), 1u);
  EXPECT_EQ(registry.GetGauge("health.storm.active").value(), 0);
  EXPECT_EQ(registry.GetGauge("health.storm.peak_window").value(), 80);
  EXPECT_EQ(
      tracer.buffer(),
      "{\"t_ns\":40000000000,\"ev\":\"storm_start\",\"window\":60,"
      "\"baseline_x100\":200}\n"
      "{\"t_ns\":60000000000,\"ev\":\"storm_end\",\"peak_window\":80,"
      "\"duration_ns\":20000000000}\n");
}

TEST(HealthMonitor, SingleSpikeDoesNotStartAStorm) {
  HealthConfig cfg;
  cfg.storm_min_count = 10;
  cfg.storm_enter_ticks = 2;
  cfg.storm_window_ticks = 1;
  Registry registry;
  Tracer tracer;
  HealthMonitor hm(cfg, kTick, &tracer, &registry);
  hm.ObserveTick(T(10), 2, 1, 1);
  hm.ObserveTick(T(20), 100, 50, 50);  // one hot window...
  hm.ObserveTick(T(30), 2, 1, 1);      // ...then back to normal
  hm.ObserveTick(T(40), 100, 50, 50);
  hm.ObserveTick(T(50), 2, 1, 1);
  EXPECT_EQ(hm.storms_started(), 0u);
  EXPECT_TRUE(tracer.buffer().empty());
}

// An isolated spray burst lands in ONE tick (stateless routers flush a
// whole spray in a single window), yet the default sliding window must keep
// it over the bar long enough to satisfy the consecutive-tick hysteresis.
TEST(HealthMonitor, WindowKeepsAnIsolatedSprayVisibleToHysteresis) {
  HealthConfig cfg;
  cfg.storm_min_count = 10;
  cfg.storm_enter_ticks = 2;
  cfg.storm_window_ticks = 6;
  cfg.storm_factor = 6.0;
  cfg.storm_exit_factor = 2.0;
  cfg.baseline_alpha = 0.5;
  Registry registry;
  Tracer tracer;
  HealthMonitor hm(cfg, kTick, &tracer, &registry);

  hm.ObserveTick(T(10), 2, 1, 1);       // windowed sum 2: baseline seeds 2
  hm.ObserveTick(T(20), 100, 50, 50);   // the spray: sum 102, 1st over-tick
  EXPECT_FALSE(hm.storm_active());
  hm.ObserveTick(T(30), 0, 0, 0);       // silence, but sum still 102
  EXPECT_TRUE(hm.storm_active());       // 2nd consecutive over-tick
  EXPECT_EQ(hm.storms_started(), 1u);
  // Four more quiet ticks: the spray ages out of the 6-tick window and the
  // windowed sum collapses under the exit bar.
  hm.ObserveTick(T(40), 0, 0, 0);
  hm.ObserveTick(T(50), 0, 0, 0);
  hm.ObserveTick(T(60), 0, 0, 0);
  hm.ObserveTick(T(70), 0, 0, 0);
  hm.ObserveTick(T(80), 0, 0, 0);       // spray left the window: sum 0
  EXPECT_FALSE(hm.storm_active());
  EXPECT_EQ(registry.GetGauge("health.storm.peak_window").value(), 102);
}

TEST(HealthMonitor, SessionizerEmitsBurstsOverTheMinimumOnly) {
  HealthConfig cfg;
  cfg.session_gap = Duration::Seconds(90);
  cfg.session_min_events = 3;
  Registry registry;
  Tracer tracer;
  HealthMonitor hm(cfg, kTick, &tracer, &registry);

  // Peer 5: three events inside the gap — reportable at finalize.
  hm.ObservePeerEvent(T(1), 5);
  hm.ObservePeerEvent(T(2), 5);
  hm.ObservePeerEvent(T(3), 5);
  // Peer 7: two events, then a 200 s gap splits the run. The first burst is
  // under the minimum, so the split must report nothing.
  hm.ObservePeerEvent(T(1), 7);
  hm.ObservePeerEvent(T(2), 7);
  hm.ObservePeerEvent(T(202), 7);
  hm.Finalize(T(210));

  EXPECT_EQ(registry.GetCounter("health.flap.bursts").value(), 1u);
  EXPECT_EQ(registry.GetGauge("health.flap.peak_events").value(), 3);
  EXPECT_EQ(
      tracer.buffer(),
      "{\"t_ns\":210000000000,\"ev\":\"flap_burst\",\"peer\":5,\"events\":3,"
      "\"start_ns\":1000000000,\"duration_ns\":2000000000}\n");
}

TEST(HealthMonitor, FinalizeClosesAnOpenStorm) {
  HealthConfig cfg;
  cfg.storm_min_count = 10;
  cfg.storm_enter_ticks = 1;
  cfg.storm_window_ticks = 1;
  Registry registry;
  Tracer tracer;
  HealthMonitor hm(cfg, kTick, &tracer, &registry);
  hm.ObserveTick(T(10), 2, 1, 1);
  hm.ObserveTick(T(20), 100, 50, 50);
  ASSERT_TRUE(hm.storm_active());
  hm.Finalize(T(30));
  EXPECT_FALSE(hm.storm_active());
  EXPECT_EQ(registry.GetGauge("health.storm.active").value(), 0);
  EXPECT_NE(tracer.buffer().find("\"ev\":\"storm_end\""), std::string::npos);
}

}  // namespace
}  // namespace iri::obs
