#include "topology/universe.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <unordered_set>

namespace iri::topology {
namespace {

TopologyConfig SmallConfig() {
  TopologyConfig cfg;
  cfg.scale = 1.0 / 16;  // ~2600 prefixes
  cfg.num_providers = 16;
  cfg.seed = 5;
  return cfg;
}

TEST(Universe, GeneratesRequestedScale) {
  const auto u = GenerateUniverse(SmallConfig(), Duration::Days(60));
  EXPECT_NEAR(u.TotalPrefixes(), 42000 / 16, 42000 / 16 * 0.02);
  EXPECT_EQ(u.providers.size(), 16u);
}

TEST(Universe, ProviderWeightsAreZipfNormalized) {
  const auto u = GenerateUniverse(SmallConfig(), Duration::Days(60));
  double sum = 0;
  for (const auto& p : u.providers) sum += p.table_weight;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  // Dominance: the top provider clearly outweighs the smallest.
  EXPECT_GT(u.providers.front().table_weight,
            5 * u.providers.back().table_weight);
  // 6-8 ISPs should hold most of the table.
  double top8 = 0;
  for (int i = 0; i < 8; ++i) top8 += u.providers[i].table_weight;
  EXPECT_GT(top8, 0.7);
}

TEST(Universe, PrefixAssignmentFollowsWeights) {
  const auto u = GenerateUniverse(SmallConfig(), Duration::Days(60));
  // The largest provider must own several times the customers of the
  // smallest.
  EXPECT_GT(u.providers.front().customers.size(),
            3 * std::max<std::size_t>(1, u.providers.back().customers.size()));
}

TEST(Universe, PrefixesAreUniqueAndCanonical) {
  const auto u = GenerateUniverse(SmallConfig(), Duration::Days(60));
  std::unordered_set<Prefix> seen;
  for (const auto& c : u.customers) {
    EXPECT_TRUE(seen.insert(c.prefix).second)
        << "duplicate " << c.prefix.ToString();
    EXPECT_EQ(c.prefix.length(), 24);  // customer prefixes are /24s
  }
}

TEST(Universe, AggregatedFractionRespected) {
  const auto u = GenerateUniverse(SmallConfig(), Duration::Days(60));
  const double frac =
      1.0 - static_cast<double>(u.VisiblePrefixes()) /
                static_cast<double>(u.TotalPrefixes());
  EXPECT_NEAR(frac, u.config.aggregated_fraction, 0.04);
}

TEST(Universe, CustomerPrefixesInsideProviderBlocksUnlessSwamp) {
  const auto u = GenerateUniverse(SmallConfig(), Duration::Days(60));
  int in_block = 0, swamp = 0;
  for (const auto& c : u.customers) {
    const auto& prov =
        u.providers[static_cast<std::size_t>(c.primary_provider)];
    bool covered = false;
    for (const Prefix& block : prov.aggregate_blocks) {
      if (block.Covers(c.prefix)) {
        covered = true;
        break;
      }
    }
    if (covered) {
      ++in_block;
    } else {
      ++swamp;
      // Swamp prefixes live in the pre-CIDR 192-193/8 space.
      EXPECT_TRUE((c.prefix.bits() >> 24) == 192 ||
                  (c.prefix.bits() >> 24) == 193)
          << c.prefix.ToString();
    }
  }
  EXPECT_GT(in_block, swamp);  // most space is provider-allocated
  EXPECT_GT(swamp, 0);         // but the swamp exists
}

TEST(Universe, AggregatedPrefixesAreNeverMultihomed) {
  const auto u = GenerateUniverse(SmallConfig(), Duration::Days(60));
  for (const auto& c : u.customers) {
    if (c.aggregated) {
      EXPECT_EQ(c.backup_provider, -1);
      EXPECT_EQ(c.multihomed_since, TimePoint::Max());
    }
  }
}

TEST(Universe, MultihomingRampMatchesConfiguredFractions) {
  const Duration length = Duration::Days(100);
  const auto u = GenerateUniverse(SmallConfig(), length);
  const int visible = u.VisiblePrefixes();
  const double at_start =
      static_cast<double>(u.MultihomedAt(TimePoint::Origin())) / visible;
  const double at_end =
      static_cast<double>(u.MultihomedAt(TimePoint::Origin() + length)) /
      visible;
  EXPECT_NEAR(at_start, u.config.multihomed_fraction_start, 0.05);
  EXPECT_NEAR(at_end, u.config.multihomed_fraction_end, 0.05);
  EXPECT_GT(at_end, at_start);
}

TEST(Universe, MultihomingGrowthIsRoughlyLinear) {
  const Duration length = Duration::Days(100);
  const auto u = GenerateUniverse(SmallConfig(), length);
  const int m0 = u.MultihomedAt(TimePoint::Origin());
  const int m50 = u.MultihomedAt(TimePoint::Origin() + Duration::Days(50));
  const int m100 = u.MultihomedAt(TimePoint::Origin() + Duration::Days(100));
  // Midpoint should fall near the average of the endpoints.
  EXPECT_NEAR(m50, (m0 + m100) / 2.0, 0.15 * m100);
}

TEST(Universe, BackupProviderAlwaysDiffersFromPrimary) {
  const auto u = GenerateUniverse(SmallConfig(), Duration::Days(60));
  int with_asn = 0, multihomed = 0;
  for (const auto& c : u.customers) {
    if (c.backup_provider >= 0) {
      EXPECT_NE(c.backup_provider, c.primary_provider);
      ++multihomed;
      with_asn += c.customer_asn != 0 ? 1 : 0;
    }
  }
  // Only a fraction of multihomed sites registered their own AS in 1996;
  // the rest announce provider-origin routes through both providers.
  ASSERT_GT(multihomed, 0);
  EXPECT_NEAR(static_cast<double>(with_asn) / multihomed,
              u.config.multihomed_own_asn_prob, 0.15);
}

TEST(Universe, BehaviouralFractionsRoughlyRespected) {
  TopologyConfig cfg = SmallConfig();
  cfg.num_providers = 40;  // more samples for the fractions
  const auto u = GenerateUniverse(cfg, Duration::Days(60));
  int stateless = 0, unjittered = 0;
  for (const auto& p : u.providers) {
    stateless += p.stateless_bgp ? 1 : 0;
    unjittered += p.unjittered_timer ? 1 : 0;
  }
  EXPECT_NEAR(stateless / 40.0, cfg.stateless_fraction, 0.25);
  EXPECT_NEAR(unjittered / 40.0, cfg.unjittered_fraction, 0.2);
}

TEST(Universe, ChurnMultipliersUncorrelatedWithSize) {
  // Figure 6's negative result requires churn character independent of
  // table share: check rank correlation is weak.
  TopologyConfig cfg = SmallConfig();
  cfg.num_providers = 30;
  const auto u = GenerateUniverse(cfg, Duration::Days(60));
  // Spearman-ish: correlation of weight rank vs multiplier rank.
  std::vector<double> weights, multipliers;
  for (const auto& p : u.providers) {
    weights.push_back(p.table_weight);
    multipliers.push_back(p.customer_flap_multiplier);
  }
  double mw = 0, mm = 0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    mw += weights[i];
    mm += multipliers[i];
  }
  mw /= weights.size();
  mm /= multipliers.size();
  double cov = 0, vw = 0, vm = 0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    cov += (weights[i] - mw) * (multipliers[i] - mm);
    vw += (weights[i] - mw) * (weights[i] - mw);
    vm += (multipliers[i] - mm) * (multipliers[i] - mm);
  }
  const double corr = cov / std::sqrt(vw * vm);
  EXPECT_LT(std::abs(corr), 0.5);
}

TEST(Universe, DeterministicForSameSeed) {
  const auto a = GenerateUniverse(SmallConfig(), Duration::Days(60));
  const auto b = GenerateUniverse(SmallConfig(), Duration::Days(60));
  ASSERT_EQ(a.customers.size(), b.customers.size());
  for (std::size_t i = 0; i < a.customers.size(); ++i) {
    EXPECT_EQ(a.customers[i].prefix, b.customers[i].prefix);
    EXPECT_EQ(a.customers[i].primary_provider,
              b.customers[i].primary_provider);
  }
}

TEST(Universe, DifferentSeedsDiffer) {
  auto cfg = SmallConfig();
  const auto a = GenerateUniverse(cfg, Duration::Days(60));
  cfg.seed = 6;
  const auto b = GenerateUniverse(cfg, Duration::Days(60));
  bool any_diff = false;
  for (std::size_t i = 0; i < std::min(a.customers.size(), b.customers.size());
       ++i) {
    if (!(a.customers[i].prefix == b.customers[i].prefix)) {
      any_diff = true;
      break;
    }
  }
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace iri::topology
