#include "bgp/session.h"

#include <gtest/gtest.h>

namespace iri::bgp {
namespace {

using Action = SessionFsm::Action;
using ActionType = SessionFsm::ActionType;

TimePoint T(double seconds) {
  return TimePoint::Origin() + Duration::Seconds(seconds);
}

SessionConfig Config(std::uint16_t hold = 90) {
  SessionConfig cfg;
  cfg.local_asn = 701;
  cfg.router_id = IPv4Address(1, 1, 1, 1);
  cfg.hold_time_s = hold;
  return cfg;
}

OpenMessage PeerOpen(std::uint16_t hold = 90) {
  OpenMessage open;
  open.asn = 1239;
  open.hold_time_s = hold;
  open.bgp_identifier = IPv4Address(2, 2, 2, 2);
  return open;
}

bool Has(const SessionFsm::Actions& acts, ActionType type) {
  for (const auto& a : acts) {
    if (a.type == type) return true;
  }
  return false;
}

// Drives a session to Established; returns it.
SessionFsm Established() {
  SessionFsm fsm(Config());
  SessionFsm::Actions acts;
  fsm.Start(T(0), acts);
  fsm.OnTransportUp(T(0), acts);
  fsm.OnMessage(T(0.1), PeerOpen(), acts);
  fsm.OnMessage(T(0.2), KeepAliveMessage{}, acts);
  EXPECT_EQ(fsm.state(), SessionState::kEstablished);
  return fsm;
}

TEST(SessionFsm, HappyPathHandshake) {
  SessionFsm fsm(Config());
  SessionFsm::Actions acts;

  EXPECT_EQ(fsm.state(), SessionState::kIdle);
  fsm.Start(T(0), acts);
  EXPECT_EQ(fsm.state(), SessionState::kConnect);

  fsm.OnTransportUp(T(0), acts);
  EXPECT_EQ(fsm.state(), SessionState::kOpenSent);
  EXPECT_TRUE(Has(acts, ActionType::kSendOpen));

  acts.clear();
  fsm.OnMessage(T(0.1), PeerOpen(), acts);
  EXPECT_EQ(fsm.state(), SessionState::kOpenConfirm);
  EXPECT_TRUE(Has(acts, ActionType::kSendKeepAlive));

  acts.clear();
  fsm.OnMessage(T(0.2), KeepAliveMessage{}, acts);
  EXPECT_EQ(fsm.state(), SessionState::kEstablished);
  EXPECT_TRUE(Has(acts, ActionType::kSessionUp));
}

TEST(SessionFsm, HoldTimeNegotiatesToMinimum) {
  SessionFsm fsm(Config(180));
  SessionFsm::Actions acts;
  fsm.Start(T(0), acts);
  fsm.OnTransportUp(T(0), acts);
  fsm.OnMessage(T(0.1), PeerOpen(30), acts);
  EXPECT_EQ(fsm.negotiated_hold_time_s(), 30);
}

TEST(SessionFsm, RejectsForbiddenHoldTimes) {
  for (std::uint16_t bad : {1, 2}) {
    SessionFsm fsm(Config());
    SessionFsm::Actions acts;
    fsm.Start(T(0), acts);
    fsm.OnTransportUp(T(0), acts);
    acts.clear();
    fsm.OnMessage(T(0.1), PeerOpen(bad), acts);
    EXPECT_TRUE(Has(acts, ActionType::kSendNotification));
    EXPECT_EQ(fsm.state(), SessionState::kConnect);
  }
}

TEST(SessionFsm, RejectsWrongVersion) {
  SessionFsm fsm(Config());
  SessionFsm::Actions acts;
  fsm.Start(T(0), acts);
  fsm.OnTransportUp(T(0), acts);
  OpenMessage open = PeerOpen();
  open.version = 3;
  acts.clear();
  fsm.OnMessage(T(0.1), open, acts);
  EXPECT_TRUE(Has(acts, ActionType::kSendNotification));
}

TEST(SessionFsm, PassiveOpenFromConnect) {
  // The peer's OPEN arrives while we are still in Connect (their retry won
  // the race): we must answer with our own OPEN and proceed.
  SessionFsm fsm(Config());
  SessionFsm::Actions acts;
  fsm.Start(T(0), acts);
  ASSERT_EQ(fsm.state(), SessionState::kConnect);
  fsm.OnMessage(T(1), PeerOpen(), acts);
  EXPECT_EQ(fsm.state(), SessionState::kOpenConfirm);
  EXPECT_TRUE(Has(acts, ActionType::kSendOpen));
  EXPECT_TRUE(Has(acts, ActionType::kSendKeepAlive));
}

TEST(SessionFsm, NonOpenInOpenSentIsFsmError) {
  SessionFsm fsm(Config());
  SessionFsm::Actions acts;
  fsm.Start(T(0), acts);
  fsm.OnTransportUp(T(0), acts);
  acts.clear();
  fsm.OnMessage(T(0.1), UpdateMessage{}, acts);
  EXPECT_TRUE(Has(acts, ActionType::kSendNotification));
  EXPECT_EQ(fsm.state(), SessionState::kConnect);
}

TEST(SessionFsm, UpdateRefreshesHoldTimer) {
  SessionFsm fsm = Established();
  SessionFsm::Actions acts;
  const TimePoint before = fsm.NextDeadline();
  fsm.OnMessage(T(50), UpdateMessage{}, acts);
  // Hold deadline moved forward (keepalive deadline may be earlier; check
  // that the session does NOT die at the old hold deadline).
  fsm.OnTimer(before, acts);
  EXPECT_EQ(fsm.state(), SessionState::kEstablished);
}

TEST(SessionFsm, HoldTimerExpiryTearsDown) {
  SessionFsm fsm = Established();
  SessionFsm::Actions acts;
  fsm.OnTimer(T(200), acts);  // negotiated hold is 90 s; 200 s of silence
  EXPECT_EQ(fsm.state(), SessionState::kConnect);
  EXPECT_TRUE(Has(acts, ActionType::kSendNotification));
  EXPECT_TRUE(Has(acts, ActionType::kSessionDown));
}

TEST(SessionFsm, KeepalivesEmittedOnSchedule) {
  SessionFsm fsm = Established();
  SessionFsm::Actions acts;
  int keepalives = 0;
  TimePoint now = T(1);
  for (int i = 0; i < 6; ++i) {
    now = fsm.NextDeadline();
    acts.clear();
    fsm.OnTimer(now, acts);
    // Feed the peer's keepalive back so the hold timer stays fresh.
    fsm.OnMessage(now, KeepAliveMessage{}, acts);
    for (const auto& a : acts) {
      if (a.type == ActionType::kSendKeepAlive) ++keepalives;
    }
    ASSERT_EQ(fsm.state(), SessionState::kEstablished);
  }
  EXPECT_GE(keepalives, 5);
  // Interval should be hold/3 = 30 s.
  EXPECT_LE(now, T(1 + 6 * 31));
}

TEST(SessionFsm, LateTimerStillFires) {
  // CPU-starved router: OnTimer called long after the deadline passed.
  SessionFsm fsm = Established();
  SessionFsm::Actions acts;
  fsm.OnTimer(T(10'000), acts);
  EXPECT_EQ(fsm.state(), SessionState::kConnect);
}

TEST(SessionFsm, NotificationInEstablishedDropsSession) {
  SessionFsm fsm = Established();
  SessionFsm::Actions acts;
  fsm.OnMessage(T(10), NotificationMessage{NotifyCode::kCease, 0}, acts);
  EXPECT_EQ(fsm.state(), SessionState::kConnect);
  EXPECT_TRUE(Has(acts, ActionType::kSessionDown));
}

TEST(SessionFsm, OpenInEstablishedIsFsmError) {
  SessionFsm fsm = Established();
  SessionFsm::Actions acts;
  fsm.OnMessage(T(10), PeerOpen(), acts);
  EXPECT_EQ(fsm.state(), SessionState::kConnect);
  EXPECT_TRUE(Has(acts, ActionType::kSessionDown));
}

TEST(SessionFsm, TransportDownFromEstablished) {
  SessionFsm fsm = Established();
  SessionFsm::Actions acts;
  fsm.OnTransportDown(T(10), acts);
  EXPECT_EQ(fsm.state(), SessionState::kConnect);
  EXPECT_TRUE(Has(acts, ActionType::kSessionDown));
}

TEST(SessionFsm, StopSendsCeaseAndGoesIdle) {
  SessionFsm fsm = Established();
  SessionFsm::Actions acts;
  fsm.Stop(T(10), acts);
  EXPECT_EQ(fsm.state(), SessionState::kIdle);
  EXPECT_TRUE(Has(acts, ActionType::kSendNotification));
  EXPECT_EQ(fsm.NextDeadline(), TimePoint::Max());
}

TEST(SessionFsm, IdleIgnoresMessages) {
  SessionFsm fsm(Config());
  SessionFsm::Actions acts;
  fsm.OnMessage(T(0), PeerOpen(), acts);
  EXPECT_TRUE(acts.empty());
  EXPECT_EQ(fsm.state(), SessionState::kIdle);
}

TEST(SessionFsm, SymmetricHandshakeBothSides) {
  // Two FSMs wired back-to-back must both reach Established.
  SessionFsm a(Config()), b(Config());
  SessionFsm::Actions a_out, b_out;
  a.Start(T(0), a_out);
  b.Start(T(0), b_out);
  a.OnTransportUp(T(0), a_out);
  b.OnTransportUp(T(0), b_out);

  // Exchange pending messages until quiescent (bounded rounds).
  for (int round = 0; round < 5; ++round) {
    SessionFsm::Actions a_next, b_next;
    for (const auto& act : a_out) {
      if (act.type == ActionType::kSendOpen) {
        OpenMessage open;
        open.asn = 701;
        open.hold_time_s = 90;
        b.OnMessage(T(round + 1), open, b_next);
      } else if (act.type == ActionType::kSendKeepAlive) {
        b.OnMessage(T(round + 1), KeepAliveMessage{}, b_next);
      }
    }
    for (const auto& act : b_out) {
      if (act.type == ActionType::kSendOpen) {
        OpenMessage open;
        open.asn = 1239;
        open.hold_time_s = 90;
        a.OnMessage(T(round + 1), open, a_next);
      } else if (act.type == ActionType::kSendKeepAlive) {
        a.OnMessage(T(round + 1), KeepAliveMessage{}, a_next);
      }
    }
    a_out = std::move(a_next);
    b_out = std::move(b_next);
  }
  EXPECT_EQ(a.state(), SessionState::kEstablished);
  EXPECT_EQ(b.state(), SessionState::kEstablished);
}

TEST(SessionFsm, ToStringCoversAllStates) {
  EXPECT_STREQ(ToString(SessionState::kIdle), "Idle");
  EXPECT_STREQ(ToString(SessionState::kConnect), "Connect");
  EXPECT_STREQ(ToString(SessionState::kOpenSent), "OpenSent");
  EXPECT_STREQ(ToString(SessionState::kOpenConfirm), "OpenConfirm");
  EXPECT_STREQ(ToString(SessionState::kEstablished), "Established");
}

}  // namespace
}  // namespace iri::bgp
