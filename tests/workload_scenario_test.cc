// Mechanism-level tests for the scenario driver: each instability source
// the paper names must leave its fingerprint in the monitored stream.
#include "workload/scenario.h"

#include <gtest/gtest.h>

#include "core/stats.h"

namespace iri::workload {
namespace {

ScenarioConfig BaseConfig() {
  ScenarioConfig cfg;
  cfg.topology.scale = 1.0 / 128;
  cfg.topology.num_providers = 8;
  cfg.topology.seed = 3;
  cfg.seed = 4;
  cfg.duration = Duration::Hours(26);
  return cfg;
}

// Collects everything and exposes helpers.
struct Collector {
  core::CategoryCounts counts;
  core::TimeBinner instability{Duration::Minutes(10)};
  core::DailyCategoryTally daily;

  void Attach(ExchangeScenario& scenario) {
    scenario.monitor().AddSink([this](const core::ClassifiedEvent& ev) {
      counts.Add(ev);
      daily.Add(ev);
      if (core::IsInstability(ev.category)) instability.Add(ev.event.time);
    });
  }
};

TEST(Scenario, BootstrapPopulatesVisibleTablePlusAggregates) {
  auto cfg = BaseConfig();
  cfg.duration = Duration::Minutes(10);
  ExchangeScenario scenario(cfg);
  scenario.Run();
  std::size_t blocks = 0;
  for (const auto& p : scenario.universe().providers) {
    blocks += p.aggregate_blocks.size();
  }
  const auto& rib = scenario.route_server().rib();
  // Visible customers (plus multihomed duplicates as extra paths) and the
  // aggregate blocks; aggregated components must NOT be in the table.
  EXPECT_GE(rib.NumPrefixes(),
            static_cast<std::size_t>(scenario.universe().VisiblePrefixes()));
  EXPECT_LE(rib.NumPrefixes(),
            static_cast<std::size_t>(scenario.universe().VisiblePrefixes()) +
                blocks);
}

TEST(Scenario, AggregatedComponentsNeverAnnounced) {
  auto cfg = BaseConfig();
  ExchangeScenario scenario(cfg);
  std::size_t aggregated_announcements = 0;
  std::unordered_set<Prefix> aggregated_prefixes;
  for (const auto& c : scenario.universe().customers) {
    if (c.aggregated) aggregated_prefixes.insert(c.prefix);
  }
  scenario.monitor().AddSink([&](const core::ClassifiedEvent& ev) {
    if (!ev.event.is_withdraw &&
        aggregated_prefixes.contains(ev.event.prefix)) {
      ++aggregated_announcements;
    }
  });
  scenario.Run();
  EXPECT_EQ(aggregated_announcements, 0u)
      << "export policy must hide aggregated components";
}

TEST(Scenario, WWDupTargetsAreWithdrawOnly) {
  // The signature WWDup shape: withdrawals arrive for prefixes the peer
  // never announced. Verify some aggregated prefix withdrawals reached the
  // monitor (stateless leak) while announcements did not.
  auto cfg = BaseConfig();
  ExchangeScenario scenario(cfg);
  std::unordered_set<Prefix> aggregated;
  for (const auto& c : scenario.universe().customers) {
    if (c.aggregated) aggregated.insert(c.prefix);
  }
  std::size_t aggregated_withdrawals = 0;
  scenario.monitor().AddSink([&](const core::ClassifiedEvent& ev) {
    if (ev.event.is_withdraw && aggregated.contains(ev.event.prefix)) {
      ++aggregated_withdrawals;
      EXPECT_EQ(ev.category, core::Category::kWWDup);
    }
  });
  scenario.Run();
  EXPECT_GT(aggregated_withdrawals, 0u);
}

TEST(Scenario, DiurnalCycleInInstability) {
  auto cfg = BaseConfig();
  cfg.duration = Duration::Days(8);  // a full week + bootstrap day
  ExchangeScenario scenario(cfg);
  Collector collector;
  collector.Attach(scenario);
  scenario.Run();

  // Compare weekday night (00-06) against weekday afternoon (12-24).
  const auto& bins = collector.instability.bins();
  double night = 0, day = 0;
  for (int d = 2; d < 7; ++d) {  // Mon..Fri of week 0
    for (int b = 0; b < 36; ++b) {
      night += static_cast<double>(bins[static_cast<std::size_t>(d * 144 + b)]);
    }
    for (int b = 72; b < 144; ++b) {
      day += static_cast<double>(bins[static_cast<std::size_t>(d * 144 + b)]);
    }
  }
  // Normalize per bin: afternoon band should be several times denser.
  EXPECT_GT(day / 72.0, 1.8 * (night / 36.0));
}

TEST(Scenario, WeekendQuieterThanWeekdays) {
  auto cfg = BaseConfig();
  cfg.duration = Duration::Days(9);
  cfg.saturday_spike_prob = 0.0;  // isolate the weekly cycle
  ExchangeScenario scenario(cfg);
  Collector collector;
  collector.Attach(scenario);
  scenario.Run();

  const auto& days = collector.daily.days();
  ASSERT_GE(days.size(), 9u);
  const double weekend =
      static_cast<double>(days[7].Instability() + days[8].Instability()) / 2;
  double weekday = 0;
  for (int d = 2; d <= 6; ++d) {
    weekday += static_cast<double>(days[static_cast<std::size_t>(d)].Instability());
  }
  weekday /= 5;
  EXPECT_LT(weekend, 0.85 * weekday);
}

TEST(Scenario, UpgradeIncidentRaisesInstabilityAndMultihoming) {
  auto cfg = BaseConfig();
  cfg.duration = Duration::Days(12);
  cfg.upgrade_enabled = true;
  cfg.upgrade_start_day = 5;
  cfg.upgrade_end_day = 7;
  ExchangeScenario scenario(cfg);
  Collector collector;
  collector.Attach(scenario);

  std::vector<std::size_t> multihomed_per_day;
  scenario.ScheduleDaily([&scenario, &multihomed_per_day](int) {
    std::size_t n = 0;
    scenario.route_server().rib().VisitPathCounts(
        [&n](const Prefix&, std::size_t paths) {
          if (paths > 1) ++n;
        });
    multihomed_per_day.push_back(n);
  });
  scenario.Run();

  const auto& days = collector.daily.days();
  ASSERT_GE(days.size(), 10u);
  const double incident =
      static_cast<double>(days[5].Instability() + days[6].Instability()) / 2;
  const double before =
      static_cast<double>(days[3].Instability() + days[4].Instability()) / 2;
  EXPECT_GT(incident, 1.5 * before);

  // Multihoming census spikes during the window and relaxes after.
  ASSERT_GE(multihomed_per_day.size(), 10u);
  EXPECT_GT(multihomed_per_day[6], multihomed_per_day[3]);
  EXPECT_LT(multihomed_per_day[9], multihomed_per_day[6]);
}

TEST(Scenario, PathologicalIncidentDwarfsBaseline) {
  auto with_patho = BaseConfig();
  with_patho.duration = Duration::Hours(30);
  with_patho.patho_enabled = true;
  ExchangeScenario scenario(with_patho);
  Collector collector;
  collector.Attach(scenario);
  scenario.Run();

  auto without = BaseConfig();
  without.duration = Duration::Hours(30);
  ExchangeScenario baseline_scenario(without);
  Collector baseline;
  baseline.Attach(baseline_scenario);
  baseline_scenario.Run();

  EXPECT_GT(collector.counts.Of(core::Category::kWWDup),
            3 * baseline.counts.Of(core::Category::kWWDup));
}

TEST(Scenario, MultihomingRampVisibleInRib) {
  auto cfg = BaseConfig();
  cfg.duration = Duration::Days(20);
  // Quiet the event machinery: only the ramp matters here.
  cfg.customer_flap_rate = 0;
  cfg.csu_episode_rate = 0;
  cfg.oscillation_episode_rate = 0;
  cfg.path_change_rate = 0;
  cfg.policy_fluctuation_rate = 0;
  cfg.internal_reset_episode_rate = 0;
  cfg.failover_rate = 0;
  cfg.maintenance_reset_prob = 0;
  ExchangeScenario scenario(cfg);

  std::vector<std::size_t> census;
  scenario.ScheduleDaily([&scenario, &census](int) {
    std::size_t n = 0;
    scenario.route_server().rib().VisitPathCounts(
        [&n](const Prefix&, std::size_t paths) {
          if (paths > 1) ++n;
        });
    census.push_back(n);
  });
  scenario.Run();
  ASSERT_GE(census.size(), 19u);
  EXPECT_GT(census.back(), census.front());
  // Expected multihomed counts track the universe schedule.
  const int expected_end = scenario.universe().MultihomedAt(
      TimePoint::Origin() + Duration::Days(19));
  EXPECT_NEAR(static_cast<double>(census.back()), expected_end,
              0.1 * expected_end + 3);
}

TEST(Scenario, TableSharesSumToOne) {
  auto cfg = BaseConfig();
  cfg.duration = Duration::Minutes(30);
  ExchangeScenario scenario(cfg);
  scenario.Run();
  double sum = 0;
  for (int p = 0; p < cfg.topology.num_providers; ++p) {
    sum += scenario.TableShare(p);
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Scenario, ExplicitUniverseInjection) {
  auto cfg = BaseConfig();
  cfg.duration = Duration::Minutes(10);
  auto universe =
      topology::GenerateUniverse(cfg.topology, cfg.duration);
  const auto providers = universe.providers.size();
  ExchangeScenario scenario(cfg, std::move(universe));
  scenario.Run();
  EXPECT_EQ(scenario.route_server().num_peers(), providers);
}

}  // namespace
}  // namespace iri::workload
