// Replay-differential test: the observability layer must be a pure function
// of the update stream. A live scenario run writes an MRT log while its
// monitor classifies and counts; replaying that log offline through a fresh
// ExchangeMonitor::Ingest must land every classifier bin and every
// "monitor."-prefixed instrument on identical values — the software analogue
// of the paper's claim that its offline analysis tools see exactly what the
// route-server taps saw.
#include <gtest/gtest.h>

#include <string>

#include "core/monitor.h"
#include "mrt/log.h"
#include "obs/metrics.h"
#include "workload/scenario.h"

namespace iri::workload {
namespace {

ScenarioConfig SmallConfig() {
  ScenarioConfig cfg;
  cfg.topology.scale = 1.0 / 256;
  cfg.topology.num_providers = 6;
  cfg.topology.seed = 2024;
  cfg.seed = 11;
  cfg.num_exchanges = 1;
  cfg.duration = Duration::Hours(3);
  return cfg;
}

TEST(ReplayDifferential, OfflineReplayReproducesLiveMonitorState) {
  ExchangeScenario scenario(SmallConfig());
  mrt::Writer writer;  // in-memory
  scenario.monitor().SetMrtWriter(&writer);
  scenario.Run();

  const auto& live_monitor = scenario.monitor();
  ASSERT_GT(live_monitor.messages_seen(), 0u) << "scenario produced no taps";
#if defined(IRI_TRACE_ENABLED) && IRI_TRACE_ENABLED
  // The same run also exercises the structured trace layer: session
  // establishment alone must have emitted fsm events.
  EXPECT_GT(scenario.trace().events(), 0u);
  EXPECT_NE(scenario.trace().buffer().find("\"ev\":\"fsm\""), std::string::npos);
#endif
  const std::string live_snapshot =
      scenario.metrics().SnapshotText(false, "monitor.");
  ASSERT_NE(live_snapshot.find("counter monitor.messages "), std::string::npos);

  // Offline: a fresh monitor + registry fed only by the MRT log.
  core::ExchangeMonitor replay_monitor;
  obs::Registry replay_metrics;
  replay_monitor.AttachMetrics(&replay_metrics);
  mrt::Reader reader(writer.buffer());
  const std::uint64_t replayed = replay_monitor.Replay(reader);

  EXPECT_EQ(reader.crc_failures(), 0u);
  EXPECT_EQ(replayed, live_monitor.messages_seen());
  EXPECT_EQ(replay_monitor.messages_seen(), live_monitor.messages_seen());
  EXPECT_EQ(replay_monitor.events_seen(), live_monitor.events_seen());

  // Classifier bins, bin by bin.
  const auto live_totals = live_monitor.classifier().totals();
  const auto replay_totals = replay_monitor.classifier().totals();
  for (std::size_t c = 0; c < core::kNumCategories; ++c) {
    EXPECT_EQ(replay_totals[c], live_totals[c])
        << "bin " << core::ToString(static_cast<core::Category>(c))
        << " diverged between live run and replay";
  }

  // Metrics snapshots: everything under "monitor." must match byte for
  // byte. ("mrt.records" sits outside the prefix precisely because the
  // offline path has no MRT writer.)
  EXPECT_EQ(replay_metrics.SnapshotText(false, "monitor."), live_snapshot);
}

TEST(ReplayDifferential, ReplayOfReplayIsAFixedPoint) {
  // Re-logging a replay and replaying it again must not drift: Ingest is
  // deterministic in its input stream.
  ExchangeScenario scenario(SmallConfig());
  mrt::Writer writer;
  scenario.monitor().SetMrtWriter(&writer);
  scenario.Run();

  core::ExchangeMonitor first;
  obs::Registry first_metrics;
  first.AttachMetrics(&first_metrics);
  mrt::Writer relog;
  first.SetMrtWriter(&relog);
  mrt::Reader reader(writer.buffer());
  first.Replay(reader);

  core::ExchangeMonitor second;
  obs::Registry second_metrics;
  second.AttachMetrics(&second_metrics);
  mrt::Reader reader2(relog.buffer());
  second.Replay(reader2);

  EXPECT_EQ(second.messages_seen(), first.messages_seen());
  EXPECT_EQ(second_metrics.SnapshotText(false, "monitor."),
            first_metrics.SnapshotText(false, "monitor."));
}

}  // namespace
}  // namespace iri::workload
