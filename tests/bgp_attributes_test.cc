#include "bgp/attributes.h"

#include <gtest/gtest.h>

namespace iri::bgp {
namespace {

PathAttributes RoundTrip(const PathAttributes& attrs) {
  ByteWriter w;
  EncodeAttributes(attrs, w);
  ByteReader r(w.data());
  PathAttributes decoded = DecodeAttributes(r, w.size());
  EXPECT_TRUE(r.ok());
  return decoded;
}

TEST(Attributes, MandatoryOnlyRoundTrip) {
  PathAttributes a;
  a.origin = Origin::kEgp;
  a.as_path = AsPath::Sequence({174});
  a.next_hop = IPv4Address(192, 41, 177, 1);
  EXPECT_EQ(RoundTrip(a), a);
}

TEST(Attributes, FullAttributeSetRoundTrip) {
  PathAttributes a;
  a.origin = Origin::kIncomplete;
  a.as_path = AsPath::Sequence({701, 701, 701, 1239});  // with prepending
  a.next_hop = IPv4Address(198, 32, 1, 99);
  a.med = 4090;
  a.local_pref = 200;
  a.atomic_aggregate = true;
  a.aggregator = Aggregator{701, IPv4Address(137, 39, 1, 1)};
  a.communities = {(701u << 16) | 120, (701u << 16) | 1};
  PathAttributes got = RoundTrip(a);
  // Codec sorts communities canonically.
  PathAttributes expect = a;
  std::sort(expect.communities.begin(), expect.communities.end());
  EXPECT_EQ(got, expect);
}

TEST(Attributes, AsSetSegmentRoundTrip) {
  PathAttributes a;
  a.as_path = AsPath::Sequence({701});
  AsPathSegment set_seg;
  set_seg.type = AsPathSegment::Type::kSet;
  set_seg.asns = {1239, 3561};
  a.as_path.segments().push_back(set_seg);
  a.next_hop = IPv4Address(1, 2, 3, 4);
  EXPECT_EQ(RoundTrip(a), a);
}

TEST(Attributes, EmptyAsPathRoundTrip) {
  PathAttributes a;  // locally originated: zero segments
  a.next_hop = IPv4Address(10, 0, 0, 1);
  EXPECT_EQ(RoundTrip(a), a);
  EXPECT_TRUE(a.as_path.empty());
}

TEST(Attributes, DecodeRejectsBadOrigin) {
  PathAttributes a;
  a.next_hop = IPv4Address(1, 2, 3, 4);
  ByteWriter w;
  EncodeAttributes(a, w);
  auto bytes = w.data();
  // ORIGIN is the first attribute: flags, type, len, value.
  ASSERT_EQ(bytes[1], 1);  // type == ORIGIN
  bytes[3] = 7;            // invalid origin value
  ByteReader r(bytes);
  DecodeAttributes(r, bytes.size());
  EXPECT_FALSE(r.ok());
}

TEST(Attributes, DecodeRejectsTruncatedCommunity) {
  // COMMUNITY length not a multiple of 4.
  ByteWriter w;
  w.U8(0xC0);  // optional transitive
  w.U8(8);     // COMMUNITY
  w.U8(3);     // bad length
  w.U8(1);
  w.U8(2);
  w.U8(3);
  ByteReader r(w.data());
  DecodeAttributes(r, w.size());
  EXPECT_FALSE(r.ok());
}

TEST(Attributes, DecodeSkipsUnknownOptional) {
  ByteWriter w;
  PathAttributes a;
  a.next_hop = IPv4Address(9, 9, 9, 9);
  EncodeAttributes(a, w);
  // Append an unknown optional attribute (type 200).
  w.U8(0x80);
  w.U8(200);
  w.U8(2);
  w.U16(0xBEEF);
  ByteReader r(w.data());
  PathAttributes decoded = DecodeAttributes(r, w.size());
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(decoded.next_hop, a.next_hop);
}

TEST(Attributes, ForwardingEquivalence) {
  PathAttributes a;
  a.as_path = AsPath::Sequence({701, 1239});
  a.next_hop = IPv4Address(1, 1, 1, 1);
  PathAttributes b = a;
  b.med = 99;            // non-forwarding change
  b.communities = {42};  // non-forwarding change
  EXPECT_TRUE(a.ForwardingEquivalent(b));
  EXPECT_FALSE(a == b);

  PathAttributes c = a;
  c.next_hop = IPv4Address(2, 2, 2, 2);
  EXPECT_FALSE(a.ForwardingEquivalent(c));

  PathAttributes d = a;
  d.as_path = AsPath::Sequence({701, 3561});
  EXPECT_FALSE(a.ForwardingEquivalent(d));
}

TEST(AsPath, PrependExtendsLeadingSequence) {
  AsPath p = AsPath::Sequence({1239});
  p.Prepend(701);
  EXPECT_EQ(p.ToString(), "701 1239");
  EXPECT_EQ(p.FirstAsn(), 701u);
  EXPECT_EQ(p.OriginAsn(), 1239u);
}

TEST(AsPath, PrependOntoEmptyCreatesSequence) {
  AsPath p;
  p.Prepend(701);
  EXPECT_EQ(p.ToString(), "701");
  EXPECT_EQ(p.DecisionLength(), 1u);
}

TEST(AsPath, PrependBeforeSetCreatesNewSegment) {
  AsPath p;
  AsPathSegment set_seg;
  set_seg.type = AsPathSegment::Type::kSet;
  set_seg.asns = {1, 2};
  p.segments().push_back(set_seg);
  p.Prepend(701);
  ASSERT_EQ(p.segments().size(), 2u);
  EXPECT_EQ(p.segments()[0].type, AsPathSegment::Type::kSequence);
}

TEST(AsPath, ContainsSearchesAllSegments) {
  AsPath p = AsPath::Sequence({701});
  AsPathSegment set_seg;
  set_seg.type = AsPathSegment::Type::kSet;
  set_seg.asns = {1239, 3561};
  p.segments().push_back(set_seg);
  EXPECT_TRUE(p.Contains(701));
  EXPECT_TRUE(p.Contains(3561));
  EXPECT_FALSE(p.Contains(64512));
}

TEST(AsPath, DecisionLengthCountsSetAsOne) {
  AsPath p = AsPath::Sequence({701, 1239});
  AsPathSegment set_seg;
  set_seg.type = AsPathSegment::Type::kSet;
  set_seg.asns = {1, 2, 3, 4};
  p.segments().push_back(set_seg);
  EXPECT_EQ(p.DecisionLength(), 3u);
}

TEST(AsPath, OriginAsnOfSetIsZero) {
  AsPath p;
  AsPathSegment set_seg;
  set_seg.type = AsPathSegment::Type::kSet;
  set_seg.asns = {1, 2};
  p.segments().push_back(set_seg);
  EXPECT_EQ(p.OriginAsn(), 0u);
}

TEST(AsPath, ToStringWithSet) {
  AsPath p = AsPath::Sequence({701});
  AsPathSegment set_seg;
  set_seg.type = AsPathSegment::Type::kSet;
  set_seg.asns = {2, 3};
  p.segments().push_back(set_seg);
  EXPECT_EQ(p.ToString(), "701 {2,3}");
}

TEST(Attributes, ToStringSmoke) {
  PathAttributes a;
  a.as_path = AsPath::Sequence({701});
  a.next_hop = IPv4Address(1, 2, 3, 4);
  a.local_pref = 150;
  a.communities = {(65000u << 16) | 2};
  const std::string s = a.ToString();
  EXPECT_NE(s.find("nh=1.2.3.4"), std::string::npos);
  EXPECT_NE(s.find("lp=150"), std::string::npos);
  EXPECT_NE(s.find("65000:2"), std::string::npos);
}

}  // namespace
}  // namespace iri::bgp
