#include "mrt/log.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace iri::mrt {
namespace {

Prefix P(const std::string& s) { return *Prefix::Parse(s); }

bgp::UpdateMessage SampleUpdate(int salt = 0) {
  bgp::UpdateMessage u;
  u.withdrawn = {P("192.42.113.0/24")};
  u.attributes.as_path = bgp::AsPath::Sequence({701, static_cast<bgp::Asn>(1000 + salt)});
  u.attributes.next_hop = IPv4Address(10, 0, 0, 1);
  u.nlri = {Prefix(IPv4Address((204u << 24) | (static_cast<std::uint32_t>(salt) << 8)), 24)};
  return u;
}

TEST(MrtLog, InMemoryRoundTrip) {
  Writer writer;
  for (int i = 0; i < 10; ++i) {
    writer.LogMessage(TimePoint::Origin() + Duration::Seconds(i), 3, 701, 7,
                      SampleUpdate(i));
  }
  EXPECT_EQ(writer.records_written(), 10u);

  Reader reader(writer.buffer());
  int count = 0;
  while (auto rec = reader.Next()) {
    EXPECT_EQ(rec->peer_id, 3u);
    EXPECT_EQ(rec->peer_asn, 701);
    EXPECT_EQ(rec->local_asn, 7);
    EXPECT_EQ(rec->timestamp,
              TimePoint::Origin() + Duration::Seconds(count));
    auto msg = rec->DecodeMessage();
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(std::get<bgp::UpdateMessage>(*msg), SampleUpdate(count));
    ++count;
  }
  EXPECT_EQ(count, 10);
  EXPECT_EQ(reader.crc_failures(), 0u);
  EXPECT_TRUE(reader.ok());
}

TEST(MrtLog, EmptyLog) {
  Writer writer;
  Reader reader(writer.buffer());
  EXPECT_FALSE(reader.Next().has_value());
  EXPECT_TRUE(reader.ok());
}

TEST(MrtLog, AllMessageTypesRoundTrip) {
  Writer writer;
  writer.LogMessage(TimePoint::Origin(), 0, 1, 7, bgp::KeepAliveMessage{});
  bgp::OpenMessage open;
  open.asn = 701;
  writer.LogMessage(TimePoint::Origin(), 0, 1, 7, open);
  writer.LogMessage(TimePoint::Origin(), 0, 1, 7,
                    bgp::NotificationMessage{bgp::NotifyCode::kCease, 0});
  Reader reader(writer.buffer());
  int n = 0;
  while (auto rec = reader.Next()) {
    EXPECT_TRUE(rec->DecodeMessage().has_value());
    ++n;
  }
  EXPECT_EQ(n, 3);
}

TEST(MrtLog, CorruptRecordSkippedAndCounted) {
  Writer writer;
  writer.LogMessage(TimePoint::Origin(), 1, 1, 7, SampleUpdate(1));
  writer.LogMessage(TimePoint::Origin(), 2, 1, 7, SampleUpdate(2));
  writer.LogMessage(TimePoint::Origin(), 3, 1, 7, SampleUpdate(3));

  auto bytes = writer.buffer();
  // Flip a payload byte in the middle record (after its 24-byte header).
  const std::size_t record_size = bytes.size() / 3;
  bytes[record_size + 30] ^= 0xFF;

  Reader reader(bytes);
  std::vector<std::uint32_t> peers;
  while (auto rec = reader.Next()) peers.push_back(rec->peer_id);
  EXPECT_EQ(peers, (std::vector<std::uint32_t>{1, 3}));
  EXPECT_EQ(reader.crc_failures(), 1u);
}

TEST(MrtLog, TruncatedTailEndsCleanly) {
  Writer writer;
  writer.LogMessage(TimePoint::Origin(), 1, 1, 7, SampleUpdate(1));
  writer.LogMessage(TimePoint::Origin(), 2, 1, 7, SampleUpdate(2));
  auto bytes = writer.buffer();
  bytes.resize(bytes.size() - 7);  // the collector died mid-write

  Reader reader(bytes);
  int n = 0;
  while (auto rec = reader.Next()) ++n;
  EXPECT_EQ(n, 1);
}

TEST(MrtLog, CorruptLengthFieldStopsRead) {
  Writer writer;
  writer.LogMessage(TimePoint::Origin(), 1, 1, 7, SampleUpdate(1));
  auto bytes = writer.buffer();
  bytes[20] = 0xFF;  // length field high byte: absurd payload size
  bytes[21] = 0xFF;
  Reader reader(bytes);
  EXPECT_FALSE(reader.Next().has_value());
  EXPECT_FALSE(reader.ok());
}

TEST(MrtLog, FileRoundTrip) {
  const std::string path = "/tmp/iri_mrt_test.log";
  {
    Writer writer(path);
    ASSERT_TRUE(writer.ok());
    for (int i = 0; i < 100; ++i) {
      writer.LogMessage(TimePoint::Origin() + Duration::Seconds(i),
                        static_cast<std::uint32_t>(i % 5), 701, 7,
                        SampleUpdate(i));
    }
  }
  Reader reader(path);
  ASSERT_TRUE(reader.ok());
  int n = 0;
  while (auto rec = reader.Next()) ++n;
  EXPECT_EQ(n, 100);
  std::filesystem::remove(path);
}

TEST(MrtLog, MissingFileReportsError) {
  Reader reader("/tmp/does_not_exist_iri.log");
  EXPECT_FALSE(reader.ok());
}

}  // namespace
}  // namespace iri::mrt
