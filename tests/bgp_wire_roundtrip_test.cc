// Fuzz-style property test over the BGP wire codec: a seeded random message
// generator drives update_packer packing, then for every packed message
// asserts encode → decode → re-encode is byte-identical and the decoded
// message equals the original attribute for attribute. 10,000 cases; the
// failing case's seed is printed so any counterexample replays exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <variant>
#include <vector>

#include "bgp/message.h"
#include "bgp/update_packer.h"
#include "netbase/rng.h"

namespace iri::bgp {
namespace {

constexpr std::uint64_t kBaseSeed = 0x1997'5160'C0DE;
constexpr int kCases = 10'000;

Prefix RandomPrefix(Rng& rng) {
  // Lengths biased toward the realistic /8../28 band with occasional /0
  // and /32 edge cases.
  std::uint8_t length;
  const std::uint64_t roll = rng.Below(20);
  if (roll == 0) {
    length = 0;
  } else if (roll == 1) {
    length = 32;
  } else {
    length = static_cast<std::uint8_t>(rng.Range(8, 28));
  }
  return Prefix(IPv4Address(static_cast<std::uint32_t>(rng.Next())), length);
}

AsPath RandomAsPath(Rng& rng) {
  AsPath path;
  const int segments = static_cast<int>(rng.Below(3));  // 0..2
  for (int s = 0; s < segments; ++s) {
    AsPathSegment seg;
    // SET segments appear on aggregated routes; keep them the minority.
    seg.type = rng.Bernoulli(0.2) ? AsPathSegment::Type::kSet
                                  : AsPathSegment::Type::kSequence;
    const int len = static_cast<int>(rng.Range(1, 6));
    for (int i = 0; i < len; ++i) {
      seg.asns.push_back(static_cast<Asn>(rng.Range(1, kMaxAsn)));
    }
    path.segments().push_back(std::move(seg));
  }
  return path;
}

PathAttributes RandomAttributes(Rng& rng) {
  PathAttributes attrs;
  attrs.origin = static_cast<Origin>(rng.Below(3));
  attrs.as_path = RandomAsPath(rng);
  attrs.next_hop = IPv4Address(static_cast<std::uint32_t>(rng.Next()));
  if (rng.Bernoulli(0.4)) {
    attrs.med = static_cast<std::uint32_t>(rng.Next());
  }
  if (rng.Bernoulli(0.3)) {
    attrs.local_pref = static_cast<std::uint32_t>(rng.Next());
  }
  attrs.atomic_aggregate = rng.Bernoulli(0.1);
  if (rng.Bernoulli(0.15)) {
    attrs.aggregator = Aggregator{
        static_cast<Asn>(rng.Range(1, kMaxAsn)),
        IPv4Address(static_cast<std::uint32_t>(rng.Next()))};
  }
  // The codec keeps communities sorted; generate them canonical (sorted,
  // deduplicated) so decoded == original is a fair equality.
  const int n_comms = static_cast<int>(rng.Below(4));
  for (int i = 0; i < n_comms; ++i) {
    attrs.communities.push_back(static_cast<Community>(rng.Next()));
  }
  std::sort(attrs.communities.begin(), attrs.communities.end());
  attrs.communities.erase(
      std::unique(attrs.communities.begin(), attrs.communities.end()),
      attrs.communities.end());
  return attrs;
}

// A random batch of route ops with duplicate-free prefixes per op kind —
// the shape OutboundQueue::Flush hands to PackUpdates.
std::vector<RouteOp> RandomOps(Rng& rng) {
  std::vector<RouteOp> ops;
  const int n = static_cast<int>(rng.Range(1, 40));
  // A few shared attribute sets so the packer's group-by-attributes path is
  // exercised (identical sets must pack into one UPDATE).
  std::vector<PathAttributes> palette;
  const int palette_size = static_cast<int>(rng.Range(1, 4));
  for (int i = 0; i < palette_size; ++i) palette.push_back(RandomAttributes(rng));
  for (int i = 0; i < n; ++i) {
    RouteOp op;
    op.prefix = RandomPrefix(rng);
    if (!rng.Bernoulli(0.4)) {  // 60% announcements
      op.attributes = palette[rng.Below(palette.size())];
    }
    ops.push_back(std::move(op));
  }
  return ops;
}

void CheckMessageRoundTrip(const Message& msg, std::uint64_t seed) {
  const std::vector<std::uint8_t> first = Encode(msg);
  ASSERT_LE(first.size(), kMaxMessageSize) << "seed=" << seed;
  const std::optional<Message> decoded = Decode(first);
  ASSERT_TRUE(decoded.has_value()) << "decode failed, seed=" << seed;
  EXPECT_EQ(*decoded, msg) << "decoded message differs, seed=" << seed;
  const std::vector<std::uint8_t> second = Encode(*decoded);
  EXPECT_EQ(first, second) << "re-encode not byte-identical, seed=" << seed;
}

TEST(BgpWireRoundTrip, TenThousandRandomUpdateBatches) {
  for (int c = 0; c < kCases; ++c) {
    const std::uint64_t seed = kBaseSeed + static_cast<std::uint64_t>(c);
    Rng rng(seed);
    const std::vector<RouteOp> ops = RandomOps(rng);
    const std::vector<UpdateMessage> packed = PackUpdates(ops);
    ASSERT_FALSE(packed.empty()) << "seed=" << seed;
    for (const UpdateMessage& update : packed) {
      ASSERT_NO_FATAL_FAILURE(CheckMessageRoundTrip(Message(update), seed));
      // Attribute-level equality through the codec, spelled out so a
      // failure names the divergent attribute set directly.
      const auto decoded = Decode(Encode(Message(update)));
      ASSERT_TRUE(decoded.has_value()) << "seed=" << seed;
      const auto* u = std::get_if<UpdateMessage>(&*decoded);
      ASSERT_NE(u, nullptr) << "seed=" << seed;
      EXPECT_EQ(u->withdrawn, update.withdrawn) << "seed=" << seed;
      EXPECT_EQ(u->nlri, update.nlri) << "seed=" << seed;
      if (update.HasAnnouncements()) {
        EXPECT_EQ(u->attributes, update.attributes) << "seed=" << seed;
      }
    }
  }
}

TEST(BgpWireRoundTrip, NonUpdateMessageTypes) {
  for (int c = 0; c < 200; ++c) {
    const std::uint64_t seed = kBaseSeed ^ static_cast<std::uint64_t>(c);
    Rng rng(seed);
    OpenMessage open;
    open.asn = static_cast<Asn>(rng.Range(1, kMaxAsn));
    open.hold_time_s = static_cast<std::uint16_t>(rng.Below(1 << 16));
    open.bgp_identifier = IPv4Address(static_cast<std::uint32_t>(rng.Next()));
    CheckMessageRoundTrip(Message(open), seed);

    NotificationMessage notify;
    notify.code = static_cast<NotifyCode>(rng.Range(1, 6));
    notify.subcode = static_cast<std::uint8_t>(rng.Below(16));
    CheckMessageRoundTrip(Message(notify), seed);

    CheckMessageRoundTrip(Message(KeepAliveMessage{}), seed);
  }
}

}  // namespace
}  // namespace iri::bgp
