#include "sim/forwarding.h"

#include <gtest/gtest.h>

#include "netbase/rng.h"

namespace iri::sim {
namespace {

Prefix P(const std::string& s) { return *Prefix::Parse(s); }
TimePoint T(double s) { return TimePoint::Origin() + Duration::Seconds(s); }

ForwardingEngine::Params CacheParams() {
  ForwardingEngine::Params p;
  p.architecture = ForwardingArchitecture::kRouteCache;
  p.cache_capacity = 4;
  return p;
}

TEST(ForwardingEngine, FirstPacketMissesThenHits) {
  ForwardingEngine fwd(CacheParams());
  fwd.OnRouteChange(P("10.0.0.0/8"), IPv4Address(1, 1, 1, 1), T(0));
  EXPECT_TRUE(fwd.Forward(IPv4Address(10, 1, 2, 3), T(1)));
  EXPECT_EQ(fwd.stats().misses, 1u);
  EXPECT_EQ(fwd.stats().fast_path, 0u);
  EXPECT_TRUE(fwd.Forward(IPv4Address(10, 1, 2, 9), T(2)));  // same /24
  EXPECT_EQ(fwd.stats().fast_path, 1u);
  EXPECT_EQ(fwd.stats().misses, 1u);
}

TEST(ForwardingEngine, DifferentSlash24sAreSeparateEntries) {
  ForwardingEngine fwd(CacheParams());
  fwd.OnRouteChange(P("10.0.0.0/8"), IPv4Address(1, 1, 1, 1), T(0));
  fwd.Forward(IPv4Address(10, 1, 2, 3), T(1));
  fwd.Forward(IPv4Address(10, 1, 3, 3), T(2));
  EXPECT_EQ(fwd.stats().misses, 2u);
  EXPECT_EQ(fwd.cache_size(), 2u);
}

TEST(ForwardingEngine, NoRouteDrops) {
  ForwardingEngine fwd(CacheParams());
  EXPECT_FALSE(fwd.Forward(IPv4Address(10, 1, 2, 3), T(1)));
  EXPECT_EQ(fwd.stats().no_route, 1u);
}

TEST(ForwardingEngine, LruEvictionAtCapacity) {
  ForwardingEngine fwd(CacheParams());  // capacity 4
  fwd.OnRouteChange(P("10.0.0.0/8"), IPv4Address(1, 1, 1, 1), T(0));
  for (std::uint8_t i = 0; i < 5; ++i) {
    fwd.Forward(IPv4Address(10, 0, i, 1), T(1 + i));
  }
  EXPECT_EQ(fwd.cache_size(), 4u);
  // The first /24 was evicted: forwarding to it misses again.
  const auto misses_before = fwd.stats().misses;
  fwd.Forward(IPv4Address(10, 0, 0, 2), T(10));
  EXPECT_EQ(fwd.stats().misses, misses_before + 1);
}

TEST(ForwardingEngine, LruRefreshOnHit) {
  ForwardingEngine fwd(CacheParams());  // capacity 4
  fwd.OnRouteChange(P("10.0.0.0/8"), IPv4Address(1, 1, 1, 1), T(0));
  for (std::uint8_t i = 0; i < 4; ++i) {
    fwd.Forward(IPv4Address(10, 0, i, 1), T(1 + i));
  }
  // Touch the oldest entry, then insert a new one: the second-oldest must
  // be the victim.
  fwd.Forward(IPv4Address(10, 0, 0, 9), T(5));   // refresh /24 #0
  fwd.Forward(IPv4Address(10, 0, 9, 1), T(6));   // evicts /24 #1
  const auto misses_before = fwd.stats().misses;
  fwd.Forward(IPv4Address(10, 0, 0, 7), T(7));   // still cached
  EXPECT_EQ(fwd.stats().misses, misses_before);
  fwd.Forward(IPv4Address(10, 0, 1, 7), T(8));   // was evicted
  EXPECT_EQ(fwd.stats().misses, misses_before + 1);
}

TEST(ForwardingEngine, RouteChangeInvalidatesCoveredEntries) {
  ForwardingEngine fwd(CacheParams());
  fwd.OnRouteChange(P("10.0.0.0/8"), IPv4Address(1, 1, 1, 1), T(0));
  fwd.Forward(IPv4Address(10, 0, 0, 1), T(1));
  fwd.Forward(IPv4Address(10, 0, 1, 1), T(2));
  fwd.Forward(IPv4Address(11, 0, 0, 1), T(3));  // no route -> not cached
  fwd.OnRouteChange(P("11.0.0.0/8"), IPv4Address(2, 2, 2, 2), T(4));
  ASSERT_EQ(fwd.cache_size(), 2u);

  // An update inside 10/8 purges both cached /24s under it.
  fwd.OnRouteChange(P("10.0.0.0/16"), IPv4Address(3, 3, 3, 3), T(5));
  EXPECT_EQ(fwd.cache_size(), 0u);
  EXPECT_EQ(fwd.stats().invalidations, 2u);

  // Next packet re-resolves through the NEW more-specific route.
  fwd.Forward(IPv4Address(10, 0, 0, 1), T(6));
  EXPECT_EQ(fwd.stats().misses, 4u);
}

TEST(ForwardingEngine, MoreSpecificChangeInvalidatesCoveringEntry) {
  ForwardingEngine fwd(CacheParams());
  fwd.OnRouteChange(P("10.0.0.0/8"), IPv4Address(1, 1, 1, 1), T(0));
  fwd.Forward(IPv4Address(10, 7, 7, 7), T(1));
  ASSERT_EQ(fwd.cache_size(), 1u);
  // A /32 inside the cached /24 shadows part of it: must invalidate.
  fwd.OnRouteChange(P("10.7.7.7/32"), IPv4Address(9, 9, 9, 9), T(2));
  EXPECT_EQ(fwd.cache_size(), 0u);
}

TEST(ForwardingEngine, WithdrawalInvalidatesAndRemovesRoute) {
  ForwardingEngine fwd(CacheParams());
  fwd.OnRouteChange(P("10.0.0.0/8"), IPv4Address(1, 1, 1, 1), T(0));
  fwd.Forward(IPv4Address(10, 0, 0, 1), T(1));
  fwd.OnRouteWithdrawn(P("10.0.0.0/8"), T(2));
  EXPECT_EQ(fwd.cache_size(), 0u);
  EXPECT_FALSE(fwd.Forward(IPv4Address(10, 0, 0, 1), T(3)));
  EXPECT_EQ(fwd.stats().no_route, 1u);
}

TEST(ForwardingEngine, CpuQueueOverflowDropsMisses) {
  ForwardingEngine::Params params = CacheParams();
  params.cache_capacity = 100000;
  params.slow_path_cost = Duration::Millis(5);
  params.cpu_queue_limit = Duration::Millis(20);
  ForwardingEngine fwd(params);
  fwd.OnRouteChange(P("10.0.0.0/8"), IPv4Address(1, 1, 1, 1), T(0));

  // A burst of distinct-destination packets at one instant: the first few
  // misses queue (4 * 5 ms fills the 20 ms bound), the rest drop.
  int delivered = 0, dropped = 0;
  for (std::uint32_t i = 0; i < 64; ++i) {
    if (fwd.Forward(IPv4Address((10u << 24) | (i << 8) | 1), T(1))) {
      ++delivered;
    } else {
      ++dropped;
    }
  }
  EXPECT_GT(dropped, 0);
  EXPECT_GT(delivered, 0);
  EXPECT_EQ(fwd.stats().drops, static_cast<std::uint64_t>(dropped));
  // Once the CPU drains, misses are accepted again.
  EXPECT_TRUE(fwd.Forward(IPv4Address(10, 200, 0, 1), T(10)));
}

TEST(ForwardingEngine, FullTableArchitectureImmuneToChurn) {
  ForwardingEngine::Params params;
  params.architecture = ForwardingArchitecture::kFullTable;
  ForwardingEngine fwd(params);
  fwd.OnRouteChange(P("10.0.0.0/8"), IPv4Address(1, 1, 1, 1), T(0));

  // Interleave heavy route churn with forwarding: zero misses, zero drops.
  for (int i = 0; i < 1000; ++i) {
    fwd.OnRouteChange(P("10.55.0.0/16"),
                      IPv4Address(1, 1, 1, static_cast<std::uint8_t>(i)),
                      T(i * 0.001));
    EXPECT_TRUE(fwd.Forward(IPv4Address(10, 55, 1, 1), T(i * 0.001)));
  }
  EXPECT_EQ(fwd.stats().misses, 0u);
  EXPECT_EQ(fwd.stats().drops, 0u);
  EXPECT_EQ(fwd.stats().fast_path, 1000u);
}

// Property: under random traffic with a stable FIB, the engine never drops
// (the CPU keeps up with a normal working set) and the cache obeys its
// capacity bound.
class ForwardingFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ForwardingFuzz, StableFibNeverDropsWithinBounds) {
  Rng rng(GetParam());
  ForwardingEngine::Params params = CacheParams();
  params.cache_capacity = 256;
  ForwardingEngine fwd(params);
  for (std::uint32_t i = 0; i < 64; ++i) {
    fwd.OnRouteChange(Prefix(IPv4Address((10u << 24) | (i << 16)), 16),
                      IPv4Address(1, 1, 1, 1), T(0));
  }
  TimePoint now = T(1);
  for (int i = 0; i < 20000; ++i) {
    now += Duration::Micros(100);  // 10k packets/s
    const IPv4Address dst((10u << 24) |
                          (static_cast<std::uint32_t>(rng.Below(64)) << 16) |
                          (static_cast<std::uint32_t>(rng.Below(128)) << 8) |
                          1u);
    EXPECT_TRUE(fwd.Forward(dst, now));
    EXPECT_LE(fwd.cache_size(), params.cache_capacity);
  }
  EXPECT_EQ(fwd.stats().drops, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ForwardingFuzz, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace iri::sim
