// Cross-validation of the online periodicity detector (obs/health.h) against
// the offline spectral estimator (analysis/spectrum.h), in the spirit of the
// paper's own two-estimator validation of Figure 5: "These two approaches
// differ in their estimation methods, and provide a mechanism for validation
// of results."
//
// The unjittered fleet's fixed-phase flush timers put 30 s / 60 s lines into
// the collector's update-rate series; both the streaming Goertzel score and
// the post-hoc correlogram must find them. With every timer jittered (the
// recommended fix), the online detector must stay below its alert threshold.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/spectrum.h"
#include "workload/scenario.h"

namespace iri {
namespace {

constexpr double kFreqA = 1.0 / 3.0;  // 30 s at the 10 s series tick
constexpr double kFreqB = 1.0 / 6.0;  // 60 s
constexpr double kFreqTolerance = 0.02;

// Per-tick update counts, recovered from the series JSONL the flush wrote —
// the offline method deliberately reads the same stream an operator would.
std::vector<double> UpdateWindows(const std::string& jsonl) {
  std::vector<double> out;
  std::istringstream in(jsonl);
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("\"series\":\"monitor.updates\"") == std::string::npos) {
      continue;
    }
    const auto pos = line.find("\"window\":");
    if (pos == std::string::npos) continue;
    out.push_back(std::strtod(line.c_str() + pos + 9, nullptr));
  }
  return out;
}

struct RunResult {
  std::int64_t ppm_a = 0;
  std::int64_t ppm_b = 0;
  double threshold_ppm = 0;
  std::vector<double> windows;
};

RunResult RunScenario(bool jittered) {
  workload::ScenarioConfig cfg;
  cfg.topology.scale = 1.0 / 256;
  cfg.topology.num_providers = 8;
  cfg.topology.seed = 1997;
  // Make the fleet-wide phase lock maximal: every provider on the
  // fixed-phase 30 s timer (the jittered run overrides this per router).
  cfg.topology.unjittered_fraction = 1.0;
  cfg.seed = 11;
  cfg.duration = Duration::Hours(4);
  // Default per-day rates leave the 10 s series nearly silent at this
  // scale; boost instability so the flush timers carry sustained traffic
  // (both runs get the same boost — only the timer discipline differs).
  cfg.customer_flap_rate = 25;
  cfg.path_change_rate = 25;
  cfg.csu_episode_rate = 5;
  cfg.internal_reset_episode_rate = 48;
  cfg.force_all_jittered = jittered;
  workload::ExchangeScenario scenario(cfg);
  scenario.Run();
  RunResult r;
  const obs::HealthMonitor* health = scenario.health();
  r.ppm_a = health->periodicity_ppm_a();
  r.ppm_b = health->periodicity_ppm_b();
  r.threshold_ppm = cfg.health.periodicity_threshold * 1e6;
  r.windows = UpdateWindows(scenario.series().buffer());
  return r;
}

bool HasPeakNear(const std::vector<analysis::SpectrumPoint>& peaks,
                 double freq) {
  for (const auto& p : peaks) {
    if (std::abs(p.frequency - freq) <= kFreqTolerance) return true;
  }
  return false;
}

TEST(OnlineOfflineCrossCheck, UnjitteredTimersFlagInBothDomains) {
  const RunResult r = RunScenario(/*jittered=*/false);
  ASSERT_GE(r.windows.size(), 256u);

  // Online: at least one watched band crosses the alert threshold.
  const std::int64_t best = std::max(r.ppm_a, r.ppm_b);
  EXPECT_GE(best, static_cast<std::int64_t>(r.threshold_ppm))
      << "online Goertzel missed the timer lines (a=" << r.ppm_a
      << "ppm, b=" << r.ppm_b << "ppm)";

  // Offline: the correlogram of the very same series peaks at a watched
  // frequency too.
  const auto spectrum =
      analysis::CorrelogramSpectrum(r.windows, /*max_lag=*/120);
  const auto peaks = analysis::FindPeaks(spectrum, /*max_peaks=*/5);
  EXPECT_TRUE(HasPeakNear(peaks, kFreqA) || HasPeakNear(peaks, kFreqB))
      << "offline correlogram found no 30 s / 60 s line among its top peaks";
}

TEST(OnlineOfflineCrossCheck, JitteredTimersStayUnderTheAlertBar) {
  const RunResult r = RunScenario(/*jittered=*/true);
  ASSERT_GE(r.windows.size(), 256u);
  EXPECT_LT(r.ppm_a, static_cast<std::int64_t>(r.threshold_ppm))
      << "jittered fleet still scored band A at alert level";
  EXPECT_LT(r.ppm_b, static_cast<std::int64_t>(r.threshold_ppm))
      << "jittered fleet still scored band B at alert level";
}

}  // namespace
}  // namespace iri
