#include "analysis/series.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace iri::analysis {
namespace {

TEST(Series, MeanAndVariance) {
  const Series x = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Mean(x), 3.0);
  EXPECT_DOUBLE_EQ(Variance(x), 2.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({}), 0.0);
}

TEST(Series, FitLineRecoversExactLine) {
  Series x;
  for (int t = 0; t < 50; ++t) x.push_back(3.5 + 0.25 * t);
  const LinearFit fit = FitLine(x);
  EXPECT_NEAR(fit.intercept, 3.5, 1e-9);
  EXPECT_NEAR(fit.slope, 0.25, 1e-9);
}

TEST(Series, FitLineDegenerateCases) {
  EXPECT_DOUBLE_EQ(FitLine({}).slope, 0.0);
  const LinearFit one = FitLine({7.0});
  EXPECT_DOUBLE_EQ(one.intercept, 7.0);
  EXPECT_DOUBLE_EQ(one.slope, 0.0);
}

TEST(Series, DetrendRemovesLinearComponent) {
  Series x;
  for (int t = 0; t < 100; ++t) {
    x.push_back(10.0 + 0.5 * t + std::sin(0.3 * t));
  }
  Detrend(x);
  EXPECT_NEAR(Mean(x), 0.0, 1e-9);
  const LinearFit residual = FitLine(x);
  EXPECT_NEAR(residual.slope, 0.0, 1e-9);
}

TEST(Series, LogTransformGuardsZeros) {
  const Series x = {0.0, 1.0, std::exp(1.0)};
  const Series logs = LogTransform(x);
  EXPECT_DOUBLE_EQ(logs[0], std::log(0.5));  // floored, not -inf
  EXPECT_DOUBLE_EQ(logs[1], 0.0);
  EXPECT_NEAR(logs[2], 1.0, 1e-12);
}

TEST(Series, DetrendedLogHandlesExponentialGrowth) {
  // x_t = 100 * e^{0.01 t}: log-linear; residual must be ~0 everywhere.
  Series x;
  for (int t = 0; t < 200; ++t) x.push_back(100.0 * std::exp(0.01 * t));
  const Series r = DetrendedLog(x);
  for (double v : r) EXPECT_NEAR(v, 0.0, 1e-9);
}

TEST(Series, AutocovarianceLagZeroIsVariance) {
  Series x = {4, 8, 15, 16, 23, 42};
  const Series c = Autocovariance(x, 3);
  EXPECT_NEAR(c[0], Variance(x), 1e-9);
}

TEST(Series, AutocorrelationOfPureCosine) {
  // r_k of cos(w t) ~ cos(w k) for long series.
  const double w = 2.0 * std::numbers::pi / 24.0;  // 24-sample period
  Series x;
  for (int t = 0; t < 24 * 50; ++t) x.push_back(std::cos(w * t));
  const Series r = Autocorrelation(x, 48);
  EXPECT_NEAR(r[0], 1.0, 1e-9);
  EXPECT_NEAR(r[24], 1.0, 0.05);   // full period: back in phase
  EXPECT_NEAR(r[12], -1.0, 0.05);  // half period: anti-phase
}

TEST(Series, AutocorrelationOfWhiteNoiseNearZero) {
  Series x;
  std::uint64_t state = 12345;
  for (int t = 0; t < 5000; ++t) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    x.push_back(static_cast<double>(state >> 11) / (1ULL << 53));
  }
  const Series r = Autocorrelation(x, 20);
  for (std::size_t k = 1; k <= 20; ++k) {
    EXPECT_LT(std::abs(r[k]), 0.08) << "lag " << k;
  }
}

TEST(Series, AutocovarianceEmptyAndShort) {
  const Series c = Autocovariance({}, 5);
  ASSERT_EQ(c.size(), 6u);
  for (double v : c) EXPECT_DOUBLE_EQ(v, 0.0);
  // Lags past the series length stay zero.
  const Series c2 = Autocovariance({1.0, 2.0}, 5);
  EXPECT_DOUBLE_EQ(c2[3], 0.0);
}

}  // namespace
}  // namespace iri::analysis
