#include "bgp/update_packer.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace iri::bgp {
namespace {

Prefix P(const std::string& s) { return *Prefix::Parse(s); }

PathAttributes Attrs(std::vector<Asn> path) {
  PathAttributes a;
  a.as_path = AsPath::Sequence(std::move(path));
  a.next_hop = IPv4Address(10, 0, 0, 1);
  return a;
}

TimePoint T(double seconds) {
  return TimePoint::Origin() + Duration::Seconds(seconds);
}

TEST(PackUpdates, GroupsAnnouncementsByAttributes) {
  std::vector<RouteOp> ops = {
      {P("10.0.0.0/8"), Attrs({701})},
      {P("11.0.0.0/8"), Attrs({701})},
      {P("12.0.0.0/8"), Attrs({1239})},
  };
  auto msgs = PackUpdates(ops);
  ASSERT_EQ(msgs.size(), 2u);
  EXPECT_EQ(msgs[0].nlri.size(), 2u);
  EXPECT_EQ(msgs[1].nlri.size(), 1u);
}

TEST(PackUpdates, WithdrawalsPackedTogetherAndFirst) {
  std::vector<RouteOp> ops = {
      {P("10.0.0.0/8"), Attrs({701})},
      {P("11.0.0.0/8"), std::nullopt},
      {P("12.0.0.0/8"), std::nullopt},
  };
  auto msgs = PackUpdates(ops);
  ASSERT_EQ(msgs.size(), 2u);
  EXPECT_EQ(msgs[0].withdrawn.size(), 2u);
  EXPECT_TRUE(msgs[0].nlri.empty());
  EXPECT_EQ(msgs[1].nlri.size(), 1u);
}

TEST(PackUpdates, SplitsBelowMaxMessageSize) {
  std::vector<RouteOp> ops;
  for (std::uint32_t i = 0; i < 3000; ++i) {
    ops.push_back({Prefix(IPv4Address((10u << 24) | (i << 8)), 24),
                   std::nullopt});
  }
  auto msgs = PackUpdates(ops);
  EXPECT_GT(msgs.size(), 1u);
  std::size_t total = 0;
  for (const auto& m : msgs) {
    EXPECT_LE(Encode(m).size(), kMaxMessageSize);
    total += m.withdrawn.size();
  }
  EXPECT_EQ(total, 3000u);
}

TEST(PackUpdates, LargeAnnouncementBatchSplits) {
  std::vector<RouteOp> ops;
  for (std::uint32_t i = 0; i < 2000; ++i) {
    ops.push_back({Prefix(IPv4Address((10u << 24) | (i << 8)), 24),
                   Attrs({701, 1239})});
  }
  auto msgs = PackUpdates(ops);
  EXPECT_GT(msgs.size(), 1u);
  std::size_t total = 0;
  for (const auto& m : msgs) {
    EXPECT_LE(Encode(m).size(), kMaxMessageSize);
    total += m.nlri.size();
  }
  EXPECT_EQ(total, 2000u);
}

TEST(PackUpdates, EmptyInputYieldsNothing) {
  EXPECT_TRUE(PackUpdates({}).empty());
}

TEST(OutboundQueue, LatestWinsPerPrefix) {
  OutboundQueue q({}, 1);
  q.Enqueue(T(1), {P("10.0.0.0/8"), Attrs({701})});
  q.Enqueue(T(2), {P("10.0.0.0/8"), std::nullopt});
  q.Enqueue(T(3), {P("10.0.0.0/8"), Attrs({1239})});
  auto ops = q.Flush(T(100));
  ASSERT_EQ(ops.size(), 1u);
  ASSERT_TRUE(ops[0].attributes.has_value());
  EXPECT_EQ(ops[0].attributes->as_path.ToString(), "1239");
}

TEST(OutboundQueue, PreservesFirstEnqueueOrder) {
  OutboundQueue q({}, 1);
  q.Enqueue(T(1), {P("12.0.0.0/8"), Attrs({1})});
  q.Enqueue(T(1), {P("10.0.0.0/8"), Attrs({2})});
  q.Enqueue(T(1), {P("11.0.0.0/8"), Attrs({3})});
  q.Enqueue(T(2), {P("12.0.0.0/8"), Attrs({4})});  // replaces, keeps slot 0
  auto ops = q.Flush(T(100));
  ASSERT_EQ(ops.size(), 3u);
  EXPECT_EQ(ops[0].prefix, P("12.0.0.0/8"));
  EXPECT_EQ(ops[1].prefix, P("10.0.0.0/8"));
  EXPECT_EQ(ops[2].prefix, P("11.0.0.0/8"));
}

TEST(OutboundQueue, FlushBeforeDeadlineReturnsNothing) {
  PackerConfig cfg;
  cfg.interval = Duration::Seconds(30);
  OutboundQueue q(cfg, 1);
  q.Enqueue(T(1), {P("10.0.0.0/8"), Attrs({701})});
  EXPECT_TRUE(q.Flush(T(2)).empty());
  EXPECT_EQ(q.pending_ops(), 1u);
  EXPECT_FALSE(q.Flush(T(31)).empty());
  EXPECT_TRUE(q.empty());
}

TEST(OutboundQueue, UnjitteredFlushesOnFixedPhase) {
  PackerConfig cfg;
  cfg.interval = Duration::Seconds(30);
  cfg.discipline = TimerDiscipline::kUnjittered;
  // Two queues with different seeds and different enqueue times must still
  // share the same flush phase — the self-synchronization substrate.
  OutboundQueue q1(cfg, 1), q2(cfg, 999);
  q1.Enqueue(T(3), {P("10.0.0.0/8"), Attrs({701})});
  q2.Enqueue(T(17.5), {P("11.0.0.0/8"), Attrs({9})});
  EXPECT_EQ(q1.NextFlush(), T(30));
  EXPECT_EQ(q2.NextFlush(), T(30));

  // An enqueue exactly on the boundary goes to the *next* boundary.
  OutboundQueue q3(cfg, 5);
  q3.Enqueue(T(30), {P("12.0.0.0/8"), Attrs({9})});
  EXPECT_EQ(q3.NextFlush(), T(60));
}

TEST(OutboundQueue, JitteredSpreadsDeadlines) {
  PackerConfig cfg;
  cfg.interval = Duration::Seconds(30);
  cfg.discipline = TimerDiscipline::kJittered;
  cfg.jitter = 0.25;
  std::vector<TimePoint> deadlines;
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    OutboundQueue q(cfg, seed);
    q.Enqueue(T(0), {P("10.0.0.0/8"), Attrs({701})});
    deadlines.push_back(q.NextFlush());
    // All within interval*(1±jitter).
    EXPECT_GE(deadlines.back(), T(30 * 0.75));
    EXPECT_LE(deadlines.back(), T(30 * 1.25));
  }
  // Not all identical.
  const bool all_same = std::all_of(
      deadlines.begin(), deadlines.end(),
      [&deadlines](TimePoint t) { return t == deadlines.front(); });
  EXPECT_FALSE(all_same);
}

TEST(OutboundQueue, DeadlineRearmsAfterFlush) {
  PackerConfig cfg;
  cfg.interval = Duration::Seconds(30);
  cfg.discipline = TimerDiscipline::kUnjittered;
  OutboundQueue q(cfg, 1);
  q.Enqueue(T(3), {P("10.0.0.0/8"), Attrs({701})});
  (void)q.Flush(T(30));
  EXPECT_EQ(q.NextFlush(), TimePoint::Max());
  q.Enqueue(T(42), {P("10.0.0.0/8"), std::nullopt});
  EXPECT_EQ(q.NextFlush(), T(60));
}

// The paper's A1-A2-A1 sequence inside one flush window: the queue emits
// the net A1 — which a stateless router then sends as a duplicate (AADup).
TEST(OutboundQueue, OscillationWithinWindowCoalescesToFinalState) {
  PackerConfig cfg;
  cfg.interval = Duration::Seconds(30);
  cfg.discipline = TimerDiscipline::kUnjittered;
  OutboundQueue q(cfg, 1);
  const auto a1 = Attrs({701, 9});
  const auto a2 = Attrs({701, 1239, 9});
  q.Enqueue(T(1), {P("10.0.0.0/8"), a1});
  q.Enqueue(T(5), {P("10.0.0.0/8"), a2});
  q.Enqueue(T(9), {P("10.0.0.0/8"), a1});
  auto ops = q.Flush(T(30));
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(*ops[0].attributes, a1);
}

// W-A-W within one window nets to a withdrawal (WWDup engine when the
// route was never announced to the peer).
TEST(OutboundQueue, WithdrawAnnounceWithdrawNetsToWithdraw) {
  PackerConfig cfg;
  cfg.discipline = TimerDiscipline::kUnjittered;
  OutboundQueue q(cfg, 1);
  q.Enqueue(T(1), {P("10.0.0.0/8"), std::nullopt});
  q.Enqueue(T(5), {P("10.0.0.0/8"), Attrs({701})});
  q.Enqueue(T(9), {P("10.0.0.0/8"), std::nullopt});
  auto ops = q.Flush(T(30));
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_TRUE(ops[0].IsWithdraw());
}

// The probed dedup index is cleared on every flush: a prefix re-enqueued in
// the next window must get a fresh order slot reflecting the new window's
// enqueue sequence, not its position in the previous one.
TEST(OutboundQueue, IndexResetsAcrossFlushWindows) {
  PackerConfig cfg;
  cfg.discipline = TimerDiscipline::kUnjittered;
  OutboundQueue q(cfg, 1);
  q.Enqueue(T(1), {P("10.0.0.0/8"), Attrs({1})});
  q.Enqueue(T(2), {P("11.0.0.0/8"), Attrs({2})});
  (void)q.Flush(T(30));
  // Second window: reversed enqueue order, plus an interleaved withdraw.
  q.Enqueue(T(31), {P("11.0.0.0/8"), std::nullopt});
  q.Enqueue(T(32), {P("10.0.0.0/8"), Attrs({3})});
  q.Enqueue(T(33), {P("11.0.0.0/8"), Attrs({4})});
  auto ops = q.Flush(T(60));
  ASSERT_EQ(ops.size(), 2u);
  EXPECT_EQ(ops[0].prefix, P("11.0.0.0/8"));  // new window's first enqueue
  EXPECT_TRUE(ops[0].withdraw_preceded);
  EXPECT_EQ(ops[1].prefix, P("10.0.0.0/8"));
  EXPECT_FALSE(ops[1].withdraw_preceded);
}

// withdraw_preceded survives any number of in-window supersessions once a
// withdrawal has been queued for the prefix: W-A-A must still transmit the
// W,A train through a stateless sender.
TEST(OutboundQueue, WithdrawPrecededStickyAcrossReenqueues) {
  PackerConfig cfg;
  cfg.discipline = TimerDiscipline::kUnjittered;
  OutboundQueue q(cfg, 1);
  q.Enqueue(T(1), {P("10.0.0.0/8"), std::nullopt});
  q.Enqueue(T(2), {P("10.0.0.0/8"), Attrs({701})});
  q.Enqueue(T(3), {P("10.0.0.0/8"), Attrs({1239})});
  auto ops = q.Flush(T(30));
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_TRUE(ops[0].withdraw_preceded);
  // ...but it does not leak into the next window.
  q.Enqueue(T(31), {P("10.0.0.0/8"), Attrs({701})});
  ops = q.Flush(T(60));
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_FALSE(ops[0].withdraw_preceded);
}

// Differential check of the probed index against a naive reference model
// under a randomized re-enqueue/withdraw interleaving: flush order is the
// first-enqueue order of each window and the net op is latest-wins,
// regardless of how many prefixes collide in the flat table's probe chains.
TEST(OutboundQueue, RandomInterleavingMatchesReferenceModel) {
  PackerConfig cfg;
  cfg.discipline = TimerDiscipline::kUnjittered;
  cfg.interval = Duration::Seconds(30);
  OutboundQueue q(cfg, 1);
  Rng rng(2024);
  for (int window = 0; window < 8; ++window) {
    std::vector<RouteOp> reference;  // net ops in first-enqueue order
    const double base = window * 30.0;
    for (int i = 0; i < 200; ++i) {
      RouteOp op;
      op.prefix = Prefix(
          IPv4Address(10, 0, static_cast<std::uint8_t>(rng.Below(48)), 0), 24);
      if (rng.Below(3) != 0) {
        op.attributes = Attrs({static_cast<Asn>(701 + rng.Below(4))});
      }
      q.Enqueue(T(base + 0.1 * i), op);
      auto it = std::find_if(
          reference.begin(), reference.end(),
          [&op](const RouteOp& r) { return r.prefix == op.prefix; });
      if (it == reference.end()) {
        reference.push_back(op);
      } else {
        if (!op.IsWithdraw() && (it->IsWithdraw() || it->withdraw_preceded)) {
          op.withdraw_preceded = true;
        }
        *it = op;
      }
    }
    auto ops = q.Flush(T(base + 30.0));
    ASSERT_EQ(ops.size(), reference.size()) << "window " << window;
    for (std::size_t i = 0; i < ops.size(); ++i) {
      EXPECT_EQ(ops[i], reference[i]) << "window " << window << " op " << i;
    }
  }
}

}  // namespace
}  // namespace iri::bgp
