#include "core/report.h"

#include <gtest/gtest.h>

namespace iri::core {
namespace {

TEST(FormatTable, AlignsColumns) {
  const std::string out = FormatTable({"name", "count"},
                                      {{"a", "1"}, {"longer-name", "23456"}});
  // Every data row is as wide as the widest cell per column.
  const auto lines = [&out] {
    std::vector<std::string> ls;
    std::size_t start = 0;
    while (start < out.size()) {
      const auto nl = out.find('\n', start);
      ls.push_back(out.substr(start, nl - start));
      start = nl + 1;
    }
    return ls;
  }();
  ASSERT_EQ(lines.size(), 4u);  // header, rule, 2 rows
  EXPECT_EQ(lines[0].substr(0, 4), "name");
  EXPECT_NE(lines[1].find("---"), std::string::npos);
  // The count column starts at the same offset in both data rows.
  EXPECT_EQ(lines[2].find('1'), lines[3].find('2'));
}

TEST(FormatTable, HandlesEmptyRows) {
  const std::string out = FormatTable({"alpha", "b"}, {});
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(FormatCategoryReport, ContainsAllCategoriesAndRollups) {
  CategoryCounts counts;
  ClassifiedEvent ev;
  ev.category = Category::kWWDup;
  ev.event.is_withdraw = true;
  for (int i = 0; i < 99; ++i) counts.Add(ev);
  ev.category = Category::kAADiff;
  ev.event.is_withdraw = false;
  counts.Add(ev);

  const std::string out = FormatCategoryReport(counts);
  EXPECT_NE(out.find("WWDup"), std::string::npos);
  EXPECT_NE(out.find("99"), std::string::npos);
  EXPECT_NE(out.find("99.00%"), std::string::npos);
  EXPECT_NE(out.find("instability"), std::string::npos);
  EXPECT_NE(out.find("pathology"), std::string::npos);
  EXPECT_NE(out.find("withdrawals:"), std::string::npos);
}

TEST(FormatCategoryReport, ZeroTotalsDoNotDivideByZero) {
  const std::string out = FormatCategoryReport(CategoryCounts{});
  EXPECT_NE(out.find("0.00%"), std::string::npos);
}

TEST(AsciiBar, ScalesAndClamps) {
  EXPECT_EQ(AsciiBar(0, 100, 10), "");
  EXPECT_EQ(AsciiBar(50, 100, 10), "#####");
  EXPECT_EQ(AsciiBar(100, 100, 10), "##########");
  EXPECT_EQ(AsciiBar(500, 100, 10), "##########");  // clamped
  EXPECT_EQ(AsciiBar(5, 0, 10), "##########");      // degenerate max
}

}  // namespace
}  // namespace iri::core
