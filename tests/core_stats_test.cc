#include "core/stats.h"

#include <gtest/gtest.h>

namespace iri::core {
namespace {

Prefix P(const std::string& s) { return *Prefix::Parse(s); }

ClassifiedEvent Event(Category cat, double t_seconds, bgp::PeerId peer = 1,
                      const std::string& prefix = "10.0.0.0/8",
                      bool policy = false) {
  ClassifiedEvent ev;
  ev.event.time = TimePoint::Origin() + Duration::Seconds(t_seconds);
  ev.event.peer = peer;
  ev.event.peer_asn = 100 + peer;
  ev.event.prefix = P(prefix);
  ev.event.is_withdraw =
      cat == Category::kWithdraw || cat == Category::kWWDup;
  ev.category = cat;
  ev.policy_fluctuation = policy;
  return ev;
}

TEST(CategoryCounts, RollupsMatchPaperDefinitions) {
  CategoryCounts c;
  c.Add(Event(Category::kWADiff, 0));
  c.Add(Event(Category::kAADiff, 1));
  c.Add(Event(Category::kWADup, 2));
  c.Add(Event(Category::kAADup, 3));
  c.Add(Event(Category::kWWDup, 4));
  c.Add(Event(Category::kWithdraw, 5));
  c.Add(Event(Category::kInitial, 6));
  EXPECT_EQ(c.Instability(), 3u);
  EXPECT_EQ(c.Pathology(), 2u);
  EXPECT_EQ(c.Total(), 7u);
  EXPECT_EQ(c.withdrawals, 2u);
  EXPECT_EQ(c.announcements, 5u);
}

TEST(CategoryCounts, PolicyFluctuationsCounted) {
  CategoryCounts c;
  c.Add(Event(Category::kAADup, 0, 1, "10.0.0.0/8", true));
  c.Add(Event(Category::kAADup, 1));
  EXPECT_EQ(c.policy_fluctuations, 1u);
}

TEST(DailyCategoryTally, SplitsAtMidnight) {
  DailyCategoryTally tally;
  tally.Add(Event(Category::kAADiff, 10));
  tally.Add(Event(Category::kAADiff, 86399));
  tally.Add(Event(Category::kWADiff, 86401));
  ASSERT_EQ(tally.days().size(), 2u);
  EXPECT_EQ(tally.days()[0].Of(Category::kAADiff), 2u);
  EXPECT_EQ(tally.days()[1].Of(Category::kWADiff), 1u);
}

TEST(DailyCategoryTally, SkippedDaysAreEmpty) {
  DailyCategoryTally tally;
  tally.Add(Event(Category::kAADiff, 10));
  tally.Add(Event(Category::kAADiff, 3 * 86400 + 10));
  ASSERT_EQ(tally.days().size(), 4u);
  EXPECT_EQ(tally.days()[1].Total(), 0u);
  EXPECT_EQ(tally.days()[2].Total(), 0u);
}

TEST(TimeBinner, BinsAtConfiguredWidth) {
  TimeBinner binner(Duration::Minutes(10));
  binner.Add(TimePoint::Origin() + Duration::Minutes(5));
  binner.Add(TimePoint::Origin() + Duration::Minutes(9));
  binner.Add(TimePoint::Origin() + Duration::Minutes(10));  // next bin
  binner.Add(TimePoint::Origin() + Duration::Minutes(35), 4);
  ASSERT_EQ(binner.bins().size(), 4u);
  EXPECT_EQ(binner.bins()[0], 2u);
  EXPECT_EQ(binner.bins()[1], 1u);
  EXPECT_EQ(binner.bins()[2], 0u);
  EXPECT_EQ(binner.bins()[3], 4u);
}

TEST(TimeBinner, ExtendToPadsTrailingQuiet) {
  TimeBinner binner(Duration::Hours(1));
  binner.Add(TimePoint::Origin() + Duration::Minutes(30));
  binner.ExtendTo(TimePoint::Origin() + Duration::Hours(5));
  EXPECT_EQ(binner.bins().size(), 6u);
  EXPECT_EQ(binner.bins()[5], 0u);
}

TEST(PeerDayTally, TracksPerPeerPerDay) {
  PeerDayTally tally;
  tally.Add(Event(Category::kAADiff, 100, 1));
  tally.Add(Event(Category::kAADiff, 200, 1));
  tally.Add(Event(Category::kAADiff, 300, 2));
  tally.Add(Event(Category::kAADiff, 86400 + 100, 1));
  tally.SetTableShare(1, 0, 0.25, 101);

  EXPECT_EQ(tally.cells().size(), 3u);
  const auto& cell = tally.cells().at({1, 0});
  EXPECT_EQ(cell.counts.Of(Category::kAADiff), 2u);
  EXPECT_DOUBLE_EQ(cell.table_share, 0.25);
  EXPECT_EQ(tally.DayTotal(0, Category::kAADiff), 3u);
  EXPECT_EQ(tally.DayTotal(1, Category::kAADiff), 1u);
}

TEST(PrefixPeerDaily, BuildsDailyCountMultisets) {
  PrefixPeerDaily daily;
  // Day 0: prefix A sees 3 AADiffs, prefix B sees 1.
  daily.Add(Event(Category::kAADiff, 10, 1, "10.0.0.0/8"));
  daily.Add(Event(Category::kAADiff, 20, 1, "10.0.0.0/8"));
  daily.Add(Event(Category::kAADiff, 30, 1, "10.0.0.0/8"));
  daily.Add(Event(Category::kAADiff, 40, 1, "11.0.0.0/8"));
  // Untracked categories must be ignored.
  daily.Add(Event(Category::kWWDup, 50, 1, "10.0.0.0/8"));
  // Day 1: one WADup.
  daily.Add(Event(Category::kWADup, 86400 + 10, 1, "10.0.0.0/8"));
  daily.Finalize();

  ASSERT_EQ(daily.days().size(), 2u);
  const auto& day0 = daily.days()[0];
  EXPECT_EQ(day0.counts[0], (std::vector<std::uint32_t>{1, 3}));  // AADiff
  EXPECT_TRUE(day0.counts[3].empty());                            // WADup
  const auto& day1 = daily.days()[1];
  EXPECT_EQ(day1.counts[3], (std::vector<std::uint32_t>{1}));
}

TEST(CumulativeEventProportion, MatchesHandComputation) {
  // Counts: routes with 1,1,2,10 events => total 14.
  const std::vector<std::uint32_t> counts = {1, 1, 2, 10};
  auto cdf = CumulativeEventProportion(counts, {1, 2, 5, 10, 100});
  ASSERT_EQ(cdf.size(), 5u);
  EXPECT_DOUBLE_EQ(cdf[0], 2.0 / 14);   // counts <= 1
  EXPECT_DOUBLE_EQ(cdf[1], 4.0 / 14);   // counts <= 2
  EXPECT_DOUBLE_EQ(cdf[2], 4.0 / 14);   // nothing between 3 and 5
  EXPECT_DOUBLE_EQ(cdf[3], 1.0);
  EXPECT_DOUBLE_EQ(cdf[4], 1.0);
}

TEST(CumulativeEventProportion, EmptyCountsYieldZeros) {
  auto cdf = CumulativeEventProportion({}, {1, 10});
  EXPECT_EQ(cdf, (std::vector<double>{0.0, 0.0}));
}

TEST(InterArrivalHistogram, BinsGapsOnLogScale) {
  InterArrivalHistogram hist;
  // Three AADiffs on the same route, 30 s apart -> two 30 s gaps.
  hist.Add(Event(Category::kAADiff, 0));
  hist.Add(Event(Category::kAADiff, 30));
  hist.Add(Event(Category::kAADiff, 60));
  // One gap of ~5 minutes on another route.
  hist.Add(Event(Category::kAADiff, 0, 2, "11.0.0.0/8"));
  hist.Add(Event(Category::kAADiff, 290, 2, "11.0.0.0/8"));
  hist.Finalize();

  ASSERT_EQ(hist.days().size(), 1u);
  const auto& bins = hist.days()[0].bins[0];  // AADiff
  EXPECT_EQ(bins[2], 2u);  // 30 s bin
  EXPECT_EQ(bins[4], 1u);  // 5 m bin
}

TEST(InterArrivalHistogram, FirstEventProducesNoGap) {
  InterArrivalHistogram hist;
  hist.Add(Event(Category::kWADup, 100));
  hist.Finalize();
  std::uint64_t total = 0;
  for (auto b : hist.days()[0].bins[3]) total += b;
  EXPECT_EQ(total, 0u);
}

TEST(InterArrivalHistogram, GapsSpanDays) {
  InterArrivalHistogram hist;
  hist.Add(Event(Category::kAADiff, 86400 - 10));
  hist.Add(Event(Category::kAADiff, 86400 + 10));  // 20 s gap across midnight
  hist.Finalize();
  ASSERT_EQ(hist.days().size(), 2u);
  // The gap lands in day 1's histogram, 30s bin (20 s <= 30 s edge).
  EXPECT_EQ(hist.days()[1].bins[0][2], 1u);
}

TEST(InterArrivalHistogram, HugeGapsClampToLastBin) {
  InterArrivalHistogram hist;
  hist.Add(Event(Category::kAADiff, 0));
  hist.Add(Event(Category::kAADiff, 3 * 86400.0));
  hist.Finalize();
  const auto& last_day = hist.days().back();
  EXPECT_EQ(last_day.bins[0][11], 1u);  // 24h bin
}

TEST(InterArrivalHistogram, SummaryQuartilesOverDays) {
  InterArrivalHistogram hist;
  // Three days, each with gaps only in the 30 s bin; proportions are all 1.
  // Distinct routes per day so no cross-day gap pollutes the histograms.
  for (int day = 0; day < 3; ++day) {
    const auto peer = static_cast<bgp::PeerId>(day + 1);
    hist.Add(Event(Category::kAADiff, day * 86400.0 + 0, peer));
    hist.Add(Event(Category::kAADiff, day * 86400.0 + 25, peer));
  }
  hist.Finalize();
  auto summary = hist.Summarize();
  EXPECT_DOUBLE_EQ(summary[0][2].median, 1.0);
  EXPECT_DOUBLE_EQ(summary[0][2].q1, 1.0);
  EXPECT_DOUBLE_EQ(summary[0][2].q3, 1.0);
  EXPECT_DOUBLE_EQ(summary[0][5].median, 0.0);
}

TEST(RoutesAffectedDaily, CountsDistinctRoutesPerDay) {
  RoutesAffectedDaily affected;
  // Day 0: route A has 3 AADiffs (counted once); route B one WADiff.
  affected.Add(Event(Category::kAADiff, 10, 1, "10.0.0.0/8"));
  affected.Add(Event(Category::kAADiff, 20, 1, "10.0.0.0/8"));
  affected.Add(Event(Category::kAADiff, 30, 1, "10.0.0.0/8"));
  affected.Add(Event(Category::kWADiff, 40, 1, "11.0.0.0/8"));
  affected.Add(Event(Category::kWWDup, 50, 1, "12.0.0.0/8"));
  // Day 1: quiet for A; C appears.
  affected.Add(Event(Category::kAADup, 86400 + 10, 1, "13.0.0.0/8"));
  affected.Finalize();

  ASSERT_EQ(affected.days().size(), 2u);
  const auto& day0 = affected.days()[0];
  EXPECT_EQ(day0.routes_with_aadiff, 1u);
  EXPECT_EQ(day0.routes_with_wadiff, 1u);
  EXPECT_EQ(day0.routes_with_instability, 2u);
  // The WWDup at 12/8 targeted a pair that never announced reachability:
  // it is not a route and must not count.
  EXPECT_EQ(day0.routes_with_any, 2u);
  EXPECT_EQ(day0.universe, 2u);
  const auto& day1 = affected.days()[1];
  EXPECT_EQ(day1.routes_with_any, 1u);
  // The universe is cumulative: 3 announced routes seen so far.
  EXPECT_EQ(day1.universe, 3u);
}

TEST(RoutesAffectedDaily, WithdrawalOfKnownRouteCounts) {
  RoutesAffectedDaily affected;
  affected.Add(Event(Category::kInitial, 10, 1, "10.0.0.0/8"));
  affected.Add(Event(Category::kWithdraw, 20, 1, "10.0.0.0/8"));
  affected.Add(Event(Category::kWADup, 30, 1, "10.0.0.0/8"));
  affected.Finalize();
  ASSERT_EQ(affected.days().size(), 1u);
  EXPECT_EQ(affected.days()[0].routes_with_instability, 1u);
  EXPECT_EQ(affected.days()[0].universe, 1u);
}

TEST(DayOf, MapsNanosecondsToDays) {
  EXPECT_EQ(DayOf(TimePoint::Origin()), 0);
  EXPECT_EQ(DayOf(TimePoint::Origin() + Duration::Hours(23.9)), 0);
  EXPECT_EQ(DayOf(TimePoint::Origin() + Duration::Hours(24)), 1);
  EXPECT_EQ(DayOf(TimePoint::Origin() + Duration::Days(45.5)), 45);
}

}  // namespace
}  // namespace iri::core
