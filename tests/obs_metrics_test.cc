#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <array>
#include <string>

namespace iri::obs {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
  Registry reg;
  Counter& c = reg.GetCounter("updates");
  EXPECT_EQ(c.value(), 0u);
  c.Add(3);
  c.Add(4);
  EXPECT_EQ(c.value(), 7u);
}

TEST(Registry, SameNameReturnsSameInstrument) {
  Registry reg;
  Counter& a = reg.GetCounter("x");
  a.Add(5);
  EXPECT_EQ(&a, &reg.GetCounter("x"));
  EXPECT_EQ(reg.GetCounter("x").value(), 5u);
}

TEST(Gauge, SetAddRaiseTo) {
  Registry reg;
  Gauge& g = reg.GetGauge("depth");
  g.Set(10);
  g.Add(-3);
  EXPECT_EQ(g.value(), 7);
  g.RaiseTo(5);  // lower: no-op
  EXPECT_EQ(g.value(), 7);
  g.RaiseTo(42);
  EXPECT_EQ(g.value(), 42);
}

TEST(Histogram, BucketsObservationsAgainstEdges) {
  Registry reg;
  const std::array<std::int64_t, 3> edges{10, 100, 1000};
  Histogram& h = reg.GetHistogram("lat", edges);
  h.Observe(5);     // le10
  h.Observe(10);    // le10 (lower_bound: 10 <= 10)
  h.Observe(11);    // le100
  h.Observe(1001);  // inf
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 5 + 10 + 11 + 1001);
  EXPECT_EQ(h.buckets()[0], 2u);
  EXPECT_EQ(h.buckets()[1], 1u);
  EXPECT_EQ(h.buckets()[2], 0u);
  EXPECT_EQ(h.buckets()[3], 1u);  // overflow
}

TEST(Registry, SnapshotTextIsNameOrderedAndStable) {
  Registry reg;
  // Registered deliberately out of name order.
  reg.GetCounter("zebra").Add(1);
  reg.GetGauge("apple").Set(-4);
  const std::array<std::int64_t, 2> edges{1, 2};
  reg.GetHistogram("mid", edges).Observe(2);
  const std::string snap = reg.SnapshotText();
  EXPECT_EQ(snap,
            "gauge apple -4\n"
            "hist mid count=1 sum=2 le1=0 le2=1 inf=0\n"
            "counter zebra 1\n");
  // Byte-identical on repeat — the golden digests depend on this.
  EXPECT_EQ(snap, reg.SnapshotText());
}

TEST(Registry, WallClockInstrumentsExcludedByDefault) {
  Registry reg;
  reg.GetCounter("det").Add(1);
  reg.GetCounter("wall", Stability::kWallClock).Add(99);
  const std::string snap = reg.SnapshotText();
  EXPECT_NE(snap.find("counter det 1"), std::string::npos);
  EXPECT_EQ(snap.find("wall"), std::string::npos);
  const std::string with_wall = reg.SnapshotText(/*include_wall_clock=*/true);
  EXPECT_NE(with_wall.find("counter wall 99"), std::string::npos);
}

TEST(Registry, SnapshotSuppressesNeverFiredProfileSites) {
  Registry reg;
  // A registered-but-never-fired site: all three instruments exist with
  // zero calls. Pure registration noise — the snapshot must drop the whole
  // triple, not advertise a site that contributed nothing.
  reg.GetCounter("profile.idle.calls");
  reg.GetCounter("profile.idle.items");
  reg.GetCounter("profile.idle.wall_ns");
  // A live site next to it must survive untouched.
  reg.GetCounter("profile.busy.calls").Add(3);
  reg.GetCounter("profile.busy.items").Add(12);
  // Zero-valued non-profile counters and a zero `.calls` without the
  // profile. prefix must NOT be suppressed.
  reg.GetCounter("monitor.messages");
  reg.GetCounter("rpc.calls");
  const std::string snap = reg.SnapshotText();
  EXPECT_EQ(snap.find("profile.idle"), std::string::npos)
      << "zero-call profile site leaked into the snapshot:\n"
      << snap;
  EXPECT_NE(snap.find("counter profile.busy.calls 3"), std::string::npos);
  EXPECT_NE(snap.find("counter profile.busy.items 12"), std::string::npos);
  EXPECT_NE(snap.find("counter monitor.messages 0"), std::string::npos);
  EXPECT_NE(snap.find("counter rpc.calls 0"), std::string::npos);
}

TEST(Registry, PrefixFilterSelectsSubtree) {
  Registry reg;
  reg.GetCounter("monitor.messages").Add(2);
  reg.GetCounter("monitor.events").Add(5);
  reg.GetCounter("mrt.records").Add(7);
  const std::string snap = reg.SnapshotText(false, "monitor.");
  EXPECT_EQ(snap,
            "counter monitor.events 5\n"
            "counter monitor.messages 2\n");
}

TEST(Registry, MergeSumsCountersGaugesAndHistograms) {
  Registry a;
  Registry b;
  a.GetCounter("c").Add(3);
  b.GetCounter("c").Add(4);
  b.GetCounter("only_b").Add(1);
  a.GetGauge("g").Set(10);
  b.GetGauge("g").Set(5);
  const std::array<std::int64_t, 2> edges{10, 20};
  a.GetHistogram("h", edges).Observe(5);
  b.GetHistogram("h", edges).Observe(15);

  a.Merge(b);
  EXPECT_EQ(a.GetCounter("c").value(), 7u);
  EXPECT_EQ(a.GetCounter("only_b").value(), 1u);
  // Default-policy (kSum) gauges add under merge.
  EXPECT_EQ(a.GetGauge("g").value(), 15);
  Histogram& h = a.GetHistogram("h", edges);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.buckets()[0], 1u);
  EXPECT_EQ(h.buckets()[1], 1u);
}

TEST(Registry, MaxPolicyGaugesMergeByMaximum) {
  // Peak/score gauges (sched.peak_pending, health.*) register with
  // GaugeMerge::kMax: the merged value is the worst partition, never a sum
  // of per-partition peaks (DESIGN.md §9).
  Registry a;
  Registry b;
  a.GetGauge("peak", Stability::kDeterministic, GaugeMerge::kMax).RaiseTo(10);
  b.GetGauge("peak", Stability::kDeterministic, GaugeMerge::kMax).RaiseTo(7);
  b.GetGauge("only_b", Stability::kDeterministic, GaugeMerge::kMax)
      .RaiseTo(4);
  a.Merge(b);
  EXPECT_EQ(a.GetGauge("peak").value(), 10);
  // Creation through Merge carries the source's policy.
  Registry c;
  c.GetGauge("only_b", Stability::kDeterministic, GaugeMerge::kMax)
      .RaiseTo(2);
  a.Merge(c);
  EXPECT_EQ(a.GetGauge("only_b").value(), 4);
}

TEST(Registry, MergeIsOrderInsensitiveOnDisjointSources) {
  // The runner merges per-exchange registries in fixed exchange order; the
  // result must not depend on which partition registered a name first.
  Registry x;
  Registry y;
  x.GetCounter("a").Add(1);
  x.GetCounter("b").Add(2);
  y.GetCounter("b").Add(10);
  y.GetCounter("c").Add(3);

  Registry xy;
  xy.Merge(x);
  xy.Merge(y);
  Registry yx;
  yx.Merge(y);
  yx.Merge(x);
  EXPECT_EQ(xy.SnapshotText(), yx.SnapshotText());
}

TEST(Registry, SnapshotJsonShape) {
  Registry reg;
  reg.GetCounter("c").Add(2);
  reg.GetGauge("g").Set(-1);
  const std::array<std::int64_t, 1> edges{5};
  reg.GetHistogram("h", edges).Observe(9);
  const std::string json = reg.SnapshotJson();
  EXPECT_NE(json.find("\"counters\":{\"c\":2}"), std::string::npos) << json;
  EXPECT_NE(json.find("\"gauges\":{\"g\":-1}"), std::string::npos) << json;
  EXPECT_NE(json.find("\"h\":{\"count\":1,\"sum\":9"), std::string::npos)
      << json;
}

}  // namespace
}  // namespace iri::obs
