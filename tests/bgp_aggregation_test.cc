#include "bgp/aggregation.h"

#include <gtest/gtest.h>

namespace iri::bgp {
namespace {

Prefix P(const std::string& s) { return *Prefix::Parse(s); }

Route R(const std::string& prefix, std::vector<Asn> path,
        Origin origin = Origin::kIgp) {
  Route r;
  r.prefix = P(prefix);
  r.attributes.as_path = AsPath::Sequence(std::move(path));
  r.attributes.next_hop = IPv4Address(10, 0, 0, 1);
  r.attributes.origin = origin;
  return r;
}

TEST(AggregateSiblings, MergesEquivalentSiblingPair) {
  auto out = AggregateSiblings({R("10.0.0.0/25", {9}), R("10.0.0.128/25", {9})});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].prefix, P("10.0.0.0/24"));
}

TEST(AggregateSiblings, CascadesUpward) {
  auto out = AggregateSiblings({
      R("10.0.0.0/26", {9}), R("10.0.0.64/26", {9}),
      R("10.0.0.128/26", {9}), R("10.0.0.192/26", {9})});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].prefix, P("10.0.0.0/24"));
}

TEST(AggregateSiblings, DoesNotMergeDifferentPaths) {
  auto out = AggregateSiblings({R("10.0.0.0/25", {9}), R("10.0.0.128/25", {11})});
  EXPECT_EQ(out.size(), 2u);
}

TEST(AggregateSiblings, DoesNotMergeNonSiblings) {
  // Adjacent but not siblings: 10.0.1.0/24 pairs with 10.0.0.0/24,
  // 10.0.2.0/24 pairs with 10.0.3.0/24 — neither partner present.
  auto out = AggregateSiblings({R("10.0.1.0/24", {9}), R("10.0.2.0/24", {9})});
  EXPECT_EQ(out.size(), 2u);
}

TEST(AggregateSiblings, MergedOriginDegradesWhenMixed) {
  auto out = AggregateSiblings({R("10.0.0.0/25", {9}, Origin::kIgp),
                                R("10.0.0.128/25", {9}, Origin::kEgp)});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].attributes.origin, Origin::kIncomplete);
}

TEST(AggregateSiblings, MedDroppedWhenDiffering) {
  Route a = R("10.0.0.0/25", {9});
  Route b = R("10.0.0.128/25", {9});
  a.attributes.med = 10;
  b.attributes.med = 20;
  auto out = AggregateSiblings({a, b});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_FALSE(out[0].attributes.med.has_value());
}

TEST(AggregateSiblings, CommunityIntersectionSurvives) {
  Route a = R("10.0.0.0/25", {9});
  Route b = R("10.0.0.128/25", {9});
  a.attributes.communities = {1, 2, 3};
  b.attributes.communities = {2, 3, 4};
  auto out = AggregateSiblings({a, b});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].attributes.communities, (std::vector<Community>{2, 3}));
}

TEST(AggregateSiblings, ExistingParentBlocksMerge) {
  auto out = AggregateSiblings({R("10.0.0.0/24", {9}), R("10.0.0.0/25", {9}),
                                R("10.0.0.128/25", {9})});
  // The /24 is already announced: children must not merge into it (they
  // would collide); all three survive.
  EXPECT_EQ(out.size(), 3u);
}

TEST(AggregateSiblings, OutputIsAddressOrdered) {
  auto out = AggregateSiblings({R("192.0.0.0/24", {9}), R("10.0.0.0/24", {9})});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_LT(out[0].prefix, out[1].prefix);
}

TEST(AggregateIntoBlock, EmitsSupernetWhenComponentAlive) {
  auto agg = AggregateIntoBlock(P("204.16.0.0/16"),
                                {R("204.16.3.0/24", {9})}, 701,
                                IPv4Address(137, 39, 1, 1),
                                IPv4Address(198, 32, 1, 10));
  ASSERT_TRUE(agg.has_value());
  EXPECT_EQ(agg->prefix, P("204.16.0.0/16"));
  EXPECT_TRUE(agg->attributes.atomic_aggregate);
  ASSERT_TRUE(agg->attributes.aggregator.has_value());
  EXPECT_EQ(agg->attributes.aggregator->asn, 701u);
}

TEST(AggregateIntoBlock, NulloptWhenNoComponentInside) {
  auto agg = AggregateIntoBlock(P("204.16.0.0/16"),
                                {R("10.0.0.0/24", {9})}, 701,
                                IPv4Address(1, 1, 1, 1),
                                IPv4Address(2, 2, 2, 2));
  EXPECT_FALSE(agg.has_value());
}

TEST(AggregateIntoBlock, ForeignOriginsCollectedIntoAsSet) {
  auto agg = AggregateIntoBlock(
      P("204.16.0.0/16"),
      {R("204.16.1.0/24", {9}), R("204.16.2.0/24", {11}),
       R("204.16.3.0/24", {701})},  // 701 == aggregator: not foreign
      701, IPv4Address(1, 1, 1, 1), IPv4Address(2, 2, 2, 2));
  ASSERT_TRUE(agg.has_value());
  const auto& segments = agg->attributes.as_path.segments();
  ASSERT_EQ(segments.size(), 2u);
  EXPECT_EQ(segments[0].type, AsPathSegment::Type::kSequence);
  EXPECT_EQ(segments[0].asns, (std::vector<Asn>{701}));
  EXPECT_EQ(segments[1].type, AsPathSegment::Type::kSet);
  EXPECT_EQ(segments[1].asns, (std::vector<Asn>{9, 11}));
}

TEST(AggregateIntoBlock, NoSetWhenAllOriginsAreAggregator) {
  auto agg = AggregateIntoBlock(P("204.16.0.0/16"),
                                {R("204.16.1.0/24", {701})}, 701,
                                IPv4Address(1, 1, 1, 1),
                                IPv4Address(2, 2, 2, 2));
  ASSERT_TRUE(agg.has_value());
  EXPECT_EQ(agg->attributes.as_path.segments().size(), 1u);
}

TEST(AggregateIntoBlock, OriginDegradesToWorstComponent) {
  auto agg = AggregateIntoBlock(
      P("204.16.0.0/16"),
      {R("204.16.1.0/24", {9}, Origin::kIgp),
       R("204.16.2.0/24", {11}, Origin::kIncomplete)},
      701, IPv4Address(1, 1, 1, 1), IPv4Address(2, 2, 2, 2));
  ASSERT_TRUE(agg.has_value());
  EXPECT_EQ(agg->attributes.origin, Origin::kIncomplete);
}

// The instability-containment property the paper relies on: the aggregate
// is stable across component churn as long as one component survives.
TEST(AggregateIntoBlock, StableAcrossComponentChurn) {
  const Prefix block = P("204.16.0.0/16");
  std::vector<Route> components = {R("204.16.1.0/24", {701}),
                                   R("204.16.2.0/24", {701})};
  auto before = AggregateIntoBlock(block, components, 701,
                                   IPv4Address(1, 1, 1, 1),
                                   IPv4Address(2, 2, 2, 2));
  components.erase(components.begin());  // one component flaps away
  auto after = AggregateIntoBlock(block, components, 701,
                                  IPv4Address(1, 1, 1, 1),
                                  IPv4Address(2, 2, 2, 2));
  ASSERT_TRUE(before.has_value());
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(*before, *after);  // identical announcement: no update emitted
}

#if defined(IRI_TRACE_ENABLED) && IRI_TRACE_ENABLED
TEST(AggregateIntoBlock, EmitTracesExactJsonlBytes) {
  obs::Tracer tracer;
  auto agg = AggregateIntoBlock(
      P("204.16.0.0/16"),
      {R("204.16.1.0/24", {9}), R("204.16.2.0/24", {701})}, 701,
      IPv4Address(1, 1, 1, 1), IPv4Address(2, 2, 2, 2), &tracer,
      TimePoint::Origin() + Duration::Seconds(5));
  ASSERT_TRUE(agg.has_value());
  EXPECT_EQ(tracer.buffer(),
            "{\"t_ns\":5000000000,\"ev\":\"aggregate_emit\","
            "\"block\":\"204.16.0.0/16\",\"aggregator\":701,"
            "\"components\":2,\"foreign_origins\":1}\n");
}

TEST(AggregateIntoBlock, NoTraceWhenNothingIsCovered) {
  obs::Tracer tracer;
  auto agg = AggregateIntoBlock(P("204.16.0.0/16"), {R("10.0.0.0/24", {9})},
                                701, IPv4Address(1, 1, 1, 1),
                                IPv4Address(2, 2, 2, 2), &tracer,
                                TimePoint::Origin());
  EXPECT_FALSE(agg.has_value());
  EXPECT_TRUE(tracer.buffer().empty());
}
#endif

}  // namespace
}  // namespace iri::bgp
