// Property tests for the hash-consed AS-path / attribute-set tables
// (bgp/intern.h): interning is a bijection between distinct values and ids,
// and every precomputed per-id fact agrees with the deep computation it
// replaces. The decision process and classifier compare ids instead of
// walking segments, so these properties are what keeps the fast paths
// semantically invisible.
#include "bgp/intern.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "bgp/attributes.h"
#include "netbase/rng.h"

namespace iri::bgp {
namespace {

// Random AS path over a deliberately tiny ASN pool so the generator
// produces plenty of exact collisions (the interesting case for interning).
AsPath RandomPath(Rng& rng) {
  std::vector<Asn> asns;
  const std::size_t len = rng.Below(4);  // 0..3 hops
  for (std::size_t i = 0; i < len; ++i) {
    asns.push_back(static_cast<Asn>(701 + rng.Below(5)));
  }
  return AsPath::Sequence(std::move(asns));
}

PathAttributes RandomAttributes(Rng& rng) {
  PathAttributes attrs;
  attrs.as_path = RandomPath(rng);
  attrs.next_hop = IPv4Address(198, 32, 1, static_cast<std::uint8_t>(rng.Below(3)));
  if (rng.Bernoulli(0.5)) attrs.med = static_cast<std::uint32_t>(rng.Below(3));
  if (rng.Bernoulli(0.3)) {
    attrs.local_pref = static_cast<std::uint32_t>(100 + rng.Below(2));
  }
  if (rng.Bernoulli(0.2)) {
    attrs.communities.push_back(
        Community{static_cast<std::uint32_t>(rng.Below(2))});
  }
  return attrs;
}

TEST(AsPathTableProperty, InternIsBijectionAndMetadataAgrees) {
  Rng rng(20260808);
  AsPathTable table;
  std::map<std::string, AsPathId> seen;  // canonical text -> id
  for (int i = 0; i < 2000; ++i) {
    const AsPath path = RandomPath(rng);
    const AsPathId id = table.Intern(path);

    // Same value <=> same id: intern(a) == intern(b) iff a == b.
    auto [it, fresh] = seen.emplace(path.ToString(), id);
    EXPECT_EQ(it->second, id) << "same path re-interned to a different id";
    if (fresh) {
      // First sight: ids are dense and insertion-ordered.
      EXPECT_EQ(id, seen.size() - 1);
    }

    // The canonical copy is byte-equal to the input.
    EXPECT_EQ(table.Get(id), path);
    // Precomputed decision metadata matches the deep computation.
    EXPECT_EQ(table.DecisionLength(id), path.DecisionLength());
    EXPECT_EQ(table.FirstAsn(id), path.FirstAsn());
  }
  EXPECT_EQ(table.size(), seen.size());
  EXPECT_GT(table.size(), 1u);
  EXPECT_LT(table.size(), 2000u) << "generator never collided; pool too big";
}

TEST(PathAttributesTableProperty, IdCompareMatchesDeepCompare) {
  Rng rng(42);
  PathAttributesTable table;
  std::vector<PathAttributes> originals;
  std::vector<AttrSetId> ids;
  for (int i = 0; i < 400; ++i) {
    originals.push_back(RandomAttributes(rng));
    ids.push_back(table.Intern(originals.back()));
    EXPECT_EQ(table.Get(ids.back()), originals.back());
  }
  // Pairwise: id equality <=> deep equality, and the precomputed
  // forwarding-tuple compare matches PathAttributes::ForwardingEquivalent.
  for (std::size_t a = 0; a < ids.size(); ++a) {
    for (std::size_t b = 0; b < ids.size(); ++b) {
      EXPECT_EQ(ids[a] == ids[b], originals[a] == originals[b])
          << "id compare diverged from deep compare at (" << a << "," << b
          << ")";
      EXPECT_EQ(table.ForwardingEquivalent(ids[a], ids[b]),
                originals[a].ForwardingEquivalent(originals[b]))
          << "interned forwarding compare diverged at (" << a << "," << b
          << ")";
    }
  }
}

TEST(PathAttributesTableProperty, CanonicalPointersStableAcrossGrowth) {
  Rng rng(7);
  PathAttributesTable table;
  // Grab a reference early, then force the arena through many more blocks;
  // the Rib and classifier hold ids across the whole run, so Get() must
  // keep returning the same storage.
  const PathAttributes first = RandomAttributes(rng);
  const AttrSetId first_id = table.Intern(first);
  const PathAttributes* first_ptr = &table.Get(first_id);
  for (int i = 0; i < 5000; ++i) {
    PathAttributes attrs = RandomAttributes(rng);
    // Widen the value space so most inserts are fresh.
    attrs.med = static_cast<std::uint32_t>(i);
    table.Intern(attrs);
  }
  EXPECT_EQ(first_ptr, &table.Get(first_id));
  EXPECT_EQ(*first_ptr, first);
  EXPECT_GT(table.arena_bytes(), std::size_t{16 * 1024})
      << "expected the arena to have grown past its first block";
}

}  // namespace
}  // namespace iri::bgp
