// End-to-end causal-provenance coverage at the workload layer:
//
//   1. the ISSUE's acceptance floor — on the pathological_day scenario at
//      least 95% of classified pathological updates (AADup + WWDup) carry a
//      non-null root cause;
//   2. cause-id stability — the attribution JSON (ids, kinds, matrix) is
//      byte-identical across the (threads x shards x shard_threads) knobs;
//   3. the compile-out / disable paths the digests must not see:
//      series_flush_interval = Duration() omits the timeseries digest
//      section entirely, IRI_TRACE=OFF leaves trace buffers empty, and
//      IRI_PROVENANCE=OFF keeps provenance.* out of snapshots and the
//      provenance section out of digests — byte-identical to a build that
//      never had the subsystem;
//   4. offline MRT replay has no cause sideband, so everything it
//      classifies lands unattributed (the replay-differential contract).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/monitor.h"
#include "core/report.h"
#include "mrt/log.h"
#include "obs/provenance.h"
#include "workload/multi_exchange_runner.h"

namespace iri::workload {
namespace {

MultiExchangeConfig PathologicalDay() {
  MultiExchangeConfig cfg;
  cfg.scenario.topology.scale = 1.0 / 256;
  cfg.scenario.topology.num_providers = 6;
  cfg.scenario.topology.seed = 1998;
  cfg.scenario.seed = 259;
  cfg.scenario.num_exchanges = 2;
  cfg.scenario.duration = Duration::Hours(2);
  cfg.scenario.patho_enabled = true;
  cfg.scenario.patho_spray_rate = 120;
  return cfg;
}

std::vector<obs::ExchangeAttribution> Attributions(
    const MultiExchangeResult& result) {
  std::vector<obs::ExchangeAttribution> attrs;
  attrs.reserve(result.exchanges.size());
  for (const auto& run : result.exchanges) attrs.push_back(run.attribution);
  return attrs;
}

TEST(Provenance, PathologicalDayAttributesAtLeast95Percent) {
  if (!obs::kProvenanceEnabled) GTEST_SKIP() << "IRI_PROVENANCE=OFF";
  MultiExchangeRunner runner(PathologicalDay());
  const MultiExchangeResult result = runner.Run();

  obs::ShardProvenance combined;
  std::size_t causes = 0;
  for (const auto& run : result.exchanges) {
    combined.Merge(run.attribution.observed);
    causes += run.attribution.causes.size();
  }
  ASSERT_GT(causes, 0u) << "scenario injected no causes at all";
  ASSERT_EQ(combined.attributed() + combined.unattributed(),
            result.total_events)
      << "every classified event must be counted exactly once";

  // The acceptance floor: >= 95% of *pathological* updates (the paper's
  // AADup + WWDup) trace to a non-null root cause.
  const auto patho_share = [&combined](core::Category c) {
    return std::make_pair(
        combined.ClassAttributed(static_cast<std::size_t>(c)),
        combined.ClassTotal(static_cast<std::size_t>(c)));
  };
  const auto [aadup_attr, aadup_total] = patho_share(core::Category::kAADup);
  const auto [wwdup_attr, wwdup_total] = patho_share(core::Category::kWWDup);
  const std::uint64_t total = aadup_total + wwdup_total;
  const std::uint64_t attributed = aadup_attr + wwdup_attr;
  ASSERT_GT(total, 0u) << "pathological_day produced no pathological events";
  EXPECT_GE(static_cast<double>(attributed),
            0.95 * static_cast<double>(total))
      << "only " << attributed << " of " << total
      << " pathological updates carry a root cause";

  // The report surfaces must agree with the raw matrix and stay non-empty.
  const auto attrs = Attributions(result);
  const std::string text = core::FormatAttributionReport(attrs);
  EXPECT_NE(text.find("causal attribution"), std::string::npos);
  EXPECT_NE(text.find("patho_spray"), std::string::npos)
      << "the dominant injected fault kind is missing from the report";
  const std::string json = core::AttributionJson(attrs);
  EXPECT_NE(json.find("\"top_causes\""), std::string::npos);
  EXPECT_NE(json.find("\"depth_histogram\""), std::string::npos);
}

TEST(Provenance, AttributionIsIdenticalAcrossParallelismKnobs) {
  if (!obs::kProvenanceEnabled) GTEST_SKIP() << "IRI_PROVENANCE=OFF";
  const auto run_json = [](int threads, int shards, int shard_threads) {
    MultiExchangeConfig cfg = PathologicalDay();
    cfg.scenario.duration = Duration::Hours(1);
    cfg.threads = threads;
    cfg.scenario.shards = shards;
    cfg.scenario.shard_threads = shard_threads;
    MultiExchangeRunner runner(std::move(cfg));
    return core::AttributionJson(Attributions(runner.Run()));
  };
  const std::string serial = run_json(1, 1, 1);
  EXPECT_EQ(serial, run_json(2, 1, 1)) << "exchange threads moved a cause";
  EXPECT_EQ(serial, run_json(1, 4, 2)) << "classifier sharding moved a cause";
  EXPECT_EQ(serial, run_json(4, 2, 2)) << "combined knobs moved a cause";
}

TEST(Provenance, ProvenanceGaugesTrackCompileSetting) {
  MultiExchangeConfig cfg = PathologicalDay();
  cfg.scenario.duration = Duration::Minutes(30);
  MultiExchangeRunner runner(std::move(cfg));
  const MultiExchangeResult result = runner.Run();
  const std::string snapshot = result.metrics.SnapshotText();
  // The label is embedded verbatim in the digest header, so it must not
  // contain the substring the OFF branch asserts absent.
  const std::string digest = result.Digest("gauge_compile_setting");
  if (obs::kProvenanceEnabled) {
    EXPECT_NE(snapshot.find("gauge provenance.causes "), std::string::npos);
    EXPECT_NE(snapshot.find("gauge provenance.events_attributed "),
              std::string::npos);
    EXPECT_NE(digest.find("provenance.begin\n"), std::string::npos);
    EXPECT_NE(digest.find("provenance.end\n"), std::string::npos);
  } else {
    // An OFF build must leave no registration residue anywhere: snapshots
    // and digests are byte-identical to a never-enabled build.
    EXPECT_EQ(snapshot.find("provenance"), std::string::npos);
    EXPECT_EQ(digest.find("provenance"), std::string::npos);
    for (const auto& run : result.exchanges) {
      EXPECT_TRUE(run.attribution.observed.Empty());
      EXPECT_TRUE(run.attribution.causes.empty());
    }
  }
}

TEST(Provenance, DisabledSeriesOmitsTimeseriesDigestSection) {
  MultiExchangeConfig cfg = PathologicalDay();
  cfg.scenario.duration = Duration::Minutes(30);
  cfg.scenario.series_flush_interval = Duration();  // disables telemetry

  MultiExchangeConfig no_capture = cfg;
  no_capture.capture_series = false;

  MultiExchangeRunner with_capture_runner(std::move(cfg));
  MultiExchangeRunner no_capture_runner(std::move(no_capture));
  const std::string with_capture =
      with_capture_runner.Run().Digest("series_off");
  const std::string without_capture =
      no_capture_runner.Run().Digest("series_off");

  // A disabled flush interval produces zero records, so the digest must not
  // carry an empty timeseries section — and must be byte-identical to a run
  // where the capture plumbing was never wired at all.
  EXPECT_EQ(with_capture.find("timeseries.begin"), std::string::npos);
  EXPECT_EQ(with_capture, without_capture);
}

TEST(Provenance, TraceBuffersFollowTraceCompileSetting) {
  MultiExchangeConfig cfg = PathologicalDay();
  cfg.scenario.duration = Duration::Minutes(30);
  cfg.capture_trace = true;
  MultiExchangeRunner runner(std::move(cfg));
  const MultiExchangeResult result = runner.Run();
#if defined(IRI_TRACE_ENABLED) && IRI_TRACE_ENABLED
  if (obs::kProvenanceEnabled) {
    EXPECT_NE(result.merged_trace.find("cause_injected"), std::string::npos)
        << "cause allocations must emit trace events when both layers are on";
  }
#else
  EXPECT_TRUE(result.merged_trace.empty())
      << "IRI_TRACE=OFF must compile every emission site to nothing";
#endif
}

TEST(Provenance, OfflineReplayIsFullyUnattributed) {
  if (!obs::kProvenanceEnabled) GTEST_SKIP() << "IRI_PROVENANCE=OFF";
  MultiExchangeConfig cfg = PathologicalDay();
  cfg.scenario.duration = Duration::Minutes(30);
  MultiExchangeRunner runner(std::move(cfg));
  const MultiExchangeResult result = runner.Run();
  ASSERT_FALSE(result.exchanges.empty());

  // Replay the first exchange's MRT segment: the wire format carries no
  // cause bytes (mrt_crc32 pins that), so the offline classifier sees only
  // null tags.
  mrt::Reader reader(result.exchanges[0].mrt);
  core::ExchangeMonitor offline;
  offline.Replay(reader);
  obs::ShardProvenance prov;
  offline.classifier().MergeProvenanceInto(prov);
  EXPECT_EQ(prov.attributed(), 0u);
  EXPECT_EQ(prov.unattributed(), result.exchanges[0].events);
}

}  // namespace
}  // namespace iri::workload
