#include "netbase/bytes.h"

#include <gtest/gtest.h>

#include "netbase/crc32.h"
#include "netbase/rng.h"
#include "netbase/time.h"

namespace iri {
namespace {

TEST(ByteWriter, BigEndianLayout) {
  ByteWriter w;
  w.U8(0x01);
  w.U16(0x0203);
  w.U32(0x04050607);
  w.U64(0x08090A0B0C0D0E0FULL);
  const auto& buf = w.data();
  ASSERT_EQ(buf.size(), 15u);
  const std::uint8_t expected[] = {1, 2, 3, 4, 5, 6, 7, 8,
                                   9, 10, 11, 12, 13, 14, 15};
  for (std::size_t i = 0; i < sizeof(expected); ++i) {
    EXPECT_EQ(buf[i], expected[i]) << "offset " << i;
  }
}

TEST(ByteWriter, PatchU16) {
  ByteWriter w;
  w.U16(0);
  w.U32(0xAABBCCDD);
  w.PatchU16(0, 0x1234);
  EXPECT_EQ(w.data()[0], 0x12);
  EXPECT_EQ(w.data()[1], 0x34);
  EXPECT_EQ(w.data()[2], 0xAA);  // rest untouched
}

TEST(ByteReader, RoundTripAllWidths) {
  ByteWriter w;
  w.U8(0xAB);
  w.U16(0xCDEF);
  w.U32(0x01234567);
  w.U64(0x89ABCDEF01234567ULL);
  ByteReader r(w.data());
  EXPECT_EQ(r.U8(), 0xAB);
  EXPECT_EQ(r.U16(), 0xCDEF);
  EXPECT_EQ(r.U32(), 0x01234567u);
  EXPECT_EQ(r.U64(), 0x89ABCDEF01234567ULL);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(ByteReader, StickyErrorOnUnderflow) {
  const std::uint8_t data[] = {1, 2};
  ByteReader r(data);
  EXPECT_EQ(r.U32(), 0u);  // underflow
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.U8(), 0u);  // stays poisoned even though a byte exists
  EXPECT_FALSE(r.ok());
}

TEST(ByteReader, BytesSpanAndSkip) {
  const std::uint8_t data[] = {1, 2, 3, 4, 5};
  ByteReader r(data);
  auto first = r.Bytes(2);
  ASSERT_EQ(first.size(), 2u);
  EXPECT_EQ(first[1], 2);
  r.Skip(2);
  EXPECT_EQ(r.U8(), 5);
  EXPECT_TRUE(r.ok());
}

TEST(ByteReader, MarkBadPoisons) {
  const std::uint8_t data[] = {1};
  ByteReader r(data);
  r.MarkBad();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.U8(), 0);
}

TEST(Crc32, KnownVector) {
  // CRC-32("123456789") = 0xCBF43926 (standard check value).
  const std::uint8_t data[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(Crc32(data), 0xCBF43926u);
}

TEST(Crc32, EmptyIsZero) {
  EXPECT_EQ(Crc32({}), 0u);
}

TEST(Crc32, StreamingMatchesOneShot) {
  std::vector<std::uint8_t> data(1000);
  Rng rng(7);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.Below(256));
  const std::uint32_t oneshot = Crc32(data);
  std::uint32_t streamed = 0;
  streamed = Crc32Update(streamed, std::span(data).subspan(0, 137));
  streamed = Crc32Update(streamed, std::span(data).subspan(137, 500));
  streamed = Crc32Update(streamed, std::span(data).subspan(637));
  EXPECT_EQ(streamed, oneshot);
}

TEST(Crc32, DetectsSingleBitFlip) {
  std::vector<std::uint8_t> data(64, 0x5A);
  const std::uint32_t before = Crc32(data);
  data[17] ^= 0x40;
  EXPECT_NE(Crc32(data), before);
}

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, ForkIndependence) {
  Rng parent(1);
  Rng child1 = parent.Fork(1);
  Rng child2 = parent.Fork(2);
  EXPECT_NE(child1.Next(), child2.Next());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(6);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.Range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialMeanApproximatelyCorrect) {
  Rng rng(11);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(10.0);
  EXPECT_NEAR(sum / n, 10.0, 0.2);
}

TEST(Rng, NormalMomentsApproximatelyCorrect) {
  Rng rng(13);
  double sum = 0, sum2 = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal(2.0, 3.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(var, 9.0, 0.3);
}

TEST(Time, DurationArithmetic) {
  EXPECT_EQ(Duration::Seconds(1).nanos(), 1'000'000'000);
  EXPECT_EQ(Duration::Minutes(2), Duration::Seconds(120));
  EXPECT_EQ(Duration::Hours(1) + Duration::Minutes(30),
            Duration::Minutes(90));
  EXPECT_EQ((Duration::Seconds(10) * 0.5), Duration::Seconds(5));
  EXPECT_DOUBLE_EQ(Duration::Hours(2) / Duration::Hours(1), 2.0);
}

TEST(Time, TimePointArithmetic) {
  const TimePoint t = TimePoint::Origin() + Duration::Days(1);
  EXPECT_EQ((t - TimePoint::Origin()), Duration::Days(1));
  EXPECT_LT(TimePoint::Origin(), t);
  EXPECT_LT(t, TimePoint::Max());
}

TEST(Time, FormatScenarioTime) {
  const TimePoint t = TimePoint::Origin() + Duration::Days(3) +
                      Duration::Hours(14) + Duration::Minutes(5) +
                      Duration::Seconds(9) + Duration::Millis(250);
  EXPECT_EQ(FormatScenarioTime(t), "d3 14:05:09.250");
}

}  // namespace
}  // namespace iri
