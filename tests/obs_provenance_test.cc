// Unit coverage for the causal-provenance layer (obs/provenance.h): cause
// allocation, ambient scoping, depth bumping, the attribution matrix, and
// the fixed-order merge contract. The ON-only sections touch CauseTag's
// data members, which the IRI_PROVENANCE=OFF stand-in deliberately lacks,
// so they are preprocessor-guarded; the OFF build instead proves the
// stand-ins swallow every call at zero cost.
#include "obs/provenance.h"

#include <gtest/gtest.h>

#include <string>

namespace iri::obs {
namespace {

#if defined(IRI_PROVENANCE_ENABLED) && IRI_PROVENANCE_ENABLED

TEST(ProvenanceContext, AllocatesDenseIdsInOrder) {
  ProvenanceContext ctx;
  const CauseTag a = ctx.Allocate(CauseKind::kCustomerFlap, TimePoint::Origin());
  const CauseTag b = ctx.Allocate(CauseKind::kMaintenance,
                                  TimePoint::Origin() + Duration::Seconds(5));
  EXPECT_EQ(a.id, 1u);
  EXPECT_EQ(b.id, 2u);
  EXPECT_EQ(a.Kind(), CauseKind::kCustomerFlap);
  EXPECT_EQ(a.Depth(), 0u);
  ASSERT_EQ(ctx.Count(), 2u);
  EXPECT_EQ(ctx.infos()[0].kind, CauseKind::kCustomerFlap);
  EXPECT_EQ(ctx.infos()[1].kind, CauseKind::kMaintenance);
  EXPECT_EQ(ctx.infos()[1].injected,
            TimePoint::Origin() + Duration::Seconds(5));
}

TEST(ProvenanceContext, CauseScopeSetsAndRestoresAmbientCause) {
  ProvenanceContext ctx;
  EXPECT_TRUE(ctx.Current().IsNull());
  {
    CauseScope outer(&ctx, CauseKind::kCsuEpisode, TimePoint::Origin());
    EXPECT_EQ(ctx.Current().Kind(), CauseKind::kCsuEpisode);
    {
      const CauseTag inner_tag =
          ctx.Allocate(CauseKind::kPathoSpray, TimePoint::Origin());
      CauseScope inner(&ctx, inner_tag);
      EXPECT_EQ(ctx.Current().id, inner_tag.id);
    }
    EXPECT_EQ(ctx.Current().Kind(), CauseKind::kCsuEpisode);
  }
  EXPECT_TRUE(ctx.Current().IsNull());
}

TEST(CauseTag, BumpedSaturatesDepth) {
  CauseTag tag{1, static_cast<std::uint8_t>(CauseKind::kUpgrade), 0};
  tag = tag.Bumped();
  EXPECT_EQ(tag.Depth(), 1u);
  tag.depth = 255;
  EXPECT_EQ(tag.Bumped().Depth(), 255u) << "depth must saturate, not wrap";
  EXPECT_EQ(tag.Bumped().id, tag.id) << "bumping must preserve identity";
}

TEST(ShardProvenance, RecordsMatrixCellsAndBlastRadius) {
  ShardProvenance prov;
  const CauseTag cause{3, static_cast<std::uint8_t>(CauseKind::kMaintenance),
                       2};
  const TimePoint t0 = TimePoint::Origin() + Duration::Seconds(10);
  const TimePoint t1 = TimePoint::Origin() + Duration::Seconds(40);
  prov.Record(/*cls=*/1, cause, t0, /*first_touch=*/true);
  prov.Record(/*cls=*/1, cause, t1, /*first_touch=*/false);
  prov.Record(/*cls=*/2, CauseTag{}, t1, /*first_touch=*/true);

  EXPECT_EQ(prov.attributed(), 2u);
  EXPECT_EQ(prov.unattributed(), 1u);
  EXPECT_EQ(prov.depth_peak(), 2u);
  EXPECT_EQ(prov.MatrixAt(1, static_cast<std::size_t>(CauseKind::kMaintenance),
                          2),
            2u);
  EXPECT_EQ(prov.ClassTotal(1), 2u);
  EXPECT_EQ(prov.ClassAttributed(1), 2u);
  EXPECT_EQ(prov.ClassTotal(2), 1u);
  EXPECT_EQ(prov.ClassAttributed(2), 0u);
  EXPECT_EQ(prov.DepthBucketTotal(2), 2u);

  ASSERT_EQ(prov.cause_stats().size(), 3u) << "stats are id-indexed (id-1)";
  const auto& s = prov.cause_stats()[2];
  EXPECT_EQ(s.updates, 2u);
  EXPECT_EQ(s.prefixes, 1u) << "only first touches count toward blast radius";
  EXPECT_EQ(s.max_depth, 2u);
  EXPECT_EQ(s.first_seen, t0);
  EXPECT_EQ(s.last_seen, t1);
}

TEST(ShardProvenance, DepthBucketsOverflowIntoLast) {
  ShardProvenance prov;
  const CauseTag deep{1, static_cast<std::uint8_t>(CauseKind::kPathChange),
                      42};
  prov.Record(0, deep, TimePoint::Origin(), true);
  EXPECT_EQ(prov.DepthBucketTotal(ShardProvenance::kDepthBuckets - 1), 1u);
  EXPECT_EQ(prov.depth_peak(), 42u) << "peak keeps the unbucketed depth";
}

TEST(ShardProvenance, MergeSumsMatrixAndCombinesStats) {
  const TimePoint t0 = TimePoint::Origin();
  const TimePoint t1 = TimePoint::Origin() + Duration::Minutes(1);
  const CauseTag cause{1, static_cast<std::uint8_t>(CauseKind::kOscillation),
                       1};
  ShardProvenance a, b;
  a.Record(0, cause, t0, true);
  b.Record(0, cause, t1, true);
  b.Record(3, CauseTag{}, t1, true);

  ShardProvenance merged;
  merged.Merge(a);
  merged.Merge(b);
  EXPECT_EQ(merged.attributed(), 2u);
  EXPECT_EQ(merged.unattributed(), 1u);
  EXPECT_EQ(
      merged.MatrixAt(0, static_cast<std::size_t>(CauseKind::kOscillation), 1),
      2u);
  ASSERT_EQ(merged.cause_stats().size(), 1u);
  EXPECT_EQ(merged.cause_stats()[0].updates, 2u);
  EXPECT_EQ(merged.cause_stats()[0].prefixes, 2u);
  EXPECT_EQ(merged.cause_stats()[0].first_seen, t0);
  EXPECT_EQ(merged.cause_stats()[0].last_seen, t1);
  EXPECT_TRUE(ShardProvenance{}.Empty());
  EXPECT_FALSE(merged.Empty());
}

#else  // IRI_PROVENANCE compiled out

TEST(ProvenanceContext, OffBuildAllocatesNothing) {
  ProvenanceContext ctx;
  const CauseTag a = ctx.Allocate(CauseKind::kCustomerFlap, TimePoint::Origin());
  EXPECT_TRUE(a.IsNull());
  EXPECT_EQ(a.Kind(), CauseKind::kNone);
  EXPECT_EQ(ctx.Count(), 0u);
  EXPECT_TRUE(ctx.Current().IsNull());
  {
    CauseScope scope(&ctx, CauseKind::kCsuEpisode, TimePoint::Origin());
    EXPECT_TRUE(ctx.Current().IsNull()) << "OFF scopes must install nothing";
  }
  EXPECT_TRUE(ctx.Current().IsNull());
}

TEST(ShardProvenance, OffBuildIsZeroCost) {
  // The OFF stand-ins must take no space in the structs that embed them via
  // [[no_unique_address]] and swallow every call without effect.
  ShardProvenance prov;
  prov.Record(0, CauseTag{}, TimePoint::Origin(), true);
  EXPECT_EQ(prov.attributed(), 0u);
  EXPECT_EQ(prov.unattributed(), 0u);
  EXPECT_TRUE(prov.Empty());
  CauseVec vec;
  vec.push_back(CauseTag{});
  EXPECT_TRUE(vec.empty()) << "OFF-mode CauseVec must stay empty";
  EXPECT_EQ(CauseTag{}.Bumped().Depth(), 0u);
}

#endif  // IRI_PROVENANCE_ENABLED

TEST(CauseKindNames, EveryKindHasAStableName) {
  for (std::size_t k = 0; k < kNumCauseKinds; ++k) {
    const char* name = ToString(static_cast<CauseKind>(k));
    ASSERT_NE(name, nullptr);
    EXPECT_GT(std::string(name).size(), 0u);
  }
  EXPECT_STREQ(ToString(CauseKind::kNone), "none");
  EXPECT_STREQ(ToString(CauseKind::kSessionRedump), "session_redump");
}

}  // namespace
}  // namespace iri::obs
