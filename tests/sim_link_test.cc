#include "sim/link.h"

#include <gtest/gtest.h>

#include <vector>

namespace iri::sim {
namespace {

// A scriptable endpoint that records everything the link delivers.
class FakeEndpoint : public LinkEndpoint {
 public:
  void OnTransportUp(std::uint32_t peer) override { ups.push_back(peer); }
  void OnTransportDown(std::uint32_t peer) override { downs.push_back(peer); }
  void OnWireData(std::uint32_t peer, std::vector<std::uint8_t> bytes,
                  obs::CauseVec /*causes*/) override {
    received.emplace_back(peer, std::move(bytes));
  }

  std::vector<std::uint32_t> ups, downs;
  std::vector<std::pair<std::uint32_t, std::vector<std::uint8_t>>> received;
};

class LinkTest : public ::testing::Test {
 protected:
  LinkTest() : link(sched, Duration::Millis(5)) {
    link.AttachA(&a, 7);
    link.AttachB(&b, 9);
  }

  Scheduler sched;
  Link link;
  FakeEndpoint a, b;
};

TEST_F(LinkTest, RestoreNotifiesBothEndpointsWithTheirPeerIds) {
  link.Restore();
  ASSERT_EQ(a.ups.size(), 1u);
  ASSERT_EQ(b.ups.size(), 1u);
  EXPECT_EQ(a.ups[0], 7u);
  EXPECT_EQ(b.ups[0], 9u);
  EXPECT_TRUE(link.up());
}

TEST_F(LinkTest, RestoreIsIdempotent) {
  link.Restore();
  link.Restore();
  EXPECT_EQ(a.ups.size(), 1u);
}

TEST_F(LinkTest, FailNotifiesBoth) {
  link.Restore();
  link.Fail();
  EXPECT_EQ(a.downs.size(), 1u);
  EXPECT_EQ(b.downs.size(), 1u);
  EXPECT_FALSE(link.up());
  link.Fail();  // idempotent
  EXPECT_EQ(a.downs.size(), 1u);
}

TEST_F(LinkTest, DeliversAfterLatencyToOtherSide) {
  link.Restore();
  link.Send(&a, {1, 2, 3});
  EXPECT_TRUE(b.received.empty());  // not yet delivered
  sched.RunUntil(TimePoint::Origin() + Duration::Millis(5));
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].first, 9u);
  EXPECT_EQ(b.received[0].second, (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_TRUE(a.received.empty());
}

TEST_F(LinkTest, DeliversBothDirections) {
  link.Restore();
  link.Send(&a, {1});
  link.Send(&b, {2});
  sched.RunAll();
  ASSERT_EQ(b.received.size(), 1u);
  ASSERT_EQ(a.received.size(), 1u);
  EXPECT_EQ(a.received[0].second[0], 2);
}

TEST_F(LinkTest, SendOnDownLinkIsDropped) {
  link.Send(&a, {1});
  sched.RunAll();
  EXPECT_TRUE(b.received.empty());
}

TEST_F(LinkTest, InFlightDataLostOnFailure) {
  link.Restore();
  link.Send(&a, {1});
  link.Fail();  // fails before the 5 ms delivery
  sched.RunAll();
  EXPECT_TRUE(b.received.empty());
}

TEST_F(LinkTest, InFlightDataLostAcrossFlapEpoch) {
  // Fail + restore before delivery time: the segment is still lost (TCP
  // would have seen the carrier drop).
  link.Restore();
  link.Send(&a, {1});
  link.Fail();
  link.Restore();
  sched.RunAll();
  EXPECT_TRUE(b.received.empty());
}

TEST_F(LinkTest, CountsTraffic) {
  link.Restore();
  link.Send(&a, {1, 2, 3, 4});
  link.Send(&b, {5});
  EXPECT_EQ(link.messages_carried(), 2u);
  EXPECT_EQ(link.bytes_carried(), 5u);
}

TEST(LineFailureProcess, GeneratesFailuresAndRepairs) {
  Scheduler sched;
  Link link(sched, Duration::Millis(1));
  FakeEndpoint a, b;
  link.AttachA(&a, 0);
  link.AttachB(&b, 0);
  link.Restore();

  LineFailureProcess::Params params;
  params.mean_time_to_failure = Duration::Hours(2);
  params.mean_time_to_repair = Duration::Minutes(5);
  LineFailureProcess process(sched, link, params, /*seed=*/3);
  process.Start();
  sched.RunUntil(TimePoint::Origin() + Duration::Days(7));
  // ~84 failures expected over a week; allow wide slack.
  EXPECT_GT(process.failures(), 20u);
  EXPECT_LT(process.failures(), 300u);
  EXPECT_EQ(a.downs.size(), process.failures());
  // Repairs happen: final few restores counted.
  EXPECT_GE(a.ups.size(), a.downs.size() - 1);
}

TEST(LineFailureProcess, RateMultiplierSpeedsFailures) {
  auto failures_with = [](double multiplier) {
    Scheduler sched;
    Link link(sched, Duration::Millis(1));
    link.Restore();
    LineFailureProcess::Params params;
    params.mean_time_to_failure = Duration::Hours(6);
    LineFailureProcess process(sched, link, params, 5);
    process.SetRateMultiplier(multiplier);
    process.Start();
    sched.RunUntil(TimePoint::Origin() + Duration::Days(14));
    return process.failures();
  };
  EXPECT_GT(failures_with(8.0), 2 * failures_with(1.0));
}

TEST(CsuOscillator, BeatsAtConfiguredPeriod) {
  Scheduler sched;
  Link link(sched, Duration::Millis(1));
  FakeEndpoint a, b;
  link.AttachA(&a, 0);
  link.AttachB(&b, 0);
  link.Restore();

  CsuOscillator::Params params;
  params.beat_period = Duration::Seconds(30);
  params.carrier_loss = Duration::Millis(800);
  params.episode_length = Duration::Minutes(3);
  params.mean_episode_gap = Duration::Hours(2);
  CsuOscillator csu(sched, link, params, /*seed=*/11);
  csu.Start();
  sched.RunUntil(TimePoint::Origin() + Duration::Days(2));

  EXPECT_GT(csu.episodes(), 5u);
  // ~6 beats per 3-minute episode at a 30 s period.
  EXPECT_GT(csu.beats(), csu.episodes() * 4);
  EXPECT_LT(csu.beats(), csu.episodes() * 9);
  EXPECT_EQ(a.downs.size(), csu.beats());
  // The line always comes back after an episode.
  EXPECT_TRUE(link.up());
}

}  // namespace
}  // namespace iri::sim
