#include "obs/timeseries.h"

#include <gtest/gtest.h>

#include <array>
#include <string>

namespace iri::obs {
namespace {

TimePoint T(double seconds) {
  return TimePoint::Origin() + Duration::Seconds(seconds);
}

TEST(WindowedCounter, WindowResetsAndTotalAccumulates) {
  WindowedCounter c;
  c.Add(3);
  c.Add(2);
  EXPECT_EQ(c.window(), 5u);
  EXPECT_EQ(c.total(), 5u);
  c.CloseWindow(0.5);
  EXPECT_EQ(c.window(), 0u);
  EXPECT_EQ(c.total(), 5u);
  c.Add(7);
  EXPECT_EQ(c.window(), 7u);
  EXPECT_EQ(c.total(), 12u);
}

TEST(WindowedCounter, EwmaSeedsOnFirstWindowThenBlends) {
  WindowedCounter c;
  c.Add(10);
  c.CloseWindow(0.5);
  EXPECT_DOUBLE_EQ(c.ewma(), 10.0);  // first window seeds directly
  c.Add(20);
  c.CloseWindow(0.5);
  EXPECT_DOUBLE_EQ(c.ewma(), 15.0);  // 0.5*20 + 0.5*10
  c.CloseWindow(0.5);                // empty window decays toward zero
  EXPECT_DOUBLE_EQ(c.ewma(), 7.5);
}

TEST(WindowedHistogram, BucketsByInclusiveUpperEdgeWithOverflow) {
  constexpr std::array<std::int64_t, 3> edges = {1, 4, 16};
  WindowedHistogram h(edges, /*window_ticks=*/4);
  h.Observe(0);
  h.Observe(1);   // both land in bucket 0 (<= 1)
  h.Observe(4);   // bucket 1 (<= 4)
  h.Observe(17);  // overflow bucket
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 22);
  ASSERT_EQ(h.buckets().size(), 4u);
  EXPECT_EQ(h.buckets()[0], 2u);
  EXPECT_EQ(h.buckets()[1], 1u);
  EXPECT_EQ(h.buckets()[2], 0u);
  EXPECT_EQ(h.buckets()[3], 1u);
}

TEST(WindowedHistogram, SlidesOutWindowsBeyondTheRetention) {
  constexpr std::array<std::int64_t, 1> edges = {10};
  WindowedHistogram h(edges, /*window_ticks=*/2);
  h.Observe(1);  // window 1
  h.CloseWindow();
  h.Observe(2);  // window 2
  h.CloseWindow();
  h.Observe(3);  // window 3 (still open)
  // Retention is 2 closed windows + the open one: everything still counts.
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 6);
  h.CloseWindow();
  // Window 1 has now slid out of the ring.
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.sum(), 5);
  h.CloseWindow();
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.sum(), 3);
  h.CloseWindow();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0);
}

TEST(SeriesFlusher, EmitsExactJsonlBytesInNameOrder) {
  SeriesFlusher flusher;
  flusher.SetEwmaAlpha(0.5);
  // Registered out of name order on purpose: flush order must sort.
  WindowedCounter& wwdup = flusher.GetCounter("monitor.wwdup");
  constexpr std::array<std::int64_t, 2> edges = {2, 8};
  WindowedHistogram& per_msg =
      flusher.GetHistogram("monitor.events_per_msg", edges, 2);
  WindowedCounter& updates = flusher.GetCounter("monitor.updates");

  updates.Add(4);
  wwdup.Add(1);
  per_msg.Observe(2);
  per_msg.Observe(9);
  flusher.Flush(T(10));
  updates.Add(2);
  flusher.Flush(T(20));

  EXPECT_EQ(flusher.records(), 6u);
  EXPECT_EQ(flusher.flushes(), 2u);
  EXPECT_EQ(
      flusher.buffer(),
      "{\"t_ns\":10000000000,\"series\":\"monitor.events_per_msg\","
      "\"count\":2,\"sum\":11,\"buckets\":[1,0,1]}\n"
      "{\"t_ns\":10000000000,\"series\":\"monitor.updates\",\"window\":4,"
      "\"total\":4,\"ewma\":4.000000}\n"
      "{\"t_ns\":10000000000,\"series\":\"monitor.wwdup\",\"window\":1,"
      "\"total\":1,\"ewma\":1.000000}\n"
      "{\"t_ns\":20000000000,\"series\":\"monitor.events_per_msg\","
      "\"count\":2,\"sum\":11,\"buckets\":[1,0,1]}\n"
      "{\"t_ns\":20000000000,\"series\":\"monitor.updates\",\"window\":2,"
      "\"total\":6,\"ewma\":3.000000}\n"
      "{\"t_ns\":20000000000,\"series\":\"monitor.wwdup\",\"window\":0,"
      "\"total\":1,\"ewma\":0.500000}\n");
}

TEST(SeriesFlusher, GetReturnsTheSameInstrumentForTheSameName) {
  SeriesFlusher flusher;
  WindowedCounter& a = flusher.GetCounter("x");
  WindowedCounter& b = flusher.GetCounter("x");
  EXPECT_EQ(&a, &b);
}

TEST(SeriesFlusher, ClearDropsBufferAndRecordCount) {
  SeriesFlusher flusher;
  flusher.GetCounter("x").Add(1);
  flusher.Flush(T(1));
  EXPECT_FALSE(flusher.buffer().empty());
  flusher.Clear();
  EXPECT_TRUE(flusher.buffer().empty());
  EXPECT_EQ(flusher.records(), 0u);
}

}  // namespace
}  // namespace iri::obs
