#include "bgp/decision.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace iri::bgp {
namespace {

Candidate Make(PeerId peer, std::vector<Asn> path,
               std::optional<std::uint32_t> local_pref = std::nullopt,
               std::optional<std::uint32_t> med = std::nullopt,
               Origin origin = Origin::kIgp) {
  Candidate c;
  c.peer = peer;
  c.peer_router_id = IPv4Address(10, 0, 0, static_cast<std::uint8_t>(peer));
  c.attributes.as_path = AsPath::Sequence(std::move(path));
  c.attributes.local_pref = local_pref;
  c.attributes.med = med;
  c.attributes.origin = origin;
  return c;
}

TEST(Decision, EmptyReturnsMinusOne) {
  EXPECT_EQ(SelectBest({}), -1);
}

TEST(Decision, SingleCandidateWins) {
  const Candidate c = Make(1, {701});
  EXPECT_EQ(SelectBest({&c, 1}), 0);
}

TEST(Decision, HighestLocalPrefWins) {
  std::vector<Candidate> cands = {Make(1, {701}, 100),
                                  Make(2, {701, 1239, 3561}, 200)};
  // Longer path but higher LOCAL_PREF wins.
  EXPECT_EQ(SelectBest(cands), 1);
}

TEST(Decision, MissingLocalPrefDefaultsTo100) {
  std::vector<Candidate> cands = {Make(1, {701}), Make(2, {1239}, 99)};
  EXPECT_EQ(SelectBest(cands), 0);  // implicit 100 beats explicit 99
}

TEST(Decision, ShorterPathWins) {
  std::vector<Candidate> cands = {Make(1, {701, 1239}), Make(2, {3561})};
  EXPECT_EQ(SelectBest(cands), 1);
}

TEST(Decision, PrependingDemotesRoute) {
  std::vector<Candidate> cands = {Make(1, {701, 701, 701, 9}),
                                  Make(2, {1239, 9})};
  EXPECT_EQ(SelectBest(cands), 1);
}

TEST(Decision, LowerOriginWins) {
  std::vector<Candidate> cands = {
      Make(1, {701}, std::nullopt, std::nullopt, Origin::kIncomplete),
      Make(2, {1239}, std::nullopt, std::nullopt, Origin::kIgp)};
  EXPECT_EQ(SelectBest(cands), 1);
}

TEST(Decision, MedComparedOnlyWithinSameNeighborAs) {
  // Same neighbor AS: lower MED wins.
  std::vector<Candidate> same = {Make(1, {701, 9}, std::nullopt, 200),
                                 Make(2, {701, 9}, std::nullopt, 100)};
  EXPECT_EQ(SelectBest(same), 1);

  // Different neighbor AS: MED ignored, falls through to router id
  // (peer 1 has the lower id).
  std::vector<Candidate> diff = {Make(1, {701, 9}, std::nullopt, 200),
                                 Make(2, {1239, 9}, std::nullopt, 100)};
  EXPECT_EQ(SelectBest(diff), 0);
}

TEST(Decision, MissingMedTreatedAsZero) {
  std::vector<Candidate> cands = {Make(1, {701, 9}, std::nullopt, 10),
                                  Make(2, {701, 9})};
  EXPECT_EQ(SelectBest(cands), 1);
}

TEST(Decision, RouterIdBreaksFinalTie) {
  std::vector<Candidate> cands = {Make(9, {701}), Make(3, {1239})};
  EXPECT_EQ(SelectBest(cands), 1);  // peer 3 has lower router id
}

TEST(Decision, EmptyPathBeatsAnyPath) {
  // Locally-originated routes have zero-length paths.
  std::vector<Candidate> cands = {Make(1, {701}), Make(2, {})};
  EXPECT_EQ(SelectBest(cands), 1);
}

TEST(Decision, PreferenceIsAntisymmetric) {
  const auto a = Make(1, {701, 1239}, 100, 5);
  const auto b = Make(2, {701, 9}, 100, 7);
  EXPECT_NE(Preferred(a, b), Preferred(b, a));
}

TEST(Decision, OrderIndependence) {
  std::vector<Candidate> cands = {
      Make(1, {701, 1239}), Make(2, {3561}), Make(3, {701}, 200),
      Make(4, {9, 9}, std::nullopt, std::nullopt, Origin::kEgp)};
  const int best = SelectBest(cands);
  const Candidate winner = cands[static_cast<std::size_t>(best)];

  std::sort(cands.begin(), cands.end(),
            [](const Candidate& x, const Candidate& y) {
              return x.peer > y.peer;
            });
  const int best2 = SelectBest(cands);
  EXPECT_EQ(cands[static_cast<std::size_t>(best2)].peer, winner.peer);
}

// Property: Preferred() is a strict total order over a set of distinct
// candidates (transitivity spot-check via sorting consistency).
TEST(Decision, PreferredSortsConsistently) {
  std::vector<Candidate> cands;
  for (PeerId p = 1; p <= 12; ++p) {
    cands.push_back(Make(p, {static_cast<Asn>(100 + p % 4), 9},
                         100 + (p % 3) * 10, p * 7 % 50,
                         static_cast<Origin>(p % 3)));
  }
  std::vector<Candidate> sorted = cands;
  std::sort(sorted.begin(), sorted.end(), Preferred);
  // The SelectBest winner must equal the sort front.
  const int best = SelectBest(cands);
  EXPECT_EQ(sorted.front().peer, cands[static_cast<std::size_t>(best)].peer);
  // Strictness: no element preferred over itself.
  for (const auto& c : cands) EXPECT_FALSE(Preferred(c, c));
}

}  // namespace
}  // namespace iri::bgp
