// Randomized model-check of the Rib against a straightforward reference
// implementation: after any sequence of announce/withdraw/clear operations,
// the RIB's best route must equal SelectBest over the reference's candidate
// set, and the reported change flags must be consistent.
#include <gtest/gtest.h>

#include <map>
#include <unordered_map>

#include "bgp/rib.h"
#include "netbase/rng.h"

namespace iri::bgp {
namespace {

class RibModelCheck : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RibModelCheck, MatchesReferenceUnderRandomOps) {
  Rng rng(GetParam());
  Rib rib;
  constexpr int kPeers = 6;
  for (PeerId p = 0; p < kPeers; ++p) {
    rib.AddPeer(p, IPv4Address(10, 0, 0, static_cast<std::uint8_t>(p + 1)));
  }

  // Reference: prefix -> peer -> attributes.
  std::map<Prefix, std::map<PeerId, PathAttributes>> model;

  auto reference_best =
      [&model](const Prefix& prefix) -> std::optional<Candidate> {
    auto it = model.find(prefix);
    if (it == model.end() || it->second.empty()) return std::nullopt;
    std::vector<Candidate> candidates;
    for (const auto& [peer, attrs] : it->second) {
      candidates.push_back(
          {peer, IPv4Address(10, 0, 0, static_cast<std::uint8_t>(peer + 1)),
           attrs});
    }
    return candidates[static_cast<std::size_t>(SelectBest(candidates))];
  };

  auto random_prefix = [&rng] {
    return Prefix(IPv4Address((10u << 24) |
                              (static_cast<std::uint32_t>(rng.Below(24)) << 8)),
                  24);
  };
  auto random_attrs = [&rng] {
    PathAttributes a;
    std::vector<Asn> path;
    const int len = 1 + static_cast<int>(rng.Below(3));
    for (int i = 0; i < len; ++i) {
      path.push_back(static_cast<Asn>(100 + rng.Below(6)));
    }
    a.as_path = AsPath::Sequence(std::move(path));
    a.next_hop = IPv4Address(static_cast<std::uint32_t>(rng.Below(4) + 1));
    if (rng.Bernoulli(0.3)) a.med = static_cast<std::uint32_t>(rng.Below(10));
    return a;
  };

  for (int step = 0; step < 3000; ++step) {
    const auto peer = static_cast<PeerId>(rng.Below(kPeers));
    const Prefix prefix = random_prefix();
    const auto before = reference_best(prefix);

    switch (rng.Below(5)) {
      case 0:
      case 1:
      case 2: {  // announce
        Route route{prefix, random_attrs()};
        const RibChange change = rib.Announce(peer, route);
        model[prefix][peer] = route.attributes;
        const auto after = reference_best(prefix);
        ASSERT_TRUE(after.has_value());
        EXPECT_EQ(change.best_changed,
                  !before.has_value() || before->peer != after->peer ||
                      !(before->attributes == after->attributes));
        break;
      }
      case 3: {  // withdraw
        const RibChange change = rib.Withdraw(peer, prefix);
        auto it = model.find(prefix);
        if (it != model.end()) {
          it->second.erase(peer);
          if (it->second.empty()) model.erase(it);
        }
        const auto after = reference_best(prefix);
        const bool expect_change =
            before.has_value() != after.has_value() ||
            (before && after &&
             (before->peer != after->peer ||
              !(before->attributes == after->attributes)));
        EXPECT_EQ(change.best_changed, expect_change);
        break;
      }
      default: {  // session loss
        rib.ClearPeer(peer);
        for (auto it = model.begin(); it != model.end();) {
          it->second.erase(peer);
          it = it->second.empty() ? model.erase(it) : std::next(it);
        }
        break;
      }
    }

    // Full-state cross-check every 100 steps (cheap enough at this size).
    if (step % 100 == 99) {
      std::size_t model_routes = 0;
      for (const auto& [p, peers] : model) {
        model_routes += peers.size();
        const Candidate* got = rib.Best(p);
        const auto want = reference_best(p);
        ASSERT_NE(got, nullptr) << p.ToString();
        ASSERT_TRUE(want.has_value());
        EXPECT_EQ(got->peer, want->peer) << p.ToString();
        EXPECT_EQ(got->attributes, want->attributes);
      }
      EXPECT_EQ(rib.NumPrefixes(), model.size());
      EXPECT_EQ(rib.NumRoutes(), model_routes);
      ASSERT_TRUE(rib.AuditInvariants());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RibModelCheck,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

// Invariant: per-peer route counts always sum to NumRoutes.
class RibCountInvariant : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RibCountInvariant, CountsAlwaysConsistent) {
  Rng rng(GetParam());
  Rib rib;
  constexpr int kPeers = 4;
  for (PeerId p = 0; p < kPeers; ++p) {
    rib.AddPeer(p, IPv4Address(1, 1, 1, static_cast<std::uint8_t>(p + 1)));
  }
  for (int step = 0; step < 2000; ++step) {
    const auto peer = static_cast<PeerId>(rng.Below(kPeers));
    const Prefix prefix(
        IPv4Address((172u << 24) |
                    (static_cast<std::uint32_t>(rng.Below(40)) << 8)),
        24);
    if (rng.Bernoulli(0.6)) {
      Route r{prefix, {}};
      r.attributes.as_path = AsPath::Sequence({static_cast<Asn>(peer + 1)});
      rib.Announce(peer, r);
    } else {
      rib.Withdraw(peer, prefix);
    }
    std::size_t sum = 0;
    for (PeerId p = 0; p < kPeers; ++p) sum += rib.PeerRouteCount(p);
    ASSERT_EQ(sum, rib.NumRoutes());
  }
  ASSERT_TRUE(rib.AuditInvariants());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RibCountInvariant, ::testing::Values(7, 8, 9));

}  // namespace
}  // namespace iri::bgp
