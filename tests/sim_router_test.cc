// Router-level behaviour: propagation, split horizon, loop prevention,
// stateless vs stateful pathology, session loss, dumps, dampening, CPU
// crash — small hand-built topologies.
#include "sim/router.h"

#include <gtest/gtest.h>

#include "core/event.h"

namespace iri::sim {
namespace {

Prefix P(const std::string& s) { return *Prefix::Parse(s); }

bgp::Route LocalRoute(const std::string& prefix,
                      std::vector<bgp::Asn> downstream = {}) {
  bgp::Route r;
  r.prefix = P(prefix);
  r.attributes.origin = bgp::Origin::kIgp;
  r.attributes.as_path = bgp::AsPath::Sequence(std::move(downstream));
  return r;
}

// A small hand-wired network of routers.
class Net {
 public:
  Router& AddRouter(const std::string& name, bgp::Asn asn,
                    RouterConfig overrides = {}) {
    RouterConfig cfg = overrides;
    cfg.name = name;
    cfg.asn = asn;
    cfg.router_id = IPv4Address(10, 0, 0, static_cast<std::uint8_t>(asn));
    cfg.interface_addr = IPv4Address(10, 1, 0, static_cast<std::uint8_t>(asn));
    if (cfg.packer.interval == Duration::Seconds(30)) {
      // Snappy flushes by default in tests; periodicity tests override.
      cfg.packer.interval = Duration::Seconds(1);
      cfg.packer.discipline = bgp::TimerDiscipline::kUnjittered;
    }
    routers.push_back(std::make_unique<Router>(sched, cfg, seed_++));
    return *routers.back();
  }

  Link& Connect(Router& a, Router& b,
                bgp::Policy a_export = bgp::Policy::AcceptAll(),
                bgp::Policy b_export = bgp::Policy::AcceptAll()) {
    links.push_back(std::make_unique<Link>(sched, Duration::Millis(1)));
    Link& link = *links.back();
    a.AttachLink(link, /*side_a=*/true, b.config().asn,
                 bgp::Policy::AcceptAll(), std::move(a_export));
    b.AttachLink(link, /*side_a=*/false, a.config().asn,
                 bgp::Policy::AcceptAll(), std::move(b_export));
    return link;
  }

  void Start() {
    for (auto& link : links) link->Restore();
    Settle();
  }

  void Settle(Duration extra = Duration::Seconds(5)) {
    sched.RunUntil(sched.Now() + extra);
  }

  Scheduler sched;
  std::vector<std::unique_ptr<Router>> routers;
  std::vector<std::unique_ptr<Link>> links;

 private:
  std::uint64_t seed_ = 1;
};

TEST(Router, SessionEstablishes) {
  Net net;
  Router& a = net.AddRouter("A", 100);
  Router& b = net.AddRouter("B", 200);
  net.Connect(a, b);
  net.Start();
  EXPECT_EQ(a.PeerSessionState(0), bgp::SessionState::kEstablished);
  EXPECT_EQ(b.PeerSessionState(0), bgp::SessionState::kEstablished);
  EXPECT_EQ(a.stats().session_ups, 1u);
}

TEST(Router, RoutePropagatesWithPrependAndNextHop) {
  Net net;
  Router& a = net.AddRouter("A", 100);
  Router& b = net.AddRouter("B", 200);
  net.Connect(a, b);
  net.Start();
  a.Originate(LocalRoute("192.42.113.0/24"));
  net.Settle();

  const auto* best = b.rib().Best(P("192.42.113.0/24"));
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->attributes.as_path.ToString(), "100");
  EXPECT_EQ(best->attributes.next_hop, a.config().interface_addr);
  // eBGP: LOCAL_PREF must not leak.
  EXPECT_FALSE(best->attributes.local_pref.has_value());
}

TEST(Router, DownstreamAsPathPreserved) {
  Net net;
  Router& a = net.AddRouter("A", 100);
  Router& b = net.AddRouter("B", 200);
  net.Connect(a, b);
  net.Start();
  a.Originate(LocalRoute("192.42.113.0/24", {64512}));  // customer AS
  net.Settle();
  const auto* best = b.rib().Best(P("192.42.113.0/24"));
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->attributes.as_path.ToString(), "100 64512");
}

TEST(Router, WithdrawalPropagates) {
  Net net;
  Router& a = net.AddRouter("A", 100);
  Router& b = net.AddRouter("B", 200);
  net.Connect(a, b);
  net.Start();
  a.Originate(LocalRoute("192.42.113.0/24"));
  net.Settle();
  ASSERT_NE(b.rib().Best(P("192.42.113.0/24")), nullptr);
  a.WithdrawLocal(P("192.42.113.0/24"));
  net.Settle();
  EXPECT_EQ(b.rib().Best(P("192.42.113.0/24")), nullptr);
}

TEST(Router, TransitThroughMiddleRouter) {
  Net net;
  Router& a = net.AddRouter("A", 100);
  Router& b = net.AddRouter("B", 200);
  Router& c = net.AddRouter("C", 300);
  net.Connect(a, b);
  net.Connect(b, c);
  net.Start();
  a.Originate(LocalRoute("192.42.113.0/24"));
  net.Settle();
  const auto* best = c.rib().Best(P("192.42.113.0/24"));
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->attributes.as_path.ToString(), "200 100");
  EXPECT_EQ(best->attributes.next_hop, b.config().interface_addr);
}

TEST(Router, SplitHorizonDoesNotEchoRoute) {
  Net net;
  Router& a = net.AddRouter("A", 100);
  Router& b = net.AddRouter("B", 200);
  net.Connect(a, b);
  net.Start();
  a.Originate(LocalRoute("192.42.113.0/24"));
  net.Settle();
  // A must not hear its own route back (B applies split horizon and
  // sender-side loop avoidance).
  EXPECT_EQ(a.rib().CandidatesFor(P("192.42.113.0/24")).size(), 1u);
  EXPECT_EQ(a.stats().loops_rejected, 0u);
}

TEST(Router, RingTopologyConvergesWithoutLoops) {
  Net net;
  Router& a = net.AddRouter("A", 100);
  Router& b = net.AddRouter("B", 200);
  Router& c = net.AddRouter("C", 300);
  net.Connect(a, b);
  net.Connect(b, c);
  net.Connect(c, a);
  net.Start();
  a.Originate(LocalRoute("192.42.113.0/24"));
  net.Settle(Duration::Seconds(30));

  // Everyone converges; C prefers the direct path via A.
  const auto* c_best = c.rib().Best(P("192.42.113.0/24"));
  ASSERT_NE(c_best, nullptr);
  EXPECT_EQ(c_best->attributes.as_path.ToString(), "100");
  // The ring must quiesce: no persistent oscillation.
  const auto executed = net.sched.executed();
  net.Settle(Duration::Minutes(5));
  // Only keepalive-ish activity may continue.
  EXPECT_LT(net.sched.executed() - executed, 200u);
}

TEST(Router, SessionLossWithdrawsLearnedRoutes) {
  Net net;
  Router& a = net.AddRouter("A", 100);
  Router& b = net.AddRouter("B", 200);
  Router& c = net.AddRouter("C", 300);
  Link& ab = net.Connect(a, b);
  net.Connect(b, c);
  net.Start();
  a.Originate(LocalRoute("192.42.113.0/24"));
  net.Settle();
  ASSERT_NE(c.rib().Best(P("192.42.113.0/24")), nullptr);

  ab.Fail();
  net.Settle();
  EXPECT_EQ(b.rib().Best(P("192.42.113.0/24")), nullptr);
  EXPECT_EQ(c.rib().Best(P("192.42.113.0/24")), nullptr);
  EXPECT_GE(b.stats().session_downs, 1u);
}

TEST(Router, FullDumpOnSessionRecovery) {
  Net net;
  Router& a = net.AddRouter("A", 100);
  Router& b = net.AddRouter("B", 200);
  Link& ab = net.Connect(a, b);
  net.Start();
  for (int i = 0; i < 10; ++i) {
    a.Originate(LocalRoute("10." + std::to_string(i) + ".0.0/16"));
  }
  net.Settle();
  ASSERT_EQ(b.rib().NumPrefixes(), 10u);

  ab.Fail();
  net.Settle();
  EXPECT_EQ(b.rib().NumPrefixes(), 0u);

  ab.Restore();
  net.Settle(Duration::Minutes(1));
  EXPECT_EQ(b.rib().NumPrefixes(), 10u);
}

TEST(Router, MultihomedFailover) {
  // C hears 192.42.113/24 via both A (short) and B (long); when A's copy
  // goes away C fails over to B's.
  Net net;
  Router& a = net.AddRouter("A", 100);
  Router& b = net.AddRouter("B", 200);
  Router& c = net.AddRouter("C", 300);
  net.Connect(a, c);
  net.Connect(b, c);
  net.Start();
  a.Originate(LocalRoute("192.42.113.0/24"));
  b.Originate(LocalRoute("192.42.113.0/24", {64512}));
  net.Settle();
  ASSERT_EQ(c.rib().CandidatesFor(P("192.42.113.0/24")).size(), 2u);
  EXPECT_EQ(c.rib().Best(P("192.42.113.0/24"))->attributes.as_path.ToString(),
            "100");

  a.WithdrawLocal(P("192.42.113.0/24"));
  net.Settle();
  const auto* best = c.rib().Best(P("192.42.113.0/24"));
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->attributes.as_path.ToString(), "200 64512");
}

// --- the paper's §4.2 pathology: stateless vs stateful ---

struct TapCounter {
  std::uint64_t announced = 0, withdrawn = 0;

  void Attach(Router& router) {
    router.SetUpdateTap([this](TimePoint, bgp::PeerId, bgp::Asn,
                               const bgp::UpdateMessage& u,
                               std::span<const std::uint8_t>,
                               const obs::CauseVec&) {
      announced += u.nlri.size();
      withdrawn += u.withdrawn.size();
    });
  }
};

RouterConfig Stateless() {
  RouterConfig cfg;
  cfg.stateless_bgp = true;
  return cfg;
}

TEST(Router, StatelessSpraysWithdrawalsForUnannouncedPrefixes) {
  // B's export policy hides the route from C; B is stateless, so the
  // withdrawal still reaches C — the WWDup mechanism.
  Net net;
  Router& a = net.AddRouter("A", 100);
  Router& b = net.AddRouter("B", 200, Stateless());
  Router& c = net.AddRouter("C", 300);
  net.Connect(a, b);
  bgp::Policy deny_all_exports = bgp::Policy::DenyAll();
  net.Connect(b, c, /*a_export=*/std::move(deny_all_exports));
  net.Start();

  TapCounter c_tap;
  c_tap.Attach(c);

  a.Originate(LocalRoute("192.42.113.0/24"));
  net.Settle();
  EXPECT_EQ(c_tap.announced, 0u);  // policy hid the announcement

  a.WithdrawLocal(P("192.42.113.0/24"));
  net.Settle();
  EXPECT_GE(c_tap.withdrawn, 1u);  // ...but the withdrawal leaked through
}

TEST(Router, StatefulSuppressesWithdrawalsForUnannouncedPrefixes) {
  Net net;
  Router& a = net.AddRouter("A", 100);
  Router& b = net.AddRouter("B", 200);  // stateful
  Router& c = net.AddRouter("C", 300);
  net.Connect(a, b);
  net.Connect(b, c, bgp::Policy::DenyAll());
  net.Start();

  TapCounter c_tap;
  c_tap.Attach(c);

  a.Originate(LocalRoute("192.42.113.0/24"));
  a.WithdrawLocal(P("192.42.113.0/24"));
  net.Settle();
  EXPECT_EQ(c_tap.announced, 0u);
  EXPECT_EQ(c_tap.withdrawn, 0u);  // Adj-RIB-Out check killed the WWDup
}

TEST(Router, StatefulSuppressesDuplicateAnnouncements) {
  Net net;
  Router& a = net.AddRouter("A", 100);
  Router& b = net.AddRouter("B", 200);
  net.Connect(a, b);
  net.Start();
  TapCounter b_tap;
  b_tap.Attach(b);

  a.Originate(LocalRoute("192.42.113.0/24"));
  net.Settle();
  const auto first = b_tap.announced;
  EXPECT_EQ(first, 1u);
  // Re-originating the identical route must not emit a duplicate.
  a.Originate(LocalRoute("192.42.113.0/24"));
  net.Settle();
  EXPECT_EQ(b_tap.announced, first);
}

TEST(Router, StatelessEmitsDuplicateAfterA1A2A1Oscillation) {
  // The paper's §4.2 sequence: announcements A1, A2, A1 inside one flush
  // window net out to A1 — which a stateless router re-sends even though
  // the peer already holds A1 (AADup); a stateful router stays silent.
  for (bool stateless : {true, false}) {
    Net net;
    RouterConfig cfg = stateless ? Stateless() : RouterConfig{};
    cfg.packer.interval = Duration::Seconds(10);
    cfg.packer.discipline = bgp::TimerDiscipline::kUnjittered;
    Router& a = net.AddRouter("A", 100, cfg);
    Router& b = net.AddRouter("B", 200);
    net.Connect(a, b);
    net.Start();
    TapCounter b_tap;
    b_tap.Attach(b);

    a.Originate(LocalRoute("192.42.113.0/24"));  // A1
    net.Settle(Duration::Seconds(15));
    ASSERT_EQ(b_tap.announced, 1u);

    // A1 -> A2 -> A1 within one 10 s window.
    a.Originate(LocalRoute("192.42.113.0/24", {64512}));  // A2
    a.Originate(LocalRoute("192.42.113.0/24"));           // back to A1
    net.Settle(Duration::Seconds(15));
    if (stateless) {
      EXPECT_EQ(b_tap.announced, 2u) << "duplicate A1 expected";
    } else {
      EXPECT_EQ(b_tap.announced, 1u) << "stateful coalesces to silence";
    }
  }
}

TEST(Router, InternalResetVisibleOnlyWhenStateless) {
  for (bool stateless : {false, true}) {
    Net net;
    Router& a = net.AddRouter("A", 100,
                              stateless ? Stateless() : RouterConfig{});
    Router& b = net.AddRouter("B", 200);
    net.Connect(a, b);
    net.Start();
    TapCounter b_tap;
    b_tap.Attach(b);
    a.Originate(LocalRoute("192.42.113.0/24"));
    net.Settle();
    const auto base_announced = b_tap.announced;

    a.InternalReset();
    net.Settle();
    if (stateless) {
      EXPECT_GT(b_tap.announced, base_announced) << "AADup expected";
    } else {
      EXPECT_EQ(b_tap.announced, base_announced) << "coalesced to silence";
      EXPECT_EQ(b_tap.withdrawn, 0u);
    }
  }
}

TEST(Router, SprayWithdrawalsNoOpWhenStateful) {
  Net net;
  Router& a = net.AddRouter("A", 100);
  Router& b = net.AddRouter("B", 200);
  net.Connect(a, b);
  net.Start();
  TapCounter b_tap;
  b_tap.Attach(b);
  const std::vector<Prefix> targets = {P("1.0.0.0/8"), P("2.0.0.0/8")};
  a.SprayWithdrawals(targets);
  net.Settle();
  EXPECT_EQ(b_tap.withdrawn, 0u);
}

TEST(Router, TransparentModeKeepsPathAndNextHop) {
  Net net;
  RouterConfig rs_cfg;
  rs_cfg.transparent = true;
  Router& a = net.AddRouter("A", 100);
  Router& rs = net.AddRouter("RS", 7, rs_cfg);
  Router& b = net.AddRouter("B", 300);
  net.Connect(a, rs);
  net.Connect(rs, b);
  net.Start();
  a.Originate(LocalRoute("192.42.113.0/24"));
  net.Settle();
  const auto* best = b.rib().Best(P("192.42.113.0/24"));
  ASSERT_NE(best, nullptr);
  // The route server adds no AS hop and keeps A's next hop.
  EXPECT_EQ(best->attributes.as_path.ToString(), "100");
  EXPECT_EQ(best->attributes.next_hop, a.config().interface_addr);
}

TEST(Router, NoReexportCollectsButStaysSilent) {
  Net net;
  RouterConfig rs_cfg;
  rs_cfg.transparent = true;
  rs_cfg.no_reexport = true;
  Router& a = net.AddRouter("A", 100);
  Router& rs = net.AddRouter("RS", 7, rs_cfg);
  Router& b = net.AddRouter("B", 300);
  net.Connect(a, rs);
  net.Connect(rs, b);
  net.Start();
  a.Originate(LocalRoute("192.42.113.0/24"));
  net.Settle();
  EXPECT_NE(rs.rib().Best(P("192.42.113.0/24")), nullptr);
  EXPECT_EQ(b.rib().Best(P("192.42.113.0/24")), nullptr);
}

TEST(Router, DampeningSuppressesFlappingRoute) {
  Net net;
  RouterConfig damp_cfg;
  damp_cfg.enable_dampening = true;
  Router& a = net.AddRouter("A", 100);
  Router& b = net.AddRouter("B", 200, damp_cfg);
  net.Connect(a, b);
  net.Start();

  // Flap hard: announce/withdraw repeatedly with alternating paths (each
  // re-announcement is an attribute change, accumulating penalty).
  for (int i = 0; i < 12; ++i) {
    a.Originate(LocalRoute("192.42.113.0/24",
                           i % 2 ? std::vector<bgp::Asn>{64512}
                                 : std::vector<bgp::Asn>{}));
    net.Settle(Duration::Seconds(3));
  }
  EXPECT_GT(b.stats().damped_updates, 0u);
  // While suppressed, B does not use the route.
  EXPECT_EQ(b.rib().Best(P("192.42.113.0/24")), nullptr);
}

TEST(Router, CrashesUnderUpdateLoadAndReboots) {
  Net net;
  RouterConfig frail;
  frail.crash_backlog = Duration::Millis(300);
  frail.cost_per_prefix = Duration::Millis(2);
  frail.reboot_time = Duration::Seconds(30);
  Router& a = net.AddRouter("A", 100);
  Router& b = net.AddRouter("B", 200, frail);
  net.Connect(a, b);
  net.Start();

  // Blast updates: 500 prefixes at 2 ms each = 1 s of backlog >> 300 ms.
  for (int i = 0; i < 500; ++i) {
    a.Originate(LocalRoute("10." + std::to_string(i / 250) + "." +
                           std::to_string(i % 250) + ".0/24"));
  }
  net.Settle(Duration::Seconds(10));
  EXPECT_GE(b.stats().crashes, 1u);

  // While the table stays huge, every reboot re-triggers the crash: the
  // paper's route-flap-storm crashloop. Shrink the table so the re-dump
  // fits the router's capacity, then recovery must succeed.
  for (int i = 40; i < 500; ++i) {
    a.WithdrawLocal(P("10." + std::to_string(i / 250) + "." +
                      std::to_string(i % 250) + ".0/24"));
  }
  net.Settle(Duration::Minutes(10));
  EXPECT_FALSE(b.crashed());
  EXPECT_EQ(b.PeerSessionState(0), bgp::SessionState::kEstablished);
  EXPECT_EQ(b.rib().NumPrefixes(), 40u);
}

TEST(Router, UpdateTapSeesInboundUpdates) {
  Net net;
  Router& a = net.AddRouter("A", 100);
  Router& b = net.AddRouter("B", 200);
  net.Connect(a, b);
  net.Start();

  std::vector<bgp::Asn> tap_asns;
  b.SetUpdateTap([&tap_asns](TimePoint, bgp::PeerId, bgp::Asn asn,
                             const bgp::UpdateMessage&,
                             std::span<const std::uint8_t>,
                             const obs::CauseVec&) {
    tap_asns.push_back(asn);
  });
  a.Originate(LocalRoute("192.42.113.0/24"));
  net.Settle();
  ASSERT_FALSE(tap_asns.empty());
  EXPECT_EQ(tap_asns[0], 100u);
}

}  // namespace
}  // namespace iri::sim
