// Robustness properties of the session FSM and the outbound queue under
// randomized event sequences.
#include <gtest/gtest.h>

#include <set>

#include "bgp/session.h"
#include "bgp/update_packer.h"
#include "netbase/rng.h"

namespace iri::bgp {
namespace {

// Property: no sequence of events crashes the FSM, deadlines never recede
// into the deep past without being serviceable, and kSessionUp/kSessionDown
// strictly alternate.
class FsmFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FsmFuzz, RandomEventSequencesKeepInvariants) {
  Rng rng(GetParam());
  SessionConfig cfg;
  cfg.local_asn = 701;
  cfg.router_id = IPv4Address(1, 1, 1, 1);
  cfg.hold_time_s = 90;
  SessionFsm fsm(cfg);

  TimePoint now = TimePoint::Origin();
  bool up = false;  // tracked session state per Up/Down actions
  SessionFsm::Actions actions;

  OpenMessage open;
  open.asn = 1239;
  open.hold_time_s = 90;
  open.bgp_identifier = IPv4Address(2, 2, 2, 2);

  for (int step = 0; step < 5000; ++step) {
    now += Duration::Seconds(rng.Exponential(10.0));
    actions.clear();
    const SessionState before = fsm.state();
    switch (rng.Below(8)) {
      case 0: fsm.Start(now, actions); break;
      case 1: fsm.Stop(now, actions); break;
      case 2: fsm.OnTransportUp(now, actions); break;
      case 3: fsm.OnTransportDown(now, actions); break;
      case 4: fsm.OnMessage(now, open, actions); break;
      case 5: fsm.OnMessage(now, KeepAliveMessage{}, actions); break;
      case 6:
        fsm.OnMessage(now, UpdateMessage{}, actions);
        break;
      default: {
        const TimePoint deadline = fsm.NextDeadline();
        if (deadline != TimePoint::Max()) {
          now = std::max(now, deadline);
        }
        fsm.OnTimer(now, actions);
        break;
      }
    }
    // Every public event must move the session along a legal edge of the
    // transition matrix (the same matrix the FSM's runtime audit enforces).
    ASSERT_TRUE(IsLegalTransition(before, fsm.state()))
        << "illegal " << ToString(before) << " -> " << ToString(fsm.state())
        << " at step " << step;
    for (const auto& act : actions) {
      if (act.type == SessionFsm::ActionType::kSessionUp) {
        EXPECT_FALSE(up) << "double kSessionUp at step " << step;
        up = true;
      } else if (act.type == SessionFsm::ActionType::kSessionDown) {
        EXPECT_TRUE(up) << "kSessionDown without up at step " << step;
        up = false;
      }
    }
    // State/Up consistency: Established <=> up flag.
    EXPECT_EQ(fsm.state() == SessionState::kEstablished, up);
    // Deadlines are meaningful whenever the session is not idle.
    if (fsm.state() != SessionState::kIdle) {
      EXPECT_NE(fsm.NextDeadline(), TimePoint::Max());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FsmFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// Property: the outbound queue never loses a prefix — every enqueued prefix
// appears in the next flush exactly once (latest op wins).
class QueueFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QueueFuzz, FlushCoversExactlyThePendingPrefixes) {
  Rng rng(GetParam());
  PackerConfig cfg;
  cfg.interval = Duration::Seconds(30);
  cfg.discipline = (GetParam() % 2) ? TimerDiscipline::kUnjittered
                                    : TimerDiscipline::kJittered;
  OutboundQueue queue(cfg, GetParam());

  TimePoint now = TimePoint::Origin();
  for (int round = 0; round < 50; ++round) {
    std::set<Prefix> enqueued;
    const int ops = 1 + static_cast<int>(rng.Below(40));
    for (int i = 0; i < ops; ++i) {
      const Prefix prefix(
          IPv4Address((10u << 24) |
                      (static_cast<std::uint32_t>(rng.Below(12)) << 8)),
          24);
      RouteOp op;
      op.prefix = prefix;
      if (rng.Bernoulli(0.5)) {
        PathAttributes attrs;
        attrs.as_path = AsPath::Sequence({static_cast<Asn>(rng.Below(9) + 1)});
        op.attributes = std::move(attrs);
      }
      queue.Enqueue(now, op);
      enqueued.insert(prefix);
      now += Duration::Millis(static_cast<std::int64_t>(rng.Below(2000)));
    }
    ASSERT_EQ(queue.pending_ops(), enqueued.size());

    const TimePoint deadline = queue.NextFlush();
    ASSERT_NE(deadline, TimePoint::Max());
    now = std::max(now, deadline);
    const auto flushed = queue.Flush(now);
    std::set<Prefix> seen;
    for (const auto& op : flushed) {
      EXPECT_TRUE(seen.insert(op.prefix).second)
          << "duplicate " << op.prefix.ToString();
    }
    EXPECT_EQ(seen, enqueued);
    EXPECT_TRUE(queue.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueueFuzz, ::testing::Values(10, 11, 12, 13));

// Property: PackUpdates partitions ops exactly — every op appears in
// exactly one message, withdrawals as withdrawals, announcements under
// their own attributes, and every message encodes within the size cap.
class PackerFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PackerFuzz, PackingIsAPartition) {
  Rng rng(GetParam());
  std::vector<RouteOp> ops;
  const int n = 1 + static_cast<int>(rng.Below(800));
  std::set<Prefix> used;
  for (int i = 0; i < n; ++i) {
    Prefix prefix(IPv4Address(static_cast<std::uint32_t>(rng.Next())),
                  static_cast<std::uint8_t>(rng.Range(8, 28)));
    if (!used.insert(prefix).second) continue;
    RouteOp op;
    op.prefix = prefix;
    if (rng.Bernoulli(0.6)) {
      PathAttributes attrs;
      attrs.as_path = AsPath::Sequence({static_cast<Asn>(rng.Below(4) + 1)});
      attrs.next_hop = IPv4Address(10, 0, 0, static_cast<std::uint8_t>(rng.Below(3)));
      op.attributes = std::move(attrs);
    }
    ops.push_back(std::move(op));
  }

  const auto messages = PackUpdates(ops);
  std::set<Prefix> withdrawn_out, announced_out;
  for (const auto& msg : messages) {
    EXPECT_LE(Encode(msg).size(), kMaxMessageSize);
    for (const auto& p : msg.withdrawn) {
      EXPECT_TRUE(withdrawn_out.insert(p).second);
    }
    for (const auto& p : msg.nlri) {
      EXPECT_TRUE(announced_out.insert(p).second);
    }
  }
  std::set<Prefix> withdrawn_in, announced_in;
  for (const auto& op : ops) {
    (op.IsWithdraw() ? withdrawn_in : announced_in).insert(op.prefix);
  }
  EXPECT_EQ(withdrawn_out, withdrawn_in);
  EXPECT_EQ(announced_out, announced_in);

  // Attribute fidelity: every announced prefix's message carries its attrs.
  for (const auto& op : ops) {
    if (op.IsWithdraw()) continue;
    bool found = false;
    for (const auto& msg : messages) {
      for (const auto& p : msg.nlri) {
        if (p == op.prefix) {
          EXPECT_EQ(msg.attributes, *op.attributes);
          found = true;
        }
      }
    }
    EXPECT_TRUE(found);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PackerFuzz,
                         ::testing::Values(21, 22, 23, 24, 25));

}  // namespace
}  // namespace iri::bgp
