// Property tests for route flap dampening (RFC 2439 semantics): randomized
// flap histories drawn from seeded Xoshiro streams, with the draft's
// structural invariants asserted over every trajectory. Complements the
// example-based suite in bgp_dampening_test.cc.
#include "bgp/dampening.h"

#include <gtest/gtest.h>

#include <vector>

#include "netbase/rng.h"

namespace iri::bgp {
namespace {

constexpr int kTrials = 40;

const PrefixPeer kRoute{*Prefix::Parse("192.42.113.0/24"), 1};

TimePoint T(double seconds) {
  return TimePoint::Origin() + Duration::Seconds(seconds);
}

// Drives a random flap history (withdraw / re-announce / attribute change at
// random gaps) and returns the time of the last event.
double RandomHistory(Dampener& d, Rng& rng, int events) {
  double t = 0;
  for (int i = 0; i < events; ++i) {
    t += 1.0 + static_cast<double>(rng.Below(120'000)) / 1000.0;
    switch (rng.Below(3)) {
      case 0:
        d.OnWithdraw(kRoute, T(t));
        break;
      case 1:
        d.OnAnnounce(kRoute, T(t), /*attribute_change=*/false);
        break;
      default:
        d.OnAnnounce(kRoute, T(t), /*attribute_change=*/true);
        break;
    }
  }
  return t;
}

// After the last flap, the penalty is non-increasing in time and never
// exceeds the draft's ceiling.
TEST(DampeningProperty, PenaltyDecaysMonotonicallyAndRespectsCeiling) {
  for (int trial = 0; trial < kTrials; ++trial) {
    Rng rng(900 + static_cast<std::uint64_t>(trial));
    Dampener d;
    const double cap = d.params().MaxPenalty();
    const double end = RandomHistory(d, rng, 2 + static_cast<int>(rng.Below(30)));

    double prev = d.Penalty(kRoute, T(end));
    EXPECT_LE(prev, cap * (1 + 1e-9)) << "trial " << trial;
    double t = end;
    for (int step = 0; step < 50; ++step) {
      t += 1.0 + static_cast<double>(rng.Below(300'000)) / 1000.0;
      const double p = d.Penalty(kRoute, T(t));
      EXPECT_LE(p, prev * (1 + 1e-12) + 1e-9)
          << "trial " << trial << ": penalty rose without a flap at t=" << t;
      EXPECT_GE(p, 0.0);
      prev = p;
    }
  }
}

// Suppress/reuse hysteresis never inverts: scanning forward with no new
// flaps, a route released from suppression stays released, and while it is
// suppressed the decayed penalty sits at or above the reuse threshold.
TEST(DampeningProperty, HysteresisReleaseIsAbsorbing) {
  for (int trial = 0; trial < kTrials; ++trial) {
    Rng rng(7'000 + static_cast<std::uint64_t>(trial));
    // Short gaps so a good fraction of trials actually reach suppression.
    Dampener d;
    double t = 0;
    for (int i = 0; i < 2 + static_cast<int>(rng.Below(12)); ++i) {
      t += 1.0 + static_cast<double>(rng.Below(20'000)) / 1000.0;
      if (rng.Below(2) == 0) {
        d.OnWithdraw(kRoute, T(t));
      } else {
        d.OnAnnounce(kRoute, T(t), /*attribute_change=*/false);
      }
    }

    bool was_suppressed = d.IsSuppressed(kRoute, T(t));
    bool released = false;
    for (int step = 0; step < 200; ++step) {
      t += 30.0;
      const bool suppressed = d.IsSuppressed(kRoute, T(t));
      if (released) {
        EXPECT_FALSE(suppressed)
            << "trial " << trial << ": re-suppressed without a flap at t=" << t;
      }
      if (suppressed) {
        EXPECT_GE(d.Penalty(kRoute, T(t)),
                  d.params().reuse_threshold * (1 - 1e-9))
            << "trial " << trial
            << ": suppressed below the reuse threshold at t=" << t;
      }
      if (was_suppressed && !suppressed) released = true;
      was_suppressed = suppressed;
    }
    // The ceiling guarantees every suppression ends within max_hold_time of
    // the last flap; after the 200 * 30 s scan the route must be usable.
    EXPECT_FALSE(was_suppressed) << "trial " << trial;
  }
}

// A route can only enter suppression at the moment an update reports
// kSuppressed, and ReuseTime brackets the release.
TEST(DampeningProperty, ReuseTimeBracketsRelease) {
  for (int trial = 0; trial < kTrials; ++trial) {
    Rng rng(31'000 + static_cast<std::uint64_t>(trial));
    Dampener d;
    double t = 0;
    DampVerdict v = DampVerdict::kPass;
    for (int i = 0; i < 40 && v != DampVerdict::kSuppressed; ++i) {
      t += 1.0 + static_cast<double>(rng.Below(5'000)) / 1000.0;
      v = d.OnWithdraw(kRoute, T(t));
    }
    ASSERT_EQ(v, DampVerdict::kSuppressed) << "trial " << trial;

    const TimePoint reuse = d.ReuseTime(kRoute, T(t));
    EXPECT_TRUE(d.IsSuppressed(kRoute, reuse - Duration::Seconds(5)))
        << "trial " << trial;
    EXPECT_FALSE(d.IsSuppressed(kRoute, reuse + Duration::Seconds(5)))
        << "trial " << trial;
    // Release can never be later than the draft's maximum hold time.
    EXPECT_LE((reuse - T(t)).nanos(), d.params().max_hold_time.nanos())
        << "trial " << trial;
  }
}

// Sweep only drops cold state: after a sweep, live penalties are unchanged
// and anything still suppressed is still tracked.
TEST(DampeningProperty, SweepPreservesHotState) {
  for (int trial = 0; trial < kTrials; ++trial) {
    Rng rng(55'000 + static_cast<std::uint64_t>(trial));
    Dampener d;
    std::vector<PrefixPeer> keys;
    for (std::uint32_t i = 0; i < 8; ++i) {
      keys.push_back(PrefixPeer{
          Prefix(IPv4Address(10, 0, static_cast<std::uint8_t>(i), 0), 24),
          static_cast<PeerId>(i % 3)});
    }
    double t = 0;
    for (int i = 0; i < 60; ++i) {
      t += 1.0 + static_cast<double>(rng.Below(60'000)) / 1000.0;
      const PrefixPeer& key = keys[rng.Below(keys.size())];
      if (rng.Below(2) == 0) {
        d.OnWithdraw(key, T(t));
      } else {
        d.OnAnnounce(key, T(t), rng.Below(2) == 0);
      }
    }
    const double settle = t + static_cast<double>(rng.Below(3'600));

    std::vector<double> penalties;
    for (const PrefixPeer& key : keys) {
      penalties.push_back(d.Penalty(key, T(settle)));
    }
    d.Sweep(T(settle));
    const double floor = d.params().reuse_threshold / 2;
    for (std::size_t i = 0; i < keys.size(); ++i) {
      if (penalties[i] >= floor) {
        EXPECT_NEAR(d.Penalty(keys[i], T(settle)), penalties[i],
                    penalties[i] * 1e-9)
            << "trial " << trial << ": sweep disturbed hot route " << i;
      } else {
        EXPECT_EQ(d.Penalty(keys[i], T(settle)), 0.0)
            << "trial " << trial << ": sweep kept cold route " << i;
      }
    }
  }
}

}  // namespace
}  // namespace iri::bgp
