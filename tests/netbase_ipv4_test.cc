#include "netbase/ipv4.h"

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

namespace iri {
namespace {

TEST(IPv4Address, ParseValid) {
  auto a = IPv4Address::Parse("192.42.113.7");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->bits(), 0xC02A7107u);
  EXPECT_EQ(a->ToString(), "192.42.113.7");
}

TEST(IPv4Address, ParseBoundaries) {
  EXPECT_EQ(IPv4Address::Parse("0.0.0.0")->bits(), 0u);
  EXPECT_EQ(IPv4Address::Parse("255.255.255.255")->bits(), 0xFFFFFFFFu);
}

TEST(IPv4Address, ParseRejectsMalformed) {
  EXPECT_FALSE(IPv4Address::Parse(""));
  EXPECT_FALSE(IPv4Address::Parse("1.2.3"));
  EXPECT_FALSE(IPv4Address::Parse("1.2.3.4.5"));
  EXPECT_FALSE(IPv4Address::Parse("256.0.0.1"));
  EXPECT_FALSE(IPv4Address::Parse("1.2.3.256"));
  EXPECT_FALSE(IPv4Address::Parse("a.b.c.d"));
  EXPECT_FALSE(IPv4Address::Parse("1.2.3.4 "));
  EXPECT_FALSE(IPv4Address::Parse(" 1.2.3.4"));
  EXPECT_FALSE(IPv4Address::Parse("1..2.3"));
  EXPECT_FALSE(IPv4Address::Parse("-1.2.3.4"));
  EXPECT_FALSE(IPv4Address::Parse("1.2.3.+4"));
}

TEST(IPv4Address, ConstructorFromOctets) {
  constexpr IPv4Address a(10, 20, 30, 40);
  EXPECT_EQ(a.ToString(), "10.20.30.40");
}

TEST(IPv4Address, Ordering) {
  EXPECT_LT(IPv4Address(10, 0, 0, 0), IPv4Address(10, 0, 0, 1));
  EXPECT_LT(IPv4Address(9, 255, 255, 255), IPv4Address(10, 0, 0, 0));
}

TEST(Prefix, ParseAndFormat) {
  auto p = Prefix::Parse("192.42.113.0/24");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->length(), 24);
  EXPECT_EQ(p->ToString(), "192.42.113.0/24");
}

TEST(Prefix, ParseCanonicalizesHostBits) {
  auto p = Prefix::Parse("192.42.113.55/24");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->ToString(), "192.42.113.0/24");
}

TEST(Prefix, ParseRejectsMalformed) {
  EXPECT_FALSE(Prefix::Parse("192.42.113.0"));
  EXPECT_FALSE(Prefix::Parse("192.42.113.0/33"));
  EXPECT_FALSE(Prefix::Parse("192.42.113.0/"));
  EXPECT_FALSE(Prefix::Parse("/24"));
  EXPECT_FALSE(Prefix::Parse("192.42.113.0/24x"));
}

TEST(Prefix, ZeroLengthMatchesEverything) {
  const Prefix def(IPv4Address(1, 2, 3, 4), 0);
  EXPECT_EQ(def.bits(), 0u);  // canonicalized
  EXPECT_TRUE(def.Contains(IPv4Address(255, 255, 255, 255)));
  EXPECT_TRUE(def.Contains(IPv4Address(0, 0, 0, 0)));
}

TEST(Prefix, Contains) {
  const Prefix p = *Prefix::Parse("10.1.0.0/16");
  EXPECT_TRUE(p.Contains(IPv4Address(10, 1, 0, 0)));
  EXPECT_TRUE(p.Contains(IPv4Address(10, 1, 255, 255)));
  EXPECT_FALSE(p.Contains(IPv4Address(10, 2, 0, 0)));
  EXPECT_FALSE(p.Contains(IPv4Address(11, 1, 0, 0)));
}

TEST(Prefix, Covers) {
  const Prefix p16 = *Prefix::Parse("10.1.0.0/16");
  const Prefix p24 = *Prefix::Parse("10.1.3.0/24");
  const Prefix other = *Prefix::Parse("10.2.0.0/24");
  EXPECT_TRUE(p16.Covers(p24));
  EXPECT_TRUE(p16.Covers(p16));
  EXPECT_FALSE(p24.Covers(p16));
  EXPECT_FALSE(p16.Covers(other));
}

TEST(Prefix, HalvesAndParent) {
  const Prefix p = *Prefix::Parse("10.0.0.0/8");
  EXPECT_EQ(p.LowerHalf().ToString(), "10.0.0.0/9");
  EXPECT_EQ(p.UpperHalf().ToString(), "10.128.0.0/9");
  EXPECT_EQ(p.LowerHalf().Parent(), p);
  EXPECT_EQ(p.UpperHalf().Parent(), p);
}

TEST(Prefix, BitExtraction) {
  const Prefix p = *Prefix::Parse("128.0.0.0/1");
  EXPECT_TRUE(p.Bit(0));
  const Prefix q = *Prefix::Parse("64.0.0.0/2");
  EXPECT_FALSE(q.Bit(0));
  EXPECT_TRUE(q.Bit(1));
}

TEST(Prefix, OrderingIsTotal) {
  std::set<Prefix> set;
  set.insert(*Prefix::Parse("10.0.0.0/8"));
  set.insert(*Prefix::Parse("10.0.0.0/16"));
  set.insert(*Prefix::Parse("10.0.0.0/8"));
  EXPECT_EQ(set.size(), 2u);
}

TEST(Prefix, HashDistinguishesLengths) {
  std::unordered_set<Prefix> set;
  set.insert(*Prefix::Parse("10.0.0.0/8"));
  set.insert(*Prefix::Parse("10.0.0.0/16"));
  set.insert(*Prefix::Parse("10.0.0.0/24"));
  EXPECT_EQ(set.size(), 3u);
}

// Property sweep: parse(format(p)) == p across prefix lengths.
class PrefixRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(PrefixRoundTrip, FormatParseIdentity) {
  const int len = GetParam();
  const Prefix p(IPv4Address(0xC0A80000u | (len * 7)), static_cast<std::uint8_t>(len));
  auto reparsed = Prefix::Parse(p.ToString());
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(*reparsed, p);
}

INSTANTIATE_TEST_SUITE_P(AllLengths, PrefixRoundTrip, ::testing::Range(0, 33));

}  // namespace
}  // namespace iri
