#include "analysis/spectrum.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace iri::analysis {
namespace {

Series Sinusoid(double period, std::size_t n, double amplitude = 1.0,
                double phase = 0.0) {
  Series x;
  const double w = 2.0 * std::numbers::pi / period;
  for (std::size_t t = 0; t < n; ++t) {
    x.push_back(amplitude * std::sin(w * static_cast<double>(t) + phase));
  }
  return x;
}

// Frequency of the strongest peak, cycles/sample.
double PeakFrequency(const std::vector<SpectrumPoint>& spec) {
  double best_f = 0, best_p = -1;
  for (const auto& pt : spec) {
    if (pt.power > best_p) {
      best_p = pt.power;
      best_f = pt.frequency;
    }
  }
  return best_f;
}

TEST(Fft, NextPow2) {
  EXPECT_EQ(NextPow2(1), 1u);
  EXPECT_EQ(NextPow2(2), 2u);
  EXPECT_EQ(NextPow2(3), 4u);
  EXPECT_EQ(NextPow2(1000), 1024u);
}

TEST(Fft, ForwardMatchesAnalyticDft) {
  // FFT of a delta at n=0 is flat 1.
  std::vector<std::complex<double>> x(8, 0.0);
  x[0] = 1.0;
  Fft(x);
  for (const auto& c : x) {
    EXPECT_NEAR(c.real(), 1.0, 1e-12);
    EXPECT_NEAR(c.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, SingleToneLandsInOneBin) {
  const std::size_t n = 64;
  std::vector<std::complex<double>> x(n);
  for (std::size_t t = 0; t < n; ++t) {
    x[t] = std::cos(2.0 * std::numbers::pi * 5.0 * t / n);
  }
  Fft(x);
  // Energy concentrated in bins 5 and n-5.
  EXPECT_NEAR(std::abs(x[5]), n / 2.0, 1e-9);
  EXPECT_NEAR(std::abs(x[n - 5]), n / 2.0, 1e-9);
  EXPECT_NEAR(std::abs(x[4]), 0.0, 1e-9);
}

TEST(Fft, InverseRecoversInput) {
  std::vector<std::complex<double>> x;
  for (int i = 0; i < 32; ++i) x.emplace_back(std::sin(i * 0.7), i * 0.1);
  const auto original = x;
  Fft(x);
  Fft(x, /*inverse=*/true);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(x[i].real(), original[i].real(), 1e-10);
    EXPECT_NEAR(x[i].imag(), original[i].imag(), 1e-10);
  }
}

TEST(Correlogram, FindsSinusoidPeriod) {
  const Series x = Sinusoid(24.0, 24 * 40);
  auto spec = CorrelogramSpectrum(x, 128);
  EXPECT_NEAR(PeakFrequency(spec), 1.0 / 24.0, 0.005);
}

TEST(Correlogram, SeparatesWeeklyAndDailyPeaks) {
  // Hourly samples with 7-day and 24-hour components — the Figure 5 setup.
  const std::size_t n = 24 * 7 * 8;  // 8 weeks
  Series x(n, 0.0);
  const Series daily = Sinusoid(24.0, n, 1.0);
  const Series weekly = Sinusoid(24.0 * 7, n, 1.4);
  for (std::size_t i = 0; i < n; ++i) x[i] = daily[i] + weekly[i];

  auto spec = CorrelogramSpectrum(x, 400);
  auto peaks = FindPeaks(spec, 4);
  ASSERT_GE(peaks.size(), 2u);
  // Strongest two peaks at 1/168 and 1/24 cycles/hour, in some order.
  const double f1 = peaks[0].frequency, f2 = peaks[1].frequency;
  const double lo = std::min(f1, f2), hi = std::max(f1, f2);
  EXPECT_NEAR(lo, 1.0 / 168.0, 0.004);
  EXPECT_NEAR(hi, 1.0 / 24.0, 0.006);
}

TEST(Correlogram, WhiteNoiseIsFlatish) {
  Series x;
  std::uint64_t state = 777;
  for (int t = 0; t < 4096; ++t) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    x.push_back(static_cast<double>(state >> 11) / (1ULL << 53) - 0.5);
  }
  auto spec = CorrelogramSpectrum(x, 64);
  double max_p = 0, sum = 0;
  for (const auto& pt : spec) {
    max_p = std::max(max_p, pt.power);
    sum += pt.power;
  }
  const double mean_p = sum / static_cast<double>(spec.size());
  EXPECT_LT(max_p, 6.0 * mean_p);  // no dominant line
}

TEST(Correlogram, TooShortSeriesIsEmpty) {
  EXPECT_TRUE(CorrelogramSpectrum({1.0, 2.0}, 8).empty());
}

TEST(Burg, FitsAr1Process) {
  // x_t = 0.8 x_{t-1} + e_t.
  Series x;
  double prev = 0;
  std::uint64_t state = 42;
  for (int t = 0; t < 20000; ++t) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const double e = static_cast<double>(state >> 11) / (1ULL << 53) - 0.5;
    prev = 0.8 * prev + e;
    x.push_back(prev);
  }
  const BurgModel model = BurgFit(x, 1);
  ASSERT_EQ(model.coefficients.size(), 1u);
  EXPECT_NEAR(model.coefficients[0], 0.8, 0.03);
  EXPECT_GT(model.noise_variance, 0.0);
}

TEST(Burg, SpectrumPeaksAtSinusoidFrequency) {
  Series x = Sinusoid(24.0, 24 * 30);
  // Add light noise so the AR fit stays numerically sane.
  std::uint64_t state = 5;
  for (double& v : x) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    v += 0.01 * (static_cast<double>(state >> 11) / (1ULL << 53) - 0.5);
  }
  auto spec = MemSpectrum(x, 24, 512);
  EXPECT_NEAR(PeakFrequency(spec), 1.0 / 24.0, 0.005);
}

TEST(Burg, DegenerateInputs) {
  EXPECT_TRUE(BurgFit({}, 4).coefficients.empty());
  EXPECT_TRUE(BurgFit({1.0}, 4).coefficients.empty());
  // Order clamped to n-1.
  const BurgModel m = BurgFit({1.0, 2.0, 1.5}, 10);
  EXPECT_LE(m.coefficients.size(), 2u);
}

TEST(FindPeaks, OrdersByPowerAndCaps) {
  std::vector<SpectrumPoint> spec;
  for (int i = 0; i < 100; ++i) {
    double p = 1.0;
    if (i == 20) p = 10.0;
    if (i == 50) p = 30.0;
    if (i == 80) p = 20.0;
    spec.push_back({i / 200.0, p});
  }
  auto peaks = FindPeaks(spec, 2);
  ASSERT_EQ(peaks.size(), 2u);
  EXPECT_DOUBLE_EQ(peaks[0].power, 30.0);
  EXPECT_DOUBLE_EQ(peaks[1].power, 20.0);
}

}  // namespace
}  // namespace iri::analysis
