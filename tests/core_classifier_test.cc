// The taxonomy classifier is the heart of the reproduction: every table and
// figure depends on these transitions being exactly right.
#include "core/classifier.h"

#include <gtest/gtest.h>

namespace iri::core {
namespace {

Prefix P(const std::string& s) { return *Prefix::Parse(s); }

bgp::PathAttributes Attrs(std::vector<bgp::Asn> path,
                          std::uint32_t next_hop_octet = 1,
                          std::optional<std::uint32_t> med = std::nullopt) {
  bgp::PathAttributes a;
  a.as_path = bgp::AsPath::Sequence(std::move(path));
  a.next_hop = IPv4Address(10, 0, 0, static_cast<std::uint8_t>(next_hop_octet));
  a.med = med;
  return a;
}

UpdateEvent Announce(const std::string& prefix, bgp::PathAttributes attrs,
                     bgp::PeerId peer = 1, double t = 0) {
  UpdateEvent ev;
  ev.time = TimePoint::Origin() + Duration::Seconds(t);
  ev.peer = peer;
  ev.peer_asn = 100 + peer;
  ev.prefix = P(prefix);
  ev.attributes = std::move(attrs);
  return ev;
}

UpdateEvent Withdraw(const std::string& prefix, bgp::PeerId peer = 1,
                     double t = 0) {
  UpdateEvent ev;
  ev.time = TimePoint::Origin() + Duration::Seconds(t);
  ev.peer = peer;
  ev.peer_asn = 100 + peer;
  ev.is_withdraw = true;
  ev.prefix = P(prefix);
  return ev;
}

TEST(Classifier, FirstAnnouncementIsInitial) {
  Classifier c;
  auto out = c.Classify(Announce("10.0.0.0/8", Attrs({701})));
  EXPECT_EQ(out.category, Category::kInitial);
}

TEST(Classifier, IdenticalReannouncementIsAADup) {
  Classifier c;
  c.Classify(Announce("10.0.0.0/8", Attrs({701})));
  auto out = c.Classify(Announce("10.0.0.0/8", Attrs({701})));
  EXPECT_EQ(out.category, Category::kAADup);
  EXPECT_FALSE(out.policy_fluctuation);
}

TEST(Classifier, TupleIdenticalAttributeChangeIsPolicyFluctuation) {
  Classifier c;
  c.Classify(Announce("10.0.0.0/8", Attrs({701})));
  // Same (prefix, next hop, path), different MED: AADup carrying a policy
  // fluctuation — the paper's distinction in §4.1.
  auto out = c.Classify(Announce("10.0.0.0/8", Attrs({701}, 1, 30)));
  EXPECT_EQ(out.category, Category::kAADup);
  EXPECT_TRUE(out.policy_fluctuation);
}

TEST(Classifier, PathChangeIsAADiff) {
  Classifier c;
  c.Classify(Announce("10.0.0.0/8", Attrs({701})));
  auto out = c.Classify(Announce("10.0.0.0/8", Attrs({701, 1239})));
  EXPECT_EQ(out.category, Category::kAADiff);
}

TEST(Classifier, NextHopChangeIsAADiff) {
  Classifier c;
  c.Classify(Announce("10.0.0.0/8", Attrs({701}, 1)));
  auto out = c.Classify(Announce("10.0.0.0/8", Attrs({701}, 2)));
  EXPECT_EQ(out.category, Category::kAADiff);
}

TEST(Classifier, WithdrawalOfAnnouncedRouteIsWithdraw) {
  Classifier c;
  c.Classify(Announce("10.0.0.0/8", Attrs({701})));
  auto out = c.Classify(Withdraw("10.0.0.0/8"));
  EXPECT_EQ(out.category, Category::kWithdraw);
}

TEST(Classifier, ReannounceSameRouteAfterWithdrawIsWADup) {
  Classifier c;
  c.Classify(Announce("10.0.0.0/8", Attrs({701})));
  c.Classify(Withdraw("10.0.0.0/8"));
  auto out = c.Classify(Announce("10.0.0.0/8", Attrs({701})));
  EXPECT_EQ(out.category, Category::kWADup);
}

TEST(Classifier, ReannounceDifferentRouteAfterWithdrawIsWADiff) {
  Classifier c;
  c.Classify(Announce("10.0.0.0/8", Attrs({701})));
  c.Classify(Withdraw("10.0.0.0/8"));
  auto out = c.Classify(Announce("10.0.0.0/8", Attrs({1239, 9})));
  EXPECT_EQ(out.category, Category::kWADiff);
}

TEST(Classifier, WithdrawalOfUnknownRouteIsWWDup) {
  Classifier c;
  auto out = c.Classify(Withdraw("192.42.113.0/24"));
  EXPECT_EQ(out.category, Category::kWWDup);
}

TEST(Classifier, RepeatedWithdrawalsAreWWDup) {
  Classifier c;
  c.Classify(Announce("10.0.0.0/8", Attrs({701})));
  c.Classify(Withdraw("10.0.0.0/8"));
  for (int i = 0; i < 5; ++i) {
    auto out = c.Classify(Withdraw("10.0.0.0/8"));
    EXPECT_EQ(out.category, Category::kWWDup);
  }
  EXPECT_EQ(c.totals()[static_cast<std::size_t>(Category::kWWDup)], 5u);
}

TEST(Classifier, PaperTwoMinuteTrace) {
  // The §4.1 example: ISP-X is the only announcer of 192.42.113/24; ISP-Y
  // repeatedly withdraws it without ever having announced it.
  Classifier c;
  constexpr bgp::PeerId kIspX = 1, kIspY = 2;
  c.Classify(Announce("192.42.113.0/24", Attrs({9}), kIspX));
  for (int i = 0; i < 6; ++i) {
    auto out = c.Classify(Withdraw("192.42.113.0/24", kIspY, 10.0 * i));
    EXPECT_EQ(out.category, Category::kWWDup) << "withdrawal " << i;
  }
  // ISP-X's own state is untouched by ISP-Y's pathology.
  auto out = c.Classify(Announce("192.42.113.0/24", Attrs({9}), kIspX));
  EXPECT_EQ(out.category, Category::kAADup);
}

TEST(Classifier, PerPeerStateIsIndependent) {
  Classifier c;
  c.Classify(Announce("10.0.0.0/8", Attrs({701}), 1));
  auto out = c.Classify(Announce("10.0.0.0/8", Attrs({1239}), 2));
  EXPECT_EQ(out.category, Category::kInitial);  // first from peer 2
  EXPECT_EQ(c.TrackedRoutes(), 2u);
}

TEST(Classifier, WADupComparesAgainstPreWithdrawalRoute) {
  Classifier c;
  c.Classify(Announce("10.0.0.0/8", Attrs({701, 9})));
  c.Classify(Withdraw("10.0.0.0/8"));
  c.Classify(Withdraw("10.0.0.0/8"));  // WWDup in between must not disturb
  auto out = c.Classify(Announce("10.0.0.0/8", Attrs({701, 9})));
  EXPECT_EQ(out.category, Category::kWADup);
}

TEST(Classifier, OscillationSequenceClassifiesAlternately) {
  // A1 A2 A1 A2: after the initial, every flip is AADiff.
  Classifier c;
  const auto a1 = Attrs({701, 9});
  const auto a2 = Attrs({701, 1239, 9});
  c.Classify(Announce("10.0.0.0/8", a1));
  EXPECT_EQ(c.Classify(Announce("10.0.0.0/8", a2)).category,
            Category::kAADiff);
  EXPECT_EQ(c.Classify(Announce("10.0.0.0/8", a1)).category,
            Category::kAADiff);
  EXPECT_EQ(c.Classify(Announce("10.0.0.0/8", a2)).category,
            Category::kAADiff);
}

TEST(Classifier, TotalsAccumulate) {
  Classifier c;
  c.Classify(Announce("10.0.0.0/8", Attrs({701})));   // Initial
  c.Classify(Announce("10.0.0.0/8", Attrs({701})));   // AADup
  c.Classify(Withdraw("10.0.0.0/8"));                 // Withdraw
  c.Classify(Announce("10.0.0.0/8", Attrs({701})));   // WADup
  c.Classify(Withdraw("11.0.0.0/8"));                 // WWDup
  const auto& t = c.totals();
  EXPECT_EQ(t[static_cast<std::size_t>(Category::kInitial)], 1u);
  EXPECT_EQ(t[static_cast<std::size_t>(Category::kAADup)], 1u);
  EXPECT_EQ(t[static_cast<std::size_t>(Category::kWithdraw)], 1u);
  EXPECT_EQ(t[static_cast<std::size_t>(Category::kWADup)], 1u);
  EXPECT_EQ(t[static_cast<std::size_t>(Category::kWWDup)], 1u);
}

TEST(Classifier, ResetClearsState) {
  Classifier c;
  c.Classify(Announce("10.0.0.0/8", Attrs({701})));
  c.Reset();
  EXPECT_EQ(c.TrackedRoutes(), 0u);
  auto out = c.Classify(Announce("10.0.0.0/8", Attrs({701})));
  EXPECT_EQ(out.category, Category::kInitial);
}

TEST(Classifier, CategoryPredicates) {
  EXPECT_TRUE(IsInstability(Category::kWADiff));
  EXPECT_TRUE(IsInstability(Category::kAADiff));
  EXPECT_TRUE(IsInstability(Category::kWADup));
  EXPECT_FALSE(IsInstability(Category::kAADup));
  EXPECT_FALSE(IsInstability(Category::kWWDup));
  EXPECT_TRUE(IsPathology(Category::kAADup));
  EXPECT_TRUE(IsPathology(Category::kWWDup));
  EXPECT_FALSE(IsPathology(Category::kWithdraw));
  EXPECT_FALSE(IsPathology(Category::kInitial));
}

TEST(Classifier, ToStringCoversAllCategories) {
  EXPECT_STREQ(ToString(Category::kWADiff), "WADiff");
  EXPECT_STREQ(ToString(Category::kAADiff), "AADiff");
  EXPECT_STREQ(ToString(Category::kWADup), "WADup");
  EXPECT_STREQ(ToString(Category::kAADup), "AADup");
  EXPECT_STREQ(ToString(Category::kWWDup), "WWDup");
  EXPECT_STREQ(ToString(Category::kWithdraw), "Withdraw");
  EXPECT_STREQ(ToString(Category::kInitial), "Initial");
}

TEST(ExplodeUpdate, FlattensWithdrawalsFirst) {
  bgp::UpdateMessage u;
  u.withdrawn = {P("10.0.0.0/8"), P("11.0.0.0/8")};
  u.attributes = Attrs({701});
  u.nlri = {P("12.0.0.0/8")};
  std::vector<UpdateEvent> events;
  ExplodeUpdate(TimePoint::Origin() + Duration::Seconds(9), 3, 103, u,
                events);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_TRUE(events[0].is_withdraw);
  EXPECT_TRUE(events[1].is_withdraw);
  EXPECT_FALSE(events[2].is_withdraw);
  EXPECT_EQ(events[2].prefix, P("12.0.0.0/8"));
  EXPECT_EQ(events[2].attributes, u.attributes);
  for (const auto& ev : events) {
    EXPECT_EQ(ev.peer, 3u);
    EXPECT_EQ(ev.peer_asn, 103u);
    EXPECT_EQ(ev.time, TimePoint::Origin() + Duration::Seconds(9));
  }
}

}  // namespace
}  // namespace iri::core
