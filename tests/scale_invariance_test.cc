// Scale invariance of the reproduction (the tentpole's guard rail): the
// Table-1 category *shares* are a property of the instability mechanisms,
// not of the universe size, so running the same seed at different
// scale_denominator values must reproduce the same mix. This is what makes
// the cheap CI-scale runs (1/64) evidence about the full-paper-scale
// configuration (bench/full_paper.cc at scale_denominator = 1): if shares
// drifted with scale, small-scale results would say nothing about Table 1.
//
// Absolute magnitudes DO scale (that's the point of the knob) — only the
// normalized shares are compared, and with a loose tolerance: the two runs
// draw different event streams from the same processes, so the shares are
// two finite samples of the same underlying mix, not the same bytes.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>

#include "core/classifier.h"
#include "workload/scenario.h"

namespace iri {
namespace {

using Shares = std::array<double, core::kNumCategories>;

Shares RunShares(double scale_denominator) {
  workload::ScenarioConfig cfg;
  cfg.topology.scale = 1.0 / scale_denominator;
  cfg.topology.num_providers = 12;
  cfg.topology.seed = 1996;
  cfg.seed = 1997;
  cfg.duration = Duration::Days(1);
  cfg.series_flush_interval = Duration();  // pure classification run
  workload::ExchangeScenario scenario(cfg);
  scenario.Run();

  const auto& totals = scenario.monitor().classifier().totals();
  double total = 0;
  for (const auto count : totals) total += static_cast<double>(count);
  Shares shares{};
  EXPECT_GT(total, 1000) << "scale 1/" << scale_denominator
                         << " produced too few events to compare mixes";
  for (std::size_t c = 0; c < core::kNumCategories; ++c) {
    shares[c] = static_cast<double>(totals[c]) / total;
  }
  return shares;
}

TEST(ScaleInvariance, Table1SharesAgreeAcrossScales) {
  const Shares coarse = RunShares(64);
  const Shares fine = RunShares(8);

  for (std::size_t c = 0; c < core::kNumCategories; ++c) {
    const auto category = static_cast<core::Category>(c);
    std::printf("%-8s 1/64: %6.2f%%   1/8: %6.2f%%\n",
                core::ToString(category), 100 * coarse[c], 100 * fine[c]);
    // Absolute share tolerance: generous enough for two independent finite
    // samples, tight enough that a mechanism switching on or off with
    // scale (the failure this test exists to catch) blows straight
    // through it.
    EXPECT_NEAR(coarse[c], fine[c], 0.06)
        << core::ToString(category) << " share changed with scale";
  }

  // The paper's headline ordering must hold at both scales: pathological
  // withdrawals (WWDup) dominate the stream.
  const auto wwdup = static_cast<std::size_t>(core::Category::kWWDup);
  for (std::size_t c = 0; c < core::kNumCategories; ++c) {
    if (c == wwdup) continue;
    EXPECT_GT(coarse[wwdup], coarse[c]) << "WWDup not dominant at 1/64";
    EXPECT_GT(fine[wwdup], fine[c]) << "WWDup not dominant at 1/8";
  }
}

}  // namespace
}  // namespace iri
