// Pins the BENCH_*.json shapes emitted through bench/bench_json.h — the
// exact bytes tools/bench/compare.py parses. If JsonWriter's formatting or
// either bench's field layout drifts, the committed baselines under
// bench/baseline/ stop diffing cleanly and compare.py may stop recognizing
// the document; this test fails first.
#include "../bench/bench_json.h"

#include <gtest/gtest.h>

#include <string>

namespace iri::bench {
namespace {

TEST(BenchJson, ScalarsAndNesting) {
  JsonWriter json;
  json.BeginObject()
      .Field("name", "x")
      .Field("count", std::uint64_t{7})
      .Field("threads", 2)
      .Field("enabled", true)
      .Field("ratio", 1.23456, 3);
  json.BeginObject("nested").Field("k", 1).EndObject();
  json.EndObject();
  EXPECT_EQ(json.str(),
            "{\n"
            "  \"name\": \"x\",\n"
            "  \"count\": 7,\n"
            "  \"threads\": 2,\n"
            "  \"enabled\": true,\n"
            "  \"ratio\": 1.235,\n"
            "  \"nested\": {\n"
            "    \"k\": 1\n"
            "  }\n"
            "}");
}

TEST(BenchJson, EmptyContainers) {
  JsonWriter json;
  json.BeginObject();
  json.BeginArray("runs").EndArray();
  json.BeginObject("empty").EndObject();
  json.EndObject();
  EXPECT_EQ(json.str(),
            "{\n"
            "  \"runs\": [],\n"
            "  \"empty\": {}\n"
            "}");
}

// The parallel_scaling shape: compare.py keys on doc["runs"][i]["threads"]
// and reads doc["runs"][i]["updates_per_sec"] as higher-is-better.
TEST(BenchJson, ParallelScalingRunsShape) {
  JsonWriter json;
  json.BeginObject().Field("bench", "parallel_scaling");
  json.BeginArray("runs");
  json.BeginObject(nullptr, /*compact=*/true)
      .Field("threads", 1)
      .Field("seconds", 2.5, 4)
      .Field("updates", std::uint64_t{1000})
      .Field("updates_per_sec", 400.0, 1)
      .EndObject();
  json.BeginObject(nullptr, /*compact=*/true)
      .Field("threads", 2)
      .Field("seconds", 1.5, 4)
      .Field("updates", std::uint64_t{1000})
      .Field("updates_per_sec", 666.7, 1)
      .EndObject();
  json.EndArray();
  json.Field("speedup_vs_serial", 1.667, 3).EndObject();
  EXPECT_EQ(
      json.str(),
      "{\n"
      "  \"bench\": \"parallel_scaling\",\n"
      "  \"runs\": [\n"
      "    {\"threads\": 1, \"seconds\": 2.5000, \"updates\": 1000, "
      "\"updates_per_sec\": 400.0},\n"
      "    {\"threads\": 2, \"seconds\": 1.5000, \"updates\": 1000, "
      "\"updates_per_sec\": 666.7}\n"
      "  ],\n"
      "  \"speedup_vs_serial\": 1.667\n"
      "}");
}

// The full_paper shape: compare.py iterates doc["metrics"], taking the
// direction from each entry's own higher_is_better flag.
TEST(BenchJson, FullPaperMetricsShape) {
  JsonWriter json;
  json.BeginObject().Field("bench", "full_paper");
  json.BeginArray("metrics");
  json.BeginObject(nullptr, /*compact=*/true)
      .Field("name", "seconds_per_simday")
      .Field("value", 6.9, 3)
      .Field("higher_is_better", false)
      .EndObject();
  json.BeginObject(nullptr, /*compact=*/true)
      .Field("name", "updates_per_sec")
      .Field("value", 183000.5, 1)
      .Field("higher_is_better", true)
      .EndObject();
  json.EndArray().EndObject();
  EXPECT_EQ(
      json.str(),
      "{\n"
      "  \"bench\": \"full_paper\",\n"
      "  \"metrics\": [\n"
      "    {\"name\": \"seconds_per_simday\", \"value\": 6.900, "
      "\"higher_is_better\": false},\n"
      "    {\"name\": \"updates_per_sec\", \"value\": 183000.5, "
      "\"higher_is_better\": true}\n"
      "  ]\n"
      "}");
}

}  // namespace
}  // namespace iri::bench
