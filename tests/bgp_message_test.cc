#include "bgp/message.h"

#include <gtest/gtest.h>

#include "netbase/rng.h"

namespace iri::bgp {
namespace {

Prefix P(const std::string& s) { return *Prefix::Parse(s); }

PathAttributes SampleAttrs() {
  PathAttributes a;
  a.origin = Origin::kIgp;
  a.as_path = AsPath::Sequence({701, 1239, 3561});
  a.next_hop = IPv4Address(198, 32, 1, 10);
  a.med = 50;
  a.communities = {0x02BD0001, 0x02BD0002};
  return a;
}

TEST(MessageCodec, KeepAliveRoundTrip) {
  const auto wire = Encode(KeepAliveMessage{});
  EXPECT_EQ(wire.size(), kHeaderSize);
  auto decoded = Decode(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(std::holds_alternative<KeepAliveMessage>(*decoded));
}

TEST(MessageCodec, OpenRoundTrip) {
  OpenMessage open;
  open.asn = 701;
  open.hold_time_s = 90;
  open.bgp_identifier = IPv4Address(137, 39, 1, 1);
  auto decoded = Decode(Encode(open));
  ASSERT_TRUE(decoded.has_value());
  const auto& got = std::get<OpenMessage>(*decoded);
  EXPECT_EQ(got, open);
}

TEST(MessageCodec, NotificationRoundTrip) {
  NotificationMessage notif{NotifyCode::kHoldTimerExpired, 0};
  auto decoded = Decode(Encode(notif));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(std::get<NotificationMessage>(*decoded), notif);
}

TEST(MessageCodec, UpdateRoundTripFull) {
  UpdateMessage u;
  u.withdrawn = {P("192.42.113.0/24"), P("10.0.0.0/8")};
  u.attributes = SampleAttrs();
  u.nlri = {P("204.0.0.0/16"), P("204.1.2.0/24"), P("204.1.2.128/25")};
  auto decoded = Decode(Encode(u));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(std::get<UpdateMessage>(*decoded), u);
}

TEST(MessageCodec, WithdrawOnlyUpdateHasNoAttributes) {
  UpdateMessage u;
  u.withdrawn = {P("192.42.113.0/24")};
  const auto wire = Encode(u);
  auto decoded = Decode(wire);
  ASSERT_TRUE(decoded.has_value());
  const auto& got = std::get<UpdateMessage>(*decoded);
  EXPECT_EQ(got.withdrawn, u.withdrawn);
  EXPECT_TRUE(got.nlri.empty());
}

TEST(MessageCodec, EmptyUpdateIsLegal) {
  auto decoded = Decode(Encode(UpdateMessage{}));
  ASSERT_TRUE(decoded.has_value());
  const auto& got = std::get<UpdateMessage>(*decoded);
  EXPECT_TRUE(got.withdrawn.empty());
  EXPECT_TRUE(got.nlri.empty());
}

TEST(MessageCodec, RejectsBadMarker) {
  auto wire = Encode(KeepAliveMessage{});
  wire[3] = 0x00;
  EXPECT_FALSE(Decode(wire).has_value());
}

TEST(MessageCodec, RejectsLengthMismatch) {
  auto wire = Encode(KeepAliveMessage{});
  wire.push_back(0);  // trailing garbage
  EXPECT_FALSE(Decode(wire).has_value());
}

TEST(MessageCodec, RejectsTruncatedHeader) {
  auto wire = Encode(KeepAliveMessage{});
  wire.resize(10);
  EXPECT_FALSE(Decode(wire).has_value());
}

TEST(MessageCodec, RejectsUnknownType) {
  auto wire = Encode(KeepAliveMessage{});
  wire[18] = 9;  // type byte
  EXPECT_FALSE(Decode(wire).has_value());
}

TEST(MessageCodec, RejectsKeepAliveWithBody) {
  auto wire = Encode(KeepAliveMessage{});
  // Grow the body by one byte and fix the length field.
  wire.push_back(0);
  wire[16] = 0;
  wire[17] = static_cast<std::uint8_t>(wire.size());
  EXPECT_FALSE(Decode(wire).has_value());
}

TEST(MessageCodec, RejectsTruncatedUpdateBody) {
  UpdateMessage u;
  u.withdrawn = {P("10.0.0.0/8"), P("11.0.0.0/8")};
  auto wire = Encode(u);
  // Chop one byte off the body and patch the length.
  wire.pop_back();
  wire[16] = static_cast<std::uint8_t>(wire.size() >> 8);
  wire[17] = static_cast<std::uint8_t>(wire.size());
  EXPECT_FALSE(Decode(wire).has_value());
}

TEST(MessageCodec, RejectsBadNotificationCode) {
  auto wire = Encode(NotificationMessage{NotifyCode::kCease, 0});
  wire[19] = 0;  // code 0 invalid
  EXPECT_FALSE(Decode(wire).has_value());
}

TEST(NlriCodec, EncodesMinimalBytes) {
  ByteWriter w;
  EncodeNlriPrefix(P("10.0.0.0/8"), w);
  EXPECT_EQ(w.size(), 2u);  // length octet + 1 address byte
  ByteWriter w2;
  EncodeNlriPrefix(P("10.1.0.0/16"), w2);
  EXPECT_EQ(w2.size(), 3u);
  ByteWriter w3;
  EncodeNlriPrefix(P("0.0.0.0/0"), w3);
  EXPECT_EQ(w3.size(), 1u);
}

TEST(NlriCodec, RejectsOverlongPrefix) {
  const std::uint8_t bad[] = {33, 1, 2, 3, 4, 5};
  ByteReader r(bad);
  EXPECT_FALSE(DecodeNlriPrefix(r).has_value());
  EXPECT_FALSE(r.ok());
}

// Property: NLRI round-trips for every prefix length.
class NlriRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(NlriRoundTrip, Identity) {
  const auto len = static_cast<std::uint8_t>(GetParam());
  const Prefix p(IPv4Address(0xDEADBEEF), len);
  ByteWriter w;
  EncodeNlriPrefix(p, w);
  ByteReader r(w.data());
  auto decoded = DecodeNlriPrefix(r);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, p);
  EXPECT_EQ(r.remaining(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllLengths, NlriRoundTrip, ::testing::Range(0, 33));

TEST(MessageCodec, EstimateBoundsActualSize) {
  Rng rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    UpdateMessage u;
    const int nw = static_cast<int>(rng.Below(40));
    for (int i = 0; i < nw; ++i) {
      u.withdrawn.push_back(Prefix(
          IPv4Address(static_cast<std::uint32_t>(rng.Next())),
          static_cast<std::uint8_t>(rng.Range(8, 28))));
    }
    const int na = static_cast<int>(rng.Below(40));
    if (na > 0) u.attributes = SampleAttrs();
    for (int i = 0; i < na; ++i) {
      u.nlri.push_back(Prefix(
          IPv4Address(static_cast<std::uint32_t>(rng.Next())),
          static_cast<std::uint8_t>(rng.Range(8, 28))));
    }
    EXPECT_GE(EstimateUpdateSize(u), Encode(u).size());
  }
}

// Fuzz: random bytes with a valid marker/length frame never crash the
// decoder, and decode(encode(x)) == x for random structured updates.
TEST(MessageCodec, FuzzRandomBodiesDoNotCrash) {
  Rng rng(99);
  for (int trial = 0; trial < 2000; ++trial) {
    const std::size_t body = rng.Below(64);
    std::vector<std::uint8_t> wire(kHeaderSize + body);
    for (std::size_t i = 0; i < 16; ++i) wire[i] = 0xFF;
    wire[16] = static_cast<std::uint8_t>(wire.size() >> 8);
    wire[17] = static_cast<std::uint8_t>(wire.size());
    wire[18] = static_cast<std::uint8_t>(1 + rng.Below(4));
    for (std::size_t i = kHeaderSize; i < wire.size(); ++i) {
      wire[i] = static_cast<std::uint8_t>(rng.Below(256));
    }
    (void)Decode(wire);  // must not crash; result validity is unspecified
  }
}

TEST(MessageCodec, ToStringSmoke) {
  UpdateMessage u;
  u.withdrawn = {P("10.0.0.0/8")};
  u.attributes = SampleAttrs();
  u.nlri = {P("204.0.0.0/16")};
  const std::string s = ToString(Message{u});
  EXPECT_NE(s.find("UPDATE"), std::string::npos);
  EXPECT_NE(s.find("10.0.0.0/8"), std::string::npos);
  EXPECT_NE(s.find("204.0.0.0/16"), std::string::npos);
}

}  // namespace
}  // namespace iri::bgp
