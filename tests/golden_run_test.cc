// Golden-run regression suite: three canonical multi-exchange scenarios,
// each locked to a committed digest (CRC-32 of the merged MRT byte stream
// plus the classifier bin counts) in tests/golden/. Every scenario is
// replayed at 1, 2 and 4 worker threads; all runs must reproduce the
// committed digest byte for byte, which pins two claims at once:
//
//   1. behaviour: no code change may silently move any scenario output;
//   2. determinism: the parallel multi-exchange runner's output is
//      independent of thread count and interleaving.
//
// Intentional behaviour changes re-bless the digests with:
//
//   ./golden_run_test --regen
//
// which rewrites tests/golden/*.digest in the source tree (commit the diff
// and explain the behaviour change in the PR). The determinism assertions
// still run under --regen.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/provenance.h"
#include "workload/multi_exchange_runner.h"

#ifndef IRI_GOLDEN_DIR
#error "IRI_GOLDEN_DIR must point at tests/golden (set by tests/CMakeLists.txt)"
#endif

namespace iri::workload {
namespace {

bool g_regen = false;

struct GoldenCase {
  const char* name;
  MultiExchangeConfig (*make)();
  // Expected health.storm.starts in the merged snapshot: 0 = the storm
  // detector must stay quiet, 1 = it must fire at least once, -1 = unpinned.
  int storms;
};

// Value of `counter <name> <n>` in the digest's embedded metrics snapshot;
// ~0 when the counter is missing entirely.
std::uint64_t DigestCounter(const std::string& digest,
                            const std::string& name) {
  const std::string key = "counter " + name + " ";
  const auto pos = digest.find(key);
  if (pos == std::string::npos) return ~std::uint64_t{0};
  return std::strtoull(digest.c_str() + pos + key.size(), nullptr, 10);
}

// Small on purpose: each scenario runs three times per suite invocation
// (and again under TSan in CI). Shapes cover the single-exchange classic,
// the paper's five-collector campaign, and the pathological Provider-I day.
MultiExchangeConfig BaselineSingle() {
  MultiExchangeConfig cfg;
  cfg.scenario.topology.scale = 1.0 / 256;
  cfg.scenario.topology.num_providers = 6;
  cfg.scenario.topology.seed = 1996;
  cfg.scenario.seed = 42;
  cfg.scenario.num_exchanges = 1;
  cfg.scenario.duration = Duration::Hours(6);
  return cfg;
}

MultiExchangeConfig FiveExchange() {
  MultiExchangeConfig cfg;
  cfg.scenario.topology.scale = 1.0 / 256;
  cfg.scenario.topology.num_providers = 8;
  cfg.scenario.topology.seed = 1997;
  cfg.scenario.seed = 5;
  cfg.scenario.num_exchanges = 5;
  cfg.scenario.duration = Duration::Hours(4);
  return cfg;
}

// The tentpole's smoke guard: the paper corpus shape itself —
// scale_denominator = 1 (the full 42k-prefix universe), 16 providers, all
// five collectors — over a window short enough for CI. Pins byte-for-byte
// behaviour AND thread-count independence of exactly the configuration
// bench/full_paper.cc times, so a perf-motivated change that moves any
// full-scale output byte fails here before it can skew the bench.
MultiExchangeConfig FullPaperSmoke() {
  MultiExchangeConfig cfg;
  cfg.scenario.topology.scale = 1.0;
  cfg.scenario.topology.num_providers = 16;
  cfg.scenario.topology.seed = 1996;
  cfg.scenario.seed = 1997;
  cfg.scenario.num_exchanges = 5;
  cfg.scenario.duration = Duration::Minutes(20);
  return cfg;
}

MultiExchangeConfig PathologicalDay() {
  MultiExchangeConfig cfg;
  cfg.scenario.topology.scale = 1.0 / 256;
  cfg.scenario.topology.num_providers = 6;
  cfg.scenario.topology.seed = 1998;
  cfg.scenario.seed = 259;
  cfg.scenario.num_exchanges = 2;
  cfg.scenario.duration = Duration::Hours(4);
  cfg.scenario.patho_enabled = true;
  cfg.scenario.patho_spray_rate = 120;
  return cfg;
}

std::string RunDigest(const GoldenCase& c, int threads, int shards = 1,
                      int shard_threads = 1) {
  MultiExchangeConfig cfg = c.make();
  cfg.threads = threads;
  cfg.scenario.shards = shards;
  cfg.scenario.shard_threads = shard_threads;
  MultiExchangeRunner runner(std::move(cfg));
  return runner.Run().Digest(c.name);
}

std::string GoldenPath(const GoldenCase& c) {
  return std::string(IRI_GOLDEN_DIR) + "/" + c.name + ".digest";
}

// Committed goldens are blessed with IRI_PROVENANCE=ON (the default). An
// OFF build must produce the same bytes minus the provenance digest section
// and the provenance.* gauges — nothing else may move — so strip exactly
// those from the committed text before comparing. Under ON this is the
// identity, keeping the committed bytes authoritative.
std::string StripProvenance(std::string digest) {
  if (obs::kProvenanceEnabled) return digest;
  const auto begin = digest.find("provenance.begin\n");
  if (begin != std::string::npos) {
    const std::string end_key = "provenance.end\n";
    const auto end = digest.find(end_key, begin);
    if (end != std::string::npos) {
      digest.erase(begin, end + end_key.size() - begin);
    }
  }
  const std::string gauge_key = "gauge provenance.";
  std::size_t pos = 0;
  while ((pos = digest.find(gauge_key, pos)) != std::string::npos) {
    const auto eol = digest.find('\n', pos);
    digest.erase(pos,
                 eol == std::string::npos ? std::string::npos : eol + 1 - pos);
  }
  return digest;
}

class GoldenRun : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(GoldenRun, MatchesCommittedDigestAtEveryThreadCount) {
  const GoldenCase& c = GetParam();
  const std::string serial = RunDigest(c, 1);

  // Determinism across the worker pool: identical output at 2 and 4
  // threads, interleaving be damned. threads=0 takes the runner default
  // (IRI_PARALLEL_EXCHANGES or hardware concurrency — ctest runs this
  // binary a second time with IRI_PARALLEL_EXCHANGES=4 to pin the pool).
  EXPECT_EQ(serial, RunDigest(c, 2)) << c.name << ": 2-thread run diverged";
  EXPECT_EQ(serial, RunDigest(c, 4)) << c.name << ": 4-thread run diverged";
  EXPECT_EQ(serial, RunDigest(c, 0)) << c.name << ": default-pool run diverged";

  // Intra-exchange sharding matrix (DESIGN.md §13): the digest must be
  // byte-identical at every (exchange threads x shards x shard threads)
  // combination — sharding the classifier by prefix space and fanning the
  // batches over workers is a pure throughput knob. The full 9-cell
  // (1,2,4)x(1,2,4) sweep runs on the cheapest scenario; the others cover
  // the corners (max shards with serial shard workers, and the fully
  // parallel cell). 7 shards exercises a count that is neither a power of
  // two nor a divisor of anything in the topology.
  const bool cheap = std::string(c.name) == "baseline_single";
  if (cheap) {
    for (const int shards : {1, 2, 4}) {
      for (const int shard_threads : {1, 2, 4}) {
        EXPECT_EQ(serial, RunDigest(c, 1, shards, shard_threads))
            << c.name << ": diverged at shards=" << shards
            << " shard_threads=" << shard_threads;
      }
    }
    EXPECT_EQ(serial, RunDigest(c, 2, 7, 3))
        << c.name << ": diverged at shards=7 shard_threads=3";
  } else {
    EXPECT_EQ(serial, RunDigest(c, 2, 4, 1))
        << c.name << ": diverged at shards=4 shard_threads=1";
    EXPECT_EQ(serial, RunDigest(c, 4, 4, 4))
        << c.name << ": diverged at shards=4 shard_threads=4";
  }

  // The digest embeds the merged deterministic metrics snapshot. Pin the
  // section's presence so an unwired registry can't pass vacuously as an
  // empty-vs-empty comparison.
  EXPECT_NE(serial.find("metrics.begin\n"), std::string::npos)
      << c.name << ": digest lost its metrics section";
  EXPECT_NE(serial.find("counter monitor.messages "), std::string::npos)
      << c.name << ": monitor instruments missing from the merged snapshot";
  EXPECT_NE(serial.find("counter sched.tasks "), std::string::npos)
      << c.name << ": scheduler instruments missing from the merged snapshot";

  // The streaming-telemetry section (series record count/bytes/CRC) and the
  // health detectors' instruments ride in the same digest: series JSONL and
  // health.* gauges are thread-count independent or these comparisons fail.
  EXPECT_NE(serial.find("timeseries.begin\n"), std::string::npos)
      << c.name << ": digest lost its timeseries section";
  EXPECT_NE(serial.find("counter health.ticks "), std::string::npos)
      << c.name << ": health instruments missing from the merged snapshot";
  const std::uint64_t storms = DigestCounter(serial, "health.storm.starts");
  if (c.storms == 0) {
    EXPECT_EQ(storms, 0u)
        << c.name << ": storm detector fired on a non-pathological scenario";
  } else if (c.storms > 0) {
    EXPECT_GE(storms, 1u)
        << c.name << ": storm detector missed the pathological incident";
  }

  const std::string path = GoldenPath(c);
  if (g_regen) {
    ASSERT_TRUE(obs::kProvenanceEnabled)
        << "re-bless goldens from an IRI_PROVENANCE=ON build (the default); "
        << "an OFF build would commit digests missing the provenance bytes";
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << serial;
    std::printf("[regen] wrote %s\n", path.c_str());
    return;
  }

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good())
      << "missing golden file " << path
      << " — run ./golden_run_test --regen and commit the result";
  std::stringstream committed;
  committed << in.rdbuf();
  EXPECT_EQ(StripProvenance(committed.str()), serial)
      << c.name << ": output drifted from the committed golden digest. If "
      << "the behaviour change is intentional, re-bless with --regen.";
}

INSTANTIATE_TEST_SUITE_P(
    Canonical, GoldenRun,
    ::testing::Values(GoldenCase{"baseline_single", &BaselineSingle, 0},
                      GoldenCase{"five_exchange", &FiveExchange, -1},
                      GoldenCase{"full_paper_smoke", &FullPaperSmoke, -1},
                      GoldenCase{"pathological_day", &PathologicalDay, 1}),
    [](const ::testing::TestParamInfo<GoldenCase>& info) {
      return std::string(info.param.name);
    });

}  // namespace
}  // namespace iri::workload

// Custom main so the binary accepts --regen (gtest_main stays unlinked
// because this archive member is never pulled once main is defined here).
int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--regen") iri::workload::g_regen = true;
  }
  return RUN_ALL_TESTS();
}
