// Edge-path coverage for the Router: loop rejection, decode failures,
// dampening verdict paths, crash-time API behaviour.
#include <gtest/gtest.h>

#include "sim/link.h"
#include "sim/router.h"
#include "sim/scheduler.h"

namespace iri::sim {
namespace {

Prefix P(const std::string& s) { return *Prefix::Parse(s); }

RouterConfig Basic(const char* name, bgp::Asn asn, std::uint8_t id) {
  RouterConfig cfg;
  cfg.name = name;
  cfg.asn = asn;
  cfg.router_id = IPv4Address(10, 0, 0, id);
  cfg.interface_addr = IPv4Address(10, 1, 0, id);
  cfg.packer.interval = Duration::Seconds(1);
  cfg.packer.discipline = bgp::TimerDiscipline::kUnjittered;
  return cfg;
}

struct Pair {
  Pair(RouterConfig a_cfg, RouterConfig b_cfg)
      : a(sched, std::move(a_cfg), 1),
        b(sched, std::move(b_cfg), 2),
        link(sched, Duration::Millis(1)) {
    a.AttachLink(link, true, b.config().asn);
    b.AttachLink(link, false, a.config().asn);
    sched.At(TimePoint::Origin(), [this] { link.Restore(); });
    sched.RunUntil(TimePoint::Origin() + Duration::Seconds(3));
  }
  void Settle(double seconds = 5) {
    sched.RunUntil(sched.Now() + Duration::Seconds(seconds));
  }

  Scheduler sched;
  Router a, b;
  Link link;
};

TEST(RouterEdge, ReceiverRejectsPathContainingOwnAsn) {
  Pair net(Basic("A", 100, 1), Basic("B", 200, 2));
  // The sender-side check would normally stop this; inject the looping
  // UPDATE directly at B's transport, as a buggy peer would emit it.
  bgp::UpdateMessage update;
  update.attributes.as_path = bgp::AsPath::Sequence({100, 64512, 200});
  update.attributes.next_hop = IPv4Address(10, 1, 0, 1);
  update.nlri = {P("192.42.113.0/24")};
  net.b.OnWireData(0, bgp::Encode(bgp::Message{update}));
  net.Settle();
  EXPECT_EQ(net.b.rib().Best(P("192.42.113.0/24")), nullptr);
  EXPECT_GE(net.b.stats().loops_rejected, 1u);
}

TEST(RouterEdge, GarbageBytesAreCountedNotFatal) {
  Pair net(Basic("A", 100, 1), Basic("B", 200, 2));
  // Inject garbage directly at B's transport.
  net.b.OnWireData(0, {0xDE, 0xAD, 0xBE, 0xEF});
  EXPECT_EQ(net.b.stats().decode_failures, 1u);
  // The session survives (garbage is dropped before the FSM).
  EXPECT_EQ(net.b.PeerSessionState(0), bgp::SessionState::kEstablished);
  net.a.Originate({P("10.0.0.0/8"), {}});
  net.Settle();
  EXPECT_NE(net.b.rib().Best(P("10.0.0.0/8")), nullptr);
}

TEST(RouterEdge, ImportPolicyDenialRemovesStaleRoute) {
  // B denies long prefixes on import; a route announced before the /25
  // split must be withdrawn when the replacement is denied.
  Scheduler sched;
  Router a(sched, Basic("A", 100, 1), 1);
  bgp::Policy import = bgp::Policy::AcceptAll();
  bgp::PolicyRule deny_long;
  deny_long.match.min_length = 25;
  deny_long.action.deny = true;
  import.Add(deny_long);
  Router b(sched, Basic("B", 200, 2), 2);
  Link link(sched, Duration::Millis(1));
  a.AttachLink(link, true, 200);
  b.AttachLink(link, false, 100, std::move(import));
  sched.At(TimePoint::Origin(), [&link] { link.Restore(); });
  sched.RunUntil(TimePoint::Origin() + Duration::Seconds(3));

  a.Originate({P("10.0.0.0/24"), {}});
  sched.RunUntil(sched.Now() + Duration::Seconds(5));
  EXPECT_NE(b.rib().Best(P("10.0.0.0/24")), nullptr);
  a.Originate({P("10.0.0.0/25"), {}});  // denied on import at B
  sched.RunUntil(sched.Now() + Duration::Seconds(5));
  EXPECT_EQ(b.rib().Best(P("10.0.0.0/25")), nullptr);
}

TEST(RouterEdge, CrashedRouterIgnoresOriginationApis) {
  Scheduler sched;
  RouterConfig cfg = Basic("frail", 100, 1);
  cfg.crash_backlog = Duration::Millis(1);
  cfg.cost_per_prefix = Duration::Millis(10);
  cfg.reboot_time = Duration::Hours(1);
  Router frail(sched, cfg, 1);
  Router feeder(sched, Basic("feeder", 200, 2), 2);
  Link link(sched, Duration::Millis(1));
  feeder.AttachLink(link, true, 100);
  frail.AttachLink(link, false, 200);
  sched.At(TimePoint::Origin(), [&link] { link.Restore(); });
  sched.RunUntil(TimePoint::Origin() + Duration::Seconds(3));

  for (std::uint32_t i = 0; i < 50; ++i) {
    feeder.Originate({Prefix(IPv4Address((10u << 24) | (i << 8)), 24), {}});
  }
  sched.RunUntil(sched.Now() + Duration::Seconds(10));
  ASSERT_TRUE(frail.crashed());
  // APIs on a crashed box are inert.
  frail.Originate({P("204.0.0.0/24"), {}});
  frail.WithdrawLocal(P("204.0.0.0/24"));
  frail.InternalReset();
  EXPECT_FALSE(frail.HasLocalRoute(P("204.0.0.0/24")));
}

TEST(RouterEdge, DampenedRouteReadvertisedAtReuseTime) {
  // The scheduled re-advertisement after suppression release (the paper's
  // delayed "legitimate announcement") must fire automatically.
  Scheduler sched;
  RouterConfig cfg = Basic("border", 100, 1);
  cfg.enable_dampening = true;
  Router border(sched, cfg, 1);
  Router peer(sched, Basic("peer", 200, 2), 2);
  Link link(sched, Duration::Millis(1));
  border.AttachLink(link, true, 200);
  peer.AttachLink(link, false, 100);
  sched.At(TimePoint::Origin(), [&link] { link.Restore(); });
  sched.RunUntil(TimePoint::Origin() + Duration::Seconds(3));

  const Prefix p = P("204.10.0.0/24");
  // Flap until suppressed.
  for (int i = 0; i < 5; ++i) {
    border.Originate({p, {}});
    sched.RunUntil(sched.Now() + Duration::Seconds(30));
    border.WithdrawLocal(p);
    sched.RunUntil(sched.Now() + Duration::Seconds(30));
  }
  border.Originate({p, {}});  // final, legitimate announcement — suppressed
  sched.RunUntil(sched.Now() + Duration::Minutes(2));
  ASSERT_GT(border.stats().damped_updates, 0u);
  EXPECT_EQ(peer.rib().Best(p), nullptr) << "should still be held down";

  // ...but after the reuse time it must reach the peer without any further
  // operator action.
  sched.RunUntil(sched.Now() + Duration::Hours(1));
  EXPECT_NE(peer.rib().Best(p), nullptr);
}

}  // namespace
}  // namespace iri::sim
