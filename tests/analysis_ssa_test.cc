#include "analysis/ssa.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace iri::analysis {
namespace {

TEST(JacobiEigen, DiagonalMatrix) {
  // diag(3, 1, 2) -> eigenvalues {3, 2, 1} sorted.
  std::vector<double> m = {3, 0, 0, 0, 1, 0, 0, 0, 2};
  auto eig = JacobiEigenSymmetric(m, 3);
  ASSERT_EQ(eig.values.size(), 3u);
  EXPECT_NEAR(eig.values[0], 3.0, 1e-12);
  EXPECT_NEAR(eig.values[1], 2.0, 1e-12);
  EXPECT_NEAR(eig.values[2], 1.0, 1e-12);
}

TEST(JacobiEigen, KnownSymmetricMatrix) {
  // [[2,1],[1,2]] -> eigenvalues 3 and 1, eigenvectors (1,1)/√2, (1,-1)/√2.
  std::vector<double> m = {2, 1, 1, 2};
  auto eig = JacobiEigenSymmetric(m, 2);
  EXPECT_NEAR(eig.values[0], 3.0, 1e-12);
  EXPECT_NEAR(eig.values[1], 1.0, 1e-12);
  EXPECT_NEAR(std::abs(eig.Vector(0, 0)), std::numbers::sqrt2 / 2, 1e-9);
  EXPECT_NEAR(std::abs(eig.Vector(1, 0)), std::numbers::sqrt2 / 2, 1e-9);
  // Eigenvector property: A v = λ v.
  const double v0 = eig.Vector(0, 0), v1 = eig.Vector(1, 0);
  EXPECT_NEAR(2 * v0 + 1 * v1, 3 * v0, 1e-9);
}

TEST(JacobiEigen, EigenvectorsAreOrthonormal) {
  // A random-ish symmetric 5x5.
  const std::size_t n = 5;
  std::vector<double> m(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      const double v = std::sin(static_cast<double>(i * 7 + j * 3 + 1));
      m[i * n + j] = v;
      m[j * n + i] = v;
    }
  }
  auto eig = JacobiEigenSymmetric(m, n);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      double dot = 0;
      for (std::size_t r = 0; r < n; ++r) {
        dot += eig.Vector(r, a) * eig.Vector(r, b);
      }
      EXPECT_NEAR(dot, a == b ? 1.0 : 0.0, 1e-8) << a << "," << b;
    }
  }
}

TEST(JacobiEigen, TraceIsPreserved) {
  std::vector<double> m = {4, 1, 0, 1, 3, 2, 0, 2, 5};
  auto eig = JacobiEigenSymmetric(m, 3);
  EXPECT_NEAR(eig.values[0] + eig.values[1] + eig.values[2], 12.0, 1e-9);
}

Series TwoTone(std::size_t n) {
  Series x;
  for (std::size_t t = 0; t < n; ++t) {
    const double td = static_cast<double>(t);
    x.push_back(2.0 * std::sin(2 * std::numbers::pi * td / 24.0) +
                1.0 * std::sin(2 * std::numbers::pi * td / 168.0));
  }
  return x;
}

TEST(Ssa, OscillatoryPairsCaptureTones) {
  const Series x = TwoTone(24 * 7 * 6);
  Ssa ssa(x, /*window=*/48);
  const auto& comps = ssa.components();
  ASSERT_GE(comps.size(), 4u);
  // A pure sinusoid appears as a pair of equal-variance components; the
  // strongest pair must carry the daily (1/24) frequency.
  EXPECT_NEAR(comps[0].dominant_frequency, 1.0 / 24.0, 0.01);
  EXPECT_NEAR(comps[1].dominant_frequency, 1.0 / 24.0, 0.01);
  EXPECT_NEAR(comps[0].variance_fraction, comps[1].variance_fraction, 0.05);
  // Components are ordered by variance.
  for (std::size_t i = 1; i < comps.size(); ++i) {
    EXPECT_GE(comps[i - 1].eigenvalue, comps[i].eigenvalue - 1e-9);
  }
}

TEST(Ssa, TopComponentsReconstructSignal) {
  const Series x = TwoTone(24 * 7 * 6);
  Ssa ssa(x, 48);
  const Series recon = ssa.Reconstruct(6);
  ASSERT_EQ(recon.size(), x.size());
  // Compare in the interior (diagonal averaging is weaker at the edges).
  double err = 0, power = 0;
  for (std::size_t t = 100; t + 100 < x.size(); ++t) {
    err += (recon[t] - x[t]) * (recon[t] - x[t]);
    power += x[t] * x[t];
  }
  EXPECT_LT(err / power, 0.05);
}

TEST(Ssa, VarianceFractionsSumToOne) {
  const Series x = TwoTone(24 * 7 * 4);
  Ssa ssa(x, 36);
  double sum = 0;
  for (const auto& c : ssa.components()) sum += c.variance_fraction;
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST(Ssa, WhiteNoiseThresholdSeparatesSignalFromNoise) {
  // Signal components of a strong sinusoid must exceed the 99% white-noise
  // eigenvalue threshold; pure-noise eigenvalues must not (by much).
  const std::size_t n = 24 * 7 * 4;
  const std::size_t window = 48;
  Series x = TwoTone(n);
  Ssa ssa(x, window);
  const double threshold = WhiteNoiseEigenvalueThreshold(
      Variance(x), n, window, /*trials=*/4, /*percentile=*/0.99, /*seed=*/7);
  ASSERT_GT(threshold, 0.0);
  // The four oscillatory components (two tone pairs) are significant.
  for (std::size_t k = 0; k < 4; ++k) {
    EXPECT_GT(ssa.components()[k].eigenvalue, threshold) << "component " << k;
  }
  // The trailing components are noise-level.
  EXPECT_LT(ssa.components().back().eigenvalue, threshold);
}

TEST(Ssa, WhiteNoiseThresholdScalesWithVariance) {
  const double t1 =
      WhiteNoiseEigenvalueThreshold(1.0, 1000, 24, 3, 0.99, 11);
  const double t4 =
      WhiteNoiseEigenvalueThreshold(4.0, 1000, 24, 3, 0.99, 11);
  EXPECT_NEAR(t4 / t1, 4.0, 0.8);  // eigenvalues scale linearly in variance
}

TEST(Ssa, DegenerateInputsProduceNoComponents) {
  Ssa tiny(Series{1, 2, 3}, 8);
  EXPECT_TRUE(tiny.components().empty());
  Ssa one(Series(100, 0.0), 1);
  EXPECT_TRUE(one.components().empty());
}

}  // namespace
}  // namespace iri::analysis
