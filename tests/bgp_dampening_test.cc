#include "bgp/dampening.h"

#include <gtest/gtest.h>

namespace iri::bgp {
namespace {

const PrefixPeer kRoute{*Prefix::Parse("192.42.113.0/24"), 1};
const PrefixPeer kOther{*Prefix::Parse("10.0.0.0/8"), 2};

TimePoint T(double seconds) {
  return TimePoint::Origin() + Duration::Seconds(seconds);
}

TEST(Dampening, FreshRouteIsNotSuppressed) {
  Dampener d;
  EXPECT_FALSE(d.IsSuppressed(kRoute, T(0)));
  EXPECT_EQ(d.Penalty(kRoute, T(0)), 0.0);
}

TEST(Dampening, SingleWithdrawalDoesNotSuppress) {
  Dampener d;
  EXPECT_EQ(d.OnWithdraw(kRoute, T(0)), DampVerdict::kPass);
  EXPECT_NEAR(d.Penalty(kRoute, T(0)), 1000.0, 1e-9);
  EXPECT_FALSE(d.IsSuppressed(kRoute, T(1)));
}

TEST(Dampening, RepeatedFlapsCrossSuppressThreshold) {
  Dampener d;
  EXPECT_EQ(d.OnWithdraw(kRoute, T(0)), DampVerdict::kPass);
  d.OnAnnounce(kRoute, T(10), /*attribute_change=*/false);
  // Penalty decays (slightly) between events, so the second withdrawal
  // lands just under 2000; the third crosses decisively.
  EXPECT_EQ(d.OnWithdraw(kRoute, T(20)), DampVerdict::kPass);
  d.OnAnnounce(kRoute, T(30), false);
  EXPECT_EQ(d.OnWithdraw(kRoute, T(40)), DampVerdict::kSuppressed);
  EXPECT_TRUE(d.IsSuppressed(kRoute, T(41)));
  // Further updates report the route as still damped.
  EXPECT_EQ(d.OnAnnounce(kRoute, T(50), false), DampVerdict::kStillDamped);
}

TEST(Dampening, AttributeChangesAccumulateHalfPenalty) {
  Dampener d;
  // Attribute changes carry 500 each: five (with decay) cross 2000.
  EXPECT_EQ(d.OnAnnounce(kRoute, T(0), true), DampVerdict::kPass);
  EXPECT_EQ(d.OnAnnounce(kRoute, T(1), true), DampVerdict::kPass);
  EXPECT_EQ(d.OnAnnounce(kRoute, T(2), true), DampVerdict::kPass);
  EXPECT_EQ(d.OnAnnounce(kRoute, T(3), true), DampVerdict::kPass);
  EXPECT_EQ(d.OnAnnounce(kRoute, T(4), true), DampVerdict::kSuppressed);
}

TEST(Dampening, PenaltyDecaysWithHalfLife) {
  DampeningParams params;
  params.half_life = Duration::Minutes(15);
  Dampener d(params);
  d.OnWithdraw(kRoute, T(0));
  EXPECT_NEAR(d.Penalty(kRoute, T(15 * 60)), 500.0, 1.0);
  EXPECT_NEAR(d.Penalty(kRoute, T(30 * 60)), 250.0, 1.0);
}

TEST(Dampening, SuppressionEndsAtReuseThreshold) {
  Dampener d;
  d.OnWithdraw(kRoute, T(0));
  d.OnWithdraw(kRoute, T(1));
  d.OnWithdraw(kRoute, T(2));  // ~3000: suppressed
  ASSERT_TRUE(d.IsSuppressed(kRoute, T(3)));
  // Penalty halves every 15 min: 3000 -> 1500 -> 750 (reuse) after ~30 min.
  EXPECT_FALSE(d.IsSuppressed(kRoute, T(35 * 60)));
}

TEST(Dampening, ReuseTimePredictsRelease) {
  Dampener d;
  d.OnWithdraw(kRoute, T(0));
  d.OnWithdraw(kRoute, T(1));
  d.OnWithdraw(kRoute, T(2));
  ASSERT_TRUE(d.IsSuppressed(kRoute, T(3)));
  const TimePoint reuse = d.ReuseTime(kRoute, T(3));
  EXPECT_TRUE(d.IsSuppressed(kRoute, reuse - Duration::Seconds(10)));
  EXPECT_FALSE(d.IsSuppressed(kRoute, reuse + Duration::Seconds(10)));
}

TEST(Dampening, MaxHoldTimeBoundsSuppression) {
  // Keep flapping until the penalty pins at the cap; the cap is chosen by
  // the draft so that max_hold_time of decay lands exactly on the reuse
  // threshold. Continued flaps then make max-hold (not decay) the binding
  // release: at release time the decayed penalty is still above reuse.
  Dampener d;  // defaults: half-life 15 min, max hold 60 min
  TimePoint last_flap;
  for (int i = 0; i < 30; ++i) {
    last_flap = T(i * 60.0);
    d.OnWithdraw(kRoute, last_flap);
  }
  ASSERT_TRUE(d.IsSuppressed(kRoute, last_flap + Duration::Seconds(1)));
  ASSERT_NEAR(d.Penalty(kRoute, last_flap), d.params().MaxPenalty(), 25.0);
  // Suppression began around the second/third flap; 60 minutes later the
  // route must be usable again even though the penalty is still high.
  const TimePoint released = T(3 * 60) + d.params().max_hold_time;
  EXPECT_FALSE(d.IsSuppressed(kRoute, released + Duration::Minutes(1)));
  EXPECT_GT(d.Penalty(kRoute, released + Duration::Minutes(1)),
            d.params().reuse_threshold);
}

TEST(Dampening, PenaltyIsCapped) {
  Dampener d;
  for (int i = 0; i < 100; ++i) d.OnWithdraw(kRoute, T(i));
  EXPECT_LE(d.Penalty(kRoute, T(100)), d.params().MaxPenalty() + 1e-6);
}

TEST(Dampening, RoutesAreIndependent) {
  Dampener d;
  d.OnWithdraw(kRoute, T(0));
  d.OnWithdraw(kRoute, T(1));
  EXPECT_TRUE(d.IsSuppressed(kRoute, T(2)));
  EXPECT_FALSE(d.IsSuppressed(kOther, T(2)));
  EXPECT_EQ(d.OnWithdraw(kOther, T(3)), DampVerdict::kPass);
}

TEST(Dampening, SweepDropsDecayedState) {
  Dampener d;
  d.OnWithdraw(kRoute, T(0));
  EXPECT_EQ(d.TrackedRoutes(), 1u);
  EXPECT_EQ(d.Sweep(T(1)), 0u);  // penalty 1000 > 375: kept
  // After ~3 half-lives penalty < reuse/2: garbage collected.
  EXPECT_EQ(d.Sweep(T(60 * 60)), 1u);
  EXPECT_EQ(d.TrackedRoutes(), 0u);
}

TEST(Dampening, ReannouncementDefaultCarriesNoPenalty) {
  Dampener d;
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(d.OnAnnounce(kRoute, T(i), /*attribute_change=*/false),
              DampVerdict::kPass);
  }
  EXPECT_EQ(d.Penalty(kRoute, T(50)), 0.0);
}

// The paper's caveat: dampening delays legitimate announcements after a
// flap burst — the "artificial connectivity problems" cost.
TEST(Dampening, LegitimateAnnouncementDelayedAfterBurst) {
  Dampener d;
  // A burst of flaps over two minutes.
  for (int i = 0; i < 4; ++i) {
    d.OnWithdraw(kRoute, T(i * 30));
    d.OnAnnounce(kRoute, T(i * 30 + 15), false);
  }
  ASSERT_TRUE(d.IsSuppressed(kRoute, T(120)));
  // The network is stable now, but the route stays unusable for a long
  // while: the final legitimate announcement is held down.
  const TimePoint reuse = d.ReuseTime(kRoute, T(120));
  EXPECT_GT(reuse - T(120), Duration::Minutes(10));
}

// Property sweep: for any half-life, penalty is monotonically decreasing
// between events.
class DampeningDecay : public ::testing::TestWithParam<int> {};

TEST_P(DampeningDecay, MonotoneDecay) {
  DampeningParams params;
  params.half_life = Duration::Minutes(GetParam());
  Dampener d(params);
  d.OnWithdraw(kRoute, T(0));
  double last = d.Penalty(kRoute, T(1));
  for (int s = 2; s < 4000; s += 100) {
    const double p = d.Penalty(kRoute, T(s));
    EXPECT_LE(p, last);
    last = p;
  }
}

INSTANTIATE_TEST_SUITE_P(HalfLives, DampeningDecay,
                         ::testing::Values(5, 15, 30, 60));

#if defined(IRI_TRACE_ENABLED) && IRI_TRACE_ENABLED
TEST(DampeningTrace, SuppressAndReleaseEmitExactJsonlBytes) {
  Dampener d;
  obs::Tracer tracer;
  d.SetTracer(&tracer);
  // Two simultaneous withdrawal penalties land exactly on the suppress
  // threshold (2000); the decayed penalty crosses back under the reuse
  // threshold (750) well before T(2000), where the probe observes release.
  EXPECT_EQ(d.OnWithdraw(kRoute, T(0)), DampVerdict::kPass);
  EXPECT_EQ(d.OnWithdraw(kRoute, T(0)), DampVerdict::kSuppressed);
  EXPECT_FALSE(d.IsSuppressed(kRoute, T(2000)));
  EXPECT_EQ(
      tracer.buffer(),
      "{\"t_ns\":0,\"ev\":\"damp_suppress\","
      "\"prefix\":\"192.42.113.0/24\",\"peer\":1,\"penalty\":2000}\n"
      "{\"t_ns\":2000000000000,\"ev\":\"damp_release\","
      "\"prefix\":\"192.42.113.0/24\",\"peer\":1,"
      "\"held_ns\":2000000000000}\n");
}

TEST(DampeningTrace, NoTracerMeansNoEmission) {
  Dampener d;
  d.OnWithdraw(kRoute, T(0));
  EXPECT_EQ(d.OnWithdraw(kRoute, T(0)), DampVerdict::kSuppressed);
  SUCCEED();  // null tracer: the sites are runtime no-ops
}
#endif

}  // namespace
}  // namespace iri::bgp
