#include "igp/igp.h"

#include <gtest/gtest.h>

#include "igp/redistribution.h"
#include "sim/link.h"

namespace iri::igp {
namespace {

Prefix P(const std::string& s) { return *Prefix::Parse(s); }

// A small AS backbone:
//
//   border --1-- core --1-- east  (prefix E)
//     \                      /
//      \---5--- west --1----/     (prefix W on west)
//
struct Backbone {
  explicit Backbone(sim::Scheduler& sched, Duration spf = Duration::Seconds(30))
      : igp(sched, IgpConfig{spf}) {
    border = igp.AddNode("border");
    core = igp.AddNode("core");
    east = igp.AddNode("east");
    west = igp.AddNode("west");
    border_core = igp.AddLink(border, core, 1);
    core_east = igp.AddLink(core, east, 1);
    border_west = igp.AddLink(border, west, 5);
    west_east = igp.AddLink(west, east, 1);
    igp.SetBorderNode(border);
    igp.AttachPrefix(east, P("204.10.1.0/24"));
    igp.AttachPrefix(west, P("204.10.2.0/24"));
  }

  IgpProcess igp;
  NodeId border, core, east, west;
  std::size_t border_core, core_east, border_west, west_east;
};

TEST(Igp, InitialSpfAnnouncesReachablePrefixes) {
  sim::Scheduler sched;
  Backbone bb(sched);
  std::vector<IgpRoute> seen;
  bb.igp.SetRedistribution([&seen](const IgpRoute& r) { seen.push_back(r); });
  bb.igp.Start();
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_TRUE(seen[0].reachable);
  EXPECT_EQ(seen[0].metric, 2u);  // border-core-east
  EXPECT_TRUE(seen[1].reachable);
  EXPECT_EQ(seen[1].metric, 3u);  // border-core-east-west
}

TEST(Igp, QuiescentSpfRedistributesNothing) {
  sim::Scheduler sched;
  Backbone bb(sched);
  bb.igp.Start();
  EXPECT_EQ(bb.igp.RunSpf(), 0u);  // no topology change: no churn
}

TEST(Igp, LinkFailureReroutesWithNewMetric) {
  sim::Scheduler sched;
  Backbone bb(sched);
  bb.igp.Start();
  std::vector<IgpRoute> seen;
  bb.igp.SetRedistribution([&seen](const IgpRoute& r) { seen.push_back(r); });

  bb.igp.SetLinkUp(bb.core_east, false);
  // East reroutes via west (5+1=6); west's own metric improves to 5 (it was
  // previously reached through east). Both change: two redistributions, in
  // attachment order (east first).
  EXPECT_EQ(bb.igp.RunSpf(), 2u);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].metric, 6u);
  EXPECT_EQ(seen[1].metric, 5u);
}

TEST(Igp, PartitionMakesPrefixUnreachable) {
  sim::Scheduler sched;
  Backbone bb(sched);
  bb.igp.Start();
  bb.igp.SetLinkUp(bb.core_east, false);
  bb.igp.SetLinkUp(bb.west_east, false);
  bb.igp.RunSpf();
  EXPECT_EQ(bb.igp.MetricOf(P("204.10.1.0/24")), IgpConfig::kUnreachable);
  EXPECT_EQ(bb.igp.MetricOf(P("204.10.2.0/24")), 5u);

  // Repair: reachability returns at the next SPF.
  bb.igp.SetLinkUp(bb.core_east, true);
  bb.igp.RunSpf();
  EXPECT_EQ(bb.igp.MetricOf(P("204.10.1.0/24")), 2u);
}

TEST(Igp, CostChangeOnlyChangesMetric) {
  sim::Scheduler sched;
  Backbone bb(sched);
  bb.igp.Start();
  std::vector<IgpRoute> seen;
  bb.igp.SetRedistribution([&seen](const IgpRoute& r) { seen.push_back(r); });
  bb.igp.SetLinkCost(bb.border_core, 10);
  bb.igp.RunSpf();
  // Both prefixes now prefer the west path.
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_TRUE(seen[0].reachable);
  EXPECT_EQ(seen[0].metric, 6u);   // east via west
  EXPECT_EQ(seen[1].metric, 5u);   // west direct
}

TEST(Igp, TopologyChangesQuantizedToSpfTicks) {
  // A link that flaps BETWEEN ticks is only visible AT ticks: the
  // 30-second quantization the paper's periodicity analysis found.
  sim::Scheduler sched;
  Backbone bb(sched);
  int redistributions = 0;
  bb.igp.SetRedistribution([&redistributions](const IgpRoute&) {
    ++redistributions;
  });
  bb.igp.Start();
  const int after_start = redistributions;

  // Fail at t=+5s: nothing happens until the next 30 s boundary.
  sched.RunUntil(TimePoint::Origin() + Duration::Seconds(35));
  bb.igp.SetLinkUp(bb.core_east, false);
  bb.igp.SetLinkUp(bb.west_east, false);
  sched.RunUntil(TimePoint::Origin() + Duration::Seconds(59));
  EXPECT_EQ(redistributions, after_start);  // still quiet
  sched.RunUntil(TimePoint::Origin() + Duration::Seconds(61));
  EXPECT_GT(redistributions, after_start);  // the SPF tick saw it
}

TEST(Igp, SpfRunsAtFixedPhase) {
  sim::Scheduler sched;
  Backbone bb(sched);
  bb.igp.Start();
  const auto runs0 = bb.igp.spf_runs();
  sched.RunUntil(TimePoint::Origin() + Duration::Minutes(5));
  // 10 ticks in 5 minutes at a 30 s interval.
  EXPECT_EQ(bb.igp.spf_runs() - runs0, 10u);
}

TEST(Redistribution, AnnouncesAndWithdrawsThroughRouter) {
  sim::Scheduler sched;
  Backbone bb(sched);

  sim::RouterConfig cfg;
  cfg.name = "border";
  cfg.asn = 701;
  cfg.router_id = IPv4Address(10, 0, 0, 1);
  cfg.interface_addr = IPv4Address(10, 1, 0, 1);
  sim::Router border(sched, cfg, 1);

  BgpRedistributor::Options options;
  options.metric_to_med = true;
  BgpRedistributor redist(bb.igp, border, options);
  bb.igp.Start();

  EXPECT_EQ(redist.announcements(), 2u);
  EXPECT_TRUE(border.HasLocalRoute(P("204.10.1.0/24")));
  const auto* best = border.rib().Best(P("204.10.1.0/24"));
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->attributes.med, 2u);  // IGP metric copied into MED
  EXPECT_EQ(best->attributes.origin, bgp::Origin::kIncomplete);

  // Partition: the withdrawal propagates into BGP.
  bb.igp.SetLinkUp(bb.core_east, false);
  bb.igp.SetLinkUp(bb.west_east, false);
  bb.igp.RunSpf();
  EXPECT_EQ(redist.withdrawals(), 1u);
  EXPECT_FALSE(border.HasLocalRoute(P("204.10.1.0/24")));
}

TEST(Redistribution, MetricOscillationBecomesMedChurn) {
  // The lossy conversion: an internal cost oscillation reaches BGP as
  // same-tuple MED changes — the paper's tuple-identical policy
  // fluctuation (classified AADup at the collector).
  sim::Scheduler sched;
  Backbone bb(sched);
  sim::RouterConfig cfg;
  cfg.name = "border";
  cfg.asn = 701;
  cfg.router_id = IPv4Address(10, 0, 0, 1);
  cfg.interface_addr = IPv4Address(10, 1, 0, 1);
  sim::Router border(sched, cfg, 1);
  BgpRedistributor redist(bb.igp, border, {});
  bb.igp.Start();

  for (int i = 0; i < 4; ++i) {
    bb.igp.SetLinkCost(bb.border_core, i % 2 ? 1 : 10);
    bb.igp.RunSpf();
  }
  // Four oscillations x two prefixes, all announcements (reachable
  // throughout), no withdrawals.
  EXPECT_EQ(redist.announcements(), 2u + 8u);
  EXPECT_EQ(redist.withdrawals(), 0u);
}

}  // namespace
}  // namespace iri::igp
