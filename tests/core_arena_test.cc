// Arena (core/arena.h) unit and reuse tests: bump allocation, LIFO cleanup,
// the Reset() recycling discipline the day-scoped scratch arena relies on,
// and the std-allocator adapter used by ExchangeScenario's spray buffers.
#include "core/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "workload/scenario.h"

namespace iri::core {
namespace {

TEST(Arena, AllocateAlignsAndBumps) {
  Arena arena(1024);
  auto* a = static_cast<char*>(arena.Allocate(1, 1));
  auto* b = static_cast<std::uint64_t*>(arena.Allocate(8, 8));
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 8, 0u);
  *a = 'x';
  *b = 42;  // distinct storage: writes must not alias
  EXPECT_EQ(*a, 'x');
  EXPECT_EQ(arena.bytes_allocated(), 9u);
  EXPECT_EQ(arena.num_blocks(), 1u);
}

TEST(Arena, OversizedRequestGetsDedicatedBlock) {
  Arena arena(64);
  arena.Allocate(8, 8);
  void* big = arena.Allocate(4096, 8);
  ASSERT_NE(big, nullptr);
  EXPECT_GE(arena.num_blocks(), 2u);
  EXPECT_GE(arena.bytes_reserved(), 4096u);
}

TEST(Arena, CleanupRunsDestructorsInReverseOrder) {
  std::vector<int> order;
  {
    struct Tracker {
      std::vector<int>* order;
      int id;
      ~Tracker() { order->push_back(id); }
    };
    Arena arena;
    arena.New<Tracker>(&order, 1);
    arena.New<Tracker>(&order, 2);
    arena.New<Tracker>(&order, 3);
    EXPECT_EQ(arena.num_cleanups(), 3u);
  }
  EXPECT_EQ(order, (std::vector<int>{3, 2, 1}));
}

TEST(Arena, ResetRecyclesTheLargestBlock) {
  Arena arena(1024);
  // Warm up: force growth over several blocks.
  for (int i = 0; i < 100; ++i) arena.Allocate(256, 8);
  arena.Reset();
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  EXPECT_EQ(arena.num_blocks(), 1u);
  const std::size_t steady = arena.bytes_reserved();
  // Steady state: a same-sized day must fit in the retained block without
  // reserving any new memory.
  for (int day = 0; day < 5; ++day) {
    while (arena.bytes_allocated() + 256 <= steady) arena.Allocate(256, 8);
    arena.Reset();
    EXPECT_EQ(arena.bytes_reserved(), steady)
        << "steady-state day " << day << " reallocated";
  }
}

TEST(Arena, AllocatorAdapterWorksWithVector) {
  Arena arena(1024);
  std::vector<int, ArenaAllocator<int>> v{ArenaAllocator<int>(&arena)};
  for (int i = 0; i < 1000; ++i) v.push_back(i);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(v[i], i);
  EXPECT_GT(arena.bytes_allocated(), 1000 * sizeof(int));
  v = std::vector<int, ArenaAllocator<int>>{ArenaAllocator<int>(&arena)};
  arena.Reset();
  EXPECT_EQ(arena.bytes_allocated(), 0u);
}

// End-to-end: a short scenario day exercises the day-scoped scratch arena
// (withdrawal-spray buffers) and the arena-backed intern tables under the
// real workload — this is the asan leg's coverage of arena-allocated
// attribute storage.
TEST(Arena, DayScopedScratchArenaIsBoundedAcrossDays) {
  workload::ScenarioConfig cfg;
  cfg.topology.scale = 1.0 / 256;
  cfg.topology.num_providers = 6;
  cfg.duration = Duration::Days(2.1);
  cfg.series_flush_interval = Duration();
  // Crank the pathological spray processes so the day arena really gets
  // used inside the window. patho_enabled guarantees a stateless provider,
  // and PathoSpray unconditionally builds its prefix list in the day arena.
  cfg.patho_enabled = true;
  cfg.patho_spray_rate = 400;
  cfg.internal_reset_episode_rate = 40;
  workload::ExchangeScenario scenario(cfg);
  scenario.Run();
  // The midnight hook reset the arena at days 0 and 1; whatever day 2 has
  // allocated so far is bounded by one day's churn, and the retained block
  // means the footprint cannot exceed one retained block plus the current
  // day's growth.
  const core::Arena& arena = scenario.day_arena();
  EXPECT_GT(arena.bytes_reserved(), 0u)
      << "spray buffers never touched the day arena";
  EXPECT_EQ(arena.num_cleanups(), 0u)
      << "spray buffers are trivially destructible; nothing should register";
}

// Reset-reuse poison check: day N+1's allocations land in the block that
// day N dirtied (Reset() keeps the largest block hot). Fill day N's memory
// with a poison pattern, Reset, and verify (a) the recycled block really is
// reused — same address range, zero new reservation — and (b) objects
// constructed over the poisoned bytes are fully initialized, i.e. nothing
// in the arena or its clients assumes recycled storage is zeroed.
TEST(Arena, ResetReusePoisonCheck) {
  Arena arena(1024);
  constexpr std::size_t kBytes = 512;
  auto* day0 = static_cast<unsigned char*>(arena.Allocate(kBytes, 16));
  std::memset(day0, 0xA5, kBytes);  // day N's stale garbage
  const std::size_t reserved_before = arena.bytes_reserved();

  arena.Reset();
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  EXPECT_EQ(arena.bytes_reserved(), reserved_before)
      << "Reset must recycle, not discard, the hot block";

  auto* day1 = static_cast<unsigned char*>(arena.Allocate(kBytes, 16));
  EXPECT_EQ(day1, day0) << "the recycled block should be bumped from its base";
  for (std::size_t i = 0; i < kBytes; ++i) {
    ASSERT_EQ(day1[i], 0xA5) << "Allocate must hand back raw storage at " << i;
  }

  // Value-constructed objects over poisoned storage must not inherit it:
  // the bump allocator returns raw bytes, construction is the client's job,
  // and vector/New both perform it.
  arena.Reset();
  struct Counter {
    std::uint64_t n = 0;
    ~Counter() { n = ~std::uint64_t{0}; }
  };
  Counter* c = arena.New<Counter>();
  EXPECT_EQ(c->n, 0u) << "constructor must run over recycled poisoned bytes";
  EXPECT_EQ(arena.num_cleanups(), 1u);

  std::vector<std::uint64_t, ArenaAllocator<std::uint64_t>> v{
      ArenaAllocator<std::uint64_t>(&arena)};
  v.resize(32);  // value-initialized through the allocator
  for (std::size_t i = 0; i < v.size(); ++i) {
    ASSERT_EQ(v[i], 0u) << "element " << i << " leaked poisoned storage";
  }
  arena.Reset();  // runs Counter's destructor; poison survives for next day
  EXPECT_EQ(arena.num_cleanups(), 0u);
}

}  // namespace
}  // namespace iri::core
