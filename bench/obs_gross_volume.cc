// §4 gross observations: daily update volume, updates per network per day,
// burstiness, and the pathological share.
//
// Paper numbers: 42k prefixes yet 3-6M prefix updates/day at the core
// (~125 updates per network per day), bursts exceeding 100 prefix updates
// per second, and ~99% of routing information pathological.
#include "bench_common.h"
#include "core/report.h"
#include "core/stats.h"

int main(int argc, char** argv) {
  using namespace iri;
  // Day 0 is a bootstrap Saturday; run through Tuesday and report the
  // first full weekday (the paper's volumes are business-day figures).
  auto flags = bench::Flags::Parse(argc, argv, /*days=*/4,
                                   /*scale_denominator=*/16,
                                   /*providers=*/16);
  bench::PrintHeader("Gross observations (§4): volume, burstiness, pathology",
                     flags);

  auto cfg = flags.ToScenarioConfig();
  cfg.patho_enabled = true;
  // A heavy day at the exchange: the pathological ISP's upstream flaps all
  // day and several stateless providers carry large leaky internal tables.
  cfg.patho_spray_rate = 400;
  cfg.internal_reset_foreign_fraction = 0.3;
  workload::ExchangeScenario scenario(cfg);

  core::CategoryCounts counts;
  core::TimeBinner second_bins(Duration::Seconds(1));
  core::DailyCategoryTally daily;
  scenario.monitor().AddSink([&](const core::ClassifiedEvent& ev) {
    counts.Add(ev);
    daily.Add(ev);
    second_bins.Add(ev.event.time);
  });
  scenario.Run();

  // Report the last full weekday, skipping the bootstrap weekend.
  const auto& day = daily.days().back();
  const double day_total = static_cast<double>(day.Total());
  const double prefixes =
      static_cast<double>(scenario.universe().TotalPrefixes());

  std::printf("universe: %.0f prefixes (%0.f full-scale)\n", prefixes,
              bench::FullScale(prefixes, flags));
  std::printf("updates on the reported weekday: %.0f -> full-scale %.2fM/day "
              "(paper: 3-6M)\n",
              day_total, bench::FullScale(day_total, flags) / 1e6);
  std::printf("updates per network per day: %.0f (paper: ~125)\n",
              day_total / prefixes);

  std::uint64_t max_per_second = 0;
  for (auto b : second_bins.bins()) max_per_second = std::max(max_per_second, b);
  std::printf("peak burst: %llu updates/s -> full-scale %.0f/s "
              "(paper: bursts exceeding 100/s)\n",
              static_cast<unsigned long long>(max_per_second),
              bench::FullScale(static_cast<double>(max_per_second), flags));

  const double patho_share =
      100.0 * static_cast<double>(counts.Pathology()) /
      static_cast<double>(std::max<std::uint64_t>(1, counts.Total()));
  std::printf("pathological share of all updates: %.1f%% (paper: ~99%% with "
              "all exchange-point pathologies summed)\n",
              patho_share);
  std::printf("\nfull-run taxonomy:\n%s",
              core::FormatCategoryReport(counts).c_str());
  return 0;
}
