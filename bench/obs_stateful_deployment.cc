// §4.2's decisive natural experiment, reproduced: "On the same day ...
// ISP-Y advertised 2 million withdrawals through their stateless BGP
// routers at AADS, the service provider advertised only 1905 withdrawals
// through their routers with the updated, stateful software at Mae-East."
//
// One provider, one set of internal events, two exchange points: the border
// router at exchange A runs the stateless implementation, the router at
// exchange B runs the stateful fix. Both see the identical internal churn.
#include <memory>
#include <vector>

#include "bench_common.h"
#include "core/monitor.h"
#include "core/report.h"
#include "core/stats.h"
#include "netbase/rng.h"
#include "sim/link.h"
#include "sim/router.h"
#include "sim/scheduler.h"

using namespace iri;

namespace {

constexpr bgp::Community kOwnTag = (65000u << 16) | 2u;
constexpr bgp::Community kAggTag = (65000u << 16) | 1u;

sim::Router* MakeRouteServer(sim::Scheduler& sched, const char* name,
                             std::uint8_t id,
                             std::vector<std::unique_ptr<sim::Router>>& own) {
  sim::RouterConfig cfg;
  cfg.name = name;
  cfg.asn = 7;
  cfg.router_id = IPv4Address(198, 32, id, 1);
  cfg.interface_addr = IPv4Address(198, 32, id, 2);
  cfg.transparent = true;
  cfg.no_reexport = true;
  own.push_back(std::make_unique<sim::Router>(sched, cfg, id));
  return own.back().get();
}

sim::Router* MakeBorderRouter(sim::Scheduler& sched, const char* name,
                              bool stateless, std::uint8_t id,
                              std::vector<std::unique_ptr<sim::Router>>& own) {
  sim::RouterConfig cfg;
  cfg.name = name;
  cfg.asn = 4200;
  cfg.router_id = IPv4Address(10, 0, 0, id);
  cfg.interface_addr = IPv4Address(10, 1, 0, id);
  cfg.stateless_bgp = stateless;
  cfg.packer.interval = Duration::Seconds(30);
  cfg.packer.discipline = bgp::TimerDiscipline::kUnjittered;
  own.push_back(std::make_unique<sim::Router>(sched, cfg, id));
  return own.back().get();
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = bench::Flags::Parse(argc, argv, /*days=*/1.0,
                                   /*scale_denominator=*/16, /*providers=*/2);
  bench::PrintHeader(
      "§4.2: the stateful software fix, measured at two exchanges at once",
      flags);

  sim::Scheduler sched;
  Rng rng(flags.seed);
  std::vector<std::unique_ptr<sim::Router>> routers;
  std::vector<std::unique_ptr<sim::Link>> links;

  // Two exchange points with their Routing Arbiter collectors.
  sim::Router* aads = MakeRouteServer(sched, "rs-AADS", 1, routers);
  sim::Router* mae_east = MakeRouteServer(sched, "rs-MaeEast", 2, routers);
  core::ExchangeMonitor aads_monitor, mae_monitor;
  aads_monitor.Attach(*aads);
  mae_monitor.Attach(*mae_east);

  // ISP-Y's two border routers: old software at AADS, the fix at Mae-East.
  sim::Router* at_aads =
      MakeBorderRouter(sched, "ispY-AADS", /*stateless=*/true, 10, routers);
  sim::Router* at_mae =
      MakeBorderRouter(sched, "ispY-MaeEast", /*stateless=*/false, 11, routers);

  bgp::Policy exp = bgp::Policy::DenyAll();
  {
    bgp::PolicyRule deny_agg;
    deny_agg.match.has_community = kAggTag;
    deny_agg.action.deny = true;
    exp.Add(std::move(deny_agg));
    bgp::PolicyRule allow_own;
    allow_own.match.has_community = kOwnTag;
    exp.Add(std::move(allow_own));
  }
  auto connect = [&](sim::Router* border, sim::Router* rs) {
    links.push_back(std::make_unique<sim::Link>(sched, Duration::Millis(2)));
    border->AttachLink(*links.back(), true, 7, bgp::Policy::AcceptAll(), exp);
    rs->AttachLink(*links.back(), false, 4200);
  };
  connect(at_aads, aads);
  connect(at_mae, mae_east);
  sched.At(TimePoint::Origin(), [&links] {
    for (auto& l : links) l->Restore();
  });

  // ISP-Y's world: a handful of exported customer routes, a large
  // aggregated (unexported) customer base, and a big transit table learned
  // over a flaky private adjacency. Identical on both routers.
  const int num_exported = 16;
  const int num_aggregated =
      static_cast<int>(900 * 16 / flags.scale_denominator);
  const int num_transit =
      static_cast<int>(14000 / flags.scale_denominator * 16 / 16);
  std::vector<Prefix> transit_table;
  sched.At(TimePoint::Origin() + Duration::Seconds(2), [&] {
    auto originate_everywhere = [&](const bgp::Route& r) {
      at_aads->Originate(r);
      at_mae->Originate(r);
    };
    for (int i = 0; i < num_exported; ++i) {
      bgp::Route r;
      r.prefix = Prefix(IPv4Address(204, 30, static_cast<std::uint8_t>(i), 0), 24);
      r.attributes.communities = {kOwnTag};
      originate_everywhere(r);
    }
    for (int i = 0; i < num_aggregated; ++i) {
      bgp::Route r;
      r.prefix = Prefix(IPv4Address((205u << 24) |
                                    (static_cast<std::uint32_t>(i) << 8)),
                        24);
      r.attributes.communities = {kAggTag, kOwnTag};
      std::sort(r.attributes.communities.begin(),
                r.attributes.communities.end());
      originate_everywhere(r);
    }
  });
  for (int i = 0; i < num_transit; ++i) {
    transit_table.push_back(Prefix(
        IPv4Address((206u << 24) | (static_cast<std::uint32_t>(i) << 8)), 24));
  }

  // The incident: the private transit adjacency flaps all day; every flap
  // sprays the transit table and marks the local table dirty, on BOTH
  // routers (it is the same AS-internal event).
  const int flaps_per_day = 170;
  for (int k = 0; k < static_cast<int>(flaps_per_day * flags.days); ++k) {
    const Duration at =
        Duration::Days(flags.days) * rng.Uniform() + Duration::Minutes(5);
    sched.At(TimePoint::Origin() + at, [&, k] {
      at_aads->SprayWithdrawals(transit_table);
      at_mae->SprayWithdrawals(transit_table);
      at_aads->InternalReset();
      at_mae->InternalReset();
    });
  }

  // Meanwhile, genuine customer flaps continue on the exported routes —
  // the ~1,905 *legitimate* withdrawals the stateful router still sent.
  const int real_flaps =
      static_cast<int>(1905 / flags.scale_denominator * flags.days);
  for (int k = 0; k < real_flaps; ++k) {
    const Duration at =
        Duration::Days(flags.days) * rng.Uniform() + Duration::Minutes(5);
    const auto idx = static_cast<std::uint8_t>(rng.Below(num_exported));
    sched.At(TimePoint::Origin() + at, [&, idx] {
      const Prefix p(IPv4Address(204, 30, idx, 0), 24);
      at_aads->WithdrawLocal(p);
      at_mae->WithdrawLocal(p);
      sched.After(Duration::Seconds(90 + 60 * rng.Uniform()), [&, p] {
        bgp::Route r;
        r.prefix = p;
        r.attributes.communities = {kOwnTag};
        at_aads->Originate(r);
        at_mae->Originate(r);
      });
    });
  }

  sched.RunUntil(TimePoint::Origin() + Duration::Days(flags.days) +
                 Duration::Minutes(2));

  auto report = [](const char* name, const core::ExchangeMonitor& monitor) {
    const auto& t = monitor.classifier().totals();
    std::uint64_t withdrawals =
        t[static_cast<std::size_t>(core::Category::kWWDup)] +
        t[static_cast<std::size_t>(core::Category::kWithdraw)];
    std::uint64_t announcements = monitor.events_seen() - withdrawals;
    std::printf("%-22s %10llu withdrawals  %8llu announcements\n", name,
                static_cast<unsigned long long>(withdrawals),
                static_cast<unsigned long long>(announcements));
    return withdrawals;
  };
  const std::uint64_t w_aads = report("AADS (stateless)", aads_monitor);
  const std::uint64_t w_mae = report("Mae-East (stateful)", mae_monitor);

  std::printf("\nextrapolated to paper scale: %.2fM vs %.0f withdrawals "
              "(paper: ~2M at AADS vs 1,905 at Mae-East)\n",
              bench::FullScale(static_cast<double>(w_aads), flags) / 1e6,
              bench::FullScale(static_cast<double>(w_mae), flags));
  std::printf("reduction factor: %.0fx\n",
              w_mae ? static_cast<double>(w_aads) / static_cast<double>(w_mae)
                    : static_cast<double>(w_aads));
  return 0;
}
