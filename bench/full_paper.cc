// Full-paper-scale reproduction bench: the measured corpus shape at
// scale_denominator = 1 — five exchange-point collectors (Mae-East, AADS,
// Sprint, PacBell, Mae-West) over a 42,000-prefix default-free universe —
// run for a configurable window of simulated days and timed for real.
//
// The paper's dataset spans nine months of collection; simulating that
// window outright is a batch job, so the bench runs --days=D (default 1)
// and, with --nine-months, extrapolates the measured per-simulated-day
// wall-clock and event volume to the full 270-day campaign.
//
// Emits BENCH_full_paper.json (shape: "metrics" list, see
// tools/bench/compare.py) for comparison against the committed
// bench/baseline/BENCH_full_paper.json. --ref-simday=SECONDS records a
// pre-change reference wall-clock per simulated day measured on the same
// machine, and the JSON then carries the speedup ratio against it.
//
// Determinism: the timed run honours --threads / --shards / --shard-threads
// (the intra-exchange sharding knobs of DESIGN.md §13), and whenever any of
// them departs from 1 the digest is asserted against a serial unsharded
// run — a timing number from a configuration-dependent computation would be
// meaningless.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include <vector>

#include "bench_common.h"
#include "bench_json.h"
#include "core/classifier.h"
#include "core/report.h"
#include "workload/multi_exchange_runner.h"

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double>(elapsed).count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace iri;
  auto flags = bench::Flags::Parse(argc, argv, /*days=*/1,
                                   /*scale_denominator=*/1,
                                   /*providers=*/16);
  std::string out_path = "BENCH_full_paper.json";
  int threads = 1;
  int shards = 1;
  int shard_threads = 1;
  double ref_simday = 0;
  bool nine_months = false;
  bool attribution = false;
  std::string attribution_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
    if (std::strcmp(argv[i], "--attribution") == 0) attribution = true;
    if (std::strncmp(argv[i], "--attribution=", 14) == 0) {
      attribution = true;
      attribution_path = argv[i] + 14;
    }
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = std::atoi(argv[i] + 10);
    }
    if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      shards = std::atoi(argv[i] + 9);
    }
    if (std::strncmp(argv[i], "--shard-threads=", 16) == 0) {
      shard_threads = std::atoi(argv[i] + 16);
    }
    if (std::strncmp(argv[i], "--ref-simday=", 13) == 0) {
      ref_simday = std::atof(argv[i] + 13);
    }
    if (std::strcmp(argv[i], "--nine-months") == 0) nine_months = true;
  }
  bench::PrintHeader("Full-paper-scale corpus (5 exchanges)", flags);

  workload::MultiExchangeConfig cfg;
  cfg.scenario = flags.ToScenarioConfig();
  cfg.scenario.num_exchanges = 5;
  cfg.scenario.shards = shards;
  cfg.scenario.shard_threads = shard_threads;
  cfg.threads = threads;

  const int prefixes = static_cast<int>(
      cfg.scenario.topology.full_scale_prefixes * cfg.scenario.topology.scale);

  // Timed run at the requested parallelism: the headline
  // seconds-per-simulated-day number.
  const auto start = std::chrono::steady_clock::now();
  workload::MultiExchangeRunner runner(cfg);
  const workload::MultiExchangeResult result = runner.Run();
  const double seconds = SecondsSince(start);
  const std::string digest = result.Digest("full_paper");

  if (threads != 1 || shards != 1 || shard_threads != 1) {
    workload::MultiExchangeConfig serial_cfg = cfg;
    serial_cfg.threads = 1;
    serial_cfg.scenario.shards = 1;
    serial_cfg.scenario.shard_threads = 1;
    workload::MultiExchangeRunner serial_runner(std::move(serial_cfg));
    if (serial_runner.Run().Digest("full_paper") != digest) {
      std::fprintf(stderr,
                   "FATAL: (threads=%d shards=%d shard_threads=%d) produced "
                   "a different digest than the serial unsharded run — "
                   "determinism broken\n",
                   threads, shards, shard_threads);
      return 1;
    }
    std::printf("digest stable at threads=%d shards=%d shard_threads=%d\n",
                threads, shards, shard_threads);
  }

  const double seconds_per_simday = seconds / flags.days;
  const double updates_per_sec =
      static_cast<double>(result.total_events) / seconds;
  const double events_per_simday =
      static_cast<double>(result.total_events) / flags.days;

  std::printf("%d prefixes, %d providers, 5 exchanges\n", prefixes,
              flags.providers);
  std::printf("%.2fs wall for %g simulated day(s): %.2fs/simday, "
              "%.0f updates/sec\n",
              seconds, flags.days, seconds_per_simday, updates_per_sec);
  std::printf("%llu messages, %llu prefix events (%.0f events/simday; the "
              "paper reports 3-6M/day across its collectors)\n",
              static_cast<unsigned long long>(result.total_messages),
              static_cast<unsigned long long>(result.total_events),
              events_per_simday);
  for (std::size_t c = 0; c < core::kNumCategories; ++c) {
    std::printf("  %-8s %10llu (%5.1f%%)\n",
                core::ToString(static_cast<core::Category>(c)),
                static_cast<unsigned long long>(
                    result.combined_classifier_totals[c]),
                100.0 *
                    static_cast<double>(result.combined_classifier_totals[c]) /
                    static_cast<double>(result.total_events));
  }
  if (ref_simday > 0) {
    std::printf("speedup vs pre-change reference: %.2fx "
                "(%.2fs -> %.2fs per simday)\n",
                ref_simday / seconds_per_simday, ref_simday,
                seconds_per_simday);
  }
  if (attribution) {
    std::vector<obs::ExchangeAttribution> attrs;
    attrs.reserve(result.exchanges.size());
    for (const auto& run : result.exchanges) attrs.push_back(run.attribution);
    std::fputs(core::FormatAttributionReport(attrs).c_str(), stdout);
    if (!attribution_path.empty()) {
      const std::string body = core::AttributionJson(attrs);
      std::FILE* f = std::fopen(attribution_path.c_str(), "wb");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", attribution_path.c_str());
        return 1;
      }
      std::fwrite(body.data(), 1, body.size(), f);
      std::fclose(f);
      std::printf("wrote %s\n", attribution_path.c_str());
    }
  }
  if (nine_months) {
    const double campaign_days = 270;
    std::printf("nine-month campaign extrapolation: %.1f wall-hours, "
                "%.0fM events\n",
                campaign_days * seconds_per_simday / 3600.0,
                campaign_days * events_per_simday / 1e6);
  }

  bench::JsonWriter json;
  json.BeginObject()
      .Field("bench", "full_paper")
      .Field("exchanges", 5)
      .Field("scale_denominator", flags.scale_denominator, 0)
      .Field("prefixes", prefixes)
      .Field("days", flags.days, 3)
      .Field("providers", flags.providers)
      .Field("seed", flags.seed)
      .Field("threads", threads)
      .Field("shards", shards)
      .Field("shard_threads", shard_threads)
      .Field("messages", result.total_messages)
      .Field("events", result.total_events)
      .Field("seconds", seconds, 2);
  json.BeginArray("metrics");
  json.BeginObject(nullptr, /*compact=*/true)
      .Field("name", "seconds_per_simday")
      .Field("value", seconds_per_simday, 3)
      .Field("higher_is_better", false)
      .EndObject();
  json.BeginObject(nullptr, /*compact=*/true)
      .Field("name", "updates_per_sec")
      .Field("value", updates_per_sec, 1)
      .Field("higher_is_better", true)
      .EndObject();
  json.EndArray();
  json.BeginObject("categories", /*compact=*/true);
  for (std::size_t c = 0; c < core::kNumCategories; ++c) {
    json.Field(core::ToString(static_cast<core::Category>(c)),
               result.combined_classifier_totals[c]);
  }
  json.EndObject();
  if (ref_simday > 0) {
    json.BeginObject("speedup_vs_pre_change")
        .Field("reference_seconds_per_simday", ref_simday, 3)
        .Field("seconds_per_simday", seconds_per_simday, 3)
        .Field("ratio", ref_simday / seconds_per_simday, 3)
        .EndObject();
  }
  if (nine_months) {
    json.BeginObject("nine_month_extrapolation")
        .Field("campaign_days", 270)
        .Field("projected_wall_hours", 270 * seconds_per_simday / 3600.0, 2)
        .Field("projected_events", 270 * events_per_simday, 0)
        .EndObject();
  }
  json.EndObject();
  if (!json.WriteFile(out_path)) return 1;
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
