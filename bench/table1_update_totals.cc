// Table 1: per-ISP announcement/withdrawal/unique-prefix totals for one
// simulated day at a public exchange, including a pathological small ISP
// (the paper's Provider I: 259 announcements vs 2,479,023 withdrawals).
//
// Paper shape to reproduce:
//  - stateless providers withdraw 10-1000x what they announce
//  - the pathological ISP's withdrawals dwarf everything else
//  - unique-prefix counts far below total withdrawals (repetition)
//  - well-behaved (stateful) providers have small, balanced counts
#include <unordered_set>

#include "bench_common.h"
#include "core/report.h"
#include "core/stats.h"
#include "workload/multi_exchange_runner.h"

int main(int argc, char** argv) {
  using namespace iri;
  auto flags = bench::Flags::Parse(argc, argv, /*days=*/1.0,
                                   /*scale_denominator=*/16,
                                   /*providers=*/12);
  bench::PrintHeader(
      "Table 1: update totals per ISP for one day at the exchange", flags);

  // One Mae-East-style collector, driven through the partitioned runner
  // (num_exchanges=1 is the serial path; IRI_PARALLEL_EXCHANGES still
  // applies to anyone who raises the exchange count).
  workload::MultiExchangeConfig cfg;
  cfg.scenario = flags.ToScenarioConfig();
  cfg.scenario.num_exchanges = 1;
  cfg.scenario.patho_enabled = true;  // the Provider-I incident
  cfg.scenario.patho_spray_rate = 250;
  cfg.scenario.internal_reset_foreign_fraction = 0.25;
  cfg.capture_mrt = false;
  const bool patho_enabled = cfg.scenario.patho_enabled;

  struct PeerTotals {
    std::uint64_t announce = 0;
    std::uint64_t withdraw = 0;
    std::unordered_set<Prefix> unique;
  };
  std::vector<PeerTotals> totals(
      static_cast<std::size_t>(flags.providers));
  topology::Universe universe;

  workload::MultiExchangeRunner runner(std::move(cfg));
  runner.SetPartitionSetup(
      [&totals, &universe](int, workload::ExchangeScenario& scenario) {
        universe = scenario.universe();
        scenario.monitor().AddSink([&totals](const core::ClassifiedEvent& ev) {
          auto& t = totals[ev.event.peer];
          if (ev.event.is_withdraw) {
            ++t.withdraw;
          } else {
            ++t.announce;
          }
          t.unique.insert(ev.event.prefix);
        });
      });
  workload::MultiExchangeResult result = runner.Run();

  std::vector<std::vector<std::string>> rows;
  for (std::size_t i = 0; i < totals.size(); ++i) {
    const auto& spec = universe.providers[i];
    std::string flavor = spec.stateless_bgp ? "stateless" : "stateful";
    if (static_cast<int>(i) == flags.providers - 1 && patho_enabled) {
      flavor += "+patho";
    }
    rows.push_back({spec.name, flavor, std::to_string(totals[i].announce),
                    std::to_string(totals[i].withdraw),
                    std::to_string(totals[i].unique.size())});
  }
  std::printf("%s\n",
              core::FormatTable(
                  {"provider", "implementation", "announce", "withdraw",
                   "unique"},
                  rows)
                  .c_str());

  std::uint64_t grand_a = 0, grand_w = 0;
  for (const auto& t : totals) {
    grand_a += t.announce;
    grand_w += t.withdraw;
  }
  std::printf("day total: %llu announcements, %llu withdrawals\n",
              static_cast<unsigned long long>(grand_a),
              static_cast<unsigned long long>(grand_w));
  std::printf("extrapolated to paper scale: %.2fM updates/day "
              "(paper: 3-6M typical, 30M extreme)\n",
              bench::FullScale(static_cast<double>(grand_a + grand_w), flags) /
                  1e6);
  bench::PrintHealthSummary(result.metrics);
  std::printf("\ndeterministic metrics snapshot (obs/metrics.h):\n%s",
              result.metrics.SnapshotText().c_str());
  return 0;
}
