// §4.2 ablation: the stateless-BGP software fix.
//
// The paper reports that after the vendor shipped stateful software, the
// same provider that had sent ~2M withdrawals through stateless routers at
// AADS sent only 1,905 through updated routers at Mae-East. This bench runs
// the identical workload twice — stateless fleet vs all-stateful — and
// reports the per-category deltas.
#include "bench_common.h"
#include "core/report.h"
#include "core/stats.h"

int main(int argc, char** argv) {
  using namespace iri;
  auto flags = bench::Flags::Parse(argc, argv, /*days=*/2,
                                   /*scale_denominator=*/32,
                                   /*providers=*/14);
  bench::PrintHeader("Ablation: stateless BGP vs the stateful software fix",
                     flags);

  auto run = [&flags](bool force_stateful) {
    auto cfg = flags.ToScenarioConfig();
    cfg.patho_enabled = true;
    cfg.force_all_stateful = force_stateful;
    workload::ExchangeScenario scenario(cfg);
    core::CategoryCounts counts;
    scenario.monitor().AddSink(
        [&counts](const core::ClassifiedEvent& ev) { counts.Add(ev); });
    scenario.Run();
    return counts;
  };

  const core::CategoryCounts stateless = run(false);
  const core::CategoryCounts stateful = run(true);

  std::vector<std::vector<std::string>> rows;
  for (std::size_t i = 0; i < core::kNumCategories; ++i) {
    const auto c = static_cast<core::Category>(i);
    const double a = static_cast<double>(stateless.Of(c));
    const double b = static_cast<double>(stateful.Of(c));
    char ratio[32];
    std::snprintf(ratio, sizeof(ratio), "%.1fx", b > 0 ? a / b : a);
    rows.push_back({core::ToString(c), std::to_string(stateless.Of(c)),
                    std::to_string(stateful.Of(c)), ratio});
  }
  rows.push_back({"TOTAL", std::to_string(stateless.Total()),
                  std::to_string(stateful.Total()), ""});
  std::printf("%s\n",
              core::FormatTable({"category", "stateless-fleet",
                                 "stateful-fix", "reduction"},
                                rows)
                  .c_str());

  std::printf("paper anchor: ISP-I sent 2,479,023 withdrawals stateless; "
              "the same provider sent 1,905 through stateful software\n");
  std::printf("withdrawals here: %llu -> %llu (%.0fx reduction)\n",
              static_cast<unsigned long long>(stateless.withdrawals),
              static_cast<unsigned long long>(stateful.withdrawals),
              stateful.withdrawals
                  ? static_cast<double>(stateless.withdrawals) /
                        static_cast<double>(stateful.withdrawals)
                  : 0.0);
  return 0;
}
