// §3/§6 ablation: route-caching vs full-table forwarding under instability.
//
// The paper: cache churn under instability raises miss rates, CPU load, and
// packet loss; "informal experiments ... suggest that sufficiently high
// rates of pathological updates (300 updates per second) are enough to
// crash a widely deployed, high-end model of Internet router"; and the new
// full-table forwarding hardware "do[es] not exhibit the same pathological
// loss". Sweep the update rate and compare both architectures.
#include <cmath>

#include "bench_common.h"
#include "core/report.h"
#include "netbase/rng.h"
#include "sim/forwarding.h"

using namespace iri;

namespace {

struct RunResult {
  double miss_rate = 0;
  double drop_rate = 0;
  double cpu_backlog_ms = 0;
};

// Drives `seconds` of 20k packets/s Zipf-ish traffic over a 4096-prefix
// table while `updates_per_second` random route changes churn it.
RunResult Run(sim::ForwardingArchitecture arch, double updates_per_second,
              std::uint64_t seed) {
  sim::ForwardingEngine::Params params;
  params.architecture = arch;
  // The cache comfortably holds the steady working set: baseline misses are
  // cold-start only, so everything above that is churn-induced.
  params.cache_capacity = 8192;
  params.slow_path_cost = Duration::Micros(150);
  // Update processing on a mid-90s route processor: decode plus evaluation
  // "against a potentially extensive list of policy filters".
  params.update_cost = Duration::Millis(3.2);
  params.cpu_queue_limit = Duration::Millis(30);
  sim::ForwardingEngine fwd(params);
  Rng rng(seed);

  constexpr int kPrefixes = 4096;
  for (std::uint32_t i = 0; i < kPrefixes; ++i) {
    fwd.OnRouteChange(
        Prefix(IPv4Address((30u << 24) | (i << 8)), 24),
        IPv4Address(1, 1, 1, static_cast<std::uint8_t>(i % 8)),
        TimePoint::Origin());
  }

  const double seconds = 30;
  const double pps = 20000;

  // Warm up: let the CPU absorb the initial table load, then fill the cache
  // with churn-free traffic so the measured interval isolates instability.
  TimePoint now = TimePoint::Origin() + Duration::Seconds(30);
  while (now < TimePoint::Origin() + Duration::Seconds(60)) {
    now += Duration::Seconds(1.0 / pps);
    const double uw = rng.Uniform();
    const auto idx = static_cast<std::uint32_t>(uw * uw * kPrefixes);
    fwd.Forward(IPv4Address((30u << 24) | (idx << 8) | 1u), now);
  }
  const auto warm = fwd.stats();

  const TimePoint end = now + Duration::Seconds(seconds);
  TimePoint next_update =
      updates_per_second > 0
          ? now + Duration::Seconds(rng.Exponential(1.0 / updates_per_second))
          : TimePoint::Max();
  Duration max_backlog;

  while (now < end) {
    now += Duration::Seconds(1.0 / pps);
    while (next_update <= now) {
      // A flap: one random prefix changes next hop (or bounces).
      const std::uint32_t i = static_cast<std::uint32_t>(rng.Below(kPrefixes));
      const Prefix p(IPv4Address((30u << 24) | (i << 8)), 24);
      if (rng.Bernoulli(0.3)) {
        fwd.OnRouteWithdrawn(p, next_update);
        fwd.OnRouteChange(p, IPv4Address(1, 1, 1, 2), next_update);
      } else {
        fwd.OnRouteChange(
            p, IPv4Address(1, 1, 1, static_cast<std::uint8_t>(rng.Below(8))),
            next_update);
      }
      next_update +=
          Duration::Seconds(rng.Exponential(1.0 / updates_per_second));
    }
    // Zipf-ish destination popularity: square the uniform draw.
    const double u = rng.Uniform();
    const auto idx = static_cast<std::uint32_t>(u * u * kPrefixes);
    fwd.Forward(IPv4Address((30u << 24) | (idx << 8) |
                            static_cast<std::uint32_t>(rng.Below(250) + 1)),
                now);
    max_backlog = std::max(max_backlog, fwd.CpuBacklog(now));
  }

  RunResult result;
  const auto& st = fwd.stats();
  const double lookups =
      static_cast<double>(st.lookups - warm.lookups);
  result.miss_rate =
      lookups > 0 ? static_cast<double>(st.misses - warm.misses) / lookups : 0;
  result.drop_rate =
      lookups > 0 ? static_cast<double>(st.drops - warm.drops) / lookups : 0;
  result.cpu_backlog_ms = max_backlog.ToSeconds() * 1e3;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = bench::Flags::Parse(argc, argv, /*days=*/0,
                                   /*scale_denominator=*/1, /*providers=*/0);
  bench::PrintHeader(
      "Ablation: route-cache vs full-table forwarding under update load",
      flags);

  std::vector<std::vector<std::string>> rows;
  for (double rate : {0.0, 10.0, 50.0, 100.0, 300.0, 1000.0}) {
    const RunResult cache =
        Run(sim::ForwardingArchitecture::kRouteCache, rate, flags.seed);
    const RunResult full =
        Run(sim::ForwardingArchitecture::kFullTable, rate, flags.seed);
    char r[16], m[16], d[16], b[24], fd[16];
    std::snprintf(r, sizeof(r), "%.0f", rate);
    std::snprintf(m, sizeof(m), "%.1f%%", cache.miss_rate * 100);
    std::snprintf(d, sizeof(d), "%.1f%%", cache.drop_rate * 100);
    std::snprintf(b, sizeof(b), "%.1f", cache.cpu_backlog_ms);
    std::snprintf(fd, sizeof(fd), "%.1f%%", full.drop_rate * 100);
    rows.push_back({r, m, d, b, fd});
  }
  std::printf("%s\n",
              core::FormatTable({"updates/s", "cache-miss", "cache-drop",
                                 "cache-cpu-backlog-ms", "fulltable-drop"},
                                rows)
                  .c_str());
  std::printf(
      "paper expectations: loss and CPU load climb with the update rate on "
      "the caching architecture (severe by ~300 updates/s — the rate that "
      "crashed a high-end router); the full-table forwarding hardware is "
      "unaffected at any rate.\n");
  return 0;
}
