// Figure 6: per-(peer, day) scatter of routing-table share (x) versus share
// of the day's updates (y) for AADiff / WADiff / AADup / WADup.
//
// Paper shape: no correlation between an AS's size and its update share;
// few points near the diagonal; the big-ISP cluster sits at high table
// share without dominating updates.
#include <cmath>

#include "bench_common.h"
#include "core/report.h"
#include "core/stats.h"

int main(int argc, char** argv) {
  using namespace iri;
  auto flags = bench::Flags::Parse(argc, argv, /*days=*/31,
                                   /*scale_denominator=*/48,
                                   /*providers=*/16);
  bench::PrintHeader("Figure 6: AS contribution vs routing-table share",
                     flags);

  auto cfg = flags.ToScenarioConfig();
  workload::ExchangeScenario scenario(cfg);
  core::PeerDayTally tally;
  scenario.monitor().AddSink(
      [&tally](const core::ClassifiedEvent& ev) { tally.Add(ev); });
  // Capture each peer's table share daily.
  scenario.ScheduleDaily([&scenario, &tally, &flags](int day) {
    for (int p = 0; p < flags.providers; ++p) {
      tally.SetTableShare(static_cast<bgp::PeerId>(p), day,
                          scenario.TableShare(p),
                          scenario.universe().providers[static_cast<std::size_t>(p)].asn);
    }
  });
  scenario.Run();

  static const core::Category kCats[] = {
      core::Category::kAADiff, core::Category::kWADiff,
      core::Category::kAADup, core::Category::kWADup};

  for (const auto cat : kCats) {
    std::printf("\n--- %s: (table share, update share) per peer-day ---\n",
                core::ToString(cat));
    // Correlation across all peer-days.
    std::vector<std::pair<double, double>> points;
    for (const auto& [key, cell] : tally.cells()) {
      const auto [peer, day] = key;
      if (day == 0) continue;  // bootstrap day
      const std::uint64_t day_total = tally.DayTotal(day, cat);
      if (day_total == 0 || cell.table_share <= 0) continue;
      points.emplace_back(cell.table_share,
                          static_cast<double>(cell.counts.Of(cat)) /
                              static_cast<double>(day_total));
    }
    double mx = 0, my = 0;
    for (auto& [x, y] : points) {
      mx += x;
      my += y;
    }
    if (!points.empty()) {
      mx /= static_cast<double>(points.size());
      my /= static_cast<double>(points.size());
    }
    double cov = 0, vx = 0, vy = 0;
    for (auto& [x, y] : points) {
      cov += (x - mx) * (y - my);
      vx += (x - mx) * (x - mx);
      vy += (y - my) * (y - my);
    }
    const double corr =
        (vx > 0 && vy > 0) ? cov / std::sqrt(vx * vy) : 0.0;

    // A coarse scatter: bucket table share into deciles, print mean/max y.
    std::vector<std::vector<std::string>> rows;
    for (int decile = 0; decile < 10; ++decile) {
      const double lo = decile * 0.05, hi = lo + 0.05;
      double sum = 0, peak = 0;
      int n = 0;
      for (auto& [x, y] : points) {
        if (x >= lo && x < hi) {
          sum += y;
          peak = std::max(peak, y);
          ++n;
        }
      }
      if (n == 0) continue;
      char buf[96];
      std::snprintf(buf, sizeof(buf), "%.2f-%.2f", lo, hi);
      char mean_s[32], peak_s[32];
      std::snprintf(mean_s, sizeof(mean_s), "%.3f", sum / n);
      std::snprintf(peak_s, sizeof(peak_s), "%.3f", peak);
      rows.push_back({buf, std::to_string(n), mean_s, peak_s});
    }
    std::printf("%s", core::FormatTable({"table-share", "peer-days",
                                         "mean-upd-share", "max-upd-share"},
                                        rows)
                          .c_str());
    std::printf("Pearson correlation (share vs contribution): %.3f "
                "(paper: no correlation — expect |r| well below 0.5)\n",
                corr);
  }
  return 0;
}
