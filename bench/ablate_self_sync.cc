// §4.2: self-synchronization of update transmissions (Floyd & Jacobson's
// Periodic Message model applied to BGP).
//
// "The unjittered interval timer used on a large number of inter-domain
// border routers may introduce a weak coupling ... [and routers] may
// undergo abrupt synchronization. This synchronization would result in a
// large number of BGP routers transmitting updates simultaneously."
//
// With fixed-phase 30 s flush timers, every router's updates land on the
// same wall-clock phase; the collector sees update arrivals concentrated in
// a narrow slice of each 30-second cycle. Jittering the timers (the
// recommended fix) spreads the arrivals across the cycle. This bench
// measures that concentration directly.
#include <array>
#include <cmath>

#include "bench_common.h"
#include "core/report.h"
#include "core/stats.h"

int main(int argc, char** argv) {
  using namespace iri;
  auto flags = bench::Flags::Parse(argc, argv, /*days=*/2,
                                   /*scale_denominator=*/48,
                                   /*providers=*/16);
  bench::PrintHeader(
      "Self-synchronization: update arrival phase within the 30 s cycle",
      flags);

  struct PhaseProfile {
    std::array<std::uint64_t, 30> slots{};  // arrivals per 1 s phase slot
    std::uint64_t total = 0;

    void Add(TimePoint t) {
      const std::int64_t phase_ns =
          t.nanos() % Duration::Seconds(30).nanos();
      ++slots[static_cast<std::size_t>(phase_ns /
                                       Duration::Seconds(1).nanos())];
      ++total;
    }
    // Fraction of arrivals inside the densest 3-second window.
    double Concentration() const {
      std::uint64_t best = 0;
      for (std::size_t i = 0; i < slots.size(); ++i) {
        const std::uint64_t window = slots[i] +
                                     slots[(i + 1) % slots.size()] +
                                     slots[(i + 2) % slots.size()];
        best = std::max(best, window);
      }
      return total ? static_cast<double>(best) / static_cast<double>(total)
                   : 0;
    }
  };

  auto run = [&flags](bool jittered) {
    auto cfg = flags.ToScenarioConfig();
    cfg.force_all_jittered = jittered;
    workload::ExchangeScenario scenario(cfg);
    PhaseProfile profile;
    scenario.monitor().AddSink([&profile](const core::ClassifiedEvent& ev) {
      profile.Add(ev.event.time);
    });
    scenario.Run();
    return profile;
  };

  const PhaseProfile unjittered = run(false);
  const PhaseProfile jittered = run(true);

  std::printf("arrival phase histogram (1 s slots of the 30 s cycle):\n");
  std::uint64_t peak = 1;
  for (auto v : unjittered.slots) peak = std::max(peak, v);
  for (std::size_t i = 0; i < 30; ++i) {
    std::printf("%2zus unjittered %7llu %-24s jittered %7llu %s\n", i,
                static_cast<unsigned long long>(unjittered.slots[i]),
                core::AsciiBar(static_cast<double>(unjittered.slots[i]),
                               static_cast<double>(peak), 24)
                    .c_str(),
                static_cast<unsigned long long>(jittered.slots[i]),
                core::AsciiBar(static_cast<double>(jittered.slots[i]),
                               static_cast<double>(peak), 24)
                    .c_str());
  }
  std::printf("\nconcentration (densest 3 s window of the cycle):\n");
  std::printf("  unjittered fleet: %.0f%% of all updates  (perfect "
              "synchronization: every router on the same phase)\n",
              unjittered.Concentration() * 100);
  std::printf("  jittered fleet:   %.0f%% of all updates  (uniform would be "
              "10%%)\n",
              jittered.Concentration() * 100);
  std::printf("\npaper: simultaneous transmission \"has the potential to "
              "overwhelm the processing capacity of recipient routers\" — "
              "jitter, per the dampening draft, is the fix.\n");
  return 0;
}
