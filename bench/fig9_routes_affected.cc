// Figure 9: the proportion of Internet routes (Prefix+AS tuples) touched by
// at least one routing event each day.
//
// Paper shape: 3-10% of routes see >=1 WADiff/day, 5-20% see >=1
// AADiff/day, and 35-100% (median ~50%) are involved in at least one
// category of update — i.e., >80% of routes are stable day to day once
// pathology is discounted.
#include "bench_common.h"
#include "core/report.h"
#include "core/stats.h"

int main(int argc, char** argv) {
  using namespace iri;
  auto flags = bench::Flags::Parse(argc, argv, /*days=*/122,
                                   /*scale_denominator=*/96,
                                   /*providers=*/14);
  bench::PrintHeader("Figure 9: proportion of routes affected per day",
                     flags);

  auto cfg = flags.ToScenarioConfig();
  workload::ExchangeScenario scenario(cfg);
  core::RoutesAffectedDaily affected;
  scenario.monitor().AddSink(
      [&affected](const core::ClassifiedEvent& ev) { affected.Add(ev); });
  scenario.Run();
  affected.Finalize();

  std::printf("day  WADiff%%  AADiff%%  instab%%  any%%\n");
  std::vector<double> wadiff, aadiff, instab, any;
  for (const auto& day : affected.days()) {
    if (day.day == 0 || day.universe == 0) continue;
    const double u = static_cast<double>(day.universe);
    const double w = 100.0 * static_cast<double>(day.routes_with_wadiff) / u;
    const double a = 100.0 * static_cast<double>(day.routes_with_aadiff) / u;
    const double i =
        100.0 * static_cast<double>(day.routes_with_instability) / u;
    const double n = 100.0 * static_cast<double>(day.routes_with_any) / u;
    wadiff.push_back(w);
    aadiff.push_back(a);
    instab.push_back(i);
    any.push_back(n);
    if (day.day % 7 == 3) {  // one sample row per week
      std::printf("%3d  %6.1f  %6.1f  %6.1f  %5.1f\n", day.day, w, a, i, n);
    }
  }

  auto median = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    return v.empty() ? 0.0 : v[v.size() / 2];
  };
  auto range = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    return v.empty() ? std::pair<double, double>{0, 0}
                     : std::pair<double, double>{v.front(), v.back()};
  };
  const auto [w_lo, w_hi] = range(wadiff);
  const auto [a_lo, a_hi] = range(aadiff);
  const auto [n_lo, n_hi] = range(any);

  std::printf("\nsummary over %zu days:\n", wadiff.size());
  std::printf("  routes with >=1 WADiff/day: median %.1f%%, range "
              "%.1f-%.1f%%  (paper: 3-10%%)\n",
              median(wadiff), w_lo, w_hi);
  std::printf("  routes with >=1 AADiff/day: median %.1f%%, range "
              "%.1f-%.1f%%  (paper: 5-20%%)\n",
              median(aadiff), a_lo, a_hi);
  std::printf("  routes in >=1 any-category event/day: median %.1f%%, range "
              "%.1f-%.1f%%  (paper: median ~50%%, range 35-100%%)\n",
              median(any), n_lo, n_hi);
  std::printf("  => stable-route majority: %.1f%% of routes saw no "
              "instability on the median day (paper: >80%%)\n",
              100.0 - median(instab));
  return 0;
}
