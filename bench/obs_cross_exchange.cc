// §2/§5 methodology check: the paper collected at five exchange points and
// notes its Mae-East results "are representative of other exchange points,
// including PacBell and Sprint." Run the five-collector campaign — one
// independent partition per exchange on the parallel runner, exactly how
// the real collectors were independent boxes — and compare the taxonomy mix
// at every exchange.
#include "bench_common.h"
#include "core/report.h"
#include "core/stats.h"
#include "workload/multi_exchange_runner.h"

int main(int argc, char** argv) {
  using namespace iri;
  auto flags = bench::Flags::Parse(argc, argv, /*days=*/2,
                                   /*scale_denominator=*/48,
                                   /*providers=*/12);
  bench::PrintHeader(
      "Cross-exchange consistency: five collectors, one Internet", flags);

  static const char* kExchanges[] = {"Mae-East", "AADS", "Sprint", "PacBell",
                                     "Mae-West"};
  workload::MultiExchangeConfig cfg;
  cfg.scenario = flags.ToScenarioConfig();
  cfg.scenario.num_exchanges = 5;
  cfg.capture_mrt = false;  // taxonomy only; skip the byte stream
  workload::MultiExchangeRunner runner(std::move(cfg));
  workload::MultiExchangeResult result = runner.Run();

  std::vector<std::vector<std::string>> rows;
  for (int e = 0; e < 5; ++e) {
    const auto& c = result.exchanges[static_cast<std::size_t>(e)].counts;
    const double total = static_cast<double>(std::max<std::uint64_t>(1, c.Total()));
    char patho[16], instab[16];
    std::snprintf(patho, sizeof(patho), "%.1f%%",
                  100.0 * static_cast<double>(c.Pathology()) / total);
    std::snprintf(instab, sizeof(instab), "%.1f%%",
                  100.0 * static_cast<double>(c.Instability()) / total);
    rows.push_back({kExchanges[e], std::to_string(c.Total()),
                    std::to_string(c.Of(core::Category::kWWDup)),
                    std::to_string(c.Of(core::Category::kAADup)),
                    instab, patho});
  }
  std::printf("%s\n", core::FormatTable({"exchange", "events", "WWDup",
                                         "AADup", "instability", "pathology"},
                                        rows)
                          .c_str());

  double min_patho = 1.0, max_patho = 0.0;
  for (const auto& ex : result.exchanges) {
    const auto& c = ex.counts;
    const double share = static_cast<double>(c.Pathology()) /
                         static_cast<double>(std::max<std::uint64_t>(1, c.Total()));
    min_patho = std::min(min_patho, share);
    max_patho = std::max(max_patho, share);
  }
  std::printf("pathology share spread across exchanges: %.1f%% .. %.1f%% "
              "(paper: results representative across exchange points)\n",
              min_patho * 100, max_patho * 100);
  std::printf("combined: %llu events across 5 collectors\n",
              static_cast<unsigned long long>(result.combined.Total()));
  bench::PrintHealthSummary(result.metrics);
  std::printf("\nmerged metrics snapshot (fixed exchange order, "
              "thread-count independent):\n%s",
              result.metrics.SnapshotText().c_str());
  return 0;
}
