// Figure 8: histogram of inter-arrival times between successive updates of
// the same category on the same Prefix+AS, log-time bins from 1 s to 24 h,
// box-plot (quartiles) across days.
//
// Paper shape: the 30 s and 1 m bins dominate every category — roughly
// half the mass — instead of the Poisson spread exogenous events would
// give. This is the unjittered 30-second timer signature.
#include "bench_common.h"
#include "core/report.h"
#include "core/stats.h"

int main(int argc, char** argv) {
  using namespace iri;
  auto flags = bench::Flags::Parse(argc, argv, /*days=*/31,
                                   /*scale_denominator=*/48,
                                   /*providers=*/16);
  bench::PrintHeader("Figure 8: update inter-arrival time distributions",
                     flags);

  auto cfg = flags.ToScenarioConfig();
  workload::ExchangeScenario scenario(cfg);
  core::InterArrivalHistogram hist;
  scenario.monitor().AddSink(
      [&hist](const core::ClassifiedEvent& ev) { hist.Add(ev); });
  scenario.Run();
  hist.Finalize();

  const auto summary = hist.Summarize();
  const auto& labels = core::InterArrivalHistogram::BinLabels();

  for (std::size_t cat = 0; cat < core::PrefixPeerDaily::kTracked.size();
       ++cat) {
    std::printf("\n--- %s (median proportion per bin, [q1,q3]) ---\n",
                core::ToString(core::PrefixPeerDaily::kTracked[cat]));
    for (std::size_t bin = 0; bin < labels.size(); ++bin) {
      const auto& s = summary[cat][bin];
      std::printf("%4s  %.3f [%.3f,%.3f] %s\n", labels[bin], s.median, s.q1,
                  s.q3,
                  core::AsciiBar(s.median, 0.5, 40).c_str());
    }
    const double timer_mass = summary[cat][2].median + summary[cat][3].median;
    std::printf("30s+1m bins hold %.0f%% of the median day "
                "(paper: ~half the measured statistics)\n",
                timer_mass * 100);
  }
  return 0;
}
