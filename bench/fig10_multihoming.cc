// Figure 10: the number of prefixes with multiple paths (multihomed) in the
// route server's tables, daily over nine months.
//
// Paper shape: linear growth; >25% of prefixes multihomed by period end; a
// spike during the major ISP's infrastructure upgrade at the end of May.
#include "bench_common.h"
#include "core/report.h"
#include "core/stats.h"

int main(int argc, char** argv) {
  using namespace iri;
  auto flags = bench::Flags::Parse(argc, argv, /*days=*/270,
                                   /*scale_denominator=*/64,
                                   /*providers=*/14);
  bench::PrintHeader("Figure 10: multihomed prefixes over nine months",
                     flags);

  auto cfg = flags.ToScenarioConfig();
  cfg.upgrade_enabled = true;  // the end-of-May spike
  // The census only needs the route-server RIB; calm the event machinery
  // down so 270 days stay cheap (shape is driven by the ramp schedule).
  cfg.customer_flap_rate *= 0.25;
  cfg.csu_episode_rate *= 0.25;
  cfg.oscillation_episode_rate *= 0.25;
  cfg.internal_reset_episode_rate *= 0.25;
  workload::ExchangeScenario scenario(cfg);

  std::vector<std::pair<int, std::size_t>> census;
  std::vector<std::size_t> totals;
  scenario.ScheduleDaily([&scenario, &census, &totals](int day) {
    std::size_t multihomed = 0;
    scenario.route_server().rib().VisitPathCounts(
        [&multihomed](const Prefix&, std::size_t paths) {
          if (paths > 1) ++multihomed;
        });
    census.emplace_back(day, multihomed);
    totals.push_back(scenario.route_server().rib().NumPrefixes());
  });
  scenario.Run();

  std::size_t peak = 1;
  for (const auto& [day, count] : census) peak = std::max(peak, count);
  std::printf("multihomed prefixes per day (weekly samples):\n");
  for (std::size_t i = 0; i < census.size(); i += 7) {
    const auto [day, count] = census[i];
    std::printf("d%03d %5zu (%5.0f full-scale) %s\n", day, count,
                bench::FullScale(static_cast<double>(count), flags),
                core::AsciiBar(static_cast<double>(count),
                               static_cast<double>(peak), 44)
                    .c_str());
  }

  // Shape checks.
  const auto first = census.front().second;
  const auto last = census.back().second;
  const auto mid = census[census.size() / 2].second;
  std::printf("\nshape checks (paper expectations):\n");
  std::printf("  growth: %zu -> %zu (linear: midpoint %zu vs interpolated "
              "%.0f)\n",
              first, last, mid, (static_cast<double>(first) + last) / 2);
  std::printf("  multihomed fraction at end: %.1f%% of %zu visible prefixes "
              "(paper: >25%%)\n",
              totals.empty() || totals.back() == 0
                  ? 0.0
                  : 100.0 * static_cast<double>(last) /
                        static_cast<double>(totals.back()),
              totals.empty() ? 0 : totals.back());
  // Upgrade-window spike: mean of the window vs neighbours.
  double in_window = 0, around = 0;
  int n_in = 0, n_around = 0;
  for (const auto& [day, count] : census) {
    if (day >= cfg.upgrade_start_day && day <= cfg.upgrade_end_day) {
      in_window += static_cast<double>(count);
      ++n_in;
    } else if (day >= cfg.upgrade_start_day - 10 &&
               day <= cfg.upgrade_end_day + 10) {
      around += static_cast<double>(count);
      ++n_around;
    }
  }
  if (n_in && n_around) {
    std::printf("  upgrade-window mean %.0f vs neighbouring days %.0f "
                "(paper: spike at end of May)\n",
                in_window / n_in, around / n_around);
  }
  return 0;
}
