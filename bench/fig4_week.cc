// Figure 4: one representative week (Saturday..Friday) of raw forwarding
// and routing-policy updates in 10-minute aggregates.
//
// Paper shape: bell curve peaking in the afternoon on weekdays, quiet
// weekend, occasional Saturday spike.
#include "bench_common.h"
#include "core/report.h"
#include "core/stats.h"

int main(int argc, char** argv) {
  using namespace iri;
  // Run two weeks and display the second (day 7..13, Saturday..Friday), so
  // the bootstrap table dump never pollutes the displayed week.
  auto flags = bench::Flags::Parse(argc, argv, /*days=*/14,
                                   /*scale_denominator=*/24,
                                   /*providers=*/14);
  bench::PrintHeader(
      "Figure 4: a representative week of instability (10-min aggregates)",
      flags);

  auto cfg = flags.ToScenarioConfig();
  cfg.saturday_spike_prob = 1.0;  // the paper's "Saturday spike" in view
  workload::ExchangeScenario scenario(cfg);
  core::TimeBinner binner(Duration::Minutes(10));
  scenario.monitor().AddSink([&binner](const core::ClassifiedEvent& ev) {
    if (core::IsInstability(ev.category)) binner.Add(ev.event.time);
  });
  scenario.Run();
  binner.ExtendTo(TimePoint::Origin() + cfg.duration - Duration::Millis(1));

  static const char* kDays[] = {"Saturday", "Sunday",   "Monday", "Tuesday",
                                "Wednesday", "Thursday", "Friday"};
  const auto& bins = binner.bins();
  std::uint64_t max_bin = 1;
  // Display week = days 7..13 (skip the bootstrap week-0 Saturday).
  const int start_day = 7;
  for (int i = start_day * 144;
       i < (start_day + 7) * 144 && i < static_cast<int>(bins.size()); ++i) {
    max_bin = std::max(max_bin, bins[static_cast<std::size_t>(i)]);
  }

  std::vector<double> day_totals(7, 0.0);
  std::printf("hourly aggregates (6 x 10-min bins):\n");
  for (int day = 0; day < 7; ++day) {
    std::printf("--- %s ---\n", kDays[day]);
    for (int hour = 0; hour < 24; hour += 2) {
      std::uint64_t v = 0;
      for (int b = 0; b < 12; ++b) {
        const std::size_t idx = static_cast<std::size_t>(
            (start_day + day) * 144 + hour * 6 + b);
        if (idx < bins.size()) v += bins[idx];
      }
      day_totals[static_cast<std::size_t>(day)] += static_cast<double>(v);
      std::printf("%02d-%02dh %6llu %s\n", hour, hour + 2,
                  static_cast<unsigned long long>(v),
                  core::AsciiBar(static_cast<double>(v),
                                 static_cast<double>(max_bin) * 12, 46)
                      .c_str());
    }
  }

  std::printf("\nshape checks (paper expectations):\n");
  const double weekday_mean =
      (day_totals[2] + day_totals[3] + day_totals[4] + day_totals[5] +
       day_totals[6]) /
      5.0;
  std::printf("  weekday mean %.0f vs Sunday %.0f (weekend much quieter)\n",
              weekday_mean, day_totals[1]);
  std::printf("  Saturday %.0f (temporally-localized spike may lift it)\n",
              day_totals[0]);
  return 0;
}
