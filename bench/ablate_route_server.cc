// §3 ablation: route servers vs full-mesh bilateral peering.
//
// "Each router at an exchange point normally must exchange routing
// information with every other peer router. This requires O(N^2) bilateral
// peering sessions ... [route servers reduce] the number of peering
// sessions to O(N)." This bench builds both exchange fabrics with the same
// providers and routes, runs the same flap workload, and compares session
// counts and message totals.
#include <memory>
#include <vector>

#include "bench_common.h"
#include "core/report.h"
#include "sim/link.h"
#include "sim/router.h"
#include "sim/scheduler.h"

using namespace iri;

namespace {

// Exchange peering policy: providers announce only their own customer
// routes to peers (no transit through the exchange), exactly as at the real
// NAPs. Routes are tagged at origination.
constexpr bgp::Community kOwnTag = (65010u << 16) | 1u;

bgp::Policy OwnRoutesOnly() {
  bgp::Policy policy = bgp::Policy::DenyAll();
  bgp::PolicyRule allow;
  allow.name = "allow-own";
  allow.match.has_community = kOwnTag;
  // Strip the tag on export so the receiver cannot re-export the route:
  // peering at the exchange is non-transit.
  allow.action.strip_communities = true;
  policy.Add(allow);
  return policy;
}

struct FabricResult {
  std::size_t sessions = 0;
  std::uint64_t messages = 0;
  std::uint64_t updates = 0;
  std::size_t converged_prefixes = 0;
};

sim::RouterConfig ProviderConfig(int i) {
  sim::RouterConfig cfg;
  cfg.name = "ISP-" + std::to_string(i);
  cfg.asn = static_cast<bgp::Asn>(100 + i);
  cfg.router_id = IPv4Address(10, 0, 0, static_cast<std::uint8_t>(i + 1));
  cfg.interface_addr = IPv4Address(10, 1, 0, static_cast<std::uint8_t>(i + 1));
  cfg.packer.interval = Duration::Seconds(15);
  return cfg;
}

void OriginateSlices(std::vector<std::unique_ptr<sim::Router>>& providers,
                     int prefixes_per_provider) {
  for (std::size_t i = 0; i < providers.size(); ++i) {
    for (int k = 0; k < prefixes_per_provider; ++k) {
      bgp::Route r;
      r.prefix = Prefix(
          IPv4Address((20u << 24) | (static_cast<std::uint32_t>(i) << 16) |
                      (static_cast<std::uint32_t>(k) << 8)),
          24);
      r.attributes.communities.push_back(kOwnTag);
      providers[i]->Originate(r);
    }
  }
}

void FlapWorkload(sim::Scheduler& sched,
                  std::vector<std::unique_ptr<sim::Router>>& providers,
                  int prefixes_per_provider) {
  // Every provider flaps one prefix per minute for half an hour.
  for (int minute = 0; minute < 30; ++minute) {
    sched.At(TimePoint::Origin() + Duration::Minutes(5 + minute),
             [&providers, minute, prefixes_per_provider] {
               for (std::size_t i = 0; i < providers.size(); ++i) {
                 const Prefix p(
                     IPv4Address((20u << 24) |
                                 (static_cast<std::uint32_t>(i) << 16) |
                                 (static_cast<std::uint32_t>(
                                      minute % prefixes_per_provider)
                                  << 8)),
                     24);
                 if (minute % 2 == 0) {
                   providers[i]->WithdrawLocal(p);
                 } else {
                   bgp::Route r;
                   r.prefix = p;
                   r.attributes.communities.push_back(kOwnTag);
                   providers[i]->Originate(r);
                 }
               }
             });
  }
}

FabricResult RunFullMesh(int n, int prefixes_per_provider) {
  sim::Scheduler sched;
  std::vector<std::unique_ptr<sim::Router>> providers;
  std::vector<std::unique_ptr<sim::Link>> links;
  for (int i = 0; i < n; ++i) {
    providers.push_back(
        std::make_unique<sim::Router>(sched, ProviderConfig(i), 100 + i));
  }
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      links.push_back(std::make_unique<sim::Link>(sched, Duration::Millis(1)));
      providers[static_cast<std::size_t>(i)]->AttachLink(
          *links.back(), true, static_cast<bgp::Asn>(100 + j),
          bgp::Policy::AcceptAll(), OwnRoutesOnly());
      providers[static_cast<std::size_t>(j)]->AttachLink(
          *links.back(), false, static_cast<bgp::Asn>(100 + i),
          bgp::Policy::AcceptAll(), OwnRoutesOnly());
    }
  }
  sched.At(TimePoint::Origin(), [&links] {
    for (auto& l : links) l->Restore();
  });
  sched.At(TimePoint::Origin() + Duration::Seconds(1),
           [&providers, prefixes_per_provider] {
             OriginateSlices(providers, prefixes_per_provider);
           });
  FlapWorkload(sched, providers, prefixes_per_provider);
  sched.RunUntil(TimePoint::Origin() + Duration::Minutes(45));

  FabricResult result;
  result.sessions = links.size();
  for (auto& p : providers) {
    result.messages += p->stats().messages_rx;
    result.updates += p->stats().updates_rx;
  }
  result.converged_prefixes = providers[0]->rib().NumPrefixes();
  return result;
}

FabricResult RunRouteServer(int n, int prefixes_per_provider) {
  sim::Scheduler sched;
  sim::RouterConfig rs_cfg;
  rs_cfg.name = "route-server";
  rs_cfg.asn = 7;
  rs_cfg.router_id = IPv4Address(10, 0, 0, 250);
  rs_cfg.interface_addr = IPv4Address(10, 1, 0, 250);
  rs_cfg.transparent = true;  // full fan-out, Routing Arbiter semantics
  rs_cfg.packer.interval = Duration::Seconds(15);
  sim::Router rs(sched, rs_cfg, 7);

  std::vector<std::unique_ptr<sim::Router>> providers;
  std::vector<std::unique_ptr<sim::Link>> links;
  for (int i = 0; i < n; ++i) {
    providers.push_back(
        std::make_unique<sim::Router>(sched, ProviderConfig(i), 100 + i));
    links.push_back(std::make_unique<sim::Link>(sched, Duration::Millis(1)));
    providers.back()->AttachLink(*links.back(), true, rs_cfg.asn,
                                 bgp::Policy::AcceptAll(), OwnRoutesOnly());
    rs.AttachLink(*links.back(), false, static_cast<bgp::Asn>(100 + i));
  }
  sched.At(TimePoint::Origin(), [&links] {
    for (auto& l : links) l->Restore();
  });
  sched.At(TimePoint::Origin() + Duration::Seconds(1),
           [&providers, prefixes_per_provider] {
             OriginateSlices(providers, prefixes_per_provider);
           });
  FlapWorkload(sched, providers, prefixes_per_provider);
  sched.RunUntil(TimePoint::Origin() + Duration::Minutes(45));

  FabricResult result;
  result.sessions = links.size();
  result.messages = rs.stats().messages_rx;
  result.updates = rs.stats().updates_rx;
  for (auto& p : providers) {
    result.messages += p->stats().messages_rx;
    result.updates += p->stats().updates_rx;
  }
  result.converged_prefixes = providers[0]->rib().NumPrefixes();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = iri::bench::Flags::Parse(argc, argv, /*days=*/0,
                                        /*scale_denominator=*/1,
                                        /*providers=*/12);
  iri::bench::PrintHeader(
      "Ablation: full-mesh bilateral peering vs a route server", flags);
  const int n = flags.providers;
  const int prefixes_per_provider = 40;

  std::vector<std::vector<std::string>> rows;
  const FabricResult mesh = RunFullMesh(n, prefixes_per_provider);
  const FabricResult hub = RunRouteServer(n, prefixes_per_provider);
  rows.push_back({"peering sessions", std::to_string(mesh.sessions),
                  std::to_string(hub.sessions)});
  rows.push_back({"messages received (all routers)",
                  std::to_string(mesh.messages), std::to_string(hub.messages)});
  rows.push_back({"UPDATE messages received", std::to_string(mesh.updates),
                  std::to_string(hub.updates)});
  rows.push_back({"prefixes at provider 0 (converged)",
                  std::to_string(mesh.converged_prefixes),
                  std::to_string(hub.converged_prefixes)});
  std::printf("%s\n", iri::core::FormatTable(
                          {"metric", "full-mesh", "route-server"}, rows)
                          .c_str());
  std::printf("paper: N(N-1)/2 = %d bilateral sessions vs N = %d through the "
              "route server. Both fabrics converge to the same table; "
              "\"route servers do not help limit the flood of instability "
              "information\" — every flap still reaches every peer (the "
              "server merely batches prefixes into fewer messages) — but "
              "the per-router session/state burden collapses.\n",
              n * (n - 1) / 2, n);
  return 0;
}
