// Shared plumbing for the reproduction benches: flag parsing, scenario
// header printing, and full-scale extrapolation.
//
// Every bench accepts:
//   --scale=N      universe is 1/N of the paper's 42k prefixes
//   --days=D       simulated days
//   --providers=P  exchange peers
//   --seed=S
// and prints the paper-comparable rows for its table/figure. Absolute
// magnitudes are reported both raw and extrapolated to paper scale
// (multiplied by N); shapes are scale-invariant.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "workload/scenario.h"

namespace iri::bench {

struct Flags {
  double scale_denominator = 64;
  double days = 7;
  int providers = 16;
  std::uint64_t seed = 1996;

  static Flags Parse(int argc, char** argv, double default_days,
                     double default_scale_denominator = 64,
                     int default_providers = 16) {
    Flags flags;
    flags.days = default_days;
    flags.scale_denominator = default_scale_denominator;
    flags.providers = default_providers;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto value = [&arg](const char* name) -> const char* {
        const std::size_t len = std::strlen(name);
        if (arg.compare(0, len, name) == 0 && arg.size() > len &&
            arg[len] == '=') {
          return arg.c_str() + len + 1;
        }
        return nullptr;
      };
      if (const char* v = value("--scale")) {
        flags.scale_denominator = std::atof(v);
      } else if (const char* v = value("--days")) {
        flags.days = std::atof(v);
      } else if (const char* v = value("--providers")) {
        flags.providers = std::atoi(v);
      } else if (const char* v = value("--seed")) {
        flags.seed = static_cast<std::uint64_t>(std::atoll(v));
      } else if (arg == "--help") {
        std::printf(
            "flags: --scale=N --days=D --providers=P --seed=S\n");
        std::exit(0);
      }
    }
    return flags;
  }

  workload::ScenarioConfig ToScenarioConfig() const {
    workload::ScenarioConfig cfg;
    cfg.topology.scale = 1.0 / scale_denominator;
    cfg.topology.num_providers = providers;
    cfg.topology.seed = seed;
    cfg.seed = seed + 1;
    cfg.duration = Duration::Days(days);
    return cfg;
  }
};

inline void PrintHeader(const char* title, const Flags& flags) {
  std::printf("==================================================\n");
  std::printf("%s\n", title);
  std::printf(
      "scale 1/%.0f of paper universe | %.0f day(s) | %d providers | seed "
      "%llu\n",
      flags.scale_denominator, flags.days, flags.providers,
      static_cast<unsigned long long>(flags.seed));
  std::printf("==================================================\n");
}

// Extrapolates a per-universe count to the paper's full 42k-prefix scale.
inline double FullScale(double value, const Flags& flags) {
  return value * flags.scale_denominator;
}

// True when any argument starts with `prefix`. The google-benchmark mains
// use this to inject a default --benchmark_out destination (the file
// tools/bench/compare.py diffs) only when the caller didn't pick their own.
inline bool HasArgPrefix(int argc, char** argv, const char* prefix) {
  const std::size_t len = std::strlen(prefix);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix, len) == 0) return true;
  }
  return false;
}

// One-line digest of the health.* instruments a run's streaming detectors
// produced (obs/health.h). Non-const registry: instruments are reached
// through the get-or-create accessors.
inline void PrintHealthSummary(obs::Registry& metrics) {
  std::printf(
      "health: %llu storm(s), %llu flap burst(s), periodicity "
      "30s=%lldppm 60s=%lldppm (%llu alert(s))\n",
      static_cast<unsigned long long>(
          metrics.GetCounter("health.storm.starts").value()),
      static_cast<unsigned long long>(
          metrics.GetCounter("health.flap.bursts").value()),
      static_cast<long long>(
          metrics.GetGauge("health.periodicity.a_ppm").value()),
      static_cast<long long>(
          metrics.GetGauge("health.periodicity.b_ppm").value()),
      static_cast<unsigned long long>(
          metrics.GetCounter("health.periodicity.alerts").value()));
}

}  // namespace iri::bench
