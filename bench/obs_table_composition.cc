// §4.1's default-free table anchor: "approximately 42,000 prefixes with
// 1500 unique ASPATHs interconnecting 1300 different autonomous systems",
// >25% multihomed, and a daily table-change rate far below the update rate
// (the [7]-style snapshot view).
#include "bench_common.h"
#include "core/report.h"
#include "core/snapshot.h"

int main(int argc, char** argv) {
  using namespace iri;
  auto flags = bench::Flags::Parse(argc, argv, /*days=*/3,
                                   /*scale_denominator=*/8,
                                   /*providers=*/16);
  bench::PrintHeader(
      "Default-free table composition and snapshot delta rate", flags);

  auto cfg = flags.ToScenarioConfig();
  // The paper's 42,000 is the VISIBLE default-free table; our universe also
  // contains the aggregated customer components hiding inside provider
  // supernets. Size the universe so the visible table lands on the anchor.
  cfg.topology.full_scale_prefixes = static_cast<int>(
      42000.0 / (1.0 - cfg.topology.aggregated_fraction));
  workload::ExchangeScenario scenario(cfg);

  std::vector<core::TableSnapshot> snapshots;
  scenario.ScheduleDaily([&scenario, &snapshots](int) {
    snapshots.push_back(
        core::TableSnapshot::Capture(scenario.route_server().rib()));
  });
  scenario.Run();

  const auto comp = core::AnalyzeTable(scenario.route_server().rib());
  std::printf("table at end of run: %s\n\n", comp.ToString().c_str());

  std::vector<std::vector<std::string>> rows;
  auto ratio = [&flags](std::size_t v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f",
                  bench::FullScale(static_cast<double>(v), flags));
    return std::string(buf);
  };
  rows.push_back({"prefixes", std::to_string(comp.prefixes),
                  ratio(comp.prefixes), "42,000"});
  rows.push_back({"unique ASPATHs", std::to_string(comp.unique_as_paths),
                  ratio(comp.unique_as_paths), "~1,500"});
  rows.push_back({"autonomous systems",
                  std::to_string(comp.autonomous_systems),
                  ratio(comp.autonomous_systems), "~1,300"});
  rows.push_back({"paths", std::to_string(comp.routes), ratio(comp.routes),
                  "~15,000 (text: instability ∝ paths)"});
  char mh[16];
  std::snprintf(mh, sizeof(mh), "%.1f%%",
                100.0 * static_cast<double>(comp.multihomed) /
                    static_cast<double>(std::max<std::size_t>(1, comp.prefixes)));
  rows.push_back({"multihomed share", mh, mh, ">25% (end of period)"});
  std::printf("%s\n", core::FormatTable({"quantity", "measured",
                                         "full-scale-equivalent", "paper"},
                                        rows)
                          .c_str());

  if (snapshots.size() >= 2) {
    const auto delta =
        snapshots[snapshots.size() - 2].DiffAgainst(snapshots.back());
    std::printf("snapshot delta over the final day: +%zu / -%zu prefixes, "
                "%zu best-path changes (vs millions of raw updates: the "
                "table itself is far more stable than the update stream)\n",
                delta.added, delta.removed, delta.path_changed);
  }
  return 0;
}
