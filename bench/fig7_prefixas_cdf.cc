// Figure 7: daily cumulative distributions of per-Prefix+AS update counts
// for AADiff / WADiff / AADup / WADup.
//
// Paper shape: 80-100% of daily instability comes from Prefix+AS pairs with
// fewer than ~50 events; WADiff plateaus fastest; AADup/WADup have days
// where pairs with >=200 events carry 5-10% of the mass.
#include "bench_common.h"
#include "core/report.h"
#include "core/stats.h"

int main(int argc, char** argv) {
  using namespace iri;
  auto flags = bench::Flags::Parse(argc, argv, /*days=*/31,
                                   /*scale_denominator=*/48,
                                   /*providers=*/16);
  bench::PrintHeader(
      "Figure 7: cumulative distribution of Prefix+AS update counts", flags);

  auto cfg = flags.ToScenarioConfig();
  workload::ExchangeScenario scenario(cfg);
  core::PrefixPeerDaily daily;
  scenario.monitor().AddSink(
      [&daily](const core::ClassifiedEvent& ev) { daily.Add(ev); });
  scenario.Run();
  daily.Finalize();

  const std::vector<std::uint32_t> thresholds = {1,  2,   5,   10,  20,
                                                 50, 100, 200, 500, 1000};

  for (std::size_t cat = 0; cat < core::PrefixPeerDaily::kTracked.size();
       ++cat) {
    std::printf("\n--- %s ---\n",
                core::ToString(core::PrefixPeerDaily::kTracked[cat]));
    // Median / min / max cumulative proportion at each threshold over days.
    std::vector<std::vector<double>> per_day;
    for (const auto& day : daily.days()) {
      if (day.day == 0) continue;  // bootstrap
      if (day.counts[cat].empty()) continue;
      per_day.push_back(
          core::CumulativeEventProportion(day.counts[cat], thresholds));
    }
    if (per_day.empty()) {
      std::printf("(no events)\n");
      continue;
    }
    std::vector<std::vector<std::string>> rows;
    for (std::size_t t = 0; t < thresholds.size(); ++t) {
      std::vector<double> vals;
      for (const auto& d : per_day) vals.push_back(d[t]);
      std::sort(vals.begin(), vals.end());
      char med[32], lo[32], hi[32];
      std::snprintf(med, sizeof(med), "%.2f", vals[vals.size() / 2]);
      std::snprintf(lo, sizeof(lo), "%.2f", vals.front());
      std::snprintf(hi, sizeof(hi), "%.2f", vals.back());
      rows.push_back({"<=" + std::to_string(thresholds[t]), med, lo, hi});
    }
    std::printf("%s", core::FormatTable({"events/pair", "median-cum",
                                         "min-day", "max-day"},
                                        rows)
                          .c_str());
  }

  std::printf("\nshape checks (paper expectations):\n");
  // Median proportion of AADiff mass from pairs with <=10 events ~ 0.75.
  std::vector<double> aadiff10;
  for (const auto& day : daily.days()) {
    if (day.day == 0 || day.counts[0].empty()) continue;
    aadiff10.push_back(
        core::CumulativeEventProportion(day.counts[0], {10})[0]);
  }
  if (!aadiff10.empty()) {
    std::sort(aadiff10.begin(), aadiff10.end());
    std::printf("  median AADiff mass from pairs with <=10 events: %.2f "
                "(paper: ~0.75, range 0.2-0.9)\n",
                aadiff10[aadiff10.size() / 2]);
  }
  return 0;
}
