// §4.2/§5.3 ablation: jittering the 30-second update-processing timer.
//
// The paper attributes the 30/60 s inter-arrival concentration to a
// vendor's unjittered fixed-phase flush timer. With jitter forced on,
// the 30s/1m mass must spread into neighbouring bins.
#include "bench_common.h"
#include "core/report.h"
#include "core/stats.h"

int main(int argc, char** argv) {
  using namespace iri;
  auto flags = bench::Flags::Parse(argc, argv, /*days=*/4,
                                   /*scale_denominator=*/32,
                                   /*providers=*/14);
  bench::PrintHeader("Ablation: unjittered vs jittered 30 s flush timers",
                     flags);

  auto run = [&flags](bool jittered) {
    auto cfg = flags.ToScenarioConfig();
    cfg.force_all_jittered = jittered;
    workload::ExchangeScenario scenario(cfg);
    core::InterArrivalHistogram hist;
    scenario.monitor().AddSink(
        [&hist](const core::ClassifiedEvent& ev) { hist.Add(ev); });
    scenario.Run();
    hist.Finalize();
    return hist.Summarize();
  };

  const auto unjittered = run(false);
  const auto jittered = run(true);
  const auto& labels = core::InterArrivalHistogram::BinLabels();

  for (std::size_t cat = 0; cat < core::PrefixPeerDaily::kTracked.size();
       ++cat) {
    std::printf("\n--- %s: median bin proportions ---\n",
                core::ToString(core::PrefixPeerDaily::kTracked[cat]));
    std::printf("%6s  %-11s %-11s\n", "bin", "unjittered", "jittered");
    for (std::size_t bin = 0; bin < labels.size(); ++bin) {
      std::printf("%6s  %.3f %-5s %.3f %s\n", labels[bin],
                  unjittered[cat][bin].median,
                  core::AsciiBar(unjittered[cat][bin].median, 0.6, 5).c_str(),
                  jittered[cat][bin].median,
                  core::AsciiBar(jittered[cat][bin].median, 0.6, 5).c_str());
    }
    const double mass_u =
        unjittered[cat][2].median + unjittered[cat][3].median;
    const double mass_j = jittered[cat][2].median + jittered[cat][3].median;
    std::printf("30s+1m mass: %.2f -> %.2f (jitter should smear the timer "
                "signature)\n",
                mass_u, mass_j);
  }
  return 0;
}
